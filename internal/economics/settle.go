package economics

import (
	"fmt"
	"sort"
)

// RateCard holds bilateral carriage prices in USD per GB: what each carrier
// charges each customer. The paper leaves "the precise monetary amounts that
// ISPs charge to carry said traffic … to agreements between individual
// ISPs"; a rate card is one such agreement set.
type RateCard struct {
	// PerGB maps (carrier, customer) to the agreed price. Missing entries
	// fall back to Default.
	PerGB   map[Flow]float64
	Default float64
}

// Rate returns the applicable price for a flow.
func (r RateCard) Rate(f Flow) float64 {
	if p, ok := r.PerGB[f]; ok {
		return p
	}
	return r.Default
}

// Invoice is one provider-to-provider charge.
type Invoice struct {
	Flow      Flow
	Bytes     int64
	AmountUSD float64
}

// Settle prices every flow in the ledger, returning invoices (carrier bills
// customer) in deterministic order.
func Settle(l *Ledger, rates RateCard) []Invoice {
	var out []Invoice
	for _, f := range l.Flows() {
		n := l.Carried(f.Carrier, f.Customer)
		if n == 0 {
			continue
		}
		out = append(out, Invoice{
			Flow:      f,
			Bytes:     n,
			AmountUSD: float64(n) / 1e9 * rates.Rate(f),
		})
	}
	return out
}

// NetBalances folds invoices into per-provider net positions: positive
// means the provider is owed money.
func NetBalances(invoices []Invoice) map[string]float64 {
	bal := map[string]float64{}
	for _, inv := range invoices {
		bal[inv.Flow.Carrier] += inv.AmountUSD
		bal[inv.Flow.Customer] -= inv.AmountUSD
	}
	return bal
}

// PeeringCandidate is a provider pair whose mutual carriage is symmetric
// enough that settlement-free peering would save both sides money — the
// paper: "if two providers realize they are routing similar amounts of
// traffic through each other's systems, and that their routing paths are
// heavily interdependent, they may decide to peer".
type PeeringCandidate struct {
	A, B     string
	AtoB     int64   // bytes A carried for B
	BtoA     int64   // bytes B carried for A
	Symmetry float64 // min/max of the two volumes, in (0,1]
}

// PeeringCandidates scans a ledger for pairs with mutual volume of at least
// minBytes in each direction and symmetry ≥ minSymmetry. Results are
// ordered by combined volume, largest first.
func PeeringCandidates(l *Ledger, minBytes int64, minSymmetry float64) []PeeringCandidate {
	var out []PeeringCandidate
	seen := map[[2]string]bool{}
	for _, f := range l.Flows() {
		a, b := f.Carrier, f.Customer
		if a == b {
			continue
		}
		key := [2]string{min2(a, b), max2(a, b)}
		if seen[key] {
			continue
		}
		seen[key] = true
		ab := l.Carried(key[0], key[1])
		ba := l.Carried(key[1], key[0])
		if ab < minBytes || ba < minBytes {
			continue
		}
		lo, hi := ab, ba
		if lo > hi {
			lo, hi = hi, lo
		}
		sym := float64(lo) / float64(hi)
		if sym < minSymmetry {
			continue
		}
		out = append(out, PeeringCandidate{A: key[0], B: key[1], AtoB: ab, BtoA: ba, Symmetry: sym})
	}
	sort.Slice(out, func(i, j int) bool {
		vi := out[i].AtoB + out[i].BtoA
		vj := out[j].AtoB + out[j].BtoA
		if vi != vj {
			return vi > vj
		}
		return out[i].A < out[j].A
	})
	return out
}

func min2(a, b string) string {
	if a < b {
		return a
	}
	return b
}

func max2(a, b string) string {
	if a > b {
		return a
	}
	return b
}

// String implements fmt.Stringer.
func (p PeeringCandidate) String() string {
	return fmt.Sprintf("peer{%s↔%s sym=%.2f}", p.A, p.B, p.Symmetry)
}
