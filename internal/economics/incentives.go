package economics

import (
	"errors"
	"fmt"
	"sort"
)

// IncentiveReport summarises what federation membership is worth to one
// provider — the paper's §5(4) question: "How can larger satellite provider
// companies be incentivized to join OpenSpace and collaborate with smaller
// providers?" Membership pays through two channels: carriage revenue (being
// paid to relay others' traffic) and the coverage dividend (serving your own
// subscribers during hours your fleet alone could not).
type IncentiveReport struct {
	Provider string
	// Settlement channel.
	CarriageRevenueUSD float64 // earned carrying others' traffic
	CarriageCostUSD    float64 // paid for others carrying ours
	// ContributionIndex is the fraction of the provider's total ledger
	// volume that is work done for others — high for infrastructure-heavy
	// members, low for customer-heavy ones.
	ContributionIndex float64
	// Coverage channel.
	SoloAvailability      float64 // fraction of time own users served alone
	FederatedAvailability float64
	CoverageDividendUSD   float64 // extra served user-hours, monetised
	// NetBenefitUSD is the bottom line: join if positive.
	NetBenefitUSD float64
}

// String implements fmt.Stringer.
func (r IncentiveReport) String() string {
	return fmt.Sprintf("incentive{%s: carriage %+0.2f, dividend %0.2f, net %+0.2f USD}",
		r.Provider, r.CarriageRevenueUSD-r.CarriageCostUSD, r.CoverageDividendUSD, r.NetBenefitUSD)
}

// CoverageEconomics converts availability gains into money.
type CoverageEconomics struct {
	Users              int     // the provider's subscriber count
	RevenuePerUserHour float64 // what a served user-hour is worth
	Hours              float64 // evaluation horizon
}

// Validate reports whether the parameters are usable.
func (c CoverageEconomics) Validate() error {
	if c.Users < 0 || c.RevenuePerUserHour < 0 || c.Hours < 0 {
		return errors.New("economics: coverage economics must be non-negative")
	}
	return nil
}

// Incentive computes the full membership case for one provider: settlement
// from its ledger at the given rates, plus the coverage dividend from
// solo vs federated availability (both in [0,1]).
func Incentive(l *Ledger, rates RateCard, provider string, solo, federated float64, ce CoverageEconomics) (IncentiveReport, error) {
	if l == nil {
		return IncentiveReport{}, errors.New("economics: ledger required")
	}
	if solo < 0 || solo > 1 || federated < 0 || federated > 1 {
		return IncentiveReport{}, fmt.Errorf("economics: availabilities must be in [0,1]")
	}
	if err := ce.Validate(); err != nil {
		return IncentiveReport{}, err
	}
	r := IncentiveReport{
		Provider:              provider,
		SoloAvailability:      solo,
		FederatedAvailability: federated,
	}
	var carriedForOthers, carriedByOthers int64
	for _, f := range l.Flows() {
		n := l.Carried(f.Carrier, f.Customer)
		amount := float64(n) / 1e9 * rates.Rate(f)
		if f.Carrier == provider {
			r.CarriageRevenueUSD += amount
			carriedForOthers += n
		}
		if f.Customer == provider {
			r.CarriageCostUSD += amount
			carriedByOthers += n
		}
	}
	if total := carriedForOthers + carriedByOthers; total > 0 {
		r.ContributionIndex = float64(carriedForOthers) / float64(total)
	}
	gain := federated - solo
	if gain < 0 {
		gain = 0 // federation can only add coverage
	}
	r.CoverageDividendUSD = gain * float64(ce.Users) * ce.RevenuePerUserHour * ce.Hours
	r.NetBenefitUSD = r.CarriageRevenueUSD - r.CarriageCostUSD + r.CoverageDividendUSD
	return r, nil
}

// RevenueShares splits a pot (e.g. a federation-level service fee)
// proportionally to each provider's carried volume — a simple
// contribution-weighted incentive scheme. Shares sum to pot (within float
// error); providers that carried nothing get nothing.
func RevenueShares(l *Ledger, pot float64, providers []string) (map[string]float64, error) {
	if pot < 0 {
		return nil, errors.New("economics: pot must be non-negative")
	}
	carried := map[string]int64{}
	var total int64
	for _, f := range l.Flows() {
		n := l.Carried(f.Carrier, f.Customer)
		carried[f.Carrier] += n
		total += n
	}
	out := map[string]float64{}
	sort.Strings(providers)
	for _, p := range providers {
		if total == 0 {
			out[p] = 0
			continue
		}
		out[p] = pot * float64(carried[p]) / float64(total)
	}
	return out, nil
}
