package economics

import (
	"crypto/ed25519"
	"errors"
	"math/rand"
	"testing"
)

// signerFor returns a keypair and a SignWith-compatible closure.
func signerFor(t *testing.T, seed int64) (ed25519.PublicKey, func([]byte) []byte) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return pub, func(msg []byte) []byte { return ed25519.Sign(priv, msg) }
}

// testChain builds a signed 3-hop chain a→b→a and the key map.
func testChain(t *testing.T) ([]Receipt, map[string]ed25519.PublicKey) {
	t.Helper()
	pubA, signA := signerFor(t, 1)
	pubB, signB := signerFor(t, 2)
	keys := map[string]ed25519.PublicKey{"a": pubA, "b": pubB}
	chain := []Receipt{
		{Carrier: "a", Customer: "home", FlowID: 9, HopIndex: 0, Bytes: 500, AtS: 10},
		{Carrier: "b", Customer: "home", FlowID: 9, HopIndex: 1, Bytes: 500, AtS: 10},
		{Carrier: "a", Customer: "home", FlowID: 9, HopIndex: 2, Bytes: 500, AtS: 10},
	}
	chain[0].SignWith(signA)
	chain[1].SignWith(signB)
	chain[2].SignWith(signA)
	return chain, keys
}

func TestVerifyChainValid(t *testing.T) {
	chain, keys := testChain(t)
	if err := VerifyChain(chain, keys); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
}

func TestVerifyChainErrors(t *testing.T) {
	chain, keys := testChain(t)

	if err := VerifyChain(nil, keys); !errors.Is(err, ErrChainEmpty) {
		t.Errorf("empty chain: %v", err)
	}
	// Unknown carrier key.
	mutated := append([]Receipt(nil), chain...)
	mutated[1].Carrier = "stranger"
	if err := VerifyChain(mutated, keys); !errors.Is(err, ErrReceiptKey) {
		t.Errorf("unknown carrier: %v", err)
	}
	// Tampered bytes → signature fails.
	mutated = append([]Receipt(nil), chain...)
	mutated[1].Bytes = 9999
	if err := VerifyChain(mutated, keys); !errors.Is(err, ErrReceiptSig) {
		t.Errorf("tampered bytes: %v", err)
	}
	// Hop gap.
	if err := VerifyChain([]Receipt{chain[0], chain[2]}, keys); !errors.Is(err, ErrChainBroken) {
		t.Errorf("hop gap: %v", err)
	}
	// Diverging flow ID: re-sign so the signature is valid but the chain
	// inconsistent.
	_, signB := signerFor(t, 2)
	mutated = append([]Receipt(nil), chain...)
	mutated[1].FlowID = 10
	mutated[1].SignWith(signB)
	if err := VerifyChain(mutated, keys); !errors.Is(err, ErrChainBroken) {
		t.Errorf("flow divergence: %v", err)
	}
}

func TestReceiptForgeryRejected(t *testing.T) {
	// A carrier cannot fabricate a receipt with another carrier's name:
	// signing with its own key fails verification against the named
	// carrier's key.
	pubA, _ := signerFor(t, 1)
	_, signEvil := signerFor(t, 3)
	r := Receipt{Carrier: "a", Customer: "home", FlowID: 1, HopIndex: 0, Bytes: 100}
	r.SignWith(signEvil)
	if err := r.Verify(pubA); !errors.Is(err, ErrReceiptSig) {
		t.Errorf("forged receipt: %v", err)
	}
}

func TestApplyChainMatchesRecordPath(t *testing.T) {
	chain, keys := testChain(t)
	fromReceipts := NewLedger("home")
	if err := ApplyChain(fromReceipts, chain, keys); err != nil {
		t.Fatal(err)
	}
	direct := NewLedger("home")
	if err := direct.RecordPath("home", []string{"a", "b", "a"}, 500); err != nil {
		t.Fatal(err)
	}
	if ds := CrossVerify(fromReceipts, direct); len(ds) != 0 {
		t.Errorf("receipt-derived ledger differs: %v", ds)
	}
	if got := fromReceipts.Carried("a", "home"); got != 1000 {
		t.Errorf("a carried %d, want 1000 (two hops)", got)
	}
	// Invalid chain never touches the ledger.
	bad := append([]Receipt(nil), chain...)
	bad[0].Bytes = 1
	l := NewLedger("home")
	if err := ApplyChain(l, bad, keys); err == nil {
		t.Fatal("invalid chain applied")
	}
	if len(l.Flows()) != 0 {
		t.Error("ledger modified by invalid chain")
	}
}
