package economics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRecordPathValidation(t *testing.T) {
	l := NewLedger("acme")
	if err := l.RecordPath("acme", []string{"rival"}, 0); err == nil {
		t.Error("zero bytes should fail")
	}
	if err := l.RecordPath("", []string{"rival"}, 1); err == nil {
		t.Error("empty home ISP should fail")
	}
}

func TestRecordPathAccounting(t *testing.T) {
	l := NewLedger("acme")
	// A path for an acme user crossing rival twice and acme once.
	if err := l.RecordPath("acme", []string{"acme", "rival", "rival", "third"}, 100); err != nil {
		t.Fatal(err)
	}
	if got := l.Carried("rival", "acme"); got != 200 {
		t.Errorf("rival carried %d, want 200 (two hops)", got)
	}
	if got := l.Carried("third", "acme"); got != 100 {
		t.Errorf("third carried %d, want 100", got)
	}
	// Home ISP's own hops are free.
	if got := l.Carried("acme", "acme"); got != 0 {
		t.Errorf("self-carriage recorded: %d", got)
	}
}

func TestLedgerOnlyRecordsOwnBusiness(t *testing.T) {
	l := NewLedger("acme")
	// A flow between two other providers is not acme's business.
	if err := l.RecordPath("rival", []string{"third", "third"}, 50); err != nil {
		t.Fatal(err)
	}
	if got := l.Carried("third", "rival"); got != 0 {
		t.Errorf("foreign flow recorded: %d", got)
	}
	// But a flow where acme is the carrier is.
	if err := l.RecordPath("rival", []string{"acme"}, 50); err != nil {
		t.Fatal(err)
	}
	if got := l.Carried("acme", "rival"); got != 50 {
		t.Errorf("own carriage missing: %d", got)
	}
}

func TestCrossVerifyAgreement(t *testing.T) {
	// Both parties observe the same transfer: ledgers agree.
	a, b := NewLedger("acme"), NewLedger("rival")
	path := []string{"acme", "rival", "rival"}
	for _, l := range []*Ledger{a, b} {
		if err := l.RecordPath("acme", path, 1000); err != nil {
			t.Fatal(err)
		}
	}
	if ds := CrossVerify(a, b); len(ds) != 0 {
		t.Errorf("honest ledgers disagree: %v", ds)
	}
}

func TestCrossVerifyCatchesFraud(t *testing.T) {
	a, b := NewLedger("acme"), NewLedger("rival")
	path := []string{"rival", "rival"}
	a.RecordPath("acme", path, 1000)
	b.RecordPath("acme", path, 1000)
	// rival inflates its claim with a phantom transfer.
	b.RecordPath("acme", []string{"rival"}, 500)
	ds := CrossVerify(a, b)
	if len(ds) != 1 {
		t.Fatalf("discrepancies = %v, want exactly 1", ds)
	}
	d := ds[0]
	if d.Flow.Carrier != "rival" || d.Flow.Customer != "acme" {
		t.Errorf("wrong flow flagged: %+v", d)
	}
	if d.A != 2000 || d.B != 2500 {
		t.Errorf("claimed volumes %d vs %d, want 2000 vs 2500", d.A, d.B)
	}
	if d.String() == "" {
		t.Error("discrepancy should render")
	}
}

func TestCrossVerifyIgnoresThirdParties(t *testing.T) {
	// acme's dealings with third are not checkable against rival's ledger.
	a, b := NewLedger("acme"), NewLedger("rival")
	a.RecordPath("acme", []string{"third"}, 777)
	if ds := CrossVerify(a, b); len(ds) != 0 {
		t.Errorf("third-party flow flagged: %v", ds)
	}
}

func TestCrossVerifySymmetricProperty(t *testing.T) {
	f := func(volumes []uint16) bool {
		a, b := NewLedger("A"), NewLedger("B")
		for i, v := range volumes {
			if v == 0 {
				continue
			}
			home, carrier := "A", "B"
			if i%2 == 0 {
				home, carrier = "B", "A"
			}
			a.RecordPath(home, []string{carrier}, int64(v))
			if i%3 != 0 { // b occasionally misses a record
				b.RecordPath(home, []string{carrier}, int64(v))
			}
		}
		da := CrossVerify(a, b)
		db := CrossVerify(b, a)
		if len(da) != len(db) {
			return false
		}
		for i := range da {
			if da[i].Flow != db[i].Flow || da[i].A != db[i].B || da[i].B != db[i].A {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSettleAndBalances(t *testing.T) {
	l := NewLedger("acme")
	l.RecordPath("acme", []string{"rival"}, 2e9)         // rival carried 2 GB for acme
	l.RecordPath("rival", []string{"acme", "acme"}, 1e9) // acme carried 2 GB for rival

	rates := RateCard{
		PerGB:   map[Flow]float64{{Carrier: "rival", Customer: "acme"}: 0.50},
		Default: 0.20,
	}
	inv := Settle(l, rates)
	if len(inv) != 2 {
		t.Fatalf("invoices = %v", inv)
	}
	total := map[Flow]float64{}
	for _, i := range inv {
		total[i.Flow] = i.AmountUSD
	}
	if got := total[Flow{Carrier: "rival", Customer: "acme"}]; !close2(got, 1.00) {
		t.Errorf("rival→acme invoice %v, want 1.00 (2 GB @ 0.50)", got)
	}
	if got := total[Flow{Carrier: "acme", Customer: "rival"}]; !close2(got, 0.40) {
		t.Errorf("acme→rival invoice %v, want 0.40 (2 GB @ default 0.20)", got)
	}
	bal := NetBalances(inv)
	if !close2(bal["rival"], 1.00-0.40) || !close2(bal["acme"], 0.40-1.00) {
		t.Errorf("balances = %v", bal)
	}
	if !close2(bal["acme"]+bal["rival"], 0) {
		t.Errorf("balances do not sum to zero: %v", bal)
	}
}

func TestPeeringCandidates(t *testing.T) {
	l := NewLedger("acme")
	// Symmetric heavy pair acme↔rival; asymmetric pair acme↔third.
	l.RecordPath("acme", []string{"rival"}, 10e9)
	l.RecordPath("rival", []string{"acme"}, 9e9)
	l.RecordPath("acme", []string{"third"}, 10e9)
	l.RecordPath("third", []string{"acme"}, 1e9)

	cands := PeeringCandidates(l, 1e8, 0.7)
	if len(cands) != 1 {
		t.Fatalf("candidates = %v, want exactly the symmetric pair", cands)
	}
	c := cands[0]
	if c.A != "acme" || c.B != "rival" {
		t.Errorf("wrong pair: %+v", c)
	}
	if !close2(c.Symmetry, 0.9) {
		t.Errorf("symmetry = %v, want 0.9", c.Symmetry)
	}
	// Lowering the symmetry bar admits the asymmetric pair too.
	if got := PeeringCandidates(l, 1e8, 0.05); len(got) != 2 {
		t.Errorf("loose threshold candidates = %v, want 2", got)
	}
	// Raising the volume floor excludes everything.
	if got := PeeringCandidates(l, 1e12, 0.05); len(got) != 0 {
		t.Errorf("high floor candidates = %v, want none", got)
	}
}

func TestCapexPaperNumbers(t *testing.T) {
	m := DefaultCapex()
	if m.LaserTerminalUSD != 500_000 {
		t.Errorf("laser terminal price %v, want paper's 500000", m.LaserTerminalUSD)
	}
	if m.RegulatoryFeeUSD != 12_145 {
		t.Errorf("FCC fee %v, want paper's 12145", m.RegulatoryFeeUSD)
	}
	if m.LaserTerminalKg != 15 {
		t.Errorf("laser mass %v, want paper's 15 kg", m.LaserTerminalKg)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("default capex invalid: %v", err)
	}
	// Laser satellites cost more than RF-only by terminal + launch mass.
	diff := m.SatelliteUSD(true) - m.SatelliteUSD(false)
	want := m.LaserTerminalUSD + m.LaserTerminalKg*m.LaunchPerKgUSD
	if !close2(diff, want) {
		t.Errorf("laser cost delta %v, want %v", diff, want)
	}
}

func TestFleetCost(t *testing.T) {
	m := DefaultCapex()
	plan := FleetPlan{Satellites: 10, LaserFraction: 0.5, GroundStations: 2}
	got, err := m.FleetUSD(plan)
	if err != nil {
		t.Fatal(err)
	}
	want := 5*m.SatelliteUSD(true) + 5*m.SatelliteUSD(false) + 2*m.GroundStationUSD
	if !close2(got, want) {
		t.Errorf("fleet cost %v, want %v", got, want)
	}
	// Validation failures.
	if _, err := m.FleetUSD(FleetPlan{Satellites: -1}); err == nil {
		t.Error("negative satellites should fail")
	}
	if _, err := m.FleetUSD(FleetPlan{Satellites: 1, LaserFraction: 1.5}); err == nil {
		t.Error("bad laser fraction should fail")
	}
	bad := m
	bad.BaseMassKg = 0
	if _, err := bad.FleetUSD(plan); err == nil {
		t.Error("invalid model should fail")
	}
}

func TestEntryBarrierRatio(t *testing.T) {
	m := DefaultCapex()
	global := FleetPlan{Satellites: 66, LaserFraction: 0.3, GroundStations: 6}
	ratio, err := m.EntryBarrierRatio(global, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Splitting a 66-satellite fleet across 6 providers drops each firm's
	// outlay by ~6x — the democratization argument in numbers.
	if ratio < 5.5 || ratio > 6.5 {
		t.Errorf("entry barrier ratio = %v, want ~6", ratio)
	}
	if _, err := m.EntryBarrierRatio(global, 0); err == nil {
		t.Error("zero providers should fail")
	}
}

func close2(a, b float64) bool { return math.Abs(a-b) < 1e-6 }
