package economics

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Receipt is a carrier's signed acknowledgment of having carried part of a
// flow: hop HopIndex of flow FlowID, Bytes bytes, on behalf of Customer.
// Receipts make §3's "easily cross-verifiable account" non-repudiable: a
// provider disputing a ledger entry can be confronted with its own
// signature, and a provider inflating its claims cannot produce receipts
// for traffic it never carried.
type Receipt struct {
	Carrier  string
	Customer string // the user's home ISP
	FlowID   uint64
	HopIndex int
	Bytes    int64
	AtS      float64
	Sig      []byte
}

// Receipt errors.
var (
	ErrReceiptSig  = errors.New("economics: receipt signature invalid")
	ErrReceiptKey  = errors.New("economics: no key for carrier")
	ErrChainBroken = errors.New("economics: receipt chain inconsistent")
	ErrChainEmpty  = errors.New("economics: empty receipt chain")
)

func (r *Receipt) signedBytes() []byte {
	b := make([]byte, 0, 64)
	appendStr2 := func(s string) {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	appendStr2(r.Carrier)
	appendStr2(r.Customer)
	b = binary.LittleEndian.AppendUint64(b, r.FlowID)
	b = binary.LittleEndian.AppendUint32(b, uint32(r.HopIndex))
	b = binary.LittleEndian.AppendUint64(b, uint64(r.Bytes))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.AtS))
	return b
}

// SignReceipt signs with the carrier's key via the signer callback
// (typically auth.Authenticator.Sign).
func (r *Receipt) SignWith(sign func([]byte) []byte) {
	r.Sig = sign(r.signedBytes())
}

// Verify checks the receipt against the carrier's public key.
func (r *Receipt) Verify(key ed25519.PublicKey) error {
	if !ed25519.Verify(key, r.signedBytes(), r.Sig) {
		return fmt.Errorf("%w: carrier %q hop %d", ErrReceiptSig, r.Carrier, r.HopIndex)
	}
	return nil
}

// VerifyChain validates a flow's complete receipt chain: every signature
// verifies against its carrier's key, all receipts agree on flow, customer
// and bytes, and hop indices are 0..n-1 in order.
func VerifyChain(chain []Receipt, keys map[string]ed25519.PublicKey) error {
	if len(chain) == 0 {
		return ErrChainEmpty
	}
	first := chain[0]
	for i, r := range chain {
		key, ok := keys[r.Carrier]
		if !ok {
			return fmt.Errorf("%w: %q", ErrReceiptKey, r.Carrier)
		}
		if err := r.Verify(key); err != nil {
			return err
		}
		if r.FlowID != first.FlowID || r.Customer != first.Customer || r.Bytes != first.Bytes {
			return fmt.Errorf("%w: receipt %d diverges", ErrChainBroken, i)
		}
		if r.HopIndex != i {
			return fmt.Errorf("%w: hop %d at position %d", ErrChainBroken, r.HopIndex, i)
		}
	}
	return nil
}

// ApplyChain records a verified chain into a ledger — the receipt-backed
// form of RecordPath.
func ApplyChain(l *Ledger, chain []Receipt, keys map[string]ed25519.PublicKey) error {
	if err := VerifyChain(chain, keys); err != nil {
		return err
	}
	owners := make([]string, len(chain))
	for i, r := range chain {
		owners[i] = r.Carrier
	}
	return l.RecordPath(chain[0].Customer, owners, chain[0].Bytes)
}
