package economics

import (
	"math"
	"strings"
	"testing"
)

func TestIncentiveSettlementChannel(t *testing.T) {
	l := NewLedger("big")
	// big carried 10 GB for small; small carried 2 GB for big.
	l.RecordPath("small", []string{"big"}, 10e9)
	l.RecordPath("big", []string{"small"}, 2e9)
	rates := RateCard{Default: 0.50}

	r, err := Incentive(l, rates, "big", 0.9, 0.95, CoverageEconomics{})
	if err != nil {
		t.Fatal(err)
	}
	if !close2(r.CarriageRevenueUSD, 5.0) {
		t.Errorf("revenue = %v, want 5.00", r.CarriageRevenueUSD)
	}
	if !close2(r.CarriageCostUSD, 1.0) {
		t.Errorf("cost = %v, want 1.00", r.CarriageCostUSD)
	}
	// Contribution: 10 of 12 GB was work for others.
	if !close2(r.ContributionIndex, 10.0/12.0) {
		t.Errorf("contribution = %v", r.ContributionIndex)
	}
	// No users → no dividend; net is pure settlement.
	if !close2(r.NetBenefitUSD, 4.0) {
		t.Errorf("net = %v, want 4.00", r.NetBenefitUSD)
	}
	if !strings.Contains(r.String(), "big") {
		t.Error("report should render")
	}
}

func TestIncentiveCoverageDividendDominates(t *testing.T) {
	// The §5(4) case: a large provider loses a little on settlement but its
	// subscribers gain hours of availability — membership still pays.
	l := NewLedger("big")
	l.RecordPath("big", []string{"small"}, 10e9) // big pays small $2 at 0.20/GB
	ce := CoverageEconomics{Users: 10000, RevenuePerUserHour: 0.01, Hours: 24}
	r, err := Incentive(l, RateCard{Default: 0.20}, "big", 0.80, 0.95, ce)
	if err != nil {
		t.Fatal(err)
	}
	if r.CarriageRevenueUSD != 0 || !close2(r.CarriageCostUSD, 2.0) {
		t.Errorf("settlement wrong: %+v", r)
	}
	// Dividend: 0.15 × 10000 × 0.01 × 24 = 360.
	if !close2(r.CoverageDividendUSD, 360) {
		t.Errorf("dividend = %v, want 360", r.CoverageDividendUSD)
	}
	if r.NetBenefitUSD <= 0 {
		t.Errorf("membership should pay: net %v", r.NetBenefitUSD)
	}
}

func TestIncentiveValidation(t *testing.T) {
	l := NewLedger("p")
	if _, err := Incentive(nil, RateCard{}, "p", 0, 0, CoverageEconomics{}); err == nil {
		t.Error("nil ledger should fail")
	}
	if _, err := Incentive(l, RateCard{}, "p", -0.1, 0, CoverageEconomics{}); err == nil {
		t.Error("bad solo availability should fail")
	}
	if _, err := Incentive(l, RateCard{}, "p", 0, 1.1, CoverageEconomics{}); err == nil {
		t.Error("bad federated availability should fail")
	}
	if _, err := Incentive(l, RateCard{}, "p", 0, 0, CoverageEconomics{Users: -1}); err == nil {
		t.Error("negative users should fail")
	}
	// Federation "losing" coverage clamps to zero dividend, not negative.
	r, err := Incentive(l, RateCard{}, "p", 0.9, 0.5, CoverageEconomics{Users: 10, RevenuePerUserHour: 1, Hours: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.CoverageDividendUSD != 0 {
		t.Errorf("negative gain should clamp: %v", r.CoverageDividendUSD)
	}
}

func TestRevenueShares(t *testing.T) {
	// The federation-level ledger records carriage done for it ("fed" as
	// the customer), so every carrier's volume is visible to the split.
	l := NewLedger("fed")
	l.RecordPath("fed", []string{"a", "a", "b"}, 100) // a: 200, b: 100
	shares, err := RevenueShares(l, 300, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if !close2(shares["a"], 200) || !close2(shares["b"], 100) || shares["c"] != 0 {
		t.Errorf("shares = %v", shares)
	}
	var sum float64
	for _, v := range shares {
		sum += v
	}
	if math.Abs(sum-300) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	// Empty ledger → all zero.
	empty := NewLedger("fed")
	shares, err = RevenueShares(empty, 100, []string{"a"})
	if err != nil || shares["a"] != 0 {
		t.Errorf("empty ledger shares = %v, %v", shares, err)
	}
	if _, err := RevenueShares(l, -1, nil); err == nil {
		t.Error("negative pot should fail")
	}
}
