// Package economics implements OpenSpace's cost models (§3 of the paper).
//
// The paper rejects a direct BGP-style provider/customer hierarchy — in a
// meshed, mobile system a subsystem can be provider and customer at once —
// and proposes instead: the home ISP knows the full topology of its users'
// routes, "the volume of traffic along this path is tracked by all parties
// involved to create an easily cross-verifiable account of the extent to
// which any given ISP's traffic was carried by the rest of the network",
// with actual prices left to bilateral agreements.
//
// This package provides exactly those pieces: per-provider traffic Ledgers
// keyed by (carrier, customer), cross-verification between independently
// kept ledgers, settlement against bilateral rate cards, the peering
// recommendation for symmetric pairs, and the capex model (launch,
// terminals, licensing) that drives the paper's democratization argument.
package economics

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Flow identifies a carriage relationship: Carrier moved traffic on behalf
// of Customer (the user's home ISP).
type Flow struct {
	Carrier  string
	Customer string
}

// Ledger records carried traffic volumes. Every party on a path keeps its
// own ledger; agreement between them is what makes accounts cross-verifiable.
// Safe for concurrent use.
type Ledger struct {
	Owner string // the provider keeping this ledger

	mu    sync.Mutex
	bytes map[Flow]int64
}

// NewLedger creates an empty ledger kept by owner.
func NewLedger(owner string) *Ledger {
	return &Ledger{Owner: owner, bytes: make(map[Flow]int64)}
}

// RecordPath accounts one transfer of n bytes for a user homed at homeISP
// whose route's hops were carried by hopOwners (one entry per hop, in path
// order). Hops carried by the home ISP itself cost nothing; every other hop
// credits its carrier. Only flows involving the ledger's owner are recorded
// — each party tracks what it can observe.
func (l *Ledger) RecordPath(homeISP string, hopOwners []string, n int64) error {
	if n <= 0 {
		return fmt.Errorf("economics: bytes %d must be positive", n)
	}
	if homeISP == "" {
		return errors.New("economics: home ISP required")
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, owner := range hopOwners {
		if owner == homeISP {
			continue
		}
		if owner != l.Owner && homeISP != l.Owner {
			continue // not our business
		}
		l.bytes[Flow{Carrier: owner, Customer: homeISP}] += n
	}
	return nil
}

// Carried returns the bytes carrier moved for customer according to this
// ledger.
func (l *Ledger) Carried(carrier, customer string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bytes[Flow{Carrier: carrier, Customer: customer}]
}

// Flows returns all recorded flows in deterministic order.
func (l *Ledger) Flows() []Flow {
	l.mu.Lock()
	defer l.mu.Unlock()
	fs := make([]Flow, 0, len(l.bytes))
	for f := range l.bytes {
		fs = append(fs, f)
	}
	sort.Slice(fs, func(i, j int) bool {
		if fs[i].Carrier != fs[j].Carrier {
			return fs[i].Carrier < fs[j].Carrier
		}
		return fs[i].Customer < fs[j].Customer
	})
	return fs
}

// Discrepancy is one disagreement found by CrossVerify.
type Discrepancy struct {
	Flow Flow
	A, B int64 // what each ledger claims
}

// String implements fmt.Stringer.
func (d Discrepancy) String() string {
	return fmt.Sprintf("%s carried for %s: %d vs %d bytes", d.Flow.Carrier, d.Flow.Customer, d.A, d.B)
}

// CrossVerify compares two independently kept ledgers over the flows both
// parties are involved in (carrier or customer is one of the two owners).
// An empty result means the accounts agree — the paper's check that lets
// providers bill each other without a trusted third party.
func CrossVerify(a, b *Ledger) []Discrepancy {
	shared := func(f Flow) bool {
		involved := func(p string) bool { return f.Carrier == p || f.Customer == p }
		return involved(a.Owner) && involved(b.Owner)
	}
	seen := map[Flow]bool{}
	var ds []Discrepancy
	check := func(f Flow) {
		if seen[f] || !shared(f) {
			return
		}
		seen[f] = true
		va, vb := a.Carried(f.Carrier, f.Customer), b.Carried(f.Carrier, f.Customer)
		if va != vb {
			ds = append(ds, Discrepancy{Flow: f, A: va, B: vb})
		}
	}
	for _, f := range a.Flows() {
		check(f)
	}
	for _, f := range b.Flows() {
		check(f)
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Flow.Carrier != ds[j].Flow.Carrier {
			return ds[i].Flow.Carrier < ds[j].Flow.Carrier
		}
		return ds[i].Flow.Customer < ds[j].Flow.Customer
	})
	return ds
}
