package economics

import (
	"errors"
	"fmt"
)

// CapexModel prices building, licensing and launching a satellite fleet —
// the startup costs §3 wants minimised for small entrants. Reference
// numbers come from the paper: the FCC's proposed small-satellite
// regulatory fee of about $12,145 and the ~$500,000 laser terminal.
type CapexModel struct {
	BusUSD           float64 // spacecraft bus, integration and test
	RFTerminalUSD    float64 // mandatory RF ISL terminal
	LaserTerminalUSD float64 // optional optical terminal
	LaserTerminalKg  float64 // its mass (drives launch cost)
	LaunchPerKgUSD   float64 // rideshare launch price
	BaseMassKg       float64 // bus + RF terminal mass
	RegulatoryFeeUSD float64 // per-satellite licensing (FCC small-sat fee)
	GroundStationUSD float64 // one gateway ground station, built out
}

// DefaultCapex returns the model with the paper's published figures and
// representative smallsat industry numbers for the rest.
func DefaultCapex() CapexModel {
	return CapexModel{
		BusUSD:           750_000,
		RFTerminalUSD:    60_000,
		LaserTerminalUSD: 500_000, // §2.1 reference terminal
		LaserTerminalKg:  15,      // §2.1: "at least 15kg"
		LaunchPerKgUSD:   6_000,   // rideshare class
		BaseMassKg:       110,
		RegulatoryFeeUSD: 12_145, // §3: FCC proposed small-satellite fee
		GroundStationUSD: 1_200_000,
	}
}

// Validate reports whether the model is usable.
func (m CapexModel) Validate() error {
	if m.BusUSD < 0 || m.RFTerminalUSD < 0 || m.LaserTerminalUSD < 0 ||
		m.LaunchPerKgUSD < 0 || m.RegulatoryFeeUSD < 0 || m.GroundStationUSD < 0 {
		return errors.New("economics: capex prices must be non-negative")
	}
	if m.BaseMassKg <= 0 {
		return errors.New("economics: base mass must be positive")
	}
	if m.LaserTerminalKg < 0 {
		return errors.New("economics: laser mass must be non-negative")
	}
	return nil
}

// SatelliteUSD prices one satellite, with or without a laser terminal:
// hardware + licensing + launch (mass-dependent).
func (m CapexModel) SatelliteUSD(withLaser bool) float64 {
	cost := m.BusUSD + m.RFTerminalUSD + m.RegulatoryFeeUSD
	mass := m.BaseMassKg
	if withLaser {
		cost += m.LaserTerminalUSD
		mass += m.LaserTerminalKg
	}
	return cost + mass*m.LaunchPerKgUSD
}

// FleetPlan describes a provider's buildout.
type FleetPlan struct {
	Satellites     int
	LaserFraction  float64 // fraction of satellites carrying lasers, 0..1
	GroundStations int
}

// Validate reports whether the plan is well-formed.
func (p FleetPlan) Validate() error {
	if p.Satellites < 0 || p.GroundStations < 0 {
		return errors.New("economics: fleet counts must be non-negative")
	}
	if p.LaserFraction < 0 || p.LaserFraction > 1 {
		return fmt.Errorf("economics: laser fraction %.2f outside [0,1]", p.LaserFraction)
	}
	return nil
}

// FleetUSD prices a buildout plan. The number of laser satellites is
// rounded down — a conservative estimate for the cheaper RF-heavy mixes
// small entrants favour.
func (m CapexModel) FleetUSD(p FleetPlan) (float64, error) {
	if err := m.Validate(); err != nil {
		return 0, err
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	laser := int(float64(p.Satellites) * p.LaserFraction)
	rfOnly := p.Satellites - laser
	total := float64(laser)*m.SatelliteUSD(true) +
		float64(rfOnly)*m.SatelliteUSD(false) +
		float64(p.GroundStations)*m.GroundStationUSD
	return total, nil
}

// EntryBarrierRatio compares a monolithic global deployment against a
// collaborating small provider's share: the capital a firm needs to launch
// globalFleet satellites alone, divided by the capital to launch its share
// of a federated constellation of the same total size split across
// nProviders. This quantifies the paper's core economic argument for
// collaboration.
func (m CapexModel) EntryBarrierRatio(globalFleet FleetPlan, nProviders int) (float64, error) {
	if nProviders <= 0 {
		return 0, errors.New("economics: providers must be positive")
	}
	full, err := m.FleetUSD(globalFleet)
	if err != nil {
		return 0, err
	}
	share := FleetPlan{
		Satellites:     (globalFleet.Satellites + nProviders - 1) / nProviders,
		LaserFraction:  globalFleet.LaserFraction,
		GroundStations: (globalFleet.GroundStations + nProviders - 1) / nProviders,
	}
	part, err := m.FleetUSD(share)
	if err != nil {
		return 0, err
	}
	if part == 0 {
		return 0, errors.New("economics: degenerate share cost")
	}
	return full / part, nil
}
