// Package faults is the deterministic fault-injection layer: it generates
// reproducible fault timelines (satellite hard failures, ISL laser-terminal
// flaps, ground-station weather outages, and correlated solar-storm mass
// events), maintains the set of currently failed elements as a cheap
// overlay mask on topology snapshots, and drives dynamic recovery — fast
// reroute onto precomputed edge-disjoint backups, falling back to a full
// recompute on the degraded topology — through the discrete-event engine.
//
// The paper's §4 redundancy claim ("operational failures, load balancing,
// and range cutoffs … can be handled efficiently") is only testable with a
// notion of *when* failures happen and whether they heal; this package is
// the substrate every time-varying robustness scenario builds on. Every
// timeline is a pure function of (Config, horizon, element list): per-
// element RNG streams are derived from exec.Seed domain tags, so the same
// configuration produces byte-identical fault schedules at any worker
// count and regardless of element iteration order.
package faults

import (
	"fmt"
	"sort"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/topo"
)

// RNG domains: each fault class draws an independent stream, so adding a
// ground station can never perturb the satellite failure schedule. The
// IDs predate the tags — every committed fault schedule keeps its stream.
var (
	domainSat    = exec.Domain{Tag: "faults/satfail", ID: 101}
	domainISL    = exec.Domain{Tag: "faults/islflap", ID: 102}
	domainGround = exec.Domain{Tag: "faults/ground", ID: 103}
	domainStorm  = exec.Domain{Tag: "faults/storm", ID: 104}
)

// Kind labels a fault class.
type Kind int

// Fault kinds.
const (
	// KindSatFailure is a satellite hard failure: the node and every
	// incident link disappear until repair.
	KindSatFailure Kind = iota
	// KindISLFlap is a laser-terminal (or RF chain) flap on one
	// inter-satellite link: the undirected edge disappears briefly.
	KindISLFlap
	// KindGroundOutage is a ground-station weather outage: the station
	// node disappears until the weather clears.
	KindGroundOutage
	// KindStorm marks a satellite outage belonging to a correlated
	// solar-storm mass event rather than an independent failure.
	KindStorm
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindSatFailure:
		return "sat-failure"
	case KindISLFlap:
		return "isl-flap"
	case KindGroundOutage:
		return "ground-outage"
	case KindStorm:
		return "solar-storm"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fault interval: the target element is down during
// [StartS, EndS). Node faults set Node; edge faults set From/To
// (undirected).
type Event struct {
	Kind     Kind
	Node     string
	From, To string
	StartS   float64
	EndS     float64
}

// Config parameterises timeline generation. Each element class fails as a
// renewal process: up-times are exponential with the class MTBF, repair
// times exponential with the class MTTR. A zero MTBF disables the class,
// so the zero Config injects nothing.
type Config struct {
	// SatMTBFS / SatMTTRS govern independent satellite hard failures.
	SatMTBFS, SatMTTRS float64
	// ISLMTBFS / ISLMTTRS govern per-link laser-terminal flaps.
	ISLMTBFS, ISLMTTRS float64
	// GroundMTBFS / GroundMTTRS govern ground-station weather outages.
	GroundMTBFS, GroundMTTRS float64
	// StormMTBFS is the fleet-wide mean time between solar storms; each
	// storm takes down StormFraction of the satellites (each drawn
	// independently) for exponential StormMTTRS outages.
	StormMTBFS, StormMTTRS float64
	StormFraction          float64
	// Seed roots every per-element RNG stream.
	Seed int64
}

// Default returns a reference fault environment for an Iridium-scale
// fleet: rare hard failures, frequent short ISL flaps, occasional long
// weather outages, and a rare storm that downs 30 % of the fleet at once.
func Default() Config {
	return Config{
		SatMTBFS: 24 * 3600, SatMTTRS: 20 * 60,
		ISLMTBFS: 12 * 3600, ISLMTTRS: 60,
		GroundMTBFS: 12 * 3600, GroundMTTRS: 30 * 60,
		StormMTBFS: 48 * 3600, StormMTTRS: 15 * 60,
		StormFraction: 0.3,
		Seed:          1,
	}
}

// Enabled reports whether any fault class can fire.
func (c Config) Enabled() bool {
	return c.SatMTBFS > 0 || c.ISLMTBFS > 0 || c.GroundMTBFS > 0 || c.StormMTBFS > 0
}

// Validate rejects configurations that cannot generate a well-formed
// timeline.
func (c Config) Validate() error {
	check := func(name string, mtbf, mttr float64) error {
		if mtbf < 0 || mttr < 0 {
			return fmt.Errorf("faults: %s MTBF/MTTR must be non-negative", name)
		}
		if mtbf > 0 && mttr <= 0 {
			return fmt.Errorf("faults: %s enabled (MTBF %.0f s) but MTTR is zero", name, mtbf)
		}
		return nil
	}
	if err := check("satellite", c.SatMTBFS, c.SatMTTRS); err != nil {
		return err
	}
	if err := check("ISL", c.ISLMTBFS, c.ISLMTTRS); err != nil {
		return err
	}
	if err := check("ground", c.GroundMTBFS, c.GroundMTTRS); err != nil {
		return err
	}
	if err := check("storm", c.StormMTBFS, c.StormMTTRS); err != nil {
		return err
	}
	if c.StormMTBFS > 0 && (c.StormFraction <= 0 || c.StormFraction > 1) {
		return fmt.Errorf("faults: storm fraction %.2f must be in (0,1]", c.StormFraction)
	}
	return nil
}

// Scale returns the config with every failure rate multiplied by
// intensity (MTBFs divided; repair times unchanged). intensity 0 disables
// all classes — the knob the availability experiment sweeps.
func (c Config) Scale(intensity float64) Config {
	if intensity <= 0 {
		c.SatMTBFS, c.ISLMTBFS, c.GroundMTBFS, c.StormMTBFS = 0, 0, 0, 0
		return c
	}
	c.SatMTBFS /= intensity
	c.ISLMTBFS /= intensity
	c.GroundMTBFS /= intensity
	c.StormMTBFS /= intensity
	return c
}

// Inputs names the maskable elements of a topology, in the deterministic
// order their RNG streams are indexed by. Build one with
// InputsFromSnapshot or assemble directly (IDs must be sorted and ISL
// endpoints ordered From < To).
type Inputs struct {
	Satellites []string
	Grounds    []string
	ISLs       [][2]string
}

// InputsFromSnapshot collects the satellites, ground stations and
// undirected ISLs of a snapshot in sorted order.
func InputsFromSnapshot(s *topo.Snapshot) Inputs {
	var in Inputs
	seen := make(map[[2]string]bool)
	for _, id := range s.Nodes() { // sorted
		switch s.Node(id).Kind {
		case topo.KindSatellite:
			in.Satellites = append(in.Satellites, id)
		case topo.KindGroundStation:
			in.Grounds = append(in.Grounds, id)
		}
		for _, e := range s.Neighbors(id) {
			if e.Kind != topo.LinkISLRF && e.Kind != topo.LinkISLLaser {
				continue
			}
			key := [2]string{e.From, e.To}
			if key[0] > key[1] {
				key[0], key[1] = key[1], key[0]
			}
			if !seen[key] {
				seen[key] = true
				in.ISLs = append(in.ISLs, key)
			}
		}
	}
	sort.Slice(in.ISLs, func(a, b int) bool {
		if in.ISLs[a][0] != in.ISLs[b][0] {
			return in.ISLs[a][0] < in.ISLs[b][0]
		}
		return in.ISLs[a][1] < in.ISLs[b][1]
	})
	return in
}

// Timeline is a deterministic fault schedule over [0, HorizonS).
type Timeline struct {
	HorizonS float64
	// Events are sorted by start time (ties broken by kind and target).
	Events []Event
}

// Generate builds the fault timeline for the given elements over
// [0, horizonS). Each element's failure process draws from its own RNG
// stream (exec.Seed with a per-class domain tag and the element's index),
// so the timeline is identical however the caller parallelises around it.
func Generate(cfg Config, horizonS float64, in Inputs) (*Timeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if horizonS <= 0 {
		return nil, fmt.Errorf("faults: horizon %.1f must be positive", horizonS)
	}
	tl := &Timeline{HorizonS: horizonS}

	// Independent renewal processes per element.
	renewal := func(domain exec.Domain, idx int, mtbf, mttr float64, mk func(start, end float64) Event) {
		if mtbf <= 0 {
			return
		}
		rng := exec.DomainRNG(cfg.Seed, domain, int64(idx))
		t := rng.ExpFloat64() * mtbf
		for t < horizonS {
			end := t + rng.ExpFloat64()*mttr
			tl.Events = append(tl.Events, mk(t, end))
			t = end + rng.ExpFloat64()*mtbf
		}
	}
	for i, id := range in.Satellites {
		id := id
		renewal(domainSat, i, cfg.SatMTBFS, cfg.SatMTTRS, func(s, e float64) Event {
			return Event{Kind: KindSatFailure, Node: id, StartS: s, EndS: e}
		})
	}
	for i, isl := range in.ISLs {
		isl := isl
		renewal(domainISL, i, cfg.ISLMTBFS, cfg.ISLMTTRS, func(s, e float64) Event {
			return Event{Kind: KindISLFlap, From: isl[0], To: isl[1], StartS: s, EndS: e}
		})
	}
	for i, id := range in.Grounds {
		id := id
		renewal(domainGround, i, cfg.GroundMTBFS, cfg.GroundMTTRS, func(s, e float64) Event {
			return Event{Kind: KindGroundOutage, Node: id, StartS: s, EndS: e}
		})
	}

	// Correlated mass events: one fleet-wide storm process; each storm
	// rolls per-satellite membership and outage length from a per-storm
	// stream, so storms are reproducible independently of each other.
	if cfg.StormMTBFS > 0 {
		arrivals := exec.DomainRNG(cfg.Seed, domainStorm)
		t := arrivals.ExpFloat64() * cfg.StormMTBFS
		for storm := 0; t < horizonS; storm++ {
			srng := exec.DomainRNG(cfg.Seed, domainStorm, int64(storm))
			for _, id := range in.Satellites {
				if srng.Float64() >= cfg.StormFraction {
					continue
				}
				end := t + srng.ExpFloat64()*cfg.StormMTTRS
				tl.Events = append(tl.Events, Event{Kind: KindStorm, Node: id, StartS: t, EndS: end})
			}
			t += arrivals.ExpFloat64() * cfg.StormMTBFS
		}
	}

	sort.Slice(tl.Events, func(a, b int) bool {
		ea, eb := tl.Events[a], tl.Events[b]
		if ea.StartS != eb.StartS { //lint:allow floateq exact sort tie-break keeps the fault schedule deterministic
			return ea.StartS < eb.StartS
		}
		if ea.Kind != eb.Kind {
			return ea.Kind < eb.Kind
		}
		if ea.Node != eb.Node {
			return ea.Node < eb.Node
		}
		if ea.From != eb.From {
			return ea.From < eb.From
		}
		return ea.To < eb.To
	})
	return tl, nil
}

// MaskAt returns a fresh mask holding every event active at time t — the
// static (non-engine) way to sample the timeline, used for degraded
// snapshot views at an instant.
func (tl *Timeline) MaskAt(t float64) *Mask {
	m := NewMask()
	for _, ev := range tl.Events {
		if ev.StartS <= t && t < ev.EndS {
			m.Apply(ev)
		}
	}
	return m
}
