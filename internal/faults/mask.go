package faults

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/sim"
)

// Mask is the set of currently failed elements, maintained incrementally
// as fault events start and end. It implements topo.Mask, so a snapshot
// degraded by the current fault state is one Overlay call away — no
// geometry rebuild. Overlapping outages on the same element are
// reference-counted: a satellite downed by both a storm and an independent
// hard failure stays down until both clear.
type Mask struct {
	nodes map[string]int
	edges map[[2]string]int
}

// NewMask returns an empty mask (nothing down).
func NewMask() *Mask {
	return &Mask{nodes: make(map[string]int), edges: make(map[[2]string]int)}
}

// edgeKey normalises an undirected link key.
func edgeKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Apply marks the event's target down.
func (m *Mask) Apply(ev Event) {
	if ev.Node != "" {
		m.nodes[ev.Node]++
		return
	}
	m.edges[edgeKey(ev.From, ev.To)]++
}

// Clear marks the event's target repaired.
func (m *Mask) Clear(ev Event) {
	if ev.Node != "" {
		if m.nodes[ev.Node]--; m.nodes[ev.Node] <= 0 {
			delete(m.nodes, ev.Node)
		}
		return
	}
	key := edgeKey(ev.From, ev.To)
	if m.edges[key]--; m.edges[key] <= 0 {
		delete(m.edges, key)
	}
}

// NodeDown implements topo.Mask.
func (m *Mask) NodeDown(id string) bool { return m.nodes[id] > 0 }

// EdgeDown implements topo.Mask.
func (m *Mask) EdgeDown(from, to string) bool { return m.edges[edgeKey(from, to)] > 0 }

// Empty implements topo.Mask.
func (m *Mask) Empty() bool { return len(m.nodes) == 0 && len(m.edges) == 0 }

// Down returns the number of failed nodes and links.
func (m *Mask) Down() (nodes, edges int) { return len(m.nodes), len(m.edges) }

// PathDown reports whether any node or hop of the node sequence is failed.
func (m *Mask) PathDown(nodes []string) bool {
	if m.Empty() {
		return false
	}
	for i, id := range nodes {
		if m.NodeDown(id) {
			return true
		}
		if i+1 < len(nodes) && m.EdgeDown(id, nodes[i+1]) {
			return true
		}
	}
	return false
}

// Drive schedules the timeline onto the engine: at each event's start the
// mask applies it, at its end (when inside the horizon) the mask clears
// it, and onChange — if non-nil — runs after every mask update with the
// event and its new state (down true at start, false at repair). Events
// are scheduled in timeline order, so same-instant faults apply in the
// deterministic order Generate sorted them into.
func (tl *Timeline) Drive(e *sim.Engine, m *Mask, onChange func(e *sim.Engine, ev Event, down bool)) error {
	if m == nil {
		return fmt.Errorf("faults: drive needs a mask")
	}
	for _, ev := range tl.Events {
		ev := ev
		if err := e.Schedule(ev.StartS, func(e *sim.Engine) {
			m.Apply(ev)
			if onChange != nil {
				onChange(e, ev, true)
			}
		}); err != nil {
			return err
		}
		if ev.EndS >= tl.HorizonS {
			continue // repairs beyond the horizon never observed
		}
		if err := e.Schedule(ev.EndS, func(e *sim.Engine) {
			m.Clear(ev)
			if onChange != nil {
				onChange(e, ev, false)
			}
		}); err != nil {
			return err
		}
	}
	return nil
}
