package faults

import (
	"reflect"
	"testing"

	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
)

const week = 7 * 24 * 3600.0

func testInputs() Inputs {
	return Inputs{
		Satellites: []string{"sat-0", "sat-1", "sat-2", "sat-3"},
		Grounds:    []string{"gs-0", "gs-1"},
		ISLs:       [][2]string{{"sat-0", "sat-1"}, {"sat-1", "sat-2"}, {"sat-2", "sat-3"}},
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	cfg := Default()
	a, err := Generate(cfg, week, testInputs())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, week, testInputs())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two generations with the same config differ")
	}
	if len(a.Events) == 0 {
		t.Fatal("a week at default rates should produce events")
	}
	for i, ev := range a.Events {
		if ev.StartS < 0 || ev.StartS >= week {
			t.Errorf("event %d starts outside the horizon: %+v", i, ev)
		}
		if ev.EndS <= ev.StartS {
			t.Errorf("event %d has a non-positive outage: %+v", i, ev)
		}
		if i > 0 && a.Events[i-1].StartS > ev.StartS {
			t.Errorf("events not sorted at %d", i)
		}
	}
}

// TestGenerateDomainIsolation pins the per-class RNG streams: adding ground
// stations must not perturb the satellite failure schedule.
func TestGenerateDomainIsolation(t *testing.T) {
	cfg := Default()
	cfg.StormMTBFS = 0 // storms key off the satellite list only
	satOnly := Inputs{Satellites: testInputs().Satellites}
	full := testInputs()
	a, err := Generate(cfg, week, satOnly)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, week, full)
	if err != nil {
		t.Fatal(err)
	}
	filter := func(tl *Timeline) []Event {
		var out []Event
		for _, ev := range tl.Events {
			if ev.Kind == KindSatFailure {
				out = append(out, ev)
			}
		}
		return out
	}
	if !reflect.DeepEqual(filter(a), filter(b)) {
		t.Error("adding grounds/ISLs perturbed the satellite failure schedule")
	}
}

func TestGenerateStormsAreCorrelated(t *testing.T) {
	cfg := Config{StormMTBFS: 3600, StormMTTRS: 600, StormFraction: 1, Seed: 7}
	tl, err := Generate(cfg, week, testInputs())
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) == 0 {
		t.Fatal("hourly storms over a week must fire")
	}
	// Fraction 1: every storm downs every satellite at the same instant.
	byStart := make(map[float64]int)
	for _, ev := range tl.Events {
		if ev.Kind != KindStorm {
			t.Fatalf("unexpected kind %v in storm-only config", ev.Kind)
		}
		byStart[ev.StartS]++
	}
	for start, n := range byStart {
		if n != len(testInputs().Satellites) {
			t.Errorf("storm at %.1f downed %d satellites, want all %d",
				start, n, len(testInputs().Satellites))
		}
	}
}

func TestGenerateRejectsBadInput(t *testing.T) {
	if _, err := Generate(Default(), 0, testInputs()); err == nil {
		t.Error("zero horizon must be rejected")
	}
	bad := Default()
	bad.SatMTTRS = 0
	if _, err := Generate(bad, week, testInputs()); err == nil {
		t.Error("enabled class with zero MTTR must be rejected")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config (everything disabled) invalid: %v", err)
	}
	cases := []Config{
		{SatMTBFS: -1},
		{ISLMTBFS: 10, ISLMTTRS: 0},
		{GroundMTBFS: 10, GroundMTTRS: -1},
		{StormMTBFS: 10, StormMTTRS: 5, StormFraction: 0},
		{StormMTBFS: 10, StormMTTRS: 5, StormFraction: 1.5},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, c)
		}
	}
}

func TestScale(t *testing.T) {
	base := Default()
	double := base.Scale(2)
	if double.SatMTBFS != base.SatMTBFS/2 || double.ISLMTBFS != base.ISLMTBFS/2 {
		t.Error("intensity 2 must halve MTBFs")
	}
	if double.SatMTTRS != base.SatMTTRS {
		t.Error("intensity must not change repair times")
	}
	off := base.Scale(0)
	if off.Enabled() {
		t.Error("intensity 0 must disable every class")
	}
	tl, err := Generate(off, week, testInputs())
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.Events) != 0 {
		t.Errorf("disabled config generated %d events", len(tl.Events))
	}
}

func TestInputsFromSnapshot(t *testing.T) {
	nodes := []topo.Node{
		{ID: "sat-b", Kind: topo.KindSatellite},
		{ID: "sat-a", Kind: topo.KindSatellite},
		{ID: "gs-0", Kind: topo.KindGroundStation},
		{ID: "u-0", Kind: topo.KindUser},
	}
	edges := []topo.Edge{
		{From: "sat-a", To: "sat-b", Kind: topo.LinkISLLaser},
		{From: "sat-b", To: "sat-a", Kind: topo.LinkISLLaser},
		{From: "sat-a", To: "gs-0", Kind: topo.LinkGround},
		{From: "u-0", To: "sat-a", Kind: topo.LinkAccess},
	}
	s, err := topo.NewSnapshot(0, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	in := InputsFromSnapshot(s)
	if !reflect.DeepEqual(in.Satellites, []string{"sat-a", "sat-b"}) {
		t.Errorf("satellites = %v", in.Satellites)
	}
	if !reflect.DeepEqual(in.Grounds, []string{"gs-0"}) {
		t.Errorf("grounds = %v", in.Grounds)
	}
	// The ISL is deduplicated across both directions; ground/access links
	// are not maskable ISLs.
	if !reflect.DeepEqual(in.ISLs, [][2]string{{"sat-a", "sat-b"}}) {
		t.Errorf("ISLs = %v", in.ISLs)
	}
}

func TestMaskRefcounting(t *testing.T) {
	m := NewMask()
	storm := Event{Kind: KindStorm, Node: "sat-0"}
	hard := Event{Kind: KindSatFailure, Node: "sat-0"}
	m.Apply(storm)
	m.Apply(hard)
	m.Clear(storm)
	if !m.NodeDown("sat-0") {
		t.Error("node with one of two overlapping outages cleared came back up")
	}
	m.Clear(hard)
	if m.NodeDown("sat-0") || !m.Empty() {
		t.Error("node with all outages cleared still down")
	}

	flap := Event{Kind: KindISLFlap, From: "sat-1", To: "sat-0"}
	m.Apply(flap)
	if !m.EdgeDown("sat-0", "sat-1") || !m.EdgeDown("sat-1", "sat-0") {
		t.Error("edge fault must block both directions")
	}
	if n, e := m.Down(); n != 0 || e != 1 {
		t.Errorf("Down() = %d,%d want 0,1", n, e)
	}
	if !m.PathDown([]string{"sat-0", "sat-1", "sat-2"}) {
		t.Error("path through a failed hop must be down")
	}
	if m.PathDown([]string{"sat-2", "sat-3"}) {
		t.Error("path avoiding all faults reported down")
	}
	m.Clear(flap)
	if !m.Empty() {
		t.Error("mask not empty after clearing everything")
	}
}

func TestMaskAt(t *testing.T) {
	tl := &Timeline{HorizonS: 100, Events: []Event{
		{Kind: KindSatFailure, Node: "sat-0", StartS: 10, EndS: 20},
		{Kind: KindISLFlap, From: "sat-1", To: "sat-2", StartS: 15, EndS: 40},
	}}
	if !tl.MaskAt(5).Empty() {
		t.Error("mask before any fault must be empty")
	}
	m := tl.MaskAt(16)
	if !m.NodeDown("sat-0") || !m.EdgeDown("sat-2", "sat-1") {
		t.Error("mask at 16 missing active faults")
	}
	if m = tl.MaskAt(20); m.NodeDown("sat-0") {
		t.Error("outage interval is half-open: repaired exactly at EndS")
	}
	if !tl.MaskAt(39).EdgeDown("sat-1", "sat-2") {
		t.Error("flap still active at 39")
	}
	if !tl.MaskAt(50).Empty() {
		t.Error("mask after all repairs must be empty")
	}
}

func TestDrive(t *testing.T) {
	tl := &Timeline{HorizonS: 100, Events: []Event{
		{Kind: KindSatFailure, Node: "sat-0", StartS: 5, EndS: 8},
		{Kind: KindGroundOutage, Node: "gs-0", StartS: 7, EndS: 200},
	}}
	e := sim.NewEngine()
	m := NewMask()
	var transitions []string
	onChange := func(e *sim.Engine, ev Event, down bool) {
		state := "up"
		if down {
			state = "down"
		}
		transitions = append(transitions, ev.Kind.String()+":"+state)
	}
	if err := tl.Drive(e, m, onChange); err != nil {
		t.Fatal(err)
	}
	e.Run(tl.HorizonS)
	want := []string{"sat-failure:down", "ground-outage:down", "sat-failure:up"}
	if !reflect.DeepEqual(transitions, want) {
		t.Errorf("transitions = %v, want %v", transitions, want)
	}
	// gs-0's repair lies beyond the horizon: never observed.
	if !m.NodeDown("gs-0") || m.NodeDown("sat-0") {
		t.Error("final mask wrong: want only gs-0 down")
	}
	if err := tl.Drive(e, nil, nil); err == nil {
		t.Error("nil mask must be rejected")
	}
}
