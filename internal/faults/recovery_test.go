package faults

import (
	"math"
	"testing"

	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/topo"
)

// recoverySnapshot builds three parallel routes src→{a,b,c}→dst with
// increasing delay, plus an unreachable island node. With Backups=2 the
// protected candidates are the a- and b-routes; the c-route is only
// reachable through a full recompute.
func recoverySnapshot(t *testing.T) *topo.Snapshot {
	t.Helper()
	nodes := []topo.Node{
		{ID: "src", Kind: topo.KindUser},
		{ID: "a", Kind: topo.KindSatellite},
		{ID: "b", Kind: topo.KindSatellite},
		{ID: "c", Kind: topo.KindSatellite},
		{ID: "dst", Kind: topo.KindGroundStation},
		{ID: "island", Kind: topo.KindGroundStation},
	}
	mk := func(from, to string, delay float64) []topo.Edge {
		return []topo.Edge{
			{From: from, To: to, Kind: topo.LinkISLRF, DelayS: delay, CapacityBps: 1e9},
			{From: to, To: from, Kind: topo.LinkISLRF, DelayS: delay, CapacityBps: 1e9},
		}
	}
	var edges []topo.Edge
	for i, via := range []string{"a", "b", "c"} {
		d := 0.01 * float64(i+1)
		edges = append(edges, mk("src", via, d)...)
		edges = append(edges, mk(via, "dst", d)...)
	}
	s, err := topo.NewSnapshot(0, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFlowSurvivesISLFailureViaBackup is the acceptance scenario: an ISL on
// the active path fails mid-run and the flow rides out the outage on its
// precomputed edge-disjoint backup, down only for detection + FRR switch.
func TestFlowSurvivesISLFailureViaBackup(t *testing.T) {
	snap := recoverySnapshot(t)
	tl := &Timeline{HorizonS: 100, Events: []Event{
		{Kind: KindISLFlap, From: "a", To: "dst", StartS: 10, EndS: 20},
	}}
	rc := DefaultRecovery()
	res, err := RunFlows(snap, []FlowSpec{{ID: "f0", Src: "src", Dst: "dst"}}, tl, rc, routing.LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.NoPath {
		t.Fatal("flow has a path on the intact topology")
	}
	if f.Avail.Interruptions != 1 || f.Avail.Reroutes != 1 {
		t.Fatalf("interruptions=%d reroutes=%d, want 1 reroute for 1 interruption",
			f.Avail.Interruptions, f.Avail.Reroutes)
	}
	wantDown := rc.DetectS + rc.FRRSwitchS
	if math.Abs(f.Avail.DowntimeS-wantDown) > 1e-9 {
		t.Errorf("downtime = %v s, want detect+switch = %v s", f.Avail.DowntimeS, wantDown)
	}
	if !f.OnBackup {
		t.Error("flow must end the run on its backup path")
	}
	if got := f.Avail.Availability(res.HorizonS); got <= 0.999 || got >= 1 {
		t.Errorf("availability = %v, want just under 1", got)
	}
	if res.FaultTransitions != 2 {
		t.Errorf("fault transitions = %d, want failure + repair", res.FaultTransitions)
	}
}

// TestRecomputeWhenAllBackupsDead: both precomputed candidates die, so the
// slow path recomputes a route on the degraded snapshot and adopts it.
func TestRecomputeWhenAllBackupsDead(t *testing.T) {
	snap := recoverySnapshot(t)
	tl := &Timeline{HorizonS: 100, Events: []Event{
		{Kind: KindSatFailure, Node: "a", StartS: 10, EndS: 1e6},
		{Kind: KindSatFailure, Node: "b", StartS: 10, EndS: 1e6},
	}}
	rc := DefaultRecovery()
	rc.Backups = 2 // candidates via a and b only; c needs a recompute
	res, err := RunFlows(snap, []FlowSpec{{ID: "f0", Src: "src", Dst: "dst"}}, tl, rc, routing.LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Avail.IsDown() {
		t.Fatal("flow must recover via recompute onto the c-route")
	}
	if f.Avail.Interruptions != 1 {
		t.Errorf("interruptions = %d, want 1", f.Avail.Interruptions)
	}
	// The first repair attempt fast-reroutes onto the b-candidate, which is
	// already dead when the switchover lands; the retry recomputes. Total
	// outage: detect+switch (wasted FRR) then detect+recompute.
	wantDown := (rc.DetectS + rc.FRRSwitchS) + (rc.DetectS + rc.RecomputeS)
	if math.Abs(f.Avail.DowntimeS-wantDown) > 1e-9 {
		t.Errorf("downtime = %v s, want %v s", f.Avail.DowntimeS, wantDown)
	}
	if f.Avail.Reroutes != 0 {
		t.Errorf("reroutes = %d; a recompute recovery is not a fast reroute", f.Avail.Reroutes)
	}
	if !f.OnBackup {
		t.Error("an adopted recompute path is off-primary")
	}
}

// TestOutageWithNoRouteLastsUntilRepair: a single-path flow stays down for
// the whole fault interval when no alternative exists.
func TestOutageWithNoRouteLastsUntilRepair(t *testing.T) {
	nodes := []topo.Node{
		{ID: "src", Kind: topo.KindUser},
		{ID: "m", Kind: topo.KindSatellite},
		{ID: "dst", Kind: topo.KindGroundStation},
	}
	edges := []topo.Edge{
		{From: "src", To: "m", Kind: topo.LinkISLRF, DelayS: 0.01, CapacityBps: 1e9},
		{From: "m", To: "src", Kind: topo.LinkISLRF, DelayS: 0.01, CapacityBps: 1e9},
		{From: "m", To: "dst", Kind: topo.LinkISLRF, DelayS: 0.01, CapacityBps: 1e9},
		{From: "dst", To: "m", Kind: topo.LinkISLRF, DelayS: 0.01, CapacityBps: 1e9},
	}
	snap, err := topo.NewSnapshot(0, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	tl := &Timeline{HorizonS: 100, Events: []Event{
		{Kind: KindSatFailure, Node: "m", StartS: 10, EndS: 30},
	}}
	rc := DefaultRecovery()
	res, err := RunFlows(snap, []FlowSpec{{ID: "f0", Src: "src", Dst: "dst"}}, tl, rc, routing.LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	f := res.Flows[0]
	if f.Avail.IsDown() {
		t.Fatal("flow must come back after the repair")
	}
	// Down from the failure at 10 until repair at 30 plus one detect+switch
	// to re-install the (repaired) primary.
	wantDown := 20 + rc.DetectS + rc.FRRSwitchS
	if math.Abs(f.Avail.DowntimeS-wantDown) > 1e-9 {
		t.Errorf("downtime = %v s, want %v s", f.Avail.DowntimeS, wantDown)
	}
	if f.Avail.Interruptions != 1 {
		t.Errorf("interruptions = %d, want 1 (continuous outage)", f.Avail.Interruptions)
	}
}

func TestRunFlowsReportsNoPath(t *testing.T) {
	snap := recoverySnapshot(t)
	tl := &Timeline{HorizonS: 100}
	res, err := RunFlows(snap, []FlowSpec{
		{ID: "ok", Src: "src", Dst: "dst"},
		{ID: "stranded", Src: "src", Dst: "island"},
	}, tl, DefaultRecovery(), routing.LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].NoPath {
		t.Error("connected flow flagged NoPath")
	}
	if !res.Flows[1].NoPath {
		t.Error("stranded flow not flagged NoPath")
	}
	if a := res.Flows[0].Avail.Availability(res.HorizonS); a != 1 {
		t.Errorf("fault-free availability = %v, want 1", a)
	}
}

func TestRunFlowsValidation(t *testing.T) {
	snap := recoverySnapshot(t)
	tl := &Timeline{HorizonS: 100}
	bad := DefaultRecovery()
	bad.Backups = 0
	if _, err := RunFlows(snap, nil, tl, bad, routing.LatencyCost(0)); err == nil {
		t.Error("zero backups must be rejected")
	}
	if _, err := RunFlows(nil, nil, tl, DefaultRecovery(), routing.LatencyCost(0)); err == nil {
		t.Error("nil snapshot must be rejected")
	}
	if _, err := RunFlows(snap, nil, nil, DefaultRecovery(), routing.LatencyCost(0)); err == nil {
		t.Error("nil timeline must be rejected")
	}
}
