package faults

import (
	"errors"
	"fmt"

	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
)

// RecoveryConfig sets the repair machinery's latencies and depth.
type RecoveryConfig struct {
	// Backups is the number of edge-disjoint candidate paths precomputed
	// per flow (including the primary).
	Backups int
	// DetectS is the failure-detection latency: loss-of-light / missed
	// keepalives before the repair machinery reacts.
	DetectS float64
	// FRRSwitchS is the switchover time onto a precomputed backup once the
	// failure is detected (fast reroute).
	FRRSwitchS float64
	// RecomputeS is the slow-path latency: a full shortest-path recompute
	// on the degraded topology when no precomputed candidate survives.
	RecomputeS float64
}

// DefaultRecovery models optical-terminal loss-of-light detection (50 ms),
// a 10 ms label-switch onto a precomputed backup, and a 500 ms control-
// plane recompute, with 3 disjoint candidates per flow.
func DefaultRecovery() RecoveryConfig {
	return RecoveryConfig{Backups: 3, DetectS: 0.05, FRRSwitchS: 0.01, RecomputeS: 0.5}
}

// Validate rejects unusable recovery parameters.
func (rc RecoveryConfig) Validate() error {
	if rc.Backups < 1 {
		return fmt.Errorf("faults: recovery needs ≥ 1 path, got %d", rc.Backups)
	}
	if rc.DetectS < 0 || rc.FRRSwitchS < 0 || rc.RecomputeS < 0 {
		return errors.New("faults: recovery latencies must be non-negative")
	}
	return nil
}

// FlowSpec names one protected flow.
type FlowSpec struct {
	ID, Src, Dst string
}

// FlowOutcome reports one flow after the run.
type FlowOutcome struct {
	ID string
	// NoPath marks flows that had no route even on the intact topology;
	// they carry no availability data.
	NoPath bool
	// OnBackup reports whether the flow ended the run off its primary path.
	OnBackup bool
	// Avail is the flow's outage ledger.
	Avail sim.FlowAvailability
}

// RunResult aggregates a RunFlows run.
type RunResult struct {
	HorizonS float64
	// FaultTransitions counts mask state changes (starts + repairs).
	FaultTransitions int
	// Flows holds one outcome per spec, in spec order.
	Flows []FlowOutcome
}

// RunFlows drives the protected flows through the fault timeline on a
// discrete-event engine and reports per-flow availability. Each flow gets
// rc.Backups edge-disjoint candidate paths up front; when a fault breaks a
// flow's active path the flow goes down, and after DetectS the repair
// machinery either fast-reroutes onto the first surviving candidate
// (FRRSwitchS) or recomputes a route on the degraded snapshot
// (RecomputeS). A flow with no live route stays down until a repair event
// makes one available — that outage is the availability cost E15 measures.
func RunFlows(snap *topo.Snapshot, specs []FlowSpec, tl *Timeline, rc RecoveryConfig, cost routing.CostFunc) (*RunResult, error) {
	if err := rc.Validate(); err != nil {
		return nil, err
	}
	if snap == nil || tl == nil {
		return nil, errors.New("faults: RunFlows needs a snapshot and a timeline")
	}
	type flow struct {
		spec    FlowSpec
		prot    *routing.Protected
		av      sim.FlowAvailability
		pending bool // a recovery completion is scheduled
	}
	res := &RunResult{HorizonS: tl.HorizonS}
	flows := make([]*flow, 0, len(specs))
	for _, spec := range specs {
		f := &flow{spec: spec}
		prot, err := routing.Protect(snap, spec.Src, spec.Dst, cost, rc.Backups)
		switch {
		case errors.Is(err, routing.ErrNoPath):
			// Disconnected even when healthy: excluded from availability.
		case err != nil:
			return nil, err
		default:
			f.prot = prot
		}
		flows = append(flows, f)
	}

	engine := sim.NewEngine()
	mask := NewMask()
	alive := func(p routing.Path) bool { return !mask.PathDown(p.Nodes) }

	// attemptRecovery attempts repair for a down flow and schedules its completion;
	// complete re-validates (the chosen path may have died while the
	// switchover was in flight) and either restores the flow or retries.
	var attemptRecovery func(f *flow, e *sim.Engine)
	complete := func(f *flow, viaBackup bool) func(*sim.Engine) {
		return func(e *sim.Engine) {
			f.pending = false
			if !f.av.IsDown() {
				return
			}
			if !alive(f.prot.Active()) {
				attemptRecovery(f, e)
				return
			}
			f.av.Up(e.Now(), viaBackup)
		}
	}
	attemptRecovery = func(f *flow, e *sim.Engine) {
		if f.pending {
			return
		}
		if _, ok := f.prot.Reroute(alive); ok {
			f.pending = true
			if err := e.After(rc.DetectS+rc.FRRSwitchS, complete(f, true)); err != nil {
				panic(err) // delays are validated non-negative
			}
			return
		}
		p, err := routing.ShortestPath(snap.Overlay(mask), f.spec.Src, f.spec.Dst, cost)
		if err != nil {
			return // no live route; the next repair event retries
		}
		f.prot.Adopt(p)
		f.pending = true
		if err := e.After(rc.DetectS+rc.RecomputeS, complete(f, false)); err != nil {
			panic(err)
		}
	}

	onChange := func(e *sim.Engine, _ Event, _ bool) {
		res.FaultTransitions++
		for _, f := range flows {
			if f.prot == nil {
				continue
			}
			switch {
			case !f.av.IsDown() && !alive(f.prot.Active()):
				f.av.Down(e.Now())
				attemptRecovery(f, e)
			case f.av.IsDown() && !f.pending:
				// A repair may have revived a candidate or opened a route.
				attemptRecovery(f, e)
			}
		}
	}
	if err := tl.Drive(engine, mask, onChange); err != nil {
		return nil, err
	}
	engine.Run(tl.HorizonS)

	for _, f := range flows {
		out := FlowOutcome{ID: f.spec.ID, NoPath: f.prot == nil}
		if f.prot != nil {
			f.av.Finish(tl.HorizonS)
			out.Avail = f.av
			out.OnBackup = f.prot.OnBackup()
		}
		res.Flows = append(res.Flows, out)
	}
	return res, nil
}
