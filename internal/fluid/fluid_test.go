package fluid

import (
	"math"
	"math/rand"
	"testing"

	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
	"github.com/openspace-project/openspace/internal/traffic"
)

func TestClassMeanBytesMatchesSampling(t *testing.T) {
	// The analytic mean must agree with what sim.FlowSizeBytes actually
	// draws — it is the expectation the fluid path substitutes for it.
	rng := rand.New(rand.NewSource(3))
	for _, cl := range DefaultClasses() {
		var sum float64
		const n = 400000
		for i := 0; i < n; i++ {
			sum += float64(sim.FlowSizeBytes(cl.MinBytes, cl.MaxBytes, cl.ParetoAlpha, rng))
		}
		mc := sum / n
		want := cl.MeanBytes()
		if rel := math.Abs(mc-want) / want; rel > 0.05 {
			t.Errorf("class %s: analytic mean %.4g vs Monte Carlo %.4g (rel err %.3f)",
				cl.Name, want, mc, rel)
		}
	}
}

func TestClassQuantileBytes(t *testing.T) {
	cl := Class{Name: "x", UserShare: 1, RatePerUserS: 1, MinBytes: 1000, MaxBytes: 1e6, ParetoAlpha: 1.2}
	if got := cl.QuantileBytes(0); got != 1000 {
		t.Errorf("q0 = %v, want the lower bound", got)
	}
	if got := cl.QuantileBytes(1); got != 1e6 {
		t.Errorf("q1 = %v, want the upper bound", got)
	}
	prev := 0.0
	for q := 0.05; q < 1; q += 0.05 {
		v := cl.QuantileBytes(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%.2f: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestBuildClassMatrix(t *testing.T) {
	cfg := Config{Users: 1_000_000, Seed: 5}
	m, err := BuildClassMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantAggs := len(m.Cities) * len(m.Cities) * len(m.Classes)
	if len(m.Aggregates) != wantAggs {
		t.Fatalf("aggregates = %d, want %d", len(m.Aggregates), wantAggs)
	}
	// Effective users must conserve the configured population.
	var users float64
	seeds := make(map[int64]bool)
	for _, a := range m.Aggregates {
		users += a.Users
		seeds[a.Seed] = true
	}
	if math.Abs(users-float64(cfg.Users)) > 1e-6*float64(cfg.Users) {
		t.Errorf("effective users %.1f, want %d", users, cfg.Users)
	}
	if len(seeds) != wantAggs {
		t.Errorf("aggregate seeds collide: %d distinct of %d", len(seeds), wantAggs)
	}
	if m.OfferedBps() <= 0 {
		t.Error("offered load must be positive")
	}
	if _, err := BuildClassMatrix(Config{Users: 0}); err == nil {
		t.Error("zero users must be rejected")
	}
	if !cfg.Enabled() {
		t.Error("config with users must be enabled")
	}
	if (Config{}).Enabled() {
		t.Error("zero config must be disabled")
	}
}

// gridSnapshot builds a real +Grid Walker Delta snapshot with gateways at
// the most populous cities — the environment E18 runs in.
func gridSnapshot(tb testing.TB, nsats, ngws int, timeS float64) (*topo.Snapshot, []traffic.Gateway) {
	tb.Helper()
	w, err := orbit.SquareWalkerDelta(nsats, 550, 53)
	if err != nil {
		tb.Fatal(err)
	}
	c, err := w.Build()
	if err != nil {
		tb.Fatal(err)
	}
	pairs, err := w.GridISLs(w.DefaultGrid())
	if err != nil {
		tb.Fatal(err)
	}
	tcfg := topo.DefaultConfig()
	tcfg.StaticISLs = pairs
	specs := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements, HasLaser: true}
	}
	var gws []traffic.Gateway
	cities := sim.WorldCities()
	for i := 0; i < len(cities) && len(gws) < ngws; i++ {
		gws = append(gws, traffic.Gateway{ID: "gw-" + cities[i].Name, Pos: cities[i].Pos})
	}
	grounds := make([]topo.GroundSpec, len(gws))
	for i, g := range gws {
		grounds[i] = topo.GroundSpec{ID: g.ID, Provider: "p", Pos: g.Pos}
	}
	return topo.Build(timeS, tcfg, specs, grounds, nil), gws
}

func TestEvolverDeliversOnGrid(t *testing.T) {
	cfg := Config{Users: 200_000, Seed: 7}
	m, err := BuildClassMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, gws := gridSnapshot(t, 100, 8, 0)
	ev, err := NewEvolver(m, cfg, gws)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 3; epoch++ {
		t0 := float64(epoch) * 30
		if err := ev.Advance(snap, t0, t0+30, epoch); err != nil {
			t.Fatal(err)
		}
	}
	r := ev.Result()
	if r.Epochs != 3 || r.HorizonS != 90 {
		t.Fatalf("epochs=%d horizon=%v, want 3/90", r.Epochs, r.HorizonS)
	}
	if r.TransfersAttempted == 0 {
		t.Fatal("no transfers attempted — arrival realisation broken")
	}
	if r.TransfersDelivered == 0 || r.BytesDelivered == 0 {
		t.Fatalf("nothing delivered on a lit grid: %+v", r)
	}
	if r.TransfersDelivered > r.TransfersAttempted {
		t.Fatalf("delivered %d > attempted %d", r.TransfersDelivered, r.TransfersAttempted)
	}
	if r.CarriedBps() <= 0 {
		t.Error("carried capacity must be positive")
	}
	if r.Latency.Count() == 0 {
		t.Error("no latency mass recorded")
	}
	if p50 := r.Latency.Quantile(0.5); p50 <= 0 || p50 > 35 {
		t.Errorf("p50 latency %v s implausible", p50)
	}
	var perClassDelivered int64
	for _, c := range r.PerClass {
		perClassDelivered += c.TransfersDelivered
	}
	if perClassDelivered != r.TransfersDelivered {
		t.Errorf("per-class delivered %d ≠ total %d", perClassDelivered, r.TransfersDelivered)
	}
}

func TestEvolverDeterministicReplay(t *testing.T) {
	cfg := Config{Users: 150_000, Seed: 11}
	snap, gws := gridSnapshot(t, 64, 6, 0)
	run := func() *Result {
		m, err := BuildClassMatrix(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := NewEvolver(m, cfg, gws)
		if err != nil {
			t.Fatal(err)
		}
		for epoch := 0; epoch < 4; epoch++ {
			t0 := float64(epoch) * 15
			if err := ev.Advance(snap, t0, t0+15, epoch); err != nil {
				t.Fatal(err)
			}
		}
		return ev.Result()
	}
	a, b := run(), run()
	if a.TransfersAttempted != b.TransfersAttempted ||
		a.TransfersDelivered != b.TransfersDelivered ||
		a.BytesDelivered != b.BytesDelivered ||
		a.Retries != b.Retries || a.Abandoned != b.Abandoned ||
		a.LocalTransfers != b.LocalTransfers {
		t.Fatalf("replay diverged:\n%+v\n%+v", a, b)
	}
	for _, q := range []float64{0.1, 0.5, 0.95, 0.99} {
		if a.Latency.Quantile(q) != b.Latency.Quantile(q) {
			t.Fatalf("latency q%.2f diverged: %v vs %v", q, a.Latency.Quantile(q), b.Latency.Quantile(q))
		}
	}
	if a.CarriedBps() != b.CarriedBps() {
		t.Fatalf("carried diverged: %v vs %v", a.CarriedBps(), b.CarriedBps())
	}
}

// darkSnapshot has the gateway nodes but no links at all: no gateway is
// lit, the constellation is effectively dark.
func darkSnapshot(tb testing.TB, gws []traffic.Gateway) *topo.Snapshot {
	tb.Helper()
	nodes := make([]topo.Node, len(gws))
	for i, g := range gws {
		nodes[i] = topo.Node{ID: g.ID, Kind: topo.KindGroundStation}
	}
	s, err := topo.NewSnapshot(0, nodes, nil)
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestEvolverDarkEpochsBacklogAndAbandon(t *testing.T) {
	cfg := Config{Users: 100_000, Seed: 13, MaxRetryEpochs: 2}
	m, err := BuildClassMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, gws := gridSnapshot(t, 16, 5, 0)
	dark := darkSnapshot(t, gws)
	ev, err := NewEvolver(m, cfg, gws)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Advance(dark, 0, 30, 0); err != nil {
		t.Fatal(err)
	}
	r := ev.Result()
	if r.DarkEpochs != 1 {
		t.Fatalf("dark epochs = %d, want 1", r.DarkEpochs)
	}
	if r.TransfersDelivered != 0 {
		t.Fatalf("delivered %d transfers with no gateway lit", r.TransfersDelivered)
	}
	if r.PendingTransfers == 0 || r.Retries == 0 {
		t.Fatalf("dark epoch must backlog arrivals: pending=%d retries=%d", r.PendingTransfers, r.Retries)
	}
	// Stay dark past the retry budget: the backlog must drain into
	// Abandoned rather than grow without bound.
	for epoch := 1; epoch <= 4; epoch++ {
		if err := ev.Advance(dark, float64(epoch)*30, float64(epoch+1)*30, epoch); err != nil {
			t.Fatal(err)
		}
	}
	if r.Abandoned == 0 {
		t.Fatal("retry budget exhausted but nothing abandoned")
	}
}

func TestEvolverRecoversBacklogAfterDarkEpoch(t *testing.T) {
	cfg := Config{Users: 100_000, Seed: 17, MaxRetryEpochs: 5}
	m, err := BuildClassMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, gws := gridSnapshot(t, 100, 8, 0)
	dark := darkSnapshot(t, gws)
	ev, err := NewEvolver(m, cfg, gws)
	if err != nil {
		t.Fatal(err)
	}
	if err := ev.Advance(dark, 0, 30, 0); err != nil {
		t.Fatal(err)
	}
	pending := ev.Result().PendingTransfers
	if pending == 0 {
		t.Fatal("dark epoch left no backlog")
	}
	if err := ev.Advance(snap, 30, 60, 1); err != nil {
		t.Fatal(err)
	}
	r := ev.Result()
	if r.Recovered == 0 {
		t.Fatalf("lit epoch after a dark one recovered nothing (pending was %d)", pending)
	}
	if r.TransfersDelivered == 0 {
		t.Fatal("nothing delivered after recovery epoch")
	}
}

// TestEvolverInterruptionCounting: a fault overlay that relights the
// gateways remaps every city, so backlog carried across the transition is
// charged to Interrupted — but only while SetFaultsActive(true) holds.
func TestEvolverInterruptionCounting(t *testing.T) {
	run := func(active bool) *Result {
		cfg := Config{Users: 100_000, Seed: 13, MaxRetryEpochs: 5}
		m, err := BuildClassMatrix(cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap, gws := gridSnapshot(t, 100, 8, 0)
		dark := darkSnapshot(t, gws)
		ev, err := NewEvolver(m, cfg, gws)
		if err != nil {
			t.Fatal(err)
		}
		ev.SetFaultsActive(active)
		if err := ev.Advance(dark, 0, 30, 0); err != nil {
			t.Fatal(err)
		}
		if ev.Result().PendingTransfers == 0 {
			t.Fatal("dark epoch left no backlog")
		}
		if err := ev.Advance(snap, 30, 60, 1); err != nil {
			t.Fatal(err)
		}
		return ev.Result()
	}

	withFaults := run(true)
	if withFaults.Interrupted == 0 {
		t.Fatal("gateway remap under active faults charged no interruptions")
	}
	withoutFaults := run(false)
	if withoutFaults.Interrupted != 0 {
		t.Fatalf("interruptions %d charged while faults inactive", withoutFaults.Interrupted)
	}
	// The gate must be pure accounting: every delivery counter matches.
	if withFaults.TransfersDelivered != withoutFaults.TransfersDelivered ||
		withFaults.TransfersAttempted != withoutFaults.TransfersAttempted ||
		withFaults.Abandoned != withoutFaults.Abandoned {
		t.Errorf("fault-active accounting changed delivery counters: %+v vs %+v", withFaults, withoutFaults)
	}
}

func TestPoissonMeanAndDeterminism(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 40, 200, 5000} {
		rng := rand.New(rand.NewSource(1))
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / n
		// Standard error of the mean is sqrt(mean/n); allow 5 sigma.
		tol := 5 * math.Sqrt(mean/n)
		if math.Abs(got-mean) > tol {
			t.Errorf("mean %v: sample mean %v beyond ±%v", mean, got, tol)
		}
		a, b := rand.New(rand.NewSource(2)), rand.New(rand.NewSource(2))
		for i := 0; i < 100; i++ {
			if poisson(a, mean) != poisson(b, mean) {
				t.Fatalf("mean %v: identical rng states gave different draws", mean)
			}
		}
	}
	if poisson(rand.New(rand.NewSource(1)), 0) != 0 {
		t.Error("zero mean must give zero arrivals")
	}
}
