package fluid

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"strings"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
	"github.com/openspace-project/openspace/internal/traffic"
)

// Evolver advances a ClassMatrix through topology/fault epochs. Each
// Advance call realises the epoch's Poisson arrivals per aggregate, pools
// them with the backlog carried from earlier epochs, offers the pooled
// bytes to traffic.MaxMinFair over the epoch's snapshot, and
// de-aggregates the allocation into delivered/latency/retry counters.
// The whole evolution is sequential and deterministic: identical inputs
// give identical Results at any worker count.
type Evolver struct {
	m   *ClassMatrix
	cfg Config
	gws []traffic.Gateway

	model traffic.CapacityModel
	res   *Result

	// Per-aggregate backlog: transfers that arrived but were not served,
	// pooled across epochs. backlogAgeE is the age in epochs of the oldest
	// pooled transfer — an approximation (FIFO service is assumed inside a
	// pool), which is what bounds retry bookkeeping to O(aggregates).
	backlogT    []int64
	backlogB    []float64
	backlogAgeE []int

	// Fault-visibility state for interruption accounting (see
	// Result.Interrupted): faultsActive mirrors whether the caller has a
	// fault overlay installed on the snapshots it feeds Advance, and
	// prevCityGW holds the previous epoch's city→gateway mapping
	// (prevValid guards the first epoch, which has no predecessor).
	faultsActive bool
	prevValid    bool
	prevCityGW   []string

	// Per-epoch scratch, sized once at construction and reused by every
	// Advance so the realise/group/carry/deaggregate kernels allocate
	// nothing in steady state (see TestAllocGateEvolverKernels). The
	// //lint:scratch tags put every buffer under the scratchsafe escape
	// check: nothing aliasing them may outlive the Advance that filled
	// them. rng is a single scratch generator Reseed-ed per (aggregate,
	// epoch) — the identical stream exec.RNG would construct, without the
	// two heap objects per draw site.
	rng        *rand.Rand        //lint:scratch
	lit        []traffic.Gateway //lint:scratch
	cityGW     []string          //lint:scratch
	poolT      []int64           //lint:scratch
	poolB      []float64         //lint:scratch
	oldT       []int64           //lint:scratch
	served     []float64         //lint:scratch
	delay      []pathDelay       //lint:scratch
	entries    []groupEntry      //lint:scratch
	groupStart []int32           //lint:scratch
	demands    []traffic.Demand  //lint:scratch
}

// Result accumulates ScenarioResult-compatible counters across epochs.
// "Transfers" below are transport attempts: transfers whose ingress and
// egress gateway coincide never enter the space segment and are counted
// in LocalTransfers only, mirroring DemandMatrix.LocalUsers.
type Result struct {
	Users    int
	Epochs   int
	HorizonS float64
	// DarkEpochs counts epochs with no lit gateway at all — every arrival
	// goes straight to backlog.
	DarkEpochs int

	TransfersAttempted int64
	TransfersDelivered int64
	LocalTransfers     int64
	BytesDelivered     int64
	// Retries counts transfer-epochs spent waiting in backlog: each
	// unserved transfer re-offers once per subsequent epoch, the fluid
	// analogue of core's per-flow retry events.
	Retries int64
	// Recovered counts backlogged transfers that a later epoch delivered.
	Recovered int64
	// Abandoned counts transfers dropped after MaxRetryEpochs epochs in
	// backlog — the fluid analogue of exhausting the retry budget.
	Abandoned int64
	// Interrupted counts in-flight interruption events while faults are
	// active: backlogged transfers whose ingress or egress gateway mapping
	// changed between consecutive fault-active epochs (the overlay severed
	// or restored a gateway, forcing their cities elsewhere). It is the
	// fluid analogue of core's per-flow DroppedTerminals counter; the
	// SetFaultsActive gate keeps fault-free runs byte-identical to runs
	// that predate the counter.
	Interrupted int64
	// PendingTransfers is the backlog remaining after the last epoch.
	PendingTransfers int64

	// Latency pools delivered-transfer latencies across all classes;
	// PerClass splits the same counters by traffic class.
	Latency  *sim.Sketch
	PerClass []ClassResult

	carriedBpsDt float64
}

// ClassResult is one traffic class's slice of the counters.
type ClassResult struct {
	Name               string
	TransfersAttempted int64
	TransfersDelivered int64
	BytesDelivered     int64
	Latency            *sim.Sketch
}

// CarriedBps is the time-averaged carried capacity over the horizon, 0
// before any epoch.
func (r *Result) CarriedBps() float64 {
	if r.HorizonS <= 0 {
		return 0
	}
	return r.carriedBpsDt / r.HorizonS
}

// DeliveredFraction is delivered/attempted transport transfers, 1 with no
// attempts.
func (r *Result) DeliveredFraction() float64 {
	if r.TransfersAttempted == 0 {
		return 1
	}
	return float64(r.TransfersDelivered) / float64(r.TransfersAttempted)
}

// NewEvolver prepares an evolution of m between the given gateways using
// the standard capacity model.
func NewEvolver(m *ClassMatrix, cfg Config, gws []traffic.Gateway) (*Evolver, error) {
	cfg = cfg.withDefaults()
	if m == nil || len(m.Aggregates) == 0 {
		return nil, fmt.Errorf("fluid: empty class matrix")
	}
	if len(gws) == 0 {
		return nil, fmt.Errorf("fluid: no gateways")
	}
	res := &Result{
		Users:   m.Users,
		Latency: mustSketch(cfg.SketchAlpha),
	}
	for _, cl := range m.Classes {
		res.PerClass = append(res.PerClass, ClassResult{Name: cl.Name, Latency: mustSketch(cfg.SketchAlpha)})
	}
	n := len(m.Aggregates)
	return &Evolver{
		m:           m,
		cfg:         cfg,
		gws:         gws,
		model:       traffic.DefaultCapacityModel(),
		res:         res,
		backlogT:    make([]int64, n),
		backlogB:    make([]float64, n),
		backlogAgeE: make([]int, n),
		prevCityGW:  make([]string, len(m.Cities)),
		rng:         exec.ScratchRNG(),
		lit:         make([]traffic.Gateway, 0, len(gws)),
		cityGW:      make([]string, len(m.Cities)),
		poolT:       make([]int64, n),
		poolB:       make([]float64, n),
		oldT:        make([]int64, n),
		served:      make([]float64, n),
		delay:       make([]pathDelay, n),
		entries:     make([]groupEntry, 0, n),
		groupStart:  make([]int32, 0, n+1),
		demands:     make([]traffic.Demand, 0, n),
	}, nil
}

func mustSketch(alpha float64) *sim.Sketch {
	s, err := sim.NewSketch(alpha)
	if err != nil {
		panic(err) // unreachable: withDefaults guarantees alpha in range
	}
	return s
}

// groupEntry is one aggregate's contribution to a routed commodity.
// Sorted by (src, dst, class, k), runs of equal (src, dst, class) are the
// demand groups, members in ascending aggregate order — the same member
// order and float summation order the retired map-of-groups
// implementation produced, so every counter stays bit-identical.
type groupEntry struct {
	src, dst string
	class    int
	k        int
}

// cmpGroupEntry is a total order (k is unique per epoch), so the grouped
// runs are independent of the sort algorithm.
func cmpGroupEntry(a, b groupEntry) int {
	if c := strings.Compare(a.src, b.src); c != 0 {
		return c
	}
	if c := strings.Compare(a.dst, b.dst); c != 0 {
		return c
	}
	if a.class != b.class {
		return a.class - b.class
	}
	return a.k - b.k
}

// sameCommodity reports whether two entries share a routed commodity.
func sameCommodity(a, b groupEntry) bool {
	return a.src == b.src && a.dst == b.dst && a.class == b.class
}

// Advance evolves the matrix across one epoch [t0, t1) over the given
// snapshot (fault overlays already applied by the caller). epoch indexes
// the aggregate arrival streams and must be distinct per call.
func (e *Evolver) Advance(snap *topo.Snapshot, t0, t1 float64, epoch int) error {
	dt := t1 - t0
	if dt <= 0 {
		return fmt.Errorf("fluid: epoch [%.3f, %.3f) has non-positive span", t0, t1)
	}

	// Lit gateways: present in the snapshot with at least one live link.
	// Fault masks that sever a gateway remove its edges in the overlay,
	// which is exactly what re-routes its cities elsewhere.
	e.lit = e.lit[:0]
	for _, g := range e.gws {
		if snap.Node(g.ID) != nil && len(snap.Neighbors(g.ID)) > 0 {
			e.lit = append(e.lit, g)
		}
	}
	for i, c := range e.m.Cities {
		e.cityGW[i] = ""
		if len(e.lit) > 0 {
			e.cityGW[i] = traffic.NearestGatewayID(e.lit, c.Pos)
		}
	}

	// Interruption accounting: while faults are active, backlogged
	// transfers whose gateway mapping moved since the previous epoch were
	// in flight through infrastructure that changed under them. The count
	// runs before realiseEpoch so backlog that the new mapping settles
	// trivially (coincident endpoints) is still seen as interrupted first.
	if e.faultsActive && e.prevValid {
		for k := range e.m.Aggregates {
			if e.backlogT[k] == 0 {
				continue
			}
			a := &e.m.Aggregates[k]
			if e.cityGW[a.Src] != e.prevCityGW[a.Src] || e.cityGW[a.Dst] != e.prevCityGW[a.Dst] {
				e.res.Interrupted += e.backlogT[k]
			}
		}
	}
	copy(e.prevCityGW, e.cityGW)
	e.prevValid = true

	// Realise this epoch's arrivals and pool them with the backlog.
	e.realiseEpoch(dt, epoch)

	if len(e.lit) == 0 {
		e.res.DarkEpochs++
		e.carryBacklog(nil, 0)
		e.res.Epochs++
		e.res.HorizonS += dt
		return nil
	}

	// One max-min fair pass per epoch over the grouped commodities.
	e.groupDemands(dt)
	net := traffic.NewNetwork(snap)
	net.Recapacitate(e.model)
	alloc, err := traffic.MaxMinFair(net, e.demands, traffic.AllocConfig{KPaths: e.cfg.KPaths})
	if err != nil {
		return fmt.Errorf("fluid: epoch %d allocation: %w", epoch, err)
	}

	for k := range e.served { // reset per-aggregate σ and path delay
		e.served[k] = 0
		e.delay[k] = pathDelay{}
	}
	for i := range alloc.Demands {
		da := &alloc.Demands[i]
		sigma := 0.0
		if da.Path != nil && da.OfferedBps > 0 {
			sigma = da.RateBps / da.OfferedBps
		}
		pd := pathDelayOf(snap, net, alloc, da.Path, dt)
		for _, ge := range e.entries[e.groupStart[i]:e.groupStart[i+1]] {
			e.served[ge.k] = sigma
			e.delay[ge.k] = pd
		}
	}
	e.carryBacklog(e.served, dt)
	e.deaggregate(dt)

	e.res.carriedBpsDt += alloc.CarriedBps() * dt
	e.res.Epochs++
	e.res.HorizonS += dt
	return nil
}

// realiseEpoch draws each aggregate's Poisson arrivals, settles the
// trivial coincident-gateway cases, pools the rest with carried backlog
// into the scratch pool slices, and emits one group entry per offerable
// aggregate. The pool is what gets offered; σ of it will be delivered.
//
//lint:hotpath
func (e *Evolver) realiseEpoch(dt float64, epoch int) {
	e.entries = e.entries[:0]
	for k := range e.m.Aggregates {
		e.poolT[k], e.poolB[k], e.oldT[k] = 0, 0, 0
	}
	for k := range e.m.Aggregates {
		a := &e.m.Aggregates[k]
		exec.Reseed(e.rng, a.Seed, int64(epoch))
		arrivals := poisson(e.rng, a.LambdaPerS*dt)
		cls := &e.res.PerClass[a.Class]
		src, dst := e.cityGW[a.Src], e.cityGW[a.Dst]
		if len(e.lit) > 0 && src == dst {
			// Never enters the space segment; excluded like LocalUsers.
			e.res.LocalTransfers += arrivals
			if e.backlogT[k] > 0 {
				// Backlog from epochs when the endpoints mapped to
				// different gateways drains trivially once they coincide;
				// it adds no transport latency.
				e.res.TransfersDelivered += e.backlogT[k]
				cls.TransfersDelivered += e.backlogT[k]
				delivered := int64(e.backlogB[k] + 0.5)
				e.res.BytesDelivered += delivered
				cls.BytesDelivered += delivered
				e.res.Recovered += e.backlogT[k]
				e.backlogT[k], e.backlogB[k], e.backlogAgeE[k] = 0, 0, 0
			}
			continue
		}
		e.res.TransfersAttempted += arrivals
		cls.TransfersAttempted += arrivals
		e.oldT[k] = e.backlogT[k]
		e.poolT[k] = e.backlogT[k] + arrivals
		e.poolB[k] = e.backlogB[k] + float64(arrivals)*a.MeanBytes
		if e.poolT[k] == 0 || len(e.lit) == 0 {
			continue
		}
		e.entries = append(e.entries, groupEntry{src: src, dst: dst, class: a.Class, k: k})
	}
}

// groupDemands sorts the epoch's entries into commodity runs and builds
// one traffic.Demand per run, offered loads summed in ascending aggregate
// order. groupStart[i] is run i's first entry index; a final sentinel
// closes the last run. Sorted key order means the allocator
// (deterministic in input order) sees a canonical input.
//
//lint:hotpath
func (e *Evolver) groupDemands(dt float64) {
	slices.SortFunc(e.entries, cmpGroupEntry)
	e.demands = e.demands[:0]
	e.groupStart = e.groupStart[:0]
	for i := 0; i < len(e.entries); {
		j := i
		offered := 0.0
		for ; j < len(e.entries) && sameCommodity(e.entries[i], e.entries[j]); j++ {
			offered += e.poolB[e.entries[j].k] * 8 / dt
		}
		e.groupStart = append(e.groupStart, int32(i))
		e.demands = append(e.demands, traffic.Demand{Src: e.entries[i].src, Dst: e.entries[i].dst, OfferedBps: offered})
		i = j
	}
	e.groupStart = append(e.groupStart, int32(len(e.entries)))
}

// pathDelay caches the latency ingredients of one routed path.
type pathDelay struct {
	propS  float64
	hops   int
	bpsEff float64 // bottleneck capacity deflated by residual utilisation
	capped float64 // transmission-time ceiling (the epoch span)
	routed bool
}

// pathDelayOf extracts propagation, hop count and effective bottleneck
// bandwidth for a routed path. The effective bandwidth deflates the
// bottleneck capacity by the residual (1 − ρ) with ρ capped at 0.99 — the
// standard fluid heuristic for queueing inflation near saturation.
func pathDelayOf(snap *topo.Snapshot, net *traffic.Network, alloc *traffic.Allocation, path []string, dt float64) pathDelay {
	if len(path) < 2 {
		return pathDelay{}
	}
	pd := pathDelay{routed: true, capped: dt}
	bottleneck := math.Inf(1)
	maxU := 0.0
	for h := 0; h+1 < len(path); h++ {
		if edge, ok := snap.Edge(path[h], path[h+1]); ok {
			pd.propS += edge.DelayS
		}
		if c := net.CapacityBps(path[h], path[h+1]); c < bottleneck {
			bottleneck = c
		}
		if u := alloc.Utilization(path[h], path[h+1]); u > maxU {
			maxU = u
		}
	}
	pd.hops = len(path) - 1
	if math.IsInf(bottleneck, 1) || bottleneck <= 0 {
		pd.routed = false
		return pd
	}
	if maxU > 0.99 {
		maxU = 0.99
	}
	pd.bpsEff = bottleneck * (1 - maxU)
	return pd
}

// carryBacklog settles each aggregate's pool: the served fraction leaves,
// the rest ages in backlog, and backlog older than the retry budget is
// abandoned. served == nil means a dark epoch (σ = 0 everywhere).
//
//lint:hotpath
func (e *Evolver) carryBacklog(served []float64, dt float64) {
	for k := range e.m.Aggregates {
		sigma := 0.0
		if served != nil {
			sigma = served[k]
		}
		deliveredT := int64(math.Floor(sigma*float64(e.poolT[k]) + 0.5))
		if deliveredT > e.poolT[k] {
			deliveredT = e.poolT[k]
		}
		remainT := e.poolT[k] - deliveredT
		remainB := e.poolB[k] * (1 - sigma)
		if remainT == 0 {
			e.backlogT[k], e.backlogB[k], e.backlogAgeE[k] = 0, 0, 0
			continue
		}
		// FIFO within the pool: delivery drains the oldest transfers, so
		// the survivors' age is the old age + 1 if any old transfer
		// remains, else 1 (only this epoch's arrivals wait).
		age := 1
		if e.oldT[k] > deliveredT {
			age = e.backlogAgeE[k] + 1
		}
		if age > e.cfg.MaxRetryEpochs {
			e.res.Abandoned += remainT
			e.backlogT[k], e.backlogB[k], e.backlogAgeE[k] = 0, 0, 0
			continue
		}
		// Surviving transfers re-offer next epoch: one retry each.
		e.res.Retries += remainT
		e.backlogT[k], e.backlogB[k], e.backlogAgeE[k] = remainT, remainB, age
	}
	e.res.PendingTransfers = 0
	for _, t := range e.backlogT {
		e.res.PendingTransfers += t
	}
}

// deaggregate turns each aggregate's served share back into transfer
// counters and latency mass. Latency for a transfer of size s is
// propagation + per-hop processing + s·8/effective-bandwidth (capped at
// the epoch span); sizes are sampled at the class distribution's decile
// midpoints, so an aggregate's delivered count spreads over ten analytic
// quantiles instead of materialising per-transfer samples.
//
//lint:hotpath
func (e *Evolver) deaggregate(dt float64) {
	for k := range e.m.Aggregates {
		a := &e.m.Aggregates[k]
		sigma := e.served[k]
		deliveredT := int64(math.Floor(sigma*float64(e.poolT[k]) + 0.5))
		if deliveredT > e.poolT[k] {
			deliveredT = e.poolT[k]
		}
		if deliveredT == 0 {
			continue
		}
		deliveredB := int64(sigma*e.poolB[k] + 0.5)
		cls := &e.res.PerClass[a.Class]
		e.res.TransfersDelivered += deliveredT
		cls.TransfersDelivered += deliveredT
		e.res.BytesDelivered += deliveredB
		cls.BytesDelivered += deliveredB
		if rec := min64(deliveredT, e.oldT[k]); rec > 0 {
			e.res.Recovered += rec
		}
		pd := e.delay[k]
		if !pd.routed || pd.bpsEff <= 0 {
			continue
		}
		base := pd.propS + float64(pd.hops)*e.cfg.PerHopS
		per, rem := uint64(deliveredT)/10, uint64(deliveredT)%10
		for d := 0; d < 10; d++ {
			w := per
			if d == 5 {
				w += rem // remainder mass sits at the median decile
			}
			if w == 0 {
				continue
			}
			size := e.m.Classes[a.Class].QuantileBytes((float64(d) + 0.5) / 10)
			tx := size * 8 / pd.bpsEff
			if tx > pd.capped {
				tx = pd.capped
			}
			lat := base + tx
			e.res.Latency.AddN(lat, w)
			cls.Latency.AddN(lat, w)
		}
	}
}

// SetFaultsActive tells the evolver whether a fault overlay is currently
// installed on the snapshots the next Advance calls will see. core's
// fault-transition handler flips it as masks fill and drain; while
// active, gateway-mapping changes between epochs are charged to
// Result.Interrupted. Fault-free callers never call this, so their
// results are untouched by the accounting.
func (e *Evolver) SetFaultsActive(active bool) { e.faultsActive = active }

// Result returns the accumulated counters. The pointer stays live across
// further Advance calls.
func (e *Evolver) Result() *Result { return e.res }

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// poisson draws a Poisson variate with the given mean: Knuth's product
// method for small means, a rounded normal approximation for large ones
// (exact sampling there would cost O(mean) multiplies per aggregate).
// Both branches consume the rng deterministically.
func poisson(rng *rand.Rand, mean float64) int64 {
	if mean <= 0 {
		return 0
	}
	if mean < 64 {
		limit := math.Exp(-mean)
		k := int64(0)
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= limit {
				return k
			}
			k++
		}
	}
	v := math.Round(mean + math.Sqrt(mean)*rng.NormFloat64())
	if v < 0 {
		v = 0
	}
	return int64(v)
}
