// Package fluid is the aggregate-traffic layer that lets OpenSpace serve
// the paper's "millions of users" without millions of per-flow events.
// Instead of scheduling one engine event per transfer (the per-flow path
// in core.RunScenario, which drowns past ~10⁴ users), the user population
// is bucketed analytically into (city-pair × traffic-class) aggregates —
// a ClassMatrix — whose arrival rates and byte volumes follow from the
// population weights and class parameters in closed form. A fluid
// rate-evolution model (Evolver) then drives the aggregates through the
// existing traffic max-min allocator once per topology/fault epoch, and
// de-aggregates the allocation back into ScenarioResult-compatible
// counters: delivered transfers and bytes, per-class latency
// distributions (bounded-memory sim.Sketch, not per-sample histograms),
// and retry/abandonment bookkeeping when fault masks sever routes.
//
// Everything is deterministic and worker-count invariant: each aggregate
// stream owns one exec.Seed domain, so realized arrival counts depend
// only on (seed, aggregate coordinates, epoch) — never on scheduling.
// Simulation cost scales with aggregates × epochs, not users; 10⁷
// effective users cost the same wall time as 10⁴ (experiment E18 and the
// users-scale CI gate pin this).
package fluid

import (
	"fmt"
	"math"
)

// Class is one traffic class: a share of the user population with a
// common arrival rate and bounded-Pareto transfer-size distribution (the
// same family sim.FlowSizeBytes samples per-flow).
type Class struct {
	Name string
	// UserShare weights how much of the population belongs to this class;
	// shares are normalized over the class set, so they need not sum to 1.
	UserShare float64
	// RatePerUserS is each user's transfer arrival rate (transfers/s).
	RatePerUserS float64
	// MinBytes/MaxBytes bound the Pareto-distributed transfer sizes and
	// ParetoAlpha is the tail shape, exactly as in sim.FlowSizeBytes.
	MinBytes, MaxBytes int64
	ParetoAlpha        float64
}

// Validate reports whether the class is usable.
func (c Class) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("fluid: class without name")
	}
	if c.UserShare <= 0 {
		return fmt.Errorf("fluid: class %q share %.3g must be positive", c.Name, c.UserShare)
	}
	if c.RatePerUserS <= 0 {
		return fmt.Errorf("fluid: class %q rate %.3g must be positive", c.Name, c.RatePerUserS)
	}
	if c.MinBytes <= 0 || c.MaxBytes < c.MinBytes {
		return fmt.Errorf("fluid: class %q size bounds [%d,%d] invalid", c.Name, c.MinBytes, c.MaxBytes)
	}
	if c.ParetoAlpha <= 0 {
		return fmt.Errorf("fluid: class %q Pareto shape %.3g must be positive", c.Name, c.ParetoAlpha)
	}
	return nil
}

// MeanBytes is the analytic mean of the bounded Pareto sim.FlowSizeBytes
// draws from: X = min(L·U^(−1/α), H) with U uniform. With p = (L/H)^α
// the truncated mass, E[X] = p·H + L·(1 − p^(1−1/α))/(1 − 1/α), with the
// α→1 limit p·H + L·ln(1/p). This is what replaces per-transfer size
// sampling in aggregate mode.
func (c Class) MeanBytes() float64 {
	l, h := float64(c.MinBytes), float64(c.MaxBytes)
	if h <= l {
		return l
	}
	p := math.Pow(l/h, c.ParetoAlpha)
	exp := 1 - 1/c.ParetoAlpha
	if math.Abs(exp) < 1e-9 {
		return p*h + l*math.Log(1/p)
	}
	return p*h + l*(1-math.Pow(p, exp))/exp
}

// QuantileBytes is the analytic q-quantile of the bounded Pareto size
// distribution: min(L·(1−q)^(−1/α), H). De-aggregation samples this at
// fixed ranks to rebuild a latency distribution from an aggregate.
func (c Class) QuantileBytes(q float64) float64 {
	l, h := float64(c.MinBytes), float64(c.MaxBytes)
	if q <= 0 {
		return l
	}
	if q >= 1 {
		return h
	}
	v := l * math.Pow(1-q, -1/c.ParetoAlpha)
	if v > h {
		return h
	}
	return v
}

// DefaultClasses is the standard OpenSpace traffic mix: interactive web
// browsing, streaming video (few arrivals, heavy tails), and massive-IoT
// telemetry (many devices, tiny episodic uplinks — the disrupted-comms
// workload the OMNeT++ literature runs against LEO constellations).
func DefaultClasses() []Class {
	return []Class{
		{Name: "web", UserShare: 0.55, RatePerUserS: 0.02, MinBytes: 50_000, MaxBytes: 50_000_000, ParetoAlpha: 1.3},
		{Name: "video", UserShare: 0.30, RatePerUserS: 0.004, MinBytes: 5_000_000, MaxBytes: 2_000_000_000, ParetoAlpha: 1.1},
		{Name: "iot", UserShare: 0.15, RatePerUserS: 0.0005, MinBytes: 200, MaxBytes: 100_000, ParetoAlpha: 1.6},
	}
}
