package fluid

import (
	"os"
	"testing"
)

// allocGate skips unless the zero-allocation gates are explicitly enabled
// (OPENSPACE_ALLOC_GATE=1, as CI's alloc-gate step does).
func allocGate(t *testing.T) {
	t.Helper()
	if os.Getenv("OPENSPACE_ALLOC_GATE") == "" {
		t.Skip("set OPENSPACE_ALLOC_GATE=1 to run the zero-allocation gates")
	}
}

// TestAllocGateEvolverKernels pins the //lint:hotpath contract on the
// evolver's per-epoch kernels (realiseEpoch, groupDemands, carryBacklog,
// deaggregate). σ is pinned to 1 so backlog zeroes every round and the
// iterations are identical; the path delay is pinned to one routed value
// so the latency sketches stop growing new buckets after warmup. The
// max-min allocation between the kernels is exercised by its own gate in
// internal/traffic.
func TestAllocGateEvolverKernels(t *testing.T) {
	allocGate(t)
	cfg := Config{Users: 200_000, Seed: 7}
	m, err := BuildClassMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap, gws := gridSnapshot(t, 100, 8, 0)
	ev, err := NewEvolver(m, cfg, gws)
	if err != nil {
		t.Fatal(err)
	}
	// One full epoch populates the lit-gateway and city→gateway scratch
	// and sizes the entry/demand buffers.
	if err := ev.Advance(snap, 0, 30, 0); err != nil {
		t.Fatal(err)
	}
	for k := range ev.served {
		ev.served[k] = 1
		ev.delay[k] = pathDelay{routed: true, hops: 2, propS: 0.02, bpsEff: 1e9, capped: 30}
	}
	step := func() {
		ev.realiseEpoch(30, 1)
		ev.groupDemands(30)
		ev.carryBacklog(ev.served, 30)
		ev.deaggregate(30)
	}
	for i := 0; i < 3; i++ {
		step() // warm: drain pre-existing backlog, settle sketch buckets
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("evolver kernels allocate %.2f per epoch, want 0", avg)
	}
}
