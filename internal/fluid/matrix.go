package fluid

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/sim"
)

// domainArrivals separates aggregate arrival streams from every other
// seed consumer (core reserves domains 1 and 2 for topology and scenario
// randomness). The ID predates the tag, so realised arrivals stay
// byte-identical to the numeric-domain era.
var domainArrivals = exec.Domain{Tag: "fluid/arrivals", ID: 3}

// Config parameterises aggregate (fluid) mode. The zero value is
// disabled: Scenario embeds a Config, and Users == 0 keeps the per-flow
// path byte-identical to what it produced before this subsystem existed.
type Config struct {
	// Users is the effective user population spread over the world-city
	// catalogue. 0 disables aggregate mode.
	Users int
	// Classes is the traffic mix; nil means DefaultClasses.
	Classes []Class
	// KPaths is the allocator's path diversity per demand; ≤ 0 means 4.
	KPaths int
	// MaxRetryEpochs is how many epochs a backlogged transfer survives
	// unserved before it is abandoned; ≤ 0 means 3.
	MaxRetryEpochs int
	// PerHopS is the per-hop processing delay added to propagation when
	// de-aggregating latencies; ≤ 0 means 1 ms (core's default).
	PerHopS float64
	// SketchAlpha is the relative accuracy of the latency sketches;
	// ≤ 0 means 0.01.
	SketchAlpha float64
	// Seed roots every aggregate's arrival stream.
	Seed int64
}

// Enabled reports whether aggregate mode is on.
func (c Config) Enabled() bool { return c.Users > 0 }

// withDefaults fills unset knobs.
func (c Config) withDefaults() Config {
	if c.Classes == nil {
		c.Classes = DefaultClasses()
	}
	if c.KPaths <= 0 {
		c.KPaths = 4
	}
	if c.MaxRetryEpochs <= 0 {
		c.MaxRetryEpochs = 3
	}
	if c.PerHopS <= 0 {
		c.PerHopS = 0.001
	}
	if c.SketchAlpha <= 0 {
		c.SketchAlpha = 0.01
	}
	return c
}

// Aggregate is one (source city, destination city, class) traffic stream:
// the unit the fluid model evolves instead of individual transfers.
type Aggregate struct {
	// Src and Dst index ClassMatrix.Cities; Class indexes
	// ClassMatrix.Classes.
	Src, Dst, Class int
	// Users is the effective (fractional) user count behind the stream.
	Users float64
	// LambdaPerS is the aggregate Poisson arrival rate: Users × per-user
	// rate. Arrival realisations draw from exec.RNG(Seed, epoch).
	LambdaPerS float64
	// MeanBytes is the class's analytic mean transfer size.
	MeanBytes float64
	// Seed is this stream's own exec.Seed domain, so realised arrivals
	// depend only on (scenario seed, aggregate coordinates, epoch) — never
	// on worker count or evaluation order.
	Seed int64
}

// OfferedBps is the aggregate's long-run offered load.
func (a Aggregate) OfferedBps() float64 { return a.LambdaPerS * a.MeanBytes * 8 }

// ClassMatrix buckets a user population into (city-pair × class)
// aggregates with analytically-derived rates and volumes. Sources and
// destinations both follow the population weights of sim.WorldCities —
// the same gravity-model assumption traffic.BuildDemandMatrix samples
// per-user; here the expectation is taken in closed form, so building the
// matrix costs O(cities² × classes) regardless of Users.
type ClassMatrix struct {
	Cities     []sim.City
	Classes    []Class
	Aggregates []Aggregate
	// Users echoes the configured population.
	Users int
}

// BuildClassMatrix derives the aggregate matrix from the config.
func BuildClassMatrix(cfg Config) (*ClassMatrix, error) {
	cfg = cfg.withDefaults()
	if cfg.Users <= 0 {
		return nil, fmt.Errorf("fluid: user population %d must be positive", cfg.Users)
	}
	if len(cfg.Classes) == 0 {
		return nil, fmt.Errorf("fluid: no traffic classes")
	}
	var classTotal float64
	for _, cl := range cfg.Classes {
		if err := cl.Validate(); err != nil {
			return nil, err
		}
		classTotal += cl.UserShare
	}
	cities := sim.WorldCities()
	var pop float64
	for _, c := range cities {
		pop += c.PopM
	}
	m := &ClassMatrix{
		Cities:     cities,
		Classes:    cfg.Classes,
		Users:      cfg.Users,
		Aggregates: make([]Aggregate, 0, len(cities)*len(cities)*len(cfg.Classes)),
	}
	for i, src := range cities {
		for j, dst := range cities {
			// i == j pairs stay: both endpoints usually map to the same
			// gateway and are counted as local traffic, mirroring
			// DemandMatrix.LocalUsers — but under faults the mapping can
			// diverge, so the classification happens per epoch, not here.
			pairShare := (src.PopM / pop) * (dst.PopM / pop)
			for ci, cl := range cfg.Classes {
				users := float64(cfg.Users) * pairShare * cl.UserShare / classTotal
				m.Aggregates = append(m.Aggregates, Aggregate{
					Src:        i,
					Dst:        j,
					Class:      ci,
					Users:      users,
					LambdaPerS: users * cl.RatePerUserS,
					MeanBytes:  cl.MeanBytes(),
					Seed:       exec.DomainSeed(cfg.Seed, domainArrivals, int64(i), int64(j), int64(ci)),
				})
			}
		}
	}
	return m, nil
}

// OfferedBps is the matrix's total analytic offered load.
func (m *ClassMatrix) OfferedBps() float64 {
	var total float64
	for _, a := range m.Aggregates {
		total += a.OfferedBps()
	}
	return total
}
