package isl

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/frame"
)

// EstablishOverWire runs the full pairing handshake between two managers
// through encoded frames — beacon exchange, pair request, pair response —
// proving that the wire protocol alone is sufficient for two independently
// implemented satellites to pair (the interoperability the paper demands).
// It returns the initiator's and responder's link halves.
func EstablishOverWire(initiator, responder *Manager, requestedBps, t float64) (*Link, *Link, error) {
	// Both sides broadcast beacons; each hears the other.
	for _, hop := range []struct{ from, to *Manager }{
		{responder, initiator},
		{initiator, responder},
	} {
		wire, err := frame.Encode(hop.from.Beacon(t))
		if err != nil {
			return nil, nil, fmt.Errorf("isl: encoding beacon: %w", err)
		}
		decoded, _, err := frame.Decode(wire)
		if err != nil {
			return nil, nil, fmt.Errorf("isl: decoding beacon: %w", err)
		}
		hop.to.HandleBeacon(decoded.(*frame.Beacon), t)
	}

	req, err := initiator.NewPairRequest(responder.ID(), requestedBps, t)
	if err != nil {
		return nil, nil, err
	}
	wire, err := frame.Encode(req)
	if err != nil {
		return nil, nil, fmt.Errorf("isl: encoding pair request: %w", err)
	}
	decodedReq, _, err := frame.Decode(wire)
	if err != nil {
		return nil, nil, fmt.Errorf("isl: decoding pair request: %w", err)
	}
	resp := responder.HandlePairRequest(decodedReq.(*frame.PairRequest), t)

	wire, err = frame.Encode(resp)
	if err != nil {
		return nil, nil, fmt.Errorf("isl: encoding pair response: %w", err)
	}
	decodedResp, _, err := frame.Decode(wire)
	if err != nil {
		return nil, nil, fmt.Errorf("isl: decoding pair response: %w", err)
	}
	il, err := initiator.HandlePairResponse(decodedResp.(*frame.PairResponse), t)
	if err != nil {
		return nil, nil, err
	}
	rl, _ := responder.Link(initiator.ID())
	return il, rl, nil
}
