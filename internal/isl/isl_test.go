package isl

import (
	"strings"
	"testing"

	"github.com/openspace-project/openspace/internal/frame"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/phy"
)

// neighbors returns managers for two adjacent satellites in the same
// Iridium plane (constant ~3.7° separation, always in RF range).
func neighbors(t *testing.T, laserA, laserB bool) (*Manager, *Manager) {
	t.Helper()
	mk := func(id, provider string, ma float64, laser bool) *Manager {
		cfg := Config{
			SatelliteID: id,
			ProviderID:  provider,
			Elements:    orbit.Circular(780, 86.4, 0, ma),
			RF:          phy.StandardSBand(),
			Slew:        phy.DefaultSlew(),
		}
		if laser {
			l := phy.ConLCT80()
			cfg.Laser = &l
		}
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	return mk("sat-a", "acme", 0, laserA), mk("sat-b", "orbitco", 32.7, laserB)
}

func TestConfigValidate(t *testing.T) {
	good := Config{
		SatelliteID: "s", ProviderID: "p",
		Elements: orbit.Circular(780, 86.4, 0, 0),
		RF:       phy.StandardSBand(),
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.SatelliteID = "" },
		func(c *Config) { c.ProviderID = "" },
		func(c *Config) { c.Elements = orbit.Elements{} },
		func(c *Config) { c.RF.TxPowerW = 0 },
		func(c *Config) { bad := phy.ConLCT80(); bad.TxPowerW = 0; c.Laser = &bad },
		func(c *Config) { c.MaxActiveISLs = -1 },
		func(c *Config) { c.MaxCommitBps = -1 },
	}
	for i, mutate := range cases {
		c := good
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestBeaconContents(t *testing.T) {
	a, _ := neighbors(t, true, false)
	b := a.Beacon(42)
	if b.SatelliteID != "sat-a" || b.ProviderID != "acme" {
		t.Errorf("beacon identity wrong: %+v", b)
	}
	if !b.Caps.Has(frame.CapRF) || !b.Caps.Has(frame.CapLaser) {
		t.Errorf("beacon caps wrong: %v", b.Caps)
	}
	if b.Orbit.SemiMajorAxisKm != 7151 {
		t.Errorf("beacon orbit wrong: %+v", b.Orbit)
	}
	if b.SentAtS != 42 {
		t.Errorf("beacon time wrong: %v", b.SentAtS)
	}
}

func TestHandleBeaconWantsToPair(t *testing.T) {
	a, b := neighbors(t, false, false)
	if !a.HandleBeacon(b.Beacon(0), 0) {
		t.Error("in-range neighbour should trigger pairing")
	}
	// Own beacon ignored.
	if a.HandleBeacon(a.Beacon(0), 0) {
		t.Error("own beacon must be ignored")
	}
}

func TestFullRFHandshake(t *testing.T) {
	a, b := neighbors(t, false, false)
	la, lb, err := EstablishOverWire(a, b, 10e6, 100)
	if err != nil {
		t.Fatal(err)
	}
	if la.Tech != frame.LinkRF || lb.Tech != frame.LinkRF {
		t.Errorf("tech = %v/%v, want rf", la.Tech, lb.Tech)
	}
	if la.CommittedBps != 10e6 || lb.CommittedBps != 10e6 {
		t.Errorf("committed %v/%v", la.CommittedBps, lb.CommittedBps)
	}
	// RF links are active immediately.
	if !la.Active(100) || !lb.Active(100) {
		t.Error("RF link should be active at establishment")
	}
	if la.PeerID != "sat-b" || lb.PeerID != "sat-a" {
		t.Errorf("peer IDs wrong: %v/%v", la.PeerID, lb.PeerID)
	}
	if la.PeerProvider != "orbitco" || lb.PeerProvider != "acme" {
		t.Errorf("peer providers wrong: %v/%v", la.PeerProvider, lb.PeerProvider)
	}
}

func TestLaserNegotiation(t *testing.T) {
	// Both laser-capable → laser link with alignment delay.
	a, b := neighbors(t, true, true)
	la, lb, err := EstablishOverWire(a, b, 1e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if la.Tech != frame.LinkLaser || lb.Tech != frame.LinkLaser {
		t.Fatalf("tech = %v/%v, want laser", la.Tech, lb.Tech)
	}
	if la.Active(0) {
		t.Error("laser link cannot be active before slew+PAT")
	}
	if la.ActiveAtS <= la.EstablishedAtS {
		t.Error("laser activation must be delayed")
	}
	if !la.Active(la.ActiveAtS + 1) {
		t.Error("laser link should become active")
	}
	if la.SlewEnergyJ <= 0 || a.SlewEnergyJ() != la.SlewEnergyJ {
		t.Errorf("slew energy accounting wrong: %v vs %v", la.SlewEnergyJ, a.SlewEnergyJ())
	}

	// Mixed capability → RF (the mandated fallback).
	c, d := neighbors(t, true, false)
	lc, _, err := EstablishOverWire(c, d, 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if lc.Tech != frame.LinkRF {
		t.Errorf("mixed-capability pair negotiated %v, want rf", lc.Tech)
	}
}

func TestPairRequestUnknownPeer(t *testing.T) {
	a, _ := neighbors(t, false, false)
	if _, err := a.NewPairRequest("stranger", 1e6, 0); err == nil {
		t.Error("pair request to unheard peer should fail")
	}
}

func TestHandlePairRequestRejections(t *testing.T) {
	a, b := neighbors(t, false, false)
	// Request from a peer whose beacon was never heard.
	req := &frame.PairRequest{FromID: "stranger", ToID: b.ID(), Caps: frame.CapRF, RequestedBps: 1}
	resp := b.HandlePairRequest(req, 0)
	if resp.Accept || !strings.Contains(resp.Reason, "no beacon") {
		t.Errorf("stranger should be rejected: %+v", resp)
	}
	// Duplicate pairing.
	if _, _, err := EstablishOverWire(a, b, 1e6, 0); err != nil {
		t.Fatal(err)
	}
	req2, err := a.NewPairRequest(b.ID(), 1e6, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp2 := b.HandlePairRequest(req2, 1)
	if resp2.Accept || !strings.Contains(resp2.Reason, "already paired") {
		t.Errorf("duplicate pairing should be rejected: %+v", resp2)
	}
}

func TestPowerBudgetLimitsISLs(t *testing.T) {
	// A satellite with MaxActiveISLs=1 accepts one link then rejects.
	mk := func(id string, ma float64, maxISLs int) *Manager {
		m, err := New(Config{
			SatelliteID: id, ProviderID: "p",
			Elements:      orbit.Circular(780, 86.4, 0, ma),
			RF:            phy.StandardSBand(),
			MaxActiveISLs: maxISLs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	hub := mk("hub", 0, 1)
	s1 := mk("s1", 32.7, 0)
	s2 := mk("s2", 327.3, 0) // the neighbour on the other side
	if _, _, err := EstablishOverWire(s1, hub, 1e6, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := EstablishOverWire(s2, hub, 1e6, 0); err == nil {
		t.Error("second ISL should exceed the hub's power budget")
	}
	// HandleBeacon must also decline initiating when budget is exhausted.
	if hub.HandleBeacon(s2.Beacon(0), 0) {
		t.Error("budget-exhausted satellite should not initiate pairing")
	}
}

func TestBandwidthBudget(t *testing.T) {
	a, b := neighbors(t, false, false)
	b.cfg.MaxCommitBps = 5e6
	la, _, err := EstablishOverWire(a, b, 20e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Responder grants only its spare bandwidth.
	if la.CommittedBps != 5e6 {
		t.Errorf("granted %v, want clamped 5e6", la.CommittedBps)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	mk := func(id string, lonDeg float64) *Manager {
		m, err := New(Config{
			SatelliteID: id, ProviderID: "p",
			Elements: orbit.Circular(780, 0, 0, lonDeg),
			RF:       phy.StandardSBand(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := mk("near", 0)
	far := mk("far", 180) // antipodal: blocked by the Earth
	a.HandleBeacon(far.Beacon(0), 0)
	far.HandleBeacon(a.Beacon(0), 0)
	req, err := a.NewPairRequest("far", 1e6, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp := far.HandlePairRequest(req, 0)
	if resp.Accept {
		t.Error("antipodal satellites must not pair")
	}
	if !strings.Contains(resp.Reason, "out of range") {
		t.Errorf("reason = %q", resp.Reason)
	}
	// HandleBeacon must not want to pair either.
	if a.HandleBeacon(far.Beacon(0), 0) {
		t.Error("should not want to pair with blocked satellite")
	}
}

func TestPrune(t *testing.T) {
	// Two satellites in different planes drift out of range; Prune drops
	// the link and frees budget.
	mk := func(id string, raan float64) *Manager {
		m, err := New(Config{
			SatelliteID: id, ProviderID: "p",
			Elements:     orbit.Circular(780, 86.4, raan, 0),
			RF:           phy.StandardSBand(),
			MaxCommitBps: 10e6,
		})
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	a := mk("a", 0)
	b := mk("b", 30)
	if _, _, err := EstablishOverWire(a, b, 10e6, 0); err != nil {
		t.Fatal(err)
	}
	if dropped := a.Prune(0); len(dropped) != 0 {
		t.Errorf("prune at establishment dropped %v", dropped)
	}
	// Find a time when they are out of range (opposite sides of orbit).
	period := a.cfg.Elements.PeriodS()
	var when float64 = -1
	for tt := 0.0; tt < period; tt += period / 200 {
		if d := a.Position(tt).DistanceKm(b.Position(tt)); d > 12000 {
			when = tt
			break
		}
	}
	if when < 0 {
		t.Skip("satellites never separate far enough in this geometry")
	}
	dropped := a.Prune(when)
	if len(dropped) != 1 || dropped[0] != "b" {
		t.Fatalf("prune dropped %v, want [b]", dropped)
	}
	if _, ok := a.Link("b"); ok {
		t.Error("link still present after prune")
	}
	// Budget released: a new link request fits again.
	if !a.HandleBeacon(b.Beacon(0), 0) {
		t.Error("budget not released after prune")
	}
}

func TestLinksDeterministicOrder(t *testing.T) {
	a, b := neighbors(t, false, false)
	if _, _, err := EstablishOverWire(a, b, 1e6, 0); err != nil {
		t.Fatal(err)
	}
	ls := a.Links()
	if len(ls) != 1 || ls[0].PeerID != "sat-b" {
		t.Errorf("links = %v", ls)
	}
	if StateAligning.String() != "aligning" || StateActive.String() != "active" ||
		StateDropped.String() != "dropped" || LinkState(9).String() == "" {
		t.Error("LinkState strings")
	}
}

func TestBeaconVerificationGate(t *testing.T) {
	a, b := neighbors(t, false, false)
	// Enforce verification on a: every beacon is rejected by a failing
	// verifier, accepted by a passing one.
	rejected := 0
	a.cfg.VerifyBeacon = func(*frame.Beacon) error {
		rejected++
		return frame.ErrBadField // any error means spoofed
	}
	if a.HandleBeacon(b.Beacon(0), 0) {
		t.Error("unverified beacon should not trigger pairing")
	}
	if _, known := a.neighbors["sat-b"]; known {
		t.Error("rejected beacon must not be recorded")
	}
	if rejected != 1 {
		t.Errorf("verifier invoked %d times", rejected)
	}
	a.cfg.VerifyBeacon = func(*frame.Beacon) error { return nil }
	if !a.HandleBeacon(b.Beacon(0), 0) {
		t.Error("verified beacon should trigger pairing")
	}
}
