// Package isl implements OpenSpace's inter-satellite link establishment
// protocol (§2.1 of the paper):
//
//   - Every satellite periodically broadcasts a Beacon over its
//     omnidirectional RF antenna — "RF antennas are capable of broadcasting,
//     which is ideal when the exact position of antennas is not known
//     beforehand".
//   - On hearing a beacon from a useful neighbour, a satellite initiates
//     pairing with a PairRequest carrying its technical specifications
//     (laser support, boresight axis, spare bandwidth).
//   - The responder accepts or rejects based on range, power budget and
//     bandwidth, negotiating the link technology: laser when both ends have
//     terminals, spare bandwidth, and are within optical range; RF otherwise
//     (the mandated minimum).
//   - Laser links are directional, so after acceptance both spacecraft slew
//     to point their terminals and run pointing/acquisition/tracking before
//     the link carries data; RF links are usable immediately.
//
// The Manager type is one satellite's side of the protocol. Everything is
// driven by explicit times (seconds since epoch), so simulations are
// deterministic.
package isl

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/openspace-project/openspace/internal/frame"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/phy"
)

// Config describes one satellite's ISL hardware and policy.
type Config struct {
	SatelliteID string
	ProviderID  string
	Elements    orbit.Elements
	RF          phy.RFTerminal     // mandatory in OpenSpace
	Laser       *phy.LaserTerminal // optional upgrade
	Slew        phy.SlewModel
	// MaxActiveISLs caps simultaneous links (power constraint, §2.2:
	// "satellites may have power consumption constraints that limit the
	// number of ISLs they can establish"). 0 means unlimited.
	MaxActiveISLs int
	// MaxCommitBps caps total bandwidth committed across ISLs. 0 = unlimited.
	MaxCommitBps float64
	// VerifyBeacon, when set, authenticates incoming beacons before they
	// are trusted (security.VerifyBeacon bound to a trust store). Spoofed
	// or unsigned beacons are ignored — §5(6)'s defence against phantom
	// satellites luring ISL pairings.
	VerifyBeacon func(*frame.Beacon) error
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.SatelliteID == "" || c.ProviderID == "" {
		return errors.New("isl: satellite and provider IDs required")
	}
	if err := c.Elements.Validate(); err != nil {
		return err
	}
	if err := c.RF.Validate(); err != nil {
		return err
	}
	if c.Laser != nil {
		if err := c.Laser.Validate(); err != nil {
			return err
		}
	}
	if c.MaxActiveISLs < 0 || c.MaxCommitBps < 0 {
		return errors.New("isl: budgets must be non-negative")
	}
	return nil
}

// LinkState is the lifecycle state of an ISL.
type LinkState int

// Link states.
const (
	StateAligning LinkState = iota // slewing / PAT in progress (laser)
	StateActive
	StateDropped
)

// String implements fmt.Stringer.
func (s LinkState) String() string {
	switch s {
	case StateAligning:
		return "aligning"
	case StateActive:
		return "active"
	case StateDropped:
		return "dropped"
	default:
		return fmt.Sprintf("LinkState(%d)", int(s))
	}
}

// Link is one established (or establishing) ISL from this satellite's
// perspective.
type Link struct {
	PeerID         string
	PeerProvider   string
	Tech           frame.LinkTech
	CommittedBps   float64
	EstablishedAtS float64 // when the handshake completed
	ActiveAtS      float64 // when data can flow (after slew+PAT for laser)
	SlewEnergyJ    float64 // energy spent aligning
}

// Active reports whether the link carries data at time t.
func (l *Link) Active(t float64) bool { return t >= l.ActiveAtS }

// Manager is one satellite's ISL protocol endpoint.
type Manager struct {
	cfg       Config
	caps      frame.Capability
	neighbors map[string]frame.Beacon // last beacon heard per satellite
	links     map[string]*Link
	committed float64
	energyJ   float64 // cumulative slew energy
}

// New creates a manager.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	caps := frame.CapRF
	if cfg.Laser != nil {
		caps |= frame.CapLaser
	}
	return &Manager{
		cfg:       cfg,
		caps:      caps,
		neighbors: make(map[string]frame.Beacon),
		links:     make(map[string]*Link),
	}, nil
}

// ID returns the satellite's identifier.
func (m *Manager) ID() string { return m.cfg.SatelliteID }

// Capabilities returns the satellite's advertised link capabilities.
func (m *Manager) Capabilities() frame.Capability { return m.caps }

// SlewEnergyJ returns the cumulative energy spent on link alignment.
func (m *Manager) SlewEnergyJ() float64 { return m.energyJ }

// Position returns the satellite's ECEF position at t.
func (m *Manager) Position(t float64) geo.Vec3 { return m.cfg.Elements.PositionECEF(t) }

// Beacon builds this satellite's presence broadcast at time t.
func (m *Manager) Beacon(t float64) *frame.Beacon {
	e := m.cfg.Elements
	return &frame.Beacon{
		SatelliteID: m.cfg.SatelliteID,
		ProviderID:  m.cfg.ProviderID,
		Caps:        m.caps,
		Orbit: frame.OrbitalState{
			SemiMajorAxisKm: e.SemiMajorAxisKm,
			Eccentricity:    e.Eccentricity,
			InclinationDeg:  e.InclinationDeg,
			RAANDeg:         e.RAANDeg,
			ArgPerigeeDeg:   e.ArgPerigeeDeg,
			MeanAnomalyDeg:  e.MeanAnomalyDeg,
		},
		LoadFraction: m.loadFraction(),
		SentAtS:      t,
	}
}

func (m *Manager) loadFraction() float64 {
	if m.cfg.MaxCommitBps <= 0 {
		return 0
	}
	return m.committed / m.cfg.MaxCommitBps
}

// elementsOf reconstructs propagatable elements from a beacon's orbit.
func elementsOf(b frame.Beacon) orbit.Elements {
	return orbit.Elements{
		SemiMajorAxisKm: b.Orbit.SemiMajorAxisKm,
		Eccentricity:    b.Orbit.Eccentricity,
		InclinationDeg:  b.Orbit.InclinationDeg,
		RAANDeg:         b.Orbit.RAANDeg,
		ArgPerigeeDeg:   b.Orbit.ArgPerigeeDeg,
		MeanAnomalyDeg:  b.Orbit.MeanAnomalyDeg,
	}
}

// HandleBeacon records a neighbour sighting. It returns true when the
// manager wants to initiate pairing with the sender — in RF range, budget
// available, and no link already in place. Beacons from self are ignored.
func (m *Manager) HandleBeacon(b *frame.Beacon, t float64) bool {
	if b.SatelliteID == m.cfg.SatelliteID {
		return false
	}
	if m.cfg.VerifyBeacon != nil && m.cfg.VerifyBeacon(b) != nil {
		return false
	}
	m.neighbors[b.SatelliteID] = *b
	if _, linked := m.links[b.SatelliteID]; linked {
		return false
	}
	if !m.budgetAvailable(0) {
		return false
	}
	inRange, _ := m.feasibleTech(elementsOf(*b), b.Caps, t)
	return inRange
}

// feasibleTech determines whether a link to the peer is geometrically
// possible at t and, if so, the best technology both ends support.
func (m *Manager) feasibleTech(peer orbit.Elements, peerCaps frame.Capability, t float64) (bool, frame.LinkTech) {
	a := m.Position(t)
	b := peer.PositionECEF(t)
	d := a.DistanceKm(b)
	if !geo.LineOfSight(a, b) {
		return false, 0
	}
	if m.cfg.Laser != nil && peerCaps.Has(frame.CapLaser) {
		if m.cfg.Laser.Budget(d).Closed {
			return true, frame.LinkLaser
		}
	}
	if m.cfg.RF.Budget(d, 0).Closed {
		return true, frame.LinkRF
	}
	return false, 0
}

func (m *Manager) budgetAvailable(extraBps float64) bool {
	if m.cfg.MaxActiveISLs > 0 && len(m.links) >= m.cfg.MaxActiveISLs {
		return false
	}
	if m.cfg.MaxCommitBps > 0 && m.committed+extraBps > m.cfg.MaxCommitBps {
		return false
	}
	return true
}

// NewPairRequest builds the pairing request to a neighbour whose beacon was
// heard. requestedBps is the bandwidth the caller wants on the link.
func (m *Manager) NewPairRequest(peerID string, requestedBps, t float64) (*frame.PairRequest, error) {
	if _, ok := m.neighbors[peerID]; !ok {
		return nil, fmt.Errorf("isl: no beacon heard from %q", peerID)
	}
	req := &frame.PairRequest{
		FromID:       m.cfg.SatelliteID,
		ToID:         peerID,
		Caps:         m.caps,
		RequestedBps: requestedBps,
		AvailableBps: m.spareBps(),
	}
	if m.cfg.Laser != nil {
		// Advertise the boresight axis: the direction to the peer at t,
		// letting the peer compute pointing for beamforming.
		axis := m.boresightTo(elementsOf(m.neighbors[peerID]), t)
		req.LaserAxisX, req.LaserAxisY, req.LaserAxisZ = axis.X, axis.Y, axis.Z
	}
	return req, nil
}

func (m *Manager) spareBps() float64 {
	if m.cfg.MaxCommitBps <= 0 {
		return math.Inf(1)
	}
	return m.cfg.MaxCommitBps - m.committed
}

func (m *Manager) boresightTo(peer orbit.Elements, t float64) geo.Vec3 {
	return peer.PositionECEF(t).Sub(m.Position(t)).Unit()
}

// HandlePairRequest processes a peer's pairing request at time t and
// returns the response. On acceptance the responder's side of the link is
// created immediately (aligning if laser).
func (m *Manager) HandlePairRequest(req *frame.PairRequest, t float64) *frame.PairResponse {
	resp := &frame.PairResponse{FromID: m.cfg.SatelliteID, ToID: req.FromID}
	nb, known := m.neighbors[req.FromID]
	if !known {
		resp.Reason = "no beacon heard from requester"
		return resp
	}
	if _, linked := m.links[req.FromID]; linked {
		resp.Reason = "already paired"
		return resp
	}
	grantBps := req.RequestedBps
	if spare := m.spareBps(); grantBps > spare {
		grantBps = spare
	}
	if grantBps <= 0 || !m.budgetAvailable(grantBps) {
		resp.Reason = "power or bandwidth budget exhausted"
		return resp
	}
	ok, tech := m.feasibleTech(elementsOf(nb), req.Caps, t)
	if !ok {
		resp.Reason = "peer out of range"
		return resp
	}
	// Laser needs both ends' consent via capabilities; tech already
	// accounts for ours and theirs.
	resp.Accept = true
	resp.Tech = tech
	resp.CommittedBps = grantBps
	m.installLink(req.FromID, nb.ProviderID, tech, grantBps, elementsOf(nb), t)
	return resp
}

// HandlePairResponse completes the handshake on the initiator side.
func (m *Manager) HandlePairResponse(resp *frame.PairResponse, t float64) (*Link, error) {
	if !resp.Accept {
		return nil, fmt.Errorf("isl: pairing rejected by %s: %s", resp.FromID, resp.Reason)
	}
	nb, known := m.neighbors[resp.FromID]
	if !known {
		return nil, fmt.Errorf("isl: response from unknown peer %q", resp.FromID)
	}
	if !m.budgetAvailable(resp.CommittedBps) {
		return nil, errors.New("isl: local budget exhausted before completion")
	}
	return m.installLink(resp.FromID, nb.ProviderID, resp.Tech, resp.CommittedBps, elementsOf(nb), t), nil
}

// installLink creates the local half of a link.
func (m *Manager) installLink(peerID, peerProvider string, tech frame.LinkTech, bps float64, peer orbit.Elements, t float64) *Link {
	l := &Link{
		PeerID:         peerID,
		PeerProvider:   peerProvider,
		Tech:           tech,
		CommittedBps:   bps,
		EstablishedAtS: t,
		ActiveAtS:      t,
	}
	if tech == frame.LinkLaser && m.cfg.Laser != nil {
		// Slew to point the terminal, then acquire. The slew angle is the
		// angle between the along-track axis (assumed stow orientation) and
		// the direction to the peer.
		angle := geo.Degrees(m.velocityDir(t).AngleBetween(m.boresightTo(peer, t)))
		slew := m.cfg.Slew.SlewTime(angle).Seconds()
		acquire := m.cfg.Laser.AcquireTime().Seconds()
		l.ActiveAtS = t + slew + acquire
		l.SlewEnergyJ = m.cfg.Slew.SlewEnergyJ(angle)
		m.energyJ += l.SlewEnergyJ
	}
	m.links[peerID] = l
	m.committed += bps
	return l
}

// velocityDir returns the satellite's ECEF velocity direction at t,
// approximated by finite differencing (exact enough for slew geometry).
func (m *Manager) velocityDir(t float64) geo.Vec3 {
	const dt = 0.5
	return m.cfg.Elements.PositionECEF(t + dt).Sub(m.cfg.Elements.PositionECEF(t - dt)).Unit()
}

// Link returns the link to peerID, if any.
func (m *Manager) Link(peerID string) (*Link, bool) {
	l, ok := m.links[peerID]
	return l, ok
}

// Links returns all links in deterministic order.
func (m *Manager) Links() []*Link {
	ids := make([]string, 0, len(m.links))
	for id := range m.links {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Link, len(ids))
	for i, id := range ids {
		out[i] = m.links[id]
	}
	return out
}

// Prune drops links whose peers are out of range or behind the Earth at t,
// returning the dropped peer IDs. Bandwidth budgets are released.
func (m *Manager) Prune(t float64) []string {
	var dropped []string
	for id, l := range m.links {
		nb, ok := m.neighbors[id]
		if !ok {
			continue
		}
		alive, _ := m.feasibleTech(elementsOf(nb), nb.Caps, t)
		if !alive {
			m.committed -= l.CommittedBps
			if m.committed < 0 {
				m.committed = 0
			}
			delete(m.links, id)
			dropped = append(dropped, id)
		}
	}
	sort.Strings(dropped)
	return dropped
}
