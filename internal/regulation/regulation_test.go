package regulation

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/phy"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/topo"
)

func TestBoxContains(t *testing.T) {
	b := Box{MinLat: 10, MaxLat: 20, MinLon: -30, MaxLon: -10}
	if !b.Contains(geo.LatLon{Lat: 15, Lon: -20}) {
		t.Error("interior point missed")
	}
	for _, p := range []geo.LatLon{{Lat: 25, Lon: -20}, {Lat: 15, Lon: 0}, {Lat: 5, Lon: -20}} {
		if b.Contains(p) {
			t.Errorf("exterior point %v matched", p)
		}
	}
	// Edges inclusive.
	if !b.Contains(geo.LatLon{Lat: 10, Lon: -30}) || !b.Contains(geo.LatLon{Lat: 20, Lon: -10}) {
		t.Error("boundary points should match")
	}
}

func TestBoxValid(t *testing.T) {
	bad := []Box{
		{MinLat: 20, MaxLat: 10},
		{MinLon: 20, MaxLon: 10},
		{MinLat: -91, MaxLat: 0},
		{MinLat: 0, MaxLat: 91},
		{MinLon: -181, MaxLon: 0, MaxLat: 1},
	}
	for i, b := range bad {
		if b.Valid() {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestNewAtlasValidation(t *testing.T) {
	good := Box{MinLat: 0, MaxLat: 1, MinLon: 0, MaxLon: 1}
	cases := [][]Region{
		{{Name: "", Boxes: []Box{good}}},
		{{Name: "a", Boxes: []Box{good}}, {Name: "a", Boxes: []Box{good}}},
		{{Name: "a"}},
		{{Name: "a", Boxes: []Box{{MinLat: 5, MaxLat: 1}}}},
	}
	for i, rs := range cases {
		if _, err := NewAtlas(rs); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestDefaultAtlasLookups(t *testing.T) {
	a := DefaultAtlas()
	cases := map[string]geo.LatLon{
		"north-america": {Lat: 40.44, Lon: -79.99},  // pittsburgh
		"south-america": {Lat: -23.55, Lon: -46.63}, // são paulo
		"europe":        {Lat: 51.51, Lon: -0.13},   // london
		"africa":        {Lat: -1.29, Lon: 36.82},   // nairobi
		"asia":          {Lat: 35.68, Lon: 139.69},  // tokyo
		"oceania":       {Lat: -33.87, Lon: 151.21}, // sydney
	}
	for want, p := range cases {
		if got := a.RegionOf(p); got != want {
			t.Errorf("RegionOf(%v) = %q, want %q", p, got, want)
		}
	}
	// Mid-Pacific is unclaimed.
	if got := a.RegionOf(geo.LatLon{Lat: -40, Lon: -140}); got != "" {
		t.Errorf("open ocean classified as %q", got)
	}
	if len(a.Regions()) != 6 {
		t.Errorf("regions = %v", a.Regions())
	}
}

func TestPolicyResidency(t *testing.T) {
	p := Policy{Residency: map[string][]string{
		"europe": {"europe"},
		"africa": {"africa", "europe"},
	}}
	if !p.MayDownlink("europe", "europe") {
		t.Error("in-region downlink must be allowed")
	}
	if p.MayDownlink("europe", "north-america") {
		t.Error("out-of-region downlink must be blocked")
	}
	if !p.MayDownlink("africa", "europe") || !p.MayDownlink("africa", "africa") {
		t.Error("explicitly allowed regions blocked")
	}
	if p.MayDownlink("africa", "asia") {
		t.Error("unlisted region allowed")
	}
	// Unrestricted user region and unclaimed user region.
	if !p.MayDownlink("asia", "anywhere") {
		t.Error("unlisted user region should be unrestricted")
	}
	if !p.MayDownlink("", "europe") {
		t.Error("unclaimed user region should be unrestricted")
	}
}

func TestPolicySpectrum(t *testing.T) {
	p := Policy{Spectrum: map[string][]phy.Band{
		"europe": {phy.BandKu},
	}}
	if !p.BandAllowed("europe", phy.BandKu) {
		t.Error("allocated band blocked")
	}
	if p.BandAllowed("europe", phy.BandKa) {
		t.Error("unallocated band allowed")
	}
	if !p.BandAllowed("asia", phy.BandKa) {
		t.Error("unlisted region should allow all bands")
	}
	if !p.BandAllowed("", phy.BandKa) {
		t.Error("unclaimed region should allow all bands")
	}
}

func TestPolicyLicenses(t *testing.T) {
	p := Policy{Licenses: map[string]map[string]bool{
		"acme": {"europe": true},
	}}
	if !p.Licensed("acme", "europe") {
		t.Error("licensed provider blocked")
	}
	if p.Licensed("acme", "asia") {
		t.Error("unlicensed region allowed")
	}
	if p.Licensed("rival", "europe") {
		t.Error("unknown provider licensed")
	}
	if !p.Licensed("rival", "") {
		t.Error("unclaimed region requires no license")
	}
}

func TestResidencyFilterSteersToAllowedGateway(t *testing.T) {
	// A European user with Europe-only residency, two gateways: Seattle
	// (nearer through the constellation) and London. The filtered path
	// must land in London even if Seattle is otherwise optimal.
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
	}
	users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{Lat: 48.85, Lon: 2.35}}} // paris
	grounds := []topo.GroundSpec{
		{ID: "gs-seattle", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}},
		{ID: "gs-london", Provider: "p", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}},
	}
	snap := topo.Build(0, topo.DefaultConfig(), sats, grounds, users)

	atlas := DefaultAtlas()
	policy := Policy{Residency: map[string][]string{"europe": {"europe"}}}
	userRegion := atlas.RegionOf(geo.LatLon{Lat: 48.85, Lon: 2.35})
	if userRegion != "europe" {
		t.Fatalf("paris region = %q", userRegion)
	}
	cost := ResidencyFilter(routing.LatencyCost(0), atlas, policy, userRegion)

	// Unfiltered, the Seattle gateway is reachable.
	if _, err := routing.ShortestPath(snap, "u", "gs-seattle", routing.LatencyCost(0)); err != nil {
		t.Fatalf("baseline seattle path: %v", err)
	}
	// Filtered, Seattle is unreachable but London works.
	if _, err := routing.ShortestPath(snap, "u", "gs-seattle", cost); err == nil {
		t.Error("residency filter should sever the Seattle downlink")
	}
	p, err := routing.ShortestPath(snap, "u", "gs-london", cost)
	if err != nil {
		t.Fatalf("london path under filter: %v", err)
	}
	if p.Nodes[len(p.Nodes)-1] != "gs-london" {
		t.Errorf("path endpoint %v", p.Nodes)
	}
}
