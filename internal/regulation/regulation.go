// Package regulation models the regulatory landscape the paper's §5(3)
// identifies as an open problem for a distributed global satellite network:
// "Different countries and regions have varying policies on satellite
// communications, such as different spectrum allocation policies, as well
// as independent licensing requirements", and "the question of how to
// maintain a user's data privacy requirements when their traffic is routed
// to a groundstation outside their region".
//
// Three mechanisms:
//
//   - Atlas: a coarse partition of the Earth into named regulatory regions.
//   - Policy: per-region rules — data-residency (which regions a user's
//     traffic may downlink in), ground-spectrum allocations, and provider
//     service licenses.
//   - ResidencyFilter: a routing-cost wrapper that makes gateway links in
//     disallowed regions unusable, so paths honour privacy law by
//     construction.
package regulation

import (
	"errors"
	"fmt"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/phy"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/topo"
)

// Box is an axis-aligned latitude/longitude rectangle. Boxes must not span
// the antimeridian; use two boxes instead.
type Box struct {
	MinLat, MaxLat float64
	MinLon, MaxLon float64
}

// Contains reports whether p falls inside the box.
func (b Box) Contains(p geo.LatLon) bool {
	return p.Lat >= b.MinLat && p.Lat <= b.MaxLat &&
		p.Lon >= b.MinLon && p.Lon <= b.MaxLon
}

// Valid reports whether the box is well-formed.
func (b Box) Valid() bool {
	return b.MinLat <= b.MaxLat && b.MinLon <= b.MaxLon &&
		b.MinLat >= -90 && b.MaxLat <= 90 && b.MinLon >= -180 && b.MaxLon <= 180
}

// Region is one named regulatory jurisdiction.
type Region struct {
	Name  string
	Boxes []Box
}

// Contains reports whether p falls inside any of the region's boxes.
func (r Region) Contains(p geo.LatLon) bool {
	for _, b := range r.Boxes {
		if b.Contains(p) {
			return true
		}
	}
	return false
}

// Atlas is an ordered region list; RegionOf returns the first match.
type Atlas struct {
	regions []Region
}

// NewAtlas validates and assembles an atlas.
func NewAtlas(regions []Region) (*Atlas, error) {
	seen := map[string]bool{}
	for _, r := range regions {
		if r.Name == "" {
			return nil, errors.New("regulation: region name required")
		}
		if seen[r.Name] {
			return nil, fmt.Errorf("regulation: duplicate region %q", r.Name)
		}
		seen[r.Name] = true
		if len(r.Boxes) == 0 {
			return nil, fmt.Errorf("regulation: region %q has no area", r.Name)
		}
		for _, b := range r.Boxes {
			if !b.Valid() {
				return nil, fmt.Errorf("regulation: region %q has invalid box %+v", r.Name, b)
			}
		}
	}
	return &Atlas{regions: regions}, nil
}

// RegionOf returns the region containing p, or "" when unclaimed
// (international waters).
func (a *Atlas) RegionOf(p geo.LatLon) string {
	for _, r := range a.regions {
		if r.Contains(p) {
			return r.Name
		}
	}
	return ""
}

// Regions returns the region names in atlas order.
func (a *Atlas) Regions() []string {
	out := make([]string, len(a.regions))
	for i, r := range a.regions {
		out[i] = r.Name
	}
	return out
}

// DefaultAtlas returns a coarse continental partition — enough to exercise
// every cross-region rule without pretending to be a border dataset.
func DefaultAtlas() *Atlas {
	a, err := NewAtlas([]Region{
		{Name: "north-america", Boxes: []Box{{MinLat: 7, MaxLat: 84, MinLon: -169, MaxLon: -52}}},
		{Name: "south-america", Boxes: []Box{{MinLat: -56, MaxLat: 7, MinLon: -82, MaxLon: -34}}},
		{Name: "europe", Boxes: []Box{{MinLat: 36, MaxLat: 72, MinLon: -11, MaxLon: 40}}},
		{Name: "africa", Boxes: []Box{{MinLat: -35, MaxLat: 36, MinLon: -18, MaxLon: 52}}},
		{Name: "asia", Boxes: []Box{{MinLat: 0, MaxLat: 78, MinLon: 40, MaxLon: 180}}},
		{Name: "oceania", Boxes: []Box{{MinLat: -48, MaxLat: 0, MinLon: 110, MaxLon: 180}}},
	})
	if err != nil {
		panic(err) // static data; unreachable
	}
	return a
}

// Policy is the rule set a federation operates under.
type Policy struct {
	// Residency maps a user's region to the regions where their traffic
	// may reach the ground. Regions not present have no restriction.
	Residency map[string][]string
	// Spectrum maps a region to its allowed ground-link bands. Regions not
	// present allow every band.
	Spectrum map[string][]phy.Band
	// Licenses maps provider → regions it is licensed to serve users in.
	// Providers not present are unlicensed everywhere.
	Licenses map[string]map[string]bool
}

// MayDownlink reports whether traffic of a user in userRegion may reach the
// ground in gsRegion. Unclaimed regions ("") are unrestricted.
func (p Policy) MayDownlink(userRegion, gsRegion string) bool {
	if userRegion == "" {
		return true
	}
	allowed, ok := p.Residency[userRegion]
	if !ok {
		return true
	}
	for _, r := range allowed {
		if r == gsRegion {
			return true
		}
	}
	return false
}

// BandAllowed reports whether a ground link may use the band in the region.
func (p Policy) BandAllowed(region string, band phy.Band) bool {
	if region == "" {
		return true
	}
	bands, ok := p.Spectrum[region]
	if !ok {
		return true
	}
	for _, b := range bands {
		if b == band {
			return true
		}
	}
	return false
}

// Licensed reports whether the provider may serve users in the region.
func (p Policy) Licensed(provider, region string) bool {
	if region == "" {
		return true
	}
	regions, ok := p.Licenses[provider]
	if !ok {
		return false
	}
	return regions[region]
}

// ResidencyFilter wraps a routing cost function so that ground-station
// links landing in regions the user's traffic may not downlink in become
// unusable — §5(3)'s privacy constraint enforced at path computation.
func ResidencyFilter(base routing.CostFunc, atlas *Atlas, policy Policy, userRegion string) routing.CostFunc {
	return func(e topo.Edge, s *topo.Snapshot) (float64, bool) {
		if e.Kind == topo.LinkGround {
			gs := s.Node(e.To)
			if gs == nil || gs.Kind != topo.KindGroundStation {
				gs = s.Node(e.From)
			}
			if gs != nil && gs.Kind == topo.KindGroundStation {
				region := atlas.RegionOf(gs.Pos.LatLon())
				if !policy.MayDownlink(userRegion, region) {
					return 0, false
				}
			}
		}
		return base(e, s)
	}
}
