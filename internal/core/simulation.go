package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/sim"
)

// Scenario describes a workload to drive through a federation with the
// discrete-event engine: users send Poisson traffic to random gateways
// while their terminals hand over between satellites as the constellation
// moves.
type Scenario struct {
	// DurationS is the simulated horizon.
	DurationS float64
	// SnapshotIntervalS is the topology cadence (also the handover check
	// cadence).
	SnapshotIntervalS float64
	// PerUserRate is each user's transfer arrival rate (transfers/s).
	PerUserRate float64
	// MinBytes/MaxBytes bound the Pareto-distributed transfer sizes.
	MinBytes, MaxBytes int64
	// Seed drives workload randomness (independent of the network's seed).
	Seed int64
}

// Validate reports whether the scenario is runnable.
func (s Scenario) Validate() error {
	if s.DurationS <= 0 {
		return errors.New("core: scenario duration must be positive")
	}
	if s.SnapshotIntervalS <= 0 {
		return errors.New("core: snapshot interval must be positive")
	}
	if s.PerUserRate <= 0 {
		return errors.New("core: per-user rate must be positive")
	}
	if s.MinBytes <= 0 || s.MaxBytes < s.MinBytes {
		return fmt.Errorf("core: transfer size bounds [%d,%d] invalid", s.MinBytes, s.MaxBytes)
	}
	return nil
}

// ScenarioResult aggregates a scenario run.
type ScenarioResult struct {
	TransfersAttempted     int
	TransfersDelivered     int
	BytesDelivered         int64
	LatencyS               sim.Histogram
	Handovers              int
	CrossProviderHandovers int
	CarriageUSD            float64
	GatewayUSD             float64
	EventsProcessed        uint64
}

// DeliveryRate returns the delivered fraction.
func (r *ScenarioResult) DeliveryRate() float64 {
	if r.TransfersAttempted == 0 {
		return 0
	}
	return float64(r.TransfersDelivered) / float64(r.TransfersAttempted)
}

// RunScenario drives the workload through the network on a discrete-event
// engine: per-user Poisson transfer arrivals (sent to the
// completion-optimal gateway), and periodic handover checks that move each
// terminal to its planned successor when the serving satellite sets.
// The network must have users added; topology is (re)built to cover the
// scenario horizon.
func (n *Network) RunScenario(sc Scenario) (*ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if len(n.users) == 0 {
		return nil, errors.New("core: scenario needs at least one user")
	}
	if err := n.BuildTopology(0, sc.DurationS, sc.SnapshotIntervalS); err != nil {
		return nil, err
	}

	// Associate everyone at t=0; users in a coverage gap at t=0 retry at
	// each handover tick.
	userIDs := make([]string, 0, len(n.users))
	for id := range n.users {
		userIDs = append(userIDs, id)
	}
	sort.Strings(userIDs)
	associated := map[string]bool{}
	for _, id := range userIDs {
		if err := n.Associate(id, 0); err == nil {
			associated[id] = true
		}
	}

	rng := rand.New(rand.NewSource(exec.Seed(sc.Seed, rngDomainScenario)))
	engine := sim.NewEngine()
	res := &ScenarioResult{}

	// Transfer arrivals per user.
	for _, id := range userIDs {
		arrivals, err := sim.PoissonArrivals(sc.PerUserRate, sc.DurationS, rng)
		if err != nil {
			return nil, err
		}
		for _, at := range arrivals {
			id := id
			bytes := sim.FlowSizeBytes(sc.MinBytes, sc.MaxBytes, 1.2, rng)
			if err := engine.Schedule(at, func(e *sim.Engine) {
				res.TransfersAttempted++
				if !associated[id] {
					return
				}
				d, _, err := n.SendBest(id, bytes, e.Now())
				if err != nil {
					return
				}
				res.TransfersDelivered++
				res.BytesDelivered += bytes
				res.LatencyS.Add(d.LatencyS)
				res.CarriageUSD += d.CarriageUSD
				res.GatewayUSD += d.GatewayFeeUSD
			}); err != nil {
				return nil, err
			}
		}
	}

	// Periodic handover maintenance.
	var tick func(*sim.Engine)
	tick = func(e *sim.Engine) {
		now := e.Now()
		for _, id := range userIDs {
			if !associated[id] {
				// Retry association for users that started in a gap.
				if err := n.Associate(id, now); err == nil {
					associated[id] = true
				}
				continue
			}
			plan, err := n.PlanHandover(id, now, sc.SnapshotIntervalS)
			if err != nil {
				continue // serving satellite outlives this interval
			}
			if plan.SetTimeS <= now+sc.SnapshotIntervalS {
				if err := n.ExecuteHandover(id, plan); err == nil {
					res.Handovers++
					if plan.CrossProvider {
						res.CrossProviderHandovers++
					}
				}
			}
		}
		next := now + sc.SnapshotIntervalS
		if next < sc.DurationS {
			e.Schedule(next, tick)
		}
	}
	if err := engine.Schedule(0, tick); err != nil {
		return nil, err
	}

	engine.Run(sc.DurationS)
	res.EventsProcessed = engine.Processed
	return res, nil
}
