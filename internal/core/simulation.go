package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/fluid"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
)

// Scenario describes a workload to drive through a federation with the
// discrete-event engine: users send Poisson traffic to random gateways
// while their terminals hand over between satellites as the constellation
// moves.
type Scenario struct {
	// DurationS is the simulated horizon.
	DurationS float64
	// SnapshotIntervalS is the topology cadence (also the handover check
	// cadence).
	SnapshotIntervalS float64
	// PerUserRate is each user's transfer arrival rate (transfers/s).
	PerUserRate float64
	// MinBytes/MaxBytes bound the Pareto-distributed transfer sizes.
	MinBytes, MaxBytes int64
	// Seed drives workload randomness (independent of the network's seed).
	Seed int64
	// Faults optionally injects deterministic failures (satellite outages,
	// ISL flaps, ground weather, solar storms — see internal/faults). The
	// zero value disables injection entirely: a fault-free run takes exactly
	// the code path it did before this field existed.
	Faults faults.Config
	// Retry bounds the deterministic backoff for transfers that fail while
	// faults are active; the zero value means routing.DefaultBackoff().
	// Ignored when Faults is disabled.
	Retry routing.Backoff
	// Aggregate switches the run to fluid mode: the user population in
	// Aggregate.Users is bucketed into (city-pair × class) aggregates and
	// evolved through the max-min allocator once per snapshot interval,
	// instead of one engine event per transfer. The zero value keeps the
	// per-flow path byte-identical to runs that predate this field.
	// In fluid mode PerUserRate/MinBytes/MaxBytes and the network's users
	// are unused (traffic originates at cities, not modelled terminals),
	// and Aggregate.Seed falls back to Seed when zero.
	Aggregate fluid.Config
	// MaxEvents, when non-zero, bounds the number of engine events the run
	// may deliver — a deterministic, wall-clock-free timeout. A run that
	// exhausts the budget returns an error wrapping ErrEventBudget; the
	// zero value leaves runs unbounded and byte-identical to scenarios
	// that predate this field.
	MaxEvents uint64
}

// ErrEventBudget marks a scenario that stopped because it exhausted its
// MaxEvents budget. Because the budget counts simulated events — never
// wall-clock — exhaustion is reproducible: the same scenario exhausts the
// same budget at the same event on every machine. Callers distinguish it
// with errors.Is; the campaign supervisor treats it as a non-retryable
// timeout (re-running a deterministic run re-exhausts deterministically).
var ErrEventBudget = errors.New("core: simulated-event budget exhausted")

// Validate reports whether the scenario is runnable.
func (s Scenario) Validate() error {
	if s.DurationS <= 0 {
		return errors.New("core: scenario duration must be positive")
	}
	if s.SnapshotIntervalS <= 0 {
		return errors.New("core: snapshot interval must be positive")
	}
	if !s.Aggregate.Enabled() {
		// Per-flow workload knobs; fluid mode derives its workload from
		// the class matrix instead.
		if s.PerUserRate <= 0 {
			return errors.New("core: per-user rate must be positive")
		}
		if s.MinBytes <= 0 || s.MaxBytes < s.MinBytes {
			return fmt.Errorf("core: transfer size bounds [%d,%d] invalid", s.MinBytes, s.MaxBytes)
		}
	}
	if s.Faults.Enabled() {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ScenarioResult aggregates a scenario run.
type ScenarioResult struct {
	TransfersAttempted     int
	TransfersDelivered     int
	BytesDelivered         int64
	LatencyS               sim.Histogram
	Handovers              int
	CrossProviderHandovers int
	CarriageUSD            float64
	GatewayUSD             float64
	EventsProcessed        uint64

	// Fault-injection counters, all zero when Scenario.Faults is disabled.
	FaultEvents        int // fault state transitions observed (failures + repairs)
	DroppedTerminals   int // terminals forced back to idle by a serving-satellite outage
	Retries            int // transfer retry attempts scheduled
	RecoveredTransfers int // transfers delivered after at least one retry
	AbandonedTransfers int // transfers that exhausted the retry budget

	// Fluid carries the aggregate-mode detail (per-class counters and
	// bounded-memory latency sketches); nil on the per-flow path. In fluid
	// mode LatencyS stays empty (latency lives in Fluid.Latency) and the
	// economics counters stay 0 (aggregates carry no per-delivery pricing).
	Fluid *fluid.Result
}

// DeliveryRate returns the delivered fraction.
func (r *ScenarioResult) DeliveryRate() float64 {
	if r.TransfersAttempted == 0 {
		return 0
	}
	return float64(r.TransfersDelivered) / float64(r.TransfersAttempted)
}

// RunScenario drives the workload through the network on a discrete-event
// engine: per-user Poisson transfer arrivals (sent to the
// completion-optimal gateway), and periodic handover checks that move each
// terminal to its planned successor when the serving satellite sets.
// The network must have users added; topology is (re)built to cover the
// scenario horizon.
func (n *Network) RunScenario(sc Scenario) (*ScenarioResult, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if sc.Aggregate.Enabled() {
		return n.runAggregateScenario(sc)
	}
	if len(n.users) == 0 {
		return nil, errors.New("core: scenario needs at least one user")
	}
	if err := n.BuildTopology(0, sc.DurationS, sc.SnapshotIntervalS); err != nil {
		return nil, err
	}

	// Associate everyone at t=0; users in a coverage gap at t=0 retry at
	// each handover tick.
	userIDs := make([]string, 0, len(n.users))
	for id := range n.users {
		userIDs = append(userIDs, id)
	}
	sort.Strings(userIDs)
	associated := map[string]bool{}
	for _, id := range userIDs {
		if err := n.Associate(id, 0); err == nil {
			associated[id] = true
		}
	}

	rng := exec.DomainRNG(sc.Seed, domainScenario)
	engine := sim.NewEngine()
	engine.MaxEvents = sc.MaxEvents
	res := &ScenarioResult{}

	// Fault injection: generate the deterministic timeline over the intact
	// t=0 snapshot and drive it through the engine. Each transition swaps in
	// a degraded overlay of the topology (association and routing then see
	// only surviving elements) and drops terminals whose serving satellite
	// died; they re-associate at the next handover tick. Fault transitions
	// are scheduled before the workload, so at equal instants failures land
	// before the transfers that must route around them.
	faultsOn := sc.Faults.Enabled()
	if faultsOn {
		tl, err := faults.Generate(sc.Faults, sc.DurationS, faults.InputsFromSnapshot(n.te.At(0)))
		if err != nil {
			return nil, err
		}
		mask := faults.NewMask()
		onChange := func(e *sim.Engine, _ faults.Event, down bool) {
			res.FaultEvents++
			if err := n.ApplyFaultMask(mask); err != nil {
				panic(err) // unreachable: topology was built above
			}
			if !down {
				return
			}
			for _, id := range userIDs {
				if !associated[id] {
					continue
				}
				u := n.users[id]
				serving, _ := u.Terminal.Serving()
				if mask.NodeDown(serving) {
					u.Terminal.Dropped()
					associated[id] = false
					res.DroppedTerminals++
				}
			}
		}
		if err := tl.Drive(engine, mask, onChange); err != nil {
			return nil, err
		}
	}
	retry := sc.Retry
	if retry == (routing.Backoff{}) {
		retry = routing.DefaultBackoff()
	}

	// Transfer arrivals per user. With faults enabled, a failed send retries
	// with bounded deterministic backoff — the jitter real stacks add is for
	// breaking synchronisation, which the engine's deterministic tie-break
	// already provides.
	var attemptSend func(e *sim.Engine, id string, bytes int64, attempt int)
	attemptSend = func(e *sim.Engine, id string, bytes int64, attempt int) {
		if associated[id] {
			if d, _, err := n.SendBest(id, bytes, e.Now()); err == nil {
				res.TransfersDelivered++
				res.BytesDelivered += bytes
				res.LatencyS.Add(d.LatencyS)
				res.CarriageUSD += d.CarriageUSD
				res.GatewayUSD += d.GatewayFeeUSD
				if attempt > 0 {
					res.RecoveredTransfers++
				}
				return
			}
		}
		if !faultsOn {
			return // keep the fault-free path byte-identical to older runs
		}
		delay, ok := retry.DelayS(attempt)
		if !ok || e.Now()+delay >= sc.DurationS {
			res.AbandonedTransfers++
			return
		}
		res.Retries++
		if err := e.After(delay, func(e *sim.Engine) {
			attemptSend(e, id, bytes, attempt+1)
		}); err != nil {
			panic(err) // unreachable: delay validated non-negative
		}
	}
	for _, id := range userIDs {
		arrivals, err := sim.PoissonArrivals(sc.PerUserRate, sc.DurationS, rng)
		if err != nil {
			return nil, err
		}
		for _, at := range arrivals {
			id := id
			bytes := sim.FlowSizeBytes(sc.MinBytes, sc.MaxBytes, 1.2, rng)
			if err := engine.Schedule(at, func(e *sim.Engine) {
				res.TransfersAttempted++
				attemptSend(e, id, bytes, 0)
			}); err != nil {
				return nil, err
			}
		}
	}

	// Periodic handover maintenance.
	var tick func(*sim.Engine)
	tick = func(e *sim.Engine) {
		now := e.Now()
		for _, id := range userIDs {
			if !associated[id] {
				// Retry association for users that started in a gap.
				if err := n.Associate(id, now); err == nil {
					associated[id] = true
				}
				continue
			}
			plan, err := n.PlanHandover(id, now, sc.SnapshotIntervalS)
			if err != nil {
				continue // serving satellite outlives this interval
			}
			if plan.SetTimeS <= now+sc.SnapshotIntervalS {
				if err := n.ExecuteHandover(id, plan); err == nil {
					res.Handovers++
					if plan.CrossProvider {
						res.CrossProviderHandovers++
					}
				}
			}
		}
		next := now + sc.SnapshotIntervalS
		if next < sc.DurationS {
			if err := e.Schedule(next, tick); err != nil {
				panic(err) // unreachable: next > now ≥ 0 while the engine runs
			}
		}
	}
	if err := engine.Schedule(0, tick); err != nil {
		return nil, err
	}

	engine.Run(sc.DurationS)
	res.EventsProcessed = engine.Processed
	if engine.Exhausted() {
		return nil, fmt.Errorf("core: scenario stopped after %d events: %w", engine.Processed, ErrEventBudget)
	}
	return res, nil
}
