package core

import (
	"strings"
	"testing"

	"github.com/openspace-project/openspace/internal/assoc"
	"github.com/openspace-project/openspace/internal/auth"
	"github.com/openspace-project/openspace/internal/economics"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// threeProviderConfig splits Iridium across three firms, with ground
// stations owned by two of them.
func threeProviderConfig(t *testing.T) NetworkConfig {
	t.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	fleets := SplitConstellation(c, 3, 0.3)
	return NetworkConfig{
		Providers: []ProviderConfig{
			{
				ID: "acme", Satellites: fleets[0], CarriagePerGB: 0.20,
				GroundStations: []GroundStationConfig{
					{ID: "gs-seattle", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}, BackhaulBps: 10e9, PricePerGB: 0.05, VisitorSurge: 2},
				},
			},
			{
				ID: "orbitco", Satellites: fleets[1], CarriagePerGB: 0.30,
				GroundStations: []GroundStationConfig{
					{ID: "gs-nairobi", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}, BackhaulBps: 5e9, PricePerGB: 0.08, VisitorSurge: 3},
				},
			},
			{ID: "skynet", Satellites: fleets[2], CarriagePerGB: 0.25},
		},
		Seed: 42,
	}
}

// builtNetwork returns a network with one user, topology built.
func builtNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddUser("alice", "acme", geo.LatLon{Lat: 40.44, Lon: -79.99}); err != nil {
		t.Fatal(err)
	}
	if err := n.BuildTopology(0, 300, 60); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	good := threeProviderConfig(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	cases := []func(*NetworkConfig){
		func(c *NetworkConfig) { c.Providers = nil },
		func(c *NetworkConfig) { c.Providers[0].ID = "" },
		func(c *NetworkConfig) { c.Providers[1].ID = c.Providers[0].ID },
		func(c *NetworkConfig) { c.Providers[0].CarriagePerGB = -1 },
		func(c *NetworkConfig) { c.Providers[0].Satellites[0].ID = "" },
		func(c *NetworkConfig) { c.Providers[0].Satellites[1].ID = c.Providers[0].Satellites[0].ID },
		func(c *NetworkConfig) { c.Providers[0].Satellites[0].Elements = orbit.Elements{} },
		func(c *NetworkConfig) { c.Providers[0].Satellites[0].MaxISLs = -1 },
		func(c *NetworkConfig) { c.Providers[0].GroundStations[0].ID = "" },
		func(c *NetworkConfig) { c.Providers[0].GroundStations[0].Pos = geo.LatLon{Lat: 99} },
		func(c *NetworkConfig) { c.Providers[0].GroundStations[0].BackhaulBps = 0 },
		func(c *NetworkConfig) { c.CertTTLS = -1 },
		func(c *NetworkConfig) { c.PerHopProcessingS = -1 },
	}
	for i, mutate := range cases {
		cfg := threeProviderConfig(t)
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	// Duplicate node ID across providers.
	cfg := threeProviderConfig(t)
	cfg.Providers[1].GroundStations[0].ID = cfg.Providers[0].GroundStations[0].ID
	if cfg.Validate() == nil {
		t.Error("duplicate station ID across providers should be invalid")
	}
}

func TestSplitConstellation(t *testing.T) {
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	fleets := SplitConstellation(c, 3, 0.5)
	if len(fleets) != 3 {
		t.Fatalf("fleet count %d", len(fleets))
	}
	total, lasers := 0, 0
	for _, f := range fleets {
		total += len(f)
		for _, s := range f {
			if s.HasLaser {
				lasers++
			}
		}
	}
	if total != 66 {
		t.Errorf("total satellites %d", total)
	}
	if lasers != 33 {
		t.Errorf("laser satellites %d, want 33 (every 2nd)", lasers)
	}
	if SplitConstellation(c, 0, 0) != nil {
		t.Error("zero fleets should be nil")
	}
	// Zero laser fraction → none.
	for _, f := range SplitConstellation(c, 2, 0) {
		for _, s := range f {
			if s.HasLaser {
				t.Fatal("laser satellite with zero fraction")
			}
		}
	}
}

func TestNewNetworkFederation(t *testing.T) {
	n, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Providers(); len(got) != 3 || got[0] != "acme" {
		t.Errorf("providers = %v", got)
	}
	// Cross-provider trust: orbitco trusts acme-issued certificates.
	acme := n.Provider("acme")
	orbitco := n.Provider("orbitco")
	acme.Auth.Enroll("u", []byte("s"))
	nonce, err := acme.Auth.Challenge("u")
	if err != nil {
		t.Fatal(err)
	}
	cert, err := acme.Auth.VerifyProof("u", 1, proofFor([]byte("s"), 1, nonce), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := orbitco.Trust.Verify(cert, 1); err != nil {
		t.Errorf("federated trust broken: %v", err)
	}
	if n.Provider("ghost") != nil {
		t.Error("phantom provider")
	}
}

func TestAddUser(t *testing.T) {
	n, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	u, err := n.AddUser("alice", "acme", geo.LatLon{Lat: 1, Lon: 2})
	if err != nil {
		t.Fatal(err)
	}
	if u.Terminal.State() != assoc.StateIdle {
		t.Error("fresh user should be idle")
	}
	if _, err := n.AddUser("alice", "acme", geo.LatLon{}); err == nil {
		t.Error("duplicate user should fail")
	}
	if _, err := n.AddUser("bob", "ghost", geo.LatLon{}); err == nil {
		t.Error("unknown ISP should fail")
	}
	if n.User("alice") != u || n.User("ghost") != nil {
		t.Error("User lookup broken")
	}
}

func TestAssociateEndToEnd(t *testing.T) {
	n := builtNetwork(t)
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	u := n.User("alice")
	if u.Terminal.State() != assoc.StateAssociated {
		t.Fatalf("state = %v", u.Terminal.State())
	}
	sat, prov := u.Terminal.Serving()
	if sat == "" || prov == "" {
		t.Fatal("no serving satellite")
	}
	cert := u.Terminal.Certificate()
	if cert == nil || cert.Issuer != "acme" {
		t.Errorf("certificate = %v", cert)
	}
	// Roaming is expected: the serving provider is frequently not the home
	// ISP with interleaved fleets — either way the cert must verify
	// under every provider's trust store.
	for _, pid := range n.Providers() {
		if err := n.Provider(pid).Trust.Verify(cert, 1); err != nil {
			t.Errorf("provider %s rejects cert: %v", pid, err)
		}
	}
	// Errors.
	if err := n.Associate("ghost", 0); err == nil {
		t.Error("unknown user should fail")
	}
	n2, _ := NewNetwork(threeProviderConfig(t))
	n2.AddUser("bob", "acme", geo.LatLon{})
	if err := n2.Associate("bob", 0); err == nil {
		t.Error("associate before BuildTopology should fail")
	}
}

func TestSendEndToEnd(t *testing.T) {
	n := builtNetwork(t)
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	const bytes = 2_000_000_000 // 2 GB
	d, err := n.Send("alice", "gs-nairobi", bytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Path endpoints.
	nodes := d.Path.Nodes
	if nodes[0] != "alice" || nodes[len(nodes)-1] != "gs-nairobi" {
		t.Fatalf("path endpoints: %v", nodes)
	}
	// Latency is plausible: Pittsburgh→Nairobi ≥ 11,800 km surface.
	if d.LatencyS < 0.035 || d.LatencyS > 1 {
		t.Errorf("latency %v s implausible", d.LatencyS)
	}
	if len(d.HopOwners) != d.Path.Hops {
		t.Errorf("hop owners %d for %d hops", len(d.HopOwners), d.Path.Hops)
	}
	// Gateway fee: gs-nairobi belongs to orbitco; alice is an acme user →
	// visitor pricing (base 0.08, idle so no surge) for 2 GB.
	if d.GatewayFeeUSD != 0.16 {
		t.Errorf("gateway fee %v, want 0.16", d.GatewayFeeUSD)
	}
	// The station metered acme's traffic.
	st, _ := n.station("gs-nairobi")
	if got := st.Usage()["acme"]; got != bytes {
		t.Errorf("metered %d, want %d", got, bytes)
	}
	// Every carrier's ledger and the home ledger agree (cross-verifiable).
	acme := n.Provider("acme").Ledger
	for _, pid := range n.Providers()[1:] {
		if ds := economics.CrossVerify(acme, n.Provider(pid).Ledger); len(ds) != 0 {
			t.Errorf("ledgers disagree acme vs %s: %v", pid, ds)
		}
	}
	// Cross-owner hops must exist with 3 interleaved providers, and
	// carriage must be charged.
	if d.CrossOwnerHops == 0 || d.CarriageUSD <= 0 {
		t.Errorf("no cross-provider carriage: %+v", d)
	}
}

func TestSendValidation(t *testing.T) {
	n := builtNetwork(t)
	if _, err := n.Send("alice", "gs-nairobi", 100, 0); err == nil ||
		!strings.Contains(err.Error(), "not associated") {
		t.Errorf("unassociated send: %v", err)
	}
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send("alice", "gs-nairobi", 0, 0); err == nil {
		t.Error("zero bytes should fail")
	}
	if _, err := n.Send("ghost", "gs-nairobi", 1, 0); err == nil {
		t.Error("unknown user should fail")
	}
	if _, err := n.Send("alice", "gs-ghost", 1, 0); err == nil {
		t.Error("unknown station should fail")
	}
}

func TestPathProvidersMeshed(t *testing.T) {
	n := builtNetwork(t)
	provs, err := n.PathProviders("alice", "gs-nairobi", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) < 2 {
		t.Errorf("interleaved fleets should mesh providers; got %v", provs)
	}
}

func TestFederationGain(t *testing.T) {
	n := builtNetwork(t)
	g, err := n.FederationGain(0, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Solo) != 3 {
		t.Fatalf("solo map = %v", g.Solo)
	}
	// 22 satellites each cover real area but far less than the union.
	for pid, f := range g.Solo {
		if f <= 0 || f >= g.Union {
			t.Errorf("provider %s solo coverage %v vs union %v", pid, f, g.Union)
		}
	}
	if g.Union < 0.95 {
		t.Errorf("federated Iridium union coverage %v, want ≥0.95", g.Union)
	}
	if g.BestSolo >= g.Union {
		t.Errorf("best solo %v should trail union %v", g.BestSolo, g.Union)
	}
	// Unknown provider errors.
	if _, err := n.CoverageFraction(0, []string{"ghost"}, 100); err == nil {
		t.Error("unknown provider should fail")
	}
}

func TestConnectivity(t *testing.T) {
	n := builtNetwork(t)
	stats := n.Connectivity(0)
	if stats.Pairs != 2 { // alice × 2 stations
		t.Fatalf("pairs = %d", stats.Pairs)
	}
	if stats.Reachable != 2 || stats.Fraction() != 1 {
		t.Errorf("full Iridium should connect everything: %+v", stats)
	}
	// Before topology: zero stats.
	n2, _ := NewNetwork(threeProviderConfig(t))
	if s := n2.Connectivity(0); s.Pairs != 0 || s.Fraction() != 0 {
		t.Errorf("pre-topology connectivity = %+v", s)
	}
}

// proofFor wraps auth.Proof for the federation trust test.
func proofFor(secret []byte, clientNonce, serverNonce uint64) []byte {
	return auth.Proof(secret, clientNonce, serverNonce)
}

func TestSendProducesVerifiableReceipts(t *testing.T) {
	n := builtNetwork(t)
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	d, err := n.Send("alice", "gs-nairobi", 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Receipts) != len(d.HopOwners) {
		t.Fatalf("receipts %d vs hops %d", len(d.Receipts), len(d.HopOwners))
	}
	keys := n.PublicKeys()
	if err := economics.VerifyChain(d.Receipts, keys); err != nil {
		t.Fatalf("receipt chain invalid: %v", err)
	}
	// A tampered receipt is detected.
	forged := append([]economics.Receipt(nil), d.Receipts...)
	forged[0].Bytes = 999999
	if err := economics.VerifyChain(forged, keys); err == nil {
		t.Error("tampered receipt chain accepted")
	}
	// The chain applied to a fresh auditor ledger agrees with the home
	// ISP's own books for this flow's carriers.
	audit := economics.NewLedger("acme")
	if err := economics.ApplyChain(audit, d.Receipts, keys); err != nil {
		t.Fatal(err)
	}
	for _, owner := range d.HopOwners {
		if owner == "acme" {
			continue
		}
		if audit.Carried(owner, "acme") == 0 {
			t.Errorf("auditor ledger missing carriage by %s", owner)
		}
	}
	// Flow IDs increment.
	d2, err := n.Send("alice", "gs-nairobi", 1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d2.FlowID != d.FlowID+1 {
		t.Errorf("flow IDs: %d then %d", d.FlowID, d2.FlowID)
	}
}

func TestMoveUserForcesReassociation(t *testing.T) {
	n := builtNetwork(t)
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	if err := n.MoveUser("alice", geo.LatLon{Lat: -33.87, Lon: 151.21}); err != nil {
		t.Fatal(err)
	}
	// Association and certificate dropped; topology invalidated.
	if n.User("alice").Terminal.State() == assoc.StateAssociated {
		t.Error("relocation must drop association")
	}
	if n.User("alice").Terminal.Certificate() != nil {
		t.Error("relocation must drop certificate")
	}
	if _, err := n.Send("alice", "gs-nairobi", 1, 0); err == nil {
		t.Error("send after move without rebuild should fail")
	}
	// Rebuild, re-associate, send again — the full §2.2 cycle.
	if err := n.BuildTopology(0, 300, 60); err != nil {
		t.Fatal(err)
	}
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Send("alice", "gs-nairobi", 1000, 0); err != nil {
		t.Errorf("send after re-association: %v", err)
	}
	// Unknown user and invalid position.
	if err := n.MoveUser("ghost", geo.LatLon{}); err == nil {
		t.Error("unknown user should fail")
	}
	if err := n.MoveUser("alice", geo.LatLon{Lat: 99}); err == nil {
		t.Error("invalid position should fail")
	}
}
