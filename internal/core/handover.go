package core

import (
	"errors"
	"fmt"
	"sort"

	"github.com/openspace-project/openspace/internal/assoc"
	"github.com/openspace-project/openspace/internal/handover"
)

// HandoverPlan is the outcome of planning a user's next handover.
type HandoverPlan struct {
	Serving           string
	SuccessorID       string
	SuccessorProvider string
	SetTimeS          float64 // when the serving satellite drops below the mask
	CrossProvider     bool
}

// PlanHandover computes the user's next handover from public orbital
// knowledge (§2.2): when the serving satellite will set, and which
// satellite should take over. horizonS bounds the search.
func (n *Network) PlanHandover(userID string, t, horizonS float64) (*HandoverPlan, error) {
	u, ok := n.users[userID]
	if !ok {
		return nil, fmt.Errorf("core: unknown user %q", userID)
	}
	if u.Terminal.State() != assoc.StateAssociated {
		return nil, errors.New("core: user not associated")
	}
	serving, _ := u.Terminal.Serving()

	pred, err := n.predictorFor(u)
	if err != nil {
		return nil, err
	}
	setTime := pred.VisibleUntil(serving, t, horizonS)
	if setTime >= t+horizonS {
		return nil, fmt.Errorf("core: %s stays visible beyond the horizon", serving)
	}
	succ, found := pred.PickSuccessor(serving, setTime, horizonS)
	if !found {
		return nil, fmt.Errorf("core: no successor visible at t=%.1f (coverage gap)", setTime)
	}
	return &HandoverPlan{
		Serving:           serving,
		SuccessorID:       succ.ID,
		SuccessorProvider: succ.Provider,
		SetTimeS:          setTime,
		CrossProvider:     succ.Provider != n.providerOfSatellite(serving),
	}, nil
}

// ExecuteHandover switches the user to the planned successor without
// re-authentication — the certificate from association keeps vouching.
func (n *Network) ExecuteHandover(userID string, plan *HandoverPlan) error {
	u, ok := n.users[userID]
	if !ok {
		return fmt.Errorf("core: unknown user %q", userID)
	}
	if plan == nil {
		return errors.New("core: nil handover plan")
	}
	return u.Terminal.SwitchTo(plan.SuccessorID, plan.SuccessorProvider)
}

// predictorFor builds a handover predictor over the whole federation's
// fleet for the user's location.
func (n *Network) predictorFor(u *User) (*handover.Predictor, error) {
	var sats []handover.Sat
	for _, pid := range n.Providers() {
		p := n.providers[pid]
		for _, s := range p.Satellites {
			sats = append(sats, handover.Sat{ID: s.ID, Provider: pid, Elements: s.Elements})
		}
	}
	return handover.NewPredictor(sats, u.Pos, n.cfg.Topo.MinElevationDeg)
}

// providerOfSatellite returns the owner of a satellite ID, or "".
func (n *Network) providerOfSatellite(id string) string {
	for _, pid := range n.Providers() {
		for _, s := range n.providers[pid].Satellites {
			if s.ID == id {
				return pid
			}
		}
	}
	return ""
}

// GatewayChoice scores one candidate station for a transfer.
type GatewayChoice struct {
	StationID    string
	Provider     string
	PathLatencyS float64
	QueueDelayS  float64
	CompletionS  float64 // path latency + queue + serialisation on backhaul
	PricePerGB   float64
}

// RankGateways evaluates every reachable gateway for a transfer of the
// given size at time t and returns choices ordered by predicted completion
// time — the paper's §5(2) trade-off made concrete: "peak loads at certain
// ground-stations may necessitate re-routing of traffic to a ground station
// that is further away but is idle; in this case, a computation of the
// trade-off between longer routing distance vs queuing and job completion
// times is necessary at runtime".
func (n *Network) RankGateways(userID string, bytes int64, t float64) ([]GatewayChoice, error) {
	u, ok := n.users[userID]
	if !ok {
		return nil, fmt.Errorf("core: unknown user %q", userID)
	}
	if n.router == nil {
		return nil, errors.New("core: BuildTopology must run before RankGateways")
	}
	var out []GatewayChoice
	for _, pid := range n.Providers() {
		p := n.providers[pid]
		for sid, st := range p.Stations {
			path, err := n.router.Route(t, userID, sid)
			if err != nil {
				continue
			}
			offer := st.Quote(u.HomeISP, t)
			serialise := float64(bytes*8) / st.BackhaulBps
			lat := path.DelayS + float64(path.Hops)*n.cfg.PerHopProcessingS
			out = append(out, GatewayChoice{
				StationID:    sid,
				Provider:     pid,
				PathLatencyS: lat,
				QueueDelayS:  offer.QueueDelayS,
				CompletionS:  lat + offer.QueueDelayS + serialise,
				PricePerGB:   offer.PricePerGB,
			})
		}
	}
	if len(out) == 0 {
		return nil, errors.New("core: no reachable gateway")
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CompletionS != out[j].CompletionS { //lint:allow floateq exact sort tie-break keeps gateway ranking deterministic
			return out[i].CompletionS < out[j].CompletionS
		}
		return out[i].StationID < out[j].StationID
	})
	return out, nil
}

// SendBest delivers to the gateway with the earliest predicted completion —
// possibly a farther, idle station over a nearer, loaded one.
func (n *Network) SendBest(userID string, bytes int64, t float64) (*Delivery, GatewayChoice, error) {
	choices, err := n.RankGateways(userID, bytes, t)
	if err != nil {
		return nil, GatewayChoice{}, err
	}
	best := choices[0]
	d, err := n.Send(userID, best.StationID, bytes, t)
	if err != nil {
		return nil, GatewayChoice{}, err
	}
	return d, best, nil
}
