package core

import (
	"testing"

	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/fluid"
)

// aggregateScenario is a 5-epoch fluid run over the three-provider
// Iridium federation. No users are added: fluid mode originates traffic
// at world cities, not modelled terminals.
func aggregateScenario(users int) Scenario {
	return Scenario{
		DurationS:         300,
		SnapshotIntervalS: 60,
		Seed:              9,
		Aggregate:         fluid.Config{Users: users},
	}
}

func TestScenarioValidateAggregate(t *testing.T) {
	sc := aggregateScenario(1000)
	// Per-flow workload knobs are deliberately zero: fluid mode must not
	// require them.
	if err := sc.Validate(); err != nil {
		t.Fatalf("aggregate scenario rejected: %v", err)
	}
	sc.DurationS = 0
	if sc.Validate() == nil {
		t.Error("zero duration must still be rejected in aggregate mode")
	}
}

func TestRunScenarioAggregateMode(t *testing.T) {
	n, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.RunScenario(aggregateScenario(50_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Fluid == nil {
		t.Fatal("aggregate run did not populate Fluid")
	}
	if res.TransfersAttempted == 0 {
		t.Fatal("no transfers attempted")
	}
	if res.TransfersDelivered == 0 || res.BytesDelivered == 0 {
		t.Fatalf("nothing delivered: %+v", res.Fluid)
	}
	if res.Fluid.Epochs != 5 {
		t.Errorf("epochs = %d, want 5", res.Fluid.Epochs)
	}
	// The event count is the whole point: O(epochs), not O(transfers).
	if res.EventsProcessed >= uint64(res.TransfersAttempted) {
		t.Errorf("events %d not decoupled from transfers %d",
			res.EventsProcessed, res.TransfersAttempted)
	}
	if res.Fluid.Latency.Count() == 0 {
		t.Error("no latency mass in the sketch")
	}
	if res.LatencyS.Count() != 0 {
		t.Error("per-flow histogram must stay empty in aggregate mode")
	}
	if res.CarriageUSD != 0 || res.GatewayUSD != 0 {
		t.Error("aggregate mode models no economics; fees must stay 0")
	}
}

func TestRunScenarioAggregateDeterministic(t *testing.T) {
	run := func() *ScenarioResult {
		n, err := NewNetwork(threeProviderConfig(t))
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.RunScenario(aggregateScenario(30_000))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TransfersAttempted != b.TransfersAttempted ||
		a.TransfersDelivered != b.TransfersDelivered ||
		a.BytesDelivered != b.BytesDelivered ||
		a.Retries != b.Retries ||
		a.AbandonedTransfers != b.AbandonedTransfers {
		t.Fatalf("aggregate run not deterministic:\n%+v\n%+v", a, b)
	}
	for _, q := range []float64{0.5, 0.95} {
		if a.Fluid.Latency.Quantile(q) != b.Fluid.Latency.Quantile(q) {
			t.Fatalf("latency q%.2f diverged", q)
		}
	}
}

func TestRunScenarioAggregateWithFaults(t *testing.T) {
	n, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sc := aggregateScenario(50_000)
	sc.DurationS = 600
	sc.Faults = faults.Default().Scale(40)
	res, err := n.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultEvents == 0 {
		t.Fatal("aggressive fault config produced no transitions")
	}
	if res.TransfersDelivered == 0 {
		t.Error("faulted constellation delivered nothing at all")
	}
}
