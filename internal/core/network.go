package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/openspace-project/openspace/internal/assoc"
	"github.com/openspace-project/openspace/internal/auth"
	"github.com/openspace-project/openspace/internal/economics"
	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/frame"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/ground"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/topo"
)

// RNG domains for network provisioning (keys, nonces) and scenario
// workloads (arrivals, sizes): distinct streams even when configured with
// the same seed — seeding both straight from the config value would
// silently correlate them. The IDs predate the tags, so every committed
// result keeps its stream; the tags are what the seeddomain analyzer
// checks for repo-wide uniqueness.
var (
	domainNetwork  = exec.Domain{Tag: "core/network", ID: 1}
	domainScenario = exec.Domain{Tag: "core/scenario", ID: 2}
)

// Provider is one federation member at run time.
type Provider struct {
	ID            string
	CarriagePerGB float64
	Auth          *auth.Authenticator
	Trust         *auth.TrustStore
	Ledger        *economics.Ledger
	Stations      map[string]*ground.Station
	Satellites    []SatelliteConfig
}

// User is one subscriber terminal at run time.
type User struct {
	ID       string
	HomeISP  string
	Pos      geo.LatLon
	Terminal *assoc.Terminal
}

// Network is an assembled OpenSpace federation.
type Network struct {
	cfg       NetworkConfig
	providers map[string]*Provider
	users     map[string]*User
	rng       *rand.Rand

	te      *topo.TimeExpanded
	baseTE  *topo.TimeExpanded // intact geometry, kept while a fault overlay is installed
	router  *routing.ProactiveRouter
	flowSeq uint64
}

// NewNetwork federates the configured providers: every provider gets an
// authentication server, a ledger and its ground stations, and all
// providers exchange certificate trust anchors (the out-of-band onboarding
// step of joining OpenSpace).
func NewNetwork(cfg NetworkConfig) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	n := &Network{
		cfg:       cfg,
		providers: make(map[string]*Provider),
		users:     make(map[string]*User),
		rng:       exec.DomainRNG(cfg.Seed, domainNetwork),
	}
	for _, pc := range cfg.Providers {
		a, err := auth.NewAuthenticator(pc.ID, cfg.CertTTLS, n.rng)
		if err != nil {
			return nil, fmt.Errorf("core: provider %q: %w", pc.ID, err)
		}
		p := &Provider{
			ID:            pc.ID,
			CarriagePerGB: pc.CarriagePerGB,
			Auth:          a,
			Trust:         auth.NewTrustStore(),
			Ledger:        economics.NewLedger(pc.ID),
			Stations:      make(map[string]*ground.Station),
			Satellites:    pc.Satellites,
		}
		for _, gc := range pc.GroundStations {
			st, err := ground.NewStation(gc.ID, pc.ID, gc.Pos, gc.BackhaulBps, gc.PricePerGB, gc.VisitorSurge)
			if err != nil {
				return nil, fmt.Errorf("core: station %q: %w", gc.ID, err)
			}
			p.Stations[gc.ID] = st
		}
		n.providers[pc.ID] = p
	}
	// Trust anchor exchange: everyone trusts everyone's certificates.
	for _, p := range n.providers {
		for _, q := range n.providers {
			p.Trust.Add(q.ID, q.Auth.PublicKey())
		}
	}
	return n, nil
}

// Provider returns a member by ID, or nil.
func (n *Network) Provider(id string) *Provider { return n.providers[id] }

// Providers returns member IDs in sorted order.
func (n *Network) Providers() []string {
	ids := make([]string, 0, len(n.providers))
	for id := range n.providers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// AddUser enrolls a subscriber with their home ISP and creates the terminal.
func (n *Network) AddUser(userID, homeISP string, pos geo.LatLon) (*User, error) {
	p, ok := n.providers[homeISP]
	if !ok {
		return nil, fmt.Errorf("core: unknown home ISP %q", homeISP)
	}
	if _, exists := n.users[userID]; exists {
		return nil, fmt.Errorf("core: duplicate user %q", userID)
	}
	secret := make([]byte, 32)
	if _, err := n.rng.Read(secret); err != nil {
		return nil, fmt.Errorf("core: generating secret: %w", err)
	}
	if err := p.Auth.Enroll(userID, secret); err != nil {
		return nil, err
	}
	term, err := assoc.NewTerminal(userID, homeISP, secret, pos, n.cfg.Topo.MinElevationDeg)
	if err != nil {
		return nil, err
	}
	u := &User{ID: userID, HomeISP: homeISP, Pos: pos, Terminal: term}
	n.users[userID] = u
	return u, nil
}

// User returns a subscriber by ID, or nil.
func (n *Network) User(id string) *User { return n.users[id] }

// satSpecs flattens all providers' fleets into topology inputs,
// deterministically ordered.
func (n *Network) satSpecs() []topo.SatSpec {
	var specs []topo.SatSpec
	for _, pid := range n.Providers() {
		p := n.providers[pid]
		for _, s := range p.Satellites {
			specs = append(specs, topo.SatSpec{
				ID:       s.ID,
				Provider: p.ID,
				Elements: s.Elements,
				HasLaser: s.HasLaser,
				MaxISLs:  s.MaxISLs,
			})
		}
	}
	return specs
}

func (n *Network) groundSpecs() []topo.GroundSpec {
	var specs []topo.GroundSpec
	for _, pid := range n.Providers() {
		p := n.providers[pid]
		ids := make([]string, 0, len(p.Stations))
		for id := range p.Stations {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			specs = append(specs, topo.GroundSpec{ID: id, Provider: p.ID, Pos: p.Stations[id].Pos})
		}
	}
	return specs
}

func (n *Network) userSpecs() []topo.UserSpec {
	ids := make([]string, 0, len(n.users))
	for id := range n.users {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	specs := make([]topo.UserSpec, len(ids))
	for i, id := range ids {
		u := n.users[id]
		specs[i] = topo.UserSpec{ID: id, Provider: u.HomeISP, Pos: u.Pos}
	}
	return specs
}

// BuildTopology precomputes the shared public topology over
// [startS, startS+horizonS] at the given snapshot cadence and installs the
// proactive router. Must be called after all users are added and before
// Associate/Send.
func (n *Network) BuildTopology(startS, horizonS, intervalS float64) error {
	te, err := topo.BuildTimeExpanded(startS, horizonS, intervalS, n.cfg.Topo,
		n.satSpecs(), n.groundSpecs(), n.userSpecs())
	if err != nil {
		return err
	}
	n.te = te
	n.baseTE = te
	n.router = routing.NewProactiveRouter(te, routing.LatencyCost(n.cfg.PerHopProcessingS))
	return nil
}

// ApplyFaultMask installs a degraded view of the topology: association and
// routing see the overlay while the intact geometry is retained, so masking
// is cheap (shared nodes and adjacency, no rebuild) and clearing the mask
// restores the original snapshots. An empty mask is the identity — the
// overlay provably changes nothing when no fault is active.
func (n *Network) ApplyFaultMask(m topo.Mask) error {
	if n.baseTE == nil {
		return errors.New("core: BuildTopology must run before ApplyFaultMask")
	}
	n.te = n.baseTE.Overlay(m)
	n.router = routing.NewProactiveRouter(n.te, routing.LatencyCost(n.cfg.PerHopProcessingS))
	return nil
}

// Topology returns the built time-expanded topology, nil before
// BuildTopology.
func (n *Network) Topology() *topo.TimeExpanded { return n.te }

// Associate runs the full association for a user at time t: beacon scan
// over the satellites visible in the current snapshot, selection of the
// closest, and the RADIUS exchange with the user's home ISP, which issues
// the roaming certificate. The serving provider verifies the certificate
// against its trust store before traffic flows.
func (n *Network) Associate(userID string, t float64) error {
	u, ok := n.users[userID]
	if !ok {
		return fmt.Errorf("core: unknown user %q", userID)
	}
	if n.te == nil {
		return errors.New("core: BuildTopology must run before Associate")
	}
	home := n.providers[u.HomeISP]

	// Beacon scan: every satellite with an access edge to the user in the
	// current snapshot is audible.
	snap := n.te.At(t)
	u.Terminal.StartScan()
	for _, e := range snap.Neighbors(userID) {
		sat := snap.Node(e.To)
		if sat == nil || sat.Kind != topo.KindSatellite {
			continue
		}
		sc := n.satConfig(e.To)
		if sc == nil {
			continue
		}
		caps := frame.CapRF
		if sc.HasLaser {
			caps |= frame.CapLaser
		}
		u.Terminal.OnBeacon(&frame.Beacon{
			SatelliteID: sat.ID,
			ProviderID:  sat.Provider,
			Caps:        caps,
			Orbit: frame.OrbitalState{
				SemiMajorAxisKm: sc.Elements.SemiMajorAxisKm,
				Eccentricity:    sc.Elements.Eccentricity,
				InclinationDeg:  sc.Elements.InclinationDeg,
				RAANDeg:         sc.Elements.RAANDeg,
				ArgPerigeeDeg:   sc.Elements.ArgPerigeeDeg,
				MeanAnomalyDeg:  sc.Elements.MeanAnomalyDeg,
			},
			SentAtS: t,
		})
	}

	req, err := u.Terminal.SelectAndRequestAuth(t, n.rng.Uint64())
	if err != nil {
		return fmt.Errorf("core: user %q association: %w", userID, err)
	}
	nonce, err := home.Auth.Challenge(req.UserID)
	if err != nil {
		return err
	}
	resp, err := u.Terminal.OnChallenge(&frame.AuthChallenge{UserID: req.UserID, ServerNonce: nonce})
	if err != nil {
		return err
	}
	cert, err := home.Auth.VerifyProof(req.UserID, req.ClientNonce, resp.Proof, t)
	if err != nil {
		u.Terminal.OnResult(&frame.AuthResult{UserID: req.UserID, Success: false, Reason: err.Error()})
		return fmt.Errorf("core: user %q auth: %w", userID, err)
	}
	if err := u.Terminal.OnResult(&frame.AuthResult{
		UserID: req.UserID, Success: true, Certificate: cert.Marshal(),
	}); err != nil {
		return err
	}
	// The serving provider independently verifies the roaming certificate.
	_, servingProvider := u.Terminal.Serving()
	if sp := n.providers[servingProvider]; sp != nil {
		if err := sp.Trust.Verify(cert, t); err != nil {
			return fmt.Errorf("core: serving provider rejected certificate: %w", err)
		}
	}
	return nil
}

// satConfig finds a satellite's configuration by ID.
func (n *Network) satConfig(id string) *SatelliteConfig {
	for _, p := range n.providers {
		for i := range p.Satellites {
			if p.Satellites[i].ID == id {
				return &p.Satellites[i]
			}
		}
	}
	return nil
}

// station finds a ground station and its owner by ID.
func (n *Network) station(id string) (*ground.Station, *Provider) {
	for _, p := range n.providers {
		if st, ok := p.Stations[id]; ok {
			return st, p
		}
	}
	return nil, nil
}

// MoveUser relocates a subscriber. Per §2.2, changing physical region
// drops the association and certificate: "they will have to go through the
// initial association and authentication process again". The topology must
// be rebuilt (the user's access links moved) before re-associating.
func (n *Network) MoveUser(userID string, pos geo.LatLon) error {
	u, ok := n.users[userID]
	if !ok {
		return fmt.Errorf("core: unknown user %q", userID)
	}
	if err := u.Terminal.MovedTo(pos); err != nil {
		return err
	}
	u.Pos = pos
	// Invalidate precomputed topology: access edges are stale.
	n.te = nil
	n.baseTE = nil
	n.router = nil
	return nil
}
