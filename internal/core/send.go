package core

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"github.com/openspace-project/openspace/internal/assoc"
	"github.com/openspace-project/openspace/internal/economics"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/topo"
)

// Delivery reports one end-to-end transfer.
type Delivery struct {
	FlowID         uint64
	Path           routing.Path
	HopOwners      []string // owning provider of each traversed node after the user
	LatencyS       float64  // propagation + per-hop processing + gateway queue
	GatewayFeeUSD  float64
	CarriageUSD    float64 // cross-provider carriage charges (§3 accounting)
	CrossOwnerHops int
	// Receipts is the signed per-hop carriage chain: each carrier's
	// non-repudiable acknowledgment, verifiable against the keys providers
	// exchanged at onboarding (economics.VerifyChain).
	Receipts []economics.Receipt
}

// Send routes bytes from an associated user to a gateway ground station at
// time t, accounting the transfer in every involved provider's ledger and
// the gateway's meter, and returns the delivery report.
//
// This is Figure 1 end to end: access link to the serving satellite, ISLs
// across (possibly several) providers, downlink to an independently owned
// gateway, with §3's accounting on every cross-owner hop.
func (n *Network) Send(userID, stationID string, bytes int64, t float64) (*Delivery, error) {
	if bytes <= 0 {
		return nil, fmt.Errorf("core: bytes %d must be positive", bytes)
	}
	u, ok := n.users[userID]
	if !ok {
		return nil, fmt.Errorf("core: unknown user %q", userID)
	}
	if u.Terminal.State() != assoc.StateAssociated {
		return nil, fmt.Errorf("core: user %q not associated (state %v)", userID, u.Terminal.State())
	}
	st, stOwner := n.station(stationID)
	if st == nil {
		return nil, fmt.Errorf("core: unknown ground station %q", stationID)
	}
	if n.router == nil {
		return nil, errors.New("core: BuildTopology must run before Send")
	}

	path, err := n.router.Route(t, userID, stationID)
	if err != nil {
		return nil, fmt.Errorf("core: routing %s → %s: %w", userID, stationID, err)
	}
	snap := n.te.At(t)

	// Hop ownership: every traversed node after the user attributes its
	// owner; that is the infrastructure that carried the traffic.
	owners := make([]string, 0, len(path.Nodes)-1)
	for _, node := range path.Nodes[1:] {
		nd := snap.Node(node)
		if nd == nil {
			return nil, fmt.Errorf("core: path node %q missing from snapshot", node)
		}
		owners = append(owners, nd.Provider)
	}

	// §3: "the volume of traffic along this path is tracked by all parties
	// involved" — the home ISP and every carrier record independently.
	involved := map[string]bool{u.HomeISP: true}
	for _, o := range owners {
		involved[o] = true
	}
	for pid := range involved {
		if p := n.providers[pid]; p != nil {
			if err := p.Ledger.RecordPath(u.HomeISP, owners, bytes); err != nil {
				return nil, err
			}
		}
	}

	// Gateway metering and pricing.
	offer, err := st.Admit(u.HomeISP, bytes, t)
	if err != nil {
		return nil, err
	}

	n.flowSeq++
	d := &Delivery{
		FlowID:        n.flowSeq,
		Path:          path,
		HopOwners:     owners,
		LatencyS:      path.DelayS + float64(path.Hops)*n.cfg.PerHopProcessingS + offer.QueueDelayS,
		GatewayFeeUSD: float64(bytes) / 1e9 * offer.PricePerGB,
	}
	// Carriage charges: every hop owned by neither the home ISP nor the
	// gateway owner's free tier — priced at the carrier's flat rate.
	gb := float64(bytes) / 1e9
	for _, o := range owners {
		if o == u.HomeISP {
			continue
		}
		d.CrossOwnerHops++
		if p := n.providers[o]; p != nil {
			d.CarriageUSD += gb * p.CarriagePerGB
		}
	}
	// Every hop's carrier signs a receipt for the carriage chain.
	for i, o := range owners {
		r := economics.Receipt{
			Carrier: o, Customer: u.HomeISP,
			FlowID: d.FlowID, HopIndex: i, Bytes: bytes, AtS: t,
		}
		if p := n.providers[o]; p != nil {
			r.SignWith(p.Auth.Sign)
		}
		d.Receipts = append(d.Receipts, r)
	}
	_ = stOwner
	return d, nil
}

// PublicKeys returns every member's receipt/report/certificate
// verification key — the trust anchors exchanged at onboarding.
func (n *Network) PublicKeys() map[string]ed25519.PublicKey {
	keys := make(map[string]ed25519.PublicKey, len(n.providers))
	for id, p := range n.providers {
		keys[id] = p.Auth.PublicKey()
	}
	return keys
}

// Reachable reports whether a path exists from the user to the station at
// time t under the current topology.
func (n *Network) Reachable(userID, stationID string, t float64) bool {
	if n.router == nil {
		return false
	}
	_, err := n.router.Route(t, userID, stationID)
	return err == nil
}

// PathProviders returns the distinct providers a route traverses at t,
// in first-traversal order — how "meshed" a delivery is (§3's argument for
// why BGP's provider/customer split does not map onto OpenSpace).
func (n *Network) PathProviders(userID, stationID string, t float64) ([]string, error) {
	if n.router == nil {
		return nil, errors.New("core: BuildTopology must run first")
	}
	path, err := n.router.Route(t, userID, stationID)
	if err != nil {
		return nil, err
	}
	snap := n.te.At(t)
	var order []string
	seen := map[string]bool{}
	for _, node := range path.Nodes[1:] {
		nd := snap.Node(node)
		if nd == nil {
			continue
		}
		if !seen[nd.Provider] {
			seen[nd.Provider] = true
			order = append(order, nd.Provider)
		}
	}
	return order, nil
}

// snapshotAt exposes the snapshot in force at t (nil before BuildTopology),
// for analysis helpers.
func (n *Network) snapshotAt(t float64) *topo.Snapshot {
	if n.te == nil {
		return nil
	}
	return n.te.At(t)
}
