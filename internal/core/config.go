// Package core assembles the OpenSpace architecture: multiple independent
// satellite providers — each with its own spacecraft, ground stations,
// authentication server and traffic ledger — federated through the shared
// standards implemented by the lower-level packages (frames, ISL pairing,
// routing, authentication, economics).
//
// A core.Network is one OpenSpace deployment. It exposes the paper's
// end-to-end story (§2, Figure 1): users associate with whatever satellite
// is overhead, authenticate with their home ISP through the network, data
// is routed across heterogeneous, multi-owner ISLs to independently owned
// gateway ground stations, and every byte carried by someone else's
// infrastructure lands in cross-verifiable ledgers for settlement.
package core

import (
	"errors"
	"fmt"
	"reflect"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

// SatelliteConfig describes one spacecraft in a provider's fleet.
type SatelliteConfig struct {
	ID       string
	Elements orbit.Elements
	HasLaser bool
	// MaxISLs caps simultaneous crosslinks (0 = unlimited).
	MaxISLs int
}

// GroundStationConfig describes one gateway station.
type GroundStationConfig struct {
	ID           string
	Pos          geo.LatLon
	BackhaulBps  float64
	PricePerGB   float64 // gateway fee for home traffic
	VisitorSurge float64 // visitor surcharge factor under load
}

// ProviderConfig describes one OpenSpace member firm.
type ProviderConfig struct {
	ID             string
	Satellites     []SatelliteConfig
	GroundStations []GroundStationConfig
	// CarriagePerGB is what this provider charges others for carrying a GB
	// across its infrastructure (§3: bilateral, here flat per provider).
	CarriagePerGB float64
}

// NetworkConfig assembles a federation.
type NetworkConfig struct {
	Providers []ProviderConfig
	// Topology feasibility rules; zero value upgraded to topo.DefaultConfig.
	Topo topo.Config
	// CertTTLS is the roaming-certificate validity in seconds.
	CertTTLS float64
	// Seed drives all randomness (key generation, nonces).
	Seed int64
	// PerHopProcessingS is the forwarding delay added per hop when
	// estimating delivery latency.
	PerHopProcessingS float64
}

// Validate reports whether the configuration is usable.
func (c NetworkConfig) Validate() error {
	if len(c.Providers) == 0 {
		return errors.New("core: at least one provider required")
	}
	seenProvider := map[string]bool{}
	seenNode := map[string]bool{}
	for _, p := range c.Providers {
		if p.ID == "" {
			return errors.New("core: provider ID required")
		}
		if seenProvider[p.ID] {
			return fmt.Errorf("core: duplicate provider %q", p.ID)
		}
		seenProvider[p.ID] = true
		if p.CarriagePerGB < 0 {
			return fmt.Errorf("core: provider %q carriage price negative", p.ID)
		}
		for _, s := range p.Satellites {
			if s.ID == "" {
				return fmt.Errorf("core: provider %q has satellite without ID", p.ID)
			}
			if seenNode[s.ID] {
				return fmt.Errorf("core: duplicate node ID %q", s.ID)
			}
			seenNode[s.ID] = true
			if err := s.Elements.Validate(); err != nil {
				return fmt.Errorf("core: satellite %q: %w", s.ID, err)
			}
			if s.MaxISLs < 0 {
				return fmt.Errorf("core: satellite %q MaxISLs negative", s.ID)
			}
		}
		for _, g := range p.GroundStations {
			if g.ID == "" {
				return fmt.Errorf("core: provider %q has station without ID", p.ID)
			}
			if seenNode[g.ID] {
				return fmt.Errorf("core: duplicate node ID %q", g.ID)
			}
			seenNode[g.ID] = true
			if !g.Pos.Valid() {
				return fmt.Errorf("core: station %q position invalid", g.ID)
			}
			if g.BackhaulBps <= 0 {
				return fmt.Errorf("core: station %q backhaul must be positive", g.ID)
			}
		}
	}
	if c.CertTTLS < 0 {
		return errors.New("core: certificate TTL negative")
	}
	if c.PerHopProcessingS < 0 {
		return errors.New("core: per-hop processing negative")
	}
	return nil
}

// withDefaults fills zero-valued fields. Topo.Workers and any explicit
// ISL wiring plan are orthogonal to the link-feasibility rules: a config
// that sets only those still gets the default feasibility rules.
func (c NetworkConfig) withDefaults() NetworkConfig {
	workers, static := c.Topo.Workers, c.Topo.StaticISLs
	c.Topo.Workers, c.Topo.StaticISLs = 0, nil
	if reflect.DeepEqual(c.Topo, topo.Config{}) {
		c.Topo = topo.DefaultConfig()
	}
	c.Topo.Workers, c.Topo.StaticISLs = workers, static
	if c.CertTTLS == 0 {
		c.CertTTLS = 24 * 3600
	}
	if c.PerHopProcessingS == 0 {
		c.PerHopProcessingS = 0.001
	}
	return c
}

// SplitConstellation partitions a constellation round-robin across n
// provider fleets — the standard way the experiments model independent
// firms whose uncoordinated fleets interleave in orbit.
func SplitConstellation(c *orbit.Constellation, n int, laserFraction float64) [][]SatelliteConfig {
	if n <= 0 {
		return nil
	}
	fleets := make([][]SatelliteConfig, n)
	laserEvery := 0
	if laserFraction > 0 {
		laserEvery = int(1 / laserFraction)
	}
	for i, s := range c.Satellites {
		cfg := SatelliteConfig{ID: s.ID, Elements: s.Elements}
		if laserEvery > 0 && i%laserEvery == 0 {
			cfg.HasLaser = true
		}
		fleets[i%n] = append(fleets[i%n], cfg)
	}
	return fleets
}
