package core

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/geo"
)

// CoverageFraction returns the fraction of the Earth's surface covered at
// time t by the fleets of the given providers (all providers when the list
// is empty), using the exact spherical-cap union on a deterministic grid.
// This is the measurement behind the federation experiment (E4): individual
// small fleets cover patches; the union approaches global coverage.
func (n *Network) CoverageFraction(t float64, providerIDs []string, gridSize int) (float64, error) {
	caps, err := n.footprints(t, providerIDs)
	if err != nil {
		return 0, err
	}
	return geo.ExactCoverageFraction(caps, gridSize), nil
}

// WorstCaseCoverageFraction applies the paper's conservative §4 overlap
// rule to the same fleets.
func (n *Network) WorstCaseCoverageFraction(t float64, providerIDs []string) (float64, error) {
	caps, err := n.footprints(t, providerIDs)
	if err != nil {
		return 0, err
	}
	return geo.WorstCaseCoverageFraction(caps), nil
}

func (n *Network) footprints(t float64, providerIDs []string) ([]geo.Cap, error) {
	if len(providerIDs) == 0 {
		providerIDs = n.Providers()
	}
	var caps []geo.Cap
	for _, pid := range providerIDs {
		p, ok := n.providers[pid]
		if !ok {
			return nil, fmt.Errorf("core: unknown provider %q", pid)
		}
		for _, s := range p.Satellites {
			pos := s.Elements.PositionECEF(t)
			caps = append(caps, geo.Cap{
				Center:        pos.LatLon(),
				AngularRadius: geo.FootprintAngularRadius(pos.AltitudeKm(), n.cfg.Topo.MinElevationDeg),
			})
		}
	}
	return caps, nil
}

// FederationGain compares each provider's solo coverage with the
// federation's union coverage at t — the quantitative form of §2's argument
// that "without meaningful collaboration, many smaller satellite networks
// would simply have coverage for a patchwork of regions".
type FederationGain struct {
	Solo  map[string]float64 // provider → own coverage fraction
	Union float64            // all providers together
	// BestSolo is the largest single-provider coverage.
	BestSolo float64
}

// FederationGain measures solo vs. federated coverage at t.
func (n *Network) FederationGain(t float64, gridSize int) (*FederationGain, error) {
	g := &FederationGain{Solo: map[string]float64{}}
	for _, pid := range n.Providers() {
		f, err := n.CoverageFraction(t, []string{pid}, gridSize)
		if err != nil {
			return nil, err
		}
		g.Solo[pid] = f
		if f > g.BestSolo {
			g.BestSolo = f
		}
	}
	union, err := n.CoverageFraction(t, nil, gridSize)
	if err != nil {
		return nil, err
	}
	g.Union = union
	return g, nil
}

// ConnectivityStats summarises reachability between all users and all
// ground stations at t.
type ConnectivityStats struct {
	Pairs     int
	Reachable int
}

// Fraction returns the reachable share, 0 with no pairs.
func (c ConnectivityStats) Fraction() float64 {
	if c.Pairs == 0 {
		return 0
	}
	return float64(c.Reachable) / float64(c.Pairs)
}

// Connectivity measures user↔station reachability at t.
func (n *Network) Connectivity(t float64) ConnectivityStats {
	var stats ConnectivityStats
	snap := n.snapshotAt(t)
	if snap == nil {
		return stats
	}
	for uid := range n.users {
		for _, pid := range n.Providers() {
			for sid := range n.providers[pid].Stations {
				stats.Pairs++
				if n.Reachable(uid, sid, t) {
					stats.Reachable++
				}
			}
		}
	}
	return stats
}
