package core

import (
	"testing"
)

func TestPlanAndExecuteHandover(t *testing.T) {
	n := builtNetwork(t)
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	cert := n.User("alice").Terminal.Certificate()

	plan, err := n.PlanHandover("alice", 0, 3600)
	if err != nil {
		t.Fatal(err)
	}
	serving, _ := n.User("alice").Terminal.Serving()
	if plan.Serving != serving {
		t.Errorf("plan serving %s, terminal says %s", plan.Serving, serving)
	}
	if plan.SuccessorID == plan.Serving || plan.SuccessorID == "" {
		t.Errorf("bad successor: %+v", plan)
	}
	if plan.SetTimeS <= 0 || plan.SetTimeS >= 3600 {
		t.Errorf("set time %v outside horizon", plan.SetTimeS)
	}
	if plan.SuccessorProvider == "" {
		t.Error("successor provider missing")
	}

	if err := n.ExecuteHandover("alice", plan); err != nil {
		t.Fatal(err)
	}
	sat, prov := n.User("alice").Terminal.Serving()
	if sat != plan.SuccessorID || prov != plan.SuccessorProvider {
		t.Errorf("after handover serving %s/%s, want %s/%s",
			sat, prov, plan.SuccessorID, plan.SuccessorProvider)
	}
	// No re-authentication: the certificate is untouched.
	if n.User("alice").Terminal.Certificate() != cert {
		t.Error("handover must not disturb the roaming certificate")
	}
}

func TestHandoverErrors(t *testing.T) {
	n := builtNetwork(t)
	if _, err := n.PlanHandover("ghost", 0, 3600); err == nil {
		t.Error("unknown user should fail")
	}
	// Unassociated user.
	if _, err := n.PlanHandover("alice", 0, 3600); err == nil {
		t.Error("unassociated user should fail")
	}
	if err := n.ExecuteHandover("ghost", &HandoverPlan{}); err == nil {
		t.Error("unknown user execute should fail")
	}
	if err := n.ExecuteHandover("alice", nil); err == nil {
		t.Error("nil plan should fail")
	}
}

func TestRankGatewaysPrefersIdle(t *testing.T) {
	n := builtNetwork(t)
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	const mb100 = int64(100_000_000)
	base, err := n.RankGateways("alice", mb100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 2 { // gs-seattle, gs-nairobi
		t.Fatalf("choices = %+v", base)
	}
	// Completion ordering holds.
	if base[0].CompletionS > base[1].CompletionS {
		t.Error("choices not sorted by completion")
	}
	best := base[0]

	// Pile enormous home-class backlog onto the currently best station
	// (home traffic delays every class); ranking must flip to the other
	// one (the §5(2) trade-off).
	st, owner := n.station(best.StationID)
	if _, err := st.Admit(owner.ID, 40_000_000_000, 0); err != nil { // 320 Gb ≈ 32 s backlog
		t.Fatal(err)
	}
	after, err := n.RankGateways("alice", mb100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if after[0].StationID == best.StationID {
		t.Errorf("ranking did not react to load: %+v", after)
	}
	if after[0].QueueDelayS > after[1].QueueDelayS {
		t.Error("winner should be the idle station")
	}
}

func TestSendBestDelivers(t *testing.T) {
	n := builtNetwork(t)
	if err := n.Associate("alice", 0); err != nil {
		t.Fatal(err)
	}
	d, choice, err := n.SendBest("alice", 1_000_000, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Path.Nodes[len(d.Path.Nodes)-1] != choice.StationID {
		t.Errorf("delivered to %s, chose %s",
			d.Path.Nodes[len(d.Path.Nodes)-1], choice.StationID)
	}
	if _, _, err := n.SendBest("ghost", 1, 0); err == nil {
		t.Error("unknown user should fail")
	}
}
