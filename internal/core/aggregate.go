package core

import (
	"errors"
	"fmt"

	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/fluid"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/traffic"
)

// runAggregateScenario is RunScenario's fluid-mode twin: instead of one
// engine event per transfer, the class matrix evolves through the max-min
// allocator once per snapshot interval. The engine still drives the run —
// fault transitions from the same deterministic timeline interleave with
// epoch ticks exactly as they do with per-flow traffic (at equal instants
// failures land first, because the timeline schedules earlier) — but the
// event count is O(epochs + fault transitions), independent of Users.
func (n *Network) runAggregateScenario(sc Scenario) (*ScenarioResult, error) {
	cfg := sc.Aggregate
	if cfg.Seed == 0 {
		cfg.Seed = sc.Seed
	}
	if err := n.BuildTopology(0, sc.DurationS, sc.SnapshotIntervalS); err != nil {
		return nil, err
	}
	m, err := fluid.BuildClassMatrix(cfg)
	if err != nil {
		return nil, err
	}
	// Every ground station doubles as a candidate gateway, the same set
	// SendBest ranks on the per-flow path.
	var gws []traffic.Gateway
	for _, g := range n.groundSpecs() {
		gws = append(gws, traffic.Gateway{ID: g.ID, Pos: g.Pos})
	}
	ev, err := fluid.NewEvolver(m, cfg, gws)
	if err != nil {
		return nil, err
	}

	engine := sim.NewEngine()
	engine.MaxEvents = sc.MaxEvents
	res := &ScenarioResult{}
	if sc.Faults.Enabled() {
		tl, err := faults.Generate(sc.Faults, sc.DurationS, faults.InputsFromSnapshot(n.te.At(0)))
		if err != nil {
			return nil, err
		}
		mask := faults.NewMask()
		onChange := func(*sim.Engine, faults.Event, bool) {
			res.FaultEvents++
			if err := n.ApplyFaultMask(mask); err != nil {
				panic(err) // unreachable: topology was built above
			}
			// Epochs while any element is masked charge gateway-remapping
			// events to the fluid interruption counter (the aggregate-mode
			// analogue of dropping a terminal when its satellite dies).
			ev.SetFaultsActive(!mask.Empty())
		}
		if err := tl.Drive(engine, mask, onChange); err != nil {
			return nil, err
		}
	}

	// Epoch ticks: each advances the fluid model across [now, next) over
	// the snapshot current at its start — including any fault overlay
	// installed by transitions that fired before it.
	var evolveErr error
	epoch := 0
	var tick func(*sim.Engine)
	tick = func(e *sim.Engine) {
		if evolveErr != nil {
			return
		}
		t0 := e.Now()
		t1 := t0 + sc.SnapshotIntervalS
		if t1 > sc.DurationS {
			t1 = sc.DurationS
		}
		snap := n.snapshotAt(t0)
		if snap == nil {
			evolveErr = errors.New("core: no topology snapshot for aggregate epoch")
			return
		}
		if err := ev.Advance(snap, t0, t1, epoch); err != nil {
			evolveErr = err
			return
		}
		epoch++
		if t1 < sc.DurationS {
			if err := e.Schedule(t1, tick); err != nil {
				panic(err) // unreachable: t1 > now ≥ 0 while the engine runs
			}
		}
	}
	if err := engine.Schedule(0, tick); err != nil {
		return nil, err
	}
	engine.Run(sc.DurationS)
	if evolveErr != nil {
		return nil, fmt.Errorf("core: aggregate scenario: %w", evolveErr)
	}
	if engine.Exhausted() {
		return nil, fmt.Errorf("core: aggregate scenario stopped after %d events: %w", engine.Processed, ErrEventBudget)
	}

	fr := ev.Result()
	res.TransfersAttempted = int(fr.TransfersAttempted)
	res.TransfersDelivered = int(fr.TransfersDelivered)
	res.BytesDelivered = fr.BytesDelivered
	res.Retries = int(fr.Retries)
	res.RecoveredTransfers = int(fr.Recovered)
	res.AbandonedTransfers = int(fr.Abandoned)
	// Fluid interruption events fill the per-flow DroppedTerminals slot:
	// both count in-flight traffic whose serving infrastructure a fault
	// yanked away, so E17 cells report comparable availability in either
	// mode (the residual reroute-modelling difference is documented in
	// EXPERIMENTS.md).
	res.DroppedTerminals = int(fr.Interrupted)
	res.EventsProcessed = engine.Processed
	res.Fluid = fr
	return res, nil
}
