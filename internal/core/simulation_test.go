package core

import (
	"reflect"
	"testing"

	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/geo"
)

func scenarioNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, pos := range []geo.LatLon{
		{Lat: 40.44, Lon: -79.99},
		{Lat: -1.29, Lon: 36.82},
		{Lat: 51.51, Lon: -0.13},
	} {
		isp := []string{"acme", "orbitco", "skynet"}[i]
		if _, err := n.AddUser(userName(i), isp, pos); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func userName(i int) string { return string(rune('a'+i)) + "-user" }

func TestScenarioValidate(t *testing.T) {
	good := Scenario{DurationS: 100, SnapshotIntervalS: 10, PerUserRate: 0.1, MinBytes: 1, MaxBytes: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good scenario rejected: %v", err)
	}
	cases := []func(*Scenario){
		func(s *Scenario) { s.DurationS = 0 },
		func(s *Scenario) { s.SnapshotIntervalS = 0 },
		func(s *Scenario) { s.PerUserRate = 0 },
		func(s *Scenario) { s.MinBytes = 0 },
		func(s *Scenario) { s.MaxBytes = 0 },
		func(s *Scenario) { s.Faults = faults.Config{SatMTBFS: 3600} }, // enabled but MTTR zero
	}
	for i, mutate := range cases {
		sc := good
		mutate(&sc)
		if sc.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	n := scenarioNetwork(t)
	sc := Scenario{
		DurationS:         900,
		SnapshotIntervalS: 60,
		PerUserRate:       0.05, // ~45 transfers per user over 15 min
		MinBytes:          1_000_000,
		MaxBytes:          100_000_000,
		Seed:              9,
	}
	res, err := n.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransfersAttempted == 0 {
		t.Fatal("no transfers attempted")
	}
	// Full Iridium: essentially everything should deliver.
	if res.DeliveryRate() < 0.9 {
		t.Errorf("delivery rate %v", res.DeliveryRate())
	}
	if res.LatencyS.Count() != res.TransfersDelivered {
		t.Errorf("latency samples %d vs delivered %d", res.LatencyS.Count(), res.TransfersDelivered)
	}
	if res.LatencyS.Mean() <= 0 || res.LatencyS.Mean() > 2 {
		t.Errorf("mean latency %v s implausible", res.LatencyS.Mean())
	}
	// 15 minutes of LEO must force handovers for someone.
	if res.Handovers == 0 {
		t.Error("no handovers in 15 minutes of LEO motion")
	}
	if res.CarriageUSD <= 0 || res.GatewayUSD <= 0 {
		t.Errorf("fees not accumulated: carriage %v gateway %v", res.CarriageUSD, res.GatewayUSD)
	}
	if res.EventsProcessed == 0 {
		t.Error("engine processed nothing")
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	sc := Scenario{
		DurationS: 300, SnapshotIntervalS: 60,
		PerUserRate: 0.05, MinBytes: 1000, MaxBytes: 1_000_000, Seed: 4,
	}
	a, err := scenarioNetwork(t).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenarioNetwork(t).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.TransfersAttempted != b.TransfersAttempted ||
		a.TransfersDelivered != b.TransfersDelivered ||
		a.BytesDelivered != b.BytesDelivered ||
		a.Handovers != b.Handovers {
		t.Errorf("scenario not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestRunScenarioWithFaults drives the workload through an aggressive fault
// environment: satellites die, terminals re-associate, transfers retry with
// backoff — and traffic still flows.
func TestRunScenarioWithFaults(t *testing.T) {
	n := scenarioNetwork(t)
	sc := Scenario{
		DurationS:         900,
		SnapshotIntervalS: 60,
		PerUserRate:       0.05,
		MinBytes:          1_000_000,
		MaxBytes:          100_000_000,
		Seed:              9,
		Faults:            faults.Default().Scale(40), // MTBFs shrunk 40×
	}
	res, err := n.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultEvents == 0 {
		t.Fatal("40× default fault rates over 15 min produced no fault events")
	}
	if res.TransfersDelivered == 0 {
		t.Error("no transfer survived the fault environment")
	}
	if res.DroppedTerminals == 0 {
		t.Error("satellite failures at this rate should drop someone's terminal")
	}
	if res.LatencyS.Count() != res.TransfersDelivered {
		t.Errorf("latency samples %d vs delivered %d", res.LatencyS.Count(), res.TransfersDelivered)
	}
}

// TestRunScenarioFaultsDeterministic pins the fault path's reproducibility:
// two identical fault-enabled runs agree on every counter.
func TestRunScenarioFaultsDeterministic(t *testing.T) {
	sc := Scenario{
		DurationS: 300, SnapshotIntervalS: 60,
		PerUserRate: 0.05, MinBytes: 1000, MaxBytes: 1_000_000, Seed: 4,
		Faults: faults.Default().Scale(40),
	}
	a, err := scenarioNetwork(t).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenarioNetwork(t).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fault scenario not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestRunScenarioDisabledFaultsAreNoOp proves the overlay machinery is
// invisible when no fault class is enabled: a scenario with an explicitly
// disabled fault config (and a retry policy, which must be ignored) matches
// the plain scenario result field for field.
func TestRunScenarioDisabledFaultsAreNoOp(t *testing.T) {
	base := Scenario{
		DurationS: 300, SnapshotIntervalS: 60,
		PerUserRate: 0.05, MinBytes: 1000, MaxBytes: 1_000_000, Seed: 4,
	}
	withOff := base
	withOff.Faults = faults.Default().Scale(0) // every class disabled
	withOff.Retry.MaxAttempts = 7              // must be ignored without faults
	a, err := scenarioNetwork(t).RunScenario(base)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenarioNetwork(t).RunScenario(withOff)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("disabled faults changed the run:\n%+v\n%+v", a, b)
	}
	if a.FaultEvents != 0 || a.Retries != 0 || a.AbandonedTransfers != 0 {
		t.Errorf("fault counters nonzero without faults: %+v", a)
	}
}

func TestRunScenarioErrors(t *testing.T) {
	n := scenarioNetwork(t)
	if _, err := n.RunScenario(Scenario{}); err == nil {
		t.Error("invalid scenario should fail")
	}
	empty, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{DurationS: 10, SnapshotIntervalS: 5, PerUserRate: 1, MinBytes: 1, MaxBytes: 2}
	if _, err := empty.RunScenario(sc); err == nil {
		t.Error("scenario without users should fail")
	}
}
