package core

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
)

func scenarioNetwork(t *testing.T) *Network {
	t.Helper()
	n, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for i, pos := range []geo.LatLon{
		{Lat: 40.44, Lon: -79.99},
		{Lat: -1.29, Lon: 36.82},
		{Lat: 51.51, Lon: -0.13},
	} {
		isp := []string{"acme", "orbitco", "skynet"}[i]
		if _, err := n.AddUser(userName(i), isp, pos); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func userName(i int) string { return string(rune('a'+i)) + "-user" }

func TestScenarioValidate(t *testing.T) {
	good := Scenario{DurationS: 100, SnapshotIntervalS: 10, PerUserRate: 0.1, MinBytes: 1, MaxBytes: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good scenario rejected: %v", err)
	}
	cases := []func(*Scenario){
		func(s *Scenario) { s.DurationS = 0 },
		func(s *Scenario) { s.SnapshotIntervalS = 0 },
		func(s *Scenario) { s.PerUserRate = 0 },
		func(s *Scenario) { s.MinBytes = 0 },
		func(s *Scenario) { s.MaxBytes = 0 },
	}
	for i, mutate := range cases {
		sc := good
		mutate(&sc)
		if sc.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestRunScenarioEndToEnd(t *testing.T) {
	n := scenarioNetwork(t)
	sc := Scenario{
		DurationS:         900,
		SnapshotIntervalS: 60,
		PerUserRate:       0.05, // ~45 transfers per user over 15 min
		MinBytes:          1_000_000,
		MaxBytes:          100_000_000,
		Seed:              9,
	}
	res, err := n.RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.TransfersAttempted == 0 {
		t.Fatal("no transfers attempted")
	}
	// Full Iridium: essentially everything should deliver.
	if res.DeliveryRate() < 0.9 {
		t.Errorf("delivery rate %v", res.DeliveryRate())
	}
	if res.LatencyS.Count() != res.TransfersDelivered {
		t.Errorf("latency samples %d vs delivered %d", res.LatencyS.Count(), res.TransfersDelivered)
	}
	if res.LatencyS.Mean() <= 0 || res.LatencyS.Mean() > 2 {
		t.Errorf("mean latency %v s implausible", res.LatencyS.Mean())
	}
	// 15 minutes of LEO must force handovers for someone.
	if res.Handovers == 0 {
		t.Error("no handovers in 15 minutes of LEO motion")
	}
	if res.CarriageUSD <= 0 || res.GatewayUSD <= 0 {
		t.Errorf("fees not accumulated: carriage %v gateway %v", res.CarriageUSD, res.GatewayUSD)
	}
	if res.EventsProcessed == 0 {
		t.Error("engine processed nothing")
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	sc := Scenario{
		DurationS: 300, SnapshotIntervalS: 60,
		PerUserRate: 0.05, MinBytes: 1000, MaxBytes: 1_000_000, Seed: 4,
	}
	a, err := scenarioNetwork(t).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenarioNetwork(t).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	if a.TransfersAttempted != b.TransfersAttempted ||
		a.TransfersDelivered != b.TransfersDelivered ||
		a.BytesDelivered != b.BytesDelivered ||
		a.Handovers != b.Handovers {
		t.Errorf("scenario not deterministic:\n%+v\n%+v", a, b)
	}
}

func TestRunScenarioErrors(t *testing.T) {
	n := scenarioNetwork(t)
	if _, err := n.RunScenario(Scenario{}); err == nil {
		t.Error("invalid scenario should fail")
	}
	empty, err := NewNetwork(threeProviderConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	sc := Scenario{DurationS: 10, SnapshotIntervalS: 5, PerUserRate: 1, MinBytes: 1, MaxBytes: 2}
	if _, err := empty.RunScenario(sc); err == nil {
		t.Error("scenario without users should fail")
	}
}
