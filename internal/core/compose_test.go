package core

import (
	"testing"

	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/routing"
)

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(string(p))
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %q, %v", p, got, err)
		}
	}
	if _, err := ParsePolicy("flooding"); err == nil {
		t.Error("unknown policy should fail")
	}
	if _, err := ParsePolicy(""); err == nil {
		t.Error("empty policy should fail")
	}
}

func TestWithPolicyPerFlow(t *testing.T) {
	sc, err := Scenario{DurationS: 10}.WithPolicy(PolicyDTN)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Retry == (routing.Backoff{}) || sc.Retry == routing.DefaultBackoff() {
		t.Errorf("DTN retry %+v should differ from zero and default", sc.Retry)
	}
	if sc.Aggregate.Enabled() {
		t.Error("per-flow scenario must not gain aggregate config")
	}
	if _, err := (Scenario{}).WithPolicy(Policy("bogus")); err == nil {
		t.Error("bogus policy should fail")
	}
}

func TestWithPolicyAggregate(t *testing.T) {
	base := Scenario{DurationS: 10}.WithAggregateWorkload(1000, nil)
	want := map[Policy][2]int{
		PolicyOnDemand:  {1, 2},
		PolicyProactive: {4, 3},
		PolicyDTN:       {2, 8},
	}
	for p, kp := range want {
		sc, err := base.WithPolicy(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if sc.Aggregate.KPaths != kp[0] || sc.Aggregate.MaxRetryEpochs != kp[1] {
			t.Errorf("%s: KPaths=%d MaxRetryEpochs=%d, want %d/%d",
				p, sc.Aggregate.KPaths, sc.Aggregate.MaxRetryEpochs, kp[0], kp[1])
		}
	}
}

func TestWithFaults(t *testing.T) {
	sc := Scenario{}.WithFaults(faults.Default(), 2, 99)
	if !sc.Faults.Enabled() {
		t.Fatal("intensity 2 should enable faults")
	}
	if sc.Faults.Seed != 99 {
		t.Errorf("seed = %d, want 99", sc.Faults.Seed)
	}
	if sc.Faults.SatMTBFS != faults.Default().SatMTBFS/2 {
		t.Errorf("SatMTBFS = %v, want halved", sc.Faults.SatMTBFS)
	}
	if off := (Scenario{}).WithFaults(faults.Default(), 0, 99); off.Faults.Enabled() {
		t.Error("intensity 0 should disable faults")
	}
}

func TestWithEventBudget(t *testing.T) {
	sc := Scenario{}.WithEventBudget(500)
	if sc.MaxEvents != 500 {
		t.Errorf("MaxEvents = %d", sc.MaxEvents)
	}
}
