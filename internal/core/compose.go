package core

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/fluid"
	"github.com/openspace-project/openspace/internal/routing"
)

// Policy names a routing/recovery posture a scenario can run under. The
// three postures mirror the disrupted-communications literature: on-demand
// recovers reactively with little path diversity, proactive spreads load
// over precomputed alternatives and retries aggressively on short
// timescales, and DTN tolerates long disruptions by holding traffic far
// longer before abandoning it (store-and-forward patience rather than a
// custody-transfer protocol — the residual difference is documented in
// EXPERIMENTS.md).
type Policy string

const (
	// PolicyOnDemand recovers reactively: single path, default backoff,
	// little patience for backlog.
	PolicyOnDemand Policy = "ondemand"
	// PolicyProactive spreads load over precomputed path diversity and
	// retries on short timescales.
	PolicyProactive Policy = "proactive"
	// PolicyDTN holds disrupted traffic with long, widely spaced retries,
	// trading latency for delivery under extended outages.
	PolicyDTN Policy = "dtn"
)

// Policies returns the known postures in their canonical axis order.
func Policies() []Policy { return []Policy{PolicyOnDemand, PolicyProactive, PolicyDTN} }

// ParsePolicy maps an axis-value string to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyOnDemand, PolicyProactive, PolicyDTN:
		return Policy(s), nil
	}
	return "", fmt.Errorf("core: unknown routing policy %q (want ondemand, proactive, or dtn)", s)
}

// policyParams is the per-posture tuning WithPolicy applies. Retry shapes
// the per-flow retry loop; kPaths/maxRetryEpochs shape the fluid
// allocator's diversity and backlog patience (ignored on the per-flow
// path, where the planner's own path choice applies).
type policyParams struct {
	retry          routing.Backoff
	kPaths         int
	maxRetryEpochs int
}

func (p Policy) params() (policyParams, error) {
	switch p {
	case PolicyOnDemand:
		return policyParams{retry: routing.DefaultBackoff(), kPaths: 1, maxRetryEpochs: 2}, nil
	case PolicyProactive:
		return policyParams{retry: routing.Backoff{BaseS: 1, MaxS: 8, MaxAttempts: 6}, kPaths: 4, maxRetryEpochs: 3}, nil
	case PolicyDTN:
		return policyParams{retry: routing.Backoff{BaseS: 4, MaxS: 120, MaxAttempts: 10}, kPaths: 2, maxRetryEpochs: 8}, nil
	}
	return policyParams{}, fmt.Errorf("core: unknown routing policy %q", string(p))
}

// WithPolicy returns the scenario tuned to a routing posture: the retry
// backoff always, plus the fluid allocator's path diversity and backlog
// patience when the scenario is in aggregate mode. Apply it after
// WithAggregateWorkload so the aggregate knobs land on the final config.
func (s Scenario) WithPolicy(p Policy) (Scenario, error) {
	params, err := p.params()
	if err != nil {
		return s, err
	}
	s.Retry = params.retry
	if s.Aggregate.Enabled() {
		s.Aggregate.KPaths = params.kPaths
		s.Aggregate.MaxRetryEpochs = params.maxRetryEpochs
	}
	return s, nil
}

// WithFaults returns the scenario with the base fault environment scaled
// to the given intensity and re-rooted on seed, so each campaign cell
// draws an independent fault timeline. Intensity ≤ 0 disables injection
// (the zero-value Config path).
func (s Scenario) WithFaults(base faults.Config, intensity float64, seed int64) Scenario {
	cfg := base.Scale(intensity)
	cfg.Seed = seed
	s.Faults = cfg
	return s
}

// WithAggregateWorkload returns the scenario switched to fluid mode with
// the given population and traffic mix (nil classes means
// fluid.DefaultClasses). The aggregate seed is left zero so it falls back
// to Scenario.Seed, keeping one seed per cell authoritative.
func (s Scenario) WithAggregateWorkload(users int, classes []fluid.Class) Scenario {
	s.Aggregate.Users = users
	s.Aggregate.Classes = classes
	return s
}

// WithEventBudget returns the scenario bounded to n simulated events —
// the deterministic timeout the campaign supervisor imposes per cell.
func (s Scenario) WithEventBudget(n uint64) Scenario {
	s.MaxEvents = n
	return s
}
