package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/economics"
	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// IncentivesConfig parameterises E10: the §5(4) membership case for a large
// provider deciding whether to join a federation of smaller ones. The big
// provider has `BigSats` satellites and `BigUsers` subscribers; `SmallFirms`
// firms with `SmallSats` satellites each form the rest of the federation.
type IncentivesConfig struct {
	BigSats         int
	BigUsers        int
	SmallFirms      int
	SmallSats       int
	AltitudeKm      float64
	MinElevationDeg float64
	// Traffic assumptions for the settlement channel.
	MonthlyGBForBig   float64 // GB the federation carries for the big firm
	MonthlyGBForSmall float64 // GB the big firm carries for the others
	RatePerGB         float64
	// Value of availability.
	RevenuePerUserHour float64
	Seed               int64
	Workers            int // parallel availability-sample workers; ≤0 = one per CPU
}

// DefaultIncentives models a 24-satellite incumbent with 50k users against
// four 8-satellite entrants.
func DefaultIncentives() IncentivesConfig {
	return IncentivesConfig{
		BigSats: 24, BigUsers: 50_000,
		SmallFirms: 4, SmallSats: 8,
		AltitudeKm: 780, MinElevationDeg: 10,
		MonthlyGBForBig: 5_000, MonthlyGBForSmall: 6_000,
		RatePerGB: 0.20, RevenuePerUserHour: 0.002,
		Seed: 8,
	}
}

// IncentivesResult is the computed membership case.
type IncentivesResult struct {
	Report         economics.IncentiveReport
	SoloAvail      float64
	FederatedAvail float64
}

// IncentivesExperiment runs E10: availability is measured by sampling a
// representative user's sky over a day (solo fleet vs federation), and the
// settlement channel is evaluated from the configured traffic mix over a
// 30-day month.
func IncentivesExperiment(cfg IncentivesConfig) (*IncentivesResult, error) {
	if cfg.BigSats <= 0 || cfg.SmallFirms <= 0 || cfg.SmallSats <= 0 {
		return nil, fmt.Errorf("experiments: incentives: fleet sizes must be positive")
	}
	rng := exec.RNG(cfg.Seed)
	big := orbit.RandomCircular(cfg.BigSats, cfg.AltitudeKm, rng).Satellites
	var small []orbit.Satellite
	for f := 0; f < cfg.SmallFirms; f++ {
		small = append(small, orbit.RandomCircular(cfg.SmallSats, cfg.AltitudeKm, rng).Satellites...)
	}

	// Availability for a representative mid-latitude user: each day-time
	// sample is a pure visibility probe, fanned out on the exec pool.
	user := worldUser()
	const day = 86400.0
	const samples = 400
	avail := func(fleets ...[]orbit.Satellite) (float64, error) {
		vis, err := exec.Map(cfg.Workers, samples, func(i int) (bool, error) {
			t := day * float64(i) / samples
			for _, fl := range fleets {
				for _, s := range fl {
					if s.Elements.Visible(user, t, cfg.MinElevationDeg) {
						return true, nil
					}
				}
			}
			return false, nil
		})
		if err != nil {
			return 0, err
		}
		hits := 0
		for _, v := range vis {
			if v {
				hits++
			}
		}
		return float64(hits) / samples, nil
	}
	solo, err := avail(big)
	if err != nil {
		return nil, err
	}
	federated, err := avail(big, small)
	if err != nil {
		return nil, err
	}

	// Settlement channel over a month.
	ledger := economics.NewLedger("big")
	if cfg.MonthlyGBForBig > 0 {
		if err := ledger.RecordPath("big", []string{"smalls"}, int64(cfg.MonthlyGBForBig*1e9)); err != nil {
			return nil, err
		}
	}
	if cfg.MonthlyGBForSmall > 0 {
		if err := ledger.RecordPath("smalls", []string{"big"}, int64(cfg.MonthlyGBForSmall*1e9)); err != nil {
			return nil, err
		}
	}
	report, err := economics.Incentive(ledger, economics.RateCard{Default: cfg.RatePerGB},
		"big", solo, federated, economics.CoverageEconomics{
			Users: cfg.BigUsers, RevenuePerUserHour: cfg.RevenuePerUserHour, Hours: 30 * 24,
		})
	if err != nil {
		return nil, err
	}
	return &IncentivesResult{Report: report, SoloAvail: solo, FederatedAvail: federated}, nil
}

// worldUser returns the representative user location (Nairobi).
func worldUser() geo.LatLon {
	return geo.LatLon{Lat: -1.29, Lon: 36.82}
}

// CSV writes the single-row summary.
func (r *IncentivesResult) CSV(w io.Writer) error {
	rows := [][]string{{
		r.Report.Provider,
		f(r.Report.CarriageRevenueUSD), f(r.Report.CarriageCostUSD),
		f(r.Report.ContributionIndex),
		f(r.SoloAvail), f(r.FederatedAvail),
		f(r.Report.CoverageDividendUSD), f(r.Report.NetBenefitUSD),
	}}
	return WriteCSV(w, []string{"provider", "carriage_revenue_usd", "carriage_cost_usd",
		"contribution_index", "solo_availability", "federated_availability",
		"coverage_dividend_usd", "net_benefit_usd"}, rows)
}

// Render prints the membership case.
func (r *IncentivesResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "E10: §5(4) — should the incumbent join the federation? (30-day horizon)")
	fmt.Fprintf(w, "  carriage revenue: $%.0f | carriage cost: $%.0f | contribution index %.2f\n",
		r.Report.CarriageRevenueUSD, r.Report.CarriageCostUSD, r.Report.ContributionIndex)
	fmt.Fprintf(w, "  subscriber availability: %.1f%% solo → %.1f%% federated\n",
		r.SoloAvail*100, r.FederatedAvail*100)
	fmt.Fprintf(w, "  coverage dividend: $%.0f\n", r.Report.CoverageDividendUSD)
	verdict := "JOIN"
	if r.Report.NetBenefitUSD <= 0 {
		verdict = "STAY OUT"
	}
	_, err := fmt.Fprintf(w, "  net benefit: $%.0f → %s\n", r.Report.NetBenefitUSD, verdict)
	return err
}
