package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
)

// CriticalMassConfig parameterises E9: the §4 question of "how small
// initial deployments can be across a small number of initial players to
// achieve a starting point from which the system can scale". We measure
// user↔gateway connectivity as total fleet size grows, for several provider
// counts.
type CriticalMassConfig struct {
	ProviderCounts         []int
	MinSats, MaxSats, Step int // total across all providers
	Trials                 int
	AltitudeKm             float64
	Seed                   int64
	Workers                int // parallel trial workers; ≤0 = one per CPU
}

// DefaultCriticalMass sweeps 4..72 total satellites for 1, 3 and 6 firms.
func DefaultCriticalMass() CriticalMassConfig {
	return CriticalMassConfig{
		ProviderCounts: []int{1, 3, 6},
		MinSats:        4, MaxSats: 72, Step: 4,
		Trials: 10, AltitudeKm: 780, Seed: 6,
	}
}

// CriticalMassResult holds one connectivity curve per provider count.
type CriticalMassResult struct {
	Curves []sim.Series // "k providers" → total sats vs connectivity fraction
}

// CriticalMass runs E9. Users and ground stations sit at fixed world
// cities; satellites are random (uncoordinated launches).
func CriticalMass(cfg CriticalMassConfig) (*CriticalMassResult, error) {
	if len(cfg.ProviderCounts) == 0 || cfg.MinSats <= 0 || cfg.MaxSats < cfg.MinSats || cfg.Step <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: criticalmass: bad sweep")
	}
	res := &CriticalMassResult{}
	userPos := []geo.LatLon{
		{Lat: -1.29, Lon: 36.82},   // nairobi
		{Lat: 61.22, Lon: -149.9},  // anchorage
		{Lat: -33.87, Lon: 151.21}, // sydney
	}
	gsPos := []geo.LatLon{
		{Lat: 47.6, Lon: -122.3}, // seattle
		{Lat: 51.51, Lon: -0.13}, // london
	}
	var points []int
	for n := cfg.MinSats; n <= cfg.MaxSats; n += cfg.Step {
		points = append(points, n)
	}
	// Flatten (provider count, sweep point, trial) into one task space;
	// each task derives its RNG from its coordinates, so the curves are
	// bitwise identical at any worker count.
	perK := len(points) * cfg.Trials
	fracs, err := exec.Map(cfg.Workers, len(cfg.ProviderCounts)*perK, func(i int) (float64, error) {
		k := cfg.ProviderCounts[i/perK]
		n := points[(i%perK)/cfg.Trials]
		trial := i % cfg.Trials
		rng := exec.RNG(cfg.Seed, int64(k), int64(n), int64(trial))
		net, err := buildRandomFederation(k, n, cfg.AltitudeKm, gsPos, userPos, rng)
		if err != nil {
			return 0, err
		}
		return net.Connectivity(0).Fraction(), nil
	})
	if err != nil {
		return nil, err
	}
	for ki, k := range cfg.ProviderCounts {
		series := sim.Series{Name: fmt.Sprintf("%d providers", k)}
		for pi, n := range points {
			var frac sim.Histogram
			for trial := 0; trial < cfg.Trials; trial++ {
				frac.Add(fracs[ki*perK+pi*cfg.Trials+trial])
			}
			series.Append(float64(n), frac.Mean(), frac.Stddev())
		}
		res.Curves = append(res.Curves, series)
	}
	return res, nil
}

func buildRandomFederation(providers, totalSats int, altitudeKm float64, gsPos, userPos []geo.LatLon, rng *rand.Rand) (*core.Network, error) {
	c := orbit.RandomCircular(totalSats, altitudeKm, rng)
	fleets := core.SplitConstellation(c, providers, 0)
	pcs := make([]core.ProviderConfig, providers)
	for p := range pcs {
		pcs[p] = core.ProviderConfig{ID: fmt.Sprintf("prov-%d", p), Satellites: fleets[p]}
	}
	// Stations round-robin across providers.
	for i, pos := range gsPos {
		p := i % providers
		pcs[p].GroundStations = append(pcs[p].GroundStations, core.GroundStationConfig{
			ID: fmt.Sprintf("gs-%d", i), Pos: pos, BackhaulBps: 10e9,
		})
	}
	net, err := core.NewNetwork(core.NetworkConfig{Providers: pcs, Seed: rng.Int63()})
	if err != nil {
		return nil, err
	}
	for i, pos := range userPos {
		if _, err := net.AddUser(fmt.Sprintf("user-%d", i), fmt.Sprintf("prov-%d", i%providers), pos); err != nil {
			return nil, err
		}
	}
	if err := net.BuildTopology(0, 0, 60); err != nil {
		return nil, err
	}
	return net, nil
}

// CSV writes all curves in long form.
func (r *CriticalMassResult) CSV(w io.Writer) error {
	var rows [][]string
	for _, s := range r.Curves {
		for _, p := range s.Points {
			rows = append(rows, []string{s.Name, f(p.X), f(p.Y), f(p.YErr)})
		}
	}
	return WriteCSV(w, []string{"providers", "total_satellites", "connectivity", "stddev"}, rows)
}

// Render draws the curves.
func (r *CriticalMassResult) Render(w io.Writer) error {
	ptrs := make([]*sim.Series, len(r.Curves))
	for i := range r.Curves {
		ptrs[i] = &r.Curves[i]
	}
	return RenderSeries(w, "E9: critical mass — connectivity vs total fleet size",
		"total satellites", "user↔gateway connectivity",
		ptrs, 60, 14)
}
