package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/economics"
	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
)

// domainEcon seeds E7's user-placement stream. Before domains this drew
// straight from cfg.Seed — correlated with every other consumer of the
// config seed — so adopting the domain moved economics.csv by one
// regeneration.
var domainEcon = exec.Domain{Tag: "experiments/econ", ID: 110}

// EconConfig parameterises E7: run real multi-provider traffic through a
// federation, then exercise the §3 machinery — cross-verified ledgers,
// settlement, peering detection.
type EconConfig struct {
	Providers        int
	UsersPerISP      int
	Transfers        int
	BytesPerTransfer int64
	Seed             int64
	Workers          int // parallel ledger-verification workers; ≤0 = one per CPU
}

// DefaultEcon uses 3 providers, 4 users each, 120 transfers of 100 MB.
func DefaultEcon() EconConfig {
	return EconConfig{Providers: 3, UsersPerISP: 4, Transfers: 120,
		BytesPerTransfer: 100_000_000, Seed: 5}
}

// EconResult summarises the run.
type EconResult struct {
	Invoices      []economics.Invoice
	Balances      map[string]float64
	Peering       []economics.PeeringCandidate
	Discrepancies int // across all provider-pair cross-verifications
	Transfers     int // successfully delivered
	MeanLatencyS  float64
}

// EconExperiment runs E7 on an Iridium federation.
func EconExperiment(cfg EconConfig) (*EconResult, error) {
	if cfg.Providers < 2 || cfg.UsersPerISP <= 0 || cfg.Transfers <= 0 {
		return nil, fmt.Errorf("experiments: econ: need ≥2 providers, users and transfers")
	}
	c, err := orbit.Iridium().Build()
	if err != nil {
		return nil, err
	}
	fleets := core.SplitConstellation(c, cfg.Providers, 0.3)
	stations := []core.GroundStationConfig{
		{ID: "gs-seattle", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}, BackhaulBps: 10e9, PricePerGB: 0.05, VisitorSurge: 2},
		{ID: "gs-nairobi", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}, BackhaulBps: 10e9, PricePerGB: 0.08, VisitorSurge: 2},
		{ID: "gs-sydney", Pos: geo.LatLon{Lat: -33.87, Lon: 151.21}, BackhaulBps: 10e9, PricePerGB: 0.06, VisitorSurge: 2},
	}
	providers := make([]core.ProviderConfig, cfg.Providers)
	for p := range providers {
		providers[p] = core.ProviderConfig{
			ID:            fmt.Sprintf("prov-%d", p),
			Satellites:    fleets[p],
			CarriagePerGB: 0.15 + 0.05*float64(p),
		}
		// Spread the stations round-robin across providers.
		for si := range stations {
			if si%cfg.Providers == p {
				providers[p].GroundStations = append(providers[p].GroundStations, stations[si])
			}
		}
	}
	n, err := core.NewNetwork(core.NetworkConfig{Providers: providers, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	rng := exec.DomainRNG(cfg.Seed, domainEcon)
	userPos := sim.CityUsers(cfg.Providers*cfg.UsersPerISP, 30, rng)
	var userIDs []string
	for p := 0; p < cfg.Providers; p++ {
		for u := 0; u < cfg.UsersPerISP; u++ {
			id := fmt.Sprintf("user-p%d-%d", p, u)
			if _, err := n.AddUser(id, fmt.Sprintf("prov-%d", p), userPos[p*cfg.UsersPerISP+u]); err != nil {
				return nil, err
			}
			userIDs = append(userIDs, id)
		}
	}
	if err := n.BuildTopology(0, 600, 60); err != nil {
		return nil, err
	}
	for _, id := range userIDs {
		if err := n.Associate(id, 0); err != nil {
			return nil, err
		}
	}

	var latency sim.Histogram
	delivered := 0
	for i := 0; i < cfg.Transfers; i++ {
		uid := userIDs[rng.Intn(len(userIDs))]
		st := stations[rng.Intn(len(stations))].ID
		t := float64(rng.Intn(600))
		del, err := n.Send(uid, st, cfg.BytesPerTransfer, t)
		if err != nil {
			continue // transient unreachability is part of the workload
		}
		delivered++
		latency.Add(del.LatencyS)
	}

	res := &EconResult{Transfers: delivered, MeanLatencyS: latency.Mean()}
	// Cross-verify every provider pair's ledgers. The workload above is
	// inherently sequential (stateful transfers), but verification is a
	// read-only audit of frozen ledgers, so the pairs fan out on the pool.
	ids := n.Providers()
	var verifyPairs [][2]string
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			verifyPairs = append(verifyPairs, [2]string{ids[i], ids[j]})
		}
	}
	counts, err := exec.Map(cfg.Workers, len(verifyPairs), func(i int) (int, error) {
		pair := verifyPairs[i]
		return len(economics.CrossVerify(
			n.Provider(pair[0]).Ledger, n.Provider(pair[1]).Ledger)), nil
	})
	if err != nil {
		return nil, err
	}
	for _, c := range counts {
		res.Discrepancies += c
	}
	// Settle prov-0's ledger with flat bilateral rates and scan for peering.
	rates := economics.RateCard{Default: 0.20}
	ledger := n.Provider(ids[0]).Ledger
	res.Invoices = economics.Settle(ledger, rates)
	res.Balances = economics.NetBalances(res.Invoices)
	res.Peering = economics.PeeringCandidates(ledger, cfg.BytesPerTransfer, 0.3)
	return res, nil
}

// CSV writes the invoices.
func (r *EconResult) CSV(w io.Writer) error {
	var rows [][]string
	for _, inv := range r.Invoices {
		rows = append(rows, []string{inv.Flow.Carrier, inv.Flow.Customer,
			fmt.Sprintf("%d", inv.Bytes), f(inv.AmountUSD)})
	}
	return WriteCSV(w, []string{"carrier", "customer", "bytes", "amount_usd"}, rows)
}

// Render prints the economics summary.
func (r *EconResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "E7: economics over %d delivered transfers (mean latency %.1f ms)\n",
		r.Transfers, r.MeanLatencyS*1000)
	fmt.Fprintf(w, "  ledger cross-verification discrepancies: %d (0 = all parties agree)\n",
		r.Discrepancies)
	for _, inv := range r.Invoices {
		fmt.Fprintf(w, "  %-8s bills %-8s $%8.2f for %6.2f GB\n",
			inv.Flow.Carrier, inv.Flow.Customer, inv.AmountUSD, float64(inv.Bytes)/1e9)
	}
	parties := make([]string, 0, len(r.Balances))
	for p := range r.Balances {
		parties = append(parties, p)
	}
	sort.Strings(parties)
	for _, p := range parties {
		fmt.Fprintf(w, "  net %-8s %+9.2f USD\n", p, r.Balances[p])
	}
	if len(r.Peering) == 0 {
		fmt.Fprintln(w, "  no peering candidates at current symmetry threshold")
	}
	for _, pc := range r.Peering {
		fmt.Fprintf(w, "  peering recommended: %s ↔ %s (symmetry %.2f)\n", pc.A, pc.B, pc.Symmetry)
	}
	return nil
}
