package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/phy"
)

// LinkRow is one line of the E8 link-technology trade table (§2.1): what a
// provider gets — and pays — for each ISL technology at a given range.
type LinkRow struct {
	Tech          string
	DistanceKm    float64
	Closes        bool
	CapacityBps   float64
	EnergyPerBitJ float64
	MassKg        float64
	CostUSD       float64
}

// LinksResult is the full table.
type LinksResult struct {
	Rows []LinkRow
}

// LinksExperiment evaluates the three standard terminals across
// representative ISL ranges.
func LinksExperiment(distancesKm []float64) (*LinksResult, error) {
	if len(distancesKm) == 0 {
		return nil, fmt.Errorf("experiments: links: distances required")
	}
	uhf := phy.StandardUHF()
	sband := phy.StandardSBand()
	laser := phy.ConLCT80()
	res := &LinksResult{}
	for _, d := range distancesKm {
		bu := uhf.Budget(d, 0)
		res.Rows = append(res.Rows, LinkRow{
			Tech: "uhf", DistanceKm: d, Closes: bu.Closed, CapacityBps: bu.CapacityBps,
			EnergyPerBitJ: uhf.EnergyPerBitJ(d), MassKg: uhf.MassKg, CostUSD: uhf.CostUSD,
		})
		bs := sband.Budget(d, 0)
		res.Rows = append(res.Rows, LinkRow{
			Tech: "s-band", DistanceKm: d, Closes: bs.Closed, CapacityBps: bs.CapacityBps,
			EnergyPerBitJ: sband.EnergyPerBitJ(d), MassKg: sband.MassKg, CostUSD: sband.CostUSD,
		})
		bl := laser.Budget(d)
		res.Rows = append(res.Rows, LinkRow{
			Tech: "laser", DistanceKm: d, Closes: bl.Closed, CapacityBps: bl.CapacityBps,
			EnergyPerBitJ: laser.EnergyPerBitJ(d), MassKg: laser.MassKg, CostUSD: laser.CostUSD,
		})
	}
	return res, nil
}

// DefaultLinkDistances covers short intra-plane to extreme cross-plane
// ranges.
func DefaultLinkDistances() []float64 { return []float64{500, 1000, 2000, 4000, 5400} }

// CSV writes the table.
func (r *LinksResult) CSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		closes := "0"
		if row.Closes {
			closes = "1"
		}
		rows = append(rows, []string{row.Tech, f(row.DistanceKm), closes,
			f(row.CapacityBps), f(row.EnergyPerBitJ), f(row.MassKg), f(row.CostUSD)})
	}
	return WriteCSV(w, []string{"tech", "distance_km", "closes", "capacity_bps",
		"energy_per_bit_j", "mass_kg", "cost_usd"}, rows)
}

// Render prints the trade table.
func (r *LinksResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "E8: ISL technology trade (the paper's RF-minimum / laser-optional case)")
	fmt.Fprintf(w, "  %-7s %9s %7s %13s %13s %7s %9s\n",
		"tech", "range km", "closes", "capacity", "J/bit", "kg", "USD")
	for _, row := range r.Rows {
		cap := "-"
		epb := "-"
		if row.Closes {
			cap = fmt.Sprintf("%.1f Mbps", row.CapacityBps/1e6)
			epb = fmt.Sprintf("%.2e", row.EnergyPerBitJ)
		}
		fmt.Fprintf(w, "  %-7s %9.0f %7v %13s %13s %7.1f %9.0f\n",
			row.Tech, row.DistanceKm, row.Closes, cap, epb, row.MassKg, row.CostUSD)
	}
	return nil
}
