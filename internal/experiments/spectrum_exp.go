package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/phy"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/spectrum"
)

// SpectrumConfig parameterises E13: how many downlink channels the shared
// band needs as the number of shared gateway sites grows — the §2/§5(3)
// spectrum-coordination cost of an open system, where every provider's
// satellites must avoid colliding at every member's stations.
type SpectrumConfig struct {
	StationCounts   []int
	ChannelBudget   int // channels available; satellites beyond it stay silent
	MinElevationDeg float64
	Seed            int64
	Workers         int // parallel sweep-point workers; ≤0 = one per CPU
}

// DefaultSpectrum sweeps 1..16 gateways against an 8-channel Ku budget.
func DefaultSpectrum() SpectrumConfig {
	return SpectrumConfig{
		StationCounts:   []int{1, 2, 4, 8, 12, 16},
		ChannelBudget:   8,
		MinElevationDeg: 0,
		Seed:            14,
	}
}

// SpectrumResult carries the coordination curves.
type SpectrumResult struct {
	ChannelsUsed sim.Series // stations vs distinct channels assigned
	Conflicts    sim.Series // stations vs conflicting pairs
	Silenced     sim.Series // stations vs satellites that had to stay silent
}

// SpectrumExperiment runs E13 on the Iridium constellation with gateway
// sites drawn from the world-city catalogue.
func SpectrumExperiment(cfg SpectrumConfig) (*SpectrumResult, error) {
	if len(cfg.StationCounts) == 0 || cfg.ChannelBudget <= 0 {
		return nil, fmt.Errorf("experiments: spectrum: bad config")
	}
	c, err := orbit.Iridium().Build()
	if err != nil {
		return nil, err
	}
	sats := make([]spectrum.Sat, c.Len())
	for i, s := range c.Satellites {
		sats[i] = spectrum.Sat{ID: s.ID, Pos: s.Elements.PositionECEF(0)}
	}
	cities := sim.WorldCities()
	res := &SpectrumResult{
		ChannelsUsed: sim.Series{Name: "channels used"},
		Conflicts:    sim.Series{Name: "conflicting pairs"},
		Silenced:     sim.Series{Name: "satellites silenced"},
	}
	scfg := spectrum.Config{
		Band: phy.BandKu, Channels: cfg.ChannelBudget,
		MinElevationDeg: cfg.MinElevationDeg,
	}
	// Each station count is an independent assignment problem; solve and
	// verify them in parallel, collecting results in sweep order.
	type pointOut struct {
		used, conflicts, silenced int
	}
	outs, err := exec.Map(cfg.Workers, len(cfg.StationCounts), func(i int) (pointOut, error) {
		n := cfg.StationCounts[i]
		if n > len(cities) {
			return pointOut{}, fmt.Errorf("experiments: spectrum: only %d city sites available", len(cities))
		}
		stations := make([]geo.LatLon, n)
		for si := 0; si < n; si++ {
			stations[si] = cities[si].Pos
		}
		plan, err := spectrum.Assign(scfg, sats, stations)
		if err != nil {
			return pointOut{}, err
		}
		if bad := spectrum.Verify(scfg, plan, sats, stations); len(bad) != 0 {
			return pointOut{}, fmt.Errorf("experiments: spectrum: plan fails verification: %v", bad)
		}
		used := map[int]bool{}
		for _, ch := range plan.Assignment {
			used[ch] = true
		}
		return pointOut{used: len(used), conflicts: plan.Conflicts, silenced: len(plan.Unassigned)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range cfg.StationCounts {
		x := float64(n)
		res.ChannelsUsed.Append(x, float64(outs[i].used), 0)
		res.Conflicts.Append(x, float64(outs[i].conflicts), 0)
		res.Silenced.Append(x, float64(outs[i].silenced), 0)
	}
	return res, nil
}

// CSV writes the curves.
func (r *SpectrumResult) CSV(w io.Writer) error {
	conf := map[float64]float64{}
	for _, p := range r.Conflicts.Points {
		conf[p.X] = p.Y
	}
	sil := map[float64]float64{}
	for _, p := range r.Silenced.Points {
		sil[p.X] = p.Y
	}
	var rows [][]string
	for _, p := range r.ChannelsUsed.Points {
		rows = append(rows, []string{f(p.X), f(p.Y), f(conf[p.X]), f(sil[p.X])})
	}
	return WriteCSV(w, []string{"stations", "channels_used", "conflicting_pairs", "silenced"}, rows)
}

// Render prints the coordination table.
func (r *SpectrumResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "E13: spectrum coordination — channel demand vs shared gateway sites")
	fmt.Fprintf(w, "  %-9s %14s %18s %9s\n", "stations", "channels used", "conflicting pairs", "silenced")
	for i, p := range r.ChannelsUsed.Points {
		fmt.Fprintf(w, "  %-9.0f %14.0f %18.0f %9.0f\n",
			p.X, p.Y, r.Conflicts.Points[i].Y, r.Silenced.Points[i].Y)
	}
	return nil
}
