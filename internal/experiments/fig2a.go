package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

// Fig2aResult reproduces Figure 2(a): a simulated OpenSpace constellation
// that "achieves global coverage while maintaining inter-satellite distances
// and trajectories that allow for simple and sustained ISLs".
type Fig2aResult struct {
	Config         orbit.WalkerConfig
	SubSatPoints   []geo.LatLon
	CoverageExact  float64
	IntraPlaneKm   float64 // constant in-plane neighbour distance
	ISLCount       int     // directed ISLs in the t=0 snapshot
	MeanISLRangeKm float64
}

// Fig2a builds the Iridium-like reference constellation and measures the
// properties the figure illustrates.
func Fig2a(gridSize int) (*Fig2aResult, error) {
	cfg := orbit.Iridium()
	c, err := cfg.Build()
	if err != nil {
		return nil, err
	}
	res := &Fig2aResult{Config: cfg}
	for _, s := range c.Satellites {
		res.SubSatPoints = append(res.SubSatPoints, s.Elements.SubSatellitePoint(0))
	}
	res.CoverageExact = geo.ExactCoverageFraction(c.Footprints(0, 10), gridSize)

	// Constant intra-plane spacing (the Walker advantage for sustained ISLs).
	res.IntraPlaneKm = c.Satellites[0].Elements.PositionECI(0).
		DistanceKm(c.Satellites[1].Elements.PositionECI(0))

	// ISL census at t=0.
	specs := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = topo.SatSpec{ID: s.ID, Provider: "ref", Elements: s.Elements}
	}
	snap := topo.Build(0, topo.DefaultConfig(), specs, nil, nil)
	var sum float64
	for _, id := range snap.Nodes() {
		for _, e := range snap.Neighbors(id) {
			res.ISLCount++
			sum += e.DistanceKm
		}
	}
	if res.ISLCount > 0 {
		res.MeanISLRangeKm = sum / float64(res.ISLCount)
	}
	return res, nil
}

// CSV writes the sub-satellite points for external plotting.
func (r *Fig2aResult) CSV(w io.Writer) error {
	rows := make([][]string, len(r.SubSatPoints))
	for i, p := range r.SubSatPoints {
		rows[i] = []string{d(i), f(p.Lat), f(p.Lon)}
	}
	return WriteCSV(w, []string{"sat", "lat_deg", "lon_deg"}, rows)
}

// Render draws an ASCII world map with the sub-satellite points.
func (r *Fig2aResult) Render(w io.Writer) error {
	const width, height = 72, 24
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", width))
	}
	for _, p := range r.SubSatPoints {
		col := int((p.Lon + 180) / 360 * float64(width-1))
		row := int((90 - p.Lat) / 180 * float64(height-1))
		col = int(math.Max(0, math.Min(float64(width-1), float64(col))))
		row = int(math.Max(0, math.Min(float64(height-1), float64(row))))
		grid[row][col] = '@'
	}
	fmt.Fprintf(w, "Figure 2(a): %s — %d satellites, %d planes, %.0f km\n",
		r.Config.Name, r.Config.TotalSats, r.Config.Planes, r.Config.AltitudeKm)
	for _, line := range grid {
		fmt.Fprintf(w, "  %s\n", line)
	}
	_, err := fmt.Fprintf(w,
		"  coverage %.1f%% (10° mask) | intra-plane ISL %.0f km (constant) | %d ISLs, mean %.0f km\n",
		r.CoverageExact*100, r.IntraPlaneKm, r.ISLCount, r.MeanISLRangeKm)
	return err
}
