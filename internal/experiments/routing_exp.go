package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
)

// RoutingAblationConfig parameterises the proactive-vs-on-demand routing
// comparison (§2.2's two regimes). A batch of flows between city users and
// two gateways is admitted either blindly on precomputed shortest paths
// (proactive — sound only while the network is lightly loaded) or
// sequentially with live congestion state (on-demand).
type RoutingAblationConfig struct {
	Flows   int
	FlowBps float64
	Users   int
	Seed    int64
	Workers int // parallel path-computation workers; ≤0 = one per CPU
}

// DefaultRoutingAblation loads the network well past any single link's
// capacity so the regimes separate.
func DefaultRoutingAblation() RoutingAblationConfig {
	return RoutingAblationConfig{Flows: 120, FlowBps: 4e6, Users: 8, Seed: 10}
}

// RoutingAblationResult compares the regimes on the same flow set.
type RoutingAblationResult struct {
	// Proactive: all flows take the load-blind shortest path.
	ProactiveOverloadedEdges int     // directed edges pushed past capacity
	ProactiveMaxUtilization  float64 // highest edge load factor (can exceed 1)
	ProactiveMeanDelayMs     float64
	// OnDemand: flows admitted sequentially with live load.
	OnDemandAdmitted       int
	OnDemandRejected       int
	OnDemandMaxUtilization float64 // ≤ 1 by construction
	OnDemandMeanDelayMs    float64
}

// RoutingAblation runs both regimes over one Iridium snapshot.
func RoutingAblation(cfg RoutingAblationConfig) (*RoutingAblationResult, error) {
	if cfg.Flows <= 0 || cfg.FlowBps <= 0 || cfg.Users <= 0 {
		return nil, fmt.Errorf("experiments: routing ablation: bad config")
	}
	c, err := orbit.Iridium().Build()
	if err != nil {
		return nil, err
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
	}
	rng := exec.RNG(cfg.Seed)
	positions := sim.CityUsers(cfg.Users, 30, rng)
	users := make([]topo.UserSpec, cfg.Users)
	userIDs := make([]string, cfg.Users)
	for i, pos := range positions {
		userIDs[i] = fmt.Sprintf("u%d", i)
		users[i] = topo.UserSpec{ID: userIDs[i], Provider: "p", Pos: pos}
	}
	grounds := []topo.GroundSpec{
		{ID: "gs-a", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}},
		{ID: "gs-b", Provider: "p", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}},
	}
	snap := topo.Build(0, topo.DefaultConfig(), sats, grounds, users)
	stations := []string{"gs-a", "gs-b"}

	// The flow list is shared by both regimes.
	type flow struct {
		src, dst string
	}
	flows := make([]flow, cfg.Flows)
	for i := range flows {
		flows[i] = flow{src: userIDs[rng.Intn(len(userIDs))], dst: stations[rng.Intn(len(stations))]}
	}

	res := &RoutingAblationResult{}

	// Proactive: load-blind shortest paths. Path computation is a
	// read-only query per flow, so it fans out on the exec pool; load
	// commits then replay in flow order to keep the tally deterministic.
	type proOut struct {
		ok   bool
		path routing.Path
	}
	proOuts, err := exec.Map(cfg.Workers, len(flows), func(i int) (proOut, error) {
		p, err := routing.ShortestPath(snap, flows[i].src, flows[i].dst, routing.LatencyCost(0))
		if err != nil {
			return proOut{}, nil // unreachable flow — part of the measurement
		}
		return proOut{ok: true, path: p}, nil
	})
	if err != nil {
		return nil, err
	}
	proactiveLoad := routing.NewEdgeLoad(snap)
	var proDelay sim.Histogram
	proPaths := 0
	for _, out := range proOuts {
		if !out.ok {
			continue
		}
		proPaths++
		proDelay.Add(out.path.DelayS * 1000)
		proactiveLoad.Commit(out.path, cfg.FlowBps)
	}
	over := map[[2]string]bool{}
	for _, id := range snap.Nodes() {
		for _, e := range snap.Neighbors(id) {
			u := proactiveLoad.Utilization(e.From, e.To)
			if u > res.ProactiveMaxUtilization {
				res.ProactiveMaxUtilization = u
			}
			// Utilization saturates at 1; check raw commitment instead.
			if u >= 1 {
				over[[2]string{e.From, e.To}] = true
			}
		}
	}
	res.ProactiveOverloadedEdges = len(over)
	res.ProactiveMeanDelayMs = proDelay.Mean()

	// On-demand: sequential admission with live congestion.
	router := routing.NewOnDemandRouter(snap, routing.DefaultQoS())
	var odDelay sim.Histogram
	for _, fl := range flows {
		p, err := router.Admit(fl.src, fl.dst, cfg.FlowBps)
		if err != nil {
			res.OnDemandRejected++
			continue
		}
		res.OnDemandAdmitted++
		odDelay.Add(p.DelayS * 1000)
	}
	for _, id := range snap.Nodes() {
		for _, e := range snap.Neighbors(id) {
			if u := router.Load().Utilization(e.From, e.To); u > res.OnDemandMaxUtilization {
				res.OnDemandMaxUtilization = u
			}
		}
	}
	res.OnDemandMeanDelayMs = odDelay.Mean()
	return res, nil
}

// CSV writes the comparison.
func (r *RoutingAblationResult) CSV(w io.Writer) error {
	rows := [][]string{
		{"proactive", d(r.ProactiveOverloadedEdges), f(r.ProactiveMaxUtilization), f(r.ProactiveMeanDelayMs), "-", "-"},
		{"ondemand", "0", f(r.OnDemandMaxUtilization), f(r.OnDemandMeanDelayMs),
			d(r.OnDemandAdmitted), d(r.OnDemandRejected)},
	}
	return WriteCSV(w, []string{"regime", "overloaded_edges", "max_utilization",
		"mean_delay_ms", "admitted", "rejected"}, rows)
}

// Render prints the comparison.
func (r *RoutingAblationResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Routing ablation: proactive (load-blind) vs on-demand (§2.2's two regimes)")
	fmt.Fprintf(w, "  proactive: %d overloaded edges, max utilization %.2f, mean delay %.1f ms\n",
		r.ProactiveOverloadedEdges, r.ProactiveMaxUtilization, r.ProactiveMeanDelayMs)
	fmt.Fprintf(w, "  on-demand: %d/%d admitted, max utilization %.2f, mean delay %.1f ms\n",
		r.OnDemandAdmitted, r.OnDemandAdmitted+r.OnDemandRejected,
		r.OnDemandMaxUtilization, r.OnDemandMeanDelayMs)
	_, err := fmt.Fprintln(w, "  on-demand trades admission control and slightly longer paths for zero overload")
	return err
}
