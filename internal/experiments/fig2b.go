package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
)

// Fig2bConfig parameterises the latency-vs-constellation-size sweep.
// The paper's method (§4): fix the user and ground station, randomly
// distribute satellite orbits, and measure the shortest-path length between
// the satellite that picks up the user's signal and the satellite that
// relays it to the ground station, converting length to latency.
type Fig2bConfig struct {
	MinSats, MaxSats, Step int
	Trials                 int // random constellations per point
	AltitudeKm             float64
	User                   geo.LatLon
	Ground                 geo.LatLon
	MinElevationDeg        float64
	Seed                   int64
	Workers                int // parallel trial workers; ≤0 = one per CPU
}

// DefaultFig2b mirrors the paper's setup: 780 km satellites, a fixed user
// and a fixed gateway, N swept to 100. The paper does not publish its
// endpoint locations; we use São Paulo → London (≈9,500 km), whose
// large-constellation inter-satellite latency lands at the ~30 ms level the
// figure flattens to.
func DefaultFig2b() Fig2bConfig {
	return Fig2bConfig{
		MinSats: 1, MaxSats: 100, Step: 3,
		Trials:          120,
		AltitudeKm:      780,
		User:            geo.LatLon{Lat: -23.55, Lon: -46.63},
		Ground:          geo.LatLon{Lat: 51.51, Lon: -0.13},
		MinElevationDeg: 0,
		Seed:            1,
	}
}

// Fig2bResult carries the two series of the figure: inter-satellite
// propagation latency (over trials where a path exists) and the fraction of
// trials with any path at all (which shows the paper's "minimum of about
// four satellites" observation).
type Fig2bResult struct {
	Latency      sim.Series // N vs mean inter-satellite latency (ms), err = stddev
	PathFraction sim.Series // N vs fraction of trials with a path
}

// Fig2b runs the sweep. Trials are independent tasks on the exec pool,
// each owning an RNG derived from (Seed, N, trial), so the result is
// bitwise identical at any worker count.
func Fig2b(cfg Fig2bConfig) (*Fig2bResult, error) {
	if cfg.MinSats <= 0 || cfg.MaxSats < cfg.MinSats || cfg.Step <= 0 {
		return nil, fmt.Errorf("experiments: fig2b: bad sweep [%d,%d] step %d",
			cfg.MinSats, cfg.MaxSats, cfg.Step)
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: fig2b: trials %d must be positive", cfg.Trials)
	}
	tcfg := topo.DefaultConfig()
	tcfg.MinElevationDeg = cfg.MinElevationDeg
	// The paper's §4 simulation is deliberately simplified: any two
	// satellites with line of sight over the Earth's limb can relay, with
	// no RF power cap. Leave LineOfSight as the only ISL constraint so the
	// small-N regime shows the long detours the figure's steep left side
	// comes from.
	tcfg.ISLRangeKm = 1e9

	res := &Fig2bResult{
		Latency:      sim.Series{Name: "inter-satellite latency (ms)"},
		PathFraction: sim.Series{Name: "fraction of trials with a path"},
	}
	users := []topo.UserSpec{{ID: "user", Provider: "p", Pos: cfg.User}}
	grounds := []topo.GroundSpec{{ID: "gs", Provider: "p", Pos: cfg.Ground}}

	var points []int
	for n := cfg.MinSats; n <= cfg.MaxSats; n += cfg.Step {
		points = append(points, n)
	}

	type trialOut struct {
		ok    bool
		latMs float64
	}
	outs, err := exec.Map(cfg.Workers, len(points)*cfg.Trials, func(i int) (trialOut, error) {
		n, trial := points[i/cfg.Trials], i%cfg.Trials
		rng := exec.RNG(cfg.Seed, int64(n), int64(trial))
		c := orbit.RandomCircular(n, cfg.AltitudeKm, rng)
		specs := make([]topo.SatSpec, c.Len())
		for si, s := range c.Satellites {
			specs[si] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
		}
		snap := topo.Build(0, tcfg, specs, grounds, users)
		p, err := routing.ShortestPath(snap, "user", "gs", routing.LatencyCost(0))
		if err != nil {
			return trialOut{}, nil // no path this trial — part of the measurement
		}
		return trialOut{ok: true, latMs: interSatelliteDelayS(snap, p) * 1000}, nil
	})
	if err != nil {
		return nil, err
	}

	for pi, n := range points {
		var lat sim.Histogram
		paths := 0
		for trial := 0; trial < cfg.Trials; trial++ {
			out := outs[pi*cfg.Trials+trial]
			if !out.ok {
				continue
			}
			paths++
			lat.Add(out.latMs)
		}
		res.PathFraction.Append(float64(n), float64(paths)/float64(cfg.Trials), 0)
		if lat.Count() > 0 {
			res.Latency.Append(float64(n), lat.Mean(), lat.Stddev())
		}
	}
	return res, nil
}

// interSatelliteDelayS sums the propagation delay of the path's
// satellite-to-satellite hops only — the quantity Figure 2(b) plots. For
// single-satellite (bent-pipe) paths it is zero.
func interSatelliteDelayS(snap *topo.Snapshot, p routing.Path) float64 {
	var total float64
	for i := 0; i+1 < len(p.Nodes); i++ {
		e, ok := snap.Edge(p.Nodes[i], p.Nodes[i+1])
		if !ok {
			continue
		}
		if e.Kind == topo.LinkISLRF || e.Kind == topo.LinkISLLaser {
			total += e.DelayS
		}
	}
	return total
}

// CSV writes both series over every swept N. Small N where zero trials
// found a path — the region behind the paper's "~4 satellites minimum"
// observation — still get a row, with empty latency fields.
func (r *Fig2bResult) CSV(w io.Writer) error {
	lat := map[float64]sim.Point{}
	for _, p := range r.Latency.Points {
		lat[p.X] = p
	}
	var rows [][]string
	for _, p := range r.PathFraction.Points {
		mean, stddev := "", ""
		if l, ok := lat[p.X]; ok {
			mean, stddev = f(l.Y), f(l.YErr)
		}
		rows = append(rows, []string{f(p.X), mean, stddev, f(p.Y)})
	}
	return WriteCSV(w, []string{"satellites", "latency_ms_mean", "latency_ms_stddev", "path_fraction"}, rows)
}

// Render draws the figure as ASCII.
func (r *Fig2bResult) Render(w io.Writer) error {
	return RenderSeries(w, "Figure 2(b): propagation latency vs constellation size",
		"satellites", "latency (ms)", []*sim.Series{&r.Latency}, 60, 16)
}
