package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/mac"
	"github.com/openspace-project/openspace/internal/sim"
)

// MACConfig parameterises E6: CSMA/CA vs TDMA access delay and overhead as
// the number of contending satellites grows — quantifying the survey
// finding the paper cites, that CSMA/CA's IFS and backoff overhead inflate
// latency (§2.1).
type MACConfig struct {
	MinStations, MaxStations, Step int
	PerStationRate                 float64 // packets/s per satellite
	Duration                       time.Duration
	Seed                           int64
	Workers                        int // parallel sweep-point workers; ≤0 = one per CPU
}

// DefaultMAC sweeps 2..30 contenders at 2 pkt/s each for a minute.
func DefaultMAC() MACConfig {
	return MACConfig{
		MinStations: 2, MaxStations: 30, Step: 2,
		PerStationRate: 2, Duration: time.Minute, Seed: 4,
	}
}

// MACResult carries the sweep curves.
type MACResult struct {
	CSMADelay         sim.Series // stations vs mean access delay (ms)
	TDMADelay         sim.Series
	CSMAOverhead      sim.Series // stations vs overhead fraction
	CSMACollisionRate sim.Series
}

// MACExperiment runs E6.
func MACExperiment(cfg MACConfig) (*MACResult, error) {
	if cfg.MinStations <= 0 || cfg.MaxStations < cfg.MinStations || cfg.Step <= 0 {
		return nil, fmt.Errorf("experiments: mac: bad sweep")
	}
	res := &MACResult{
		CSMADelay:         sim.Series{Name: "CSMA/CA mean delay (ms)"},
		TDMADelay:         sim.Series{Name: "TDMA mean delay (ms)"},
		CSMAOverhead:      sim.Series{Name: "CSMA/CA overhead fraction"},
		CSMACollisionRate: sim.Series{Name: "CSMA/CA collision rate"},
	}
	var points []int
	for n := cfg.MinStations; n <= cfg.MaxStations; n += cfg.Step {
		points = append(points, n)
	}
	// Each sweep point runs both schemes from the explicit per-run seeds
	// the mac package already takes, so points parallelise untouched.
	type pointOut struct {
		cs, td mac.Stats
	}
	outs, err := exec.Map(cfg.Workers, len(points), func(i int) (pointOut, error) {
		n := points[i]
		cs, err := mac.RunCSMA(mac.DefaultCSMA(n, cfg.PerStationRate), cfg.Duration, cfg.Seed)
		if err != nil {
			return pointOut{}, err
		}
		td, err := mac.RunTDMA(mac.DefaultTDMA(n, cfg.PerStationRate), cfg.Duration, cfg.Seed)
		if err != nil {
			return pointOut{}, err
		}
		return pointOut{cs: cs, td: td}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, n := range points {
		cs, td := outs[i].cs, outs[i].td
		x := float64(n)
		res.CSMADelay.Append(x, float64(cs.MeanAccessDelay)/1e6, 0)
		res.TDMADelay.Append(x, float64(td.MeanAccessDelay)/1e6, 0)
		res.CSMAOverhead.Append(x, cs.OverheadFrac, 0)
		if cs.Attempts > 0 {
			res.CSMACollisionRate.Append(x, float64(cs.Collisions)/float64(cs.Attempts), 0)
		}
	}
	return res, nil
}

// CSV writes the sweep.
func (r *MACResult) CSV(w io.Writer) error {
	tdma := map[float64]float64{}
	for _, p := range r.TDMADelay.Points {
		tdma[p.X] = p.Y
	}
	over := map[float64]float64{}
	for _, p := range r.CSMAOverhead.Points {
		over[p.X] = p.Y
	}
	coll := map[float64]float64{}
	for _, p := range r.CSMACollisionRate.Points {
		coll[p.X] = p.Y
	}
	var rows [][]string
	for _, p := range r.CSMADelay.Points {
		rows = append(rows, []string{f(p.X), f(p.Y), f(tdma[p.X]), f(over[p.X]), f(coll[p.X])})
	}
	return WriteCSV(w, []string{"stations", "csma_delay_ms", "tdma_delay_ms",
		"csma_overhead_frac", "csma_collision_rate"}, rows)
}

// Render draws the delay comparison.
func (r *MACResult) Render(w io.Writer) error {
	return RenderSeries(w, "E6: medium-access delay, CSMA/CA vs TDMA",
		"contending satellites", "mean delay (ms)",
		[]*sim.Series{&r.CSMADelay, &r.TDMADelay}, 60, 14)
}
