package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
)

// DTNConfig parameterises E11: how much service a below-critical-mass
// fleet can offer when bundles may be stored on board and forwarded at the
// next contact (routing.EarliestArrival), versus requiring an instantaneous
// end-to-end path. This is the incremental-deployment pathway of §4 made
// quantitative: a two-satellite startup cannot offer synchronous service,
// but it can offer delivery within hours.
type DTNConfig struct {
	FleetSizes []int
	Trials     int
	HorizonS   float64 // store-and-forward patience
	IntervalS  float64 // snapshot cadence
	AltitudeKm float64
	Seed       int64
	Workers    int // parallel trial workers; ≤0 = one per CPU
}

// DefaultDTN sweeps fleets of 2..24 satellites with six hours of patience.
func DefaultDTN() DTNConfig {
	return DTNConfig{
		FleetSizes: []int{2, 4, 8, 12, 16, 24},
		Trials:     6,
		HorizonS:   6 * 3600,
		IntervalS:  120,
		AltitudeKm: 780,
		Seed:       12,
	}
}

// DTNResult carries the comparison curves.
type DTNResult struct {
	Synchronous  sim.Series // fleet size vs fraction of trials with an instant path
	StoreForward sim.Series // fleet size vs fraction deliverable within the horizon
	MedianDelay  sim.Series // fleet size vs median store-and-forward delivery delay (min)
}

// DTNExperiment runs E11 between Nairobi and London.
func DTNExperiment(cfg DTNConfig) (*DTNResult, error) {
	if len(cfg.FleetSizes) == 0 || cfg.Trials <= 0 || cfg.HorizonS <= 0 || cfg.IntervalS <= 0 {
		return nil, fmt.Errorf("experiments: dtn: bad config")
	}
	users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	grounds := []topo.GroundSpec{{ID: "g", Provider: "p", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}}}

	res := &DTNResult{
		Synchronous:  sim.Series{Name: "instant path available"},
		StoreForward: sim.Series{Name: "deliverable with storage"},
		MedianDelay:  sim.Series{Name: "median s&f delay (min)"},
	}
	// One task per (fleet size, trial); each builds its own time-expanded
	// topology from a per-task RNG, keeping the curves bitwise identical
	// at any worker count. Nested snapshot parallelism stays off (Workers
	// is already spent at the trial level).
	type trialOut struct {
		sync, dtn bool
		delayMin  float64
	}
	tcfg := topo.DefaultConfig()
	tcfg.Workers = 1
	outs, err := exec.Map(cfg.Workers, len(cfg.FleetSizes)*cfg.Trials, func(i int) (trialOut, error) {
		n, trial := cfg.FleetSizes[i/cfg.Trials], i%cfg.Trials
		rng := exec.RNG(cfg.Seed, int64(n), int64(trial))
		c := orbit.RandomCircular(n, cfg.AltitudeKm, rng)
		sats := make([]topo.SatSpec, c.Len())
		for si, s := range c.Satellites {
			sats[si] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
		}
		te, err := topo.BuildTimeExpanded(0, cfg.HorizonS, cfg.IntervalS,
			tcfg, sats, grounds, users)
		if err != nil {
			return trialOut{}, err
		}
		var out trialOut
		if _, err := routing.ShortestPath(te.Snaps[0], "u", "g", routing.LatencyCost(0)); err == nil {
			out.sync = true
		}
		if route, err := routing.EarliestArrival(te, "u", "g", 0, 0); err == nil {
			out.dtn = true
			out.delayMin = route.ArrivalS / 60
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for fi, n := range cfg.FleetSizes {
		sync, dtn := 0, 0
		var delays sim.Histogram
		for trial := 0; trial < cfg.Trials; trial++ {
			out := outs[fi*cfg.Trials+trial]
			if out.sync {
				sync++
			}
			if out.dtn {
				dtn++
				delays.Add(out.delayMin)
			}
		}
		x := float64(n)
		res.Synchronous.Append(x, float64(sync)/float64(cfg.Trials), 0)
		res.StoreForward.Append(x, float64(dtn)/float64(cfg.Trials), 0)
		if delays.Count() > 0 {
			res.MedianDelay.Append(x, delays.Quantile(0.5), 0)
		}
	}
	return res, nil
}

// CSV writes the curves.
func (r *DTNResult) CSV(w io.Writer) error {
	sf := map[float64]float64{}
	for _, p := range r.StoreForward.Points {
		sf[p.X] = p.Y
	}
	md := map[float64]float64{}
	for _, p := range r.MedianDelay.Points {
		md[p.X] = p.Y
	}
	var rows [][]string
	for _, p := range r.Synchronous.Points {
		rows = append(rows, []string{f(p.X), f(p.Y), f(sf[p.X]), f(md[p.X])})
	}
	return WriteCSV(w, []string{"fleet_size", "instant_fraction",
		"storeforward_fraction", "median_delay_min"}, rows)
}

// Render draws the comparison.
func (r *DTNResult) Render(w io.Writer) error {
	if err := RenderSeries(w, "E11: sparse fleets — instant connectivity vs store-and-forward",
		"fleet size", "deliverable fraction",
		[]*sim.Series{&r.Synchronous, &r.StoreForward}, 60, 12); err != nil {
		return err
	}
	for _, p := range r.MedianDelay.Points {
		fmt.Fprintf(w, "  fleet %2.0f: median store-and-forward delivery %.0f min\n", p.X, p.Y)
	}
	return nil
}
