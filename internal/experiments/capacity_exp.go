package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
	"github.com/openspace-project/openspace/internal/traffic"
)

// CapacityConfig parameterises the capacity experiment: the throughput
// analogue of Fig. 2b/2c. Constellation size N is swept; at each N, users
// at population-weighted world cities offer load, the load aggregates into
// gateway-pair demands, and a max-min fair allocation over the
// phy-capacitated link graph reports what the constellation carries.
type CapacityConfig struct {
	MinSats, MaxSats, Step int
	Trials                 int // random constellations per point
	AltitudeKm             float64
	// LaserFraction of satellites carry optical ISL terminals; the rest
	// are RF-only (the paper's "RF at a minimum, optionally laser" rule).
	LaserFraction float64
	// MaxISLs is the per-satellite power-budget cap on simultaneous ISLs.
	MaxISLs int
	// Users and PerUserBps define offered load; ScatterKm spreads users
	// around their home cities.
	Users      int
	PerUserBps float64
	ScatterKm  float64
	// Gateways places ground stations at the N most populous world cities.
	Gateways int
	// KPaths is the per-demand path diversity for the allocator.
	KPaths          int
	MinElevationDeg float64
	Seed            int64
	Workers         int // parallel trial workers; ≤0 = one per CPU
	// Topology selects the constellation generator per swept N:
	// "random" (the default, the paper's §4 uncoordinated-fleets model)
	// draws independent circular orbits per trial; "grid" flies an
	// as-square-as-possible Walker Delta with explicit +Grid ISL wiring —
	// the mega-constellation layout, whose linear link count is what
	// makes the N-sweep to thousands tractable.
	Topology string
	// GridInclinationDeg is the Walker Delta inclination in grid mode.
	GridInclinationDeg float64
}

// DefaultCapacity sweeps 4..96 satellites: 300 users at 25 Mbps each
// (7.5 Gbps offered) against gateways at the eight most populous cities.
// MaxISLs is 0 (no degree cap): a cap spends laser satellites' link budget
// on their nearest — often RF-only — neighbours and suppresses the laser
// backbone the sweep is meant to expose.
func DefaultCapacity() CapacityConfig {
	return CapacityConfig{
		MinSats: 4, MaxSats: 96, Step: 4,
		Trials:          60,
		AltitudeKm:      780,
		LaserFraction:   0.5,
		MaxISLs:         0,
		Users:           300,
		PerUserBps:      25e6,
		ScatterKm:       30,
		Gateways:        8,
		KPaths:          8,
		MinElevationDeg: 10,
		Seed:            11,
	}
}

// DefaultCapacityScale is the mega-constellation variant of E14: a
// Walker-Delta +Grid sweep from 500 to 4 000 satellites. All satellites
// carry laser terminals (the Starlink configuration); the offered load
// and gateway siting match DefaultCapacity so the two sweeps splice into
// one curve.
func DefaultCapacityScale() CapacityConfig {
	cfg := DefaultCapacity()
	cfg.MinSats, cfg.MaxSats, cfg.Step = 500, 4000, 500
	cfg.Trials = 3 // the constellation is deterministic; trials vary load
	cfg.AltitudeKm = 550
	cfg.LaserFraction = 1
	cfg.Topology = "grid"
	cfg.GridInclinationDeg = 53
	cfg.Seed = 17
	return cfg
}

// CapacityResult carries the sweep's series plus the offered-load baseline.
type CapacityResult struct {
	OfferedGbps float64
	Carried     sim.Series // N vs carried Gbps (err = stddev over trials)
	MaxFlowTop  sim.Series // N vs max-flow bound of the heaviest demand pair (Gbps)
	Satisfied   sim.Series // N vs carried/offered fraction
	Jain        sim.Series // N vs Jain fairness index over demand satisfaction
	Bottleneck  sim.Series // N vs utilisation of the most loaded link
	rows        []capacityRow
}

// capacityRow is one aggregated CSV row.
type capacityRow struct {
	n              int
	offeredGbps    float64
	carriedMean    float64
	carriedStddev  float64
	satisfied      float64
	jain           float64
	bottleneckUtil float64
	bottleneckKind string
	maxflowGbps    float64
	cutLinks       float64
}

// capacityTrialOut is one (N, trial) measurement.
type capacityTrialOut struct {
	offeredBps     float64
	carriedBps     float64
	satisfied      float64
	jain           float64
	bottleneckUtil float64
	bottleneckKind string
	maxflowBps     float64
	cutLinks       int
}

// capacityGateways sites gateways at the most populous world cities —
// the fixed ground segment of the sweep.
func capacityGateways(count int) []traffic.Gateway {
	cities := sim.WorldCities()
	sort.Slice(cities, func(a, b int) bool {
		if cities[a].PopM != cities[b].PopM { //lint:allow floateq exact sort tie-break keeps gateway siting deterministic
			return cities[a].PopM > cities[b].PopM
		}
		return cities[a].Name < cities[b].Name
	})
	if count > len(cities) {
		count = len(cities)
	}
	gws := make([]traffic.Gateway, count)
	for i := 0; i < count; i++ {
		gws[i] = traffic.Gateway{ID: "gw-" + cities[i].Name, Pos: cities[i].Pos}
	}
	return gws
}

// Capacity runs the sweep. Each (N, trial) task owns an RNG derived from
// (Seed, N, trial) and runs on the exec pool, so the CSV is byte-identical
// at any worker count.
func Capacity(cfg CapacityConfig) (*CapacityResult, error) {
	if cfg.MinSats <= 0 || cfg.MaxSats < cfg.MinSats || cfg.Step <= 0 {
		return nil, fmt.Errorf("experiments: capacity: bad sweep [%d,%d] step %d",
			cfg.MinSats, cfg.MaxSats, cfg.Step)
	}
	if cfg.Trials <= 0 || cfg.Users <= 0 || cfg.PerUserBps <= 0 || cfg.Gateways < 2 {
		return nil, fmt.Errorf("experiments: capacity: trials, users, per-user load must be positive and gateways ≥ 2")
	}
	gridMode := false
	switch cfg.Topology {
	case "", "random":
	case "grid":
		gridMode = true
	default:
		return nil, fmt.Errorf("experiments: capacity: unknown topology %q", cfg.Topology)
	}
	gws := capacityGateways(cfg.Gateways)
	groundSpecs := make([]topo.GroundSpec, len(gws))
	for i, g := range gws {
		groundSpecs[i] = topo.GroundSpec{ID: g.ID, Provider: "p", Pos: g.Pos}
	}
	tcfg := topo.DefaultConfig()
	tcfg.MinElevationDeg = cfg.MinElevationDeg
	model := traffic.DefaultCapacityModel()
	dcfg := traffic.DefaultDemandConfig()
	dcfg.PerUserBps = cfg.PerUserBps
	dcfg.MinElevationDeg = cfg.MinElevationDeg
	// The allocation runs on the t=0 snapshot, so "lit" must mean visible
	// at that instant — a wide pass window would create demands between
	// gateways the snapshot cannot yet connect.
	dcfg.WindowS = 1

	var points []int
	for n := cfg.MinSats; n <= cfg.MaxSats; n += cfg.Step {
		points = append(points, n)
	}

	// Grid mode flies one deterministic Walker Delta per swept N; trials
	// then vary only the offered load. The constellation, wiring plan,
	// and per-point topo config are precomputed once and shared read-only
	// across the pool.
	gridConst := make([]*orbit.Constellation, len(points))
	gridCfgs := make([]topo.Config, len(points))
	gridSpecs := make([][]topo.SatSpec, len(points))
	if gridMode {
		for pi, n := range points {
			w, err := orbit.SquareWalkerDelta(n, cfg.AltitudeKm, cfg.GridInclinationDeg)
			if err != nil {
				return nil, fmt.Errorf("experiments: capacity: %w", err)
			}
			c, err := w.Build()
			if err != nil {
				return nil, fmt.Errorf("experiments: capacity: %w", err)
			}
			pairs, err := w.GridISLs(w.DefaultGrid())
			if err != nil {
				return nil, fmt.Errorf("experiments: capacity: %w", err)
			}
			gridConst[pi] = c
			gridCfgs[pi] = tcfg
			gridCfgs[pi].StaticISLs = pairs
			specs := make([]topo.SatSpec, c.Len())
			for si, s := range c.Satellites {
				specs[si] = topo.SatSpec{
					ID: s.ID, Provider: "p", Elements: s.Elements,
					HasLaser: float64(si) < cfg.LaserFraction*float64(n),
					MaxISLs:  cfg.MaxISLs,
				}
			}
			gridSpecs[pi] = specs
		}
	}

	outs, err := exec.Map(cfg.Workers, len(points)*cfg.Trials, func(i int) (capacityTrialOut, error) {
		pi, trial := i/cfg.Trials, i%cfg.Trials
		n := points[pi]
		// Common random numbers: the user population and destination draws
		// depend only on the trial, so every swept N faces the same offered
		// load and the curve isolates the constellation-size effect.
		demandRNG := exec.RNG(cfg.Seed, -1, int64(trial))
		var c *orbit.Constellation
		var specs []topo.SatSpec
		buildCfg := tcfg
		if gridMode {
			c, specs, buildCfg = gridConst[pi], gridSpecs[pi], gridCfgs[pi]
		} else {
			rng := exec.RNG(cfg.Seed, int64(n), int64(trial))
			c = orbit.RandomCircular(n, cfg.AltitudeKm, rng)
			specs = make([]topo.SatSpec, c.Len())
			for si, s := range c.Satellites {
				specs[si] = topo.SatSpec{
					ID: s.ID, Provider: "p", Elements: s.Elements,
					HasLaser: float64(si) < cfg.LaserFraction*float64(n),
					MaxISLs:  cfg.MaxISLs,
				}
			}
		}
		users := sim.CityUsers(cfg.Users, cfg.ScatterKm, demandRNG)
		dm, err := traffic.BuildDemandMatrix(gws, c.Satellites, users, dcfg, demandRNG)
		if err != nil {
			return capacityTrialOut{}, err
		}
		out := capacityTrialOut{offeredBps: float64(cfg.Users) * cfg.PerUserBps}
		if len(dm.Demands) == 0 {
			return out, nil // nothing routable this trial (dark constellation)
		}
		snap := topo.Build(0, buildCfg, specs, groundSpecs, nil)
		net := traffic.NewNetwork(snap)
		net.Recapacitate(model)
		alloc, err := traffic.MaxMinFair(net, dm.Demands, traffic.AllocConfig{KPaths: cfg.KPaths})
		if err != nil {
			return capacityTrialOut{}, err
		}
		out.carriedBps = alloc.CarriedBps()
		out.satisfied = alloc.CarriedBps() / out.offeredBps
		out.jain = alloc.JainIndex()
		link, util := alloc.MaxUtilization()
		out.bottleneckUtil = util
		if e, ok := snap.Edge(link.From, link.To); ok {
			out.bottleneckKind = e.Kind.String()
		}
		// The heaviest demand pair's max flow bounds what any routing
		// scheme could carry for it; the min cut is the physical
		// bottleneck.
		top := dm.Demands[0]
		for _, d := range dm.Demands[1:] {
			if d.OfferedBps > top.OfferedBps {
				top = d
			}
		}
		mf, err := traffic.MaxFlow(net, top.Src, top.Dst)
		if err != nil {
			return capacityTrialOut{}, err
		}
		out.maxflowBps = mf.ValueBps
		out.cutLinks = len(mf.MinCut)
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &CapacityResult{
		OfferedGbps: float64(cfg.Users) * cfg.PerUserBps / 1e9,
		Carried:     sim.Series{Name: "carried traffic (Gbps)"},
		MaxFlowTop:  sim.Series{Name: "max-flow bound, top pair (Gbps)"},
		Satisfied:   sim.Series{Name: "satisfied fraction"},
		Jain:        sim.Series{Name: "Jain fairness"},
		Bottleneck:  sim.Series{Name: "bottleneck utilisation"},
	}
	for pi, n := range points {
		var carried, satisfied, jain, bottleneck, maxflow, cut sim.Histogram
		kinds := map[string]int{}
		for trial := 0; trial < cfg.Trials; trial++ {
			out := outs[pi*cfg.Trials+trial]
			carried.Add(out.carriedBps / 1e9)
			satisfied.Add(out.satisfied)
			jain.Add(out.jain)
			bottleneck.Add(out.bottleneckUtil)
			maxflow.Add(out.maxflowBps / 1e9)
			cut.Add(float64(out.cutLinks))
			if out.bottleneckKind != "" {
				kinds[out.bottleneckKind]++
			}
		}
		res.Carried.Append(float64(n), carried.Mean(), carried.Stddev())
		res.MaxFlowTop.Append(float64(n), maxflow.Mean(), maxflow.Stddev())
		res.Satisfied.Append(float64(n), satisfied.Mean(), satisfied.Stddev())
		res.Jain.Append(float64(n), jain.Mean(), jain.Stddev())
		res.Bottleneck.Append(float64(n), bottleneck.Mean(), bottleneck.Stddev())
		res.rows = append(res.rows, capacityRow{
			n:              n,
			offeredGbps:    res.OfferedGbps,
			carriedMean:    carried.Mean(),
			carriedStddev:  carried.Stddev(),
			satisfied:      satisfied.Mean(),
			jain:           jain.Mean(),
			bottleneckUtil: bottleneck.Mean(),
			bottleneckKind: modalKind(kinds),
			maxflowGbps:    maxflow.Mean(),
			cutLinks:       cut.Mean(),
		})
	}
	return res, nil
}

// modalKind returns the most common bottleneck link class, ties broken
// lexicographically; "" when no trial saw load.
func modalKind(kinds map[string]int) string {
	best, bestN := "", 0
	names := make([]string, 0, len(kinds))
	for k := range kinds {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if kinds[k] > bestN {
			best, bestN = k, kinds[k]
		}
	}
	return best
}

// CSV writes one row per swept N.
func (r *CapacityResult) CSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.rows {
		rows = append(rows, []string{
			d(row.n), f(row.offeredGbps), f(row.carriedMean), f(row.carriedStddev),
			f(row.satisfied), f(row.jain), f(row.bottleneckUtil), row.bottleneckKind,
			f(row.maxflowGbps), f(row.cutLinks),
		})
	}
	return WriteCSV(w, []string{
		"satellites", "offered_gbps", "carried_gbps_mean", "carried_gbps_stddev",
		"satisfied_fraction", "jain_index", "bottleneck_util", "bottleneck_kind",
		"maxflow_top_gbps", "mincut_links",
	}, rows)
}

// Render draws carried traffic and the top-pair max-flow bound against N.
func (r *CapacityResult) Render(w io.Writer) error {
	if err := RenderSeries(w,
		fmt.Sprintf("Capacity: carried traffic vs constellation size (offered %.2f Gbps)", r.OfferedGbps),
		"satellites", "Gbps", []*sim.Series{&r.Carried, &r.MaxFlowTop}, 60, 16); err != nil {
		return err
	}
	return RenderSeries(w, "Capacity: fairness and bottleneck utilisation",
		"satellites", "fraction", []*sim.Series{&r.Satisfied, &r.Jain, &r.Bottleneck}, 60, 10)
}
