package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/fluid"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
)

// UsersScaleConfig parameterises E18: the fluid-aggregation scale-out. A
// fixed +Grid Walker Delta serves an effective user population swept over
// orders of magnitude; because the fluid model evolves (city-pair × class)
// aggregates rather than per-user transfers, the work per cell is
// O(aggregates × epochs) and wall time must stay near-flat as Users grows —
// the property the CI scaling gate asserts.
type UsersScaleConfig struct {
	// UserCounts are the swept effective populations.
	UserCounts []int
	// Sats sizes the Walker Delta. It must be large enough that the +Grid
	// in-plane spacing stays inside laser ISL range (≥64 at 550 km).
	Sats           int
	AltitudeKm     float64
	InclinationDeg float64
	// Gateways places ground stations at the N most populous world cities.
	Gateways int
	// DurationS/IntervalS set the horizon and the epoch cadence.
	DurationS, IntervalS float64
	// KPaths is the allocator's path diversity per demand.
	KPaths int
	// Classes is the traffic mix; nil means fluid.DefaultClasses.
	Classes []fluid.Class
	Seed    int64
	Workers int // parallel cell workers; ≤0 = one per CPU
}

// DefaultUsersScale sweeps 10⁴ → 10⁷ users over a 500-satellite Starlink
// shell (550 km, 53°, all-laser +Grid) with gateways at the eight most
// populous cities — the constellation DefaultCapacityScale starts from.
func DefaultUsersScale() UsersScaleConfig {
	return UsersScaleConfig{
		UserCounts:     []int{10_000, 100_000, 1_000_000, 10_000_000},
		Sats:           500,
		AltitudeKm:     550,
		InclinationDeg: 53,
		Gateways:       8,
		DurationS:      600,
		IntervalS:      60,
		KPaths:         4,
		Seed:           21,
	}
}

// usersScaleRow is one swept population's aggregated measurements.
type usersScaleRow struct {
	users      int
	offeredBps float64 // analytic long-run offered load of the class matrix
	fr         *fluid.Result
	wallS      float64 // rendered, never written to the CSV (determinism)
}

// UsersScaleResult carries the sweep's series plus per-cell detail.
type UsersScaleResult struct {
	OfferedGbps []float64  // per swept population
	Carried     sim.Series // log10(users) vs carried Gbps
	Delivered   sim.Series // log10(users) vs delivered fraction
	P95         sim.Series // log10(users) vs p95 latency (s)
	Wall        sim.Series // log10(users) vs wall seconds (not in the CSV)

	classes []fluid.Class
	rows    []usersScaleRow
}

// WallS returns the measured wall time of the cell for the given user
// count, 0 if that population was not swept.
func (r *UsersScaleResult) WallS(users int) float64 {
	for _, row := range r.rows {
		if row.users == users {
			return row.wallS
		}
	}
	return 0
}

// UsersScale runs E18. The topology snapshots are built once and shared
// read-only across cells; each cell owns its class matrix and evolver, and
// every aggregate's arrival stream is seeded from its own coordinates, so
// the CSV is byte-identical at any worker count.
func UsersScale(cfg UsersScaleConfig) (*UsersScaleResult, error) {
	if len(cfg.UserCounts) == 0 {
		return nil, fmt.Errorf("experiments: users-scale: no user counts")
	}
	for _, u := range cfg.UserCounts {
		if u <= 0 {
			return nil, fmt.Errorf("experiments: users-scale: user count %d must be positive", u)
		}
	}
	if cfg.Sats <= 0 || cfg.Gateways < 2 {
		return nil, fmt.Errorf("experiments: users-scale: need satellites and ≥ 2 gateways")
	}
	if cfg.DurationS <= 0 || cfg.IntervalS <= 0 {
		return nil, fmt.Errorf("experiments: users-scale: duration and interval must be positive")
	}

	// One deterministic constellation and one snapshot per epoch, shared by
	// every swept population: the sweep isolates the user-count effect.
	w, err := orbit.SquareWalkerDelta(cfg.Sats, cfg.AltitudeKm, cfg.InclinationDeg)
	if err != nil {
		return nil, fmt.Errorf("experiments: users-scale: %w", err)
	}
	c, err := w.Build()
	if err != nil {
		return nil, fmt.Errorf("experiments: users-scale: %w", err)
	}
	tcfg := topo.DefaultConfig()
	if tcfg.StaticISLs, err = w.GridISLs(w.DefaultGrid()); err != nil {
		return nil, fmt.Errorf("experiments: users-scale: %w", err)
	}
	specs := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements, HasLaser: true}
	}
	gws := capacityGateways(cfg.Gateways)
	groundSpecs := make([]topo.GroundSpec, len(gws))
	for i, g := range gws {
		groundSpecs[i] = topo.GroundSpec{ID: g.ID, Provider: "p", Pos: g.Pos}
	}
	epochs := int(math.Ceil(cfg.DurationS / cfg.IntervalS))
	snaps := make([]*topo.Snapshot, epochs)
	for e := 0; e < epochs; e++ {
		snaps[e] = topo.Build(float64(e)*cfg.IntervalS, tcfg, specs, groundSpecs, nil)
	}

	rows, err := exec.Map(cfg.Workers, len(cfg.UserCounts), func(i int) (usersScaleRow, error) {
		fcfg := fluid.Config{
			Users:   cfg.UserCounts[i],
			Classes: cfg.Classes,
			KPaths:  cfg.KPaths,
			Seed:    cfg.Seed,
		}
		start := time.Now() //lint:allow nondeterm wall time is reported for the scaling gate, never fed back into results
		m, err := fluid.BuildClassMatrix(fcfg)
		if err != nil {
			return usersScaleRow{}, err
		}
		ev, err := fluid.NewEvolver(m, fcfg, gws)
		if err != nil {
			return usersScaleRow{}, err
		}
		for e := 0; e < epochs; e++ {
			t0 := float64(e) * cfg.IntervalS
			t1 := t0 + cfg.IntervalS
			if t1 > cfg.DurationS {
				t1 = cfg.DurationS
			}
			if err := ev.Advance(snaps[e], t0, t1, e); err != nil {
				return usersScaleRow{}, err
			}
		}
		return usersScaleRow{
			users:      cfg.UserCounts[i],
			offeredBps: m.OfferedBps(),
			fr:         ev.Result(),
			wallS:      time.Since(start).Seconds(),
		}, nil
	})
	if err != nil {
		return nil, err
	}

	res := &UsersScaleResult{
		Carried:   sim.Series{Name: "carried traffic (Gbps)"},
		Delivered: sim.Series{Name: "delivered fraction"},
		P95:       sim.Series{Name: "p95 latency (s)"},
		Wall:      sim.Series{Name: "wall time (s)"},
		rows:      rows,
	}
	if cfg.Classes != nil {
		res.classes = cfg.Classes
	} else {
		res.classes = fluid.DefaultClasses()
	}
	for _, row := range rows {
		x := math.Log10(float64(row.users))
		res.OfferedGbps = append(res.OfferedGbps, row.offeredBps/1e9)
		res.Carried.Append(x, row.fr.CarriedBps()/1e9, 0)
		res.Delivered.Append(x, row.fr.DeliveredFraction(), 0)
		res.P95.Append(x, row.fr.Latency.Quantile(0.95), 0)
		res.Wall.Append(x, row.wallS, 0)
	}
	return res, nil
}

// CSV writes one row per swept population. Wall time is deliberately
// excluded: the file must be byte-identical at any worker count and across
// machines, the same contract every other experiment CSV honours.
func (r *UsersScaleResult) CSV(w io.Writer) error {
	header := []string{
		"users", "offered_gbps", "carried_gbps",
		"transfers_attempted", "transfers_delivered", "delivered_fraction",
		"local_transfers", "bytes_gb", "retries", "recovered", "abandoned", "pending",
		"latency_p50_ms", "latency_p95_ms",
	}
	for _, cl := range r.classes {
		header = append(header, cl.Name+"_p50_ms", cl.Name+"_p95_ms")
	}
	var rows [][]string
	for i, row := range r.rows {
		fr := row.fr
		rec := []string{
			d(row.users), f(r.OfferedGbps[i]), f(fr.CarriedBps() / 1e9),
			fmt.Sprintf("%d", fr.TransfersAttempted),
			fmt.Sprintf("%d", fr.TransfersDelivered),
			f(fr.DeliveredFraction()),
			fmt.Sprintf("%d", fr.LocalTransfers),
			f(float64(fr.BytesDelivered) / 1e9),
			fmt.Sprintf("%d", fr.Retries),
			fmt.Sprintf("%d", fr.Recovered),
			fmt.Sprintf("%d", fr.Abandoned),
			fmt.Sprintf("%d", fr.PendingTransfers),
			f(fr.Latency.Quantile(0.5) * 1000), f(fr.Latency.Quantile(0.95) * 1000),
		}
		for _, cls := range fr.PerClass {
			rec = append(rec, f(cls.Latency.Quantile(0.5)*1000), f(cls.Latency.Quantile(0.95)*1000))
		}
		rows = append(rows, rec)
	}
	return WriteCSV(w, header, rows)
}

// Render draws carried capacity and delivered fraction against log₁₀ users,
// then prints the per-cell wall times the scaling gate watches.
func (r *UsersScaleResult) Render(w io.Writer) error {
	if err := RenderSeries(w, "Users-scale (E18): carried capacity vs population (fluid aggregation)",
		"log10(users)", "Gbps", []*sim.Series{&r.Carried}, 60, 12); err != nil {
		return err
	}
	if err := RenderSeries(w, "Users-scale (E18): delivery and tail latency",
		"log10(users)", "fraction / s", []*sim.Series{&r.Delivered, &r.P95}, 60, 10); err != nil {
		return err
	}
	for _, row := range r.rows {
		if _, err := fmt.Fprintf(w,
			"users %-10d wall %6.2f s | attempted %d delivered %d (%.1f%%) | carried %.2f Gbps | p95 %.0f ms\n",
			row.users, row.wallS, row.fr.TransfersAttempted, row.fr.TransfersDelivered,
			row.fr.DeliveredFraction()*100, row.fr.CarriedBps()/1e9,
			row.fr.Latency.Quantile(0.95)*1000); err != nil {
			return err
		}
	}
	return nil
}
