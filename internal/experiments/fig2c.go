package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
)

// Fig2cConfig parameterises the coverage-vs-constellation-size sweep.
type Fig2cConfig struct {
	MinSats, MaxSats, Step int
	Trials                 int
	AltitudeKm             float64
	MinElevationDeg        float64
	GridSize               int // Fibonacci grid points for the exact union
	Seed                   int64
	Workers                int // parallel trial workers; ≤0 = one per CPU
}

// DefaultFig2c mirrors the paper: random orbits at 780 km, coverage under
// the worst-case full-overlap rule, swept to 100 satellites. The exact
// union is computed alongside as the ablation series (DESIGN.md §4).
func DefaultFig2c() Fig2cConfig {
	return Fig2cConfig{
		MinSats: 1, MaxSats: 100, Step: 3,
		Trials: 40, AltitudeKm: 780, MinElevationDeg: 0,
		GridSize: 4000, Seed: 2,
	}
}

// Fig2cResult carries the figure's series.
type Fig2cResult struct {
	WorstCase sim.Series // the paper's conservative rule
	Exact     sim.Series // true union coverage (ablation)
}

// Fig2c runs the sweep. Trials are independent tasks on the exec pool,
// each owning an RNG derived from (Seed, N, trial), so the result is
// bitwise identical at any worker count.
func Fig2c(cfg Fig2cConfig) (*Fig2cResult, error) {
	if cfg.MinSats <= 0 || cfg.MaxSats < cfg.MinSats || cfg.Step <= 0 {
		return nil, fmt.Errorf("experiments: fig2c: bad sweep [%d,%d] step %d",
			cfg.MinSats, cfg.MaxSats, cfg.Step)
	}
	if cfg.Trials <= 0 || cfg.GridSize <= 0 {
		return nil, fmt.Errorf("experiments: fig2c: trials and grid must be positive")
	}
	res := &Fig2cResult{
		WorstCase: sim.Series{Name: "worst-case overlap rule"},
		Exact:     sim.Series{Name: "exact union"},
	}
	var points []int
	for n := cfg.MinSats; n <= cfg.MaxSats; n += cfg.Step {
		points = append(points, n)
	}
	type trialOut struct {
		wc, ex float64
	}
	outs, err := exec.Map(cfg.Workers, len(points)*cfg.Trials, func(i int) (trialOut, error) {
		n, trial := points[i/cfg.Trials], i%cfg.Trials
		rng := exec.RNG(cfg.Seed, int64(n), int64(trial))
		c := orbit.RandomCircular(n, cfg.AltitudeKm, rng)
		caps := c.Footprints(0, cfg.MinElevationDeg)
		return trialOut{
			wc: geo.WorstCaseCoverageFraction(caps),
			ex: geo.ExactCoverageFraction(caps, cfg.GridSize),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, n := range points {
		var wc, ex sim.Histogram
		for trial := 0; trial < cfg.Trials; trial++ {
			out := outs[pi*cfg.Trials+trial]
			wc.Add(out.wc)
			ex.Add(out.ex)
		}
		res.WorstCase.Append(float64(n), wc.Mean(), wc.Stddev())
		res.Exact.Append(float64(n), ex.Mean(), ex.Stddev())
	}
	return res, nil
}

// FullCoverageAt returns the smallest swept N whose mean worst-case
// coverage reaches the threshold, or 0 if never reached.
func (r *Fig2cResult) FullCoverageAt(threshold float64) int {
	for _, p := range r.WorstCase.Points {
		if p.Y >= threshold {
			return int(p.X)
		}
	}
	return 0
}

// CSV writes both series.
func (r *Fig2cResult) CSV(w io.Writer) error {
	exact := map[float64]sim.Point{}
	for _, p := range r.Exact.Points {
		exact[p.X] = p
	}
	var rows [][]string
	for _, p := range r.WorstCase.Points {
		e := exact[p.X]
		rows = append(rows, []string{f(p.X), f(p.Y), f(p.YErr), f(e.Y), f(e.YErr)})
	}
	return WriteCSV(w, []string{"satellites", "coverage_worstcase", "coverage_worstcase_stddev",
		"coverage_exact", "coverage_exact_stddev"}, rows)
}

// Render draws the figure as ASCII.
func (r *Fig2cResult) Render(w io.Writer) error {
	return RenderSeries(w, "Figure 2(c): Earth coverage vs constellation size",
		"satellites", "coverage fraction",
		[]*sim.Series{&r.WorstCase, &r.Exact}, 60, 16)
}
