package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
)

// AvailabilityConfig parameterises E15: sweep the fault intensity knob and
// measure what the recovery machinery (precomputed disjoint backups with
// fast reroute, recompute fallback) salvages — per-flow availability, time
// to recover, and how much of the repair work the fast path absorbs. This
// quantifies the paper's §4 redundancy claim as a service-level number
// instead of a connectivity count (E12's static view).
type AvailabilityConfig struct {
	// Intensities are the fault-rate multipliers to sweep; 0 means no
	// faults (the control point — availability must be exactly 1).
	Intensities []float64
	// HorizonS is the simulated span per trial.
	HorizonS float64
	// Trials per intensity, each with an independent fault timeline.
	Trials int
	// Faults is the base fault environment; its Seed is re-derived per
	// (intensity, trial) task, so the field's own value is ignored.
	Faults faults.Config
	// Recovery is the repair machinery configuration.
	Recovery faults.RecoveryConfig
	Seed     int64
	Workers  int // parallel trial workers; ≤0 = one per CPU
	// GridSats switches the constellation from the Iridium reference
	// (the default, 0) to an as-square Walker Delta of that size with
	// explicit +Grid laser ISL wiring — the mega-constellation variant,
	// where the fault surface (satellites and planned links) scales
	// linearly with the fleet.
	GridSats           int
	GridAltitudeKm     float64
	GridInclinationDeg float64
}

// DefaultAvailability sweeps 0–8× the reference fault rates over six-hour
// trials.
func DefaultAvailability() AvailabilityConfig {
	return AvailabilityConfig{
		Intensities: []float64{0, 0.5, 1, 2, 4, 8},
		HorizonS:    6 * 3600,
		Trials:      5,
		Faults:      faults.Default(),
		Recovery:    faults.DefaultRecovery(),
		Seed:        23,
	}
}

// DefaultAvailabilityScale is the mega-constellation variant of E15:
// protected flows riding out fault timelines on a 4 000-satellite
// Walker-Delta +Grid. Intensities and trials are trimmed — the fault
// population is ~60× Iridium's, so each cell already aggregates far more
// events than the reference sweep.
func DefaultAvailabilityScale() AvailabilityConfig {
	cfg := DefaultAvailability()
	cfg.GridSats = 4000
	cfg.GridAltitudeKm = 550
	cfg.GridInclinationDeg = 53
	cfg.Intensities = []float64{0, 1, 4}
	cfg.Trials = 2
	cfg.HorizonS = 3600
	cfg.Seed = 29
	return cfg
}

// AvailabilityRow is one swept intensity's aggregated outcome.
type AvailabilityRow struct {
	Intensity       float64
	Availability    float64 // mean over flows and trials
	AvailabilityMin float64 // worst single flow
	Interruptions   float64 // mean interruptions per flow
	DowntimeS       float64 // mean downtime per flow
	MTTRS           float64 // mean time-to-recover over all recoveries
	RecoveryP50Ms   float64 // median recovery latency
	RecoveryP95Ms   float64 // tail recovery latency
	FRRFraction     float64 // recoveries served by a precomputed backup
	FaultEvents     float64 // mean fault transitions per trial
}

// AvailabilityResult carries the E15 curves.
type AvailabilityResult struct {
	Availability sim.Series // intensity vs mean availability
	MTTR         sim.Series // intensity vs mean time-to-recover (s)
	Rows         []AvailabilityRow
}

// Availability runs E15 over the E12 user/gateway pairs on the full Iridium
// constellation: six protected flows ride out generated fault timelines of
// increasing intensity.
func Availability(cfg AvailabilityConfig) (*AvailabilityResult, error) {
	if len(cfg.Intensities) == 0 || cfg.HorizonS <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: availability: bad config")
	}
	tcfg := topo.DefaultConfig()
	tcfg.MinElevationDeg = 0 // isolate fault dynamics from access scarcity
	var c *orbit.Constellation
	allLaser := false
	if cfg.GridSats > 0 {
		w, err := orbit.SquareWalkerDelta(cfg.GridSats, cfg.GridAltitudeKm, cfg.GridInclinationDeg)
		if err != nil {
			return nil, err
		}
		if c, err = w.Build(); err != nil {
			return nil, err
		}
		if tcfg.StaticISLs, err = w.GridISLs(w.DefaultGrid()); err != nil {
			return nil, err
		}
		allLaser = true
	} else {
		var err error
		if c, err = orbit.Iridium().Build(); err != nil {
			return nil, err
		}
	}
	users := []topo.UserSpec{
		{ID: "u0", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}},
		{ID: "u1", Provider: "p", Pos: geo.LatLon{Lat: 40.44, Lon: -79.99}},
		{ID: "u2", Provider: "p", Pos: geo.LatLon{Lat: -33.87, Lon: 151.21}},
	}
	grounds := []topo.GroundSpec{
		{ID: "g0", Provider: "p", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}},
		{ID: "g1", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}},
	}
	var specs []faults.FlowSpec
	for _, u := range users {
		for _, g := range grounds {
			specs = append(specs, faults.FlowSpec{ID: u.ID + "-" + g.ID, Src: u.ID, Dst: g.ID})
		}
	}
	sats := make([]topo.SatSpec, 0, c.Len())
	for _, s := range c.Satellites {
		sats = append(sats, topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements, HasLaser: allLaser})
	}
	snap := topo.Build(0, tcfg, sats, grounds, users)
	in := faults.InputsFromSnapshot(snap)

	// One task per (intensity, trial): the fault timeline seeds from the
	// task coordinates, so the sweep is bitwise identical at any worker
	// count.
	type trialOut struct {
		avail       []float64
		interrupts  int
		downtimeS   float64
		recoveryS   []float64
		reroutes    int
		flows       int
		transitions int
	}
	outs, err := exec.Map(cfg.Workers, len(cfg.Intensities)*cfg.Trials, func(i int) (trialOut, error) {
		ii, trial := i/cfg.Trials, i%cfg.Trials
		fcfg := cfg.Faults
		fcfg.Seed = exec.Seed(cfg.Seed, int64(ii), int64(trial))
		fcfg = fcfg.Scale(cfg.Intensities[ii])
		tl, err := faults.Generate(fcfg, cfg.HorizonS, in)
		if err != nil {
			return trialOut{}, err
		}
		rr, err := faults.RunFlows(snap, specs, tl, cfg.Recovery, routing.LatencyCost(0))
		if err != nil {
			return trialOut{}, err
		}
		out := trialOut{transitions: rr.FaultTransitions}
		for _, f := range rr.Flows {
			if f.NoPath {
				continue
			}
			out.flows++
			out.avail = append(out.avail, f.Avail.Availability(rr.HorizonS))
			out.interrupts += f.Avail.Interruptions
			out.downtimeS += f.Avail.DowntimeS
			out.recoveryS = append(out.recoveryS, f.Avail.RecoveryS.Samples()...)
			out.reroutes += f.Avail.Reroutes
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	res := &AvailabilityResult{
		Availability: sim.Series{Name: "mean availability"},
		MTTR:         sim.Series{Name: "mean time to recover (s)"},
	}
	for ii, intensity := range cfg.Intensities {
		var avail, recov sim.Histogram
		row := AvailabilityRow{Intensity: intensity}
		flows, transitions := 0, 0
		for trial := 0; trial < cfg.Trials; trial++ {
			out := outs[ii*cfg.Trials+trial]
			for _, v := range out.avail {
				avail.Add(v)
			}
			for _, v := range out.recoveryS {
				recov.Add(v)
			}
			row.Interruptions += float64(out.interrupts)
			row.DowntimeS += out.downtimeS
			row.FRRFraction += float64(out.reroutes)
			flows += out.flows
			transitions += out.transitions
		}
		if flows > 0 {
			row.Interruptions /= float64(flows)
			row.DowntimeS /= float64(flows)
		}
		if recov.Count() > 0 {
			row.FRRFraction /= float64(recov.Count())
		} else {
			row.FRRFraction = 0
		}
		row.Availability = avail.Mean()
		row.AvailabilityMin = avail.Min()
		row.MTTRS = recov.Mean()
		row.RecoveryP50Ms = recov.Quantile(0.5) * 1000
		row.RecoveryP95Ms = recov.Quantile(0.95) * 1000
		row.FaultEvents = float64(transitions) / float64(cfg.Trials)
		res.Rows = append(res.Rows, row)
		res.Availability.Append(intensity, row.Availability, avail.Stddev())
		res.MTTR.Append(intensity, row.MTTRS, recov.Stddev())
	}
	return res, nil
}

// CSV writes the availability sweep.
func (r *AvailabilityResult) CSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f(row.Intensity), f(row.Availability), f(row.AvailabilityMin),
			f(row.Interruptions), f(row.DowntimeS), f(row.MTTRS),
			f(row.RecoveryP50Ms), f(row.RecoveryP95Ms),
			f(row.FRRFraction), f(row.FaultEvents),
		})
	}
	return WriteCSV(w, []string{"intensity", "availability_mean", "availability_min",
		"interruptions_per_flow", "downtime_s_per_flow", "mttr_s_mean",
		"recovery_ms_p50", "recovery_ms_p95", "frr_fraction", "fault_events_mean"}, rows)
}

// Render draws the availability curve and summarises the repair behaviour.
func (r *AvailabilityResult) Render(w io.Writer) error {
	if err := RenderSeries(w, "E15: availability vs fault intensity — Iridium, protected flows",
		"fault intensity (× reference rates)", "availability",
		[]*sim.Series{&r.Availability}, 60, 12); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w,
			"  ×%-4.3g avail %.6f  mttr %6.2fs  p95 %7.1fms  frr %4.0f%%  events %.1f\n",
			row.Intensity, row.Availability, row.MTTRS, row.RecoveryP95Ms,
			row.FRRFraction*100, row.FaultEvents); err != nil {
			return err
		}
	}
	return nil
}
