package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/sim"
)

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCSV(&buf, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,4\n"
	if buf.String() != want {
		t.Errorf("csv = %q, want %q", buf.String(), want)
	}
}

func TestRenderSeries(t *testing.T) {
	s := &sim.Series{Name: "test"}
	s.Append(0, 0, 0)
	s.Append(10, 100, 0)
	var buf bytes.Buffer
	if err := RenderSeries(&buf, "title", "x", "y", []*sim.Series{s}, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "*") {
		t.Errorf("render missing content:\n%s", out)
	}
	// Empty series renders a placeholder, not a panic.
	buf.Reset()
	if err := RenderSeries(&buf, "empty", "x", "y", nil, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty render should say no data")
	}
}

func TestFig2a(t *testing.T) {
	r, err := Fig2a(4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SubSatPoints) != 66 {
		t.Fatalf("sub-satellite points = %d", len(r.SubSatPoints))
	}
	// The reference constellation achieves (near-)global coverage — the
	// figure's caption.
	if r.CoverageExact < 0.97 {
		t.Errorf("coverage = %v, want ≥0.97", r.CoverageExact)
	}
	// Intra-plane ISLs are sustained (constant distance) and short enough
	// for the standard S-band terminal.
	if r.IntraPlaneKm <= 0 || r.IntraPlaneKm > 5400 {
		t.Errorf("intra-plane distance = %v km", r.IntraPlaneKm)
	}
	if r.ISLCount == 0 {
		t.Error("no ISLs in reference constellation")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "@") {
		t.Error("render missing satellites")
	}
	buf.Reset()
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 67 {
		t.Errorf("csv lines = %d, want 67", lines)
	}
}

func TestFig2bShapeMatchesPaper(t *testing.T) {
	cfg := DefaultFig2b()
	// Keep the test fast; the bench runs the full sweep.
	cfg.MaxSats = 80
	cfg.Step = 8
	cfg.Trials = 12
	r, err := Fig2b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Latency.Points) < 5 {
		t.Fatalf("too few latency points: %d", len(r.Latency.Points))
	}
	// Shape check 1: latency at small N far exceeds latency at large N
	// (the paper's steep drop before ~25 satellites).
	first := r.Latency.Points[0]
	last := r.Latency.Points[len(r.Latency.Points)-1]
	if first.Y <= last.Y {
		t.Errorf("latency did not fall: %v ms at N=%v vs %v ms at N=%v",
			first.Y, first.X, last.Y, last.X)
	}
	// Shape check 2: the flattened latency is tens of milliseconds, not
	// seconds and not microseconds (paper: ~30 ms).
	if last.Y < 5 || last.Y > 120 {
		t.Errorf("flattened latency %v ms outside plausible band", last.Y)
	}
	// Shape check 3: path fraction grows with N, tiny at N=1.
	pf := r.PathFraction.Points
	if pf[0].Y > 0.3 {
		t.Errorf("single satellite path fraction %v; should be rare", pf[0].Y)
	}
	if pf[len(pf)-1].Y < 0.8 {
		t.Errorf("large-N path fraction %v; should be common", pf[len(pf)-1].Y)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Config validation.
	if _, err := Fig2b(Fig2bConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestFig2cShapeMatchesPaper(t *testing.T) {
	cfg := DefaultFig2c()
	cfg.MaxSats = 80
	cfg.Step = 8
	cfg.Trials = 10
	cfg.GridSize = 2000
	r, err := Fig2c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Coverage grows monotonically (within noise) and the worst-case rule
	// reaches total coverage in the tens of satellites (paper: ~50).
	n := r.FullCoverageAt(0.99)
	if n == 0 {
		t.Fatal("worst-case coverage never reached 99%")
	}
	if n < 25 || n > 80 {
		t.Errorf("full coverage at %d satellites; paper reports ~50", n)
	}
	// The worst-case rule is more conservative than the exact union at
	// moderate N (before both saturate).
	for i, p := range r.WorstCase.Points {
		e := r.Exact.Points[i]
		if p.X < 30 && p.Y > e.Y+0.1 {
			t.Errorf("worst case %v far above exact %v at N=%v", p.Y, e.Y, p.X)
		}
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Fig2c(Fig2cConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestFederationShape(t *testing.T) {
	cfg := DefaultFederation()
	cfg.MaxPerFleet = 12
	cfg.Step = 4
	cfg.GridSize = 2000
	r, err := Federation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Union coverage strictly dominates the best solo at every point.
	for i, p := range r.Union.Points {
		if p.Y <= r.BestSolo.Points[i].Y {
			t.Errorf("union %v not above solo %v at m=%v", p.Y, r.BestSolo.Points[i].Y, p.X)
		}
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Federation(FederationConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestHotspotScenario(t *testing.T) {
	cfg := DefaultFederation()
	cfg.MaxPerFleet = 8
	solo, fed, err := HotspotScenario(cfg, geo.LatLon{Lat: 7.1, Lon: 125.6}, 200)
	if err != nil {
		t.Fatal(err)
	}
	if fed < solo {
		t.Errorf("federated availability %v below solo %v", fed, solo)
	}
	if fed <= 0 || fed > 1 || solo < 0 || solo > 1 {
		t.Errorf("availability out of range: solo=%v fed=%v", solo, fed)
	}
	if _, _, err := HotspotScenario(cfg, geo.LatLon{}, 0); err == nil {
		t.Error("zero samples should fail")
	}
}

func TestHandoverExperimentShape(t *testing.T) {
	cfg := DefaultHandover()
	cfg.HorizonS = 1800
	r, err := HandoverExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpeedupFactor() < 10 {
		t.Errorf("predictive speedup %vx; expected a large factor", r.SpeedupFactor())
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := HandoverExperiment(HandoverConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestMACExperimentShape(t *testing.T) {
	cfg := DefaultMAC()
	cfg.MaxStations = 16
	cfg.Step = 7
	r, err := MACExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// CSMA delay exceeds TDMA delay at the top of the sweep (the cited
	// overhead claim).
	lastC := r.CSMADelay.Points[len(r.CSMADelay.Points)-1]
	lastT := r.TDMADelay.Points[len(r.TDMADelay.Points)-1]
	if lastC.Y <= lastT.Y {
		t.Errorf("CSMA delay %v ≤ TDMA %v at high contention", lastC.Y, lastT.Y)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := MACExperiment(MACConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestEconExperiment(t *testing.T) {
	cfg := DefaultEcon()
	cfg.Transfers = 60
	r, err := EconExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Transfers == 0 {
		t.Fatal("nothing delivered")
	}
	if r.Discrepancies != 0 {
		t.Errorf("honest federation has %d ledger discrepancies", r.Discrepancies)
	}
	if len(r.Invoices) == 0 {
		t.Error("no invoices despite cross-provider traffic")
	}
	// Balances sum to ~0 (every invoice moves money between members).
	var sum float64
	for _, b := range r.Balances {
		sum += b
	}
	if sum > 1e-6 || sum < -1e-6 {
		t.Errorf("balances sum to %v", sum)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := EconExperiment(EconConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestLinksExperiment(t *testing.T) {
	r, err := LinksExperiment(DefaultLinkDistances())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 15 { // 3 techs × 5 distances
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// At 2000 km: laser capacity ≫ s-band ≫ uhf, laser energy/bit lowest.
	var uhf, sband, laser LinkRow
	for _, row := range r.Rows {
		if row.DistanceKm != 2000 {
			continue
		}
		switch row.Tech {
		case "uhf":
			uhf = row
		case "s-band":
			sband = row
		case "laser":
			laser = row
		}
	}
	if !(laser.CapacityBps > sband.CapacityBps && sband.CapacityBps > uhf.CapacityBps) {
		t.Errorf("capacity ordering broken: %v %v %v",
			uhf.CapacityBps, sband.CapacityBps, laser.CapacityBps)
	}
	if laser.EnergyPerBitJ >= uhf.EnergyPerBitJ {
		t.Errorf("laser J/bit %v not below uhf %v", laser.EnergyPerBitJ, uhf.EnergyPerBitJ)
	}
	if laser.CostUSD <= sband.CostUSD {
		t.Error("laser must cost more")
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LinksExperiment(nil); err == nil {
		t.Error("no distances should fail")
	}
}

func TestCriticalMassShape(t *testing.T) {
	cfg := DefaultCriticalMass()
	cfg.ProviderCounts = []int{1, 3}
	cfg.MaxSats = 40
	cfg.Step = 12
	cfg.Trials = 4
	r, err := CriticalMass(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Curves) != 2 {
		t.Fatalf("curves = %d", len(r.Curves))
	}
	for _, c := range r.Curves {
		first := c.Points[0].Y
		last := c.Points[len(c.Points)-1].Y
		if last <= first {
			t.Errorf("%s: connectivity did not grow (%v → %v)", c.Name, first, last)
		}
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := CriticalMass(CriticalMassConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestIncentivesExperiment(t *testing.T) {
	r, err := IncentivesExperiment(DefaultIncentives())
	if err != nil {
		t.Fatal(err)
	}
	if r.FederatedAvail < r.SoloAvail {
		t.Errorf("federation reduced availability: %v → %v", r.SoloAvail, r.FederatedAvail)
	}
	if r.FederatedAvail <= 0 || r.FederatedAvail > 1 {
		t.Errorf("availability out of range: %v", r.FederatedAvail)
	}
	// A 50k-user incumbent gaining availability should see a positive
	// membership case (the coverage dividend dominates settlement noise).
	if r.Report.NetBenefitUSD <= 0 {
		t.Errorf("expected positive membership case: %+v", r.Report)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "JOIN") {
		t.Error("render should include the verdict")
	}
	if _, err := IncentivesExperiment(IncentivesConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestRoutingAblation(t *testing.T) {
	r, err := RoutingAblation(DefaultRoutingAblation())
	if err != nil {
		t.Fatal(err)
	}
	// The load is sized to overload the proactive regime.
	if r.ProactiveOverloadedEdges == 0 {
		t.Error("proactive regime should overload some edges at this load")
	}
	// On-demand never oversubscribes a link.
	if r.OnDemandMaxUtilization > 1+1e-9 {
		t.Errorf("on-demand max utilization %v exceeds 1", r.OnDemandMaxUtilization)
	}
	if r.OnDemandAdmitted == 0 {
		t.Error("on-demand admitted nothing")
	}
	// The price of congestion awareness: equal or longer paths.
	if r.OnDemandMeanDelayMs+1e-9 < r.ProactiveMeanDelayMs {
		t.Errorf("on-demand delay %v below proactive %v; detours expected",
			r.OnDemandMeanDelayMs, r.ProactiveMeanDelayMs)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := RoutingAblation(RoutingAblationConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestDTNExperiment(t *testing.T) {
	cfg := DefaultDTN()
	cfg.FleetSizes = []int{3, 12}
	cfg.Trials = 4
	cfg.HorizonS = 4 * 3600
	cfg.IntervalS = 180
	r, err := DTNExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Store-and-forward deliverability dominates instant connectivity at
	// every fleet size (a superset by construction).
	sf := map[float64]float64{}
	for _, p := range r.StoreForward.Points {
		sf[p.X] = p.Y
	}
	for _, p := range r.Synchronous.Points {
		if sf[p.X] < p.Y {
			t.Errorf("fleet %v: storeforward %v below instant %v", p.X, sf[p.X], p.Y)
		}
	}
	// A tiny fleet should have little instant connectivity but real
	// store-and-forward service — the experiment's point.
	if r.Synchronous.Points[0].Y > 0.5 {
		t.Errorf("3 satellites instantly connected %v of trials; too benign", r.Synchronous.Points[0].Y)
	}
	if sf[3] == 0 {
		t.Log("note: no s&f delivery at fleet 3 within the shortened test horizon")
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := DTNExperiment(DTNConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestResilienceShape(t *testing.T) {
	cfg := DefaultResilience()
	cfg.MaxFailures = 32
	cfg.Step = 16
	cfg.Trials = 3
	r, err := Resilience(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Intact constellation connects everything; connectivity degrades
	// monotonically-ish with failures.
	first := r.Connectivity.Points[0]
	last := r.Connectivity.Points[len(r.Connectivity.Points)-1]
	if first.X != 0 || first.Y < 0.99 {
		t.Errorf("intact connectivity = %+v, want 1.0 at k=0", first)
	}
	if last.Y > first.Y {
		t.Errorf("connectivity rose with failures: %v → %v", first.Y, last.Y)
	}
	// Redundancy: multiple disjoint paths exist when intact.
	if len(r.DisjointPaths.Points) == 0 || r.DisjointPaths.Points[0].Y < 2 {
		t.Errorf("intact mesh should offer ≥2 disjoint paths: %+v", r.DisjointPaths.Points)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Resilience(ResilienceConfig{Step: 0}); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := Resilience(ResilienceConfig{MaxFailures: 100, Step: 1, Trials: 1}); err == nil {
		t.Error("failing the whole fleet should be rejected")
	}
	// Step beyond the sweep range used to silently yield a single k=0 point.
	if _, err := Resilience(ResilienceConfig{MaxFailures: 8, Step: 9, Trials: 1}); err == nil {
		t.Error("step > max failures should be rejected, not degrade to one point")
	}
}

func TestAvailabilitySweep(t *testing.T) {
	cfg := DefaultAvailability()
	cfg.Intensities = []float64{0, 2}
	cfg.Trials = 2
	cfg.HorizonS = 1800
	r, err := Availability(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d, want one per intensity", len(r.Rows))
	}
	// The control point: no faults, availability exactly 1 for every flow.
	zero := r.Rows[0]
	if zero.Availability != 1 || zero.AvailabilityMin != 1 ||
		zero.Interruptions != 0 || zero.FaultEvents != 0 {
		t.Errorf("intensity 0 must be a perfect control point: %+v", zero)
	}
	// Faults cost availability.
	faulty := r.Rows[1]
	if faulty.FaultEvents == 0 {
		t.Fatal("2× fault rates over 30 min generated no events")
	}
	if faulty.Availability >= 1 || faulty.Availability <= 0 {
		t.Errorf("faulty availability = %v, want in (0,1)", faulty.Availability)
	}
	if faulty.Availability > zero.Availability {
		t.Error("availability rose with fault intensity")
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")); got != 3 {
		t.Errorf("CSV lines = %d, want header + 2 rows", got)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Availability(AvailabilityConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}

func TestSpectrumExperiment(t *testing.T) {
	r, err := SpectrumExperiment(DefaultSpectrum())
	if err != nil {
		t.Fatal(err)
	}
	// Channel demand grows (weakly) with shared stations.
	first := r.ChannelsUsed.Points[0]
	last := r.ChannelsUsed.Points[len(r.ChannelsUsed.Points)-1]
	if last.Y < first.Y {
		t.Errorf("channel demand fell with more stations: %v → %v", first.Y, last.Y)
	}
	if first.Y < 1 {
		t.Errorf("one station still needs ≥1 channel: %v", first.Y)
	}
	// Conflicts grow with stations.
	if r.Conflicts.Points[len(r.Conflicts.Points)-1].Y < r.Conflicts.Points[0].Y {
		t.Error("conflicts fell with more stations")
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := SpectrumExperiment(SpectrumConfig{}); err == nil {
		t.Error("zero config should fail")
	}
	if _, err := SpectrumExperiment(SpectrumConfig{StationCounts: []int{999}, ChannelBudget: 1}); err == nil {
		t.Error("too many stations should fail")
	}
}
