package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/handover"
	"github.com/openspace-project/openspace/internal/orbit"
)

// HandoverConfig parameterises E5: predictive vs re-association handover
// for a fixed user under the Iridium reference constellation split across
// providers.
type HandoverConfig struct {
	Providers       int
	User            geo.LatLon
	MinElevationDeg float64
	HorizonS        float64
	Predictive      handover.PredictiveCosts
	Reauth          handover.ReauthCosts
	Workers         int // parallel scheme workers; ≤0 = one per CPU
}

// DefaultHandover observes a Pittsburgh user for one hour.
func DefaultHandover() HandoverConfig {
	return HandoverConfig{
		Providers:       3,
		User:            geo.LatLon{Lat: 40.44, Lon: -79.99},
		MinElevationDeg: 10,
		HorizonS:        3600,
		Predictive:      handover.DefaultPredictiveCosts(),
		Reauth:          handover.DefaultReauthCosts(),
	}
}

// HandoverResult compares the two schemes.
type HandoverResult struct {
	Predictive *handover.Timeline
	Reauth     *handover.Timeline
}

// SpeedupFactor returns reauth interruption / predictive interruption.
func (r *HandoverResult) SpeedupFactor() float64 {
	if r.Predictive.TotalInterruptionS == 0 {
		return 0
	}
	return r.Reauth.TotalInterruptionS / r.Predictive.TotalInterruptionS
}

// HandoverExperiment runs E5.
func HandoverExperiment(cfg HandoverConfig) (*HandoverResult, error) {
	if cfg.Providers <= 0 {
		return nil, fmt.Errorf("experiments: handover: providers must be positive")
	}
	c, err := orbit.Iridium().Build()
	if err != nil {
		return nil, err
	}
	sats := make([]handover.Sat, c.Len())
	for i, s := range c.Satellites {
		sats[i] = handover.Sat{
			ID:       s.ID,
			Provider: fmt.Sprintf("prov-%d", i%cfg.Providers),
			Elements: s.Elements,
		}
	}
	p, err := handover.NewPredictor(sats, cfg.User, cfg.MinElevationDeg)
	if err != nil {
		return nil, err
	}
	// The two schemes replay the same sky independently (the predictor is
	// immutable after construction), so they run as parallel tasks.
	timelines, err := exec.Map(cfg.Workers, 2, func(i int) (*handover.Timeline, error) {
		if i == 0 {
			return p.SimulatePredictive(0, cfg.HorizonS, cfg.Predictive)
		}
		return p.SimulateReauth(0, cfg.HorizonS, cfg.Reauth)
	})
	if err != nil {
		return nil, err
	}
	return &HandoverResult{Predictive: timelines[0], Reauth: timelines[1]}, nil
}

// CSV writes the per-scheme summary.
func (r *HandoverResult) CSV(w io.Writer) error {
	rows := [][]string{
		{"predictive", d(r.Predictive.HandoverCount), f(r.Predictive.TotalInterruptionS),
			d(r.Predictive.CrossProviderCount), f(r.Predictive.OutageS)},
		{"reauth", d(r.Reauth.HandoverCount), f(r.Reauth.TotalInterruptionS),
			d(r.Reauth.CrossProviderCount), f(r.Reauth.OutageS)},
	}
	return WriteCSV(w, []string{"scheme", "handovers", "total_interruption_s",
		"cross_provider", "outage_s"}, rows)
}

// Render prints the comparison table.
func (r *HandoverResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "E5: handover schemes over 1 h (Iridium, 3 providers)")
	fmt.Fprintf(w, "  %-11s %9s %22s %15s\n", "scheme", "handovers", "total interruption (s)", "cross-provider")
	fmt.Fprintf(w, "  %-11s %9d %22.2f %15d\n", "predictive",
		r.Predictive.HandoverCount, r.Predictive.TotalInterruptionS, r.Predictive.CrossProviderCount)
	fmt.Fprintf(w, "  %-11s %9d %22.2f %15d\n", "reauth",
		r.Reauth.HandoverCount, r.Reauth.TotalInterruptionS, r.Reauth.CrossProviderCount)
	_, err := fmt.Fprintf(w, "  predictive handover cuts interruption by %.0fx\n", r.SpeedupFactor())
	return err
}
