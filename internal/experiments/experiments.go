// Package experiments regenerates every figure of the paper's evaluation
// (§4) plus the extension experiments DESIGN.md indexes (E4–E9). Each
// experiment is a pure function of its config (seeded randomness), returns
// typed results, and can render itself as CSV for plotting or as ASCII for
// terminal inspection. The cmd/openspace-bench binary and the repository's
// bench_test.go both drive these entry points.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/openspace-project/openspace/internal/sim"
)

// WriteCSV writes a header and rows in RFC-4180-enough CSV (no quoting
// needed: all emitted fields are numeric or simple identifiers).
func WriteCSV(w io.Writer, header []string, rows [][]string) error {
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, strings.Join(r, ",")); err != nil {
			return err
		}
	}
	return nil
}

// RenderSeries draws one or more series as an ASCII chart, each series with
// its own glyph, sharing axes. Intended for quick terminal inspection of
// the figures; CSV output is the plotting path.
func RenderSeries(w io.Writer, title, xLabel, yLabel string, series []*sim.Series, width, height int) error {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for _, p := range s.Points {
			any = true
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
		}
	}
	if !any {
		_, err := fmt.Fprintf(w, "%s: (no data)\n", title)
		return err
	}
	if maxX == minX { //lint:allow floateq degenerate-range guard wants exact collapse, not closeness
		maxX = minX + 1
	}
	if maxY == minY { //lint:allow floateq degenerate-range guard wants exact collapse, not closeness
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	glyphs := []byte{'*', 'o', '+', 'x', '#'}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for _, p := range s.Points {
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for i, line := range grid {
		label := "        "
		if i == 0 {
			label = fmt.Sprintf("%8.3g", maxY)
		} else if i == height-1 {
			label = fmt.Sprintf("%8.3g", minY)
		}
		if _, err := fmt.Fprintf(w, "%s |%s|\n", label, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%9s%-*.3g%*.3g  (%s vs %s)\n",
		"", width/2, minX, width/2, maxX, yLabel, xLabel); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "%9s%c = %s\n", "", glyphs[si%len(glyphs)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

// f converts a float to a compact CSV field.
func f(v float64) string { return fmt.Sprintf("%.6g", v) }

// d converts an int to a CSV field.
func d(v int) string { return fmt.Sprintf("%d", v) }
