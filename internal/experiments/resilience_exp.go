package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
)

// ResilienceConfig parameterises E12: the §4 redundancy claim — "additional
// satellites ensure redundancy, such that operational failures, load
// balancing, and range cutoffs … can be handled efficiently". We kill
// random satellites from the reference constellation and measure what
// survives.
type ResilienceConfig struct {
	MaxFailures int
	Step        int
	Trials      int
	Seed        int64
	Workers     int // parallel trial workers; ≤0 = one per CPU
}

// DefaultResilience kills up to 40 of Iridium's 66 satellites.
func DefaultResilience() ResilienceConfig {
	return ResilienceConfig{MaxFailures: 40, Step: 4, Trials: 10, Seed: 13}
}

// ResilienceResult carries the degradation curves for a set of user↔gateway
// pairs.
type ResilienceResult struct {
	Connectivity  sim.Series // failures vs fraction of pairs still connected
	LatencyMs     sim.Series // failures vs mean latency of surviving paths
	DisjointPaths sim.Series // failures vs mean edge-disjoint path count
}

// Resilience runs E12 over three user/gateway pairs.
func Resilience(cfg ResilienceConfig) (*ResilienceResult, error) {
	if cfg.MaxFailures < 0 || cfg.Step <= 0 || cfg.Trials <= 0 {
		return nil, fmt.Errorf("experiments: resilience: bad config")
	}
	if cfg.MaxFailures > 0 && cfg.Step > cfg.MaxFailures {
		// A step beyond the sweep range would silently produce a single
		// k=0 data point — reject it as a misconfiguration instead.
		return nil, fmt.Errorf("experiments: resilience: step %d exceeds max failures %d (sweep would have one point)",
			cfg.Step, cfg.MaxFailures)
	}
	c, err := orbit.Iridium().Build()
	if err != nil {
		return nil, err
	}
	if cfg.MaxFailures >= c.Len() {
		return nil, fmt.Errorf("experiments: resilience: cannot fail %d of %d satellites",
			cfg.MaxFailures, c.Len())
	}
	users := []topo.UserSpec{
		{ID: "u0", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}},
		{ID: "u1", Provider: "p", Pos: geo.LatLon{Lat: 40.44, Lon: -79.99}},
		{ID: "u2", Provider: "p", Pos: geo.LatLon{Lat: -33.87, Lon: 151.21}},
	}
	grounds := []topo.GroundSpec{
		{ID: "g0", Provider: "p", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}},
		{ID: "g1", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}},
	}
	tcfg := topo.DefaultConfig()
	tcfg.MinElevationDeg = 0 // isolate ISL-mesh resilience from access scarcity

	res := &ResilienceResult{
		Connectivity:  sim.Series{Name: "pairs connected"},
		LatencyMs:     sim.Series{Name: "mean latency (ms)"},
		DisjointPaths: sim.Series{Name: "mean disjoint paths"},
	}
	var points []int
	for k := 0; k <= cfg.MaxFailures; k += cfg.Step {
		points = append(points, k)
	}
	// One task per (failure count, trial); the kill set comes from a
	// per-task RNG so the curves are bitwise identical at any worker count.
	type trialOut struct {
		connected, pairs int
		latMs            []float64
		disjoint         []float64
	}
	outs, err := exec.Map(cfg.Workers, len(points)*cfg.Trials, func(i int) (trialOut, error) {
		k, trial := points[i/cfg.Trials], i%cfg.Trials
		rng := exec.RNG(cfg.Seed, int64(k), int64(trial))
		// Kill k distinct satellites.
		alive := rng.Perm(c.Len())[k:]
		sats := make([]topo.SatSpec, 0, len(alive))
		for _, idx := range alive {
			s := c.Satellites[idx]
			sats = append(sats, topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements})
		}
		snap := topo.Build(0, tcfg, sats, grounds, users)
		var out trialOut
		for _, u := range users {
			for _, g := range grounds {
				out.pairs++
				p, err := routing.ShortestPath(snap, u.ID, g.ID, routing.LatencyCost(0))
				if err != nil {
					continue
				}
				out.connected++
				out.latMs = append(out.latMs, p.DelayS*1000)
				if dp, err := routing.DisjointPaths(snap, u.ID, g.ID, routing.LatencyCost(0), 5); err == nil {
					out.disjoint = append(out.disjoint, float64(len(dp)))
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, k := range points {
		connected, pairs := 0, 0
		var lat, disj sim.Histogram
		for trial := 0; trial < cfg.Trials; trial++ {
			out := outs[pi*cfg.Trials+trial]
			connected += out.connected
			pairs += out.pairs
			for _, v := range out.latMs {
				lat.Add(v)
			}
			for _, v := range out.disjoint {
				disj.Add(v)
			}
		}
		x := float64(k)
		res.Connectivity.Append(x, float64(connected)/float64(pairs), 0)
		if lat.Count() > 0 {
			res.LatencyMs.Append(x, lat.Mean(), lat.Stddev())
			res.DisjointPaths.Append(x, disj.Mean(), 0)
		}
	}
	return res, nil
}

// CSV writes the degradation curves.
func (r *ResilienceResult) CSV(w io.Writer) error {
	lat := map[float64]sim.Point{}
	for _, p := range r.LatencyMs.Points {
		lat[p.X] = p
	}
	dis := map[float64]float64{}
	for _, p := range r.DisjointPaths.Points {
		dis[p.X] = p.Y
	}
	var rows [][]string
	for _, p := range r.Connectivity.Points {
		l := lat[p.X]
		rows = append(rows, []string{f(p.X), f(p.Y), f(l.Y), f(l.YErr), f(dis[p.X])})
	}
	return WriteCSV(w, []string{"failed_satellites", "connectivity",
		"latency_ms_mean", "latency_ms_stddev", "mean_disjoint_paths"}, rows)
}

// Render draws the connectivity curve.
func (r *ResilienceResult) Render(w io.Writer) error {
	if err := RenderSeries(w, "E12: failure resilience — killing Iridium satellites",
		"failed satellites", "user↔gateway connectivity",
		[]*sim.Series{&r.Connectivity}, 60, 12); err != nil {
		return err
	}
	last := r.DisjointPaths.Points
	if len(last) > 0 {
		_, err := fmt.Fprintf(w, "  disjoint paths: %.1f intact → %.1f at %0.f failures\n",
			r.DisjointPaths.Points[0].Y, last[len(last)-1].Y, last[len(last)-1].X)
		return err
	}
	return nil
}
