package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/campaign"
)

// DisruptionConfig parameterises E17: the disrupted-communications
// campaign. The scenario matrix (constellation preset × fault intensity
// × workload mix × routing policy) expands into supervised cells; every
// cell runs a full simulation under panic containment, a simulated-event
// budget, and bounded retry, and a failed cell degrades into a
// failure-manifest row instead of aborting the campaign.
type DisruptionConfig struct {
	Spec campaign.Spec
	// Workers bounds concurrent cells; ≤0 = one per CPU. The CSV is
	// byte-identical at any setting.
	Workers int
}

// DefaultDisruption is the committed 54-cell matrix.
func DefaultDisruption() DisruptionConfig {
	return DisruptionConfig{Spec: campaign.DefaultSpec()}
}

// DisruptionResult wraps the campaign outcome in the experiment shape.
type DisruptionResult struct {
	Out *campaign.Outcome
}

// Disruption runs E17 to completion. Per-cell failures live in the
// outcome's manifest, not in the returned error, which is reserved for
// campaign infrastructure.
func Disruption(cfg DisruptionConfig) (*DisruptionResult, error) {
	ccfg := campaign.DefaultConfig()
	ccfg.Workers = cfg.Workers
	out, err := campaign.Run(cfg.Spec, ccfg, campaign.CellRunner(cfg.Spec))
	if err != nil {
		return nil, fmt.Errorf("experiments: disruption-campaign: %w", err)
	}
	return &DisruptionResult{Out: out}, nil
}

// CSV writes the per-cell metric rows (successful cells only, matrix
// order) — the committed results/disruption-campaign.csv.
func (r *DisruptionResult) CSV(w io.Writer) error { return r.Out.WriteCSV(w) }

// Render prints one line per cell plus the failure manifest.
func (r *DisruptionResult) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Disruption campaign (E17): %d cells\n", len(r.Out.Cells)); err != nil {
		return err
	}
	for _, c := range r.Out.Cells {
		if c.Failed() {
			continue
		}
		if _, err := fmt.Fprintf(w, "%-40s attempts %d  %s\n", c.Cell.ID, c.Attempts, c.Fields); err != nil {
			return err
		}
	}
	fails := r.Out.Failures()
	if len(fails) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "failure manifest (%d cells):\n", len(fails)); err != nil {
		return err
	}
	return r.Out.WriteManifest(w)
}
