package experiments

import (
	"fmt"
	"io"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
)

// FederationConfig parameterises E4: k small providers, each with its own
// random fleet, comparing solo coverage against federated union coverage as
// fleets grow — §2's argument that "without meaningful collaboration, many
// smaller satellite networks would simply have coverage for a patchwork of
// regions around the globe rather than continuous global coverage".
type FederationConfig struct {
	Providers       int
	MinPerFleet     int
	MaxPerFleet     int
	Step            int
	AltitudeKm      float64
	MinElevationDeg float64
	GridSize        int
	Seed            int64
	Workers         int // parallel sweep-point workers; ≤0 = one per CPU
}

// DefaultFederation sweeps 3 providers from 2 to 24 satellites each.
func DefaultFederation() FederationConfig {
	return FederationConfig{
		Providers: 3, MinPerFleet: 2, MaxPerFleet: 24, Step: 2,
		AltitudeKm: 780, MinElevationDeg: 10, GridSize: 4000, Seed: 3,
	}
}

// FederationResult holds the coverage curves.
type FederationResult struct {
	BestSolo sim.Series // per-fleet size vs best single provider coverage
	Union    sim.Series // per-fleet size vs federated coverage
}

// Federation runs E4. Each swept fleet size is an independent task on the
// exec pool with its own RNG derived from (Seed, m), so the result is
// bitwise identical at any worker count.
func Federation(cfg FederationConfig) (*FederationResult, error) {
	if cfg.Providers <= 0 || cfg.MinPerFleet <= 0 || cfg.MaxPerFleet < cfg.MinPerFleet || cfg.Step <= 0 {
		return nil, fmt.Errorf("experiments: federation: bad sweep")
	}
	res := &FederationResult{
		BestSolo: sim.Series{Name: "best single provider"},
		Union:    sim.Series{Name: "federated union"},
	}
	var points []int
	for m := cfg.MinPerFleet; m <= cfg.MaxPerFleet; m += cfg.Step {
		points = append(points, m)
	}
	gains, err := exec.Map(cfg.Workers, len(points), func(i int) (*core.FederationGain, error) {
		m := points[i]
		rng := exec.RNG(cfg.Seed, int64(m))
		providers := make([]core.ProviderConfig, cfg.Providers)
		for p := 0; p < cfg.Providers; p++ {
			c := orbit.RandomCircular(m, cfg.AltitudeKm, rng)
			sats := make([]core.SatelliteConfig, c.Len())
			for i, s := range c.Satellites {
				sats[i] = core.SatelliteConfig{
					ID:       fmt.Sprintf("p%d-%s", p, s.ID),
					Elements: s.Elements,
				}
			}
			providers[p] = core.ProviderConfig{ID: fmt.Sprintf("prov-%d", p), Satellites: sats}
		}
		n, err := core.NewNetwork(core.NetworkConfig{Providers: providers, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		return n.FederationGain(0, cfg.GridSize)
	})
	if err != nil {
		return nil, err
	}
	for i, m := range points {
		res.BestSolo.Append(float64(m), gains[i].BestSolo, 0)
		res.Union.Append(float64(m), gains[i].Union, 0)
	}
	return res, nil
}

// CSV writes both curves.
func (r *FederationResult) CSV(w io.Writer) error {
	union := map[float64]float64{}
	for _, p := range r.Union.Points {
		union[p.X] = p.Y
	}
	var rows [][]string
	for _, p := range r.BestSolo.Points {
		rows = append(rows, []string{f(p.X), f(p.Y), f(union[p.X])})
	}
	return WriteCSV(w, []string{"sats_per_provider", "best_solo_coverage", "union_coverage"}, rows)
}

// Render draws the comparison.
func (r *FederationResult) Render(w io.Writer) error {
	return RenderSeries(w, "E4: solo vs federated coverage (3 providers)",
		"satellites per provider", "coverage fraction",
		[]*sim.Series{&r.BestSolo, &r.Union}, 60, 14)
}

// HotspotScenario quantifies the intro's motivating case: a disaster region
// where a hotspot of users depends on whatever satellites pass overhead.
// It returns the fraction of one day during which at least one satellite of
// (a) the best single provider and (b) the federation is visible.
func HotspotScenario(cfg FederationConfig, center geo.LatLon, samples int) (solo, federated float64, err error) {
	if samples <= 0 {
		return 0, 0, fmt.Errorf("experiments: hotspot: samples must be positive")
	}
	rng := exec.RNG(cfg.Seed)
	fleets := make([][]orbit.Satellite, cfg.Providers)
	for p := range fleets {
		fleets[p] = orbit.RandomCircular(cfg.MaxPerFleet, cfg.AltitudeKm, rng).Satellites
	}
	day := 86400.0
	visibleAt := func(sats []orbit.Satellite, t float64) bool {
		for _, s := range sats {
			if s.Elements.Visible(center, t, cfg.MinElevationDeg) {
				return true
			}
		}
		return false
	}
	// Each time sample is a pure visibility probe over the (now fixed)
	// fleets; fan them out on the exec pool. The federation sees a sample
	// iff any provider does — the union of the fleets.
	type sample struct {
		solo []bool
		fed  bool
	}
	outs, mapErr := exec.Map(cfg.Workers, samples, func(i int) (sample, error) {
		t := day * float64(i) / float64(samples)
		s := sample{solo: make([]bool, len(fleets))}
		for p, fl := range fleets {
			if visibleAt(fl, t) {
				s.solo[p] = true
				s.fed = true
			}
		}
		return s, nil
	})
	if mapErr != nil {
		return 0, 0, mapErr
	}
	soloHits := make([]int, cfg.Providers)
	fedHits := 0
	for _, s := range outs {
		for p, hit := range s.solo {
			if hit {
				soloHits[p]++
			}
		}
		if s.fed {
			fedHits++
		}
	}
	best := 0
	for _, h := range soloHits {
		if h > best {
			best = h
		}
	}
	return float64(best) / float64(samples), float64(fedHits) / float64(samples), nil
}
