package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
)

// FederationConfig parameterises E4: k small providers, each with its own
// random fleet, comparing solo coverage against federated union coverage as
// fleets grow — §2's argument that "without meaningful collaboration, many
// smaller satellite networks would simply have coverage for a patchwork of
// regions around the globe rather than continuous global coverage".
type FederationConfig struct {
	Providers       int
	MinPerFleet     int
	MaxPerFleet     int
	Step            int
	AltitudeKm      float64
	MinElevationDeg float64
	GridSize        int
	Seed            int64
}

// DefaultFederation sweeps 3 providers from 2 to 24 satellites each.
func DefaultFederation() FederationConfig {
	return FederationConfig{
		Providers: 3, MinPerFleet: 2, MaxPerFleet: 24, Step: 2,
		AltitudeKm: 780, MinElevationDeg: 10, GridSize: 4000, Seed: 3,
	}
}

// FederationResult holds the coverage curves.
type FederationResult struct {
	BestSolo sim.Series // per-fleet size vs best single provider coverage
	Union    sim.Series // per-fleet size vs federated coverage
}

// Federation runs E4.
func Federation(cfg FederationConfig) (*FederationResult, error) {
	if cfg.Providers <= 0 || cfg.MinPerFleet <= 0 || cfg.MaxPerFleet < cfg.MinPerFleet || cfg.Step <= 0 {
		return nil, fmt.Errorf("experiments: federation: bad sweep")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &FederationResult{
		BestSolo: sim.Series{Name: "best single provider"},
		Union:    sim.Series{Name: "federated union"},
	}
	for m := cfg.MinPerFleet; m <= cfg.MaxPerFleet; m += cfg.Step {
		providers := make([]core.ProviderConfig, cfg.Providers)
		for p := 0; p < cfg.Providers; p++ {
			c := orbit.RandomCircular(m, cfg.AltitudeKm, rng)
			sats := make([]core.SatelliteConfig, c.Len())
			for i, s := range c.Satellites {
				sats[i] = core.SatelliteConfig{
					ID:       fmt.Sprintf("p%d-%s", p, s.ID),
					Elements: s.Elements,
				}
			}
			providers[p] = core.ProviderConfig{ID: fmt.Sprintf("prov-%d", p), Satellites: sats}
		}
		n, err := core.NewNetwork(core.NetworkConfig{Providers: providers, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		g, err := n.FederationGain(0, cfg.GridSize)
		if err != nil {
			return nil, err
		}
		res.BestSolo.Append(float64(m), g.BestSolo, 0)
		res.Union.Append(float64(m), g.Union, 0)
	}
	return res, nil
}

// CSV writes both curves.
func (r *FederationResult) CSV(w io.Writer) error {
	union := map[float64]float64{}
	for _, p := range r.Union.Points {
		union[p.X] = p.Y
	}
	var rows [][]string
	for _, p := range r.BestSolo.Points {
		rows = append(rows, []string{f(p.X), f(p.Y), f(union[p.X])})
	}
	return WriteCSV(w, []string{"sats_per_provider", "best_solo_coverage", "union_coverage"}, rows)
}

// Render draws the comparison.
func (r *FederationResult) Render(w io.Writer) error {
	return RenderSeries(w, "E4: solo vs federated coverage (3 providers)",
		"satellites per provider", "coverage fraction",
		[]*sim.Series{&r.BestSolo, &r.Union}, 60, 14)
}

// HotspotScenario quantifies the intro's motivating case: a disaster region
// where a hotspot of users depends on whatever satellites pass overhead.
// It returns the fraction of one day during which at least one satellite of
// (a) the best single provider and (b) the federation is visible.
func HotspotScenario(cfg FederationConfig, center geo.LatLon, samples int) (solo, federated float64, err error) {
	if samples <= 0 {
		return 0, 0, fmt.Errorf("experiments: hotspot: samples must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	fleets := make([][]orbit.Satellite, cfg.Providers)
	for p := range fleets {
		fleets[p] = orbit.RandomCircular(cfg.MaxPerFleet, cfg.AltitudeKm, rng).Satellites
	}
	day := 86400.0
	visibleAt := func(sats []orbit.Satellite, t float64) bool {
		for _, s := range sats {
			if s.Elements.Visible(center, t, cfg.MinElevationDeg) {
				return true
			}
		}
		return false
	}
	var all []orbit.Satellite
	for _, f := range fleets {
		all = append(all, f...)
	}
	soloHits := make([]int, cfg.Providers)
	fedHits := 0
	for i := 0; i < samples; i++ {
		t := day * float64(i) / float64(samples)
		for p, fl := range fleets {
			if visibleAt(fl, t) {
				soloHits[p]++
			}
		}
		if visibleAt(all, t) {
			fedHits++
		}
	}
	best := 0
	for _, h := range soloHits {
		if h > best {
			best = h
		}
	}
	return float64(best) / float64(samples), float64(fedHits) / float64(samples), nil
}
