package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The harness guarantee: every experiment's output is bitwise identical at
// any worker count, because each task's RNG is derived from its logical
// coordinates rather than threaded through a shared stream. These tests
// pin that guarantee at the CSV byte level, the same comparison the CI
// determinism job performs on the full binaries.

func fig2bCSV(t *testing.T, workers int) string {
	t.Helper()
	cfg := DefaultFig2b()
	cfg.MaxSats, cfg.Step, cfg.Trials = 25, 3, 10
	cfg.Workers = workers
	r, err := Fig2b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFig2bDeterministicAcrossWorkers(t *testing.T) {
	serial := fig2bCSV(t, 1)
	for _, workers := range []int{2, 4} {
		if parallel := fig2bCSV(t, workers); parallel != serial {
			t.Errorf("fig2b CSV differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, parallel)
		}
	}
}

func fig2cCSV(t *testing.T, workers int) string {
	t.Helper()
	cfg := DefaultFig2c()
	cfg.MaxSats, cfg.Step, cfg.Trials, cfg.GridSize = 30, 6, 6, 1000
	cfg.Workers = workers
	r, err := Fig2c(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestFig2cDeterministicAcrossWorkers(t *testing.T) {
	serial := fig2cCSV(t, 1)
	for _, workers := range []int{2, 4} {
		if parallel := fig2cCSV(t, workers); parallel != serial {
			t.Errorf("fig2c CSV differs between workers=1 and workers=%d", workers)
		}
	}
}

func TestCriticalMassDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		cfg := DefaultCriticalMass()
		cfg.ProviderCounts = []int{1, 3}
		cfg.MaxSats, cfg.Step, cfg.Trials = 24, 8, 2
		cfg.Workers = workers
		r, err := CriticalMass(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run(1) != run(4) {
		t.Error("criticalmass CSV differs between workers=1 and workers=4")
	}
}

func TestResilienceDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		cfg := DefaultResilience()
		cfg.MaxFailures, cfg.Step, cfg.Trials = 16, 8, 2
		cfg.Workers = workers
		r, err := Resilience(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if run(1) != run(3) {
		t.Error("resilience CSV differs between workers=1 and workers=3")
	}
}

func TestAvailabilityDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) string {
		cfg := DefaultAvailability()
		cfg.Intensities = []float64{0, 2, 6}
		cfg.Trials = 2
		cfg.HorizonS = 1800
		cfg.Workers = workers
		r, err := Availability(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := r.CSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	serial := run(1)
	for _, workers := range []int{2, 4} {
		if parallel := run(workers); parallel != serial {
			t.Errorf("availability CSV differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, parallel)
		}
	}
}

func capacityCSV(t *testing.T, workers int) string {
	t.Helper()
	cfg := DefaultCapacity()
	cfg.MaxSats, cfg.Step, cfg.Trials, cfg.Users = 28, 8, 3, 80
	cfg.Workers = workers
	r, err := Capacity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCapacityDeterministicAcrossWorkers(t *testing.T) {
	serial := capacityCSV(t, 1)
	for _, workers := range []int{2, 4} {
		if parallel := capacityCSV(t, workers); parallel != serial {
			t.Errorf("capacity CSV differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, parallel)
		}
	}
}

func usersScaleCSV(t *testing.T, workers int) string {
	t.Helper()
	cfg := DefaultUsersScale()
	// Small enough for a unit test, large enough that the +Grid in-plane
	// spacing stays inside laser ISL range and demands actually route.
	cfg.Sats = 100
	cfg.UserCounts = []int{10_000, 200_000}
	cfg.DurationS, cfg.IntervalS = 180, 60
	cfg.Workers = workers
	r, err := UsersScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestUsersScaleDeterministicAcrossWorkers pins E18's invariance: every
// aggregate's arrival stream is seeded from its own (seed, src, dst, class)
// coordinates and each cell evolves sequentially, so the CSV — including
// the streaming-sketch latency quantiles — is byte-identical at any worker
// count. Wall time is excluded from the CSV for exactly this reason.
func TestUsersScaleDeterministicAcrossWorkers(t *testing.T) {
	serial := usersScaleCSV(t, 1)
	for _, workers := range []int{2, 4} {
		if parallel := usersScaleCSV(t, workers); parallel != serial {
			t.Errorf("users-scale CSV differs between workers=1 and workers=%d:\n--- serial ---\n%s--- parallel ---\n%s",
				workers, serial, parallel)
		}
	}
	// The sweep must have carried real traffic, or the determinism check
	// is vacuously comparing zeros.
	if !strings.Contains(serial, "\n10000,") {
		t.Fatalf("CSV missing the 10000-user row:\n%s", serial)
	}
	for _, line := range strings.Split(strings.TrimSpace(serial), "\n")[1:] {
		fields := strings.Split(line, ",")
		if fields[4] == "0" {
			t.Errorf("row %q delivered nothing; the gate is vacuous", line)
		}
	}
}

// TestFig2bCSVEmitsAllSweptN pins the fix for the dropped-row bug: N
// where zero trials found a path (the paper's below-critical-mass region)
// must still appear in the CSV, with empty latency fields and the
// path_fraction that shows the "~4 satellites minimum" observation.
func TestFig2bCSVEmitsAllSweptN(t *testing.T) {
	cfg := DefaultFig2b()
	// A single satellite almost never bridges São Paulo → London, so with
	// few trials the N=1 point reliably has no latency sample.
	cfg.MinSats, cfg.MaxSats, cfg.Step, cfg.Trials = 1, 13, 3, 4
	r, err := Fig2b(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	sweptPoints := 5 // N = 1, 4, 7, 10, 13
	if got := len(lines) - 1; got != sweptPoints {
		t.Fatalf("CSV rows = %d, want %d (every swept N):\n%s", got, sweptPoints, buf.String())
	}
	if len(r.Latency.Points) >= sweptPoints {
		t.Skip("every point found a path; dropped-row regression not exercised")
	}
	// Rows without a latency sample carry empty latency fields but a real
	// path fraction.
	for _, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			t.Fatalf("row %q has %d fields, want 4", line, len(fields))
		}
		if fields[3] == "" {
			t.Errorf("row %q missing path_fraction", line)
		}
	}
}
