package exec

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestResolve(t *testing.T) {
	if got := Resolve(4); got != 4 {
		t.Errorf("Resolve(4) = %d", got)
	}
	if got := Resolve(0); got != runtime.NumCPU() {
		t.Errorf("Resolve(0) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	if got := Resolve(-3); got != runtime.NumCPU() {
		t.Errorf("Resolve(-3) = %d, want NumCPU %d", got, runtime.NumCPU())
	}
}

func TestMapOrdering(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		out, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len = %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmptyAndInvalid(t *testing.T) {
	out, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty map: out=%v err=%v", out, err)
	}
	if _, err := Map(4, -1, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n should fail")
	}
	if _, err := Map[int](4, 3, nil); err == nil {
		t.Error("nil fn should fail")
	}
}

func TestMapErrorPropagation(t *testing.T) {
	sentinel := errors.New("boom")
	var ran atomic.Int64
	for _, workers := range []int{1, 4} {
		ran.Store(0)
		_, err := Map(workers, 10, func(i int) (int, error) {
			ran.Add(1)
			if i == 7 || i == 3 {
				return 0, fmt.Errorf("task %d: %w", i, sentinel)
			}
			return i, nil
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("workers=%d: err = %v, want sentinel", workers, err)
		}
		// The lowest failing index wins regardless of completion order.
		if !strings.Contains(err.Error(), "exec: task 3") {
			t.Errorf("workers=%d: err %q should name task 3", workers, err)
		}
		// Every task still runs: the executed set is scheduling-independent.
		if ran.Load() != 10 {
			t.Errorf("workers=%d: ran %d tasks, want 10", workers, ran.Load())
		}
	}
}

func TestMapPanicContainment(t *testing.T) {
	for _, workers := range []int{1, 4} {
		_, err := Map(workers, 8, func(i int) (int, error) {
			if i == 5 {
				panic("kaboom")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic not surfaced", workers)
		}
		if !strings.Contains(err.Error(), "task 5") || !strings.Contains(err.Error(), "kaboom") {
			t.Errorf("workers=%d: err %q should name task 5 and the panic value", workers, err)
		}
	}
}

// TestMapWorkersOneEquivalence is the package's core guarantee: a task set
// driven by per-index RNGs yields identical results at any worker count.
func TestMapWorkersOneEquivalence(t *testing.T) {
	run := func(workers int) []float64 {
		out, err := Map(workers, 200, func(i int) (float64, error) {
			rng := RNG(42, int64(i))
			sum := 0.0
			for k := 0; k < 50; k++ {
				sum += rng.Float64()
			}
			return sum, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 16} {
		parallel := run(workers)
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d: out[%d] = %v, serial = %v", workers, i, parallel[i], serial[i])
			}
		}
	}
}

func TestForEach(t *testing.T) {
	var hits atomic.Int64
	if err := ForEach(4, 32, func(i int) error { hits.Add(1); return nil }); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 32 {
		t.Errorf("hits = %d", hits.Load())
	}
	if err := ForEach(4, 4, func(i int) error { return errors.New("no") }); err == nil {
		t.Error("error not propagated")
	}
	if err := ForEach(4, 4, nil); err == nil {
		t.Error("nil fn should fail")
	}
}

// TestMapAllCollectsEveryError: unlike Map, which collapses to the
// lowest-indexed failure, MapAll hands back the full indexed error set —
// successes keep their results, failures (including panics) keep their
// own errors.
func TestMapAllCollectsEveryError(t *testing.T) {
	sentinel := errors.New("boom")
	for _, workers := range []int{1, 4} {
		out, errs, err := MapAll(workers, 10, func(i int) (int, error) {
			switch i {
			case 2, 7:
				return 0, fmt.Errorf("task %d: %w", i, sentinel)
			case 5:
				panic("kaboom")
			}
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: unexpected argument error %v", workers, err)
		}
		if len(errs) != 10 {
			t.Fatalf("workers=%d: errs length = %d, want 10", workers, len(errs))
		}
		for i := 0; i < 10; i++ {
			switch i {
			case 2, 7:
				if !errors.Is(errs[i], sentinel) {
					t.Errorf("workers=%d: errs[%d] = %v, want sentinel", workers, i, errs[i])
				}
			case 5:
				if errs[i] == nil || !strings.Contains(errs[i].Error(), "kaboom") {
					t.Errorf("workers=%d: errs[%d] = %v, want contained panic", workers, i, errs[i])
				}
			default:
				if errs[i] != nil {
					t.Errorf("workers=%d: errs[%d] = %v, want nil", workers, i, errs[i])
				}
				if out[i] != i*i {
					t.Errorf("workers=%d: out[%d] = %d, want %d", workers, i, out[i], i*i)
				}
			}
		}
	}
}

// TestMapAllCleanRun: a fully successful run returns a nil error slice, so
// callers can gate on errs == nil without scanning.
func TestMapAllCleanRun(t *testing.T) {
	out, errs, err := MapAll(3, 8, func(i int) (int, error) { return i, nil })
	if err != nil || errs != nil {
		t.Fatalf("err = %v, errs = %v, want nil/nil", err, errs)
	}
	for i, v := range out {
		if v != i {
			t.Errorf("out[%d] = %d", i, v)
		}
	}
	if _, _, err := MapAll(3, -1, func(i int) (int, error) { return 0, nil }); err == nil {
		t.Error("negative n should fail")
	}
	if _, _, err := MapAll[int](3, 4, nil); err == nil {
		t.Error("nil fn should fail")
	}
}

// TestSeedDistinctAcrossSweep exhaustively checks the coordinate ranges the
// experiment sweeps actually use: every (point, trial) pair in a sweep the
// size of Fig2b's must derive a distinct seed.
func TestSeedDistinctAcrossSweep(t *testing.T) {
	seen := make(map[int64][2]int64)
	for n := int64(1); n <= 100; n += 3 {
		for trial := int64(0); trial < 120; trial++ {
			s := Seed(1, n, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision: (%d,%d) and (%d,%d) → %d", prev[0], prev[1], n, trial, s)
			}
			seen[s] = [2]int64{n, trial}
		}
	}
}

// TestSeedCollisionFreeProperty drives the derivation with testing/quick:
// distinct (n, trial) tuples under the same base seed must not collide,
// and the same tuple must always reproduce the same seed.
func TestSeedCollisionFreeProperty(t *testing.T) {
	prop := func(base, n1, t1, n2, t2 int64) bool {
		s1, s2 := Seed(base, n1, t1), Seed(base, n2, t2)
		if n1 == n2 && t1 == t2 {
			return s1 == s2
		}
		return s1 != s2
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestSeedOrderSensitive: coordinates are positional — (a,b) and (b,a)
// must differ, and prefixes must not collide with their extensions.
func TestSeedOrderSensitive(t *testing.T) {
	if Seed(1, 2, 3) == Seed(1, 3, 2) {
		t.Error("swapped coordinates collide")
	}
	if Seed(1, 2) == Seed(1, 2, 0) {
		t.Error("prefix collides with extension")
	}
	if Seed(1, 5) == Seed(2, 5) {
		t.Error("base seed ignored")
	}
}

func TestRNGIndependentStreams(t *testing.T) {
	a, b := RNG(7, 0), RNG(7, 1)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("adjacent task streams overlap in %d/64 draws", same)
	}
	// Same coordinates → same stream.
	c, d := RNG(7, 0, 3), RNG(7, 0, 3)
	for i := 0; i < 8; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("same coordinates produced different streams")
		}
	}
}
