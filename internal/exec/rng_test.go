package exec

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSplitMix64KnownAnswer pins the derivation scheme to fixed vectors.
// These values are load-bearing: every committed CSV under results/ was
// produced by exactly this (base, coords) → seed map, and the nondeterm
// static analyzer blesses exec.Seed as the one legitimate seed path on
// that assumption. If this test fails, the RNG scheme changed and every
// experiment output changes with it — that is a results/ regeneration and
// a PR note, never a test edit.
func TestSplitMix64KnownAnswer(t *testing.T) {
	// splitmix64(0) must be 0xE220A8397B1DCDAF, the first output of the
	// reference SplitMix64 stream for seed 0 (Steele et al.; also the
	// test vector Vigna publishes). Seed(0) exposes it through the API.
	if got := uint64(Seed(0)); got != 0xE220A8397B1DCDAF {
		t.Fatalf("Seed(0) = %#x, want reference SplitMix64 output 0xE220A8397B1DCDAF", got)
	}
	vectors := []struct {
		base   int64
		coords []int64
		want   int64
	}{
		{0, nil, -2152535657050944081},
		{-1, nil, -1956407806741107680},
		{11, nil, 5833679380957638813},
		{11, []int64{0, 0}, 3907102330262185340},
		{11, []int64{4, 0}, 345847835890396658},
		{11, []int64{4, 59}, -2228777809491291927},
		{11, []int64{-1, 7}, 1520593869301179888},
		{42, []int64{1}, -2693632816820116974},
		{42, []int64{1, 2}, -8937879498666538011},
	}
	for _, v := range vectors {
		if got := Seed(v.base, v.coords...); got != v.want {
			t.Errorf("Seed(%d, %v) = %d, want %d", v.base, v.coords, got, v.want)
		}
	}
}

// TestRNGWorkerCountInvariance is the contract the whole harness rests
// on: a task's stream depends only on its logical coordinates, never on
// how many workers ran the sweep or in what order they reached the task.
// Simulate the same 32-task sweep serially and with racing goroutines,
// and require identical draws per task either way.
func TestRNGWorkerCountInvariance(t *testing.T) {
	const base, tasks, draws = 17, 32, 16

	drawTask := func(task int) []float64 {
		rng := RNG(base, int64(task))
		out := make([]float64, draws)
		for i := range out {
			out[i] = rng.Float64()
		}
		return out
	}

	serial := make([][]float64, tasks)
	for task := 0; task < tasks; task++ {
		serial[task] = drawTask(task)
	}

	for _, workers := range []int{2, 7, tasks} {
		parallel := make([][]float64, tasks)
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for task := range next {
					parallel[task] = drawTask(task)
				}
			}()
		}
		for task := 0; task < tasks; task++ {
			next <- task
		}
		close(next)
		wg.Wait()

		for task := 0; task < tasks; task++ {
			for i := range serial[task] {
				if serial[task][i] != parallel[task][i] { //lint:allow floateq identical streams must match bit-for-bit
					t.Fatalf("workers=%d task=%d draw=%d: parallel stream diverged from serial", workers, task, i)
				}
			}
		}
	}
}

// TestDomainSeedEquivalence pins the stream-preservation property the
// Domain migration rests on: DomainSeed(base, Domain{_, id}, coords...)
// must equal Seed(base, id, coords...) exactly, so a package adopting a
// string tag for a stream that already had a numeric domain changes no
// committed result.
func TestDomainSeedEquivalence(t *testing.T) {
	cases := []struct {
		base   int64
		id     int64
		coords []int64
	}{
		{0, 0, nil},
		{5, 1, nil},
		{5, 2, []int64{0}},
		{17, 3, []int64{4, 9, -1}},
		{-3, 101, []int64{12}},
		{42, 104, []int64{7, 7}},
	}
	for _, c := range cases {
		d := Domain{Tag: "test/stream", ID: c.id}
		want := Seed(c.base, append([]int64{c.id}, c.coords...)...)
		if got := DomainSeed(c.base, d, c.coords...); got != want {
			t.Errorf("DomainSeed(%d, {id:%d}, %v) = %d, want Seed equivalent %d",
				c.base, c.id, c.coords, got, want)
		}
		a, b := DomainRNG(c.base, d, c.coords...), RNG(c.base, append([]int64{c.id}, c.coords...)...)
		for i := 0; i < 8; i++ {
			if x, y := a.Int63(), b.Int63(); x != y {
				t.Fatalf("DomainRNG stream diverged from RNG at draw %d: %d != %d", i, x, y)
			}
		}
	}
}

// TestReseedEquivalence: a Reseed-ed scratch generator must reproduce the
// exact stream a freshly constructed RNG at the same coordinates would —
// the property that lets hot loops reuse one generator allocation-free.
func TestReseedEquivalence(t *testing.T) {
	scratch := ScratchRNG()
	for _, coords := range [][]int64{{0}, {1}, {99, 3}, {-5}} {
		Reseed(scratch, 11, coords...)
		fresh := RNG(11, coords...)
		for i := 0; i < 16; i++ {
			if x, y := scratch.Int63(), fresh.Int63(); x != y {
				t.Fatalf("Reseed(11, %v) stream diverged at draw %d", coords, i)
			}
		}
		// NormFloat64 carries no hidden state across Reseed either.
		Reseed(scratch, 11, coords...)
		fresh = RNG(11, coords...)
		for i := 0; i < 16; i++ {
			if x, y := scratch.NormFloat64(), fresh.NormFloat64(); x != y { //lint:allow floateq identical streams must match bit-for-bit
				t.Fatalf("Reseed(11, %v) normal stream diverged at draw %d", coords, i)
			}
		}
	}
}

// TestRNGSubSeedIndependentOfSiblingConsumption guards against the
// classic shared-source bug: consuming one task's RNG must not perturb a
// sibling's. (With a process-global source, draws interleave by
// scheduling; with per-task derivation they cannot.)
func TestRNGSubSeedIndependentOfSiblingConsumption(t *testing.T) {
	fresh := func() *rand.Rand { return RNG(3, 9) }

	want := fresh().Int63()

	// Burn a sibling stream heavily, then re-derive task (3,9).
	sibling := RNG(3, 10)
	for i := 0; i < 1000; i++ {
		sibling.Int63()
	}
	if got := fresh().Int63(); got != want {
		t.Fatalf("task (3,9) first draw changed after sibling consumption: %d != %d", got, want)
	}
}
