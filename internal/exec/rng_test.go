package exec

import (
	"math/rand"
	"sync"
	"testing"
)

// TestSplitMix64KnownAnswer pins the derivation scheme to fixed vectors.
// These values are load-bearing: every committed CSV under results/ was
// produced by exactly this (base, coords) → seed map, and the nondeterm
// static analyzer blesses exec.Seed as the one legitimate seed path on
// that assumption. If this test fails, the RNG scheme changed and every
// experiment output changes with it — that is a results/ regeneration and
// a PR note, never a test edit.
func TestSplitMix64KnownAnswer(t *testing.T) {
	// splitmix64(0) must be 0xE220A8397B1DCDAF, the first output of the
	// reference SplitMix64 stream for seed 0 (Steele et al.; also the
	// test vector Vigna publishes). Seed(0) exposes it through the API.
	if got := uint64(Seed(0)); got != 0xE220A8397B1DCDAF {
		t.Fatalf("Seed(0) = %#x, want reference SplitMix64 output 0xE220A8397B1DCDAF", got)
	}
	vectors := []struct {
		base   int64
		coords []int64
		want   int64
	}{
		{0, nil, -2152535657050944081},
		{-1, nil, -1956407806741107680},
		{11, nil, 5833679380957638813},
		{11, []int64{0, 0}, 3907102330262185340},
		{11, []int64{4, 0}, 345847835890396658},
		{11, []int64{4, 59}, -2228777809491291927},
		{11, []int64{-1, 7}, 1520593869301179888},
		{42, []int64{1}, -2693632816820116974},
		{42, []int64{1, 2}, -8937879498666538011},
	}
	for _, v := range vectors {
		if got := Seed(v.base, v.coords...); got != v.want {
			t.Errorf("Seed(%d, %v) = %d, want %d", v.base, v.coords, got, v.want)
		}
	}
}

// TestRNGWorkerCountInvariance is the contract the whole harness rests
// on: a task's stream depends only on its logical coordinates, never on
// how many workers ran the sweep or in what order they reached the task.
// Simulate the same 32-task sweep serially and with racing goroutines,
// and require identical draws per task either way.
func TestRNGWorkerCountInvariance(t *testing.T) {
	const base, tasks, draws = 17, 32, 16

	drawTask := func(task int) []float64 {
		rng := RNG(base, int64(task))
		out := make([]float64, draws)
		for i := range out {
			out[i] = rng.Float64()
		}
		return out
	}

	serial := make([][]float64, tasks)
	for task := 0; task < tasks; task++ {
		serial[task] = drawTask(task)
	}

	for _, workers := range []int{2, 7, tasks} {
		parallel := make([][]float64, tasks)
		var wg sync.WaitGroup
		next := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for task := range next {
					parallel[task] = drawTask(task)
				}
			}()
		}
		for task := 0; task < tasks; task++ {
			next <- task
		}
		close(next)
		wg.Wait()

		for task := 0; task < tasks; task++ {
			for i := range serial[task] {
				if serial[task][i] != parallel[task][i] { //lint:allow floateq identical streams must match bit-for-bit
					t.Fatalf("workers=%d task=%d draw=%d: parallel stream diverged from serial", workers, task, i)
				}
			}
		}
	}
}

// TestRNGSubSeedIndependentOfSiblingConsumption guards against the
// classic shared-source bug: consuming one task's RNG must not perturb a
// sibling's. (With a process-global source, draws interleave by
// scheduling; with per-task derivation they cannot.)
func TestRNGSubSeedIndependentOfSiblingConsumption(t *testing.T) {
	fresh := func() *rand.Rand { return RNG(3, 9) }

	want := fresh().Int63()

	// Burn a sibling stream heavily, then re-derive task (3,9).
	sibling := RNG(3, 10)
	for i := 0; i < 1000; i++ {
		sibling.Int63()
	}
	if got := fresh().Int63(); got != want {
		t.Fatalf("task (3,9) first draw changed after sibling consumption: %d != %d", got, want)
	}
}
