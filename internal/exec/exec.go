// Package exec is the parallel execution substrate for experiment sweeps:
// a bounded worker pool with an ordered fan-in collector, plus the
// deterministic per-task RNG derivation that keeps results bitwise
// identical at any worker count.
//
// Experiments in internal/experiments flatten their sweep × trial loops
// into an index space and hand each index to Map. Determinism rests on two
// invariants the package enforces:
//
//  1. Results are collected by task index, never by completion order.
//  2. No task reads scheduling-dependent state; randomness comes from
//     RNG(seed, coords...) so each task owns an independent stream derived
//     only from its logical coordinates.
//
// Under those rules a sweep run with one worker and with N workers
// produces identical bytes, which is what lets CI diff the experiment CSVs
// across worker counts on every PR.
package exec

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve returns the effective worker count for a requested value: the
// request if positive, otherwise runtime.NumCPU().
func Resolve(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.NumCPU()
}

// Map runs fn(0), …, fn(n-1) on a bounded pool of workers and returns the
// results in index order. workers ≤ 0 means one worker per CPU.
//
// Every task runs even when earlier ones fail, so the set of executed work
// never depends on scheduling; if any tasks failed, Map reports the error
// of the lowest-indexed failure. A panicking task is contained and
// surfaced as that task's error rather than crashing the pool.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	//lint:allow poolshare Map forwards its caller's task to MapAll; the closure is checked at Map's own submit sites
	out, errs, err := MapAll(workers, n, fn)
	if err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exec: task %d: %w", i, err)
		}
	}
	return out, nil
}

// MapAll is Map without the fail-fast error report: every task runs, and
// the per-task errors come back indexed alongside the results instead of
// being collapsed to the lowest-indexed failure. errs is nil when every
// task succeeded; otherwise errs[i] is task i's error (nil for tasks that
// succeeded — their out[i] is valid). The returned error is reserved for
// invalid arguments, never for task failures. Supervisors that must keep
// going past individual failures — the campaign cell runner is the
// canonical caller — build their failure manifests from errs.
//
// Panic containment and scheduling are exactly Map's: a panicking task
// surfaces as its own error, and the set of executed work never depends
// on worker scheduling.
func MapAll[T any](workers, n int, fn func(i int) (T, error)) ([]T, []error, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("exec: negative task count %d", n)
	}
	if fn == nil {
		return nil, nil, errors.New("exec: nil task function")
	}
	out := make([]T, n)
	errs := make([]error, n)
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = call(fn, i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for p := 0; p < w; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					out[i], errs[i] = call(fn, i)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return out, errs, nil
		}
	}
	return out, nil, nil
}

// ForEach is Map for side-effect-free checks that produce no value.
func ForEach(workers, n int, fn func(i int) error) error {
	if fn == nil {
		return errors.New("exec: nil task function")
	}
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// call invokes one task with panic containment.
func call[T any](fn func(int) (T, error), i int) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("task panicked: %v", r)
		}
	}()
	return fn(i)
}
