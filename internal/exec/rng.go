package exec

import "math/rand"

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator: a
// bijective avalanche mix whose output bits all depend on all input bits.
// It is the standard seed-derivation primitive (Vigna recommends it for
// seeding xoshiro/xoroshiro state) and is what makes hierarchical seeds
// collision-resistant here.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seed derives a child seed from a base seed and the task's logical
// coordinates (e.g. sweep point, trial index). The derivation is a
// SplitMix64 hash chain, so distinct coordinate tuples map to distinct
// seeds (collisions need ~2^32 tuples by birthday bound; sweeps here are
// thousands) and the result depends only on (base, coords), never on
// worker scheduling.
func Seed(base int64, coords ...int64) int64 {
	x := splitmix64(uint64(base))
	for _, c := range coords {
		x = splitmix64(x ^ splitmix64(uint64(c)))
	}
	return int64(x)
}

// RNG returns a rand.Rand owned by the task at the given coordinates.
// Tasks must not share RNGs: one RNG per Map index is what keeps parallel
// sweeps bitwise identical to serial ones.
func RNG(base int64, coords ...int64) *rand.Rand {
	return rand.New(rand.NewSource(Seed(base, coords...)))
}

// A Domain names one independent family of RNG streams. The Tag is the
// stream family's repo-unique identity — by convention
// "<package>/<stream>" — and is what the seeddomain analyzer checks for
// duplicates, closing the loophole where a copy-pasted numeric domain
// silently correlates two supposedly independent streams. The ID is the
// coordinate actually folded into the SplitMix64 chain: a package
// adopting a Tag for a stream that already had a numeric domain keeps its
// old ID, so every committed result stays byte-identical.
//
// Declare domains as package-level variables with literal fields:
//
//	var domainArrivals = exec.Domain{Tag: "fluid/arrivals", ID: 3}
//
// Both fields must be literals — the analyzer cannot vouch for a tag it
// cannot read — and both must be unique across the repository.
type Domain struct {
	Tag string
	ID  int64
}

// DomainSeed derives a child seed namespaced by the domain. It is
// definitionally Seed(base, d.ID, coords...): the tag documents and
// de-duplicates the stream family, the ID feeds the hash chain.
func DomainSeed(base int64, d Domain, coords ...int64) int64 {
	x := splitmix64(uint64(base))
	x = splitmix64(x ^ splitmix64(uint64(d.ID)))
	for _, c := range coords {
		x = splitmix64(x ^ splitmix64(uint64(c)))
	}
	return int64(x)
}

// DomainRNG returns a rand.Rand drawing from the domain-tagged stream at
// the given coordinates — the blessed way for an internal package to
// construct a generator of its own.
func DomainRNG(base int64, d Domain, coords ...int64) *rand.Rand {
	return rand.New(rand.NewSource(DomainSeed(base, d, coords...)))
}

// Reseed re-derives rng's stream in place: after Reseed(rng, base, c...)
// the generator produces exactly the sequence RNG(base, c...) would, but
// without constructing a new source. Hot loops that need a fresh stream
// per (element, epoch) hang one scratch generator off their receiver and
// Reseed it instead of allocating two objects per draw site.
func Reseed(rng *rand.Rand, base int64, coords ...int64) {
	rng.Seed(Seed(base, coords...)) //nolint:staticcheck // in-place reseed is the point: same stream as rand.New(rand.NewSource(seed)), zero allocations
}

// ScratchRNG returns a generator whose initial stream is meaningless: it
// exists to be Reseed-ed before every use. Constructing it here keeps the
// raw rand.NewSource call inside the one package the seeddomain analyzer
// blesses.
func ScratchRNG() *rand.Rand {
	return rand.New(rand.NewSource(0))
}
