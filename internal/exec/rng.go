package exec

import "math/rand"

// splitmix64 is the finalizer of Steele et al.'s SplitMix64 generator: a
// bijective avalanche mix whose output bits all depend on all input bits.
// It is the standard seed-derivation primitive (Vigna recommends it for
// seeding xoshiro/xoroshiro state) and is what makes hierarchical seeds
// collision-resistant here.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Seed derives a child seed from a base seed and the task's logical
// coordinates (e.g. sweep point, trial index). The derivation is a
// SplitMix64 hash chain, so distinct coordinate tuples map to distinct
// seeds (collisions need ~2^32 tuples by birthday bound; sweeps here are
// thousands) and the result depends only on (base, coords), never on
// worker scheduling.
func Seed(base int64, coords ...int64) int64 {
	x := splitmix64(uint64(base))
	for _, c := range coords {
		x = splitmix64(x ^ splitmix64(uint64(c)))
	}
	return int64(x)
}

// RNG returns a rand.Rand owned by the task at the given coordinates.
// Tasks must not share RNGs: one RNG per Map index is what keeps parallel
// sweeps bitwise identical to serial ones.
func RNG(base int64, coords ...int64) *rand.Rand {
	return rand.New(rand.NewSource(Seed(base, coords...)))
}
