package frame

import (
	"encoding/binary"
)

// Capability is the bitmask of link technologies a satellite supports.
// RF is mandatory in OpenSpace (§2.1); laser is the optional upgrade.
type Capability uint16

// Capability bits.
const (
	CapRF Capability = 1 << iota
	CapLaser
	CapGroundKu
	CapGroundKa
)

// Has reports whether all bits of want are set.
func (c Capability) Has(want Capability) bool { return c&want == want }

// OrbitalState is the compact orbital element set carried in beacons and
// handover notices so any receiver can propagate the sender's trajectory —
// the paper's "standardized periodic beacons that include orbital
// information" (§2.2).
type OrbitalState struct {
	SemiMajorAxisKm float64
	Eccentricity    float64
	InclinationDeg  float64
	RAANDeg         float64
	ArgPerigeeDeg   float64
	MeanAnomalyDeg  float64
	EpochS          float64 // seconds since the shared network epoch
}

func appendOrbital(b []byte, o OrbitalState) []byte {
	b = appendF64(b, o.SemiMajorAxisKm)
	b = appendF64(b, o.Eccentricity)
	b = appendF64(b, o.InclinationDeg)
	b = appendF64(b, o.RAANDeg)
	b = appendF64(b, o.ArgPerigeeDeg)
	b = appendF64(b, o.MeanAnomalyDeg)
	b = appendF64(b, o.EpochS)
	return b
}

func (r *reader) orbital() OrbitalState {
	return OrbitalState{
		SemiMajorAxisKm: r.f64(),
		Eccentricity:    r.f64(),
		InclinationDeg:  r.f64(),
		RAANDeg:         r.f64(),
		ArgPerigeeDeg:   r.f64(),
		MeanAnomalyDeg:  r.f64(),
		EpochS:          r.f64(),
	}
}

// Beacon is the periodic presence broadcast every OpenSpace satellite emits
// over its omnidirectional RF antenna. Receivers use it to discover
// neighbours (satellites initiating ISL pairing) and to select an access
// satellite (ground users choosing the closest overhead spacecraft).
type Beacon struct {
	SatelliteID  string
	ProviderID   string
	Caps         Capability
	Orbit        OrbitalState
	LoadFraction float64 // 0..1 current utilisation, for load-aware selection
	SentAtS      float64 // transmission time, seconds since epoch
	// AuthTag is the owning provider's Ed25519 signature over the beacon's
	// other fields (see security.SignBeacon). Empty on unsigned beacons;
	// receivers that enforce beacon authentication reject those.
	AuthTag []byte
}

// FrameType implements Frame.
func (*Beacon) FrameType() Type { return TypeBeacon }

func (f *Beacon) appendPayload(b []byte) []byte {
	b = appendString(b, f.SatelliteID)
	b = appendString(b, f.ProviderID)
	b = binary.LittleEndian.AppendUint16(b, uint16(f.Caps))
	b = appendOrbital(b, f.Orbit)
	b = appendF64(b, f.LoadFraction)
	b = appendF64(b, f.SentAtS)
	b = appendBytes(b, f.AuthTag)
	return b
}

func (f *Beacon) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.SatelliteID = r.str()
	f.ProviderID = r.str()
	f.Caps = Capability(r.u16())
	f.Orbit = r.orbital()
	f.LoadFraction = r.f64()
	f.SentAtS = r.f64()
	f.AuthTag = r.bytes()
	return r.done()
}

// PairRequest initiates ISL establishment after a beacon is heard (§2.1):
// it carries the requester's technical specifications — supported link
// types, laser terminal pointing axis, and spare bandwidth — so the peer can
// decide whether an optical link is feasible or RF must be used.
type PairRequest struct {
	FromID       string
	ToID         string
	Caps         Capability
	LaserAxisX   float64 // unit vector of the laser terminal boresight,
	LaserAxisY   float64 // body frame; meaningless unless CapLaser is set
	LaserAxisZ   float64
	AvailableBps float64 // bandwidth the requester can commit
	RequestedBps float64 // bandwidth the requester would like
}

// FrameType implements Frame.
func (*PairRequest) FrameType() Type { return TypePairRequest }

func (f *PairRequest) appendPayload(b []byte) []byte {
	b = appendString(b, f.FromID)
	b = appendString(b, f.ToID)
	b = binary.LittleEndian.AppendUint16(b, uint16(f.Caps))
	b = appendF64(b, f.LaserAxisX)
	b = appendF64(b, f.LaserAxisY)
	b = appendF64(b, f.LaserAxisZ)
	b = appendF64(b, f.AvailableBps)
	b = appendF64(b, f.RequestedBps)
	return b
}

func (f *PairRequest) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.FromID = r.str()
	f.ToID = r.str()
	f.Caps = Capability(r.u16())
	f.LaserAxisX = r.f64()
	f.LaserAxisY = r.f64()
	f.LaserAxisZ = r.f64()
	f.AvailableBps = r.f64()
	f.RequestedBps = r.f64()
	return r.done()
}

// LinkTech is the link technology chosen for an ISL.
type LinkTech uint8

// Link technologies.
const (
	LinkRF LinkTech = iota + 1
	LinkLaser
)

// String implements fmt.Stringer.
func (l LinkTech) String() string {
	switch l {
	case LinkRF:
		return "rf"
	case LinkLaser:
		return "laser"
	default:
		return "unknown"
	}
}

// PairResponse completes the pairing handshake: the responder accepts or
// rejects, selects the link technology (laser only if both ends have the
// capability and spare bandwidth), and commits a bandwidth.
type PairResponse struct {
	FromID       string
	ToID         string
	Accept       bool
	Tech         LinkTech
	CommittedBps float64
	Reason       string // populated on rejection
}

// FrameType implements Frame.
func (*PairResponse) FrameType() Type { return TypePairResponse }

func (f *PairResponse) appendPayload(b []byte) []byte {
	b = appendString(b, f.FromID)
	b = appendString(b, f.ToID)
	b = appendBool(b, f.Accept)
	b = append(b, uint8(f.Tech))
	b = appendF64(b, f.CommittedBps)
	b = appendString(b, f.Reason)
	return b
}

func (f *PairResponse) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.FromID = r.str()
	f.ToID = r.str()
	f.Accept = r.bool()
	f.Tech = LinkTech(r.u8())
	f.CommittedBps = r.f64()
	f.Reason = r.str()
	return r.done()
}

// AuthRequest opens the RADIUS-style authentication of a user with their
// home ISP (§2.2), relayed over ISLs by whichever satellite the user
// associated with.
type AuthRequest struct {
	UserID      string
	HomeISP     string
	ViaSatID    string // satellite relaying the request
	ClientNonce uint64
}

// FrameType implements Frame.
func (*AuthRequest) FrameType() Type { return TypeAuthRequest }

func (f *AuthRequest) appendPayload(b []byte) []byte {
	b = appendString(b, f.UserID)
	b = appendString(b, f.HomeISP)
	b = appendString(b, f.ViaSatID)
	b = binary.LittleEndian.AppendUint64(b, f.ClientNonce)
	return b
}

func (f *AuthRequest) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.UserID = r.str()
	f.HomeISP = r.str()
	f.ViaSatID = r.str()
	f.ClientNonce = r.u64()
	return r.done()
}

// AuthChallenge is the home ISP's challenge nonce.
type AuthChallenge struct {
	UserID      string
	ServerNonce uint64
}

// FrameType implements Frame.
func (*AuthChallenge) FrameType() Type { return TypeAuthChallenge }

func (f *AuthChallenge) appendPayload(b []byte) []byte {
	b = appendString(b, f.UserID)
	b = binary.LittleEndian.AppendUint64(b, f.ServerNonce)
	return b
}

func (f *AuthChallenge) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.UserID = r.str()
	f.ServerNonce = r.u64()
	return r.done()
}

// AuthResponse carries the user's proof of possession of the shared secret:
// HMAC-SHA256 over both nonces (computed in internal/auth).
type AuthResponse struct {
	UserID string
	Proof  []byte
}

// FrameType implements Frame.
func (*AuthResponse) FrameType() Type { return TypeAuthResponse }

func (f *AuthResponse) appendPayload(b []byte) []byte {
	b = appendString(b, f.UserID)
	b = appendBytes(b, f.Proof)
	return b
}

func (f *AuthResponse) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.UserID = r.str()
	f.Proof = r.bytes()
	return r.done()
}

// AuthResult closes the exchange. On success it carries the roaming
// certificate the home ISP issues so other providers can verify the user
// was authenticated without contacting the home ISP again (§2.2).
type AuthResult struct {
	UserID      string
	Success     bool
	Certificate []byte // serialised auth.Certificate
	Reason      string // populated on failure
}

// FrameType implements Frame.
func (*AuthResult) FrameType() Type { return TypeAuthResult }

func (f *AuthResult) appendPayload(b []byte) []byte {
	b = appendString(b, f.UserID)
	b = appendBool(b, f.Success)
	b = appendBytes(b, f.Certificate)
	b = appendString(b, f.Reason)
	return b
}

func (f *AuthResult) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.UserID = r.str()
	f.Success = r.bool()
	f.Certificate = r.bytes()
	f.Reason = r.str()
	return r.done()
}

// Data is a user payload frame routed across the OpenSpace network.
type Data struct {
	FlowID   uint64
	Seq      uint32
	SrcUser  string
	DstID    string // destination ground station or user
	HopLimit uint8
	Payload  []byte
}

// FrameType implements Frame.
func (*Data) FrameType() Type { return TypeData }

func (f *Data) appendPayload(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, f.FlowID)
	b = binary.LittleEndian.AppendUint32(b, f.Seq)
	b = appendString(b, f.SrcUser)
	b = appendString(b, f.DstID)
	b = append(b, f.HopLimit)
	b = appendBytes(b, f.Payload)
	return b
}

func (f *Data) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.FlowID = r.u64()
	f.Seq = r.u32()
	f.SrcUser = r.str()
	f.DstID = r.str()
	f.HopLimit = r.u8()
	f.Payload = r.bytes()
	return r.done()
}

// HandoverNotice tells a user which satellite will take over its session
// (§2.2): the serving satellite picks the successor from advance orbital
// knowledge and the user establishes a new session without re-running
// authentication.
type HandoverNotice struct {
	ServingID      string
	SuccessorID    string
	SuccessorOrbit OrbitalState
	EffectiveAtS   float64 // when the successor becomes the best choice
	SessionToken   uint64  // opaque token carried to the successor
}

// FrameType implements Frame.
func (*HandoverNotice) FrameType() Type { return TypeHandoverNotice }

func (f *HandoverNotice) appendPayload(b []byte) []byte {
	b = appendString(b, f.ServingID)
	b = appendString(b, f.SuccessorID)
	b = appendOrbital(b, f.SuccessorOrbit)
	b = appendF64(b, f.EffectiveAtS)
	b = binary.LittleEndian.AppendUint64(b, f.SessionToken)
	return b
}

func (f *HandoverNotice) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.ServingID = r.str()
	f.SuccessorID = r.str()
	f.SuccessorOrbit = r.orbital()
	f.EffectiveAtS = r.f64()
	f.SessionToken = r.u64()
	return r.done()
}

// Ack acknowledges a data frame.
type Ack struct {
	FlowID uint64
	Seq    uint32
}

// FrameType implements Frame.
func (*Ack) FrameType() Type { return TypeAck }

func (f *Ack) appendPayload(b []byte) []byte {
	b = binary.LittleEndian.AppendUint64(b, f.FlowID)
	b = binary.LittleEndian.AppendUint32(b, f.Seq)
	return b
}

func (f *Ack) decodePayload(p []byte) error {
	r := &reader{b: p}
	f.FlowID = r.u64()
	f.Seq = r.u32()
	return r.done()
}
