package frame

import (
	"bytes"
	"testing"
)

// FuzzDecode exercises the decoder with arbitrary bytes. Run with
// `go test -fuzz=FuzzDecode ./internal/frame/` for continuous fuzzing; the
// seed corpus (valid frames and adversarial variants) runs in every normal
// test invocation.
func FuzzDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		wire, err := Encode(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
		// Adversarial seeds: truncations and bit flips of valid frames.
		f.Add(wire[:len(wire)/2])
		mut := bytes.Clone(wire)
		mut[len(mut)/2] ^= 0xFF
		f.Add(mut)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := Decode(data)
		if err != nil {
			return // rejecting garbage is correct
		}
		if fr == nil {
			t.Fatal("nil frame with nil error")
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// Anything that decodes must re-encode to an equivalent frame.
		wire, err := Encode(fr)
		if err != nil {
			t.Fatalf("decoded frame fails to re-encode: %v", err)
		}
		again, _, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-encoded frame fails to decode: %v", err)
		}
		if again.FrameType() != fr.FrameType() {
			t.Fatalf("type changed across round trip")
		}
	})
}

// FuzzCertificateTransport does the same for the auth certificate container
// carried inside AuthResult frames.
func FuzzStreamReader(f *testing.F) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, fr := range sampleFrames() {
		if err := w.WriteFrame(fr); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/3])
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 100; i++ { // bounded: garbage cannot loop forever
			if _, err := r.ReadFrame(); err != nil {
				return
			}
		}
	})
}
