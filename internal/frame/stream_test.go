package frame

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	frames := sampleFrames()
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			t.Fatalf("write %v: %v", f.FrameType(), err)
		}
	}
	r := NewReader(&buf)
	for i, want := range frames {
		got, err := r.ReadFrame()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("frame %d mismatch:\n%+v\n%+v", i, want, got)
		}
	}
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Errorf("end of stream: %v, want io.EOF", err)
	}
}

func TestStreamTruncation(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(&Ack{FlowID: 1, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Ending mid-header and mid-body both yield ErrUnexpectedEOF.
	for _, cut := range []int{HeaderLen - 2, len(full) - 1} {
		r := NewReader(bytes.NewReader(full[:cut]))
		if _, err := r.ReadFrame(); err != io.ErrUnexpectedEOF {
			t.Errorf("cut at %d: %v, want unexpected EOF", cut, err)
		}
	}
}

func TestStreamCorruption(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteFrame(&Ack{FlowID: 1, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	full := bytes.Clone(buf.Bytes())
	// Corrupt magic.
	bad := bytes.Clone(full)
	bad[0] ^= 0xFF
	if _, err := NewReader(bytes.NewReader(bad)).ReadFrame(); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Corrupt payload → checksum failure.
	bad = bytes.Clone(full)
	bad[HeaderLen] ^= 0x01
	if _, err := NewReader(bytes.NewReader(bad)).ReadFrame(); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt payload: %v", err)
	}
	// Oversized declared length rejected before allocation.
	bad = bytes.Clone(full)
	bad[4], bad[5], bad[6], bad[7] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := NewReader(bytes.NewReader(bad)).ReadFrame(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized: %v", err)
	}
}

func TestStreamOverPipe(t *testing.T) {
	// The reader works over a real pipe, interleaved with writes — the
	// shape of an actual ISL byte stream.
	pr, pw := io.Pipe()
	go func() {
		w := NewWriter(pw)
		for _, f := range sampleFrames() {
			if err := w.WriteFrame(f); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	r := NewReader(pr)
	n := 0
	for {
		_, err := r.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("frame %d: %v", n, err)
		}
		n++
	}
	if n != len(sampleFrames()) {
		t.Errorf("read %d frames, want %d", n, len(sampleFrames()))
	}
}
