package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// sampleFrames returns one populated instance of every frame type.
func sampleFrames() []Frame {
	orbit := OrbitalState{
		SemiMajorAxisKm: 7151, Eccentricity: 0.001, InclinationDeg: 86.4,
		RAANDeg: 30, ArgPerigeeDeg: 0, MeanAnomalyDeg: 127.3, EpochS: 3600,
	}
	return []Frame{
		&Beacon{
			SatelliteID: "acme-p0s3", ProviderID: "acme", Caps: CapRF | CapLaser,
			Orbit: orbit, LoadFraction: 0.42, SentAtS: 1234.5,
		},
		&PairRequest{
			FromID: "acme-p0s3", ToID: "orbit-co-7", Caps: CapRF | CapLaser,
			LaserAxisX: 0.1, LaserAxisY: -0.2, LaserAxisZ: 0.97,
			AvailableBps: 1e9, RequestedBps: 5e8,
		},
		&PairResponse{
			FromID: "orbit-co-7", ToID: "acme-p0s3", Accept: true,
			Tech: LinkLaser, CommittedBps: 5e8,
		},
		&PairResponse{
			FromID: "orbit-co-7", ToID: "acme-p0s3", Accept: false,
			Tech: LinkRF, Reason: "power budget exhausted",
		},
		&AuthRequest{UserID: "user-17", HomeISP: "acme", ViaSatID: "orbit-co-7", ClientNonce: 0xDEADBEEF},
		&AuthChallenge{UserID: "user-17", ServerNonce: 0xCAFEBABE12345678},
		&AuthResponse{UserID: "user-17", Proof: []byte{1, 2, 3, 4, 5}},
		&AuthResult{UserID: "user-17", Success: true, Certificate: []byte("cert-bytes")},
		&AuthResult{UserID: "user-18", Success: false, Reason: "unknown user"},
		&Data{
			FlowID: 99, Seq: 7, SrcUser: "user-17", DstID: "gs-nairobi",
			HopLimit: 16, Payload: []byte("hello, space"),
		},
		&HandoverNotice{
			ServingID: "acme-p0s3", SuccessorID: "acme-p0s4",
			SuccessorOrbit: orbit, EffectiveAtS: 1300, SessionToken: 0xABCD,
		},
		&Ack{FlowID: 99, Seq: 7},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		wire, err := Encode(f)
		if err != nil {
			t.Fatalf("%v: encode: %v", f.FrameType(), err)
		}
		got, n, err := Decode(wire)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.FrameType(), err)
		}
		if n != len(wire) {
			t.Errorf("%v: consumed %d of %d bytes", f.FrameType(), n, len(wire))
		}
		if !reflect.DeepEqual(f, got) {
			t.Errorf("%v: round trip mismatch:\nsent %+v\ngot  %+v", f.FrameType(), f, got)
		}
	}
}

func TestDecodeStream(t *testing.T) {
	// Multiple frames concatenated decode one at a time via the returned
	// byte count.
	var stream []byte
	frames := sampleFrames()
	for _, f := range frames {
		w, err := Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		stream = append(stream, w...)
	}
	var got []Frame
	for len(stream) > 0 {
		f, n, err := Decode(stream)
		if err != nil {
			t.Fatalf("stream decode: %v", err)
		}
		got = append(got, f)
		stream = stream[n:]
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
}

func TestDecodeErrors(t *testing.T) {
	wire, err := Encode(&Ack{FlowID: 1, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}

	// Truncated at every length below the minimum envelope.
	if _, _, err := Decode(wire[:HeaderLen+ChecksumLen-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short buffer: got %v, want ErrTruncated", err)
	}
	// Truncated payload.
	if _, _, err := Decode(wire[:len(wire)-1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated payload: got %v, want ErrTruncated", err)
	}
	// Bad magic.
	bad := bytes.Clone(wire)
	bad[0] ^= 0xFF
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: got %v", err)
	}
	// Bad version.
	bad = bytes.Clone(wire)
	bad[2] = 99
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadVersion) {
		t.Errorf("bad version: got %v", err)
	}
	// Corrupted body → checksum error.
	bad = bytes.Clone(wire)
	bad[HeaderLen] ^= 0x01
	if _, _, err := Decode(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupt body: got %v", err)
	}
	// Unknown type (fix the checksum so the type check is reached).
	bad = bytes.Clone(wire)
	bad[3] = 200
	fixChecksum(bad)
	if _, _, err := Decode(bad); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: got %v", err)
	}
	// Oversized declared payload.
	bad = bytes.Clone(wire)
	binary.LittleEndian.PutUint32(bad[4:8], MaxPayload+1)
	if _, _, err := Decode(bad); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized: got %v", err)
	}
}

func fixChecksum(b []byte) {
	sum := crc32.ChecksumIEEE(b[:len(b)-ChecksumLen])
	binary.LittleEndian.PutUint32(b[len(b)-ChecksumLen:], sum)
}

func TestEncodeTooLarge(t *testing.T) {
	d := &Data{Payload: make([]byte, MaxPayload+1)}
	if _, err := Encode(d); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized encode: got %v, want ErrTooLarge", err)
	}
}

func TestTrailingBytesRejected(t *testing.T) {
	// A payload with trailing garbage must fail strict decoding even when
	// the checksum is valid.
	wire, err := Encode(&Ack{FlowID: 1, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Splice one extra payload byte in and re-seal.
	body := bytes.Clone(wire[:len(wire)-ChecksumLen])
	body = append(body, 0x00)
	binary.LittleEndian.PutUint32(body[4:8], uint32(len(body)-HeaderLen))
	body = binary.LittleEndian.AppendUint32(body, crc32.ChecksumIEEE(body))
	if _, _, err := Decode(body); !errors.Is(err, ErrBadField) {
		t.Errorf("trailing bytes: got %v, want ErrBadField", err)
	}
}

func TestFuzzDecodeNeverPanics(t *testing.T) {
	// Decode must reject arbitrary garbage gracefully.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		rng.Read(buf)
		if f, _, err := Decode(buf); err == nil {
			// Vanishingly unlikely; if it decodes, it must be well-formed.
			if f == nil {
				t.Fatal("nil frame with nil error")
			}
		}
	}
	// Bit-flipped real frames likewise.
	wire, err := Encode(sampleFrames()[0])
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(wire)*8; i++ {
		mut := bytes.Clone(wire)
		mut[i/8] ^= 1 << (i % 8)
		Decode(mut) // must not panic
	}
}

func TestBeaconRoundTripProperty(t *testing.T) {
	f := func(satID, provID string, caps uint16, load, sent float64) bool {
		if len(satID) > 1000 || len(provID) > 1000 {
			return true
		}
		in := &Beacon{
			SatelliteID: satID, ProviderID: provID, Caps: Capability(caps),
			Orbit:        OrbitalState{SemiMajorAxisKm: 7151, MeanAnomalyDeg: 12},
			LoadFraction: load, SentAtS: sent,
		}
		wire, err := Encode(in)
		if err != nil {
			return false
		}
		out, n, err := Decode(wire)
		if err != nil || n != len(wire) {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDataRoundTripProperty(t *testing.T) {
	f := func(flow uint64, seq uint32, src, dst string, hop uint8, payload []byte) bool {
		if len(src) > 1000 || len(dst) > 1000 || len(payload) > 4096 {
			return true
		}
		in := &Data{FlowID: flow, Seq: seq, SrcUser: src, DstID: dst, HopLimit: hop, Payload: payload}
		wire, err := Encode(in)
		if err != nil {
			return false
		}
		out, _, err := Decode(wire)
		if err != nil {
			return false
		}
		got := out.(*Data)
		// reflect.DeepEqual treats nil and empty slices differently;
		// the wire format does not distinguish them.
		if len(in.Payload) == 0 && len(got.Payload) == 0 {
			got.Payload, in.Payload = nil, nil
		}
		return reflect.DeepEqual(in, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCapabilityHas(t *testing.T) {
	c := CapRF | CapLaser
	if !c.Has(CapRF) || !c.Has(CapLaser) || !c.Has(CapRF|CapLaser) {
		t.Error("Has should report set bits")
	}
	if c.Has(CapGroundKu) || c.Has(CapRF|CapGroundKu) {
		t.Error("Has should reject unset bits")
	}
}

func TestTypeStrings(t *testing.T) {
	for _, f := range sampleFrames() {
		if s := f.FrameType().String(); s == "" || s[0] == 'T' {
			t.Errorf("missing String for %d", f.FrameType())
		}
	}
	if Type(99).String() != "Type(99)" {
		t.Error("unknown type String")
	}
	if LinkRF.String() != "rf" || LinkLaser.String() != "laser" || LinkTech(9).String() != "unknown" {
		t.Error("LinkTech strings")
	}
}
