// Package frame defines the standardized wire formats that make OpenSpace
// spacecraft interoperable. The paper's first requirement (§2, item 1) is
// "an open and standardized communication protocol for all spacecraft in the
// system"; this package is that protocol's frame layer: beacons carrying
// orbital information, the pairing handshake that establishes ISLs, the
// RADIUS-style authentication exchange, data frames, and handover notices.
//
// Encoding is a fixed little-endian binary layout with an 8-byte header
// (magic, version, type, flags, payload length) and a trailing CRC-32
// checksum over everything before it. Strings are length-prefixed UTF-8.
// The design follows the layered decode model of gopacket: each frame type
// knows how to append itself to a buffer and decode itself from one, and a
// registry dispatches on the header's type byte — so new frame types can be
// added without touching the envelope.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Protocol constants.
const (
	// Magic identifies an OpenSpace frame ("OS").
	Magic uint16 = 0x4F53
	// Version is the protocol version this package implements.
	Version uint8 = 1
	// HeaderLen is the fixed envelope header size in bytes.
	HeaderLen = 8
	// ChecksumLen is the trailing CRC-32 size in bytes.
	ChecksumLen = 4
	// MaxPayload bounds the payload so that a length field cannot make a
	// receiver allocate unboundedly.
	MaxPayload = 64 * 1024
)

// Type identifies a frame type on the wire.
type Type uint8

// Frame types.
const (
	TypeBeacon Type = iota + 1
	TypePairRequest
	TypePairResponse
	TypeAuthRequest
	TypeAuthChallenge
	TypeAuthResponse
	TypeAuthResult
	TypeData
	TypeHandoverNotice
	TypeAck
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TypeBeacon:
		return "beacon"
	case TypePairRequest:
		return "pair-request"
	case TypePairResponse:
		return "pair-response"
	case TypeAuthRequest:
		return "auth-request"
	case TypeAuthChallenge:
		return "auth-challenge"
	case TypeAuthResponse:
		return "auth-response"
	case TypeAuthResult:
		return "auth-result"
	case TypeData:
		return "data"
	case TypeHandoverNotice:
		return "handover-notice"
	case TypeAck:
		return "ack"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Decoding errors.
var (
	ErrTruncated   = errors.New("frame: truncated")
	ErrBadMagic    = errors.New("frame: bad magic")
	ErrBadVersion  = errors.New("frame: unsupported version")
	ErrBadChecksum = errors.New("frame: checksum mismatch")
	ErrUnknownType = errors.New("frame: unknown frame type")
	ErrTooLarge    = errors.New("frame: payload exceeds MaxPayload")
	ErrBadField    = errors.New("frame: malformed field")
)

// Frame is the interface all OpenSpace frame bodies implement.
type Frame interface {
	// FrameType returns the on-wire type byte.
	FrameType() Type
	// appendPayload appends the body encoding (excluding envelope) to b.
	appendPayload(b []byte) []byte
	// decodePayload parses the body from p, which holds exactly the payload.
	decodePayload(p []byte) error
}

// Encode serialises a frame into a standalone wire message:
// header | payload | crc32.
func Encode(f Frame) ([]byte, error) {
	payload := f.appendPayload(nil)
	if len(payload) > MaxPayload {
		return nil, ErrTooLarge
	}
	buf := make([]byte, HeaderLen, HeaderLen+len(payload)+ChecksumLen)
	binary.LittleEndian.PutUint16(buf[0:2], Magic)
	buf[2] = Version
	buf[3] = uint8(f.FrameType())
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(payload)))
	buf = append(buf, payload...)
	sum := crc32.ChecksumIEEE(buf)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	return buf, nil
}

// Decode parses one wire message produced by Encode and returns the typed
// frame body. It returns the number of bytes consumed, so callers can decode
// streams of concatenated frames.
func Decode(b []byte) (Frame, int, error) {
	if len(b) < HeaderLen+ChecksumLen {
		return nil, 0, ErrTruncated
	}
	if binary.LittleEndian.Uint16(b[0:2]) != Magic {
		return nil, 0, ErrBadMagic
	}
	if b[2] != Version {
		return nil, 0, ErrBadVersion
	}
	plen := int(binary.LittleEndian.Uint32(b[4:8]))
	if plen > MaxPayload {
		return nil, 0, ErrTooLarge
	}
	total := HeaderLen + plen + ChecksumLen
	if len(b) < total {
		return nil, 0, ErrTruncated
	}
	want := binary.LittleEndian.Uint32(b[total-ChecksumLen : total])
	if crc32.ChecksumIEEE(b[:total-ChecksumLen]) != want {
		return nil, 0, ErrBadChecksum
	}
	f := newFrame(Type(b[3]))
	if f == nil {
		return nil, 0, ErrUnknownType
	}
	if err := f.decodePayload(b[HeaderLen : HeaderLen+plen]); err != nil {
		return nil, 0, err
	}
	return f, total, nil
}

// newFrame returns a zero value of the body type for t, or nil.
func newFrame(t Type) Frame {
	switch t {
	case TypeBeacon:
		return &Beacon{}
	case TypePairRequest:
		return &PairRequest{}
	case TypePairResponse:
		return &PairResponse{}
	case TypeAuthRequest:
		return &AuthRequest{}
	case TypeAuthChallenge:
		return &AuthChallenge{}
	case TypeAuthResponse:
		return &AuthResponse{}
	case TypeAuthResult:
		return &AuthResult{}
	case TypeData:
		return &Data{}
	case TypeHandoverNotice:
		return &HandoverNotice{}
	case TypeAck:
		return &Ack{}
	default:
		return nil
	}
}

// --- primitive field encoding helpers ---

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func appendBytes(b, p []byte) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(p)))
	return append(b, p...)
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// reader walks a payload buffer with error latching: after the first
// failure every subsequent read returns zero values, and the error is
// checked once at the end of decodePayload.
type reader struct {
	b   []byte
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil || len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

func (r *reader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *reader) str() string {
	n := int(r.u16())
	if r.err != nil || len(r.b) < n {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *reader) bytes() []byte {
	n := int(r.u32())
	if r.err != nil || len(r.b) < n {
		r.fail()
		return nil
	}
	if n == 0 {
		// The wire format does not distinguish nil from empty; decode to nil
		// so round trips compare equal.
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[:n])
	r.b = r.b[n:]
	return p
}

func (r *reader) bool() bool { return r.u8() != 0 }

func (r *reader) fail() {
	if r.err == nil {
		r.err = ErrBadField
	}
}

// done returns the latched error, also failing if unread bytes remain
// (a strict decode catches version-skew bugs early).
func (r *reader) done() error {
	if r.err == nil && len(r.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadField, len(r.b))
	}
	return r.err
}

func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}
