package frame

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Writer serialises frames onto a byte stream (an ISL or ground link's
// reliable transport). Frames are self-delimiting, so no extra framing is
// needed. Not safe for concurrent use.
type Writer struct {
	w io.Writer
}

// NewWriter wraps a stream.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// WriteFrame encodes and writes one frame.
func (w *Writer) WriteFrame(f Frame) error {
	wire, err := Encode(f)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(wire); err != nil {
		return fmt.Errorf("frame: writing %v: %w", f.FrameType(), err)
	}
	return nil
}

// Reader decodes a stream of frames produced by Writer. It validates
// checksums and types exactly like Decode; a corrupted frame poisons the
// stream (the transport below is assumed reliable, so corruption means a
// protocol bug or an attack, not noise to resynchronise from).
// Not safe for concurrent use.
type Reader struct {
	r   *bufio.Reader
	buf []byte
}

// NewReader wraps a stream.
func NewReader(r io.Reader) *Reader { return &Reader{r: bufio.NewReader(r)} }

// ReadFrame reads and decodes the next frame. io.EOF is returned at a clean
// end of stream; io.ErrUnexpectedEOF if the stream ends mid-frame.
func (r *Reader) ReadFrame() (Frame, error) {
	header := make([]byte, HeaderLen)
	if _, err := io.ReadFull(r.r, header); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint16(header[0:2]) != Magic {
		return nil, ErrBadMagic
	}
	plen := int(binary.LittleEndian.Uint32(header[4:8]))
	if plen > MaxPayload {
		return nil, ErrTooLarge
	}
	total := HeaderLen + plen + ChecksumLen
	if cap(r.buf) < total {
		r.buf = make([]byte, total)
	}
	buf := r.buf[:total]
	copy(buf, header)
	if _, err := io.ReadFull(r.r, buf[HeaderLen:]); err != nil {
		return nil, io.ErrUnexpectedEOF
	}
	f, _, err := Decode(buf)
	return f, err
}
