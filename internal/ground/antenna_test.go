package ground

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

func mkPass(id string, rise, set float64) Pass {
	return Pass{SatelliteID: id, RiseS: rise, SetS: set}
}

func TestScheduleAntennasBasic(t *testing.T) {
	passes := []Pass{
		mkPass("a", 0, 100),
		mkPass("b", 50, 150),  // overlaps a
		mkPass("c", 120, 200), // fits after a on antenna 0
	}
	s, err := ScheduleAntennas(passes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dropped) != 0 {
		t.Fatalf("dropped: %+v", s.Dropped)
	}
	got := map[string]int{}
	for _, a := range s.Assignments {
		got[a.Pass.SatelliteID] = a.Antenna
	}
	if got["a"] != 0 || got["b"] != 1 || got["c"] != 0 {
		t.Errorf("assignments = %v", got)
	}
	// One antenna: the overlapping pass drops.
	s, err = ScheduleAntennas(passes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dropped) != 1 || s.Dropped[0].SatelliteID != "b" {
		t.Errorf("dropped = %+v, want b", s.Dropped)
	}
}

func TestScheduleAntennasNoInstantOverbooking(t *testing.T) {
	// Whatever the input, at no instant may more passes be tracked than
	// antennas exist.
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	passes, err := PassSchedule(geo.LatLon{Lat: 47.6, Lon: -122.3}, c.Satellites, 0, 7200, 10)
	if err != nil {
		t.Fatal(err)
	}
	const antennas = 2
	s, err := ScheduleAntennas(passes, antennas)
	if err != nil {
		t.Fatal(err)
	}
	// Per-antenna passes must not overlap.
	byAntenna := map[int][]Pass{}
	for _, a := range s.Assignments {
		byAntenna[a.Antenna] = append(byAntenna[a.Antenna], a.Pass)
	}
	for ant, ps := range byAntenna {
		for i := 1; i < len(ps); i++ {
			if ps[i].RiseS < ps[i-1].SetS {
				t.Fatalf("antenna %d double-booked: %+v then %+v", ant, ps[i-1], ps[i])
			}
		}
	}
	if len(s.Assignments)+len(s.Dropped) != len(passes) {
		t.Error("schedule does not partition the passes")
	}
	// Utilization is a sane fraction.
	if u := s.Utilization(antennas, 7200); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if s.Utilization(0, 7200) != 0 || s.Utilization(2, 0) != 0 {
		t.Error("degenerate utilization should be 0")
	}
}

func TestMinAntennasFor(t *testing.T) {
	if got := MinAntennasFor(nil); got != 0 {
		t.Errorf("empty = %d", got)
	}
	// Three mutually overlapping passes need 3.
	passes := []Pass{mkPass("a", 0, 100), mkPass("b", 10, 110), mkPass("c", 20, 120)}
	if got := MinAntennasFor(passes); got != 3 {
		t.Errorf("triple overlap = %d, want 3", got)
	}
	// Back-to-back passes need 1 (set before rise at equal t).
	seq := []Pass{mkPass("a", 0, 100), mkPass("b", 100, 200)}
	if got := MinAntennasFor(seq); got != 1 {
		t.Errorf("sequential = %d, want 1", got)
	}
	// Scheduling with the computed minimum drops nothing.
	s, err := ScheduleAntennas(passes, MinAntennasFor(passes))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Dropped) != 0 {
		t.Errorf("minimum antennas still dropped %v", s.Dropped)
	}
}

func TestScheduleAntennasValidation(t *testing.T) {
	if _, err := ScheduleAntennas(nil, 0); err == nil {
		t.Error("zero antennas should fail")
	}
}
