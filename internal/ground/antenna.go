package ground

import (
	"errors"
	"sort"
)

// AntennaAssignment maps each accepted pass to an antenna index.
type AntennaAssignment struct {
	Pass    Pass
	Antenna int
}

// AntennaSchedule is the outcome of scheduling a pass plan onto a station's
// dishes: a gateway has finitely many antennas, and overlapping passes
// compete for them — the capacity constraint behind the
// ground-station-as-a-service pricing of §2.1 (a fully booked station is
// what drives visitor surcharges and §5(2)'s re-routing to idle stations).
type AntennaSchedule struct {
	Assignments []AntennaAssignment
	Dropped     []Pass // passes no antenna could take
}

// Utilization returns tracked time divided by (antennas × window).
func (s *AntennaSchedule) Utilization(antennas int, windowS float64) float64 {
	if antennas <= 0 || windowS <= 0 {
		return 0
	}
	var tracked float64
	for _, a := range s.Assignments {
		tracked += a.Pass.DurationS()
	}
	return tracked / (float64(antennas) * windowS)
}

// ScheduleAntennas assigns passes (as from PassSchedule, rise-sorted or
// not) to antennas. Passes are considered in rise order; each takes the
// lowest-indexed antenna free at its rise time, and passes that find no
// free antenna are dropped — the online greedy that real gateways run.
// With k antennas, any instant has at most k tracked passes.
func ScheduleAntennas(passes []Pass, antennas int) (*AntennaSchedule, error) {
	if antennas <= 0 {
		return nil, errors.New("ground: at least one antenna required")
	}
	sorted := append([]Pass(nil), passes...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].RiseS != sorted[j].RiseS { //lint:allow floateq exact sort tie-break keeps pass order deterministic
			return sorted[i].RiseS < sorted[j].RiseS
		}
		return sorted[i].SatelliteID < sorted[j].SatelliteID
	})
	freeAt := make([]float64, antennas) // time each antenna becomes free
	out := &AntennaSchedule{}
	for _, p := range sorted {
		assigned := -1
		for a := 0; a < antennas; a++ {
			if freeAt[a] <= p.RiseS {
				assigned = a
				break
			}
		}
		if assigned < 0 {
			out.Dropped = append(out.Dropped, p)
			continue
		}
		freeAt[assigned] = p.SetS
		out.Assignments = append(out.Assignments, AntennaAssignment{Pass: p, Antenna: assigned})
	}
	return out, nil
}

// MinAntennasFor returns the smallest antenna count that tracks every pass
// — the peak number of simultaneous passes (computed by sweep).
func MinAntennasFor(passes []Pass) int {
	type ev struct {
		t     float64
		delta int
	}
	var evs []ev
	for _, p := range passes {
		evs = append(evs, ev{p.RiseS, 1}, ev{p.SetS, -1})
	}
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].t != evs[j].t { //lint:allow floateq exact sort tie-break keeps event order deterministic
			return evs[i].t < evs[j].t
		}
		return evs[i].delta < evs[j].delta // sets before rises at the same t
	})
	cur, peak := 0, 0
	for _, e := range evs {
		cur += e.delta
		if cur > peak {
			peak = cur
		}
	}
	return peak
}
