package ground

import (
	"errors"
	"sort"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// Pass is one satellite's contact window at a station.
type Pass struct {
	SatelliteID string
	RiseS, SetS float64
	// MaxElevationDeg is the pass's peak elevation — low-peak passes give
	// poor link budgets and schedulers may skip them.
	MaxElevationDeg float64
}

// DurationS returns the pass length.
func (p Pass) DurationS() float64 { return p.SetS - p.RiseS }

// PassSchedule computes every pass of every satellite over the station in
// [startS, endS], sorted by rise time. It is the contact plan a
// ground-station-as-a-service operator sells access against (§2.1): the
// ground segment analogue of the ISL contact windows.
func PassSchedule(stationPos geo.LatLon, sats []orbit.Satellite, startS, endS, minElevationDeg float64) ([]Pass, error) {
	if endS <= startS {
		return nil, errors.New("ground: schedule window must be positive")
	}
	if !stationPos.Valid() {
		return nil, errors.New("ground: invalid station position")
	}
	var passes []Pass
	for _, s := range sats {
		windows := s.Elements.ContactWindows(stationPos, startS, endS, 30, minElevationDeg)
		for _, w := range windows {
			p := Pass{SatelliteID: s.ID, RiseS: w.RiseS, SetS: w.SetS}
			// Peak elevation by coarse scan inside the window.
			step := w.DurationS() / 20
			if step <= 0 {
				step = 1
			}
			for t := w.RiseS; t <= w.SetS; t += step {
				if el := geo.ElevationDeg(stationPos, s.Elements.PositionECEF(t)); el > p.MaxElevationDeg {
					p.MaxElevationDeg = el
				}
			}
			passes = append(passes, p)
		}
	}
	sort.Slice(passes, func(i, j int) bool {
		if passes[i].RiseS != passes[j].RiseS { //lint:allow floateq exact sort tie-break keeps pass order deterministic
			return passes[i].RiseS < passes[j].RiseS
		}
		return passes[i].SatelliteID < passes[j].SatelliteID
	})
	return passes, nil
}

// CoverageGaps returns the intervals within [startS, endS] during which no
// satellite is in view of the station — the service outages a gateway
// operator must plan around (or close by buying capacity from other
// OpenSpace members).
func CoverageGaps(passes []Pass, startS, endS float64) []Pass {
	var gaps []Pass
	cursor := startS
	// Merge passes into a covered timeline (they are rise-sorted).
	for _, p := range passes {
		if p.RiseS > cursor {
			gaps = append(gaps, Pass{RiseS: cursor, SetS: p.RiseS})
		}
		if p.SetS > cursor {
			cursor = p.SetS
		}
	}
	if cursor < endS {
		gaps = append(gaps, Pass{RiseS: cursor, SetS: endS})
	}
	return gaps
}
