// Package ground models OpenSpace's shared ground infrastructure (§2.1 of
// the paper): independently owned ground stations with reliable Internet
// backhaul that sell gateway service to any provider's satellites on a
// pay-per-use basis — "these ground stations build on the
// ground-station-as-a-service model … except that in OpenSpace ground
// stations could be owned by independent entities, which may price their
// services differently".
//
// The model captures the two behaviours the paper calls out:
//
//   - Metering: stations "should measure traffic through their gateways from
//     users associated with different providers" (§3) — the Meter type keeps
//     the per-provider byte counts that feed the economics ledgers.
//   - Home priority and visitor tariffs: a loaded station "may prioritize
//     traffic coming from its users, and may place higher tariffs on
//     'visitor' traffic" (§2.2) — the two-class Queue serves home traffic
//     first, and PriceQuote surcharges visitors as utilisation grows.
package ground

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/openspace-project/openspace/internal/geo"
)

// Station is one gateway ground station.
type Station struct {
	ID       string
	Provider string // owning firm
	Pos      geo.LatLon
	// BackhaulBps is the station's Internet backhaul capacity.
	BackhaulBps float64
	// BasePricePerGB is the gateway fee charged to the owner's own traffic.
	BasePricePerGB float64
	// VisitorSurge scales the visitor surcharge with utilisation: a visitor
	// pays BasePricePerGB · (1 + VisitorSurge·utilisation).
	VisitorSurge float64

	mu    sync.Mutex
	meter Meter
	queue Queue
}

// NewStation creates a gateway station.
func NewStation(id, provider string, pos geo.LatLon, backhaulBps, basePricePerGB, visitorSurge float64) (*Station, error) {
	if id == "" || provider == "" {
		return nil, errors.New("ground: station needs id and provider")
	}
	if !pos.Valid() {
		return nil, fmt.Errorf("ground: invalid position %v", pos)
	}
	if backhaulBps <= 0 {
		return nil, fmt.Errorf("ground: backhaul %.0f bps must be positive", backhaulBps)
	}
	if basePricePerGB < 0 || visitorSurge < 0 {
		return nil, errors.New("ground: prices must be non-negative")
	}
	return &Station{
		ID: id, Provider: provider, Pos: pos,
		BackhaulBps: backhaulBps, BasePricePerGB: basePricePerGB, VisitorSurge: visitorSurge,
		meter: Meter{byProvider: make(map[string]int64)},
		queue: Queue{rateBps: backhaulBps},
	}, nil
}

// Offer is a priced gateway admission for a chunk of traffic.
type Offer struct {
	PricePerGB  float64
	QueueDelayS float64 // expected queueing delay for this traffic class
	Home        bool
}

// Quote prices gateway service for trafficProvider at time t, without
// admitting anything.
func (s *Station) Quote(trafficProvider string, t float64) Offer {
	s.mu.Lock()
	defer s.mu.Unlock()
	home := trafficProvider == s.Provider
	price := s.BasePricePerGB
	if !home {
		price *= 1 + s.VisitorSurge*s.queue.utilization(t)
	}
	return Offer{
		PricePerGB:  price,
		QueueDelayS: s.queue.delayS(t, home),
		Home:        home,
	}
}

// Admit meters and enqueues bytes of traffic from trafficProvider arriving
// at time t, returning the offer that applied.
func (s *Station) Admit(trafficProvider string, bytes int64, t float64) (Offer, error) {
	if bytes <= 0 {
		return Offer{}, fmt.Errorf("ground: bytes %d must be positive", bytes)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	home := trafficProvider == s.Provider
	price := s.BasePricePerGB
	if !home {
		price *= 1 + s.VisitorSurge*s.queue.utilization(t)
	}
	offer := Offer{PricePerGB: price, QueueDelayS: s.queue.delayS(t, home), Home: home}
	s.meter.record(trafficProvider, bytes)
	s.queue.enqueue(t, float64(bytes*8), home)
	return offer, nil
}

// Usage returns the metered bytes per provider, for ledger cross-checks.
func (s *Station) Usage() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.meter.usage()
}

// Utilization returns the backhaul utilisation in [0,1] at t.
func (s *Station) Utilization(t float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queue.utilization(t)
}

// Meter tracks per-provider traffic through a gateway.
type Meter struct {
	byProvider map[string]int64
}

func (m *Meter) record(provider string, bytes int64) {
	m.byProvider[provider] += bytes
}

func (m *Meter) usage() map[string]int64 {
	out := make(map[string]int64, len(m.byProvider))
	for k, v := range m.byProvider {
		out[k] = v
	}
	return out
}

// Providers returns metered providers in sorted order.
func (m *Meter) Providers() []string {
	ps := make([]string, 0, len(m.byProvider))
	for p := range m.byProvider {
		ps = append(ps, p)
	}
	sort.Strings(ps)
	return ps
}

// Queue is a fluid two-class priority queue: home traffic drains strictly
// before visitor traffic, both at the backhaul rate. Backlogs decay linearly
// between events; all state is referenced to the last update time.
type Queue struct {
	rateBps     float64
	lastT       float64
	homeBits    float64
	visitorBits float64
}

// advance drains the queue up to time t.
func (q *Queue) advance(t float64) {
	if t <= q.lastT {
		return
	}
	budget := q.rateBps * (t - q.lastT)
	q.lastT = t
	if q.homeBits >= budget {
		q.homeBits -= budget
		return
	}
	budget -= q.homeBits
	q.homeBits = 0
	if q.visitorBits >= budget {
		q.visitorBits -= budget
		return
	}
	q.visitorBits = 0
}

func (q *Queue) enqueue(t float64, bits float64, home bool) {
	q.advance(t)
	if home {
		q.homeBits += bits
	} else {
		q.visitorBits += bits
	}
}

// delayS returns the queueing delay a new arrival of the given class would
// see at t: home traffic waits only behind home backlog; visitor traffic
// waits behind everything.
func (q *Queue) delayS(t float64, home bool) float64 {
	q.advance(t)
	if home {
		return q.homeBits / q.rateBps
	}
	return (q.homeBits + q.visitorBits) / q.rateBps
}

// utilization maps the total backlog into [0,1): the fraction of the next
// second of backhaul already spoken for, saturating at 1.
func (q *Queue) utilization(t float64) float64 {
	q.advance(t)
	u := (q.homeBits + q.visitorBits) / q.rateBps
	if u > 1 {
		return 1
	}
	return u
}
