package ground

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

func TestPassScheduleFullConstellation(t *testing.T) {
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	station := geo.LatLon{Lat: 47.6, Lon: -122.3}
	const horizon = 7200.0
	passes, err := PassSchedule(station, c.Satellites, 0, horizon, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(passes) < 5 {
		t.Fatalf("full Iridium gave only %d passes in 2 h", len(passes))
	}
	prev := -1.0
	for i, p := range passes {
		if p.RiseS < prev {
			t.Fatalf("pass %d out of order", i)
		}
		prev = p.RiseS
		if p.SetS <= p.RiseS {
			t.Fatalf("pass %d not positive: %+v", i, p)
		}
		if p.MaxElevationDeg < 10 || p.MaxElevationDeg > 90 {
			t.Fatalf("pass %d peak elevation %v", i, p.MaxElevationDeg)
		}
		if p.SatelliteID == "" {
			t.Fatalf("pass %d missing satellite", i)
		}
	}
	// Iridium leaves a mid-latitude station no gaps.
	gaps := CoverageGaps(passes, 0, horizon)
	if len(gaps) != 0 {
		t.Errorf("full constellation left %d gaps: %+v", len(gaps), gaps)
	}
}

func TestPassScheduleSparseHasGaps(t *testing.T) {
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sparse := c.Satellites[:3]
	station := geo.LatLon{Lat: 47.6, Lon: -122.3}
	const horizon = 7200.0
	passes, err := PassSchedule(station, sparse, 0, horizon, 10)
	if err != nil {
		t.Fatal(err)
	}
	gaps := CoverageGaps(passes, 0, horizon)
	if len(gaps) == 0 {
		t.Fatal("3 satellites cannot cover a station continuously")
	}
	// Gaps and passes partition the window.
	var covered, gapTime float64
	cursor := 0.0
	for _, p := range passes {
		if p.SetS > cursor {
			start := p.RiseS
			if start < cursor {
				start = cursor
			}
			covered += p.SetS - start
			cursor = p.SetS
		}
	}
	for _, g := range gaps {
		gapTime += g.DurationS()
	}
	if diff := covered + gapTime - horizon; diff > 1 || diff < -1 {
		t.Errorf("passes+gaps = %v, want %v", covered+gapTime, horizon)
	}
}

func TestPassScheduleValidation(t *testing.T) {
	if _, err := PassSchedule(geo.LatLon{}, nil, 10, 10, 5); err == nil {
		t.Error("empty window should fail")
	}
	if _, err := PassSchedule(geo.LatLon{Lat: 99}, nil, 0, 10, 5); err == nil {
		t.Error("bad position should fail")
	}
	// No satellites → no passes, whole window is one gap.
	passes, err := PassSchedule(geo.LatLon{}, nil, 0, 100, 5)
	if err != nil || len(passes) != 0 {
		t.Fatalf("empty schedule: %v, %v", passes, err)
	}
	gaps := CoverageGaps(passes, 0, 100)
	if len(gaps) != 1 || gaps[0].RiseS != 0 || gaps[0].SetS != 100 {
		t.Errorf("gaps = %+v", gaps)
	}
}
