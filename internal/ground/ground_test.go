package ground

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
)

func newTestStation(t *testing.T) *Station {
	t.Helper()
	s, err := NewStation("gs-1", "acme", geo.LatLon{Lat: 47.6, Lon: -122.3}, 1e9, 0.10, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewStationValidation(t *testing.T) {
	pos := geo.LatLon{Lat: 0, Lon: 0}
	cases := []struct {
		id, provider    string
		p               geo.LatLon
		backhaul, price float64
		surge           float64
	}{
		{"", "p", pos, 1e9, 0.1, 1},
		{"id", "", pos, 1e9, 0.1, 1},
		{"id", "p", geo.LatLon{Lat: 99, Lon: 0}, 1e9, 0.1, 1},
		{"id", "p", pos, 0, 0.1, 1},
		{"id", "p", pos, 1e9, -0.1, 1},
		{"id", "p", pos, 1e9, 0.1, -1},
	}
	for i, c := range cases {
		if _, err := NewStation(c.id, c.provider, c.p, c.backhaul, c.price, c.surge); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	if _, err := NewStation("id", "p", pos, 1e9, 0.1, 1); err != nil {
		t.Errorf("valid station rejected: %v", err)
	}
}

func TestHomeTrafficPaysBasePrice(t *testing.T) {
	s := newTestStation(t)
	offer, err := s.Admit("acme", 1<<30, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !offer.Home || offer.PricePerGB != 0.10 {
		t.Errorf("home offer = %+v", offer)
	}
}

func TestVisitorSurcharge(t *testing.T) {
	s := newTestStation(t)
	// Idle station: visitors pay base price.
	o := s.Quote("rival", 0)
	if o.Home || o.PricePerGB != 0.10 {
		t.Errorf("idle visitor quote = %+v", o)
	}
	// Load the station to ~50% of a second of backlog with home traffic.
	if _, err := s.Admit("acme", 62_500_000, 0); err != nil { // 0.5e9 bits
		t.Fatal(err)
	}
	loaded := s.Quote("rival", 0)
	want := 0.10 * (1 + 2.0*0.5)
	if !almost(loaded.PricePerGB, want) {
		t.Errorf("loaded visitor price = %v, want %v", loaded.PricePerGB, want)
	}
	// Home quote never surcharges.
	if h := s.Quote("acme", 0); h.PricePerGB != 0.10 {
		t.Errorf("home price moved: %v", h.PricePerGB)
	}
}

func TestHomePriority(t *testing.T) {
	s := newTestStation(t)
	// Visitor backlog does not delay home traffic.
	if _, err := s.Admit("rival", 125_000_000, 0); err != nil { // 1e9 bits = 1 s
		t.Fatal(err)
	}
	home := s.Quote("acme", 0)
	visitor := s.Quote("rival", 0)
	if home.QueueDelayS != 0 {
		t.Errorf("home delay behind visitor backlog = %v, want 0", home.QueueDelayS)
	}
	if !almost(visitor.QueueDelayS, 1.0) {
		t.Errorf("visitor delay = %v, want 1", visitor.QueueDelayS)
	}
	// Home backlog delays everyone.
	if _, err := s.Admit("acme", 125_000_000, 0); err != nil {
		t.Fatal(err)
	}
	if d := s.Quote("acme", 0).QueueDelayS; !almost(d, 1.0) {
		t.Errorf("home delay behind home backlog = %v, want 1", d)
	}
	if d := s.Quote("rival", 0).QueueDelayS; !almost(d, 2.0) {
		t.Errorf("visitor delay behind both = %v, want 2", d)
	}
}

func TestQueueDrains(t *testing.T) {
	s := newTestStation(t)
	if _, err := s.Admit("acme", 125_000_000, 0); err != nil { // 1 s of backlog
		t.Fatal(err)
	}
	if u := s.Utilization(0); !almost(u, 1.0) {
		t.Errorf("utilization at enqueue = %v", u)
	}
	if u := s.Utilization(0.5); !almost(u, 0.5) {
		t.Errorf("utilization after 0.5 s = %v", u)
	}
	if u := s.Utilization(2); u != 0 {
		t.Errorf("utilization after drain = %v", u)
	}
	// Time running backwards is ignored.
	if u := s.Utilization(1); u != 0 {
		t.Errorf("utilization must not resurrect: %v", u)
	}
}

func TestQueueVisitorDrainsAfterHome(t *testing.T) {
	s := newTestStation(t)
	s.Admit("rival", 62_500_000, 0) // 0.5 s visitor
	s.Admit("acme", 62_500_000, 0)  // 0.5 s home
	// After 0.5 s the home backlog is gone but the visitor backlog is
	// untouched.
	if d := s.Quote("acme", 0.5).QueueDelayS; d != 0 {
		t.Errorf("home delay after home drain = %v", d)
	}
	if d := s.Quote("rival", 0.5).QueueDelayS; !almost(d, 0.5) {
		t.Errorf("visitor backlog should remain: %v", d)
	}
	// After 1 s everything is drained.
	if d := s.Quote("rival", 1).QueueDelayS; d != 0 {
		t.Errorf("visitor delay after full drain = %v", d)
	}
}

func TestMeterUsage(t *testing.T) {
	s := newTestStation(t)
	s.Admit("acme", 100, 0)
	s.Admit("rival", 50, 0)
	s.Admit("rival", 25, 0)
	u := s.Usage()
	if u["acme"] != 100 || u["rival"] != 75 {
		t.Errorf("usage = %v", u)
	}
	// Usage returns a copy.
	u["acme"] = 0
	if s.Usage()["acme"] != 100 {
		t.Error("Usage leaked internal state")
	}
	m := Meter{byProvider: map[string]int64{"b": 1, "a": 2}}
	if p := m.Providers(); len(p) != 2 || p[0] != "a" || p[1] != "b" {
		t.Errorf("Providers = %v", p)
	}
}

func TestAdmitValidation(t *testing.T) {
	s := newTestStation(t)
	if _, err := s.Admit("acme", 0, 0); err == nil {
		t.Error("zero bytes should fail")
	}
	if _, err := s.Admit("acme", -5, 0); err == nil {
		t.Error("negative bytes should fail")
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
