// Package auth implements OpenSpace's user authentication (§2.2 of the
// paper): a RADIUS-style shared-secret challenge/response between a user and
// their home ISP, relayed over ISLs by the serving satellite, followed by the
// issuance of a digital roaming certificate — the home provider's signed
// statement that the user has been authenticated, which any other provider
// can verify offline. That certificate is what lets OpenSpace's rampant
// "roaming" (users served by satellites their ISP does not own) avoid a
// round trip to the home ISP on every association.
//
// Cryptography is stdlib only: HMAC-SHA256 for the challenge proof and
// Ed25519 for certificate signatures.
package auth

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Authentication errors.
var (
	ErrUnknownUser   = errors.New("auth: unknown user")
	ErrBadProof      = errors.New("auth: challenge proof mismatch")
	ErrNoChallenge   = errors.New("auth: no outstanding challenge for user")
	ErrUnknownIssuer = errors.New("auth: certificate issuer not trusted")
	ErrBadSignature  = errors.New("auth: certificate signature invalid")
	ErrExpired       = errors.New("auth: certificate expired")
	ErrNotYetValid   = errors.New("auth: certificate not yet valid")
)

// Proof computes the challenge/response proof: HMAC-SHA256 keyed with the
// user's shared secret over both nonces. Both the user terminal and the home
// ISP compute this; the exchange succeeds when they match.
func Proof(secret []byte, clientNonce, serverNonce uint64) []byte {
	mac := hmac.New(sha256.New, secret)
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[0:8], clientNonce)
	binary.LittleEndian.PutUint64(buf[8:16], serverNonce)
	mac.Write(buf[:]) //lint:allow errdrop hash.Hash.Write is documented to never return an error
	return mac.Sum(nil)
}

// Authenticator is a home ISP's authentication server. It holds the shared
// secrets of the provider's subscribers and the provider's certificate
// signing key. Safe for concurrent use.
type Authenticator struct {
	providerID string
	signKey    ed25519.PrivateKey
	certTTLS   float64

	mu         sync.Mutex
	secrets    map[string][]byte // userID → shared secret
	challenges map[string]uint64 // userID → outstanding server nonce
	nonceSrc   io.Reader
}

// NewAuthenticator creates the authentication server for providerID.
// certTTLS is the validity window of issued certificates in seconds.
// random supplies nonces and the signing key; pass a deterministic reader in
// simulations for reproducibility.
func NewAuthenticator(providerID string, certTTLS float64, random io.Reader) (*Authenticator, error) {
	if providerID == "" {
		return nil, errors.New("auth: provider ID must be non-empty")
	}
	if certTTLS <= 0 {
		return nil, fmt.Errorf("auth: certificate TTL %.1f must be positive", certTTLS)
	}
	_, priv, err := ed25519.GenerateKey(random)
	if err != nil {
		return nil, fmt.Errorf("auth: generating signing key: %w", err)
	}
	return &Authenticator{
		providerID: providerID,
		signKey:    priv,
		certTTLS:   certTTLS,
		secrets:    make(map[string][]byte),
		challenges: make(map[string]uint64),
		nonceSrc:   random,
	}, nil
}

// ProviderID returns the provider this authenticator serves.
func (a *Authenticator) ProviderID() string { return a.providerID }

// PublicKey returns the provider's certificate verification key. Providers
// exchange these out of band when joining OpenSpace (part of the standards
// onboarding the paper describes).
func (a *Authenticator) PublicKey() ed25519.PublicKey {
	return a.signKey.Public().(ed25519.PublicKey)
}

// Sign signs an arbitrary message with the provider's key — used for
// carriage receipts (economics) and misbehaviour reports (security), which
// verify against the same PublicKey providers already exchange.
func (a *Authenticator) Sign(msg []byte) []byte {
	return ed25519.Sign(a.signKey, msg)
}

// Enroll registers a subscriber and their shared secret.
func (a *Authenticator) Enroll(userID string, secret []byte) error {
	if userID == "" || len(secret) == 0 {
		return errors.New("auth: enroll requires user ID and secret")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.secrets[userID] = append([]byte(nil), secret...)
	return nil
}

// Challenge starts an authentication exchange for userID and returns the
// server nonce to send back in an AuthChallenge frame.
func (a *Authenticator) Challenge(userID string) (uint64, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.secrets[userID]; !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
	var buf [8]byte
	if _, err := io.ReadFull(a.nonceSrc, buf[:]); err != nil {
		return 0, fmt.Errorf("auth: drawing nonce: %w", err)
	}
	nonce := binary.LittleEndian.Uint64(buf[:])
	a.challenges[userID] = nonce
	return nonce, nil
}

// VerifyProof checks a user's challenge response. On success it consumes
// the outstanding challenge and issues a roaming certificate valid from
// nowS for the configured TTL.
func (a *Authenticator) VerifyProof(userID string, clientNonce uint64, proof []byte, nowS float64) (*Certificate, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	secret, ok := a.secrets[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, userID)
	}
	serverNonce, ok := a.challenges[userID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoChallenge, userID)
	}
	want := Proof(secret, clientNonce, serverNonce)
	if !hmac.Equal(want, proof) {
		return nil, fmt.Errorf("%w: user %q", ErrBadProof, userID)
	}
	delete(a.challenges, userID) // single use
	cert := &Certificate{
		UserID:     userID,
		Issuer:     a.providerID,
		IssuedAtS:  nowS,
		ExpiresAtS: nowS + a.certTTLS,
	}
	cert.Signature = ed25519.Sign(a.signKey, cert.signedBytes())
	return cert, nil
}

// TrustStore maps provider IDs to their certificate verification keys —
// the set of OpenSpace members a satellite trusts. Safe for concurrent use.
type TrustStore struct {
	mu   sync.RWMutex
	keys map[string]ed25519.PublicKey
}

// NewTrustStore returns an empty trust store.
func NewTrustStore() *TrustStore {
	return &TrustStore{keys: make(map[string]ed25519.PublicKey)}
}

// Add registers a provider's verification key.
func (t *TrustStore) Add(providerID string, key ed25519.PublicKey) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.keys[providerID] = key
}

// Verify checks a certificate's issuer trust, signature and validity window
// at time nowS.
func (t *TrustStore) Verify(c *Certificate, nowS float64) error {
	t.mu.RLock()
	key, ok := t.keys[c.Issuer]
	t.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownIssuer, c.Issuer)
	}
	if !ed25519.Verify(key, c.signedBytes(), c.Signature) {
		return ErrBadSignature
	}
	if nowS < c.IssuedAtS {
		return ErrNotYetValid
	}
	if nowS > c.ExpiresAtS {
		return ErrExpired
	}
	return nil
}
