package auth

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// testRand returns a deterministic byte stream for reproducible keys/nonces.
func testRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func newTestAuthenticator(t *testing.T, provider string) *Authenticator {
	t.Helper()
	a, err := NewAuthenticator(provider, 3600, testRand(1))
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAuthenticatorValidation(t *testing.T) {
	if _, err := NewAuthenticator("", 3600, testRand(1)); err == nil {
		t.Error("empty provider should fail")
	}
	if _, err := NewAuthenticator("acme", 0, testRand(1)); err == nil {
		t.Error("zero TTL should fail")
	}
	if _, err := NewAuthenticator("acme", -5, testRand(1)); err == nil {
		t.Error("negative TTL should fail")
	}
}

func TestEnrollValidation(t *testing.T) {
	a := newTestAuthenticator(t, "acme")
	if err := a.Enroll("", []byte("s")); err == nil {
		t.Error("empty user should fail")
	}
	if err := a.Enroll("u", nil); err == nil {
		t.Error("empty secret should fail")
	}
	if err := a.Enroll("u", []byte("s")); err != nil {
		t.Errorf("valid enroll failed: %v", err)
	}
}

func TestFullExchange(t *testing.T) {
	a := newTestAuthenticator(t, "acme")
	secret := []byte("user-17-secret")
	if err := a.Enroll("user-17", secret); err != nil {
		t.Fatal(err)
	}

	const clientNonce = 0xABCD
	serverNonce, err := a.Challenge("user-17")
	if err != nil {
		t.Fatal(err)
	}
	proof := Proof(secret, clientNonce, serverNonce)
	cert, err := a.VerifyProof("user-17", clientNonce, proof, 100)
	if err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if cert.UserID != "user-17" || cert.Issuer != "acme" {
		t.Errorf("cert fields wrong: %v", cert)
	}
	if cert.IssuedAtS != 100 || cert.ExpiresAtS != 3700 {
		t.Errorf("cert validity wrong: %v", cert)
	}

	// Verified by a visited provider that trusts acme.
	ts := NewTrustStore()
	ts.Add("acme", a.PublicKey())
	if err := ts.Verify(cert, 200); err != nil {
		t.Errorf("trusted cert rejected: %v", err)
	}
}

func TestChallengeUnknownUser(t *testing.T) {
	a := newTestAuthenticator(t, "acme")
	if _, err := a.Challenge("ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("got %v, want ErrUnknownUser", err)
	}
	if _, err := a.VerifyProof("ghost", 1, nil, 0); !errors.Is(err, ErrUnknownUser) {
		t.Errorf("got %v, want ErrUnknownUser", err)
	}
}

func TestVerifyWithoutChallenge(t *testing.T) {
	a := newTestAuthenticator(t, "acme")
	a.Enroll("u", []byte("s"))
	if _, err := a.VerifyProof("u", 1, []byte("x"), 0); !errors.Is(err, ErrNoChallenge) {
		t.Errorf("got %v, want ErrNoChallenge", err)
	}
}

func TestWrongProofRejected(t *testing.T) {
	a := newTestAuthenticator(t, "acme")
	secret := []byte("right")
	a.Enroll("u", secret)
	serverNonce, err := a.Challenge("u")
	if err != nil {
		t.Fatal(err)
	}
	// Wrong secret.
	bad := Proof([]byte("wrong"), 1, serverNonce)
	if _, err := a.VerifyProof("u", 1, bad, 0); !errors.Is(err, ErrBadProof) {
		t.Errorf("wrong secret: got %v, want ErrBadProof", err)
	}
	// Wrong client nonce binding.
	p := Proof(secret, 1, serverNonce)
	if _, err := a.VerifyProof("u", 2, p, 0); !errors.Is(err, ErrBadProof) {
		t.Errorf("nonce mismatch: got %v, want ErrBadProof", err)
	}
}

func TestChallengeSingleUse(t *testing.T) {
	a := newTestAuthenticator(t, "acme")
	secret := []byte("s")
	a.Enroll("u", secret)
	serverNonce, _ := a.Challenge("u")
	proof := Proof(secret, 7, serverNonce)
	if _, err := a.VerifyProof("u", 7, proof, 0); err != nil {
		t.Fatal(err)
	}
	// Replay must fail: challenge consumed.
	if _, err := a.VerifyProof("u", 7, proof, 0); !errors.Is(err, ErrNoChallenge) {
		t.Errorf("replay: got %v, want ErrNoChallenge", err)
	}
}

func TestTrustStoreVerifyErrors(t *testing.T) {
	a := newTestAuthenticator(t, "acme")
	secret := []byte("s")
	a.Enroll("u", secret)
	nonce, _ := a.Challenge("u")
	cert, err := a.VerifyProof("u", 3, Proof(secret, 3, nonce), 1000)
	if err != nil {
		t.Fatal(err)
	}

	ts := NewTrustStore()
	// Untrusted issuer.
	if err := ts.Verify(cert, 1000); !errors.Is(err, ErrUnknownIssuer) {
		t.Errorf("got %v, want ErrUnknownIssuer", err)
	}
	ts.Add("acme", a.PublicKey())
	// Valid.
	if err := ts.Verify(cert, 1000); err != nil {
		t.Errorf("valid cert: %v", err)
	}
	// Expired.
	if err := ts.Verify(cert, 1000+3601); !errors.Is(err, ErrExpired) {
		t.Errorf("got %v, want ErrExpired", err)
	}
	// Not yet valid.
	if err := ts.Verify(cert, 999); !errors.Is(err, ErrNotYetValid) {
		t.Errorf("got %v, want ErrNotYetValid", err)
	}
	// Tampered contents.
	forged := *cert
	forged.UserID = "other"
	if err := ts.Verify(&forged, 1000); !errors.Is(err, ErrBadSignature) {
		t.Errorf("forged user: got %v, want ErrBadSignature", err)
	}
	forged = *cert
	forged.ExpiresAtS += 999999
	if err := ts.Verify(&forged, 1000); !errors.Is(err, ErrBadSignature) {
		t.Errorf("extended validity: got %v, want ErrBadSignature", err)
	}
	// Signature from a different provider.
	b, err := NewAuthenticator("impostor", 3600, testRand(9))
	if err != nil {
		t.Fatal(err)
	}
	ts.Add("impostor", b.PublicKey())
	forged = *cert
	forged.Issuer = "impostor"
	if err := ts.Verify(&forged, 1000); !errors.Is(err, ErrBadSignature) {
		t.Errorf("cross-provider: got %v, want ErrBadSignature", err)
	}
}

func TestProofDeterministicAndKeyed(t *testing.T) {
	p1 := Proof([]byte("k"), 1, 2)
	p2 := Proof([]byte("k"), 1, 2)
	if !bytes.Equal(p1, p2) {
		t.Error("proof not deterministic")
	}
	if bytes.Equal(p1, Proof([]byte("other"), 1, 2)) {
		t.Error("proof ignores key")
	}
	if bytes.Equal(p1, Proof([]byte("k"), 2, 2)) {
		t.Error("proof ignores client nonce")
	}
	if bytes.Equal(p1, Proof([]byte("k"), 1, 3)) {
		t.Error("proof ignores server nonce")
	}
	if len(p1) != 32 {
		t.Errorf("proof length %d, want 32 (SHA-256)", len(p1))
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	f := func(user, issuer string, issued, expires float64, sig []byte) bool {
		if len(user) > 500 || len(issuer) > 500 || len(sig) > 500 {
			return true
		}
		in := &Certificate{
			UserID: user, Issuer: issuer,
			IssuedAtS: issued, ExpiresAtS: expires,
			Signature: sig,
		}
		out, err := UnmarshalCertificate(in.Marshal())
		if err != nil {
			return false
		}
		if len(in.Signature) == 0 && len(out.Signature) == 0 {
			in.Signature, out.Signature = nil, nil
		}
		return in.UserID == out.UserID && in.Issuer == out.Issuer &&
			eqFloat(in.IssuedAtS, out.IssuedAtS) && eqFloat(in.ExpiresAtS, out.ExpiresAtS) &&
			bytes.Equal(in.Signature, out.Signature)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// eqFloat compares floats bit-insensitively for NaN round trips.
func eqFloat(a, b float64) bool {
	return a == b || (a != a && b != b)
}

func TestUnmarshalCertificateErrors(t *testing.T) {
	good := (&Certificate{UserID: "u", Issuer: "i", Signature: []byte("sig")}).Marshal()
	// Every truncation must error, never panic.
	for i := 0; i < len(good); i++ {
		if _, err := UnmarshalCertificate(good[:i]); err == nil {
			t.Errorf("truncation at %d accepted", i)
		}
	}
	// Trailing junk rejected.
	if _, err := UnmarshalCertificate(append(bytes.Clone(good), 0x01)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestVerifiedCertSurvivesTransport(t *testing.T) {
	// Marshal → unmarshal must preserve signature validity.
	a := newTestAuthenticator(t, "acme")
	secret := []byte("s")
	a.Enroll("u", secret)
	nonce, _ := a.Challenge("u")
	cert, err := a.VerifyProof("u", 3, Proof(secret, 3, nonce), 50)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := UnmarshalCertificate(cert.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTrustStore()
	ts.Add("acme", a.PublicKey())
	if err := ts.Verify(recovered, 60); err != nil {
		t.Errorf("transported cert rejected: %v", err)
	}
}
