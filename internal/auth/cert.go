package auth

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Certificate is the home ISP's signed attestation that a user has been
// authenticated (§2.2: "The user's home provider should assign the user a
// digital certificate to inform other satellite providers that the user has
// been authenticated by their home network"). Visited providers verify it
// against the issuer's public key from their TrustStore — no online check.
type Certificate struct {
	UserID     string
	Issuer     string  // home provider ID
	IssuedAtS  float64 // seconds since network epoch
	ExpiresAtS float64
	Signature  []byte // Ed25519 over signedBytes()
}

// String implements fmt.Stringer.
func (c *Certificate) String() string {
	return fmt.Sprintf("cert{%s by %s, valid %.0f..%.0f}", c.UserID, c.Issuer, c.IssuedAtS, c.ExpiresAtS)
}

// signedBytes returns the canonical byte string covered by the signature.
func (c *Certificate) signedBytes() []byte {
	b := make([]byte, 0, 4+len(c.UserID)+len(c.Issuer)+16)
	b = appendStr(b, c.UserID)
	b = appendStr(b, c.Issuer)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.IssuedAtS))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(c.ExpiresAtS))
	return b
}

// Marshal serialises the certificate for transport inside an AuthResult
// frame.
func (c *Certificate) Marshal() []byte {
	b := c.signedBytes()
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Signature)))
	return append(b, c.Signature...)
}

// UnmarshalCertificate parses a certificate serialised with Marshal.
func UnmarshalCertificate(b []byte) (*Certificate, error) {
	c := &Certificate{}
	var err error
	if c.UserID, b, err = readStr(b); err != nil {
		return nil, err
	}
	if c.Issuer, b, err = readStr(b); err != nil {
		return nil, err
	}
	if len(b) < 16 {
		return nil, errTruncatedCert
	}
	c.IssuedAtS = math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))
	c.ExpiresAtS = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
	b = b[16:]
	if len(b) < 2 {
		return nil, errTruncatedCert
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) != n {
		return nil, errTruncatedCert
	}
	c.Signature = append([]byte(nil), b...)
	return c, nil
}

var errTruncatedCert = errors.New("auth: truncated certificate")

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

func readStr(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, errTruncatedCert
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, errTruncatedCert
	}
	return string(b[:n]), b[n:], nil
}
