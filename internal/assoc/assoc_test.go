package assoc

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/openspace-project/openspace/internal/auth"
	"github.com/openspace-project/openspace/internal/frame"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// beaconFor builds the beacon a satellite on the given elements would send.
func beaconFor(id, provider string, e orbit.Elements, load float64) *frame.Beacon {
	return &frame.Beacon{
		SatelliteID: id, ProviderID: provider, Caps: frame.CapRF,
		Orbit: frame.OrbitalState{
			SemiMajorAxisKm: e.SemiMajorAxisKm,
			Eccentricity:    e.Eccentricity,
			InclinationDeg:  e.InclinationDeg,
			RAANDeg:         e.RAANDeg,
			ArgPerigeeDeg:   e.ArgPerigeeDeg,
			MeanAnomalyDeg:  e.MeanAnomalyDeg,
		},
		LoadFraction: load,
	}
}

func newTestTerminal(t *testing.T) *Terminal {
	t.Helper()
	term, err := NewTerminal("user-1", "acme", []byte("secret"), geo.LatLon{Lat: 0, Lon: 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	return term
}

func TestNewTerminalValidation(t *testing.T) {
	pos := geo.LatLon{}
	if _, err := NewTerminal("", "isp", []byte("s"), pos, 10); err == nil {
		t.Error("empty user should fail")
	}
	if _, err := NewTerminal("u", "", []byte("s"), pos, 10); err == nil {
		t.Error("empty ISP should fail")
	}
	if _, err := NewTerminal("u", "isp", nil, pos, 10); err == nil {
		t.Error("empty secret should fail")
	}
	if _, err := NewTerminal("u", "isp", []byte("s"), geo.LatLon{Lat: 95}, 10); err == nil {
		t.Error("bad position should fail")
	}
}

func TestCandidatesSortedByRange(t *testing.T) {
	term := newTestTerminal(t)
	term.StartScan()
	// Overhead satellite, a farther one, and one below the horizon.
	term.OnBeacon(beaconFor("near", "acme", orbit.Circular(780, 0, 0, 0), 0.1))
	term.OnBeacon(beaconFor("far", "rival", orbit.Circular(780, 0, 0, 15), 0.1))
	term.OnBeacon(beaconFor("hidden", "rival", orbit.Circular(780, 0, 0, 180), 0.1))
	cs := term.Candidates(0)
	if len(cs) != 2 {
		t.Fatalf("got %d candidates, want 2 (hidden excluded): %+v", len(cs), cs)
	}
	if cs[0].SatelliteID != "near" || cs[1].SatelliteID != "far" {
		t.Errorf("order wrong: %+v", cs)
	}
	if cs[0].RangeKm >= cs[1].RangeKm {
		t.Errorf("ranges not sorted: %+v", cs)
	}
	if cs[0].Elevation < 80 {
		t.Errorf("overhead satellite elevation = %v", cs[0].Elevation)
	}
}

func TestCandidatesTieBreakByLoad(t *testing.T) {
	term := newTestTerminal(t)
	term.StartScan()
	// Two satellites at identical geometry but different loads.
	e := orbit.Circular(780, 0, 0, 0)
	term.OnBeacon(beaconFor("busy", "a", e, 0.9))
	term.OnBeacon(beaconFor("calm", "b", e, 0.1))
	cs := term.Candidates(0)
	if len(cs) != 2 || cs[0].SatelliteID != "calm" {
		t.Errorf("load tie-break failed: %+v", cs)
	}
}

// runFullAssociation drives a terminal through the complete exchange
// against a real authenticator.
func runFullAssociation(t *testing.T, term *Terminal, a *auth.Authenticator) error {
	t.Helper()
	term.StartScan()
	term.OnBeacon(beaconFor("sat-1", "roamco", orbit.Circular(780, 0, 0, 0), 0.2))
	req, err := term.SelectAndRequestAuth(0, 777)
	if err != nil {
		return err
	}
	if req.HomeISP != "acme" || req.ViaSatID != "sat-1" {
		t.Fatalf("auth request wrong: %+v", req)
	}
	nonce, err := a.Challenge(req.UserID)
	if err != nil {
		term.OnResult(&frame.AuthResult{UserID: req.UserID, Success: false, Reason: err.Error()})
		return err
	}
	resp, err := term.OnChallenge(&frame.AuthChallenge{UserID: req.UserID, ServerNonce: nonce})
	if err != nil {
		return err
	}
	cert, err := a.VerifyProof(req.UserID, req.ClientNonce, resp.Proof, 0)
	if err != nil {
		return term.OnResult(&frame.AuthResult{UserID: req.UserID, Success: false, Reason: err.Error()})
	}
	return term.OnResult(&frame.AuthResult{UserID: req.UserID, Success: true, Certificate: cert.Marshal()})
}

func TestFullAssociationFlow(t *testing.T) {
	term := newTestTerminal(t)
	a, err := auth.NewAuthenticator("acme", 3600, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	a.Enroll("user-1", []byte("secret"))
	if err := runFullAssociation(t, term, a); err != nil {
		t.Fatal(err)
	}
	if term.State() != StateAssociated {
		t.Fatalf("state = %v", term.State())
	}
	sat, prov := term.Serving()
	if sat != "sat-1" || prov != "roamco" {
		t.Errorf("serving %s/%s", sat, prov)
	}
	cert := term.Certificate()
	if cert == nil || cert.UserID != "user-1" || cert.Issuer != "acme" {
		t.Errorf("certificate = %v", cert)
	}
	// The certificate verifies under the home ISP's key — a visited
	// provider's check.
	ts := auth.NewTrustStore()
	ts.Add("acme", a.PublicKey())
	if err := ts.Verify(cert, 10); err != nil {
		t.Errorf("roaming cert rejected: %v", err)
	}
}

func TestAuthFailureResetsState(t *testing.T) {
	term := newTestTerminal(t)
	a, err := auth.NewAuthenticator("acme", 3600, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	a.Enroll("user-1", []byte("WRONG")) // server has a different secret
	if err := runFullAssociation(t, term, a); err == nil {
		t.Fatal("association should fail on secret mismatch")
	}
	if term.State() != StateIdle {
		t.Errorf("state after failure = %v", term.State())
	}
	if s, _ := term.Serving(); s != "" {
		t.Errorf("serving after failure = %q", s)
	}
}

func TestStateMachineGuards(t *testing.T) {
	term := newTestTerminal(t)
	// Auth operations require the right states.
	if _, err := term.SelectAndRequestAuth(0, 1); !errors.Is(err, ErrWrongState) {
		t.Errorf("select in idle: %v", err)
	}
	if _, err := term.OnChallenge(&frame.AuthChallenge{}); !errors.Is(err, ErrWrongState) {
		t.Errorf("challenge in idle: %v", err)
	}
	if err := term.OnResult(&frame.AuthResult{Success: true}); !errors.Is(err, ErrWrongState) {
		t.Errorf("result in idle: %v", err)
	}
	if err := term.SwitchTo("x", "y"); !errors.Is(err, ErrWrongState) {
		t.Errorf("switch in idle: %v", err)
	}
	// Scanning with no beacons.
	term.StartScan()
	if _, err := term.SelectAndRequestAuth(0, 1); !errors.Is(err, ErrNoBeacons) {
		t.Errorf("no beacons: %v", err)
	}
}

func TestSwitchToAfterAssociation(t *testing.T) {
	term := newTestTerminal(t)
	a, _ := auth.NewAuthenticator("acme", 3600, rand.New(rand.NewSource(1)))
	a.Enroll("user-1", []byte("secret"))
	if err := runFullAssociation(t, term, a); err != nil {
		t.Fatal(err)
	}
	cert := term.Certificate()
	if err := term.SwitchTo("sat-2", "otherco"); err != nil {
		t.Fatal(err)
	}
	sat, prov := term.Serving()
	if sat != "sat-2" || prov != "otherco" {
		t.Errorf("after switch: %s/%s", sat, prov)
	}
	// Certificate survives handover — no re-auth.
	if term.Certificate() != cert {
		t.Error("certificate lost on handover")
	}
	if term.State() != StateAssociated {
		t.Errorf("state after switch = %v", term.State())
	}
}

func TestMovedToResets(t *testing.T) {
	term := newTestTerminal(t)
	a, _ := auth.NewAuthenticator("acme", 3600, rand.New(rand.NewSource(1)))
	a.Enroll("user-1", []byte("secret"))
	if err := runFullAssociation(t, term, a); err != nil {
		t.Fatal(err)
	}
	if err := term.MovedTo(geo.LatLon{Lat: 50, Lon: 8}); err != nil {
		t.Fatal(err)
	}
	if term.State() != StateIdle || term.Certificate() != nil {
		t.Error("relocation must reset association and certificate")
	}
	if err := term.MovedTo(geo.LatLon{Lat: 99, Lon: 0}); err == nil {
		t.Error("invalid position should fail")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		StateIdle: "idle", StateScanning: "scanning",
		StateAuthenticating: "authenticating", StateAssociated: "associated",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
	if State(9).String() == "" {
		t.Error("unknown state string empty")
	}
}
