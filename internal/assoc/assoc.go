// Package assoc implements user association (§2.2 of the paper): a ground
// user terminal listens for the standardized beacons all OpenSpace
// satellites broadcast, evaluates them "to identify which satellite is in
// closest range", requests association, and authenticates with its home ISP
// through the serving satellite's ISLs (RADIUS-style; see internal/auth).
// On success the home ISP's roaming certificate is retained so later
// handovers and visited providers need no re-authentication.
//
// The Terminal type is the user side as an explicit state machine driven by
// frames and times, so simulations can interleave many terminals
// deterministically.
package assoc

import (
	"errors"
	"fmt"
	"sort"

	"github.com/openspace-project/openspace/internal/auth"
	"github.com/openspace-project/openspace/internal/frame"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// State is the terminal's association state.
type State int

// Association states.
const (
	StateIdle State = iota
	StateScanning
	StateAuthenticating
	StateAssociated
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateScanning:
		return "scanning"
	case StateAuthenticating:
		return "authenticating"
	case StateAssociated:
		return "associated"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Errors returned by the state machine.
var (
	ErrWrongState = errors.New("assoc: operation invalid in current state")
	ErrNoBeacons  = errors.New("assoc: no usable beacons heard")
	ErrAuthFailed = errors.New("assoc: authentication failed")
)

// Candidate is one evaluated beacon.
type Candidate struct {
	SatelliteID string
	ProviderID  string
	RangeKm     float64
	Elevation   float64
	Load        float64
}

// Terminal is a ground user terminal.
type Terminal struct {
	userID  string
	homeISP string
	secret  []byte
	pos     geo.LatLon
	minElev float64

	state    State
	heard    map[string]frame.Beacon
	serving  string
	provider string
	cert     *auth.Certificate
	nonce    uint64
}

// NewTerminal creates a terminal for a subscriber of homeISP.
func NewTerminal(userID, homeISP string, secret []byte, pos geo.LatLon, minElevationDeg float64) (*Terminal, error) {
	if userID == "" || homeISP == "" {
		return nil, errors.New("assoc: user and home ISP IDs required")
	}
	if len(secret) == 0 {
		return nil, errors.New("assoc: shared secret required")
	}
	if !pos.Valid() {
		return nil, fmt.Errorf("assoc: invalid position %v", pos)
	}
	return &Terminal{
		userID: userID, homeISP: homeISP, secret: secret,
		pos: pos, minElev: minElevationDeg,
		heard: make(map[string]frame.Beacon),
	}, nil
}

// State returns the current association state.
func (t *Terminal) State() State { return t.state }

// UserID returns the terminal's subscriber identifier.
func (t *Terminal) UserID() string { return t.userID }

// Serving returns the currently associated satellite and its provider
// (empty strings when not associated).
func (t *Terminal) Serving() (satellite, provider string) { return t.serving, t.provider }

// Certificate returns the roaming certificate, nil before authentication.
func (t *Terminal) Certificate() *auth.Certificate { return t.cert }

// StartScan begins beacon collection, discarding previous sightings.
func (t *Terminal) StartScan() {
	t.heard = make(map[string]frame.Beacon)
	t.state = StateScanning
}

// OnBeacon records a beacon while scanning; in other states beacons are
// stored only for bookkeeping (e.g. successor lookups).
func (t *Terminal) OnBeacon(b *frame.Beacon) {
	t.heard[b.SatelliteID] = *b
}

// Candidates evaluates the heard beacons at time now and returns the
// satellites visible above the terminal's elevation mask, sorted by range
// (closest first; ties by load, then ID for determinism).
func (t *Terminal) Candidates(now float64) []Candidate {
	var cs []Candidate
	for _, b := range t.heard {
		e := orbit.Elements{
			SemiMajorAxisKm: b.Orbit.SemiMajorAxisKm,
			Eccentricity:    b.Orbit.Eccentricity,
			InclinationDeg:  b.Orbit.InclinationDeg,
			RAANDeg:         b.Orbit.RAANDeg,
			ArgPerigeeDeg:   b.Orbit.ArgPerigeeDeg,
			MeanAnomalyDeg:  b.Orbit.MeanAnomalyDeg,
		}
		pos := e.PositionECEF(now)
		elev := geo.ElevationDeg(t.pos, pos)
		if elev < t.minElev {
			continue
		}
		cs = append(cs, Candidate{
			SatelliteID: b.SatelliteID,
			ProviderID:  b.ProviderID,
			RangeKm:     pos.DistanceKm(t.pos.Vec3(0)),
			Elevation:   elev,
			Load:        b.LoadFraction,
		})
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].RangeKm != cs[j].RangeKm { //lint:allow floateq exact sort tie-break keeps candidate order deterministic
			return cs[i].RangeKm < cs[j].RangeKm
		}
		if cs[i].Load != cs[j].Load { //lint:allow floateq exact sort tie-break keeps candidate order deterministic
			return cs[i].Load < cs[j].Load
		}
		return cs[i].SatelliteID < cs[j].SatelliteID
	})
	return cs
}

// SelectAndRequestAuth picks the best candidate and emits the AuthRequest
// to relay to the home ISP. clientNonce must be fresh per attempt.
func (t *Terminal) SelectAndRequestAuth(now float64, clientNonce uint64) (*frame.AuthRequest, error) {
	if t.state != StateScanning {
		return nil, fmt.Errorf("%w: %v", ErrWrongState, t.state)
	}
	cs := t.Candidates(now)
	if len(cs) == 0 {
		return nil, ErrNoBeacons
	}
	best := cs[0]
	t.serving = best.SatelliteID
	t.provider = best.ProviderID
	t.nonce = clientNonce
	t.state = StateAuthenticating
	return &frame.AuthRequest{
		UserID:      t.userID,
		HomeISP:     t.homeISP,
		ViaSatID:    best.SatelliteID,
		ClientNonce: clientNonce,
	}, nil
}

// OnChallenge answers the home ISP's challenge with the HMAC proof.
func (t *Terminal) OnChallenge(c *frame.AuthChallenge) (*frame.AuthResponse, error) {
	if t.state != StateAuthenticating {
		return nil, fmt.Errorf("%w: %v", ErrWrongState, t.state)
	}
	return &frame.AuthResponse{
		UserID: t.userID,
		Proof:  auth.Proof(t.secret, t.nonce, c.ServerNonce),
	}, nil
}

// OnResult completes association. On success the terminal stores the
// roaming certificate and becomes associated with the selected satellite.
func (t *Terminal) OnResult(r *frame.AuthResult) error {
	if t.state != StateAuthenticating {
		return fmt.Errorf("%w: %v", ErrWrongState, t.state)
	}
	if !r.Success {
		t.state = StateIdle
		t.serving, t.provider = "", ""
		return fmt.Errorf("%w: %s", ErrAuthFailed, r.Reason)
	}
	cert, err := auth.UnmarshalCertificate(r.Certificate)
	if err != nil {
		t.state = StateIdle
		return fmt.Errorf("assoc: bad certificate: %w", err)
	}
	t.cert = cert
	t.state = StateAssociated
	return nil
}

// SwitchTo retargets an associated terminal to a successor satellite
// without re-authentication — the handover fast path (§2.2): "this
// eliminates the need to run authentication and association protocols
// again".
func (t *Terminal) SwitchTo(satelliteID, providerID string) error {
	if t.state != StateAssociated {
		return fmt.Errorf("%w: %v", ErrWrongState, t.state)
	}
	t.serving = satelliteID
	t.provider = providerID
	return nil
}

// Dropped records loss of the serving link — the serving satellite failed
// or its access link went away. The terminal returns to idle and must run
// association again; unlike MovedTo the position is unchanged, and the
// roaming certificate (still valid until expiry) is refreshed by the next
// association rather than discarded here.
func (t *Terminal) Dropped() {
	t.state = StateIdle
	t.serving, t.provider = "", ""
	t.heard = make(map[string]frame.Beacon)
}

// MovedTo relocates the terminal. Moving to a new physical region drops
// association and certificate: the paper requires the full association and
// authentication process to run again after relocation.
func (t *Terminal) MovedTo(pos geo.LatLon) error {
	if !pos.Valid() {
		return fmt.Errorf("assoc: invalid position %v", pos)
	}
	t.pos = pos
	t.state = StateIdle
	t.serving, t.provider = "", ""
	t.cert = nil
	t.heard = make(map[string]frame.Beacon)
	return nil
}
