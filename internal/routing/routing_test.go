package routing

import (
	"errors"
	"math"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

// testSnapshot builds an Iridium snapshot with a user in Nairobi and a
// ground station in Seattle, split across nProviders.
func testSnapshot(t *testing.T, nProviders int, laser bool) *topo.Snapshot {
	t.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = topo.SatSpec{
			ID:       s.ID,
			Provider: string(rune('A' + i%nProviders)),
			Elements: s.Elements,
			HasLaser: laser,
		}
	}
	grounds := []topo.GroundSpec{{ID: "gs-seattle", Provider: "A", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}}
	users := []topo.UserSpec{{ID: "u-nairobi", Provider: "A", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	return topo.Build(0, topo.DefaultConfig(), sats, grounds, users)
}

func TestShortestPathBasic(t *testing.T) {
	s := testSnapshot(t, 1, false)
	p, err := ShortestPath(s, "u-nairobi", "gs-seattle", LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes[0] != "u-nairobi" || p.Nodes[len(p.Nodes)-1] != "gs-seattle" {
		t.Fatalf("endpoints wrong: %v", p.Nodes)
	}
	if p.Hops != len(p.Nodes)-1 {
		t.Errorf("hops %d for %d nodes", p.Hops, len(p.Nodes))
	}
	// Nairobi–Seattle surface distance is ~14800 km; the space path must be
	// at least that, and the latency must match distance/c.
	if p.DistanceKm < 13000 || p.DistanceKm > 25000 {
		t.Errorf("path distance %v km implausible", p.DistanceKm)
	}
	wantDelay := p.DistanceKm / 299792.458
	if math.Abs(p.DelayS-wantDelay) > 1e-9 {
		t.Errorf("delay %v, want %v", p.DelayS, wantDelay)
	}
	// Latency cost with no hop charge equals total delay.
	if math.Abs(p.Cost-p.DelayS) > 1e-12 {
		t.Errorf("cost %v != delay %v", p.Cost, p.DelayS)
	}
	if p.MinCapacityBps <= 0 {
		t.Error("missing bottleneck capacity")
	}
	// All intermediate nodes are satellites.
	for _, n := range p.Nodes[1 : len(p.Nodes)-1] {
		if s.Node(n).Kind != topo.KindSatellite {
			t.Errorf("intermediate node %s is %v", n, s.Node(n).Kind)
		}
	}
}

func TestShortestPathErrors(t *testing.T) {
	s := testSnapshot(t, 1, false)
	if _, err := ShortestPath(s, "ghost", "gs-seattle", HopCost()); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown src: %v", err)
	}
	if _, err := ShortestPath(s, "u-nairobi", "ghost", HopCost()); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown dst: %v", err)
	}
	// Unreachable: forbid every edge.
	never := func(topo.Edge, *topo.Snapshot) (float64, bool) { return 0, false }
	if _, err := ShortestPath(s, "u-nairobi", "gs-seattle", never); !errors.Is(err, ErrNoPath) {
		t.Errorf("unreachable: %v", err)
	}
}

func TestShortestPathOptimality(t *testing.T) {
	// Dijkstra's result must not exceed the cost of any 2-hop relay
	// alternative through a common neighbour (spot check on hop cost).
	s := testSnapshot(t, 1, false)
	p, err := ShortestPath(s, "u-nairobi", "gs-seattle", HopCost())
	if err != nil {
		t.Fatal(err)
	}
	// Minimum possible is 2 (user→sat→gs) — only if one satellite sees
	// both, which Nairobi→Seattle forbids; so hops must be ≥ 3 and the
	// path must be simple.
	if p.Hops < 3 {
		t.Errorf("implausibly short path: %v", p.Nodes)
	}
	seen := map[string]bool{}
	for _, n := range p.Nodes {
		if seen[n] {
			t.Fatalf("path has loop at %s", n)
		}
		seen[n] = true
	}
}

func TestTreeCoversComponent(t *testing.T) {
	s := testSnapshot(t, 1, false)
	dist, prev, err := Tree(s, "gs-seattle", LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if dist["gs-seattle"] != 0 {
		t.Error("root distance must be 0")
	}
	// Every satellite with any ISL/ground connectivity should be reachable
	// in a full Iridium mesh.
	reached := 0
	for _, id := range s.Nodes() {
		if _, ok := dist[id]; ok {
			reached++
		}
	}
	if reached < s.NodeCount()-2 {
		t.Errorf("tree reached %d of %d nodes", reached, s.NodeCount())
	}
	// prev pointers walk back to the root.
	for id := range dist {
		at := id
		for steps := 0; at != "gs-seattle"; steps++ {
			if steps > s.NodeCount() {
				t.Fatalf("prev chain from %s does not terminate", id)
			}
			at = prev[at]
		}
	}
	if _, _, err := Tree(s, "ghost", HopCost()); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown root: %v", err)
	}
}

func TestQoSPolicyFilters(t *testing.T) {
	s := testSnapshot(t, 1, false)
	cfg := topo.DefaultConfig()
	// A floor above RF ISL capacity makes satellite relaying impossible.
	p := QoSPolicy{MinCapacityBps: cfg.RFISLBps * 10, DelayWeight: 1}
	if _, err := ShortestPath(s, "u-nairobi", "gs-seattle", p.Cost()); !errors.Is(err, ErrNoPath) {
		t.Errorf("capacity floor should sever the path: %v", err)
	}
	// With a reachable floor the path returns.
	p.MinCapacityBps = 1
	if _, err := ShortestPath(s, "u-nairobi", "gs-seattle", p.Cost()); err != nil {
		t.Errorf("reachable floor failed: %v", err)
	}
}

func TestCrossOwnerTariffSteersPaths(t *testing.T) {
	// With 3 providers and a punitive tariff, the chosen path should use
	// fewer cross-owner hops than the latency-only path (§3: RF routes are
	// cheaper; providers weigh tariffs in routing).
	s := testSnapshot(t, 3, false)
	base, err := ShortestPath(s, "u-nairobi", "gs-seattle", DefaultQoS().Cost())
	if err != nil {
		t.Fatal(err)
	}
	pol := DefaultQoS()
	pol.CrossOwnerTariff = 1e6
	avoid, err := ShortestPath(s, "u-nairobi", "gs-seattle", pol.Cost())
	if err != nil {
		t.Fatal(err)
	}
	if avoid.CrossOwnerHops > base.CrossOwnerHops {
		t.Errorf("tariff did not reduce cross-owner hops: %d → %d",
			base.CrossOwnerHops, avoid.CrossOwnerHops)
	}
}

func TestRFPenaltySteersToLaser(t *testing.T) {
	// Mixed fleet: half the satellites have lasers. With a heavy RF
	// penalty, the path should traverse more laser links.
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, sat := range c.Satellites {
		sats[i] = topo.SatSpec{ID: sat.ID, Provider: "A", Elements: sat.Elements, HasLaser: i%2 == 0}
	}
	users := []topo.UserSpec{{ID: "u", Provider: "A", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	grounds := []topo.GroundSpec{{ID: "g", Provider: "A", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}}
	s := topo.Build(0, topo.DefaultConfig(), sats, grounds, users)

	count := func(p Path) (laser, rf int) {
		for i := 0; i+1 < len(p.Nodes); i++ {
			e, _ := s.Edge(p.Nodes[i], p.Nodes[i+1])
			switch e.Kind {
			case topo.LinkISLLaser:
				laser++
			case topo.LinkISLRF:
				rf++
			}
		}
		return
	}
	plain, err := ShortestPath(s, "u", "g", LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	pol := QoSPolicy{DelayWeight: 1, RFPenalty: 100}
	pref, err := ShortestPath(s, "u", "g", pol.Cost())
	if err != nil {
		t.Fatal(err)
	}
	_, plainRF := count(plain)
	_, prefRF := count(pref)
	if prefRF > plainRF {
		t.Errorf("RF penalty increased RF hops: %d → %d", plainRF, prefRF)
	}
}
