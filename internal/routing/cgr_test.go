package routing

import (
	"errors"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

// sparseSeries builds a time-expanded topology over a sparse fleet where
// synchronous paths usually do not exist at any single instant.
func sparseSeries(t *testing.T, nSats int, horizonS float64) *topo.TimeExpanded {
	t.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, 0, nSats)
	// Spread picks across planes for diverse ground tracks.
	for i := 0; i < nSats; i++ {
		s := c.Satellites[(i*13)%c.Len()]
		sats = append(sats, topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements})
	}
	users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	grounds := []topo.GroundSpec{{ID: "g", Provider: "p", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}}}
	te, err := topo.BuildTimeExpanded(0, horizonS, 60, topo.DefaultConfig(), sats, grounds, users)
	if err != nil {
		t.Fatal(err)
	}
	return te
}

func TestEarliestArrivalOnDenseMeshMatchesSynchronous(t *testing.T) {
	// With a full constellation the store-and-forward route needs no
	// waiting and matches the instantaneous shortest path's delay.
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
	}
	users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	grounds := []topo.GroundSpec{{ID: "g", Provider: "p", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}}}
	te, err := topo.BuildTimeExpanded(0, 300, 60, topo.DefaultConfig(), sats, grounds, users)
	if err != nil {
		t.Fatal(err)
	}
	route, err := EarliestArrival(te, "u", "g", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if route.TotalWaitS > 1e-9 {
		t.Errorf("dense mesh route waits %v s", route.TotalWaitS)
	}
	sync, err := ShortestPath(te.Snaps[0], "u", "g", LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if diff := route.ArrivalS - sync.DelayS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cgr arrival %v != synchronous delay %v", route.ArrivalS, sync.DelayS)
	}
}

func TestEarliestArrivalBridgesCoverageGaps(t *testing.T) {
	// A 5-satellite fleet: no instantaneous path at t=0, but carrying the
	// bundle on board across snapshots delivers within a six-hour horizon
	// (ground tracks must sweep over both endpoints) — the delay-tolerant
	// regime for below-critical-mass deployments.
	const horizon = 6 * 3600.0
	te := sparseSeries(t, 5, horizon)
	if _, err := ShortestPath(te.Snaps[0], "u", "g", LatencyCost(0)); err == nil {
		t.Skip("instantaneous path exists at t=0; geometry too benign for this test")
	}
	route, err := EarliestArrival(te, "u", "g", 0, 0)
	if err != nil {
		t.Fatalf("store-and-forward failed where it should bridge: %v", err)
	}
	if route.TotalWaitS <= 0 {
		t.Error("bridging a gap requires waiting somewhere")
	}
	if route.ArrivalS <= 0 {
		t.Errorf("arrival %v nonsensical", route.ArrivalS)
	}
	// Schedule consistency: hops are causally ordered and each hop's
	// departure is never before the previous arrival.
	at := 0.0
	for i, h := range route.Hops {
		if h.DepartS+1e-9 < at {
			t.Fatalf("hop %d departs %v before arrival %v", i, h.DepartS, at)
		}
		if h.ArriveS < h.DepartS {
			t.Fatalf("hop %d arrives before departing", i)
		}
		if wantWait := h.DepartS - at; mathAbs(wantWait-h.WaitS) > 1e-9 {
			t.Fatalf("hop %d wait %v, want %v", i, h.WaitS, wantWait)
		}
		at = h.ArriveS
	}
	if route.Hops[0].From != "u" || route.Hops[len(route.Hops)-1].To != "g" {
		t.Errorf("route endpoints wrong: %+v", route.Hops)
	}
	if mathAbs(route.ArrivalS-at) > 1e-9 {
		t.Errorf("ArrivalS %v != last hop arrival %v", route.ArrivalS, at)
	}
}

func TestEarliestArrivalTransmissionTime(t *testing.T) {
	te := sparseSeries(t, 66/13*13, 300) // any fleet; tx time just adds up
	r0, err := EarliestArrival(te, "u", "g", 0, 0)
	if err != nil {
		t.Skip("no route in this geometry")
	}
	r1, err := EarliestArrival(te, "u", "g", 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.ArrivalS < r0.ArrivalS+5 {
		t.Errorf("tx time not accounted: %v vs %v", r1.ArrivalS, r0.ArrivalS)
	}
	if _, err := EarliestArrival(te, "u", "g", 0, -1); err == nil {
		t.Error("negative tx time should fail")
	}
}

func TestEarliestArrivalErrors(t *testing.T) {
	te := sparseSeries(t, 5, 300)
	if _, err := EarliestArrival(te, "ghost", "g", 0, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown src: %v", err)
	}
	if _, err := EarliestArrival(te, "u", "ghost", 0, 0); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown dst: %v", err)
	}
	if _, err := EarliestArrival(&topo.TimeExpanded{}, "u", "g", 0, 0); err == nil {
		t.Error("empty series should fail")
	}
}

func mathAbs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
