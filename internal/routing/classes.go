package routing

import "fmt"

// ServiceClass names a QoS tier a provider sells. The paper (§2.2) has
// providers pre-position laser-equipped satellites "to handle traffic from
// users with more stringent QoS requirements" and, where paths are
// bandwidth-bottlenecked, "adjust advertised plans to reflect these looser
// QoS guarantees" — service classes are those advertised plans, expressed
// as routing policies.
type ServiceClass int

// Service classes, from most to least demanding.
const (
	// ClassInteractive: voice/video — latency-dominated, needs real
	// bandwidth, avoids slow RF hops and congested links aggressively.
	ClassInteractive ServiceClass = iota
	// ClassStandard: web browsing — balanced.
	ClassStandard
	// ClassBulk: background transfer — cheapest path wins; happily rides
	// RF ISLs and pays no premium to avoid other providers.
	ClassBulk
)

// String implements fmt.Stringer.
func (c ServiceClass) String() string {
	switch c {
	case ClassInteractive:
		return "interactive"
	case ClassStandard:
		return "standard"
	case ClassBulk:
		return "bulk"
	default:
		return fmt.Sprintf("ServiceClass(%d)", int(c))
	}
}

// Policy returns the class's routing policy.
func (c ServiceClass) Policy() QoSPolicy {
	switch c {
	case ClassInteractive:
		return QoSPolicy{
			MinCapacityBps:   10e6,
			DelayWeight:      2000,
			BandwidthWeight:  0.5,
			CrossOwnerTariff: 0.2, // latency matters more than tariffs
			RFPenalty:        2,   // strongly prefer laser ISLs
			LoadPenalty:      10,  // flee congestion early
		}
	case ClassBulk:
		return QoSPolicy{
			DelayWeight:      100, // latency nearly irrelevant
			BandwidthWeight:  0.05,
			CrossOwnerTariff: 2, // cost-sensitive: stay on-net when possible
			RFPenalty:        0, // RF is fine for bulk
			LoadPenalty:      2,
		}
	default:
		return DefaultQoS()
	}
}

// MinBpsFor returns the class's bandwidth floor (0 = none).
func (c ServiceClass) MinBpsFor() float64 { return c.Policy().MinCapacityBps }
