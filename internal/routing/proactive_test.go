package routing

import (
	"errors"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

func testTimeExpanded(t *testing.T) *topo.TimeExpanded {
	t.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = topo.SatSpec{ID: s.ID, Provider: "A", Elements: s.Elements}
	}
	grounds := []topo.GroundSpec{{ID: "gs", Provider: "A", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}}
	users := []topo.UserSpec{{ID: "u", Provider: "A", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	te, err := topo.BuildTimeExpanded(0, 300, 60, topo.DefaultConfig(), sats, grounds, users)
	if err != nil {
		t.Fatal(err)
	}
	return te
}

func TestProactiveRouteMatchesDijkstra(t *testing.T) {
	te := testTimeExpanded(t)
	r := NewProactiveRouter(te, LatencyCost(0))
	p, err := r.Route(0, "u", "gs")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ShortestPath(te.Snaps[0], "u", "gs", LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cost != direct.Cost {
		t.Errorf("proactive cost %v != direct %v", p.Cost, direct.Cost)
	}
}

func TestNextHopWalksToDestination(t *testing.T) {
	te := testTimeExpanded(t)
	r := NewProactiveRouter(te, LatencyCost(0))
	// Walking next hops from the user must reach the ground station in a
	// bounded number of steps, and the walk's cost must equal the
	// precomputed cost.
	at := "u"
	steps := 0
	for at != "gs" {
		hop, err := r.NextHop(0, at, "gs")
		if err != nil {
			t.Fatalf("NextHop(%s): %v", at, err)
		}
		at = hop
		if steps++; steps > 100 {
			t.Fatal("next-hop walk does not terminate")
		}
	}
	// Consistency of CostTo with the full route.
	c, err := r.CostTo(0, "u", "gs")
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Route(0, "u", "gs")
	if err != nil {
		t.Fatal(err)
	}
	if diff := c - p.Cost; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("CostTo %v != Route cost %v", c, p.Cost)
	}
	// Destination's own cost is zero.
	if c, err := r.CostTo(0, "gs", "gs"); err != nil || c != 0 {
		t.Errorf("self cost = %v, %v", c, err)
	}
}

func TestNextHopChangesAcrossSnapshots(t *testing.T) {
	te := testTimeExpanded(t)
	r := NewProactiveRouter(te, LatencyCost(0))
	// As the constellation rotates, the user's first hop should eventually
	// change — the routing dynamics handovers must track.
	h0, err := r.NextHop(0, "u", "gs")
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for _, tt := range []float64{60, 120, 180, 240, 300} {
		h, err := r.NextHop(tt, "u", "gs")
		if err != nil {
			continue
		}
		if h != h0 {
			changed = true
			break
		}
	}
	if !changed {
		t.Error("first hop never changed over 5 minutes of LEO motion")
	}
}

func TestProactiveErrors(t *testing.T) {
	te := testTimeExpanded(t)
	r := NewProactiveRouter(te, LatencyCost(0))
	if _, err := r.NextHop(0, "u", "ghost"); err == nil {
		t.Error("unknown destination should error")
	}
	if _, err := r.Route(0, "ghost", "gs"); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("unknown src: %v", err)
	}
	empty := NewProactiveRouter(&topo.TimeExpanded{}, LatencyCost(0))
	if _, err := empty.Route(0, "a", "b"); err == nil {
		t.Error("empty series should error")
	}
	if _, err := empty.NextHop(0, "a", "b"); err == nil {
		t.Error("empty series NextHop should error")
	}
}
