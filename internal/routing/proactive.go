package routing

import (
	"fmt"
	"sync"

	"github.com/openspace-project/openspace/internal/topo"
)

// ProactiveRouter precomputes routes over a time-expanded topology — the
// paper's first-stage routing regime (§2.2): the topology "is both known and
// public, allowing for pre-computation of static routes between any set of
// satellites and fixed ground infrastructure". Route tables are computed
// lazily per (snapshot, destination) and cached; the cost function must be
// load-independent for the precomputation to be sound.
type ProactiveRouter struct {
	te   *topo.TimeExpanded
	cost CostFunc

	mu     sync.Mutex
	tables map[tableKey]*table
}

type tableKey struct {
	snapIdx int
	dst     string
}

// table is a reverse shortest-path tree toward one destination.
type table struct {
	next map[string]string // node → next hop toward dst
	dist map[string]float64
}

// NewProactiveRouter creates a router over the series with the given
// (load-independent) cost function.
func NewProactiveRouter(te *topo.TimeExpanded, cost CostFunc) *ProactiveRouter {
	return &ProactiveRouter{te: te, cost: cost, tables: make(map[tableKey]*table)}
}

// Route returns the full path from src to dst valid at time t.
func (r *ProactiveRouter) Route(t float64, src, dst string) (Path, error) {
	snap := r.te.At(t)
	if snap == nil {
		return Path{}, fmt.Errorf("routing: proactive: no snapshot at t=%.1f", t)
	}
	return ShortestPath(snap, src, dst, r.cost)
}

// NextHop returns the precomputed next hop from node toward dst at time t —
// the per-satellite forwarding decision. Tables are built on first use per
// (snapshot, destination) with a single reverse Dijkstra, exploiting
// symmetric edges.
func (r *ProactiveRouter) NextHop(t float64, node, dst string) (string, error) {
	snap := r.te.At(t)
	if snap == nil {
		return "", fmt.Errorf("routing: proactive: no snapshot at t=%.1f", t)
	}
	idx := r.snapIndex(snap)
	key := tableKey{snapIdx: idx, dst: dst}

	r.mu.Lock()
	tab, ok := r.tables[key]
	r.mu.Unlock()
	if !ok {
		var err error
		tab, err = r.buildTable(snap, dst)
		if err != nil {
			return "", err
		}
		r.mu.Lock()
		r.tables[key] = tab
		r.mu.Unlock()
	}
	hop, ok := tab.next[node]
	if !ok {
		return "", fmt.Errorf("%w: %s → %s at t=%.1f", ErrNoPath, node, dst, t)
	}
	return hop, nil
}

// buildTable runs Dijkstra rooted at dst; because every edge has a
// symmetric twin, the predecessor toward dst is the next hop from each node.
func (r *ProactiveRouter) buildTable(snap *topo.Snapshot, dst string) (*table, error) {
	dist, prev, err := Tree(snap, dst, r.cost)
	if err != nil {
		return nil, err
	}
	next := make(map[string]string, len(prev))
	for node, p := range prev {
		next[node] = p
	}
	return &table{next: next, dist: dist}, nil
}

func (r *ProactiveRouter) snapIndex(snap *topo.Snapshot) int {
	for i, s := range r.te.Snaps {
		if s == snap {
			return i
		}
	}
	return -1
}

// CostTo returns the precomputed path cost from node to dst at time t.
func (r *ProactiveRouter) CostTo(t float64, node, dst string) (float64, error) {
	if _, err := r.NextHop(t, node, dst); err != nil && node != dst {
		return 0, err
	}
	snap := r.te.At(t)
	key := tableKey{snapIdx: r.snapIndex(snap), dst: dst}
	r.mu.Lock()
	tab := r.tables[key]
	r.mu.Unlock()
	if tab == nil {
		return 0, fmt.Errorf("%w: %s → %s", ErrNoPath, node, dst)
	}
	d, ok := tab.dist[node]
	if !ok {
		return 0, fmt.Errorf("%w: %s → %s", ErrNoPath, node, dst)
	}
	return d, nil
}
