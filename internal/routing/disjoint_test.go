package routing

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

// disjointSnapshot builds an Iridium snapshot with a 0° elevation mask so
// terminals see several satellites — disjointness is limited by the mesh,
// not by a single access link.
func disjointSnapshot(t *testing.T) *topo.Snapshot {
	t.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
	}
	cfg := topo.DefaultConfig()
	cfg.MinElevationDeg = 0
	return topo.Build(0, cfg, sats,
		[]topo.GroundSpec{{ID: "gs-seattle", Provider: "p", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}},
		[]topo.UserSpec{{ID: "u-nairobi", Provider: "p", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}})
}

func TestDisjointPathsAreDisjoint(t *testing.T) {
	s := disjointSnapshot(t)
	paths, err := DisjointPaths(s, "u-nairobi", "gs-seattle", LatencyCost(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("dense Iridium mesh should offer ≥2 disjoint paths, got %d", len(paths))
	}
	// No undirected edge appears in two paths.
	used := map[[2]string]int{}
	for pi, p := range paths {
		for i := 0; i+1 < len(p.Nodes); i++ {
			a, b := p.Nodes[i], p.Nodes[i+1]
			if a > b {
				a, b = b, a
			}
			key := [2]string{a, b}
			if prev, ok := used[key]; ok {
				t.Fatalf("edge %v shared by paths %d and %d", key, prev, pi)
			}
			used[key] = pi
		}
	}
	// Ordered by cost.
	for i := 1; i < len(paths); i++ {
		if paths[i].Cost < paths[i-1].Cost {
			t.Errorf("paths out of order: %v then %v", paths[i-1].Cost, paths[i].Cost)
		}
	}
	// First is the global optimum.
	best, err := ShortestPath(s, "u-nairobi", "gs-seattle", LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if paths[0].Cost != best.Cost {
		t.Errorf("first disjoint path cost %v != optimum %v", paths[0].Cost, best.Cost)
	}
}

func TestDisjointPathsDegenerate(t *testing.T) {
	s := disjointSnapshot(t)
	if ps, err := DisjointPaths(s, "u-nairobi", "gs-seattle", HopCost(), 0); err != nil || ps != nil {
		t.Errorf("k=0: %v, %v", ps, err)
	}
	if _, err := DisjointPaths(s, "ghost", "gs-seattle", HopCost(), 2); err == nil {
		t.Error("unknown source should error")
	}
	// Asking for far more paths than exist returns what exists.
	paths, err := DisjointPaths(s, "u-nairobi", "gs-seattle", HopCost(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 || len(paths) >= 100 {
		t.Errorf("paths = %d", len(paths))
	}
}

func TestSplitFlow(t *testing.T) {
	paths := []Path{
		{MinCapacityBps: 30e6},
		{MinCapacityBps: 10e6},
	}
	// Proportional split within capacity.
	alloc, placed := SplitFlow(paths, 20e6)
	if placed != 20e6 {
		t.Errorf("placed %v, want all", placed)
	}
	if alloc[0] != 15e6 || alloc[1] != 5e6 {
		t.Errorf("alloc = %v, want proportional 15/5", alloc)
	}
	// Demand above total capacity clamps to bottlenecks.
	alloc, placed = SplitFlow(paths, 100e6)
	if alloc[0] != 30e6 || alloc[1] != 10e6 {
		t.Errorf("saturated alloc = %v", alloc)
	}
	if placed != 40e6 {
		t.Errorf("placed %v, want 40e6", placed)
	}
	// Degenerate inputs.
	if a, p := SplitFlow(nil, 10); a != nil || p != 0 {
		t.Error("nil paths")
	}
	if a, p := SplitFlow(paths, 0); a != nil || p != 0 {
		t.Error("zero demand")
	}
	if _, p := SplitFlow([]Path{{MinCapacityBps: 0}}, 10); p != 0 {
		t.Error("zero-capacity path placed traffic")
	}
}

func TestSplitAcrossDisjointBeatsBottleneck(t *testing.T) {
	// The paper's load-balancing dividend: splitting across disjoint paths
	// carries more than any single path's bottleneck.
	s := disjointSnapshot(t)
	paths, err := DisjointPaths(s, "u-nairobi", "gs-seattle", LatencyCost(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Skip("geometry yields a single path")
	}
	_, placed := SplitFlow(paths, 1e12)
	if placed <= paths[0].MinCapacityBps {
		t.Errorf("split placed %v, no better than single bottleneck %v",
			placed, paths[0].MinCapacityBps)
	}
}
