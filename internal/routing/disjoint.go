package routing

import (
	"github.com/openspace-project/openspace/internal/topo"
)

// DisjointPaths returns up to k edge-disjoint paths from src to dst in
// increasing cost order, found by iterated Dijkstra with used edges
// removed. Edge-disjoint alternatives are what the paper's §4 redundancy
// argument buys: "additional satellites ensure … load balancing" — traffic
// split across disjoint routes shares no bottleneck, and a failed ISL
// takes down at most one of them.
//
// Iterated removal is not guaranteed to find the maximum disjoint set (that
// needs Suurballe's algorithm); on dense LEO meshes it finds near-optimal
// sets at a fraction of the complexity, and every returned path is valid
// and mutually edge-disjoint — which is what the splitter needs.
func DisjointPaths(s *topo.Snapshot, src, dst string, cost CostFunc, k int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	banned := map[[2]string]bool{}
	restricted := func(e topo.Edge, snap *topo.Snapshot) (float64, bool) {
		if banned[[2]string{e.From, e.To}] || banned[[2]string{e.To, e.From}] {
			return 0, false
		}
		return cost(e, snap)
	}
	var paths []Path
	for len(paths) < k {
		p, err := ShortestPath(s, src, dst, restricted)
		if err != nil {
			if len(paths) == 0 {
				return nil, err
			}
			break // no more disjoint capacity
		}
		paths = append(paths, p)
		if len(p.Nodes) < 2 {
			break // src == dst: the zero-hop path uses no edges; one copy suffices
		}
		for i := 0; i+1 < len(p.Nodes); i++ {
			banned[[2]string{p.Nodes[i], p.Nodes[i+1]}] = true
		}
	}
	return paths, nil
}

// SplitFlow divides totalBps across the given paths in proportion to each
// path's bottleneck capacity, never exceeding any bottleneck. It returns
// the per-path allocation (aligned with paths) and the total placed, which
// is less than totalBps when the disjoint set cannot carry it all.
func SplitFlow(paths []Path, totalBps float64) ([]float64, float64) {
	if len(paths) == 0 || totalBps <= 0 {
		return nil, 0
	}
	var capSum float64
	for _, p := range paths {
		capSum += p.MinCapacityBps
	}
	alloc := make([]float64, len(paths))
	if capSum == 0 {
		return alloc, 0
	}
	var placed float64
	for i, p := range paths {
		share := totalBps * p.MinCapacityBps / capSum
		if share > p.MinCapacityBps {
			share = p.MinCapacityBps
		}
		alloc[i] = share
		placed += share
	}
	return alloc, placed
}
