package routing

import (
	"sort"

	"github.com/openspace-project/openspace/internal/topo"
)

// KShortestPaths returns up to k loopless shortest paths from src to dst in
// increasing cost order, using Yen's algorithm. Path diversity matters in
// OpenSpace because the preferred path may cross a provider whose tariff or
// load makes a slightly longer same-provider path preferable — the economics
// layer compares alternatives produced here.
func KShortestPaths(s *topo.Snapshot, src, dst string, cost CostFunc, k int) ([]Path, error) {
	if k <= 0 {
		return nil, nil
	}
	first, err := ShortestPath(s, src, dst, cost)
	if err != nil {
		return nil, err
	}
	paths := []Path{first}
	var candidates []Path

	for len(paths) < k {
		prevPath := paths[len(paths)-1].Nodes
		// For each spur node in the previous path, search for a deviation.
		for i := 0; i < len(prevPath)-1; i++ {
			spur := prevPath[i]
			rootNodes := prevPath[:i+1]

			// Edges to exclude: the next hop of every accepted path that
			// shares this root.
			banEdge := map[[2]string]bool{}
			for _, p := range paths {
				if len(p.Nodes) > i && equalPrefix(p.Nodes, rootNodes) {
					banEdge[[2]string{p.Nodes[i], p.Nodes[i+1]}] = true
				}
			}
			// Nodes of the root (except the spur) are excluded to keep
			// paths loopless.
			banNode := map[string]bool{}
			for _, n := range rootNodes[:len(rootNodes)-1] {
				banNode[n] = true
			}
			restricted := func(e topo.Edge, snap *topo.Snapshot) (float64, bool) {
				if banNode[e.To] || banNode[e.From] || banEdge[[2]string{e.From, e.To}] {
					return 0, false
				}
				return cost(e, snap)
			}
			spurPath, err := ShortestPath(s, spur, dst, restricted)
			if err != nil {
				continue
			}
			total := joinPaths(s, rootNodes, spurPath.Nodes, cost)
			if total != nil && !containsPath(paths, total.Nodes) && !containsPath(candidates, total.Nodes) {
				candidates = append(candidates, *total)
			}
		}
		if len(candidates) == 0 {
			break
		}
		sort.Slice(candidates, func(a, b int) bool {
			if candidates[a].Cost != candidates[b].Cost { //lint:allow floateq exact sort tie-break keeps k-path order deterministic
				return candidates[a].Cost < candidates[b].Cost
			}
			return lessNodes(candidates[a].Nodes, candidates[b].Nodes)
		})
		paths = append(paths, candidates[0])
		candidates = candidates[1:]
	}
	return paths, nil
}

func equalPrefix(nodes, prefix []string) bool {
	if len(nodes) < len(prefix) {
		return false
	}
	for i := range prefix {
		if nodes[i] != prefix[i] {
			return false
		}
	}
	return true
}

func containsPath(paths []Path, nodes []string) bool {
	for _, p := range paths {
		if len(p.Nodes) != len(nodes) {
			continue
		}
		same := true
		for i := range nodes {
			if p.Nodes[i] != nodes[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

func lessNodes(a, b []string) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// joinPaths concatenates root (ending at the spur) with spurPath (starting
// at the spur) and recomputes stats; returns nil if the join would loop.
func joinPaths(s *topo.Snapshot, root, spurPath []string, cost CostFunc) *Path {
	nodes := make([]string, 0, len(root)+len(spurPath)-1)
	nodes = append(nodes, root...)
	nodes = append(nodes, spurPath[1:]...)
	seen := map[string]bool{}
	for _, n := range nodes {
		if seen[n] {
			return nil
		}
		seen[n] = true
	}
	var edges []topo.Edge
	var total float64
	for i := 0; i+1 < len(nodes); i++ {
		e, ok := s.Edge(nodes[i], nodes[i+1])
		if !ok {
			return nil
		}
		w, usable := cost(e, s)
		if !usable {
			return nil
		}
		total += w
		edges = append(edges, e)
	}
	p := statsFromEdges(nodes, total, edges)
	return &p
}
