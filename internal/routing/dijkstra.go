package routing

import (
	"container/heap"
	"errors"
	"fmt"

	"github.com/openspace-project/openspace/internal/topo"
)

// ErrNoPath is returned when the destination is unreachable under the cost
// function's usability constraints.
var ErrNoPath = errors.New("routing: no path")

// ErrUnknownNode is returned when an endpoint is not in the snapshot.
var ErrUnknownNode = errors.New("routing: unknown node")

// item is a priority-queue entry.
type item struct {
	id   string
	cost float64
}

type pq []item

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(item)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// ShortestPath runs Dijkstra from src to dst on the snapshot under the cost
// function.
func ShortestPath(s *topo.Snapshot, src, dst string, cost CostFunc) (Path, error) {
	if s.Node(src) == nil {
		return Path{}, fmt.Errorf("%w: %q", ErrUnknownNode, src)
	}
	if s.Node(dst) == nil {
		return Path{}, fmt.Errorf("%w: %q", ErrUnknownNode, dst)
	}
	dist, prev := dijkstra(s, src, cost, dst)
	if _, ok := dist[dst]; !ok {
		return Path{}, fmt.Errorf("%w: %s → %s", ErrNoPath, src, dst)
	}
	return buildPath(s, src, dst, dist[dst], prev), nil
}

// Tree computes the full shortest-path tree from src: cost and predecessor
// for every reachable node. It is the building block of proactive route
// tables, where one Dijkstra run yields routes to all destinations.
func Tree(s *topo.Snapshot, src string, cost CostFunc) (map[string]float64, map[string]string, error) {
	if s.Node(src) == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrUnknownNode, src)
	}
	dist, prev := dijkstra(s, src, cost, "")
	return dist, prev, nil
}

// dijkstra runs the search; if stopAt is non-empty the search terminates
// once that node is settled.
func dijkstra(s *topo.Snapshot, src string, cost CostFunc, stopAt string) (map[string]float64, map[string]string) {
	dist := map[string]float64{src: 0}
	prev := map[string]string{}
	done := map[string]bool{}
	q := &pq{{id: src, cost: 0}}
	for q.Len() > 0 {
		cur := heap.Pop(q).(item)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if stopAt != "" && cur.id == stopAt {
			break
		}
		for _, e := range s.Neighbors(cur.id) {
			w, usable := cost(e, s)
			if !usable || w < 0 {
				continue
			}
			nd := cur.cost + w
			if old, ok := dist[e.To]; !ok || nd < old {
				dist[e.To] = nd
				prev[e.To] = cur.id
				heap.Push(q, item{id: e.To, cost: nd})
			}
		}
	}
	return dist, prev
}

// buildPath reconstructs the node sequence and edge stats from prev links.
func buildPath(s *topo.Snapshot, src, dst string, cost float64, prev map[string]string) Path {
	var rev []string
	for at := dst; ; {
		rev = append(rev, at)
		if at == src {
			break
		}
		at = prev[at]
	}
	nodes := make([]string, len(rev))
	for i := range rev {
		nodes[i] = rev[len(rev)-1-i]
	}
	edges := make([]topo.Edge, 0, len(nodes)-1)
	for i := 0; i+1 < len(nodes); i++ {
		e, _ := s.Edge(nodes[i], nodes[i+1])
		edges = append(edges, e)
	}
	return statsFromEdges(nodes, cost, edges)
}
