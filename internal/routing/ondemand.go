package routing

import (
	"fmt"
	"sync"

	"github.com/openspace-project/openspace/internal/topo"
)

// EdgeLoad tracks live utilisation of directed edges. It is the mutable
// state that makes on-demand routing necessary: "the cost of a path cannot
// be fully predicted since ISL congestion cannot be anticipated" (§2.2).
// Safe for concurrent use.
type EdgeLoad struct {
	mu   sync.RWMutex
	used map[[2]string]float64 // committed bps per directed edge
	caps map[[2]string]float64 // capacity per directed edge
}

// NewEdgeLoad returns an empty load tracker primed with the snapshot's edge
// capacities.
func NewEdgeLoad(s *topo.Snapshot) *EdgeLoad {
	l := &EdgeLoad{
		used: make(map[[2]string]float64),
		caps: make(map[[2]string]float64),
	}
	for _, id := range s.Nodes() {
		for _, e := range s.Neighbors(id) {
			l.caps[[2]string{e.From, e.To}] = e.CapacityBps
		}
	}
	return l
}

// Utilization implements LoadMap.
func (l *EdgeLoad) Utilization(from, to string) float64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	key := [2]string{from, to}
	c := l.caps[key]
	if c <= 0 {
		return 0
	}
	u := l.used[key] / c
	if u > 1 {
		u = 1
	}
	return u
}

// Commit reserves bps along the path (in the forward direction).
func (l *EdgeLoad) Commit(p Path, bps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i+1 < len(p.Nodes); i++ {
		l.used[[2]string{p.Nodes[i], p.Nodes[i+1]}] += bps
	}
}

// Release undoes a Commit.
func (l *EdgeLoad) Release(p Path, bps float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 0; i+1 < len(p.Nodes); i++ {
		key := [2]string{p.Nodes[i], p.Nodes[i+1]}
		l.used[key] -= bps
		if l.used[key] < 0 {
			l.used[key] = 0
		}
	}
}

// OnDemandRouter computes paths at request time against live load — the
// paper's second-stage regime for a scaled-up OpenSpace. Each request sees
// the congestion left by previously admitted flows.
type OnDemandRouter struct {
	snap   *topo.Snapshot
	policy QoSPolicy
	load   *EdgeLoad
}

// NewOnDemandRouter creates a router on one snapshot. The policy's Load
// field is overridden with the router's own tracker.
func NewOnDemandRouter(snap *topo.Snapshot, policy QoSPolicy) *OnDemandRouter {
	load := NewEdgeLoad(snap)
	policy.Load = load
	if policy.LoadPenalty == 0 {
		policy.LoadPenalty = 5
	}
	return &OnDemandRouter{snap: snap, policy: policy, load: load}
}

// Load exposes the live tracker (e.g. for metrics).
func (r *OnDemandRouter) Load() *EdgeLoad { return r.load }

// Admit finds a path for a flow of the given rate and commits its bandwidth.
// It fails if no path can carry the flow without saturating a link.
func (r *OnDemandRouter) Admit(src, dst string, bps float64) (Path, error) {
	if bps <= 0 {
		return Path{}, fmt.Errorf("routing: on-demand: rate %.0f must be positive", bps)
	}
	// A link is usable only if the new flow still fits.
	base := r.policy.Cost()
	cost := func(e topo.Edge, s *topo.Snapshot) (float64, bool) {
		c, ok := base(e, s)
		if !ok {
			return 0, false
		}
		if r.load.Utilization(e.From, e.To)+bps/e.CapacityBps > 1 {
			return 0, false
		}
		return c, true
	}
	p, err := ShortestPath(r.snap, src, dst, cost)
	if err != nil {
		return Path{}, err
	}
	r.load.Commit(p, bps)
	return p, nil
}

// Finish releases a previously admitted flow.
func (r *OnDemandRouter) Finish(p Path, bps float64) { r.load.Release(p, bps) }
