package routing

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

func TestKShortestOrderedAndDistinct(t *testing.T) {
	s := testSnapshot(t, 1, false)
	paths, err := KShortestPaths(s, "u-nairobi", "gs-seattle", LatencyCost(0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("got %d paths, want several in a dense mesh", len(paths))
	}
	for i := 1; i < len(paths); i++ {
		if paths[i].Cost < paths[i-1].Cost {
			t.Errorf("paths out of order: %v then %v", paths[i-1].Cost, paths[i].Cost)
		}
	}
	// Distinct node sequences, all valid and loopless.
	seen := map[string]bool{}
	for _, p := range paths {
		key := ""
		nodes := map[string]bool{}
		for _, n := range p.Nodes {
			key += n + "|"
			if nodes[n] {
				t.Fatalf("loop in path %v", p.Nodes)
			}
			nodes[n] = true
		}
		if seen[key] {
			t.Fatalf("duplicate path %v", p.Nodes)
		}
		seen[key] = true
		if p.Nodes[0] != "u-nairobi" || p.Nodes[len(p.Nodes)-1] != "gs-seattle" {
			t.Fatalf("bad endpoints %v", p.Nodes)
		}
		// Every consecutive pair must be an actual edge.
		for i := 0; i+1 < len(p.Nodes); i++ {
			if _, ok := s.Edge(p.Nodes[i], p.Nodes[i+1]); !ok {
				t.Fatalf("phantom edge %s→%s", p.Nodes[i], p.Nodes[i+1])
			}
		}
	}
	// First path is the Dijkstra optimum.
	best, err := ShortestPath(s, "u-nairobi", "gs-seattle", LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if paths[0].Cost != best.Cost {
		t.Errorf("first path cost %v != optimum %v", paths[0].Cost, best.Cost)
	}
}

func TestKShortestDegenerate(t *testing.T) {
	s := testSnapshot(t, 1, false)
	if ps, err := KShortestPaths(s, "u-nairobi", "gs-seattle", HopCost(), 0); err != nil || ps != nil {
		t.Errorf("k=0 should be nil, nil; got %v, %v", ps, err)
	}
	if _, err := KShortestPaths(s, "ghost", "gs-seattle", HopCost(), 3); err == nil {
		t.Error("unknown src should error")
	}
	// k=1 equals Dijkstra.
	one, err := KShortestPaths(s, "u-nairobi", "gs-seattle", HopCost(), 1)
	if err != nil || len(one) != 1 {
		t.Fatalf("k=1: %v, %v", one, err)
	}
}

func TestKShortestExhaustsSmallGraph(t *testing.T) {
	// A tiny 4-satellite chain has a limited number of simple paths; asking
	// for more must return only what exists.
	sats := []topo.SatSpec{}
	for i := 0; i < 4; i++ {
		sats = append(sats, topo.SatSpec{
			ID: string(rune('a' + i)), Provider: "P",
			Elements: orbit.Circular(780, 86.4, 0, float64(i)*9),
		})
	}
	users := []topo.UserSpec{{ID: "u", Provider: "P", Pos: geo.LatLon{Lat: 9, Lon: 2}}}
	s := topo.Build(0, topo.DefaultConfig(), sats, nil, users)
	if s.EdgeCount() == 0 {
		t.Skip("degenerate geometry; no links formed")
	}
	paths, err := KShortestPaths(s, "u", "a", HopCost(), 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) > 40 {
		t.Errorf("more paths than a 5-node graph can hold: %d", len(paths))
	}
}
