package routing

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

func TestServiceClassStrings(t *testing.T) {
	for c, want := range map[ServiceClass]string{
		ClassInteractive: "interactive", ClassStandard: "standard", ClassBulk: "bulk",
	} {
		if c.String() != want {
			t.Errorf("%d → %q", c, c.String())
		}
	}
	if ServiceClass(9).String() == "" {
		t.Error("unknown class string")
	}
}

// mixedFleetSnapshot builds an Iridium snapshot where half the satellites
// carry lasers, so the classes have meaningful technology choices.
func mixedFleetSnapshot(t *testing.T) *topo.Snapshot {
	t.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = topo.SatSpec{ID: s.ID, Provider: string(rune('A' + i%2)), Elements: s.Elements, HasLaser: i%2 == 0}
	}
	cfg := topo.DefaultConfig()
	cfg.MinElevationDeg = 0
	return topo.Build(0, cfg, sats,
		[]topo.GroundSpec{{ID: "g", Provider: "A", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}}},
		[]topo.UserSpec{{ID: "u", Provider: "A", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}})
}

func TestClassPoliciesDiffer(t *testing.T) {
	s := mixedFleetSnapshot(t)
	paths := map[ServiceClass]Path{}
	for _, c := range []ServiceClass{ClassInteractive, ClassStandard, ClassBulk} {
		p, err := ShortestPath(s, "u", "g", c.Policy().Cost())
		if err != nil {
			t.Fatalf("%v: %v", c, err)
		}
		paths[c] = p
	}
	// Interactive's bandwidth floor guarantees a fat bottleneck.
	if paths[ClassInteractive].MinCapacityBps < ClassInteractive.MinBpsFor() {
		t.Errorf("interactive bottleneck %v below the class floor %v",
			paths[ClassInteractive].MinCapacityBps, ClassInteractive.MinBpsFor())
	}
	// Optimality under one's own metric: each class's path must cost no
	// more (under that class's policy) than any other class's path.
	evalUnder := func(nodes []string, cost CostFunc) (float64, bool) {
		var total float64
		for i := 0; i+1 < len(nodes); i++ {
			e, ok := s.Edge(nodes[i], nodes[i+1])
			if !ok {
				return 0, false
			}
			w, usable := cost(e, s)
			if !usable {
				return 0, false
			}
			total += w
		}
		return total, true
	}
	for _, own := range []ServiceClass{ClassInteractive, ClassStandard, ClassBulk} {
		cost := own.Policy().Cost()
		for _, other := range []ServiceClass{ClassInteractive, ClassStandard, ClassBulk} {
			if other == own {
				continue
			}
			alt, usable := evalUnder(paths[other].Nodes, cost)
			if usable && alt < paths[own].Cost-1e-9 {
				t.Errorf("%v path beaten by %v path under %v's own policy: %v < %v",
					own, other, own, alt, paths[own].Cost)
			}
		}
	}
}

func TestInteractiveFloorCanSeverPath(t *testing.T) {
	// On an RF-only fleet whose ISLs are thinner than the interactive
	// floor, interactive traffic is refused while bulk still flows — the
	// "looser QoS guarantees" plan the paper describes.
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		sats[i] = topo.SatSpec{ID: s.ID, Provider: "A", Elements: s.Elements}
	}
	cfg := topo.DefaultConfig()
	cfg.RFISLBps = 5e6 // below ClassInteractive's 10 Mbps floor
	snap := topo.Build(0, cfg, sats,
		[]topo.GroundSpec{{ID: "g", Provider: "A", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}}},
		[]topo.UserSpec{{ID: "u", Provider: "A", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}})

	if _, err := ShortestPath(snap, "u", "g", ClassInteractive.Policy().Cost()); err == nil {
		t.Error("interactive should be refused on thin RF ISLs")
	}
	if _, err := ShortestPath(snap, "u", "g", ClassBulk.Policy().Cost()); err != nil {
		t.Errorf("bulk should still flow: %v", err)
	}
}
