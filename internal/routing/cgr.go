package routing

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/openspace-project/openspace/internal/topo"
)

// ScheduledHop is one leg of a store-and-forward route: the bundle departs
// From at DepartS (possibly after waiting on board) and arrives at To at
// ArriveS.
type ScheduledHop struct {
	From, To string
	DepartS  float64
	ArriveS  float64
	WaitS    float64 // time spent held at From before this hop
}

// ScheduledRoute is a complete contact-graph route.
type ScheduledRoute struct {
	Hops       []ScheduledHop
	ArrivalS   float64
	TotalWaitS float64
}

// EarliestArrival computes the earliest-arrival store-and-forward route
// from src to dst starting at startS, over the time-expanded topology:
// a bundle may be held at any node (satellites have storage) until a
// usable contact appears in a later snapshot. This is contact-graph
// routing, the delay-tolerant regime that keeps a below-critical-mass
// OpenSpace deployment useful: the paper notes uncooperative satellites
// can be "completely disconnected from the rest of their infrastructure
// for significant periods of time" — with custody transfer, disconnection
// costs latency instead of service.
//
// txS is the per-hop transmission time (bundle size / link rate) added on
// top of propagation delay; pass 0 for small bundles.
func EarliestArrival(te *topo.TimeExpanded, src, dst string, startS, txS float64) (*ScheduledRoute, error) {
	if len(te.Snaps) == 0 {
		return nil, fmt.Errorf("routing: cgr: empty topology series")
	}
	first := te.Snaps[0]
	if first.Node(src) == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, src)
	}
	if first.Node(dst) == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, dst)
	}
	if txS < 0 {
		return nil, fmt.Errorf("routing: cgr: negative transmission time")
	}

	// Dijkstra over arrival times. A node's label is its earliest known
	// arrival; relaxation scans every snapshot from the label's time
	// onward, modelling arbitrary waiting.
	arrival := map[string]float64{src: startS}
	type pred struct {
		from    string
		departS float64
		arriveS float64
	}
	prev := map[string]pred{}
	done := map[string]bool{}
	q := &pq{{id: src, cost: startS}}

	snapStart := func(i int) float64 { return te.Snaps[i].TimeS }
	snapEnd := func(i int) float64 {
		if i+1 < len(te.Snaps) {
			return te.Snaps[i+1].TimeS
		}
		return math.Inf(1) // the last snapshot's topology persists
	}

	for q.Len() > 0 {
		cur := heap.Pop(q).(item)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == dst {
			break
		}
		t := arrival[cur.id]
		for i := range te.Snaps {
			if snapEnd(i) <= t {
				continue // contact over before we arrive
			}
			for _, e := range te.Snaps[i].Neighbors(cur.id) {
				depart := math.Max(t, snapStart(i))
				if depart >= snapEnd(i) {
					continue
				}
				arrive := depart + e.DelayS + txS
				if old, ok := arrival[e.To]; !ok || arrive < old {
					arrival[e.To] = arrive
					prev[e.To] = pred{from: cur.id, departS: depart, arriveS: arrive}
					heap.Push(q, item{id: e.To, cost: arrive})
				}
			}
		}
	}
	if _, ok := arrival[dst]; !ok {
		return nil, fmt.Errorf("%w: %s → %s (even with storage)", ErrNoPath, src, dst)
	}

	// Reconstruct.
	var hops []ScheduledHop
	for at := dst; at != src; {
		p := prev[at]
		hops = append(hops, ScheduledHop{From: p.from, To: at, DepartS: p.departS, ArriveS: p.arriveS})
		at = p.from
	}
	// Reverse and fill waits.
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	route := &ScheduledRoute{Hops: hops, ArrivalS: arrival[dst]}
	at := startS
	for i := range hops {
		hops[i].WaitS = hops[i].DepartS - at
		route.TotalWaitS += hops[i].WaitS
		at = hops[i].ArriveS
	}
	return route, nil
}
