// Package routing implements path computation over OpenSpace topology
// snapshots. It provides the two routing regimes the paper describes (§2.2):
//
//   - Proactive routing: because orbits are public and predictable, routes
//     between any satellite pair and fixed ground infrastructure can be
//     precomputed per topology snapshot (ProactiveRouter).
//   - On-demand, end-to-end routing: as the system scales, path costs depend
//     on quantities that cannot be precomputed — ISL queue occupancy, ground
//     station load, visitor tariffs — so paths must be found at request time
//     with live state (OnDemandRouter).
//
// Both regimes share a cost-function abstraction so that the
// heterogeneity-aware policy (bandwidth floors, cross-provider tariffs,
// laser preference, power budgets) composes with either.
package routing

import (
	"math"

	"github.com/openspace-project/openspace/internal/topo"
)

// CostFunc scores an edge for path selection. It returns the edge's cost
// (must be ≥ 0) and whether the edge is usable at all. Costs are additive
// along a path.
type CostFunc func(e topo.Edge, s *topo.Snapshot) (cost float64, usable bool)

// LatencyCost scores edges by one-way propagation delay plus a fixed
// per-hop processing delay in seconds. With perHopS = 0 it reproduces the
// paper's Figure 2(b) metric: pure propagation latency along the shortest
// path.
func LatencyCost(perHopS float64) CostFunc {
	return func(e topo.Edge, _ *topo.Snapshot) (float64, bool) {
		return e.DelayS + perHopS, true
	}
}

// HopCost scores every edge 1, yielding minimum-hop paths.
func HopCost() CostFunc {
	return func(topo.Edge, *topo.Snapshot) (float64, bool) { return 1, true }
}

// QoSPolicy parameterises heterogeneity-aware routing (§2.2): OpenSpace
// satellites "need to make quality-of-service-aware routing decisions that
// take into account the nature of the network, including available
// bandwidths of the ISLs", plus the ownership and tariff structure of §3.
type QoSPolicy struct {
	// MinCapacityBps filters out links too slow for the flow's QoS class.
	MinCapacityBps float64
	// DelayWeight scales propagation delay (s) into cost units.
	DelayWeight float64
	// BandwidthWeight adds cost proportional to 1/capacity (per Gbps
	// shortfall), steering traffic toward fat links.
	BandwidthWeight float64
	// CrossOwnerTariff is the fixed cost of handing a packet to another
	// provider's infrastructure — §3's per-hop accounting signal.
	CrossOwnerTariff float64
	// RFPenalty is added to RF ISLs: they are cheaper in §3's cost model
	// precisely because they offer looser QoS, so QoS-sensitive flows pay
	// to avoid them.
	RFPenalty float64
	// LoadPenalty scales with the live utilisation of the edge (0..1),
	// supplied through a LoadMap. Zero disables load awareness, which makes
	// the policy fully precomputable (proactive regime).
	LoadPenalty float64
	// Load optionally supplies live utilisation; nil means unloaded.
	Load LoadMap
}

// LoadMap reports live edge utilisation in [0,1]; the key is directed.
type LoadMap interface {
	Utilization(from, to string) float64
}

// Cost returns the CostFunc implementing the policy.
func (p QoSPolicy) Cost() CostFunc {
	return func(e topo.Edge, _ *topo.Snapshot) (float64, bool) {
		if p.MinCapacityBps > 0 && e.CapacityBps < p.MinCapacityBps {
			return 0, false
		}
		c := p.DelayWeight * e.DelayS
		if p.BandwidthWeight > 0 && e.CapacityBps > 0 {
			c += p.BandwidthWeight * 1e9 / e.CapacityBps
		}
		if e.CrossOwner {
			c += p.CrossOwnerTariff
		}
		if e.Kind == topo.LinkISLRF {
			c += p.RFPenalty
		}
		if p.LoadPenalty > 0 && p.Load != nil {
			u := p.Load.Utilization(e.From, e.To)
			if u >= 1 {
				return 0, false // saturated link
			}
			// M/M/1-style delay inflation: cost grows as 1/(1-ρ).
			c += p.LoadPenalty * u / (1 - u)
		}
		return c, true
	}
}

// DefaultQoS returns a balanced policy: latency-dominated with a mild
// bandwidth preference and a visible cross-provider tariff.
func DefaultQoS() QoSPolicy {
	return QoSPolicy{
		DelayWeight:      1000, // 1 ms of delay ≡ 1 cost unit
		BandwidthWeight:  0.1,
		CrossOwnerTariff: 0.5,
		RFPenalty:        0.2,
		LoadPenalty:      5,
	}
}

// Path is a computed route.
type Path struct {
	Nodes          []string
	Cost           float64
	DelayS         float64 // total propagation delay
	DistanceKm     float64
	Hops           int
	MinCapacityBps float64 // bottleneck capacity
	CrossOwnerHops int     // §3 accounting: hops carried by other providers
}

// statsFromEdges fills the descriptive fields of a path from its edges.
func statsFromEdges(nodes []string, cost float64, edges []topo.Edge) Path {
	p := Path{Nodes: nodes, Cost: cost, Hops: len(edges), MinCapacityBps: math.Inf(1)}
	for _, e := range edges {
		p.DelayS += e.DelayS
		p.DistanceKm += e.DistanceKm
		if e.CapacityBps < p.MinCapacityBps {
			p.MinCapacityBps = e.CapacityBps
		}
		if e.CrossOwner {
			p.CrossOwnerHops++
		}
	}
	if len(edges) == 0 {
		p.MinCapacityBps = 0
	}
	return p
}
