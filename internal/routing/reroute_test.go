package routing

import (
	"errors"
	"testing"

	"github.com/openspace-project/openspace/internal/topo"
)

// diamondSnapshot builds src→a→dst and src→b→dst (symmetric edges), the
// minimal topology with two edge-disjoint routes. The a-route is cheaper
// (higher capacity is irrelevant; hop costs tie, so delay decides).
func diamondSnapshot(t *testing.T) *topo.Snapshot {
	t.Helper()
	nodes := []topo.Node{
		{ID: "src", Kind: topo.KindUser},
		{ID: "a", Kind: topo.KindSatellite},
		{ID: "b", Kind: topo.KindSatellite},
		{ID: "dst", Kind: topo.KindGroundStation},
	}
	mk := func(from, to string, delay float64) []topo.Edge {
		return []topo.Edge{
			{From: from, To: to, Kind: topo.LinkISLRF, DelayS: delay, CapacityBps: 1e9},
			{From: to, To: from, Kind: topo.LinkISLRF, DelayS: delay, CapacityBps: 1e9},
		}
	}
	var edges []topo.Edge
	edges = append(edges, mk("src", "a", 0.01)...)
	edges = append(edges, mk("a", "dst", 0.01)...)
	edges = append(edges, mk("src", "b", 0.02)...)
	edges = append(edges, mk("b", "dst", 0.02)...)
	s, err := topo.NewSnapshot(0, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestProtectFindsDisjointCandidates(t *testing.T) {
	s := diamondSnapshot(t)
	p, err := Protect(s, "src", "dst", LatencyCost(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Paths) != 2 {
		t.Fatalf("candidates = %d, want 2 (diamond)", len(p.Paths))
	}
	if p.OnBackup() {
		t.Error("fresh protection must start on the primary")
	}
	if got := p.Active().Nodes; len(got) != 3 || got[1] != "a" {
		t.Errorf("primary path %v, want via a (cheaper)", got)
	}
}

func TestProtectErrors(t *testing.T) {
	s := diamondSnapshot(t)
	if _, err := Protect(s, "src", "dst", LatencyCost(0), 0); err == nil {
		t.Error("k=0 must be rejected")
	}
	if _, err := Protect(s, "src", "ghost", LatencyCost(0), 2); err == nil {
		t.Error("unknown endpoint must error")
	}
}

func TestRerouteSwitchesToSurvivor(t *testing.T) {
	s := diamondSnapshot(t)
	p, err := Protect(s, "src", "dst", LatencyCost(0), 3)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the a-route: only the b-route candidate survives.
	deadA := func(path Path) bool {
		for _, n := range path.Nodes {
			if n == "a" {
				return false
			}
		}
		return true
	}
	got, ok := p.Reroute(deadA)
	if !ok {
		t.Fatal("a surviving candidate exists; reroute must succeed")
	}
	if got.Nodes[1] != "b" || !p.OnBackup() {
		t.Errorf("rerouted to %v (onBackup=%v), want via b", got.Nodes, p.OnBackup())
	}
	// Repairs land: reroute prefers the cheaper primary again.
	if back, ok := p.Reroute(func(Path) bool { return true }); !ok || back.Nodes[1] != "a" || p.OnBackup() {
		t.Errorf("repair revert: %v onBackup=%v", back.Nodes, p.OnBackup())
	}
	// Nothing survives.
	if _, ok := p.Reroute(func(Path) bool { return false }); ok {
		t.Error("reroute with no survivors must fail")
	}
}

func TestAdoptInstallsRecomputedPath(t *testing.T) {
	s := diamondSnapshot(t)
	p, err := Protect(s, "src", "dst", LatencyCost(0), 2)
	if err != nil {
		t.Fatal(err)
	}
	alt, err := ShortestPath(s, "src", "dst", HopCost())
	if err != nil {
		t.Fatal(err)
	}
	p.Adopt(alt)
	if !p.OnBackup() {
		t.Error("adopted path must count as off-primary")
	}
	if got := p.Active(); got.Hops != alt.Hops {
		t.Errorf("active = %v, want adopted path", got.Nodes)
	}
}

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{BaseS: 2, MaxS: 30, MaxAttempts: 5}
	want := []float64{2, 4, 8, 16, 30}
	for i, w := range want {
		d, ok := b.DelayS(i)
		if !ok || d != w {
			t.Errorf("DelayS(%d) = %v,%v want %v,true", i, d, ok, w)
		}
	}
	if _, ok := b.DelayS(5); ok {
		t.Error("attempt beyond budget must report false")
	}
	if _, ok := b.DelayS(-1); ok {
		t.Error("negative attempt must report false")
	}
	if _, ok := (Backoff{}).DelayS(0); ok {
		t.Error("zero backoff must never grant a retry")
	}
	// Deterministic: two calls agree.
	d1, _ := b.DelayS(3)
	d2, _ := b.DelayS(3)
	if d1 != d2 {
		t.Error("backoff must be deterministic")
	}
}

func TestBackoffEdgeCases(t *testing.T) {
	// MaxAttempts = 0: no retries ever, whatever the base.
	if _, ok := (Backoff{BaseS: 2, MaxS: 30}).DelayS(0); ok {
		t.Error("MaxAttempts 0 must never grant a retry")
	}
	// MaxAttempts = 1: exactly one retry at BaseS.
	one := Backoff{BaseS: 3, MaxS: 30, MaxAttempts: 1}
	if d, ok := one.DelayS(0); !ok || d != 3 {
		t.Errorf("single-attempt DelayS(0) = %v,%v want 3,true", d, ok)
	}
	if _, ok := one.DelayS(1); ok {
		t.Error("single-attempt DelayS(1) must report false")
	}
	// BaseS <= 0 disables the schedule even with attempts budgeted.
	for _, base := range []float64{0, -2} {
		if _, ok := (Backoff{BaseS: base, MaxS: 30, MaxAttempts: 5}).DelayS(0); ok {
			t.Errorf("BaseS %v must never grant a retry", base)
		}
	}
	// MaxS below BaseS caps from the very first retry.
	if d, ok := (Backoff{BaseS: 8, MaxS: 3, MaxAttempts: 4}).DelayS(0); !ok || d != 3 {
		t.Errorf("cap below base: DelayS(0) = %v,%v want 3,true", d, ok)
	}
	// MaxS = 0 means uncapped exponential growth.
	if d, ok := (Backoff{BaseS: 1, MaxAttempts: 40}).DelayS(30); !ok || d != float64(int64(1)<<30) {
		t.Errorf("uncapped DelayS(30) = %v,%v want 2^30,true", d, ok)
	}
}

// TestBackoffMonotoneNonDecreasing sweeps a deterministic parameter grid
// and asserts the schedule's invariants: delays are positive, never
// decrease with the attempt number, never exceed a positive MaxS, and
// the budget boundary is exact.
func TestBackoffMonotoneNonDecreasing(t *testing.T) {
	bases := []float64{0.5, 1, 2, 7.5, 100}
	maxes := []float64{0, 0.25, 1, 30, 1e6}
	attempts := []int{1, 2, 5, 17, 60}
	for _, base := range bases {
		for _, max := range maxes {
			for _, n := range attempts {
				b := Backoff{BaseS: base, MaxS: max, MaxAttempts: n}
				prev := 0.0
				for i := 0; i < n; i++ {
					d, ok := b.DelayS(i)
					if !ok {
						t.Fatalf("%+v: DelayS(%d) refused inside the budget", b, i)
					}
					if d <= 0 {
						t.Fatalf("%+v: DelayS(%d) = %v, want positive", b, i, d)
					}
					if d < prev {
						t.Fatalf("%+v: DelayS(%d) = %v decreased from %v", b, i, d, prev)
					}
					if max > 0 && d > max {
						t.Fatalf("%+v: DelayS(%d) = %v exceeds cap", b, i, d)
					}
					prev = d
				}
				if _, ok := b.DelayS(n); ok {
					t.Fatalf("%+v: DelayS(%d) granted beyond the budget", b, n)
				}
			}
		}
	}
}

func TestDisjointPathsSrcEqualsDst(t *testing.T) {
	s := diamondSnapshot(t)
	paths, err := DisjointPaths(s, "src", "src", LatencyCost(0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("src==dst: %d paths, want exactly one zero-hop path", len(paths))
	}
	if paths[0].Hops != 0 || len(paths[0].Nodes) != 1 {
		t.Errorf("src==dst path = %+v", paths[0])
	}
}

func TestDisjointPathsNoPathAndBottleneck(t *testing.T) {
	// src —(bottleneck)— m, then m→a→dst and m→b→dst: every route shares
	// src→m, so exactly one edge-disjoint path exists.
	nodes := []topo.Node{
		{ID: "src"}, {ID: "m"}, {ID: "a"}, {ID: "b"}, {ID: "dst"}, {ID: "island"},
	}
	mk := func(from, to string) []topo.Edge {
		return []topo.Edge{
			{From: from, To: to, Kind: topo.LinkISLRF, DelayS: 0.01, CapacityBps: 1e9},
			{From: to, To: from, Kind: topo.LinkISLRF, DelayS: 0.01, CapacityBps: 1e9},
		}
	}
	var edges []topo.Edge
	for _, p := range [][2]string{{"src", "m"}, {"m", "a"}, {"m", "b"}, {"a", "dst"}, {"b", "dst"}} {
		edges = append(edges, mk(p[0], p[1])...)
	}
	s, err := topo.NewSnapshot(0, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := DisjointPaths(s, "src", "dst", LatencyCost(0), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Errorf("shared bottleneck edge: %d disjoint paths, want 1", len(paths))
	}
	// A disconnected destination yields ErrNoPath.
	if _, err := DisjointPaths(s, "src", "island", LatencyCost(0), 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("disconnected dst: err = %v, want ErrNoPath", err)
	}
}

// TestDisjointPathsUnderDegradedSnapshot pins the faults-layer interaction:
// masking the single bottleneck edge leaves no path at all.
func TestDisjointPathsUnderDegradedSnapshot(t *testing.T) {
	s := diamondSnapshot(t)
	// Degrade via a cost function that refuses both of a's edges — the
	// same restriction an Overlay mask imposes.
	masked := func(e topo.Edge, snap *topo.Snapshot) (float64, bool) {
		if e.From == "a" || e.To == "a" {
			return 0, false
		}
		return LatencyCost(0)(e, snap)
	}
	paths, err := DisjointPaths(s, "src", "dst", masked, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0].Nodes[1] != "b" {
		t.Errorf("degraded diamond: paths = %v, want single b-route", paths)
	}
	// Degrading the other branch too disconnects the pair.
	none := func(e topo.Edge, snap *topo.Snapshot) (float64, bool) {
		if e.From != "src" && e.To != "src" {
			return 0, false
		}
		return LatencyCost(0)(e, snap)
	}
	if _, err := DisjointPaths(s, "src", "dst", none, 2); !errors.Is(err, ErrNoPath) {
		t.Errorf("fully degraded: err = %v, want ErrNoPath", err)
	}
}
