package routing

import (
	"math"
	"math/rand"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/topo"
)

// bruteForceShortest enumerates every simple path between src and dst by
// depth-first search and returns the minimum total cost, or +Inf.
// Exponential — usable only on the small graphs this test builds.
func bruteForceShortest(s *topo.Snapshot, src, dst string, cost CostFunc) float64 {
	best := math.Inf(1)
	visited := map[string]bool{}
	var dfs func(at string, acc float64)
	dfs = func(at string, acc float64) {
		if acc >= best {
			return
		}
		if at == dst {
			best = acc
			return
		}
		visited[at] = true
		for _, e := range s.Neighbors(at) {
			if visited[e.To] {
				continue
			}
			w, ok := cost(e, s)
			if !ok {
				continue
			}
			dfs(e.To, acc+w)
		}
		visited[at] = false
	}
	dfs(src, 0)
	return best
}

// TestDijkstraMatchesBruteForce cross-validates the Dijkstra implementation
// against exhaustive search on many small random constellations.
func TestDijkstraMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := topo.DefaultConfig()
	cfg.ISLRangeKm = 1e9 // LOS-only for denser small graphs
	cfg.MinElevationDeg = 0
	for trial := 0; trial < 25; trial++ {
		c := orbit.RandomCircular(6, 780, rng)
		specs := make([]topo.SatSpec, c.Len())
		for i, s := range c.Satellites {
			specs[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
		}
		users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{
			Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*360 - 180}}}
		grounds := []topo.GroundSpec{{ID: "g", Provider: "p", Pos: geo.LatLon{
			Lat: rng.Float64()*120 - 60, Lon: rng.Float64()*360 - 180}}}
		snap := topo.Build(0, cfg, specs, grounds, users)

		cost := LatencyCost(0.001)
		want := bruteForceShortest(snap, "u", "g", cost)
		got, err := ShortestPath(snap, "u", "g", cost)
		if math.IsInf(want, 1) {
			if err == nil {
				t.Fatalf("trial %d: dijkstra found a path brute force did not: %v", trial, got.Nodes)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: brute force found %v but dijkstra errored: %v", trial, want, err)
		}
		if math.Abs(got.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: dijkstra %v != brute force %v (path %v)",
				trial, got.Cost, want, got.Nodes)
		}
	}
}

// TestKShortestCostsMatchBruteForceEnumeration verifies Yen's first few
// paths against exhaustive enumeration of all simple-path costs.
func TestKShortestCostsMatchBruteForceEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	cfg := topo.DefaultConfig()
	cfg.ISLRangeKm = 1e9
	cfg.MinElevationDeg = 0
	for trial := 0; trial < 10; trial++ {
		c := orbit.RandomCircular(5, 780, rng)
		specs := make([]topo.SatSpec, c.Len())
		for i, s := range c.Satellites {
			specs[i] = topo.SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements}
		}
		users := []topo.UserSpec{{ID: "u", Provider: "p", Pos: geo.LatLon{
			Lat: rng.Float64()*100 - 50, Lon: rng.Float64()*360 - 180}}}
		grounds := []topo.GroundSpec{{ID: "g", Provider: "p", Pos: geo.LatLon{
			Lat: rng.Float64()*100 - 50, Lon: rng.Float64()*360 - 180}}}
		snap := topo.Build(0, cfg, specs, grounds, users)
		cost := LatencyCost(0.001)

		// Enumerate every simple path cost.
		var all []float64
		visited := map[string]bool{}
		var dfs func(at string, acc float64)
		dfs = func(at string, acc float64) {
			if at == "g" {
				all = append(all, acc)
				return
			}
			visited[at] = true
			for _, e := range snap.Neighbors(at) {
				if visited[e.To] {
					continue
				}
				w, ok := cost(e, snap)
				if !ok {
					continue
				}
				dfs(e.To, acc+w)
			}
			visited[at] = false
		}
		dfs("u", 0)
		if len(all) == 0 {
			continue
		}
		sortFloats(all)

		k := 3
		if k > len(all) {
			k = len(all)
		}
		paths, err := KShortestPaths(snap, "u", "g", cost, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := 0; i < len(paths) && i < k; i++ {
			if math.Abs(paths[i].Cost-all[i]) > 1e-9 {
				t.Fatalf("trial %d: k=%d cost %v, brute force %v", trial, i, paths[i].Cost, all[i])
			}
		}
	}
}

func sortFloats(a []float64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
