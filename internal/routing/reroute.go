package routing

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/topo"
)

// Protected is a flow with fast-reroute protection: a set of precomputed
// edge-disjoint candidate paths (DisjointPaths) plus the path currently
// carrying traffic. Because the candidates share no edge, any single ISL
// failure leaves at least one of them intact — the §4 redundancy argument
// turned into a repair mechanism: when the active path dies, Reroute
// switches to the first surviving candidate without touching the (possibly
// partitioned) routing substrate.
type Protected struct {
	Src, Dst string
	// Paths are the precomputed edge-disjoint candidates in cost order.
	Paths []Path

	current    Path
	currentIdx int // index into Paths, or -1 after Adopt
}

// Protect computes up to k edge-disjoint paths for the flow and installs
// the cheapest as the active path. k must be ≥ 1; at least one path must
// exist (ErrNoPath otherwise).
func Protect(s *topo.Snapshot, src, dst string, cost CostFunc, k int) (*Protected, error) {
	if k < 1 {
		return nil, fmt.Errorf("routing: protect: k %d must be ≥ 1", k)
	}
	paths, err := DisjointPaths(s, src, dst, cost, k)
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("%w: %s → %s", ErrNoPath, src, dst)
	}
	return &Protected{Src: src, Dst: dst, Paths: paths, current: paths[0], currentIdx: 0}, nil
}

// Active returns the path currently carrying the flow.
func (p *Protected) Active() Path { return p.current }

// OnBackup reports whether the flow has left its primary (cheapest) path —
// either rerouted to a backup or running on an adopted recomputed path.
func (p *Protected) OnBackup() bool { return p.currentIdx != 0 }

// Reroute switches the flow to the first candidate that alive accepts,
// scanning in cost order (so a repaired primary is preferred over a longer
// backup). It returns the chosen path and false when no candidate survives
// — the caller must then fall back to a full recompute on the degraded
// snapshot (Adopt) or declare the flow down.
func (p *Protected) Reroute(alive func(Path) bool) (Path, bool) {
	for i, c := range p.Paths {
		if alive(c) {
			p.current, p.currentIdx = c, i
			return c, true
		}
	}
	return Path{}, false
}

// Adopt installs a recomputed path (found on the degraded topology after
// every precomputed candidate died) as the active path. The precomputed
// candidates are kept: a later Reroute can still return to them once
// repairs land.
func (p *Protected) Adopt(path Path) {
	p.current, p.currentIdx = path, -1
}

// Backoff yields bounded, deterministic retry delays for the on-demand
// admission path: instead of failing a flow outright when no route exists
// (a transient condition under fault injection — the blocking outage will
// be repaired), callers retry after DelayS(attempt). The schedule is
// exponential with a cap and carries no jitter: retries are part of the
// simulation and must be byte-reproducible, and the discrete-event engine
// breaks same-instant ties deterministically, so jitter would buy nothing.
type Backoff struct {
	// BaseS is the first retry delay.
	BaseS float64
	// MaxS caps the exponential growth.
	MaxS float64
	// MaxAttempts bounds the retries; DelayS reports false beyond it.
	MaxAttempts int
}

// DefaultBackoff retries 5 times over ~an outage-repair timescale:
// 2 s, 4 s, 8 s, 16 s, 30 s.
func DefaultBackoff() Backoff {
	return Backoff{BaseS: 2, MaxS: 30, MaxAttempts: 5}
}

// DelayS returns the delay before retry number attempt (0-based: attempt 0
// is the first retry, scheduled after the initial failure) and whether the
// retry budget allows it.
func (b Backoff) DelayS(attempt int) (float64, bool) {
	if attempt < 0 || attempt >= b.MaxAttempts || b.BaseS <= 0 {
		return 0, false
	}
	d := b.BaseS
	for i := 0; i < attempt; i++ {
		d *= 2
		if b.MaxS > 0 && d >= b.MaxS {
			return b.MaxS, true
		}
	}
	if b.MaxS > 0 && d > b.MaxS {
		d = b.MaxS
	}
	return d, true
}
