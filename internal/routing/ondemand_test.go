package routing

import (
	"errors"
	"testing"

	"github.com/openspace-project/openspace/internal/topo"
)

func TestEdgeLoadAccounting(t *testing.T) {
	s := testSnapshot(t, 1, false)
	l := NewEdgeLoad(s)
	p, err := ShortestPath(s, "u-nairobi", "gs-seattle", LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if u := l.Utilization(p.Nodes[0], p.Nodes[1]); u != 0 {
		t.Errorf("fresh tracker utilization = %v", u)
	}
	first, _ := s.Edge(p.Nodes[0], p.Nodes[1])
	l.Commit(p, first.CapacityBps/2)
	if u := l.Utilization(p.Nodes[0], p.Nodes[1]); u != 0.5 {
		t.Errorf("after half commit, utilization = %v, want 0.5", u)
	}
	// Reverse direction unaffected.
	if u := l.Utilization(p.Nodes[1], p.Nodes[0]); u != 0 {
		t.Errorf("reverse direction loaded: %v", u)
	}
	l.Release(p, first.CapacityBps/2)
	if u := l.Utilization(p.Nodes[0], p.Nodes[1]); u != 0 {
		t.Errorf("after release, utilization = %v", u)
	}
	// Over-release clamps at zero.
	l.Release(p, 1e12)
	if u := l.Utilization(p.Nodes[0], p.Nodes[1]); u != 0 {
		t.Errorf("over-release drove utilization to %v", u)
	}
	// Unknown edge reports zero.
	if l.Utilization("x", "y") != 0 {
		t.Error("unknown edge should report zero")
	}
}

func TestOnDemandAdmitAndSpill(t *testing.T) {
	s := testSnapshot(t, 1, false)
	r := NewOnDemandRouter(s, DefaultQoS())

	first, err := r.Admit("u-nairobi", "gs-seattle", 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// Load the first path's bottleneck to near saturation; the next flow
	// must route around it.
	r.Load().Commit(first, first.MinCapacityBps*0.95)
	second, err := r.Admit("u-nairobi", "gs-seattle", first.MinCapacityBps*0.5)
	if err != nil {
		t.Fatalf("spill flow rejected: %v", err)
	}
	same := len(first.Nodes) == len(second.Nodes)
	if same {
		for i := range first.Nodes {
			if first.Nodes[i] != second.Nodes[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("congested path reused for a flow that cannot fit")
	}
}

func TestOnDemandRejectsImpossible(t *testing.T) {
	s := testSnapshot(t, 1, false)
	r := NewOnDemandRouter(s, DefaultQoS())
	if _, err := r.Admit("u-nairobi", "gs-seattle", 0); err == nil {
		t.Error("zero rate should error")
	}
	// A flow bigger than any access link cannot be admitted.
	if _, err := r.Admit("u-nairobi", "gs-seattle", 1e15); !errors.Is(err, ErrNoPath) {
		t.Errorf("oversized flow: %v", err)
	}
}

func TestOnDemandFinishFreesCapacity(t *testing.T) {
	s := testSnapshot(t, 1, false)
	r := NewOnDemandRouter(s, DefaultQoS())
	// Size flows to the network's bottleneck link so a single flow fits but
	// a few of them saturate the user's exits.
	probe, err := r.Admit("u-nairobi", "gs-seattle", 1)
	if err != nil {
		t.Fatal(err)
	}
	r.Finish(probe, 1)
	rate := probe.MinCapacityBps * 0.6
	var admitted []Path
	for i := 0; i < 100; i++ {
		p, err := r.Admit("u-nairobi", "gs-seattle", rate)
		if err != nil {
			break
		}
		admitted = append(admitted, p)
	}
	if len(admitted) == 0 {
		t.Fatal("nothing admitted")
	}
	if _, err := r.Admit("u-nairobi", "gs-seattle", rate); err == nil {
		t.Fatal("expected saturation rejection")
	}
	// Release one and retry: must succeed again.
	r.Finish(admitted[0], rate)
	if _, err := r.Admit("u-nairobi", "gs-seattle", rate); err != nil {
		t.Errorf("after release, admit failed: %v", err)
	}
}

func TestQoSLoadPenaltySaturatedUnusable(t *testing.T) {
	s := testSnapshot(t, 1, false)
	load := NewEdgeLoad(s)
	pol := DefaultQoS()
	pol.Load = load
	cost := pol.Cost()
	// Saturate one edge fully; its cost function must mark it unusable.
	var e topo.Edge
	for _, id := range s.Nodes() {
		if es := s.Neighbors(id); len(es) > 0 {
			e = es[0]
			break
		}
	}
	p := Path{Nodes: []string{e.From, e.To}}
	load.Commit(p, e.CapacityBps*2)
	if _, usable := cost(e, s); usable {
		t.Error("saturated edge should be unusable")
	}
}
