package mac

import (
	"fmt"
	"time"

	"github.com/openspace-project/openspace/internal/exec"
)

// CSMAConfig parameterises the slotted CSMA/CA channel model. Timing
// defaults are scaled for a satellite RF channel, where slot times must
// cover the worst-case propagation across the contention footprint — the
// core reason CSMA/CA overhead is so much larger in space than in Wi-Fi.
type CSMAConfig struct {
	Stations       int           // contending satellites
	SlotTime       time.Duration // one contention slot (≥ max propagation)
	DIFS           int           // idle slots sensed before contention
	SIFS           int           // slots between data and ACK
	CWMin          int           // initial contention window (slots)
	CWMax          int           // cap for binary exponential backoff
	DataSlots      int           // airtime of one data frame, in slots
	AckSlots       int           // airtime of one ACK, in slots
	PerStationRate float64       // packet arrivals per second per station
	MaxRetries     int           // attempts before a packet is dropped
}

// DefaultCSMA returns a CSMA/CA configuration for a LEO inter-satellite RF
// channel: 2 ms slots (≈600 km guard), standard 802.11-style windows.
func DefaultCSMA(stations int, perStationRate float64) CSMAConfig {
	return CSMAConfig{
		Stations:       stations,
		SlotTime:       2 * time.Millisecond,
		DIFS:           3,
		SIFS:           1,
		CWMin:          16,
		CWMax:          1024,
		DataSlots:      10,
		AckSlots:       1,
		PerStationRate: perStationRate,
		MaxRetries:     7,
	}
}

// Validate reports whether the configuration is usable.
func (c CSMAConfig) Validate() error {
	if c.Stations <= 0 {
		return fmt.Errorf("mac: csma: stations %d must be positive", c.Stations)
	}
	if c.SlotTime <= 0 {
		return fmt.Errorf("mac: csma: slot time must be positive")
	}
	if c.CWMin <= 0 || c.CWMax < c.CWMin {
		return fmt.Errorf("mac: csma: contention window [%d,%d] invalid", c.CWMin, c.CWMax)
	}
	if c.DataSlots <= 0 {
		return fmt.Errorf("mac: csma: data airtime must be positive")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("mac: csma: retries must be non-negative")
	}
	return nil
}

// csmaStation is the per-station contention state machine.
type csmaStation struct {
	queue    []int // arrival slot of each queued packet
	backoff  int   // remaining backoff slots, -1 when not contending
	cw       int   // current contention window
	retries  int
	difsLeft int // idle slots still required before backoff countdown
}

// domainCSMA seeds the CSMA/CA arrival/backoff stream (see domainALOHA
// for why the MAC schemes stopped sharing one raw stream).
var domainCSMA = exec.Domain{Tag: "mac/csma", ID: 121}

// RunCSMA simulates the channel for the given duration and returns
// aggregate statistics. The simulation is deterministic for a fixed seed.
func RunCSMA(cfg CSMAConfig, duration time.Duration, seed int64) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	slots := int(duration / cfg.SlotTime)
	rng := exec.DomainRNG(seed, domainCSMA)
	arrivals := bernoulliArrivals(cfg.Stations, slots, cfg.PerStationRate, cfg.SlotTime, rng)

	stations := make([]csmaStation, cfg.Stations)
	for i := range stations {
		stations[i] = csmaStation{backoff: -1, cw: cfg.CWMin, difsLeft: cfg.DIFS}
	}
	next := make([]int, cfg.Stations) // next arrival index per station

	var st Stats
	var delays []int
	busyUntil := 0   // slot index until which the medium is busy (exclusive)
	busyPayload := 0 // slots of successful payload airtime
	busyTotal := 0   // slots of any busy airtime (data+ack+collisions)
	txSuccess := cfg.DataSlots + cfg.SIFS + cfg.AckSlots

	for t := 0; t < slots; t++ {
		// Deliver arrivals for this slot.
		for s := range stations {
			for next[s] < len(arrivals[s]) && arrivals[s][next[s]] == t {
				stations[s].queue = append(stations[s].queue, t)
				next[s]++
				st.Offered++
			}
		}
		if t < busyUntil {
			continue // medium busy; stations freeze
		}
		// Idle slot: stations with pending packets progress through DIFS and
		// backoff; those reaching zero transmit this slot.
		var transmitters []int
		for s := range stations {
			stn := &stations[s]
			if len(stn.queue) == 0 {
				continue
			}
			if stn.difsLeft > 0 {
				stn.difsLeft--
				continue
			}
			if stn.backoff < 0 {
				stn.backoff = rng.Intn(stn.cw)
			}
			if stn.backoff == 0 {
				transmitters = append(transmitters, s)
			} else {
				stn.backoff--
			}
		}
		switch {
		case len(transmitters) == 1:
			s := transmitters[0]
			stn := &stations[s]
			st.Attempts++
			st.Delivered++
			delays = append(delays, t+txSuccess-stn.queue[0])
			stn.queue = stn.queue[1:]
			stn.cw = cfg.CWMin
			stn.retries = 0
			stn.backoff = -1
			stn.difsLeft = cfg.DIFS
			busyUntil = t + txSuccess
			busyPayload += cfg.DataSlots
			busyTotal += txSuccess
		case len(transmitters) > 1:
			// Collision: every involved frame burns data airtime, then all
			// parties back off with doubled windows.
			for _, s := range transmitters {
				stn := &stations[s]
				st.Attempts++
				st.Collisions++
				stn.retries++
				if stn.retries > cfg.MaxRetries {
					stn.queue = stn.queue[1:] // drop
					stn.retries = 0
					stn.cw = cfg.CWMin
				} else if stn.cw*2 <= cfg.CWMax {
					stn.cw *= 2
				}
				stn.backoff = -1
				stn.difsLeft = cfg.DIFS
			}
			busyUntil = t + cfg.DataSlots
			busyTotal += cfg.DataSlots
		}
	}
	delayStats(&st, delays, cfg.SlotTime)
	if slots > 0 {
		st.Utilization = float64(busyPayload) / float64(slots)
	}
	if busyTotal > 0 {
		st.OverheadFrac = 1 - float64(busyPayload)/float64(busyTotal)
	}
	return st, nil
}
