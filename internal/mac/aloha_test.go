package mac

import (
	"testing"
	"time"
)

func TestALOHAValidate(t *testing.T) {
	bad := []ALOHAConfig{
		{},
		{Stations: 0, SlotTime: time.Millisecond, MaxBackoff: 4},
		{Stations: 2, SlotTime: 0, MaxBackoff: 4},
		{Stations: 2, SlotTime: time.Millisecond, MaxBackoff: 0},
		{Stations: 2, SlotTime: time.Millisecond, MaxBackoff: 4, MaxRetries: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if err := DefaultALOHA(4, 1).Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
}

func TestALOHALightLoadDelivers(t *testing.T) {
	st, err := RunALOHA(DefaultALOHA(4, 0.5), time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered == 0 {
		t.Fatal("no traffic")
	}
	if float64(st.Delivered) < 0.9*float64(st.Offered) {
		t.Errorf("light load delivery %d/%d", st.Delivered, st.Offered)
	}
}

func TestALOHADeterministic(t *testing.T) {
	cfg := DefaultALOHA(8, 2)
	a, _ := RunALOHA(cfg, 30*time.Second, 5)
	b, _ := RunALOHA(cfg, 30*time.Second, 5)
	if a != b {
		t.Error("not deterministic for fixed seed")
	}
}

func TestALOHAThroughputCeiling(t *testing.T) {
	// Slotted ALOHA's theoretical maximum throughput is 1/e ≈ 0.368.
	// Drive the channel well past saturation and check utilisation stays
	// in the right neighbourhood — above 0.2 (it is achieving something)
	// and below 0.45 (it cannot beat the theory).
	cfg := DefaultALOHA(20, 5) // offered load ≈ 2 packets/slot
	st, err := RunALOHA(cfg, 2*time.Minute, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Utilization < 0.15 || st.Utilization > 0.45 {
		t.Errorf("saturated ALOHA utilization %v, want ~0.2-0.37", st.Utilization)
	}
	// Collisions dominate attempts at saturation.
	if st.Collisions == 0 {
		t.Error("saturated channel should collide")
	}
}

func TestALOHAWorseThanTDMAUnderLoad(t *testing.T) {
	// ALOHA's utilisation ceiling is far below TDMA's at the same offered
	// load — the reason coordinated schemes exist.
	stations, rate := 20, 5.0
	al, err := RunALOHA(DefaultALOHA(stations, rate), time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	td, err := RunTDMA(DefaultTDMA(stations, rate), time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	if al.Utilization >= td.Utilization {
		t.Errorf("ALOHA %v should trail TDMA %v under load", al.Utilization, td.Utilization)
	}
}
