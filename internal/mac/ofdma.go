package mac

import (
	"fmt"
	"sort"
)

// OFDMA models the satellite→ground downlink scheduler: a single satellite
// divides its channel into subchannels and assigns them to the ground users
// it currently serves, frame by frame. The paper (§2.1) picks OFDM for
// satellite-to-user links because it uses spectrum efficiently while
// minimising inter-user interference; what remains is the allocation policy,
// implemented here.
type OFDMA struct {
	Subchannels   int     // parallel subchannels per frame
	SubchannelBps float64 // capacity of one subchannel
	FrameSeconds  float64 // frame duration
}

// DefaultOFDMA returns a 48-subchannel Ku-band downlink frame.
func DefaultOFDMA() OFDMA {
	return OFDMA{Subchannels: 48, SubchannelBps: 5e6, FrameSeconds: 0.010}
}

// Validate reports whether the scheduler parameters are usable.
func (o OFDMA) Validate() error {
	if o.Subchannels <= 0 {
		return fmt.Errorf("mac: ofdma: subchannels %d must be positive", o.Subchannels)
	}
	if o.SubchannelBps <= 0 || o.FrameSeconds <= 0 {
		return fmt.Errorf("mac: ofdma: subchannel rate and frame duration must be positive")
	}
	return nil
}

// Demand is one user's downlink demand for a frame.
type Demand struct {
	User string
	Bits float64 // bits the user wants this frame
}

// Grant is the scheduler's allocation to one user for one frame.
type Grant struct {
	User        string
	Subchannels int
	Bits        float64 // bits actually deliverable this frame
}

// Allocate distributes the frame's subchannels across the demands using
// max-min fairness: repeatedly grant one subchannel to the unsatisfied user
// with the least allocation so far, until subchannels run out or every
// demand is met. Ties break deterministically by user name, so the schedule
// is reproducible.
func (o OFDMA) Allocate(demands []Demand) ([]Grant, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(demands) == 0 {
		return nil, nil
	}
	perChanBits := o.SubchannelBps * o.FrameSeconds
	grants := make([]Grant, len(demands))
	for i, d := range demands {
		grants[i] = Grant{User: d.User}
	}
	order := make([]int, len(demands))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return demands[order[a]].User < demands[order[b]].User })

	remaining := o.Subchannels
	for remaining > 0 {
		// Least-allocated unsatisfied user, in deterministic order.
		best := -1
		for _, i := range order {
			if grants[i].Bits >= demands[i].Bits {
				continue
			}
			if best == -1 || grants[i].Subchannels < grants[best].Subchannels {
				best = i
			}
		}
		if best == -1 {
			break // all demands met
		}
		grants[best].Subchannels++
		grants[best].Bits += perChanBits
		if grants[best].Bits > demands[best].Bits {
			grants[best].Bits = demands[best].Bits
		}
		remaining--
	}
	return grants, nil
}

// JainIndex returns Jain's fairness index of the grant sizes in [1/n, 1]:
// 1 means perfectly equal subchannel shares.
func JainIndex(grants []Grant) float64 {
	if len(grants) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, g := range grants {
		x := float64(g.Subchannels)
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(grants)) * sumSq)
}
