// Package mac implements the medium-access-control schemes OpenSpace
// considers for its links (§2.1 of the paper):
//
//   - CSMA/CA for inter-satellite RF channels — the survey the paper cites
//     found it "allows for flexibility in synchronization between satellites,
//     however is prone to higher overhead and corresponding larger latency
//     due to Inter-Frame Spacing and backoff window requirements". The
//     simulator here quantifies exactly that overhead.
//   - TDMA as the coordinated alternative (the paper leaves better real-time
//     MACs to future work; TDMA is the natural ablation baseline).
//   - An OFDMA frame scheduler for the satellite→users downlink, where
//     "existing satellite providers have employed OFDM" and one satellite
//     serves many ground users at once.
//
// The CSMA/CA and TDMA models are slot-based discrete simulations with
// deterministic seeded arrivals, so every experiment is reproducible.
package mac

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Stats summarises one MAC simulation run.
type Stats struct {
	Offered         int           // packets that arrived
	Delivered       int           // packets successfully transmitted
	Collisions      int           // transmission attempts that collided
	Attempts        int           // total transmission attempts
	MeanAccessDelay time.Duration // arrival → completed transmission, mean
	P95AccessDelay  time.Duration
	MaxAccessDelay  time.Duration
	Utilization     float64 // fraction of airtime carrying successful payload
	OverheadFrac    float64 // fraction of busy airtime that is not payload
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("mac{offered %d, delivered %d, collisions %d, mean delay %v, p95 %v, util %.3f}",
		s.Offered, s.Delivered, s.Collisions, s.MeanAccessDelay, s.P95AccessDelay, s.Utilization)
}

// delayStats fills the delay aggregates of st from per-packet delays
// measured in slots of the given duration.
func delayStats(st *Stats, delaysSlots []int, slot time.Duration) {
	if len(delaysSlots) == 0 {
		return
	}
	sort.Ints(delaysSlots)
	var sum int64
	for _, d := range delaysSlots {
		sum += int64(d)
	}
	st.MeanAccessDelay = time.Duration(sum/int64(len(delaysSlots))) * slot
	st.P95AccessDelay = time.Duration(delaysSlots[(len(delaysSlots)-1)*95/100]) * slot
	st.MaxAccessDelay = time.Duration(delaysSlots[len(delaysSlots)-1]) * slot
}

// bernoulliArrivals generates, per station, the slot indices at which new
// packets arrive: a Bernoulli process with per-slot probability
// rate·slotSeconds, the discrete analogue of Poisson arrivals.
func bernoulliArrivals(stations, slots int, perStationRate float64, slot time.Duration, rng *rand.Rand) [][]int {
	p := perStationRate * slot.Seconds()
	if p > 1 {
		p = 1
	}
	arr := make([][]int, stations)
	for s := 0; s < stations; s++ {
		for t := 0; t < slots; t++ {
			if rng.Float64() < p {
				arr[s] = append(arr[s], t)
			}
		}
	}
	return arr
}
