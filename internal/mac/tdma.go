package mac

import (
	"fmt"
	"time"

	"github.com/openspace-project/openspace/internal/exec"
)

// TDMAConfig parameterises the TDMA baseline: a repeating frame with one
// dedicated data slot per station. There are no collisions by construction;
// the cost is waiting for one's slot and the idle airtime of unused slots.
type TDMAConfig struct {
	Stations       int
	SlotTime       time.Duration // one TDMA data slot
	GuardSlots     int           // guard time between slots, in slot units
	PerStationRate float64       // packet arrivals per second per station
}

// DefaultTDMA returns a TDMA configuration comparable to DefaultCSMA: the
// data slot carries the same 10×2 ms frame as CSMA's DataSlots.
func DefaultTDMA(stations int, perStationRate float64) TDMAConfig {
	return TDMAConfig{
		Stations:       stations,
		SlotTime:       20 * time.Millisecond,
		GuardSlots:     0,
		PerStationRate: perStationRate,
	}
}

// Validate reports whether the configuration is usable.
func (c TDMAConfig) Validate() error {
	if c.Stations <= 0 {
		return fmt.Errorf("mac: tdma: stations %d must be positive", c.Stations)
	}
	if c.SlotTime <= 0 {
		return fmt.Errorf("mac: tdma: slot time must be positive")
	}
	if c.GuardSlots < 0 {
		return fmt.Errorf("mac: tdma: guard slots must be non-negative")
	}
	return nil
}

// domainTDMA seeds the TDMA arrival stream (see domainALOHA for why the
// MAC schemes stopped sharing one raw stream).
var domainTDMA = exec.Domain{Tag: "mac/tdma", ID: 122}

// RunTDMA simulates the TDMA frame for the given duration. One packet is
// transmitted per owned slot; queued packets wait whole frames. The
// simulation is deterministic for a fixed seed.
func RunTDMA(cfg TDMAConfig, duration time.Duration, seed int64) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	slotUnits := 1 + cfg.GuardSlots // slots occupied per station turn
	frame := cfg.Stations * slotUnits
	slots := int(duration / cfg.SlotTime)
	rng := exec.DomainRNG(seed, domainTDMA)
	arrivals := bernoulliArrivals(cfg.Stations, slots, cfg.PerStationRate, cfg.SlotTime, rng)

	var st Stats
	var delays []int
	queues := make([][]int, cfg.Stations)
	next := make([]int, cfg.Stations)
	payloadSlots := 0

	for t := 0; t < slots; t++ {
		for s := range queues {
			for next[s] < len(arrivals[s]) && arrivals[s][next[s]] == t {
				queues[s] = append(queues[s], t)
				next[s]++
				st.Offered++
			}
		}
		// Whose data slot is this? Station s owns slots where
		// (t mod frame) == s·slotUnits; guard slots carry nothing.
		pos := t % frame
		if pos%slotUnits != 0 {
			continue
		}
		s := pos / slotUnits
		if len(queues[s]) == 0 {
			continue
		}
		st.Attempts++
		st.Delivered++
		delays = append(delays, t+1-queues[s][0])
		queues[s] = queues[s][1:]
		payloadSlots++
	}
	delayStats(&st, delays, cfg.SlotTime)
	if slots > 0 {
		st.Utilization = float64(payloadSlots) / float64(slots)
	}
	// TDMA's only airtime overhead is guard time.
	if payloadSlots > 0 && slotUnits > 1 {
		st.OverheadFrac = float64(cfg.GuardSlots) / float64(slotUnits)
	}
	return st, nil
}
