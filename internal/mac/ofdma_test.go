package mac

import (
	"math"
	"testing"
	"testing/quick"
)

func TestOFDMAValidate(t *testing.T) {
	bad := []OFDMA{
		{},
		{Subchannels: 0, SubchannelBps: 1e6, FrameSeconds: 0.01},
		{Subchannels: 8, SubchannelBps: 0, FrameSeconds: 0.01},
		{Subchannels: 8, SubchannelBps: 1e6, FrameSeconds: 0},
	}
	for i, o := range bad {
		if o.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if err := DefaultOFDMA().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
}

func TestOFDMAEmptyAndInvalid(t *testing.T) {
	o := DefaultOFDMA()
	if g, err := o.Allocate(nil); err != nil || g != nil {
		t.Errorf("empty demands → nil, nil; got %v, %v", g, err)
	}
	if _, err := (OFDMA{}).Allocate([]Demand{{User: "a", Bits: 1}}); err == nil {
		t.Error("invalid scheduler should error")
	}
}

func TestOFDMAEqualDemandsEqualShares(t *testing.T) {
	o := OFDMA{Subchannels: 12, SubchannelBps: 1e6, FrameSeconds: 0.01}
	demands := []Demand{
		{User: "a", Bits: 1e9}, {User: "b", Bits: 1e9},
		{User: "c", Bits: 1e9}, {User: "d", Bits: 1e9},
	}
	grants, err := o.Allocate(demands)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range grants {
		if g.Subchannels != 3 {
			t.Errorf("user %s got %d subchannels, want 3", g.User, g.Subchannels)
		}
	}
	if idx := JainIndex(grants); !almostEq(idx, 1, 1e-12) {
		t.Errorf("Jain index = %v, want 1", idx)
	}
}

func TestOFDMASmallDemandNotOverGranted(t *testing.T) {
	o := OFDMA{Subchannels: 10, SubchannelBps: 1e6, FrameSeconds: 0.01}
	perChan := 1e6 * 0.01 // 10_000 bits per subchannel
	demands := []Demand{
		{User: "small", Bits: perChan / 2}, // half a subchannel suffices
		{User: "big", Bits: 1e9},
	}
	grants, err := o.Allocate(demands)
	if err != nil {
		t.Fatal(err)
	}
	byUser := map[string]Grant{}
	for _, g := range grants {
		byUser[g.User] = g
	}
	if byUser["small"].Subchannels != 1 {
		t.Errorf("small demand got %d subchannels, want 1", byUser["small"].Subchannels)
	}
	if byUser["small"].Bits != perChan/2 {
		t.Errorf("small grant bits %v exceed demand", byUser["small"].Bits)
	}
	if byUser["big"].Subchannels != 9 {
		t.Errorf("big demand got %d subchannels, want the remaining 9", byUser["big"].Subchannels)
	}
}

func TestOFDMADeterministicTieBreak(t *testing.T) {
	o := OFDMA{Subchannels: 3, SubchannelBps: 1e6, FrameSeconds: 0.01}
	demands := []Demand{{User: "b", Bits: 1e9}, {User: "a", Bits: 1e9}}
	g1, _ := o.Allocate(demands)
	// Reversed input order must not change each user's grant.
	g2, _ := o.Allocate([]Demand{demands[1], demands[0]})
	byUser := func(gs []Grant) map[string]int {
		m := map[string]int{}
		for _, g := range gs {
			m[g.User] = g.Subchannels
		}
		return m
	}
	m1, m2 := byUser(g1), byUser(g2)
	for u := range m1 {
		if m1[u] != m2[u] {
			t.Errorf("user %s grant depends on input order: %d vs %d", u, m1[u], m2[u])
		}
	}
	// The extra (odd) subchannel goes to the alphabetically first user.
	if m1["a"] != 2 || m1["b"] != 1 {
		t.Errorf("tie-break wrong: %v", m1)
	}
}

func TestOFDMANeverExceedsSubchannels(t *testing.T) {
	f := func(demandUnits []uint8) bool {
		o := OFDMA{Subchannels: 16, SubchannelBps: 1e6, FrameSeconds: 0.01}
		var demands []Demand
		for i, d := range demandUnits {
			if i >= 40 {
				break
			}
			demands = append(demands, Demand{
				User: string(rune('a' + i%26)),
				Bits: float64(d) * 5000,
			})
		}
		grants, err := o.Allocate(demands)
		if err != nil {
			return false
		}
		total := 0
		for _, g := range grants {
			total += g.Subchannels
			if g.Subchannels < 0 {
				return false
			}
		}
		return total <= o.Subchannels
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Error("empty grants → 0")
	}
	if JainIndex([]Grant{{Subchannels: 0}, {Subchannels: 0}}) != 0 {
		t.Error("all-zero grants → 0")
	}
	// One user hogging everything → 1/n.
	g := []Grant{{Subchannels: 8}, {Subchannels: 0}, {Subchannels: 0}, {Subchannels: 0}}
	if got := JainIndex(g); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("hog Jain = %v, want 0.25", got)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
