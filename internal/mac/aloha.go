package mac

import (
	"fmt"
	"time"

	"github.com/openspace-project/openspace/internal/exec"
)

// ALOHAConfig parameterises slotted ALOHA — the original satellite MAC and
// the simplest possible contention scheme: transmit in the next slot after
// arrival, retransmit after a random backoff on collision. Included as the
// historical baseline under CSMA/CA and TDMA: its theoretical capacity is
// 1/e ≈ 0.368 of the channel, which the simulation reproduces.
type ALOHAConfig struct {
	Stations       int
	SlotTime       time.Duration // one packet = one slot
	PerStationRate float64       // packet arrivals per second per station
	MaxBackoff     int           // retransmission delay uniform in [1, MaxBackoff]
	MaxRetries     int
}

// DefaultALOHA returns a slotted-ALOHA configuration with 20 ms packet
// slots (matching DefaultCSMA's data airtime).
func DefaultALOHA(stations int, perStationRate float64) ALOHAConfig {
	return ALOHAConfig{
		Stations:       stations,
		SlotTime:       20 * time.Millisecond,
		PerStationRate: perStationRate,
		MaxBackoff:     16,
		MaxRetries:     15,
	}
}

// Validate reports whether the configuration is usable.
func (c ALOHAConfig) Validate() error {
	if c.Stations <= 0 {
		return fmt.Errorf("mac: aloha: stations %d must be positive", c.Stations)
	}
	if c.SlotTime <= 0 {
		return fmt.Errorf("mac: aloha: slot time must be positive")
	}
	if c.MaxBackoff <= 0 {
		return fmt.Errorf("mac: aloha: backoff must be positive")
	}
	if c.MaxRetries < 0 {
		return fmt.Errorf("mac: aloha: retries must be non-negative")
	}
	return nil
}

// domainALOHA seeds the ALOHA arrival/backoff stream. The three MAC
// simulations drew straight from the shared seed value before domains —
// identical arrival patterns across schemes — so adopting per-scheme
// domains moved mac.csv by one regeneration.
var domainALOHA = exec.Domain{Tag: "mac/aloha", ID: 120}

// RunALOHA simulates the channel for the given duration. Deterministic for
// a fixed seed.
func RunALOHA(cfg ALOHAConfig, duration time.Duration, seed int64) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	slots := int(duration / cfg.SlotTime)
	rng := exec.DomainRNG(seed, domainALOHA)
	arrivals := bernoulliArrivals(cfg.Stations, slots, cfg.PerStationRate, cfg.SlotTime, rng)

	type station struct {
		queue   []int // arrival slots
		sendAt  int   // earliest slot the HOL packet may transmit
		retries int
	}
	stations := make([]station, cfg.Stations)
	next := make([]int, cfg.Stations)

	var st Stats
	var delays []int
	success := 0

	for t := 0; t < slots; t++ {
		for s := range stations {
			for next[s] < len(arrivals[s]) && arrivals[s][next[s]] == t {
				if len(stations[s].queue) == 0 {
					stations[s].sendAt = t // fresh HOL packet sends now
				}
				stations[s].queue = append(stations[s].queue, t)
				next[s]++
				st.Offered++
			}
		}
		var transmitters []int
		for s := range stations {
			if len(stations[s].queue) > 0 && stations[s].sendAt <= t {
				transmitters = append(transmitters, s)
			}
		}
		switch {
		case len(transmitters) == 1:
			s := transmitters[0]
			st.Attempts++
			st.Delivered++
			success++
			delays = append(delays, t+1-stations[s].queue[0])
			stations[s].queue = stations[s].queue[1:]
			stations[s].retries = 0
			stations[s].sendAt = t + 1
		case len(transmitters) > 1:
			for _, s := range transmitters {
				st.Attempts++
				st.Collisions++
				stations[s].retries++
				if stations[s].retries > cfg.MaxRetries {
					stations[s].queue = stations[s].queue[1:]
					stations[s].retries = 0
					stations[s].sendAt = t + 1
					continue
				}
				stations[s].sendAt = t + 1 + rng.Intn(cfg.MaxBackoff)
			}
		}
	}
	delayStats(&st, delays, cfg.SlotTime)
	if slots > 0 {
		st.Utilization = float64(success) / float64(slots)
	}
	if st.Attempts > 0 {
		st.OverheadFrac = float64(st.Collisions) / float64(st.Attempts)
	}
	return st, nil
}
