package mac

import (
	"testing"
	"time"
)

func TestCSMAValidate(t *testing.T) {
	bad := []CSMAConfig{
		{},
		{Stations: -1, SlotTime: time.Millisecond, CWMin: 16, CWMax: 1024, DataSlots: 10},
		{Stations: 4, SlotTime: 0, CWMin: 16, CWMax: 1024, DataSlots: 10},
		{Stations: 4, SlotTime: time.Millisecond, CWMin: 0, CWMax: 1024, DataSlots: 10},
		{Stations: 4, SlotTime: time.Millisecond, CWMin: 32, CWMax: 16, DataSlots: 10},
		{Stations: 4, SlotTime: time.Millisecond, CWMin: 16, CWMax: 1024, DataSlots: 0},
		{Stations: 4, SlotTime: time.Millisecond, CWMin: 16, CWMax: 1024, DataSlots: 10, MaxRetries: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
	if err := DefaultCSMA(8, 2).Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestRunCSMABasic(t *testing.T) {
	cfg := DefaultCSMA(4, 1) // light load
	st, err := RunCSMA(cfg, time.Minute, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Offered == 0 {
		t.Fatal("no packets offered")
	}
	// At light load nearly everything is delivered.
	if float64(st.Delivered) < 0.9*float64(st.Offered) {
		t.Errorf("delivered %d of %d at light load", st.Delivered, st.Offered)
	}
	if st.MeanAccessDelay <= 0 || st.P95AccessDelay < st.MeanAccessDelay {
		t.Errorf("delay stats inconsistent: %v", st)
	}
	if st.MaxAccessDelay < st.P95AccessDelay {
		t.Errorf("max < p95: %v", st)
	}
}

func TestRunCSMADeterministic(t *testing.T) {
	cfg := DefaultCSMA(6, 3)
	a, err := RunCSMA(cfg, 30*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCSMA(cfg, 30*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed produced different stats:\n%v\n%v", a, b)
	}
	c, err := RunCSMA(cfg, 30*time.Second, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different seeds produced identical stats")
	}
}

func TestCSMACollisionsGrowWithLoad(t *testing.T) {
	light, err := RunCSMA(DefaultCSMA(4, 0.5), time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := RunCSMA(DefaultCSMA(30, 4), time.Minute, 3)
	if err != nil {
		t.Fatal(err)
	}
	lightRate := float64(light.Collisions) / float64(light.Attempts+1)
	heavyRate := float64(heavy.Collisions) / float64(heavy.Attempts+1)
	if heavyRate <= lightRate {
		t.Errorf("collision rate should grow with load: light %v, heavy %v", lightRate, heavyRate)
	}
	if heavy.MeanAccessDelay <= light.MeanAccessDelay {
		t.Errorf("delay should grow with load: light %v, heavy %v",
			light.MeanAccessDelay, heavy.MeanAccessDelay)
	}
}

func TestCSMAInvalidConfigRejected(t *testing.T) {
	if _, err := RunCSMA(CSMAConfig{}, time.Second, 1); err == nil {
		t.Error("invalid config should error")
	}
}

func TestTDMAValidate(t *testing.T) {
	bad := []TDMAConfig{
		{},
		{Stations: 0, SlotTime: time.Millisecond},
		{Stations: 4, SlotTime: 0},
		{Stations: 4, SlotTime: time.Millisecond, GuardSlots: -1},
	}
	for i, cfg := range bad {
		if cfg.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestRunTDMANoCollisions(t *testing.T) {
	cfg := DefaultTDMA(8, 2)
	st, err := RunTDMA(cfg, time.Minute, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Collisions != 0 {
		t.Errorf("TDMA cannot collide, got %d", st.Collisions)
	}
	if st.Offered == 0 || st.Delivered == 0 {
		t.Fatalf("no traffic: %v", st)
	}
	if float64(st.Delivered) < 0.9*float64(st.Offered) {
		t.Errorf("TDMA at light load should deliver nearly all: %v", st)
	}
}

func TestRunTDMADeterministic(t *testing.T) {
	cfg := DefaultTDMA(5, 1)
	a, _ := RunTDMA(cfg, 30*time.Second, 2)
	b, _ := RunTDMA(cfg, 30*time.Second, 2)
	if a != b {
		t.Error("TDMA not deterministic for fixed seed")
	}
}

func TestCSMAOverheadExceedsTDMA(t *testing.T) {
	// The paper's cited finding: CSMA/CA pays IFS + backoff overhead that a
	// coordinated scheme does not. At moderate load with several stations,
	// CSMA/CA access delay must exceed TDMA's.
	stations, rate := 12, 2.0
	csma, err := RunCSMA(DefaultCSMA(stations, rate), time.Minute, 11)
	if err != nil {
		t.Fatal(err)
	}
	tdma, err := RunTDMA(DefaultTDMA(stations, rate), time.Minute, 11)
	if err != nil {
		t.Fatal(err)
	}
	if csma.OverheadFrac <= tdma.OverheadFrac {
		t.Errorf("CSMA overhead %v should exceed TDMA %v", csma.OverheadFrac, tdma.OverheadFrac)
	}
}

func TestTDMAGuardOverhead(t *testing.T) {
	cfg := DefaultTDMA(4, 5)
	cfg.GuardSlots = 1
	st, err := RunTDMA(cfg, time.Minute, 9)
	if err != nil {
		t.Fatal(err)
	}
	if st.OverheadFrac != 0.5 {
		t.Errorf("1 guard per data slot → overhead 0.5, got %v", st.OverheadFrac)
	}
}
