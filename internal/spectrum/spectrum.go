// Package spectrum implements downlink frequency coordination between
// OpenSpace providers. The paper's §2 requires that disparate players have
// "access to shared spectrum" and §5(3) notes regions differ in allocation
// policy; within one region's allocation, satellites of *different*
// operators must still avoid interfering at shared ground sites.
//
// The model: a band is divided into equal channels. Two satellites conflict
// when some ground station sees both above its elevation mask — their
// co-channel downlinks would collide at that station's antenna. Channel
// assignment is then graph colouring on the conflict graph; the coordinator
// uses the Welsh–Powell greedy order (highest conflict degree first), which
// is deterministic and near-optimal on the disk-graph-like conflict
// structures satellite geometry produces. Satellites that cannot be
// coloured within the channel budget are returned unassigned — they must
// stay silent on this band (relaying over ISLs instead) until geometry
// changes.
package spectrum

import (
	"errors"
	"fmt"
	"sort"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/phy"
)

// Sat is one satellite requesting a downlink channel.
type Sat struct {
	ID  string
	Pos geo.Vec3 // ECEF at the coordination epoch
}

// Config parameterises one coordination round.
type Config struct {
	Band            phy.Band
	Channels        int     // channels available in the band
	MinElevationDeg float64 // ground stations' elevation mask
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("spectrum: channels %d must be positive", c.Channels)
	}
	if c.MinElevationDeg < 0 || c.MinElevationDeg >= 90 {
		return fmt.Errorf("spectrum: elevation mask %.1f outside [0,90)", c.MinElevationDeg)
	}
	return nil
}

// Plan is the outcome of a coordination round.
type Plan struct {
	Band       phy.Band
	Assignment map[string]int // satellite → channel index [0, Channels)
	Unassigned []string       // satellites that must stay silent
	// Conflicts is the number of conflicting satellite pairs considered.
	Conflicts int
}

// Assign coordinates channels for the satellites against the ground sites.
// The result is deterministic for identical inputs.
func Assign(cfg Config, sats []Sat, stations []geo.LatLon) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, st := range stations {
		if !st.Valid() {
			return nil, fmt.Errorf("spectrum: invalid station position %v", st)
		}
	}
	seen := map[string]bool{}
	for _, s := range sats {
		if s.ID == "" {
			return nil, errors.New("spectrum: satellite ID required")
		}
		if seen[s.ID] {
			return nil, fmt.Errorf("spectrum: duplicate satellite %q", s.ID)
		}
		seen[s.ID] = true
	}

	// Conflict graph: i~j iff some station sees both above the mask.
	n := len(sats)
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	visible := make([][]bool, len(stations))
	for si, st := range stations {
		visible[si] = make([]bool, n)
		for i, s := range sats {
			visible[si][i] = geo.ElevationDeg(st, s.Pos) >= cfg.MinElevationDeg
		}
	}
	conflicts := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for si := range stations {
				if visible[si][i] && visible[si][j] {
					adj[i][j], adj[j][i] = true, true
					conflicts++
					break
				}
			}
		}
	}

	// Welsh–Powell: colour in order of decreasing degree (ties by ID).
	degree := make([]int, n)
	for i := range adj {
		for j := range adj[i] {
			if adj[i][j] {
				degree[i]++
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if degree[order[a]] != degree[order[b]] {
			return degree[order[a]] > degree[order[b]]
		}
		return sats[order[a]].ID < sats[order[b]].ID
	})

	plan := &Plan{Band: cfg.Band, Assignment: make(map[string]int), Conflicts: conflicts}
	colour := make([]int, n)
	for i := range colour {
		colour[i] = -1
	}
	for _, i := range order {
		used := make([]bool, cfg.Channels)
		for j := 0; j < n; j++ {
			if adj[i][j] && colour[j] >= 0 {
				used[colour[j]] = true
			}
		}
		assigned := -1
		for ch := 0; ch < cfg.Channels; ch++ {
			if !used[ch] {
				assigned = ch
				break
			}
		}
		colour[i] = assigned
		if assigned >= 0 {
			plan.Assignment[sats[i].ID] = assigned
		} else {
			plan.Unassigned = append(plan.Unassigned, sats[i].ID)
		}
	}
	sort.Strings(plan.Unassigned)
	return plan, nil
}

// Verify checks the plan's core invariant against the same inputs: no two
// satellites visible from a common station share a channel. It returns the
// offending pairs (empty means the plan is interference-free).
func Verify(cfg Config, plan *Plan, sats []Sat, stations []geo.LatLon) [][2]string {
	var bad [][2]string
	for i := 0; i < len(sats); i++ {
		ci, iok := plan.Assignment[sats[i].ID]
		if !iok {
			continue
		}
		for j := i + 1; j < len(sats); j++ {
			cj, jok := plan.Assignment[sats[j].ID]
			if !jok || ci != cj {
				continue
			}
			for _, st := range stations {
				if geo.ElevationDeg(st, sats[i].Pos) >= cfg.MinElevationDeg &&
					geo.ElevationDeg(st, sats[j].Pos) >= cfg.MinElevationDeg {
					bad = append(bad, [2]string{sats[i].ID, sats[j].ID})
					break
				}
			}
		}
	}
	return bad
}
