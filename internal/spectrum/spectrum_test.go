package spectrum

import (
	"math/rand"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/phy"
)

func testConfig(channels int) Config {
	return Config{Band: phy.BandKu, Channels: channels, MinElevationDeg: 10}
}

func TestConfigValidate(t *testing.T) {
	if err := testConfig(8).Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []Config{
		{Band: phy.BandKu, Channels: 0, MinElevationDeg: 10},
		{Band: phy.BandKu, Channels: 4, MinElevationDeg: -1},
		{Band: phy.BandKu, Channels: 4, MinElevationDeg: 90},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestAssignValidation(t *testing.T) {
	cfg := testConfig(4)
	if _, err := Assign(cfg, []Sat{{ID: ""}}, nil); err == nil {
		t.Error("empty ID should fail")
	}
	if _, err := Assign(cfg, []Sat{{ID: "a"}, {ID: "a"}}, nil); err == nil {
		t.Error("duplicate ID should fail")
	}
	if _, err := Assign(cfg, nil, []geo.LatLon{{Lat: 99}}); err == nil {
		t.Error("bad station should fail")
	}
	if _, err := Assign(Config{}, nil, nil); err == nil {
		t.Error("bad config should fail")
	}
}

// overheadCluster returns n satellites all visible from the station — a
// fully connected conflict clique.
func overheadCluster(n int) ([]Sat, []geo.LatLon) {
	station := geo.LatLon{Lat: 0, Lon: 0}
	sats := make([]Sat, n)
	for i := range sats {
		// Spread within ~5° of the zenith: all well above a 10° mask.
		sats[i] = Sat{
			ID:  string(rune('a' + i)),
			Pos: geo.LatLon{Lat: float64(i), Lon: float64(i)}.Vec3(780),
		}
	}
	return sats, []geo.LatLon{station}
}

func TestCliqueNeedsOneChannelEach(t *testing.T) {
	sats, stations := overheadCluster(4)
	// 4 mutually conflicting satellites, 4 channels → all assigned,
	// pairwise distinct.
	plan, err := Assign(testConfig(4), sats, stations)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unassigned) != 0 {
		t.Fatalf("unassigned: %v", plan.Unassigned)
	}
	seen := map[int]bool{}
	for _, ch := range plan.Assignment {
		if seen[ch] {
			t.Fatalf("clique members share channel %d: %v", ch, plan.Assignment)
		}
		seen[ch] = true
	}
	if plan.Conflicts != 6 { // C(4,2)
		t.Errorf("conflicts = %d, want 6", plan.Conflicts)
	}
	// 3 channels → someone must stay silent.
	plan, err = Assign(testConfig(3), sats, stations)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unassigned) != 1 {
		t.Errorf("with 3 channels, unassigned = %v, want exactly 1", plan.Unassigned)
	}
	if bad := Verify(testConfig(3), plan, sats, stations); len(bad) != 0 {
		t.Errorf("plan violates interference invariant: %v", bad)
	}
}

func TestDistantSatellitesShareChannels(t *testing.T) {
	// Satellites over different hemispheres never conflict: one channel
	// suffices for all of them.
	sats := []Sat{
		{ID: "a", Pos: geo.LatLon{Lat: 0, Lon: 0}.Vec3(780)},
		{ID: "b", Pos: geo.LatLon{Lat: 0, Lon: 180}.Vec3(780)},
		{ID: "c", Pos: geo.LatLon{Lat: 80, Lon: 90}.Vec3(780)},
	}
	stations := []geo.LatLon{{Lat: 0, Lon: 0}, {Lat: 0, Lon: 180}, {Lat: 80, Lon: 90}}
	plan, err := Assign(testConfig(1), sats, stations)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unassigned) != 0 {
		t.Errorf("non-conflicting satellites unassigned: %v", plan.Unassigned)
	}
	if plan.Conflicts != 0 {
		t.Errorf("conflicts = %d, want 0", plan.Conflicts)
	}
}

func TestAssignDeterministic(t *testing.T) {
	sats, stations := overheadCluster(5)
	a, err := Assign(testConfig(5), sats, stations)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Assign(testConfig(5), sats, stations)
	if err != nil {
		t.Fatal(err)
	}
	for id, ch := range a.Assignment {
		if b.Assignment[id] != ch {
			t.Fatalf("nondeterministic assignment for %s", id)
		}
	}
}

func TestIridiumCoordination(t *testing.T) {
	// The full constellation over three shared gateways: the coordinator
	// must produce an interference-free plan within a realistic channel
	// budget, and the plan must verify.
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]Sat, c.Len())
	for i, s := range c.Satellites {
		sats[i] = Sat{ID: s.ID, Pos: s.Elements.PositionECEF(0)}
	}
	stations := []geo.LatLon{
		{Lat: 47.6, Lon: -122.3}, {Lat: 51.51, Lon: -0.13}, {Lat: -1.29, Lon: 36.82},
	}
	cfg := testConfig(8)
	plan, err := Assign(cfg, sats, stations)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Unassigned) != 0 {
		t.Errorf("8 channels should suffice for Iridium over 3 stations: %v", plan.Unassigned)
	}
	if bad := Verify(cfg, plan, sats, stations); len(bad) != 0 {
		t.Errorf("interference pairs: %v", bad)
	}
	// Channels are actually reused (far fewer channels than satellites).
	if len(plan.Assignment) <= cfg.Channels {
		t.Errorf("expected reuse across %d satellites", len(plan.Assignment))
	}
}

func TestVerifyCatchesBadPlan(t *testing.T) {
	sats, stations := overheadCluster(2)
	cfg := testConfig(2)
	plan := &Plan{Assignment: map[string]int{"a": 0, "b": 0}} // forced collision
	if bad := Verify(cfg, plan, sats, stations); len(bad) != 1 {
		t.Errorf("bad pairs = %v, want the colliding pair", bad)
	}
}

func TestRandomScenariosVerify(t *testing.T) {
	// Property: every plan the coordinator produces passes Verify.
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		c := orbit.RandomCircular(20, 780, rng)
		sats := make([]Sat, c.Len())
		for i, s := range c.Satellites {
			sats[i] = Sat{ID: s.ID, Pos: s.Elements.PositionECEF(0)}
		}
		var stations []geo.LatLon
		for k := 0; k < 4; k++ {
			stations = append(stations, geo.LatLon{
				Lat: rng.Float64()*140 - 70, Lon: rng.Float64()*360 - 180,
			})
		}
		cfg := testConfig(1 + rng.Intn(6))
		plan, err := Assign(cfg, sats, stations)
		if err != nil {
			t.Fatal(err)
		}
		if bad := Verify(cfg, plan, sats, stations); len(bad) != 0 {
			t.Fatalf("trial %d: interference pairs %v", trial, bad)
		}
		if len(plan.Assignment)+len(plan.Unassigned) != len(sats) {
			t.Fatalf("trial %d: plan does not partition the fleet", trial)
		}
	}
}
