package orbit

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/openspace-project/openspace/internal/geo"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCircularConstructor(t *testing.T) {
	e := Circular(780, 86.4, 30, 45)
	if e.SemiMajorAxisKm != geo.EarthRadiusKm+780 {
		t.Errorf("semi-major axis = %v", e.SemiMajorAxisKm)
	}
	if e.Eccentricity != 0 || e.ArgPerigeeDeg != 0 {
		t.Error("circular orbit must have e=0, ω=0")
	}
	if err := e.Validate(); err != nil {
		t.Errorf("valid circular orbit rejected: %v", err)
	}
}

func TestValidate(t *testing.T) {
	bad := []Elements{
		{},                    // zero value
		{SemiMajorAxisKm: -1}, // negative a
		{SemiMajorAxisKm: 7000, Eccentricity: 1.0},   // parabolic
		{SemiMajorAxisKm: 7000, Eccentricity: -0.1},  // negative e
		{SemiMajorAxisKm: 6000},                      // inside Earth
		{SemiMajorAxisKm: 7000, Eccentricity: 0.2},   // perigee inside Earth (5600 km)
		{SemiMajorAxisKm: 7151, InclinationDeg: 190}, // bad inclination
	}
	for i, e := range bad {
		if err := e.Validate(); err == nil {
			t.Errorf("case %d: %+v should be invalid", i, e)
		}
	}
	good := Circular(780, 86.4, 0, 0)
	if err := good.Validate(); err != nil {
		t.Errorf("good orbit rejected: %v", err)
	}
}

func TestPeriodIridium(t *testing.T) {
	// Iridium's 780 km orbit has a ~100.4-minute period.
	e := Circular(780, 86.4, 0, 0)
	period := e.PeriodS() / 60
	if period < 100 || period > 101 {
		t.Errorf("780 km period = %.2f min, want ~100.4", period)
	}
}

func TestPositionRadiusConstant(t *testing.T) {
	// A circular orbit keeps constant radius at all times.
	e := Circular(780, 55, 120, 77)
	want := geo.EarthRadiusKm + 780
	for _, tt := range []float64{0, 100, 1000, 5000, 86400} {
		r := e.PositionECI(tt).Norm()
		if !almostEqual(r, want, 1e-6) {
			t.Errorf("t=%v: radius %v, want %v", tt, r, want)
		}
		recef := e.PositionECEF(tt).Norm()
		if !almostEqual(recef, want, 1e-6) {
			t.Errorf("t=%v: ECEF radius %v, want %v", tt, recef, want)
		}
	}
}

func TestPositionPeriodicity(t *testing.T) {
	// After one orbital period the ECI position repeats.
	e := Circular(780, 86.4, 40, 10)
	p0 := e.PositionECI(0)
	p1 := e.PositionECI(e.PeriodS())
	if p0.DistanceKm(p1) > 1e-3 {
		t.Errorf("position after one period differs by %v km", p0.DistanceKm(p1))
	}
}

func TestEquatorialOrbitStaysEquatorial(t *testing.T) {
	e := Circular(780, 0, 0, 0)
	for _, tt := range []float64{0, 500, 2000, 4000} {
		p := e.PositionECI(tt)
		if math.Abs(p.Z) > 1e-6 {
			t.Errorf("equatorial orbit has z=%v at t=%v", p.Z, tt)
		}
	}
}

func TestPolarOrbitReachesPoles(t *testing.T) {
	e := Circular(780, 90, 0, 0)
	// Max |latitude| over one period should approach 90°.
	maxLat := 0.0
	period := e.PeriodS()
	for tt := 0.0; tt < period; tt += period / 720 {
		lat := math.Abs(e.PositionECI(tt).LatLon().Lat)
		if lat > maxLat {
			maxLat = lat
		}
	}
	if maxLat < 89.5 {
		t.Errorf("polar orbit max latitude = %v, want ~90", maxLat)
	}
}

func TestInclinationBoundsLatitude(t *testing.T) {
	// |latitude| never exceeds inclination (for i ≤ 90).
	f := func(incl, raan, ma, tfrac float64) bool {
		incl = math.Mod(math.Abs(incl), 90)
		raan = math.Mod(math.Abs(raan), 360)
		ma = math.Mod(math.Abs(ma), 360)
		e := Circular(780, incl, raan, ma)
		tt := math.Mod(math.Abs(tfrac), 1) * e.PeriodS()
		lat := math.Abs(e.PositionECI(tt).LatLon().Lat)
		return lat <= incl+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestECEFRotation(t *testing.T) {
	// A satellite fixed in ECI drifts westward in ECEF at Earth's rate.
	e := Circular(780, 0, 0, 0)
	lon0 := e.PositionECEF(0).LatLon().Lon
	dt := 600.0
	lon1 := e.PositionECEF(dt).LatLon().Lon
	// Satellite eastward motion (mean motion) minus Earth rotation.
	wantDrift := geo.Degrees((e.MeanMotionRadS() - geo.EarthRotationRadS) * dt)
	drift := math.Mod(lon1-lon0+540, 360) - 180
	if !almostEqual(drift, wantDrift, 1e-6) {
		t.Errorf("ECEF longitude drift = %v°, want %v°", drift, wantDrift)
	}
}

func TestSolveKepler(t *testing.T) {
	// e=0: E == M for any M.
	for _, m := range []float64{-7, -1, 0, 0.5, 3, 9} {
		got, err := SolveKepler(m, 0)
		if err != nil || got != m {
			t.Errorf("SolveKepler(%v, 0) = %v, %v", m, got, err)
		}
	}
	// Solutions satisfy Kepler's equation.
	f := func(m, e float64) bool {
		m = math.Mod(m, 4*math.Pi)
		e = math.Mod(math.Abs(e), 0.95)
		ea, err := SolveKepler(m, e)
		if err != nil {
			return false
		}
		return math.Abs(ea-e*math.Sin(ea)-m) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestEccentricOrbitApsides(t *testing.T) {
	// An eccentric orbit's radius oscillates between a(1-e) and a(1+e).
	e := Elements{
		SemiMajorAxisKm: 8000,
		Eccentricity:    0.1,
		InclinationDeg:  30,
	}
	if err := e.Validate(); err != nil {
		t.Fatalf("orbit invalid: %v", err)
	}
	minR, maxR := math.Inf(1), 0.0
	period := e.PeriodS()
	for tt := 0.0; tt < period; tt += period / 2000 {
		r := e.PositionECI(tt).Norm()
		minR = math.Min(minR, r)
		maxR = math.Max(maxR, r)
	}
	if !almostEqual(minR, 8000*0.9, 1) {
		t.Errorf("perigee radius = %v, want %v", minR, 8000*0.9)
	}
	if !almostEqual(maxR, 8000*1.1, 1) {
		t.Errorf("apogee radius = %v, want %v", maxR, 8000*1.1)
	}
}

func TestGroundTrack(t *testing.T) {
	e := Circular(780, 86.4, 0, 0)
	track := e.GroundTrack(6000, 60)
	if len(track) != 101 {
		t.Fatalf("track length = %d, want 101", len(track))
	}
	for _, p := range track {
		if !p.Valid() {
			t.Fatalf("invalid track point %v", p)
		}
	}
	if e.GroundTrack(-1, 60) != nil || e.GroundTrack(100, 0) != nil {
		t.Error("degenerate arguments should yield nil track")
	}
}

func TestSunSynchronousInclination(t *testing.T) {
	// Reference values: ~97.4° at 550 km, ~98.6° at 800 km (standard SSO
	// mission altitudes).
	got, err := SunSynchronousInclinationDeg(550)
	if err != nil {
		t.Fatal(err)
	}
	if got < 97 || got > 98 {
		t.Errorf("SSO at 550 km = %v°, want ~97.5", got)
	}
	got, err = SunSynchronousInclinationDeg(800)
	if err != nil {
		t.Fatal(err)
	}
	if got < 98 || got > 99.2 {
		t.Errorf("SSO at 800 km = %v°, want ~98.6", got)
	}
	// Inclination grows with altitude (more J2 leverage needed).
	lo, _ := SunSynchronousInclinationDeg(400)
	hi, _ := SunSynchronousInclinationDeg(1200)
	if hi <= lo {
		t.Errorf("SSO inclination should grow with altitude: %v vs %v", lo, hi)
	}
	// Out of range.
	if _, err := SunSynchronousInclinationDeg(0); err == nil {
		t.Error("zero altitude should fail")
	}
	if _, err := SunSynchronousInclinationDeg(10000); err == nil {
		t.Error("too-high altitude should fail")
	}
}
