package orbit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/openspace-project/openspace/internal/geo"
)

// TestVisVivaEnergyConservation checks that propagated positions satisfy
// the vis-viva relation: for a two-body orbit, v² = μ(2/r − 1/a) at every
// point, i.e. specific orbital energy −μ/2a is conserved. Velocity is
// estimated by central differencing.
func TestVisVivaEnergyConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		e := Elements{
			SemiMajorAxisKm: 7000 + rng.Float64()*3000,
			Eccentricity:    rng.Float64() * 0.05,
			InclinationDeg:  rng.Float64() * 180,
			RAANDeg:         rng.Float64() * 360,
			ArgPerigeeDeg:   rng.Float64() * 360,
			MeanAnomalyDeg:  rng.Float64() * 360,
		}
		if err := e.Validate(); err != nil {
			t.Fatalf("generated invalid orbit: %v", err)
		}
		period := e.PeriodS()
		for _, frac := range []float64{0.1, 0.37, 0.5, 0.81} {
			tt := frac * period
			const dt = 0.05
			p0 := e.PositionECI(tt - dt)
			p1 := e.PositionECI(tt + dt)
			pm := e.PositionECI(tt)
			v := p1.Sub(p0).Scale(1 / (2 * dt)).Norm()
			r := pm.Norm()
			want := math.Sqrt(geo.EarthMuKm3S2 * (2/r - 1/e.SemiMajorAxisKm))
			if math.Abs(v-want)/want > 1e-5 {
				t.Fatalf("trial %d t=%.0f: speed %v, vis-viva %v", trial, tt, v, want)
			}
		}
	}
}

// TestAngularMomentumConstant checks the second conserved quantity: the
// specific angular momentum vector r × v is fixed in the inertial frame.
func TestAngularMomentumConstant(t *testing.T) {
	e := Elements{
		SemiMajorAxisKm: 7151, Eccentricity: 0.02,
		InclinationDeg: 63.4, RAANDeg: 120, ArgPerigeeDeg: 270,
	}
	const dt = 0.05
	h0 := momentumAt(e, 100, dt)
	for _, tt := range []float64{500, 1500, 3000, 5000} {
		h := momentumAt(e, tt, dt)
		if h.Sub(h0).Norm()/h0.Norm() > 1e-5 {
			t.Fatalf("angular momentum drifted at t=%v: %v vs %v", tt, h, h0)
		}
	}
}

func momentumAt(e Elements, t, dt float64) geo.Vec3 {
	p0 := e.PositionECI(t - dt)
	p1 := e.PositionECI(t + dt)
	v := p1.Sub(p0).Scale(1 / (2 * dt))
	return e.PositionECI(t).Cross(v)
}

// TestECIAndECEFConsistent checks the frames agree on radius and z (the
// rotation is about the z-axis).
func TestECIAndECEFConsistent(t *testing.T) {
	f := func(incl, raan, ma, tfrac float64) bool {
		incl = math.Mod(math.Abs(incl), 180)
		raan = math.Mod(math.Abs(raan), 360)
		ma = math.Mod(math.Abs(ma), 360)
		e := Circular(780, incl, raan, ma)
		tt := math.Mod(math.Abs(tfrac), 2) * e.PeriodS()
		eci := e.PositionECI(tt)
		ecef := e.PositionECEF(tt)
		return math.Abs(eci.Norm()-ecef.Norm()) < 1e-6 &&
			math.Abs(eci.Z-ecef.Z) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestWalkerSymmetry checks that rotating time by one in-plane spacing
// period maps each Walker satellite onto its neighbour's track: the
// constellation is invariant under its own symmetry group.
func TestWalkerSymmetry(t *testing.T) {
	c, err := Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	// Plane 0's satellites: s and s+1 differ by 360/11 degrees of mean
	// anomaly, i.e. 1/11 of a period in time.
	period := c.Satellites[0].Elements.PeriodS()
	shift := period / 11
	for s := 0; s < 10; s++ {
		a := c.Satellites[s].Elements
		b := c.Satellites[s+1].Elements
		pa := a.PositionECI(shift)
		pb := b.PositionECI(0)
		if pa.DistanceKm(pb) > 1e-3 {
			t.Fatalf("satellite %d shifted by one spacing is %v km from satellite %d",
				s, pa.DistanceKm(pb), s+1)
		}
	}
}
