// Package orbit implements the two-body orbital mechanics that OpenSpace's
// routing and coverage layers rely on: Keplerian elements, analytic
// propagation, Walker constellation generation, and ground visibility.
//
// The paper's key architectural assumption (§2.2) is that satellite orbits
// are fully predictable — "the radar-tracked orbital paths of satellites are
// well-known and readily available on public websites" — and therefore that
// the network topology can be precomputed by every participant. A two-body
// Keplerian propagator provides exactly that property. Perturbations (J2,
// drag) change *which* topology occurs, not its predictability, so they are
// deliberately out of scope; see DESIGN.md's substitution table.
//
// Frames: PositionECI returns coordinates in an inertial frame whose +X axis
// coincides with the Greenwich meridian at epoch t=0. PositionECEF rotates by
// Earth's sidereal rate so coordinates co-rotate with the ground. All times
// are seconds since a shared epoch.
package orbit

import (
	"errors"
	"fmt"
	"math"

	"github.com/openspace-project/openspace/internal/geo"
)

// Elements is a classical Keplerian element set describing one orbit.
// Angles are degrees at the API boundary (matching constellation
// specifications in the literature); the zero value is invalid — use one of
// the constructors or fill in every field.
type Elements struct {
	SemiMajorAxisKm float64 // a: orbit size, from Earth's centre
	Eccentricity    float64 // e: 0 = circular, <1 for bound orbits
	InclinationDeg  float64 // i: angle between orbit plane and equator
	RAANDeg         float64 // Ω: right ascension of the ascending node
	ArgPerigeeDeg   float64 // ω: orientation of the ellipse in-plane
	MeanAnomalyDeg  float64 // M₀: position along the orbit at epoch
}

// Circular returns the element set of a circular orbit at the given altitude
// above the surface. RAAN and the in-plane phase (mean anomaly) position the
// satellite; the argument of perigee is meaningless for e=0 and set to zero.
func Circular(altitudeKm, inclinationDeg, raanDeg, meanAnomalyDeg float64) Elements {
	return Elements{
		SemiMajorAxisKm: geo.EarthRadiusKm + altitudeKm,
		InclinationDeg:  inclinationDeg,
		RAANDeg:         raanDeg,
		MeanAnomalyDeg:  meanAnomalyDeg,
	}
}

// Validate reports whether the element set describes a bound orbit that does
// not intersect the Earth.
func (e Elements) Validate() error {
	if e.SemiMajorAxisKm <= 0 {
		return fmt.Errorf("orbit: semi-major axis %.1f km must be positive", e.SemiMajorAxisKm)
	}
	if e.Eccentricity < 0 || e.Eccentricity >= 1 {
		return fmt.Errorf("orbit: eccentricity %.4f outside [0,1)", e.Eccentricity)
	}
	if perigee := e.SemiMajorAxisKm * (1 - e.Eccentricity); perigee <= geo.EarthRadiusKm {
		return fmt.Errorf("orbit: perigee %.1f km is inside the Earth", perigee)
	}
	if e.InclinationDeg < 0 || e.InclinationDeg > 180 {
		return fmt.Errorf("orbit: inclination %.2f° outside [0,180]", e.InclinationDeg)
	}
	return nil
}

// AltitudeKm returns the orbit's altitude above the surface at perigee; for
// circular orbits this is the constant altitude.
func (e Elements) AltitudeKm() float64 {
	return e.SemiMajorAxisKm*(1-e.Eccentricity) - geo.EarthRadiusKm
}

// MeanMotionRadS returns the mean motion n = sqrt(μ/a³) in rad/s.
func (e Elements) MeanMotionRadS() float64 {
	a := e.SemiMajorAxisKm
	return math.Sqrt(geo.EarthMuKm3S2 / (a * a * a))
}

// PeriodS returns the orbital period in seconds.
func (e Elements) PeriodS() float64 {
	return 2 * math.Pi / e.MeanMotionRadS()
}

// PositionECI returns the inertial-frame position at t seconds after epoch.
func (e Elements) PositionECI(t float64) geo.Vec3 {
	// Mean anomaly at t.
	m := geo.Radians(e.MeanAnomalyDeg) + e.MeanMotionRadS()*t
	ea, err := SolveKepler(m, e.Eccentricity)
	if err != nil {
		// Unreachable for validated elements (e<1); fall back to the mean
		// anomaly, exact for circular orbits.
		ea = m
	}
	// True anomaly and radius from the eccentric anomaly.
	ecc := e.Eccentricity
	cosE, sinE := math.Cos(ea), math.Sin(ea)
	r := e.SemiMajorAxisKm * (1 - ecc*cosE)
	nu := math.Atan2(math.Sqrt(1-ecc*ecc)*sinE, cosE-ecc)

	// Perifocal coordinates.
	xp := r * math.Cos(nu)
	yp := r * math.Sin(nu)

	// Rotate perifocal → ECI by ω (argument of perigee), i, Ω (RAAN).
	w := geo.Radians(e.ArgPerigeeDeg)
	inc := geo.Radians(e.InclinationDeg)
	raan := geo.Radians(e.RAANDeg)
	cw, sw := math.Cos(w), math.Sin(w)
	ci, si := math.Cos(inc), math.Sin(inc)
	co, so := math.Cos(raan), math.Sin(raan)

	// Combined rotation matrix rows applied to (xp, yp, 0).
	x := (co*cw-so*sw*ci)*xp + (-co*sw-so*cw*ci)*yp
	y := (so*cw+co*sw*ci)*xp + (-so*sw+co*cw*ci)*yp
	z := (sw*si)*xp + (cw*si)*yp
	return geo.Vec3{X: x, Y: y, Z: z}
}

// PositionECEF returns the Earth-fixed position at t seconds after epoch,
// accounting for Earth's sidereal rotation. Ground stations and coverage
// footprints live in this frame.
func (e Elements) PositionECEF(t float64) geo.Vec3 {
	p := e.PositionECI(t)
	// Rotate by -θ where θ = ωE·t (Greenwich aligned with +X at t=0).
	theta := geo.EarthRotationRadS * t
	c, s := math.Cos(theta), math.Sin(theta)
	return geo.Vec3{
		X: c*p.X + s*p.Y,
		Y: -s*p.X + c*p.Y,
		Z: p.Z,
	}
}

// SubSatellitePoint returns the geodetic point directly beneath the satellite
// at t seconds after epoch.
func (e Elements) SubSatellitePoint(t float64) geo.LatLon {
	return e.PositionECEF(t).LatLon()
}

// GroundTrack samples the sub-satellite point every stepS seconds over
// [0, durationS] and returns the resulting track. The track of a LEO
// satellite drifts westward each revolution because the Earth rotates
// beneath the orbit.
func (e Elements) GroundTrack(durationS, stepS float64) []geo.LatLon {
	if stepS <= 0 || durationS < 0 {
		return nil
	}
	n := int(durationS/stepS) + 1
	track := make([]geo.LatLon, 0, n)
	for i := 0; i < n; i++ {
		track = append(track, e.SubSatellitePoint(float64(i)*stepS))
	}
	return track
}

// ErrNoConvergence is returned by SolveKepler when Newton iteration fails to
// reach tolerance; it cannot occur for eccentricities below ~0.97.
var ErrNoConvergence = errors.New("orbit: Kepler solver did not converge")

// SunSynchronousInclinationDeg returns the inclination at which a circular
// orbit at the given altitude precesses with the Sun (one nodal revolution
// per year) under Earth's J2 oblateness: cos i = −(a/a₀)^(7/2) with
// a₀ ≈ 12352 km. Useful for Earth-observation members of a federation whose
// imaging satellites double as communication relays. Returns an error above
// ~5975 km altitude, where no sun-synchronous inclination exists.
func SunSynchronousInclinationDeg(altitudeKm float64) (float64, error) {
	if altitudeKm <= 0 {
		return 0, fmt.Errorf("orbit: altitude %.1f must be positive", altitudeKm)
	}
	const a0 = 12352.0 // km, from J2, Earth radius and the 360°/year rate
	a := geo.EarthRadiusKm + altitudeKm
	c := -math.Pow(a/a0, 3.5)
	if c < -1 {
		return 0, fmt.Errorf("orbit: no sun-synchronous inclination at %.0f km", altitudeKm)
	}
	return geo.Degrees(math.Acos(c)), nil
}
