package orbit

import (
	"math"
	"math/rand"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
)

func TestWalkerValidate(t *testing.T) {
	bad := []WalkerConfig{
		{TotalSats: 0, Planes: 1, AltitudeKm: 780},
		{TotalSats: 10, Planes: 3, AltitudeKm: 780},                   // planes don't divide
		{TotalSats: 12, Planes: 3, PhasingFactor: 3, AltitudeKm: 780}, // F out of range
		{TotalSats: 12, Planes: 3, AltitudeKm: 50},                    // too low
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: %+v should be invalid", i, w)
		}
	}
	if err := Iridium().Validate(); err != nil {
		t.Errorf("Iridium config invalid: %v", err)
	}
	if err := CBOReference().Validate(); err != nil {
		t.Errorf("CBO config invalid: %v", err)
	}
}

func TestWalkerBuildStructure(t *testing.T) {
	c, err := Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 66 {
		t.Fatalf("Iridium has %d satellites, want 66", c.Len())
	}
	// 6 distinct RAANs spread over 180° (Star).
	raans := map[float64]int{}
	for _, s := range c.Satellites {
		raans[s.Elements.RAANDeg]++
		if s.Elements.AltitudeKm() != 780 {
			t.Fatalf("satellite %s altitude %v, want 780", s.ID, s.Elements.AltitudeKm())
		}
		if s.Elements.InclinationDeg != 86.4 {
			t.Fatalf("satellite %s inclination %v", s.ID, s.Elements.InclinationDeg)
		}
	}
	if len(raans) != 6 {
		t.Fatalf("found %d planes, want 6", len(raans))
	}
	for raan, n := range raans {
		if n != 11 {
			t.Errorf("plane RAAN=%v has %d satellites, want 11", raan, n)
		}
		if raan < 0 || raan >= 180 {
			t.Errorf("star RAAN %v outside [0,180)", raan)
		}
	}
	// IDs unique.
	ids := map[string]bool{}
	for _, s := range c.Satellites {
		if ids[s.ID] {
			t.Fatalf("duplicate ID %s", s.ID)
		}
		ids[s.ID] = true
	}
}

func TestWalkerDeltaSpread(t *testing.T) {
	w := WalkerConfig{
		TotalSats: 12, Planes: 4, PhasingFactor: 1,
		AltitudeKm: 550, InclinationDeg: 53, Star: false,
	}
	c, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	maxRAAN := 0.0
	for _, s := range c.Satellites {
		maxRAAN = math.Max(maxRAAN, s.Elements.RAANDeg)
	}
	if maxRAAN != 270 {
		t.Errorf("delta max RAAN = %v, want 270 (4 planes over 360°)", maxRAAN)
	}
}

func TestWalkerInPlaneSpacing(t *testing.T) {
	// Satellites in the same plane are evenly separated in mean anomaly so
	// intra-plane ISLs have constant length (the Walker advantage the paper
	// cites for sustained ISLs).
	c, err := Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	// Pick plane 0's satellites in order.
	var mas []float64
	for _, s := range c.Satellites {
		if s.Elements.RAANDeg == 0 {
			mas = append(mas, s.Elements.MeanAnomalyDeg)
		}
	}
	if len(mas) != 11 {
		t.Fatalf("plane 0 has %d satellites", len(mas))
	}
	for i := 1; i < len(mas); i++ {
		gap := mas[i] - mas[i-1]
		if !almostEqual(gap, 360.0/11, 1e-9) {
			t.Errorf("in-plane gap %v, want %v", gap, 360.0/11)
		}
	}
	// Verify constant intra-plane range over time.
	s0, s1 := c.Satellites[0], c.Satellites[1]
	d0 := s0.Elements.PositionECI(0).DistanceKm(s1.Elements.PositionECI(0))
	d1 := s0.Elements.PositionECI(3000).DistanceKm(s1.Elements.PositionECI(3000))
	if !almostEqual(d0, d1, 1e-6) {
		t.Errorf("intra-plane ISL length changed: %v → %v", d0, d1)
	}
}

func TestRandomCircular(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	c := RandomCircular(50, 780, rng)
	if c.Len() != 50 {
		t.Fatalf("got %d satellites", c.Len())
	}
	for _, s := range c.Satellites {
		if err := s.Elements.Validate(); err != nil {
			t.Fatalf("satellite %s invalid: %v", s.ID, err)
		}
		if s.Elements.AltitudeKm() != 780 {
			t.Fatalf("satellite %s altitude %v", s.ID, s.Elements.AltitudeKm())
		}
	}
	// Determinism for a fixed seed.
	again := RandomCircular(50, 780, rand.New(rand.NewSource(42)))
	for i := range c.Satellites {
		if c.Satellites[i].Elements != again.Satellites[i].Elements {
			t.Fatal("RandomCircular not deterministic for fixed seed")
		}
	}
	// Different seeds differ.
	other := RandomCircular(50, 780, rand.New(rand.NewSource(43)))
	same := true
	for i := range c.Satellites {
		if c.Satellites[i].Elements != other.Satellites[i].Elements {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical constellations")
	}
}

func TestConstellationPositions(t *testing.T) {
	c, err := Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	ps := c.Positions(0)
	if len(ps) != c.Len() {
		t.Fatalf("positions length %d", len(ps))
	}
	for i, p := range ps {
		if !almostEqual(p.Norm(), geo.EarthRadiusKm+780, 1e-6) {
			t.Fatalf("satellite %d radius %v", i, p.Norm())
		}
	}
}
