package orbit

import (
	"github.com/openspace-project/openspace/internal/geo"
)

// Visible reports whether the satellite is visible from the ground point at
// time t (seconds after epoch) with at least minElevationDeg of elevation.
func (e Elements) Visible(from geo.LatLon, t, minElevationDeg float64) bool {
	return geo.ElevationDeg(from, e.PositionECEF(t)) >= minElevationDeg
}

// ContactWindow is an interval during which a satellite is continuously
// visible from a ground point. Times are seconds after epoch.
type ContactWindow struct {
	RiseS float64
	SetS  float64
}

// DurationS returns the window length in seconds.
func (w ContactWindow) DurationS() float64 { return w.SetS - w.RiseS }

// ContactWindows scans [startS, endS] with coarse steps and refines each
// rise/set crossing by bisection to within tolS seconds. stepS must be small
// enough not to skip a whole pass (for LEO, 30 s is safe; passes last
// minutes). Windows clipped by the scan boundaries are reported clipped.
//
// Predictable contact windows are what make OpenSpace routing proactive
// (§2.2): every provider can compute every other provider's windows from
// public orbital data.
func (e Elements) ContactWindows(from geo.LatLon, startS, endS, stepS, minElevationDeg float64) []ContactWindow {
	if stepS <= 0 || endS <= startS {
		return nil
	}
	const tolS = 0.01
	vis := func(t float64) bool { return e.Visible(from, t, minElevationDeg) }

	// Bisect a visibility transition inside (lo, hi).
	refine := func(lo, hi float64, wantVisible bool) float64 {
		for hi-lo > tolS {
			mid := (lo + hi) / 2
			if vis(mid) == wantVisible {
				hi = mid
			} else {
				lo = mid
			}
		}
		return (lo + hi) / 2
	}

	var windows []ContactWindow
	prevT := startS
	prevVis := vis(startS)
	cur := ContactWindow{RiseS: startS}
	inWindow := prevVis

	for t := startS + stepS; ; t += stepS {
		if t > endS {
			t = endS
		}
		v := vis(t)
		switch {
		case v && !prevVis:
			cur = ContactWindow{RiseS: refine(prevT, t, true)}
			inWindow = true
		case !v && prevVis && inWindow:
			cur.SetS = refine(prevT, t, false)
			windows = append(windows, cur)
			inWindow = false
		}
		prevT, prevVis = t, v
		if t >= endS {
			break
		}
	}
	if inWindow {
		cur.SetS = endS
		windows = append(windows, cur)
	}
	return windows
}

// RangeKm returns the slant range in kilometres between the satellite and a
// ground point at time t.
func (e Elements) RangeKm(from geo.LatLon, t float64) float64 {
	return e.PositionECEF(t).DistanceKm(from.Vec3(0))
}

// Footprint returns the satellite's coverage cap at time t for ground
// terminals with the given minimum elevation mask.
func (e Elements) Footprint(t, minElevationDeg float64) geo.Cap {
	pos := e.PositionECEF(t)
	return geo.Cap{
		Center:        pos.LatLon(),
		AngularRadius: geo.FootprintAngularRadius(pos.AltitudeKm(), minElevationDeg),
	}
}

// Footprints returns the coverage caps of every satellite in the
// constellation at time t.
func (c *Constellation) Footprints(t, minElevationDeg float64) []geo.Cap {
	caps := make([]geo.Cap, len(c.Satellites))
	for i, s := range c.Satellites {
		caps[i] = s.Elements.Footprint(t, minElevationDeg)
	}
	return caps
}

// Positions returns the ECEF position of every satellite at time t, indexed
// like c.Satellites.
func (c *Constellation) Positions(t float64) []geo.Vec3 {
	ps := make([]geo.Vec3, len(c.Satellites))
	for i, s := range c.Satellites {
		ps[i] = s.Elements.PositionECEF(t)
	}
	return ps
}
