package orbit

import (
	"math"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
)

func TestVisibleOverhead(t *testing.T) {
	// A satellite whose sub-satellite point coincides with the observer is
	// visible at any reasonable mask.
	e := Circular(780, 0, 0, 0)
	ssp := e.SubSatellitePoint(0)
	if !e.Visible(ssp, 0, 85) {
		t.Error("overhead satellite should be visible at 85° mask")
	}
	// An observer on the opposite side of the Earth cannot see it.
	anti := geo.LatLon{Lat: -ssp.Lat, Lon: ssp.Lon + 180}.Normalize()
	if e.Visible(anti, 0, 0) {
		t.Error("antipodal observer should not see the satellite")
	}
}

func TestContactWindowsPolarPass(t *testing.T) {
	// A polar orbit passes over the pole every half period, so a polar
	// observer gets regular, similar-length windows.
	e := Circular(780, 90, 0, 0)
	pole := geo.LatLon{Lat: 90, Lon: 0}
	day := 86400.0
	ws := e.ContactWindows(pole, 0, day, 30, 10)
	if len(ws) < 10 {
		t.Fatalf("polar observer got %d windows in a day, want many", len(ws))
	}
	for i, w := range ws {
		if w.SetS <= w.RiseS {
			t.Fatalf("window %d not ordered: %+v", i, w)
		}
		if w.DurationS() > 20*60 {
			t.Fatalf("window %d lasts %v s, too long for LEO", i, w.DurationS())
		}
		// Rise and set points really are transitions (except at scan edges).
		if w.RiseS > 1 && w.SetS < day-1 {
			if e.Visible(pole, w.RiseS-1, 10) {
				t.Fatalf("window %d: visible just before rise", i)
			}
			if !e.Visible(pole, w.RiseS+1, 10) {
				t.Fatalf("window %d: not visible just after rise", i)
			}
			if e.Visible(pole, w.SetS+1, 10) {
				t.Fatalf("window %d: visible just after set", i)
			}
		}
	}
	// Windows are disjoint and ordered.
	for i := 1; i < len(ws); i++ {
		if ws[i].RiseS <= ws[i-1].SetS {
			t.Fatalf("windows %d and %d overlap", i-1, i)
		}
	}
}

func TestContactWindowsEquatorNeverSeesPolarGap(t *testing.T) {
	// An equatorial observer and an equatorial orbit in the same plane:
	// the satellite is either permanently visible or periodically visible,
	// and window durations must be consistent.
	e := Circular(780, 0, 0, 0)
	obs := geo.LatLon{Lat: 0, Lon: 0}
	ws := e.ContactWindows(obs, 0, 86400, 30, 5)
	if len(ws) == 0 {
		t.Fatal("equatorial observer should see an equatorial satellite")
	}
	// The relative angular rate is (n - ωE); visibility windows recur with
	// the synodic period.
	syn := 2 * math.Pi / (e.MeanMotionRadS() - geo.EarthRotationRadS)
	// Skip the first window: the satellite starts directly overhead, so that
	// window is clipped at the scan start and its rise is not a true rise.
	for i := 2; i < len(ws); i++ {
		gap := ws[i].RiseS - ws[i-1].RiseS
		if math.Abs(gap-syn) > 60 {
			t.Errorf("window recurrence %v s, want ~%v s", gap, syn)
		}
	}
}

func TestContactWindowsDegenerate(t *testing.T) {
	e := Circular(780, 0, 0, 0)
	obs := geo.LatLon{}
	if ws := e.ContactWindows(obs, 0, 100, 0, 5); ws != nil {
		t.Error("zero step should return nil")
	}
	if ws := e.ContactWindows(obs, 100, 100, 30, 5); ws != nil {
		t.Error("empty interval should return nil")
	}
}

func TestRangeKm(t *testing.T) {
	e := Circular(780, 0, 0, 0)
	ssp := e.SubSatellitePoint(0)
	if got := e.RangeKm(ssp, 0); !almostEqual(got, 780, 1) {
		t.Errorf("zenith range = %v, want ~780", got)
	}
}

func TestFootprint(t *testing.T) {
	e := Circular(780, 0, 0, 0)
	fp := e.Footprint(0, 10)
	want := geo.FootprintAngularRadius(780, 10)
	if !almostEqual(fp.AngularRadius, want, 1e-9) {
		t.Errorf("footprint radius = %v, want %v", fp.AngularRadius, want)
	}
	ssp := e.SubSatellitePoint(0)
	if geo.CentralAngle(fp.Center, ssp) > 1e-9 {
		t.Error("footprint not centred on sub-satellite point")
	}
}

func TestConstellationFootprints(t *testing.T) {
	c, err := Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	caps := c.Footprints(0, 10)
	if len(caps) != 66 {
		t.Fatalf("got %d footprints", len(caps))
	}
	// A full Iridium constellation at a 10° mask covers (nearly) the whole
	// Earth — the premise of the paper's Figure 2(a).
	frac := geo.ExactCoverageFraction(caps, 10000)
	if frac < 0.97 {
		t.Errorf("Iridium coverage = %v, want ≥0.97", frac)
	}
}
