package orbit

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// The canonical ISS reference TLE (Wikipedia's worked example).
const (
	issLine1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927"
	issLine2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537"
)

func TestParseTLEISS(t *testing.T) {
	tle, err := ParseTLE("ISS (ZARYA)", issLine1, issLine2)
	if err != nil {
		t.Fatal(err)
	}
	if tle.Name != "ISS (ZARYA)" {
		t.Errorf("name = %q", tle.Name)
	}
	if tle.CatalogNum != 25544 {
		t.Errorf("catalog = %d", tle.CatalogNum)
	}
	if tle.IntlDesig != "98067A" {
		t.Errorf("intl desig = %q", tle.IntlDesig)
	}
	if tle.EpochYear != 2008 {
		t.Errorf("epoch year = %d", tle.EpochYear)
	}
	if math.Abs(tle.EpochDay-264.51782528) > 1e-8 {
		t.Errorf("epoch day = %v", tle.EpochDay)
	}
	e := tle.Elements
	if math.Abs(e.InclinationDeg-51.6416) > 1e-4 {
		t.Errorf("inclination = %v", e.InclinationDeg)
	}
	if math.Abs(e.RAANDeg-247.4627) > 1e-4 {
		t.Errorf("raan = %v", e.RAANDeg)
	}
	if math.Abs(e.Eccentricity-0.0006703) > 1e-7 {
		t.Errorf("eccentricity = %v", e.Eccentricity)
	}
	if math.Abs(e.ArgPerigeeDeg-130.5360) > 1e-4 {
		t.Errorf("arg perigee = %v", e.ArgPerigeeDeg)
	}
	if math.Abs(e.MeanAnomalyDeg-325.0288) > 1e-4 {
		t.Errorf("mean anomaly = %v", e.MeanAnomalyDeg)
	}
	// 15.72 rev/day → a ≈ 6724 km → ~350 km altitude (the ISS, 2008).
	if alt := e.AltitudeKm(); alt < 300 || alt > 400 {
		t.Errorf("ISS altitude = %v km, want ~350", alt)
	}
	// Period consistency: n rev/day ↔ period.
	wantPeriod := 86400.0 / 15.72125391
	if math.Abs(e.PeriodS()-wantPeriod) > 0.5 {
		t.Errorf("period = %v, want %v", e.PeriodS(), wantPeriod)
	}
}

func TestParseTLEErrors(t *testing.T) {
	// Length.
	if _, err := ParseTLE("", "short", issLine2); !errors.Is(err, ErrTLELineLength) {
		t.Errorf("short line: %v", err)
	}
	// Swapped lines.
	if _, err := ParseTLE("", issLine2, issLine1); !errors.Is(err, ErrTLELineNumber) {
		t.Errorf("swapped lines: %v", err)
	}
	// Corrupted checksum digit.
	bad := issLine1[:68] + "0"
	if _, err := ParseTLE("", bad, issLine2); !errors.Is(err, ErrTLEChecksum) {
		t.Errorf("bad checksum: %v", err)
	}
	// Corrupted field caught by checksum.
	bad = strings.Replace(issLine2, "51.6416", "51.9416", 1)
	if _, err := ParseTLE("", issLine1, bad); !errors.Is(err, ErrTLEChecksum) {
		t.Errorf("corrupted field: %v", err)
	}
}

func TestTLERoundTrip(t *testing.T) {
	// Every Iridium satellite exports to TLE and parses back to the same
	// orbit.
	c, err := Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range c.Satellites[:12] {
		in := FromElements(s.ID, 70000+i, s.Elements)
		l1, l2 := in.FormatTLE()
		if len(l1) != 69 || len(l2) != 69 {
			t.Fatalf("formatted lines %d/%d chars", len(l1), len(l2))
		}
		out, err := ParseTLE(s.ID, l1, l2)
		if err != nil {
			t.Fatalf("satellite %s: reparse: %v\n%s\n%s", s.ID, err, l1, l2)
		}
		eIn, eOut := in.Elements, out.Elements
		if math.Abs(eIn.SemiMajorAxisKm-eOut.SemiMajorAxisKm) > 0.01 {
			t.Errorf("%s: a %v → %v", s.ID, eIn.SemiMajorAxisKm, eOut.SemiMajorAxisKm)
		}
		if math.Abs(eIn.InclinationDeg-eOut.InclinationDeg) > 1e-4 ||
			math.Abs(eIn.RAANDeg-eOut.RAANDeg) > 1e-4 ||
			math.Abs(eIn.MeanAnomalyDeg-eOut.MeanAnomalyDeg) > 1e-4 {
			t.Errorf("%s: angles drifted", s.ID)
		}
		// Positions agree to metres over an orbit.
		for _, tt := range []float64{0, 1000, 5000} {
			d := eIn.PositionECI(tt).DistanceKm(eOut.PositionECI(tt))
			if d > 0.5 {
				t.Errorf("%s: position differs by %v km at t=%v", s.ID, d, tt)
			}
		}
		if out.CatalogNum != 70000+i {
			t.Errorf("catalog %d → %d", 70000+i, out.CatalogNum)
		}
	}
}

func TestTLEChecksumRules(t *testing.T) {
	// Digits sum, '-' counts 1, letters/spaces/periods count 0 — verified
	// against the ISS reference lines' published check digits.
	if got := tleChecksum(issLine1); got != 7 {
		t.Errorf("line 1 checksum = %d, want 7", got)
	}
	if got := tleChecksum(issLine2); got != 7 {
		t.Errorf("line 2 checksum = %d, want 7", got)
	}
}
