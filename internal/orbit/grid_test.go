package orbit

import (
	"testing"
)

// gridDegrees tallies per-satellite link counts of a wiring plan.
func gridDegrees(t *testing.T, pairs []ISLPair) map[string]int {
	t.Helper()
	deg := map[string]int{}
	seen := map[string]bool{}
	for _, p := range pairs {
		if p.A == p.B {
			t.Fatalf("self-loop %q", p.A)
		}
		k := p.A + "|" + p.B
		if p.B < p.A {
			k = p.B + "|" + p.A
		}
		if seen[k] {
			t.Fatalf("duplicate pair %q", k)
		}
		seen[k] = true
		deg[p.A]++
		deg[p.B]++
	}
	return deg
}

func TestGridISLsDeltaTorus(t *testing.T) {
	w := WalkerConfig{Name: "d", TotalSats: 40, Planes: 5, PhasingFactor: 1,
		AltitudeKm: 550, InclinationDeg: 53}
	pairs, err := w.GridISLs(w.DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	// A seam-wired Delta is a torus: 2 links per satellite ring-wise and
	// 2 plane-wise, so |E| = 2T and every degree is exactly 4.
	if want := 2 * w.TotalSats; len(pairs) != want {
		t.Fatalf("%d pairs, want %d", len(pairs), want)
	}
	deg := gridDegrees(t, pairs)
	if len(deg) != w.TotalSats {
		t.Fatalf("%d wired satellites, want %d", len(deg), w.TotalSats)
	}
	for id, d := range deg {
		if d != 4 {
			t.Fatalf("%s degree %d, want 4", id, d)
		}
	}
	// Wiring must reference exactly the IDs Build generates.
	c, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	ids := map[string]bool{}
	for _, s := range c.Satellites {
		ids[s.ID] = true
	}
	for _, p := range pairs {
		if !ids[p.A] || !ids[p.B] {
			t.Fatalf("pair %v names satellites outside the constellation", p)
		}
	}
}

func TestGridISLsStarSeamOpen(t *testing.T) {
	w := Iridium()
	pairs, err := w.GridISLs(w.DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	perPlane := w.TotalSats / w.Planes
	// Star seam open: (P-1)·S cross-plane links instead of P·S.
	if want := w.TotalSats + (w.Planes-1)*perPlane; len(pairs) != want {
		t.Fatalf("%d pairs, want %d", len(pairs), want)
	}
	deg := gridDegrees(t, pairs)
	three, four := 0, 0
	for _, d := range deg {
		switch d {
		case 3:
			three++
		case 4:
			four++
		default:
			t.Fatalf("unexpected degree %d", d)
		}
	}
	// The two seam planes run at degree 3.
	if three != 2*perPlane || four != w.TotalSats-2*perPlane {
		t.Fatalf("degree split three=%d four=%d", three, four)
	}
}

func TestGridISLsDegenerateRings(t *testing.T) {
	// Two satellites per plane: one intra-plane link, not a doubled ring.
	w := WalkerConfig{TotalSats: 6, Planes: 3, AltitudeKm: 550, InclinationDeg: 53}
	pairs, err := w.GridISLs(GridConfig{CrossSeam: true})
	if err != nil {
		t.Fatal(err)
	}
	gridDegrees(t, pairs) // fails on duplicates
	// 3 intra-plane + 3·2 cross-plane (torus over 3 planes).
	if len(pairs) != 3+6 {
		t.Fatalf("%d pairs, want 9", len(pairs))
	}
	// Two planes: the seam link would duplicate the p0↔p1 wiring.
	w2 := WalkerConfig{TotalSats: 8, Planes: 2, AltitudeKm: 550, InclinationDeg: 53}
	pairs2, err := w2.GridISLs(GridConfig{CrossSeam: true})
	if err != nil {
		t.Fatal(err)
	}
	gridDegrees(t, pairs2)
}

func TestMultiShellBuild(t *testing.T) {
	m := StarlinkGen1()
	c, pairs, err := m.Build()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1584 + 1584 + 720; c.Len() != want {
		t.Fatalf("%d satellites, want %d", c.Len(), want)
	}
	ids := map[string]bool{}
	for _, s := range c.Satellites {
		if ids[s.ID] {
			t.Fatalf("duplicate satellite ID %q across shells", s.ID)
		}
		ids[s.ID] = true
	}
	deg := gridDegrees(t, pairs)
	for id, d := range deg {
		if d > 4 {
			t.Fatalf("%s degree %d", id, d)
		}
		if !ids[id] {
			t.Fatalf("wired unknown satellite %q", id)
		}
	}
	// Duplicate shell names must be rejected: IDs would collide.
	dup := MultiShell{Name: "x", Shells: []Shell{
		{Walker: StarlinkShell()}, {Walker: StarlinkShell()},
	}}
	if _, _, err := dup.Build(); err == nil {
		t.Fatal("duplicate shell names accepted")
	}
	if _, _, err := (MultiShell{Name: "empty"}).Build(); err == nil {
		t.Fatal("empty multishell accepted")
	}
}

func TestSquareWalkerDelta(t *testing.T) {
	for _, n := range []int{1, 2, 7, 66, 500, 1000, 2000, 4000} {
		w, err := SquareWalkerDelta(n, 550, 53)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if w.TotalSats != n || n%w.Planes != 0 {
			t.Fatalf("n=%d: planes %d does not divide", n, w.Planes)
		}
		if w.Star {
			t.Fatalf("n=%d: want a Delta", n)
		}
		c, err := w.Build()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c.Len() != n {
			t.Fatalf("n=%d: built %d", n, c.Len())
		}
	}
	// 4000 should split 50×80, not 1×4000.
	w, err := SquareWalkerDelta(4000, 550, 53)
	if err != nil {
		t.Fatal(err)
	}
	if w.Planes != 50 && w.Planes != 80 {
		t.Fatalf("4000 satellites split into %d planes", w.Planes)
	}
	if _, err := SquareWalkerDelta(0, 550, 53); err == nil {
		t.Fatal("accepted zero satellites")
	}
}
