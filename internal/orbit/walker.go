package orbit

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/openspace-project/openspace/internal/geo"
)

// Satellite is one spacecraft: an identifier plus the orbit it flies.
// Higher layers (internal/core) attach ownership and hardware capabilities;
// this package cares only about where the satellite is.
type Satellite struct {
	ID       string
	Elements Elements
}

// Constellation is an ordered set of satellites sharing an epoch.
type Constellation struct {
	Name       string
	Satellites []Satellite
}

// Len returns the number of satellites.
func (c *Constellation) Len() int { return len(c.Satellites) }

// WalkerConfig describes a Walker constellation i:T/P/F — the standard
// notation for symmetric LEO constellations (inclination : total sats /
// planes / phasing factor). Iridium, the paper's reference system (§4), is a
// Walker Star; Starlink shells are Walker Deltas.
type WalkerConfig struct {
	Name           string
	TotalSats      int     // T: total number of satellites
	Planes         int     // P: number of orbital planes (must divide T)
	PhasingFactor  int     // F: inter-plane phase offset, in units of 360/T degrees
	AltitudeKm     float64 // circular orbit altitude
	InclinationDeg float64 // i
	Star           bool    // Star: planes spread over 180°; Delta: over 360°
}

// Validate reports whether the configuration is well-formed.
func (w WalkerConfig) Validate() error {
	if w.TotalSats <= 0 {
		return fmt.Errorf("orbit: walker: total satellites %d must be positive", w.TotalSats)
	}
	if w.Planes <= 0 || w.TotalSats%w.Planes != 0 {
		return fmt.Errorf("orbit: walker: planes %d must divide total %d", w.Planes, w.TotalSats)
	}
	if w.PhasingFactor < 0 || w.PhasingFactor >= w.Planes {
		return fmt.Errorf("orbit: walker: phasing factor %d outside [0,%d)", w.PhasingFactor, w.Planes)
	}
	if w.AltitudeKm <= 100 {
		return fmt.Errorf("orbit: walker: altitude %.1f km is not an orbit", w.AltitudeKm)
	}
	return nil
}

// Build generates the constellation. Satellite IDs are "<name>-p<plane>s<slot>".
//
// In a Walker Star the ascending nodes are spread across 180° so that
// ascending and descending half-orbits interleave to cover the globe — the
// geometry the paper highlights for "relative simplicity in establishing
// ISLs both on the same orbital plane and adjacent planes". A Walker Delta
// spreads nodes across the full 360°.
func (w WalkerConfig) Build() (*Constellation, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	perPlane := w.TotalSats / w.Planes
	nodeSpread := 360.0
	if w.Star {
		nodeSpread = 180.0
	}
	c := &Constellation{Name: w.resolvedName()}
	for p := 0; p < w.Planes; p++ {
		raan := nodeSpread * float64(p) / float64(w.Planes)
		for s := 0; s < perPlane; s++ {
			// In-plane spacing plus the Walker phasing offset between planes.
			ma := 360.0*float64(s)/float64(perPlane) +
				360.0*float64(w.PhasingFactor)*float64(p)/float64(w.TotalSats)
			c.Satellites = append(c.Satellites, Satellite{
				ID:       w.SatID(p, s),
				Elements: Circular(w.AltitudeKm, w.InclinationDeg, raan, ma),
			})
		}
	}
	return c, nil
}

// Iridium returns the Iridium-like Walker Star used for the paper's Figure
// 2(a): 66 satellites, 6 planes, 780 km. The paper quotes Iridium's "8.4
// degree inclinations", which is the *supplementary* description of its
// near-polar 86.4° planes; we use the standard 86.4°.
func Iridium() WalkerConfig {
	return WalkerConfig{
		Name:           "iridium",
		TotalSats:      66,
		Planes:         6,
		PhasingFactor:  2,
		AltitudeKm:     780,
		InclinationDeg: 86.4,
		Star:           true,
	}
}

// CBOReference returns the US Congressional Budget Office reference
// constellation the paper cites (§4): 72 satellites in 6 planes at 80°
// inclination, providing about 95 % global coverage.
func CBOReference() WalkerConfig {
	return WalkerConfig{
		Name:           "cbo-72",
		TotalSats:      72,
		Planes:         6,
		PhasingFactor:  1,
		AltitudeKm:     780,
		InclinationDeg: 80,
		Star:           true,
	}
}

// RandomCircular generates n satellites on independent random circular
// orbits at the given altitude — the paper's §4 method ("randomly
// distributing satellites orbital paths"), which models the uncoordinated
// launches of many independent OpenSpace providers. Inclinations are drawn
// so that orbit poles are uniform on the sphere; RAAN and phase are uniform.
// The generator is deterministic for a given rng state.
func RandomCircular(n int, altitudeKm float64, rng *rand.Rand) *Constellation {
	c := &Constellation{Name: fmt.Sprintf("random-%d", n)}
	for i := 0; i < n; i++ {
		// cos(i) uniform in [-1,1] makes the orbit normal uniform on the
		// sphere, avoiding the polar clustering of uniform-inclination
		// sampling.
		incl := degreesAcos(2*rng.Float64() - 1)
		c.Satellites = append(c.Satellites, Satellite{
			ID:       fmt.Sprintf("rand-%d", i),
			Elements: Circular(altitudeKm, incl, rng.Float64()*360, rng.Float64()*360),
		})
	}
	return c
}

func degreesAcos(x float64) float64 {
	if x > 1 {
		x = 1
	} else if x < -1 {
		x = -1
	}
	return geo.Degrees(math.Acos(x))
}
