package orbit

import (
	"fmt"
	"math"
)

// This file generates the explicit inter-satellite wiring of
// mega-constellations. Iridium-scale systems can afford the geometric
// "link every visible neighbour" rule, but at Starlink scale every
// satellite sees hundreds of others and real systems instead fly a fixed
// +Grid: four terminals per satellite, two to the in-plane neighbours
// fore and aft, two to the matching slots in the adjacent planes. The LEO
// topology-design literature (arXiv 2402.08988) studies exactly this
// family; generating it explicitly keeps snapshot construction linear in
// the fleet size.

// ISLPair names the two satellites of one planned inter-satellite link.
type ISLPair struct {
	A, B string
}

// GridConfig tunes the +Grid wiring pattern laid over a Walker shell.
type GridConfig struct {
	// CrossSeam also wires plane P-1 back to plane 0. For a Walker Delta
	// (planes spread over 360°) the seam is an ordinary plane gap and
	// wiring it closes the grid into a torus. For a Walker Star the seam
	// separates counter-rotating planes whose relative velocity defeats
	// ISL pointing, so seam links are usually omitted.
	CrossSeam bool
}

// DefaultGrid wires the seam for Deltas and leaves it open for Stars —
// the conventional choice for each family.
func (w WalkerConfig) DefaultGrid() GridConfig {
	return GridConfig{CrossSeam: !w.Star}
}

// resolvedName returns the constellation name Build will use.
func (w WalkerConfig) resolvedName() string {
	if w.Name != "" {
		return w.Name
	}
	return fmt.Sprintf("walker-%d-%d-%d", w.TotalSats, w.Planes, w.PhasingFactor)
}

// SatID returns the identifier Build assigns to the satellite in the
// given plane and slot, so wiring plans and generated fleets agree by
// construction.
func (w WalkerConfig) SatID(plane, slot int) string {
	return fmt.Sprintf("%s-p%ds%d", w.resolvedName(), plane, slot)
}

// GridISLs returns the +Grid wiring of the shell: each satellite links to
// its intra-plane neighbours fore and aft (a ring per plane) and to the
// same slot in the adjacent plane(s). Every pair appears once, ordered
// (lower plane, lower slot) first, and the list is sorted by construction
// — plane-major, slot-minor — so the plan is deterministic.
//
// Degree is exactly four on a seam-wired Delta torus; seam-adjacent
// planes of a Star drop to degree three. Planes with fewer than three
// satellites degenerate: a two-satellite ring would duplicate its single
// edge, so only the one link is emitted.
func (w WalkerConfig) GridISLs(g GridConfig) ([]ISLPair, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	perPlane := w.TotalSats / w.Planes
	pairs := make([]ISLPair, 0, 2*w.TotalSats)
	for p := 0; p < w.Planes; p++ {
		for s := 0; s < perPlane; s++ {
			// Intra-plane ring: s → s+1, with the wrap link emitted by the
			// last slot. A two-slot plane has one distinct neighbour pair.
			if next := (s + 1) % perPlane; next != s && !(perPlane == 2 && s == 1) {
				pairs = append(pairs, ISLPair{A: w.SatID(p, s), B: w.SatID(p, next)})
			}
			// Cross-plane link to the same slot one plane over. The seam
			// (last plane → plane 0) is wired only when requested.
			if p+1 < w.Planes {
				pairs = append(pairs, ISLPair{A: w.SatID(p, s), B: w.SatID(p+1, s)})
			} else if g.CrossSeam && w.Planes > 2 {
				pairs = append(pairs, ISLPair{A: w.SatID(0, s), B: w.SatID(p, s)})
			}
		}
	}
	return pairs, nil
}

// Shell is one Walker shell of a multi-shell constellation plus its
// wiring choice.
type Shell struct {
	Walker WalkerConfig
	Grid   GridConfig
}

// MultiShell composes several Walker shells into one constellation — the
// Starlink deployment shape, and the multi-shell layouts the Small-World
// constellation work (arXiv 2508.14335) builds on. ISLs stay within each
// shell: inter-shell traffic transits the ground segment, which is what
// makes shells independently launchable by independent providers.
type MultiShell struct {
	Name   string
	Shells []Shell
}

// Build generates the concatenated constellation and its combined +Grid
// wiring plan. Shell names must be distinct (they prefix satellite IDs);
// empty names are assigned "<name>-s<index>".
func (m MultiShell) Build() (*Constellation, []ISLPair, error) {
	if len(m.Shells) == 0 {
		return nil, nil, fmt.Errorf("orbit: multishell %q has no shells", m.Name)
	}
	name := m.Name
	if name == "" {
		name = fmt.Sprintf("multishell-%d", len(m.Shells))
	}
	c := &Constellation{Name: name}
	var pairs []ISLPair
	seen := make(map[string]bool, len(m.Shells))
	for i, sh := range m.Shells {
		w := sh.Walker
		if w.Name == "" {
			w.Name = fmt.Sprintf("%s-s%d", name, i)
		}
		if seen[w.Name] {
			return nil, nil, fmt.Errorf("orbit: multishell %q: duplicate shell name %q", name, w.Name)
		}
		seen[w.Name] = true
		sc, err := w.Build()
		if err != nil {
			return nil, nil, fmt.Errorf("orbit: multishell %q shell %d: %w", name, i, err)
		}
		sp, err := w.GridISLs(sh.Grid)
		if err != nil {
			return nil, nil, fmt.Errorf("orbit: multishell %q shell %d: %w", name, i, err)
		}
		c.Satellites = append(c.Satellites, sc.Satellites...)
		pairs = append(pairs, sp...)
	}
	return c, pairs, nil
}

// StarlinkShell returns the first-generation Starlink workhorse shell:
// 1584 satellites in 72 planes at 550 km and 53° inclination, a Walker
// Delta flown with +Grid laser ISLs.
func StarlinkShell() WalkerConfig {
	return WalkerConfig{
		Name:           "starlink-550",
		TotalSats:      1584,
		Planes:         72,
		PhasingFactor:  17,
		AltitudeKm:     550,
		InclinationDeg: 53,
	}
}

// StarlinkGen1 returns a three-shell Starlink-class composition: the two
// 53°-family workhorse shells plus the 70° shell that fills high
// latitudes — 3888 satellites total.
func StarlinkGen1() MultiShell {
	shells := []WalkerConfig{
		StarlinkShell(),
		{Name: "starlink-540", TotalSats: 1584, Planes: 72, PhasingFactor: 17,
			AltitudeKm: 540, InclinationDeg: 53.2},
		{Name: "starlink-570", TotalSats: 720, Planes: 36, PhasingFactor: 11,
			AltitudeKm: 570, InclinationDeg: 70},
	}
	m := MultiShell{Name: "starlink-gen1"}
	for _, w := range shells {
		m.Shells = append(m.Shells, Shell{Walker: w, Grid: w.DefaultGrid()})
	}
	return m
}

// SquareWalkerDelta sizes an as-square-as-possible Walker Delta for n
// satellites: the plane count is the divisor of n nearest √n (ties to the
// smaller), which keeps intra- and cross-plane ISL hop counts balanced.
// The phasing factor is 1 — the adjacent-plane stagger that minimises
// same-slot cross-plane distance churn. It is the sweep generator for
// scale experiments, where n varies widely and a hand-picked plane count
// per point would be noise.
func SquareWalkerDelta(n int, altitudeKm, inclinationDeg float64) (WalkerConfig, error) {
	if n <= 0 {
		return WalkerConfig{}, fmt.Errorf("orbit: square walker: %d satellites", n)
	}
	best := 1
	for p := 1; p*p <= n; p++ {
		if n%p == 0 {
			best = p
		}
	}
	// best is the largest divisor ≤ √n; its cofactor is the smallest ≥ √n.
	// Prefer the divisor closer to √n, measured multiplicatively.
	if co := n / best; float64(co)/math.Sqrt(float64(n)) < math.Sqrt(float64(n))/float64(best) {
		best = co
	}
	w := WalkerConfig{
		Name:           fmt.Sprintf("grid-%d", n),
		TotalSats:      n,
		Planes:         best,
		PhasingFactor:  minInt(1, best-1),
		AltitudeKm:     altitudeKm,
		InclinationDeg: inclinationDeg,
	}
	return w, w.Validate()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
