package orbit

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"github.com/openspace-project/openspace/internal/geo"
)

// TLE is a parsed two-line element set — the format in which the
// "radar-tracked orbital paths of satellites" the paper's routing relies on
// (§2.2) are published on the public catalogues it cites (N2YO,
// AstriaGraph). OpenSpace providers ingest each other's TLEs to compute the
// shared network topology.
type TLE struct {
	Name             string // line 0, optional
	CatalogNum       int
	IntlDesig        string
	EpochYear        int     // full year
	EpochDay         float64 // day of year with fraction
	Elements         Elements
	MeanMotionRevDay float64
}

// TLE parsing errors.
var (
	ErrTLELineLength = errors.New("orbit: tle: line must be 69 characters")
	ErrTLEChecksum   = errors.New("orbit: tle: checksum mismatch")
	ErrTLELineNumber = errors.New("orbit: tle: wrong line number")
	ErrTLEField      = errors.New("orbit: tle: malformed field")
)

// tleChecksum computes the modulo-10 checksum of the first 68 characters:
// digits count their value, '-' counts 1, everything else 0.
func tleChecksum(line string) int {
	sum := 0
	for _, c := range line[:68] {
		switch {
		case c >= '0' && c <= '9':
			sum += int(c - '0')
		case c == '-':
			sum++
		}
	}
	return sum % 10
}

// ParseTLE parses the two data lines (and an optional preceding name).
// Checksums are verified; the mean motion is converted to a semi-major
// axis via Kepler's third law.
func ParseTLE(name, line1, line2 string) (*TLE, error) {
	line1 = strings.TrimRight(line1, "\r\n")
	line2 = strings.TrimRight(line2, "\r\n")
	if len(line1) != 69 || len(line2) != 69 {
		return nil, ErrTLELineLength
	}
	if line1[0] != '1' {
		return nil, fmt.Errorf("%w: line 1 starts with %q", ErrTLELineNumber, line1[0])
	}
	if line2[0] != '2' {
		return nil, fmt.Errorf("%w: line 2 starts with %q", ErrTLELineNumber, line2[0])
	}
	for i, l := range []string{line1, line2} {
		want, err := strconv.Atoi(l[68:69])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d checksum digit", ErrTLEField, i+1)
		}
		if got := tleChecksum(l); got != want {
			return nil, fmt.Errorf("%w: line %d has %d, want %d", ErrTLEChecksum, i+1, want, got)
		}
	}
	t := &TLE{Name: strings.TrimSpace(name)}
	var err error
	if t.CatalogNum, err = atoiTrim(line1[2:7]); err != nil {
		return nil, fmt.Errorf("%w: catalog number: %v", ErrTLEField, err)
	}
	t.IntlDesig = strings.TrimSpace(line1[9:17])
	yy, err := atoiTrim(line1[18:20])
	if err != nil {
		return nil, fmt.Errorf("%w: epoch year: %v", ErrTLEField, err)
	}
	if yy < 57 { // TLE convention: 57–99 → 19xx, 00–56 → 20xx
		t.EpochYear = 2000 + yy
	} else {
		t.EpochYear = 1900 + yy
	}
	if t.EpochDay, err = parseFloatTrim(line1[20:32]); err != nil {
		return nil, fmt.Errorf("%w: epoch day: %v", ErrTLEField, err)
	}

	e := Elements{}
	if e.InclinationDeg, err = parseFloatTrim(line2[8:16]); err != nil {
		return nil, fmt.Errorf("%w: inclination: %v", ErrTLEField, err)
	}
	if e.RAANDeg, err = parseFloatTrim(line2[17:25]); err != nil {
		return nil, fmt.Errorf("%w: raan: %v", ErrTLEField, err)
	}
	// Eccentricity has an implied leading decimal point.
	eccDigits := strings.TrimSpace(line2[26:33])
	eccInt, err := strconv.ParseUint(eccDigits, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("%w: eccentricity: %v", ErrTLEField, err)
	}
	e.Eccentricity = float64(eccInt) / 1e7
	if e.ArgPerigeeDeg, err = parseFloatTrim(line2[34:42]); err != nil {
		return nil, fmt.Errorf("%w: argument of perigee: %v", ErrTLEField, err)
	}
	if e.MeanAnomalyDeg, err = parseFloatTrim(line2[43:51]); err != nil {
		return nil, fmt.Errorf("%w: mean anomaly: %v", ErrTLEField, err)
	}
	if t.MeanMotionRevDay, err = parseFloatTrim(line2[52:63]); err != nil {
		return nil, fmt.Errorf("%w: mean motion: %v", ErrTLEField, err)
	}
	if t.MeanMotionRevDay <= 0 {
		return nil, fmt.Errorf("%w: mean motion must be positive", ErrTLEField)
	}
	// n [rad/s] = rev/day · 2π / 86400 ; a = (μ/n²)^(1/3).
	n := t.MeanMotionRevDay * 2 * math.Pi / 86400
	e.SemiMajorAxisKm = math.Cbrt(geo.EarthMuKm3S2 / (n * n))
	t.Elements = e
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// FormatTLE renders the element set as a catalogue-compatible two-line
// set (drag and derivative terms zeroed — this propagator is two-body).
func (t *TLE) FormatTLE() (line1, line2 string) {
	yy := t.EpochYear % 100
	l1 := fmt.Sprintf("1 %05dU %-8s %02d%012.8f  .00000000  00000-0  00000-0 0  999",
		t.CatalogNum, t.IntlDesig, yy, t.EpochDay)
	e := t.Elements
	ecc := int(math.Round(e.Eccentricity * 1e7))
	l2 := fmt.Sprintf("2 %05d %8.4f %8.4f %07d %8.4f %8.4f %11.8f    9",
		t.CatalogNum, e.InclinationDeg, e.RAANDeg, ecc,
		e.ArgPerigeeDeg, e.MeanAnomalyDeg, t.MeanMotionRevDay)
	l1 = fmt.Sprintf("%-68.68s%d", l1, tleChecksum(fmt.Sprintf("%-68.68s0", l1)))
	l2 = fmt.Sprintf("%-68.68s%d", l2, tleChecksum(fmt.Sprintf("%-68.68s0", l2)))
	return l1, l2
}

// FromElements wraps an element set as a TLE record for export.
func FromElements(name string, catalog int, e Elements) *TLE {
	return &TLE{
		Name:             name,
		CatalogNum:       catalog,
		IntlDesig:        "00000A",
		EpochYear:        2024,
		EpochDay:         1,
		Elements:         e,
		MeanMotionRevDay: e.MeanMotionRadS() * 86400 / (2 * math.Pi),
	}
}

func atoiTrim(s string) (int, error) {
	return strconv.Atoi(strings.TrimSpace(s))
}

func parseFloatTrim(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}
