package orbit

import "math"

// SolveKepler solves Kepler's equation M = E − e·sin E for the eccentric
// anomaly E given mean anomaly M (radians) and eccentricity e in [0, 1).
// It uses Newton–Raphson iteration seeded with M (or π for high
// eccentricities, which is a better starting point there), and converges to
// 1e-12 within a handful of iterations for all practical orbits.
func SolveKepler(meanAnomaly, eccentricity float64) (float64, error) {
	if eccentricity == 0 {
		return meanAnomaly, nil
	}
	// Wrap M into [-π, π] for a well-conditioned start, remembering the
	// number of whole turns to add back at the end.
	turns := math.Round(meanAnomaly / (2 * math.Pi))
	m := meanAnomaly - turns*2*math.Pi

	e := eccentricity
	ea := m
	if e > 0.8 {
		ea = math.Pi * sign(m)
		if m == 0 {
			ea = 0
		}
	}
	const tol = 1e-12
	for i := 0; i < 50; i++ {
		f := ea - e*math.Sin(ea) - m
		fp := 1 - e*math.Cos(ea)
		d := f / fp
		ea -= d
		if math.Abs(d) < tol {
			return ea + turns*2*math.Pi, nil
		}
	}
	return ea + turns*2*math.Pi, ErrNoConvergence
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
