package campaign

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The checkpoint is a line-oriented append log. The first line binds the
// file to a campaign spec; each further line records one completed cell
// in completion order (which varies with worker scheduling — the final
// CSV re-sorts into matrix order, so checkpoint line order never leaks
// into results):
//
//	openspace-campaign v1 <tab> <name> <tab> <fingerprint> <tab> <cells>
//	ok   <tab> <cellID> <tab> <attempts> <tab> <backoffS> <tab> <metric fields>
//	fail <tab> <cellID> <tab> <attempts> <tab> <backoffS> <tab> <error>
//
// Metric fields are stored as the exact string the CSV row would carry,
// so a resumed campaign replays bytes, not re-derived floats. A record
// counts only if its newline landed: an unterminated tail means the
// process died mid-append, so resume drops it (that cell reruns) and
// truncates the file back to the last complete record before appending.
// A malformed line that does end in a newline is real corruption and
// fails the resume.
const checkpointMagic = "openspace-campaign v1"

// checkpointFile owns the append stream for one campaign run.
type checkpointFile struct {
	f *os.File
	w *bufio.Writer
}

// openCheckpoint prepares the checkpoint at path: parsing any existing
// records (resume) or refusing them (fresh run), then opening the file
// for appending, with a header when the file is new or empty.
func openCheckpoint(path string, spec Spec, resume bool) (map[string]CellResult, *checkpointFile, error) {
	done := map[string]CellResult{}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	// Only bytes up to the last newline are complete records; a torn tail
	// (killed mid-append) is dropped, and the file is truncated back to
	// the complete prefix so new records never concatenate onto it.
	valid := len(data)
	if valid > 0 && data[valid-1] != '\n' {
		valid = strings.LastIndexByte(string(data), '\n') + 1
	}
	if len(data) > 0 {
		if !resume {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s already has records; resume to continue it or remove it to start over", path)
		}
		if done, err = parseCheckpoint(string(data[:valid]), spec); err != nil {
			return nil, nil, err
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	if err := f.Truncate(int64(valid)); err == nil {
		_, err = f.Seek(int64(valid), io.SeekStart)
	}
	if err != nil {
		if cerr := f.Close(); cerr != nil {
			return nil, nil, fmt.Errorf("campaign: checkpoint: %v (and close: %w)", err, cerr)
		}
		return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
	}
	cp := &checkpointFile{f: f, w: bufio.NewWriter(f)}
	if valid == 0 {
		if _, err := fmt.Fprintf(cp.w, "%s\t%s\t%s\t%d\n",
			checkpointMagic, spec.Name, spec.Fingerprint(), len(spec.Cells())); err != nil {
			if cerr := f.Close(); cerr != nil {
				return nil, nil, fmt.Errorf("campaign: checkpoint: %v (and close: %w)", err, cerr)
			}
			return nil, nil, fmt.Errorf("campaign: checkpoint: %w", err)
		}
	}
	return done, cp, nil
}

// append records one completed cell and flushes it to the OS, so a
// record survives any later kill of the process.
func (cp *checkpointFile) append(r CellResult) error {
	status, payload := "ok", r.Fields
	if r.Failed() {
		status, payload = "fail", r.Err
	}
	if _, err := fmt.Fprintf(cp.w, "%s\t%s\t%d\t%s\t%s\n",
		status, r.Cell.ID, r.Attempts, fm(r.BackoffS), payload); err != nil {
		return err
	}
	return cp.w.Flush()
}

func (cp *checkpointFile) close() error {
	if err := cp.w.Flush(); err != nil {
		if cerr := cp.f.Close(); cerr != nil {
			return fmt.Errorf("%v (and close: %w)", err, cerr)
		}
		return err
	}
	return cp.f.Close()
}

// parseCheckpoint validates the header against the spec and returns the
// recorded outcomes keyed by cell ID.
func parseCheckpoint(data string, spec Spec) (map[string]CellResult, error) {
	lines := strings.Split(data, "\n")
	// The caller hands over only newline-terminated bytes; drop the empty
	// terminal element of the split.
	if len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return map[string]CellResult{}, nil
	}
	head := strings.Split(lines[0], "\t")
	if len(head) != 4 || head[0] != checkpointMagic {
		return nil, fmt.Errorf("campaign: checkpoint header %q is not a %s log", lines[0], checkpointMagic)
	}
	if head[1] != spec.Name || head[2] != spec.Fingerprint() {
		return nil, fmt.Errorf("campaign: checkpoint is for campaign %s (fingerprint %s), not %s (%s) — the matrix changed; remove the checkpoint to start over",
			head[1], head[2], spec.Name, spec.Fingerprint())
	}
	known := map[string]bool{}
	for _, c := range spec.Cells() {
		known[c.ID] = true
	}
	done := map[string]CellResult{}
	for _, line := range lines[1:] {
		r, err := parseRecord(line, known)
		if err != nil {
			return nil, err
		}
		done[r.Cell.ID] = r
	}
	return done, nil
}

func parseRecord(line string, known map[string]bool) (CellResult, error) {
	parts := strings.SplitN(line, "\t", 5)
	if len(parts) != 5 || (parts[0] != "ok" && parts[0] != "fail") {
		return CellResult{}, fmt.Errorf("campaign: malformed checkpoint record %q", line)
	}
	if !known[parts[1]] {
		return CellResult{}, fmt.Errorf("campaign: checkpoint records unknown cell %q", parts[1])
	}
	attempts, err := strconv.Atoi(parts[2])
	if err != nil || attempts <= 0 {
		return CellResult{}, fmt.Errorf("campaign: checkpoint record %q has bad attempt count", line)
	}
	backoffS, err := strconv.ParseFloat(parts[3], 64)
	if err != nil || backoffS < 0 {
		return CellResult{}, fmt.Errorf("campaign: checkpoint record %q has bad backoff", line)
	}
	r := CellResult{
		Cell:           Cell{ID: parts[1]},
		Attempts:       attempts,
		BackoffS:       backoffS,
		FromCheckpoint: true,
	}
	if parts[0] == "ok" {
		if parts[4] == "" {
			return CellResult{}, fmt.Errorf("campaign: checkpoint record %q has no metrics", line)
		}
		r.Fields = parts[4]
	} else {
		r.Err = parts[4]
		if r.Err == "" {
			r.Err = "unrecorded failure"
		}
	}
	return r, nil
}
