package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/routing"
)

// testSpec is a small matrix for supervisor tests: 2×2×1×2 = 8 cells.
func testSpec() Spec {
	return Spec{
		Name:           "test-campaign",
		Constellations: []string{"alpha", "beta"},
		Intensities:    []float64{0, 2.5},
		Workloads:      []string{"w"},
		Policies:       []core.Policy{core.PolicyOnDemand, core.PolicyDTN},
		DurationS:      100,
		IntervalS:      10,
		Seed:           7,
	}
}

// fakeCellFunc derives metrics purely from the cell identity, so runs
// are deterministic at any worker count without real simulations.
func fakeCellFunc(c Cell) (Metrics, error) {
	s := uint64(c.Seed)
	return Metrics{
		Availability:  float64(s%997) / 997,
		DeliveryRatio: float64(s%499) / 499,
		P50Ms:         float64(s % 200),
		P95Ms:         float64(s % 1000),
		Attempted:     int64(s % 10_000),
		Delivered:     int64(s % 9_000),
		Events:        s % 100_000,
	}, nil
}

func TestCellIDsStableAndSeedsDistinct(t *testing.T) {
	spec := testSpec()
	cells := spec.Cells()
	if len(cells) != 8 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	if cells[0].ID != "alpha~i0~w~ondemand" {
		t.Errorf("first cell ID = %q", cells[0].ID)
	}
	if cells[7].ID != "beta~i2.5~w~dtn" {
		t.Errorf("last cell ID = %q", cells[7].ID)
	}
	ids := map[string]bool{}
	seeds := map[int64]bool{}
	for _, c := range cells {
		ids[c.ID] = true
		seeds[c.Seed] = true
		if c.Seed != CellSeed(spec.Seed, c.ID) {
			t.Errorf("cell %s seed is not identity-derived", c.ID)
		}
	}
	if len(ids) != 8 || len(seeds) != 8 {
		t.Fatalf("ids/seeds not distinct: %d/%d", len(ids), len(seeds))
	}
	// Identity-keyed: the same axis combination seeds identically in a
	// different matrix (so -cell reproduces full-campaign rows).
	if CellSeed(spec.Seed, cells[3].ID) != cells[3].Seed {
		t.Error("seed changed with matrix context")
	}
	if c, ok := spec.Find("beta~i2.5~w~dtn"); !ok || c.Index != 7 {
		t.Errorf("Find = %+v, %v", c, ok)
	}
	if _, ok := spec.Find("nope"); ok {
		t.Error("Find should miss unknown IDs")
	}
}

func TestSpecValidate(t *testing.T) {
	good := testSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Constellations = []string{"with~sep"}
	if err := bad.Validate(); err == nil {
		t.Error("separator in axis value should fail")
	}
	bad = good
	bad.Workloads = []string{"has space"}
	if err := bad.Validate(); err == nil {
		t.Error("whitespace in axis value should fail")
	}
	bad = good
	bad.Policies = []core.Policy{"flooding"}
	if err := bad.Validate(); err == nil {
		t.Error("unknown policy should fail")
	}
	bad = good
	bad.Intensities = []float64{1, 1}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate axis value should fail")
	}
	bad = good
	bad.DurationS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero duration should fail")
	}
	if good.Fingerprint() == bad.Fingerprint() {
		t.Error("fingerprint must move with the spec")
	}
}

func TestSuperviseRetriesThenSucceeds(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	fn := func(c Cell) (Metrics, error) {
		mu.Lock()
		defer mu.Unlock()
		calls++
		if calls < 3 {
			return Metrics{}, fmt.Errorf("transient %d", calls)
		}
		return Metrics{Availability: 1}, nil
	}
	retry := routing.Backoff{BaseS: 2, MaxS: 100, MaxAttempts: 5}
	r := supervise(Cell{ID: "c"}, retry, fn)
	if r.Failed() {
		t.Fatalf("supervise failed: %s", r.Err)
	}
	if r.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", r.Attempts)
	}
	// Two retries at exponential backoff 2, 4 — recorded, never slept.
	if r.BackoffS != 6 {
		t.Errorf("backoffS = %v, want 6", r.BackoffS)
	}
}

func TestSuperviseNeverRetriesEventBudget(t *testing.T) {
	calls := 0
	fn := func(c Cell) (Metrics, error) {
		calls++
		return Metrics{}, fmt.Errorf("cell halted: %w", core.ErrEventBudget)
	}
	r := supervise(Cell{ID: "c"}, routing.Backoff{BaseS: 1, MaxS: 10, MaxAttempts: 5}, fn)
	if !r.Failed() || calls != 1 || r.Attempts != 1 {
		t.Errorf("budget exhaustion retried: calls=%d attempts=%d err=%q", calls, r.Attempts, r.Err)
	}
}

// TestRunGracefulDegradation is the acceptance scenario: one panicking
// cell and one timed-out cell degrade into exactly two manifest rows
// while every other cell completes.
func TestRunGracefulDegradation(t *testing.T) {
	spec := testSpec()
	cells := spec.Cells()
	panicID, budgetID := cells[1].ID, cells[5].ID
	fn := func(c Cell) (Metrics, error) {
		switch c.ID {
		case panicID:
			panic("cell exploded")
		case budgetID:
			return Metrics{}, fmt.Errorf("stopped after 10 events: %w", core.ErrEventBudget)
		}
		return fakeCellFunc(c)
	}
	cfg := DefaultConfig()
	cfg.Workers = 4
	out, err := Run(spec, cfg, fn)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete() || len(out.Cells) != len(cells) {
		t.Fatalf("campaign did not complete: %d cells, %d pending", len(out.Cells), len(out.Pending))
	}
	fails := out.Failures()
	if len(fails) != 2 {
		t.Fatalf("failures = %d, want exactly 2", len(fails))
	}
	if fails[0].Cell.ID != panicID || fails[1].Cell.ID != budgetID {
		t.Errorf("failed cells %s, %s; want %s, %s in matrix order",
			fails[0].Cell.ID, fails[1].Cell.ID, panicID, budgetID)
	}
	if !strings.Contains(fails[0].Err, "cell exploded") {
		t.Errorf("panic not in manifest row: %q", fails[0].Err)
	}
	if fails[0].Attempts != cfg.Retry.MaxAttempts+1 {
		t.Errorf("panicking cell attempts = %d, want retries exhausted (%d)",
			fails[0].Attempts, cfg.Retry.MaxAttempts+1)
	}
	if fails[1].Attempts != 1 {
		t.Errorf("budget cell attempts = %d, want 1 (no retry on deterministic timeout)", fails[1].Attempts)
	}
	var csv, manifest strings.Builder
	if err := out.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := out.WriteManifest(&manifest); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(csv.String(), "\n"); n != 1+len(cells)-2 {
		t.Errorf("CSV rows = %d, want header + %d", n, len(cells)-2)
	}
	if n := strings.Count(manifest.String(), "\n"); n != 3 {
		t.Errorf("manifest rows = %d lines, want header + 2", n)
	}
	if strings.Contains(csv.String(), panicID) {
		t.Error("failed cell leaked into the results CSV")
	}
}

func runToCSV(t *testing.T, spec Spec, cfg Config, fn CellFunc) string {
	t.Helper()
	out, err := Run(spec, cfg, fn)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := out.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestRunDeterministicAcrossWorkers(t *testing.T) {
	spec := testSpec()
	serial := runToCSV(t, spec, Config{Workers: 1}, fakeCellFunc)
	parallel := runToCSV(t, spec, Config{Workers: 8}, fakeCellFunc)
	if serial != parallel {
		t.Errorf("CSV differs across worker counts:\n%s\nvs\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "alpha~i0~w~ondemand,alpha,0,w,ondemand,1,") {
		t.Errorf("CSV missing identity columns:\n%s", serial)
	}
}

func TestCheckpointResumeByteIdentical(t *testing.T) {
	spec := testSpec()
	straight := runToCSV(t, spec, Config{Workers: 4}, fakeCellFunc)

	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.ckpt")
	out1, err := Run(spec, Config{Workers: 4, CheckpointPath: path, StopAfter: 3}, fakeCellFunc)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Complete() || len(out1.Cells) != 3 || len(out1.Pending) != 5 {
		t.Fatalf("interrupted run: %d cells, %d pending, want 3/5", len(out1.Cells), len(out1.Pending))
	}
	out2, err := Run(spec, Config{Workers: 4, CheckpointPath: path, Resume: true}, fakeCellFunc)
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Complete() {
		t.Fatalf("resume left %d cells pending", len(out2.Pending))
	}
	replayed := 0
	for _, r := range out2.Cells {
		if r.FromCheckpoint {
			replayed++
		}
	}
	if replayed != 3 {
		t.Errorf("replayed %d cells from checkpoint, want 3", replayed)
	}
	var b strings.Builder
	if err := out2.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != straight {
		t.Errorf("resumed CSV differs from straight-through:\n%s\nvs\n%s", b.String(), straight)
	}
}

func TestCheckpointSurvivesTornFinalRecord(t *testing.T) {
	spec := testSpec()
	straight := runToCSV(t, spec, Config{Workers: 1}, fakeCellFunc)

	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.ckpt")
	if _, err := Run(spec, Config{Workers: 1, CheckpointPath: path, StopAfter: 4}, fakeCellFunc); err != nil {
		t.Fatal(err)
	}
	// Tear the last record mid-line, as a kill -9 during append would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := Run(spec, Config{Workers: 1, CheckpointPath: path, Resume: true}, fakeCellFunc)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete() {
		t.Fatalf("resume after torn record left %d pending", len(out.Pending))
	}
	var b strings.Builder
	if err := out.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != straight {
		t.Error("CSV after torn-record resume differs from straight-through")
	}
}

func TestCheckpointRefusesMismatchesAndOverwrites(t *testing.T) {
	spec := testSpec()
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.ckpt")
	if _, err := Run(spec, Config{Workers: 1, CheckpointPath: path, StopAfter: 2}, fakeCellFunc); err != nil {
		t.Fatal(err)
	}
	// A fresh (non-resume) run must refuse the existing records.
	if _, err := Run(spec, Config{Workers: 1, CheckpointPath: path}, fakeCellFunc); err == nil {
		t.Error("fresh run over a non-empty checkpoint should fail")
	}
	// A changed matrix must refuse to resume.
	changed := spec
	changed.Seed = 99
	if _, err := Run(changed, Config{Workers: 1, CheckpointPath: path, Resume: true}, fakeCellFunc); err == nil {
		t.Error("resume across a changed fingerprint should fail")
	}
	// Resume with a missing file is a fresh start, not an error.
	out, err := Run(spec, Config{Workers: 1, CheckpointPath: filepath.Join(dir, "new.ckpt"), Resume: true}, fakeCellFunc)
	if err != nil || !out.Complete() {
		t.Errorf("resume-from-nothing: %v, complete=%v", err, out.Complete())
	}
}

func TestFailureRowsResumeVerbatim(t *testing.T) {
	spec := testSpec()
	failID := spec.Cells()[2].ID
	fn := func(c Cell) (Metrics, error) {
		if c.ID == failID {
			return Metrics{}, fmt.Errorf("halted: %w", core.ErrEventBudget)
		}
		return fakeCellFunc(c)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "campaign.ckpt")
	if _, err := Run(spec, Config{Workers: 1, CheckpointPath: path, StopAfter: 4}, fn); err != nil {
		t.Fatal(err)
	}
	// Resume with a CellFunc that would now succeed: the recorded
	// failure must be replayed, not re-run — resumed outputs are
	// byte-identical by construction, not by luck.
	out, err := Run(spec, Config{Workers: 1, CheckpointPath: path, Resume: true}, fakeCellFunc)
	if err != nil {
		t.Fatal(err)
	}
	fails := out.Failures()
	if len(fails) != 1 || fails[0].Cell.ID != failID || !fails[0].FromCheckpoint {
		t.Fatalf("failure row not replayed: %+v", fails)
	}
}
