package campaign

import (
	"fmt"
	"sort"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/faults"
	"github.com/openspace-project/openspace/internal/fluid"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
	"github.com/openspace-project/openspace/internal/topo"
	"github.com/openspace-project/openspace/internal/traffic"
)

// Constellation preset names.
const (
	// ConstellationIridium is the three-provider Iridium federation the
	// CLI's end-to-end modes build: 66 satellites split round-robin, one
	// gateway per provider at fixed reference sites.
	ConstellationIridium = "iridium"
	// ConstellationWalker is a single-provider 128-satellite +Grid Walker
	// Delta shell (550 km, 53°, all-laser) with gateways at the eight
	// most populous world cities.
	ConstellationWalker = "walker"
)

// Workload preset names.
const (
	// WorkloadInteractive is the per-flow path: a small terminal
	// population driving Poisson transfers through the engine one event
	// per transfer, with handover and per-flow retry modelling.
	WorkloadInteractive = "interactive"
	// WorkloadMixed is fluid mode over the standard web/video/iot mix
	// with a 200k effective population.
	WorkloadMixed = "mixed"
	// WorkloadIoT is fluid mode over a massive-IoT-dominated mix — one
	// million devices, tiny episodic uplinks, store-and-forward-tolerant
	// — the disrupted-communications study's workload.
	WorkloadIoT = "iot"
)

// Constellations lists the constellation presets in axis order.
func Constellations() []string { return []string{ConstellationIridium, ConstellationWalker} }

// Workloads lists the workload presets in axis order.
func Workloads() []string { return []string{WorkloadInteractive, WorkloadMixed, WorkloadIoT} }

// interactiveUsers is the per-flow terminal population. Small enough
// that a cell stays O(10³) events, large enough to exercise handover and
// multi-provider association.
const interactiveUsers = 24

// IoTClasses is the massive-IoT traffic mix: overwhelmingly tiny
// episodic telemetry uplinks, a sliver of firmware pushes, and a trace
// of interactive traffic from the humans minding the devices.
func IoTClasses() []fluid.Class {
	return []fluid.Class{
		{Name: "telemetry", UserShare: 0.90, RatePerUserS: 0.001, MinBytes: 128, MaxBytes: 64_000, ParetoAlpha: 1.8},
		{Name: "firmware", UserShare: 0.05, RatePerUserS: 0.00002, MinBytes: 500_000, MaxBytes: 50_000_000, ParetoAlpha: 1.4},
		{Name: "ops", UserShare: 0.05, RatePerUserS: 0.02, MinBytes: 50_000, MaxBytes: 50_000_000, ParetoAlpha: 1.3},
	}
}

// DefaultSpec is the committed E17 matrix: both constellations, a
// fault-free control plus nominal and ×4 fault intensities, all three
// workloads, all three policies — 54 cells.
func DefaultSpec() Spec {
	return Spec{
		Name:           "disruption-campaign",
		Constellations: Constellations(),
		Intensities:    []float64{0, 1, 4},
		Workloads:      Workloads(),
		Policies:       core.Policies(),
		DurationS:      1800,
		IntervalS:      60,
		Seed:           17,
		EventBudget:    5_000_000,
	}
}

// QuickSpec is the CI determinism matrix: one constellation, the control
// and ×4 intensities, the two extreme workloads, the two extreme
// policies — 8 cells, short horizon.
func QuickSpec() Spec {
	return Spec{
		Name:           "disruption-campaign",
		Constellations: []string{ConstellationIridium},
		Intensities:    []float64{0, 4},
		Workloads:      []string{WorkloadInteractive, WorkloadIoT},
		Policies:       []core.Policy{core.PolicyOnDemand, core.PolicyDTN},
		DurationS:      600,
		IntervalS:      60,
		Seed:           17,
		EventBudget:    1_000_000,
	}
}

// buildConstellation assembles the cell's federation (no users yet) and
// returns the network plus its provider IDs in round-robin order.
// Topology workers stay at 1: the campaign parallelises across cells, so
// nesting per-snapshot workers inside a cell would just thrash the pool.
func buildConstellation(preset string, seed int64) (*core.Network, []string, error) {
	switch preset {
	case ConstellationIridium:
		c, err := orbit.Iridium().Build()
		if err != nil {
			return nil, nil, err
		}
		const providers = 3
		fleets := core.SplitConstellation(c, providers, 0.3)
		sites := []geo.LatLon{
			{Lat: 47.6, Lon: -122.3}, {Lat: -1.29, Lon: 36.82}, {Lat: 51.51, Lon: -0.13},
			{Lat: -33.87, Lon: 151.21}, {Lat: 35.68, Lon: 139.69}, {Lat: -23.55, Lon: -46.63},
		}
		pcs := make([]core.ProviderConfig, providers)
		ids := make([]string, providers)
		for p := range pcs {
			ids[p] = fmt.Sprintf("prov-%d", p)
			pcs[p] = core.ProviderConfig{
				ID: ids[p], Satellites: fleets[p], CarriagePerGB: 0.2,
				GroundStations: []core.GroundStationConfig{{
					ID: fmt.Sprintf("gs-%d", p), Pos: sites[p%len(sites)],
					BackhaulBps: 10e9, PricePerGB: 0.05, VisitorSurge: 2,
				}},
			}
		}
		net, err := core.NewNetwork(core.NetworkConfig{
			Providers: pcs, Seed: seed, Topo: topo.Config{Workers: 1},
		})
		return net, ids, err

	case ConstellationWalker:
		w, err := orbit.SquareWalkerDelta(128, 550, 53)
		if err != nil {
			return nil, nil, err
		}
		c, err := w.Build()
		if err != nil {
			return nil, nil, err
		}
		pairs, err := w.GridISLs(w.DefaultGrid())
		if err != nil {
			return nil, nil, err
		}
		sats := make([]core.SatelliteConfig, c.Len())
		for i, s := range c.Satellites {
			sats[i] = core.SatelliteConfig{ID: s.ID, Elements: s.Elements, HasLaser: true}
		}
		var stations []core.GroundStationConfig
		for _, g := range topGateways(8) {
			stations = append(stations, core.GroundStationConfig{
				ID: g.ID, Pos: g.Pos, BackhaulBps: 10e9, PricePerGB: 0.05, VisitorSurge: 2,
			})
		}
		net, err := core.NewNetwork(core.NetworkConfig{
			Providers: []core.ProviderConfig{{
				ID: "walker", Satellites: sats, CarriagePerGB: 0.2, GroundStations: stations,
			}},
			Seed: seed,
			Topo: topo.Config{Workers: 1, StaticISLs: pairs},
		})
		return net, []string{"walker"}, err
	}
	return nil, nil, fmt.Errorf("campaign: unknown constellation preset %q", preset)
}

// topGateways sites gateways at the count most populous world cities —
// the same siting rule the capacity experiments use.
func topGateways(count int) []traffic.Gateway {
	cities := sim.WorldCities()
	sort.Slice(cities, func(a, b int) bool {
		if cities[a].PopM != cities[b].PopM { //lint:allow floateq exact sort tie-break keeps gateway siting deterministic
			return cities[a].PopM > cities[b].PopM
		}
		return cities[a].Name < cities[b].Name
	})
	if count > len(cities) {
		count = len(cities)
	}
	gws := make([]traffic.Gateway, count)
	for i := 0; i < count; i++ {
		gws[i] = traffic.Gateway{ID: "gw-" + cities[i].Name, Pos: cities[i].Pos}
	}
	return gws
}

// buildScenario composes the cell's scenario from its axis values via
// the core composition helpers.
func buildScenario(spec Spec, c Cell) (core.Scenario, error) {
	sc := core.Scenario{
		DurationS:         spec.DurationS,
		SnapshotIntervalS: spec.IntervalS,
		Seed:              c.Seed,
	}
	switch c.Workload {
	case WorkloadInteractive:
		sc.PerUserRate = 0.02
		sc.MinBytes = 1_000_000
		sc.MaxBytes = 500_000_000
	case WorkloadMixed:
		sc = sc.WithAggregateWorkload(200_000, nil)
	case WorkloadIoT:
		sc = sc.WithAggregateWorkload(1_000_000, IoTClasses())
	default:
		return sc, fmt.Errorf("campaign: unknown workload preset %q", c.Workload)
	}
	// The cell seed roots the fault timeline too; the faults package
	// namespaces its streams internally, so workload and fault randomness
	// stay independent.
	sc = sc.WithFaults(faults.Default(), c.Intensity, c.Seed)
	sc, err := sc.WithPolicy(c.Policy)
	if err != nil {
		return sc, err
	}
	return sc.WithEventBudget(spec.EventBudget), nil
}

// RunCell builds and runs one cell's full simulation: constellation
// preset, workload population, fault timeline, policy tuning, event
// budget. It is the production CellFunc body; the supervisor adds panic
// containment, retry, and manifest handling around it.
func RunCell(spec Spec, c Cell) (Metrics, error) {
	net, providers, err := buildConstellation(c.Constellation, c.Seed)
	if err != nil {
		return Metrics{}, err
	}
	sc, err := buildScenario(spec, c)
	if err != nil {
		return Metrics{}, err
	}
	if !sc.Aggregate.Enabled() {
		rng := exec.DomainRNG(c.Seed, domainUsers)
		for i, pos := range sim.CityUsers(interactiveUsers, 30, rng) {
			if _, err := net.AddUser(fmt.Sprintf("user-%d", i), providers[i%len(providers)], pos); err != nil {
				return Metrics{}, err
			}
		}
	}
	res, err := net.RunScenario(sc)
	if err != nil {
		return Metrics{}, err
	}
	return MetricsOf(res), nil
}

// CellRunner adapts RunCell to the supervisor's CellFunc shape.
func CellRunner(spec Spec) CellFunc {
	return func(c Cell) (Metrics, error) { return RunCell(spec, c) }
}
