package campaign

import (
	"errors"
	"strings"
	"testing"

	"github.com/openspace-project/openspace/internal/core"
)

// tinySpec is a real-simulation matrix small enough for unit tests: two
// iridium cells, short horizon.
func tinySpec() Spec {
	return Spec{
		Name:           "tiny",
		Constellations: []string{ConstellationIridium},
		Intensities:    []float64{0, 4},
		Workloads:      []string{WorkloadInteractive},
		Policies:       []core.Policy{core.PolicyOnDemand},
		DurationS:      300,
		IntervalS:      60,
		Seed:           17,
	}
}

func TestRunCellRealSimulation(t *testing.T) {
	spec := tinySpec()
	cells := spec.Cells()
	m, err := RunCell(spec, cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Attempted == 0 || m.Events == 0 {
		t.Errorf("fault-free cell produced no traffic: %+v", m)
	}
	if m.Availability != 1 {
		t.Errorf("fault-free availability = %v, want 1", m.Availability)
	}
	again, err := RunCell(spec, cells[0])
	if err != nil {
		t.Fatal(err)
	}
	if m != again {
		t.Errorf("cell re-run diverged:\n%+v\nvs\n%+v", m, again)
	}
	faulty, err := RunCell(spec, cells[1])
	if err != nil {
		t.Fatal(err)
	}
	if faulty.FaultEvents == 0 {
		t.Errorf("intensity-4 cell saw no fault events: %+v", faulty)
	}
}

func TestRunCellDeterministicAcrossWorkers(t *testing.T) {
	spec := tinySpec()
	serial := runToCSV(t, spec, Config{Workers: 1}, CellRunner(spec))
	parallel := runToCSV(t, spec, Config{Workers: 4}, CellRunner(spec))
	if serial != parallel {
		t.Errorf("real-cell CSV differs across worker counts:\n%s\nvs\n%s", serial, parallel)
	}
}

func TestRunCellEventBudgetSurfacesSentinel(t *testing.T) {
	spec := tinySpec()
	spec.EventBudget = 10
	_, err := RunCell(spec, spec.Cells()[0])
	if !errors.Is(err, core.ErrEventBudget) {
		t.Fatalf("tiny budget error = %v, want ErrEventBudget", err)
	}
}

func TestRunCellFluidWorkloads(t *testing.T) {
	spec := tinySpec()
	spec.Workloads = []string{WorkloadIoT}
	spec.Constellations = []string{ConstellationWalker}
	spec.Policies = []core.Policy{core.PolicyDTN}
	m, err := RunCell(spec, spec.Cells()[0])
	if err != nil {
		t.Fatal(err)
	}
	if m.Attempted == 0 || m.Delivered == 0 {
		t.Errorf("IoT cell on walker carried nothing: %+v", m)
	}
}

func TestDefaultAndQuickSpecsValid(t *testing.T) {
	if err := DefaultSpec().Validate(); err != nil {
		t.Errorf("DefaultSpec: %v", err)
	}
	if err := QuickSpec().Validate(); err != nil {
		t.Errorf("QuickSpec: %v", err)
	}
	if n := len(DefaultSpec().Cells()); n != 54 {
		t.Errorf("DefaultSpec cells = %d, want 54", n)
	}
	if n := len(QuickSpec().Cells()); n != 8 {
		t.Errorf("QuickSpec cells = %d, want 8", n)
	}
	// Both share name and base seed, so the cells QuickSpec covers carry
	// the same seeds as their full-matrix counterparts.
	dq, df := QuickSpec(), DefaultSpec()
	for _, c := range dq.Cells() {
		if fc, ok := df.Find(c.ID); !ok {
			t.Errorf("quick cell %s not in the default matrix", c.ID)
		} else if fc.Seed != c.Seed {
			t.Errorf("quick cell %s seed differs from default matrix", c.ID)
		}
	}
	if strings.Contains(DefaultSpec().Fingerprint(), "\t") {
		t.Error("fingerprint must be tab-free for the checkpoint header")
	}
}
