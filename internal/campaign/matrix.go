// Package campaign is the deterministic scenario-matrix runner behind
// E17 (disruption-campaign): it expands named axes — constellation
// preset × fault intensity × workload mix × routing policy — into a cell
// list with stable cell IDs and per-cell seeds, then drives one full
// simulation per cell over the internal/exec pool under a supervisor
// that contains panics, bounds retries, imposes a simulated-event
// timeout, and degrades gracefully: a failed cell becomes a
// failure-manifest row instead of aborting the campaign, and a
// checkpoint file lets an interrupted campaign resume byte-identically.
package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/exec"
)

// domainCell namespaces every cell's seed: a cell's simulation draws
// from streams rooted at DomainSeed(spec.Seed, domainCell, fnv(cellID)),
// so the cell is reproducible in isolation (-cell <id>) and independent
// of every other cell, whatever order or worker count ran it.
var domainCell = exec.Domain{Tag: "campaign/cell", ID: 130}

// domainUsers seeds per-flow user placement inside a cell, kept separate
// from the scenario's own workload stream (core/scenario, ID 2).
var domainUsers = exec.Domain{Tag: "campaign/users", ID: 131}

// axisSep joins axis values into a cell ID. Axis values must not contain
// it (Validate enforces this), so IDs parse back unambiguously.
const axisSep = "~"

// Spec is a campaign definition: the axes to cross plus the per-cell
// scenario shape. Axis values are expanded in the order listed, with the
// policy axis innermost, so cell order — and therefore row order in
// every output — is a pure function of the Spec.
type Spec struct {
	// Name labels checkpoints and output files.
	Name string
	// Constellations names constellation presets (see Constellations).
	Constellations []string
	// Intensities are fault-rate multipliers applied to faults.Default();
	// 0 disables injection for that cell (the control column).
	Intensities []float64
	// Workloads names workload presets (see Workloads).
	Workloads []string
	// Policies are the routing/recovery postures to cross.
	Policies []core.Policy
	// DurationS/IntervalS are each cell's horizon and snapshot cadence.
	DurationS, IntervalS float64
	// Seed roots every cell seed. Changing it re-randomises the whole
	// campaign; nothing else about the matrix moves.
	Seed int64
	// EventBudget bounds each cell's simulated events (0 = unlimited) —
	// the deterministic timeout the supervisor imposes.
	EventBudget uint64
}

// Cell is one point of the expanded matrix.
type Cell struct {
	// Index is the cell's position in matrix order.
	Index int
	// ID is the stable identity: axis values joined with "~". It never
	// depends on matrix position, so adding an axis value elsewhere in
	// the Spec does not re-identify existing cells.
	ID            string
	Constellation string
	Intensity     float64
	Workload      string
	Policy        core.Policy
	// Seed is the cell's root seed, derived from (Spec.Seed, ID) — see
	// domainCell.
	Seed int64
}

// CellID builds the stable identity for one axis combination:
// "<constellation>~i<intensity>~<workload>~<policy>", with the intensity
// in the shortest round-trip float format.
func CellID(constellation string, intensity float64, workload string, policy core.Policy) string {
	return constellation + axisSep + "i" + formatIntensity(intensity) +
		axisSep + workload + axisSep + string(policy)
}

func formatIntensity(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// fnv1a64 hashes a cell ID into the seed-derivation chain. Inlined
// (offset/prime from the FNV spec) so the hot identity → seed mapping
// stays a pure arithmetic function with no hash.Hash plumbing.
func fnv1a64(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// CellSeed derives a cell's root seed from the campaign seed and the
// cell's stable ID. Identity-keyed (not index-keyed) derivation is what
// makes -cell <id> reproduce exactly the row the full campaign emits.
func CellSeed(base int64, cellID string) int64 {
	return exec.DomainSeed(base, domainCell, int64(fnv1a64(cellID)))
}

// validAxisValue rejects axis strings that would corrupt cell IDs,
// checkpoint records, or CSV rows.
func validAxisValue(kind, v string) error {
	if v == "" {
		return fmt.Errorf("campaign: empty %s axis value", kind)
	}
	if strings.ContainsAny(v, axisSep+", \t\n") {
		return fmt.Errorf("campaign: %s axis value %q may not contain %q, commas or whitespace", kind, v, axisSep)
	}
	return nil
}

// Validate reports whether the spec expands to a well-formed matrix.
func (s Spec) Validate() error {
	if err := validAxisValue("name", s.Name); err != nil {
		return err
	}
	if len(s.Constellations) == 0 || len(s.Intensities) == 0 ||
		len(s.Workloads) == 0 || len(s.Policies) == 0 {
		return fmt.Errorf("campaign: every axis needs at least one value")
	}
	for _, c := range s.Constellations {
		if err := validAxisValue("constellation", c); err != nil {
			return err
		}
	}
	for _, w := range s.Workloads {
		if err := validAxisValue("workload", w); err != nil {
			return err
		}
	}
	for _, p := range s.Policies {
		if _, err := core.ParsePolicy(string(p)); err != nil {
			return err
		}
	}
	if s.DurationS <= 0 || s.IntervalS <= 0 {
		return fmt.Errorf("campaign: duration and interval must be positive")
	}
	seen := map[string]bool{}
	for _, c := range s.Cells() {
		if seen[c.ID] {
			return fmt.Errorf("campaign: duplicate cell %s (repeated axis value)", c.ID)
		}
		seen[c.ID] = true
	}
	return nil
}

// Cells expands the matrix in canonical order: constellation outermost,
// then intensity, workload, and policy innermost.
func (s Spec) Cells() []Cell {
	cells := make([]Cell, 0, len(s.Constellations)*len(s.Intensities)*len(s.Workloads)*len(s.Policies))
	for _, con := range s.Constellations {
		for _, in := range s.Intensities {
			for _, wl := range s.Workloads {
				for _, pol := range s.Policies {
					id := CellID(con, in, wl, pol)
					cells = append(cells, Cell{
						Index:         len(cells),
						ID:            id,
						Constellation: con,
						Intensity:     in,
						Workload:      wl,
						Policy:        pol,
						Seed:          CellSeed(s.Seed, id),
					})
				}
			}
		}
	}
	return cells
}

// Find returns the cell with the given ID, if the matrix contains it.
func (s Spec) Find(id string) (Cell, bool) {
	for _, c := range s.Cells() {
		if c.ID == id {
			return c, true
		}
	}
	return Cell{}, false
}

// Fingerprint is a stable hash of everything that shapes cell identities
// and results. A checkpoint written under one fingerprint refuses to
// resume a campaign with another: resuming across a changed matrix would
// silently splice incompatible rows.
func (s Spec) Fingerprint() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('\n')
	for _, c := range s.Constellations {
		b.WriteString(c)
		b.WriteByte(';')
	}
	b.WriteByte('\n')
	for _, v := range s.Intensities {
		b.WriteString(formatIntensity(v))
		b.WriteByte(';')
	}
	b.WriteByte('\n')
	for _, w := range s.Workloads {
		b.WriteString(w)
		b.WriteByte(';')
	}
	b.WriteByte('\n')
	for _, p := range s.Policies {
		b.WriteString(string(p))
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "\n%s/%s/%d/%d",
		formatIntensity(s.DurationS), formatIntensity(s.IntervalS), s.Seed, s.EventBudget)
	return fmt.Sprintf("%016x", fnv1a64(b.String()))
}
