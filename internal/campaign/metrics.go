package campaign

import (
	"fmt"
	"strings"

	"github.com/openspace-project/openspace/internal/core"
)

// Metrics is one cell's measured outcome, identical in meaning across
// the per-flow and fluid simulation paths (the residual modelling
// differences are documented in EXPERIMENTS.md §E17).
type Metrics struct {
	// Availability is 1 − abandoned/attempted: the fraction of offered
	// transfers the network eventually carried despite faults. 1 when
	// nothing was attempted.
	Availability float64
	// DeliveryRatio is delivered/attempted within the horizon — unlike
	// Availability it also counts transfers still pending at the end.
	DeliveryRatio float64
	// P50Ms/P95Ms are delivered-transfer latency quantiles in ms.
	P50Ms, P95Ms float64
	Attempted    int64
	Delivered    int64
	Retries      int64
	Abandoned    int64
	// Interrupted counts in-flight disruption events: dropped terminals
	// on the per-flow path, gateway-remap interruptions on the fluid one.
	Interrupted int64
	FaultEvents int64
	// Events is the engine's delivered-event count — what the cell spent
	// of its budget.
	Events uint64
}

// MetricFields names the metric columns, in the order fields() emits
// them; campaign CSV writers append them after the identity columns.
var MetricFields = []string{
	"availability", "delivery_ratio", "p50_ms", "p95_ms",
	"attempted", "delivered", "retries", "abandoned",
	"interrupted", "fault_events", "events",
}

// fm formats one float metric: compact, locale-free, round-trip-stable —
// the same "%.6g" every experiment CSV uses.
func fm(v float64) string { return fmt.Sprintf("%.6g", v) }

// Row renders the canonical comma-joined metric row (MetricFields
// order). The checkpoint stores this string verbatim and resume replays
// it verbatim, which is what makes an interrupted+resumed campaign
// byte-identical to a straight-through one; -cell prints it so a single
// re-run reproduces the full campaign's row exactly.
func (m Metrics) Row() string {
	return strings.Join([]string{
		fm(m.Availability), fm(m.DeliveryRatio), fm(m.P50Ms), fm(m.P95Ms),
		fmt.Sprintf("%d", m.Attempted), fmt.Sprintf("%d", m.Delivered),
		fmt.Sprintf("%d", m.Retries), fmt.Sprintf("%d", m.Abandoned),
		fmt.Sprintf("%d", m.Interrupted), fmt.Sprintf("%d", m.FaultEvents),
		fmt.Sprintf("%d", m.Events),
	}, ",")
}

// MetricsOf reduces a scenario result to the campaign's cell metrics,
// reading the latency distribution from whichever path produced it.
func MetricsOf(res *core.ScenarioResult) Metrics {
	m := Metrics{
		Attempted:     int64(res.TransfersAttempted),
		Delivered:     int64(res.TransfersDelivered),
		Retries:       int64(res.Retries),
		Abandoned:     int64(res.AbandonedTransfers),
		Interrupted:   int64(res.DroppedTerminals),
		FaultEvents:   int64(res.FaultEvents),
		Events:        res.EventsProcessed,
		Availability:  1,
		DeliveryRatio: 1,
	}
	if m.Attempted > 0 {
		m.Availability = 1 - float64(m.Abandoned)/float64(m.Attempted)
		m.DeliveryRatio = float64(m.Delivered) / float64(m.Attempted)
	}
	if res.Fluid != nil {
		m.P50Ms = res.Fluid.Latency.Quantile(0.5) * 1000
		m.P95Ms = res.Fluid.Latency.Quantile(0.95) * 1000
	} else {
		m.P50Ms = res.LatencyS.Quantile(0.5) * 1000
		m.P95Ms = res.LatencyS.Quantile(0.95) * 1000
	}
	return m
}
