package campaign

import (
	"errors"
	"fmt"
	"io"
	"strings"

	"github.com/openspace-project/openspace/internal/core"
	"github.com/openspace-project/openspace/internal/exec"
	"github.com/openspace-project/openspace/internal/routing"
)

// CellFunc runs one cell's simulation and returns its metrics. The
// supervisor wraps every invocation in panic containment, so a CellFunc
// that panics degrades into that cell's failure-manifest row rather
// than tearing down the campaign.
type CellFunc func(c Cell) (Metrics, error)

// Config shapes one campaign run.
type Config struct {
	// Workers bounds concurrent cells; ≤ 0 means one per CPU.
	Workers int
	// Retry bounds per-cell re-attempts after a failure, Backoff-style:
	// after failed attempt k the supervisor consults Retry.DelayS(k-1)
	// and retries while it allows, accumulating (never sleeping) the
	// returned delays. The zero value disables retries. Event-budget
	// exhaustion is never retried: the budget is deterministic, so a
	// re-run would exhaust identically.
	Retry routing.Backoff
	// CheckpointPath, when non-empty, streams per-cell records to this
	// file as cells complete and is what Resume reads. Empty disables
	// checkpointing.
	CheckpointPath string
	// Resume loads CheckpointPath and skips recorded cells, replaying
	// their rows verbatim — the final CSV is byte-identical to a
	// straight-through run. Without Resume, a non-empty checkpoint file
	// is an error rather than silently overwritten.
	Resume bool
	// StopAfter, when positive, runs at most this many pending cells and
	// leaves the rest for a later Resume — the deterministic stand-in
	// for an interrupted campaign (CI kills runs this way).
	StopAfter int
}

// DefaultConfig retries each failed cell twice with a short recorded
// backoff — enough to shrug off transient failures of a non-hermetic
// CellFunc without stalling on deterministic ones.
func DefaultConfig() Config {
	return Config{Retry: routing.Backoff{BaseS: 5, MaxS: 60, MaxAttempts: 2}}
}

// CellResult is one cell's outcome: a metrics row or a failure record.
type CellResult struct {
	Cell Cell
	// Attempts counts CellFunc invocations, including the successful one.
	Attempts int
	// BackoffS is the total retry delay the policy prescribed. It is
	// recorded for the manifest, never slept — campaign time is
	// simulated everywhere.
	BackoffS float64
	// Fields is the canonical comma-joined metrics row; empty on failure.
	Fields string
	// Err is the final attempt's error, sanitized to one line; empty on
	// success.
	Err string
	// FromCheckpoint marks rows replayed by Resume rather than run.
	FromCheckpoint bool
}

// Failed reports whether the cell exhausted its attempts without a row.
func (r CellResult) Failed() bool { return r.Err != "" }

// Outcome is a campaign's aggregate result. Cells holds every completed
// cell (run or replayed) in matrix order; Pending holds cells a
// StopAfter interruption left unrun.
type Outcome struct {
	Spec    Spec
	Cells   []CellResult
	Pending []Cell
}

// Complete reports whether every matrix cell has an outcome.
func (o *Outcome) Complete() bool { return len(o.Pending) == 0 }

// Failures returns the failed cells in matrix order — the failure
// manifest.
func (o *Outcome) Failures() []CellResult {
	var out []CellResult
	for _, r := range o.Cells {
		if r.Failed() {
			out = append(out, r)
		}
	}
	return out
}

// identityFields renders the columns shared by the results CSV and the
// failure manifest.
func (r CellResult) identityFields() string {
	return strings.Join([]string{
		r.Cell.ID, r.Cell.Constellation, formatIntensity(r.Cell.Intensity),
		r.Cell.Workload, string(r.Cell.Policy), fmt.Sprintf("%d", r.Attempts),
	}, ",")
}

// WriteCSV writes the successful cells' metric rows in matrix order.
// Failures are excluded (they have no metrics); WriteManifest carries
// them.
func (o *Outcome) WriteCSV(w io.Writer) error {
	header := append([]string{"cell", "constellation", "intensity", "workload", "policy", "attempts"},
		MetricFields...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, r := range o.Cells {
		if r.Failed() {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s,%s\n", r.identityFields(), r.Fields); err != nil {
			return err
		}
	}
	return nil
}

// WriteManifest writes one row per failed cell in matrix order: the
// graceful-degradation record of what did not complete and why.
func (o *Outcome) WriteManifest(w io.Writer) error {
	header := "cell,constellation,intensity,workload,policy,attempts,backoff_s,error"
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	for _, r := range o.Failures() {
		if _, err := fmt.Fprintf(w, "%s,%s,%s\n", r.identityFields(), fm(r.BackoffS), r.Err); err != nil {
			return err
		}
	}
	return nil
}

// sanitize folds an error message onto one line and out of the CSV
// metacharacters, so it survives checkpoint and manifest round-trips.
func sanitize(msg string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '\t', '\n', '\r':
			return ' '
		case ',':
			return ';'
		}
		return r
	}, msg)
}

// supervise runs one cell to its final outcome: contained attempts,
// bounded recorded backoff between them, immediate surrender on
// event-budget exhaustion (deterministic — re-running reproduces it).
func supervise(c Cell, retry routing.Backoff, fn CellFunc) CellResult {
	r := CellResult{Cell: c}
	for attempt := 0; ; attempt++ {
		// One-task MapAll reuses exec's panic containment: a panicking
		// CellFunc surfaces as this attempt's error.
		out, errs, argErr := exec.MapAll(1, 1, func(int) (Metrics, error) { return fn(c) })
		r.Attempts = attempt + 1
		if argErr != nil {
			r.Err = sanitize(argErr.Error())
			return r // unreachable: arguments are statically valid
		}
		if errs == nil {
			r.Fields = out[0].Row()
			r.Err = ""
			return r
		}
		r.Err = sanitize(errs[0].Error())
		if errors.Is(errs[0], core.ErrEventBudget) {
			return r
		}
		delay, ok := retry.DelayS(attempt)
		if !ok {
			return r
		}
		r.BackoffS += delay
	}
}

// Run executes the campaign: expand the matrix, skip checkpointed
// cells, drive the rest over the exec pool with per-cell supervision,
// and stream each outcome to the checkpoint as it lands. Failed cells
// degrade into manifest rows; Run's own error is reserved for campaign
// infrastructure — an invalid spec, or a checkpoint that cannot be
// read, trusted, or written.
func Run(spec Spec, cfg Config, fn CellFunc) (*Outcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if fn == nil {
		return nil, errors.New("campaign: nil cell function")
	}
	cells := spec.Cells()

	done := map[string]CellResult{}
	var cp *checkpointFile
	if cfg.CheckpointPath != "" {
		var err error
		done, cp, err = openCheckpoint(cfg.CheckpointPath, spec, cfg.Resume)
		if err != nil {
			return nil, err
		}
	}
	var pending []Cell
	for _, c := range cells {
		if _, ok := done[c.ID]; !ok {
			pending = append(pending, c)
		}
	}
	if cfg.StopAfter > 0 && len(pending) > cfg.StopAfter {
		pending = pending[:cfg.StopAfter]
	}

	// Checkpoint collector: cell closures report completions over the
	// channel (per-task-disjoint writes stay with the pool; the stream
	// is the sanctioned escape hatch) and one goroutine owns the file.
	// The buffer holds every possible record, so sends never block on a
	// slow disk.
	recCh := make(chan CellResult, len(pending))
	collectorErr := make(chan error, 1)
	go func() {
		var firstErr error
		for r := range recCh {
			if cp != nil && firstErr == nil {
				firstErr = cp.append(r)
			}
		}
		if cp != nil {
			if err := cp.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		collectorErr <- firstErr
	}()

	results, errs, err := exec.MapAll(cfg.Workers, len(pending), func(i int) (CellResult, error) {
		r := supervise(pending[i], cfg.Retry, fn)
		recCh <- r
		return r, nil
	})
	close(recCh)
	cpErr := <-collectorErr
	if err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e // unreachable: supervise returns outcomes, not errors
		}
	}
	if cpErr != nil {
		return nil, fmt.Errorf("campaign: checkpoint: %w", cpErr)
	}

	for _, r := range results {
		done[r.Cell.ID] = r
	}
	out := &Outcome{Spec: spec}
	for _, c := range cells {
		if r, ok := done[c.ID]; ok {
			// Checkpoint-loaded records carry only the ID; restore the
			// full axis values from the matrix.
			r.Cell = c
			out.Cells = append(out.Cells, r)
		} else {
			out.Pending = append(out.Pending, c)
		}
	}
	return out, nil
}
