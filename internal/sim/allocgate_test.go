package sim

import (
	"os"
	"testing"
)

// allocGate skips unless the zero-allocation gates are explicitly enabled
// (OPENSPACE_ALLOC_GATE=1, as CI's alloc-gate step does): AllocsPerRun
// needs a quiet heap, which ordinary parallel test runs don't provide.
func allocGate(t *testing.T) {
	t.Helper()
	if os.Getenv("OPENSPACE_ALLOC_GATE") == "" {
		t.Skip("set OPENSPACE_ALLOC_GATE=1 to run the zero-allocation gates")
	}
}

// TestAllocGateEngineStepLoop pins the //lint:hotpath contract on
// Engine.Schedule and Engine.Run: a stationary event population — eight
// events per instant, each delivery scheduling its successor one second
// later — must run with zero allocations per simulated second. The
// population never crosses a calendar resize threshold (count is pinned
// at 8 with 8 buckets and width 1), so after one rotation through the
// buckets every append lands in warmed capacity.
func TestAllocGateEngineStepLoop(t *testing.T) {
	allocGate(t)
	e := NewEngine()
	var tick func(*Engine)
	tick = func(en *Engine) {
		if err := en.After(1, tick); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		if err := e.Schedule(0, tick); err != nil {
			t.Fatal(err)
		}
	}
	until := 0.0
	step := func() {
		until++
		e.Run(until)
	}
	for i := 0; i < 20; i++ {
		step() // warm: rotate through every bucket so capacities settle
	}
	if avg := testing.AllocsPerRun(100, step); avg != 0 {
		t.Fatalf("engine step loop allocates %.2f per simulated second, want 0", avg)
	}
}
