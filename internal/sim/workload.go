package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/openspace-project/openspace/internal/geo"
)

// City is a population centre used for realistic user placement.
type City struct {
	Name string
	Pos  geo.LatLon
	// PopM is the metro population in millions, used as sampling weight.
	PopM float64
}

// WorldCities returns a fixed catalogue of major population centres across
// every continent, including the under-served regions the paper's
// motivation centres on (remote communities, the developing world).
func WorldCities() []City {
	return []City{
		{"tokyo", geo.LatLon{Lat: 35.68, Lon: 139.69}, 37.4},
		{"delhi", geo.LatLon{Lat: 28.70, Lon: 77.10}, 31.0},
		{"shanghai", geo.LatLon{Lat: 31.23, Lon: 121.47}, 27.0},
		{"sao-paulo", geo.LatLon{Lat: -23.55, Lon: -46.63}, 22.0},
		{"mexico-city", geo.LatLon{Lat: 19.43, Lon: -99.13}, 21.8},
		{"cairo", geo.LatLon{Lat: 30.04, Lon: 31.24}, 21.3},
		{"dhaka", geo.LatLon{Lat: 23.81, Lon: 90.41}, 21.0},
		{"kinshasa", geo.LatLon{Lat: -4.44, Lon: 15.27}, 14.9},
		{"lagos", geo.LatLon{Lat: 6.52, Lon: 3.38}, 14.8},
		{"istanbul", geo.LatLon{Lat: 41.01, Lon: 28.98}, 15.2},
		{"karachi", geo.LatLon{Lat: 24.86, Lon: 67.01}, 16.1},
		{"moscow", geo.LatLon{Lat: 55.76, Lon: 37.62}, 12.5},
		{"new-york", geo.LatLon{Lat: 40.71, Lon: -74.01}, 18.8},
		{"london", geo.LatLon{Lat: 51.51, Lon: -0.13}, 9.4},
		{"nairobi", geo.LatLon{Lat: -1.29, Lon: 36.82}, 4.9},
		{"sydney", geo.LatLon{Lat: -33.87, Lon: 151.21}, 5.3},
		{"anchorage", geo.LatLon{Lat: 61.22, Lon: -149.90}, 0.4},
		{"reykjavik", geo.LatLon{Lat: 64.15, Lon: -21.94}, 0.2},
		{"ushuaia", geo.LatLon{Lat: -54.80, Lon: -68.30}, 0.1},
		{"longyearbyen", geo.LatLon{Lat: 78.22, Lon: 15.64}, 0.01},
	}
}

// UniformUsers samples n user positions uniformly over the sphere.
func UniformUsers(n int, rng *rand.Rand) []geo.LatLon {
	out := make([]geo.LatLon, n)
	for i := range out {
		// Uniform on the sphere: lon uniform, sin(lat) uniform.
		out[i] = geo.LatLon{
			Lat: geo.Degrees(math.Asin(2*rng.Float64() - 1)),
			Lon: rng.Float64()*360 - 180,
		}
	}
	return out
}

// CityUsers samples n user positions from the city catalogue with
// population weighting and a local scatter radius (users are near, not in,
// the city centre).
func CityUsers(n int, scatterKm float64, rng *rand.Rand) []geo.LatLon {
	cities := WorldCities()
	// Cumulative weights.
	cum := make([]float64, len(cities))
	var total float64
	for i, c := range cities {
		total += c.PopM
		cum[i] = total
	}
	out := make([]geo.LatLon, n)
	for i := range out {
		r := rng.Float64() * total
		idx := sort.SearchFloat64s(cum, r)
		if idx >= len(cities) {
			idx = len(cities) - 1
		}
		c := cities[idx]
		out[i] = scatter(c.Pos, scatterKm, rng)
	}
	return out
}

// HotspotUsers clusters n users around one point — a disaster zone or an
// unserved remote region, the deployments the paper's introduction
// motivates.
func HotspotUsers(center geo.LatLon, spreadKm float64, n int, rng *rand.Rand) []geo.LatLon {
	out := make([]geo.LatLon, n)
	for i := range out {
		out[i] = scatter(center, spreadKm, rng)
	}
	return out
}

// scatter displaces p by a uniform-in-disk offset of radius radiusKm.
func scatter(p geo.LatLon, radiusKm float64, rng *rand.Rand) geo.LatLon {
	if radiusKm <= 0 {
		return p
	}
	d := radiusKm * math.Sqrt(rng.Float64())
	brg := rng.Float64() * 360
	return geo.Destination(p, brg, d)
}

// PoissonArrivals returns event times of a Poisson process with the given
// rate (events/s) over [0, durationS), via exponential inter-arrivals.
func PoissonArrivals(rate, durationS float64, rng *rand.Rand) ([]float64, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("sim: rate %.3f must be positive", rate)
	}
	if durationS < 0 {
		return nil, fmt.Errorf("sim: duration %.3f must be non-negative", durationS)
	}
	var times []float64
	t := rng.ExpFloat64() / rate
	for t < durationS {
		times = append(times, t)
		t += rng.ExpFloat64() / rate
	}
	return times, nil
}

// FlowSizeBytes draws a flow size from a bounded Pareto distribution
// (heavy-tailed, like Internet flows): minimum minB, shape alpha, capped at
// maxB.
func FlowSizeBytes(minB, maxB int64, alpha float64, rng *rand.Rand) int64 {
	if minB <= 0 || maxB < minB || alpha <= 0 {
		return minB
	}
	u := rng.Float64()
	if u == 0 {
		u = 1e-12
	}
	v := float64(minB) / math.Pow(u, 1/alpha)
	if v > float64(maxB) {
		return maxB
	}
	return int64(v)
}
