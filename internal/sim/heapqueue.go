package sim

// eventHeap is the engine's original binary-heap event queue, retained as
// the reference implementation: the calendar queue (calqueue.go) must
// dequeue in exactly this heap's (atS, seq) order, and the property tests
// in calqueue_test.go replay random schedules through both structures and
// require identical sequences. It is not used by the engine itself.

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].atS != h[j].atS { //lint:allow floateq exact heap tie broken by seq keeps event order deterministic
		return h[i].atS < h[j].atS
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
