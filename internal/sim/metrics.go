package sim

import (
	"fmt"
	"math"
	"sort"
)

// Histogram accumulates float64 samples and answers summary queries.
// The zero value is ready to use. Not safe for concurrent use (the engine
// is single-threaded).
//
// Zero-count contract: with no samples, Mean, Min, Max, Quantile and
// Stddev all return exactly 0 — never NaN or an implicit 0/0 — so an
// empty accumulator (an idle traffic class, a dark constellation cell)
// serializes as zeros in CSVs rather than poisoning them. Sketch honours
// the same contract. Callers that must distinguish "no samples" from
// "samples of value 0" check Count.
type Histogram struct {
	samples []float64
	sorted  bool
}

// Add records a sample.
func (h *Histogram) Add(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Min returns the smallest sample, or 0 with none.
func (h *Histogram) Min() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample, or 0 with none.
func (h *Histogram) Max() float64 {
	h.ensureSorted()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank, or 0 with no
// samples.
func (h *Histogram) Quantile(q float64) float64 {
	h.ensureSorted()
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[n-1]
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// Samples returns a sorted copy of the recorded samples. Aggregators need
// the raw values: quantiles of a merged distribution cannot be rebuilt from
// per-histogram summary statistics.
func (h *Histogram) Samples() []float64 {
	h.ensureSorted()
	out := make([]float64, len(h.samples))
	copy(out, h.samples)
	return out
}

// Stddev returns the population standard deviation, or 0 with <2 samples.
func (h *Histogram) Stddev() float64 {
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	m := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// String implements fmt.Stringer.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.4g p50=%.4g p95=%.4g max=%.4g}",
		h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.95), h.Max())
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Series is an ordered (x, y) sequence — one experiment curve, e.g.
// latency vs. number of satellites for Figure 2(b).
type Series struct {
	Name   string
	Points []Point
}

// Point is one (x, y) sample, with optional error bar.
type Point struct {
	X, Y float64
	YErr float64
}

// Append adds a point.
func (s *Series) Append(x, y, yerr float64) {
	s.Points = append(s.Points, Point{X: x, Y: y, YErr: yerr})
}
