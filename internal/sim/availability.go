package sim

// FlowAvailability accumulates one flow's outage history: how often it was
// interrupted, how long it was down, and how quickly each interruption was
// repaired. It is the per-flow ledger behind the availability experiment
// (E15): the fault layer calls Down when the flow's active path breaks and
// Up when recovery (fast reroute or recompute) restores service.
//
// The zero value is ready to use and starts in the up state. Not safe for
// concurrent use (the engine is single-threaded).
type FlowAvailability struct {
	// Interruptions counts transitions from up to down.
	Interruptions int
	// Reroutes counts interruptions repaired by switching to a precomputed
	// backup path (fast reroute), as opposed to a full route recompute.
	Reroutes int
	// DowntimeS is the total time spent down.
	DowntimeS float64
	// RecoveryS holds one time-to-recover sample per completed outage —
	// the reroute latency the availability experiment reports.
	RecoveryS Histogram

	down   bool
	downAt float64
}

// IsDown reports whether the flow is currently interrupted.
func (f *FlowAvailability) IsDown() bool { return f.down }

// Down marks the flow interrupted at time t. A flow already down stays in
// its original outage (overlapping faults extend, not restart, it).
func (f *FlowAvailability) Down(t float64) {
	if f.down {
		return
	}
	f.down = true
	f.downAt = t
	f.Interruptions++
}

// Up marks the flow restored at time t, accumulating the outage into
// DowntimeS and RecoveryS. viaBackup records whether a precomputed backup
// path (fast reroute) carried the recovery.
func (f *FlowAvailability) Up(t float64, viaBackup bool) {
	if !f.down {
		return
	}
	f.down = false
	d := t - f.downAt
	if d < 0 {
		d = 0
	}
	f.DowntimeS += d
	f.RecoveryS.Add(d)
	if viaBackup {
		f.Reroutes++
	}
}

// Finish closes the observation window at time t: a flow still down has its
// open outage charged to DowntimeS (with no recovery sample — it never
// recovered). Call once, at the end of the run.
func (f *FlowAvailability) Finish(t float64) {
	if !f.down {
		return
	}
	d := t - f.downAt
	if d > 0 {
		f.DowntimeS += d
	}
	f.downAt = t
}

// Availability returns the up fraction of an observation window of the
// given length, clamped to [0, 1]; 0 with a non-positive window.
func (f *FlowAvailability) Availability(horizonS float64) float64 {
	if horizonS <= 0 {
		return 0
	}
	a := 1 - f.DowntimeS/horizonS
	if a < 0 {
		return 0
	}
	if a > 1 {
		return 1
	}
	return a
}
