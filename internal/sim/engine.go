// Package sim provides the discrete-event simulation substrate for
// OpenSpace experiments: a deterministic event engine, metric accumulators
// (histograms/percentiles and bounded-memory sketches), and the workload
// generators that stand in for the user populations and traffic patterns
// the paper's §5(1) notes would require "extensive simulation tools not
// explored in this paper".
package sim

import (
	"errors"
	"fmt"
)

// Event is a scheduled callback.
type event struct {
	atS float64
	seq uint64 // FIFO tie-break for equal times → determinism
	fn  func(*Engine)
}

// Engine is a single-threaded discrete-event simulator. Events scheduled
// for the same instant run in scheduling order, so simulations are fully
// deterministic. The queue is a calendar queue — O(1) amortized schedule
// and dispatch — whose dequeue order is byte-identical to the binary heap
// it replaced (see calqueue.go for the contract and its property tests).
type Engine struct {
	now     float64
	seq     uint64
	events  calQueue
	stopped bool
	// Processed counts delivered events, for loop-guard assertions.
	Processed uint64
	// MaxEvents, when non-zero, is the simulated-event budget: Run
	// refuses to deliver more than this many events over the engine's
	// lifetime. The budget is the deterministic, wall-clock-free analogue
	// of a timeout — it depends only on the event sequence, never on host
	// speed or scheduling, so a run that exhausts it does so identically
	// on every machine and at every worker count. Exhausted reports
	// whether Run stopped on it.
	MaxEvents uint64
}

// NewEngine returns an engine at time zero.
func NewEngine() *Engine { return &Engine{events: newCalQueue()} }

// Now returns the current simulation time in seconds.
func (e *Engine) Now() float64 { return e.now }

// errNilEvent is hoisted to a sentinel so the hot Schedule path carries
// no per-call error construction.
var errNilEvent = errors.New("sim: nil event function")

// Schedule enqueues fn at absolute time atS. Scheduling in the past is an
// error — it would silently reorder causality.
//
//lint:hotpath
func (e *Engine) Schedule(atS float64, fn func(*Engine)) error {
	if fn == nil {
		return errNilEvent
	}
	if atS < e.now {
		//lint:allow hotalloc cold causality-violation path, never taken in steady state
		return fmt.Errorf("sim: schedule at %.3f is before now %.3f", atS, e.now)
	}
	e.events.push(event{atS: atS, seq: e.seq, fn: fn})
	e.seq++
	return nil
}

// After enqueues fn delayS seconds from now.
func (e *Engine) After(delayS float64, fn func(*Engine)) error {
	if delayS < 0 {
		return fmt.Errorf("sim: negative delay %.3f", delayS)
	}
	return e.Schedule(e.now+delayS, fn)
}

// Stop halts Run after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue empties, Stop is
// called, the clock passes untilS (events after untilS stay queued and
// the clock is left at untilS), or the MaxEvents budget is exhausted (the
// clock is left at the last delivered event). The step loop itself
// allocates nothing; what the event callbacks allocate is their own
// business.
//
//lint:hotpath
func (e *Engine) Run(untilS float64) {
	e.stopped = false
	for e.events.Len() > 0 && !e.stopped {
		if e.MaxEvents > 0 && e.Processed >= e.MaxEvents {
			return
		}
		next, _ := e.events.peek()
		if next.atS > untilS {
			e.now = untilS
			return
		}
		e.events.pop()
		e.now = next.atS
		e.Processed++
		next.fn(e)
	}
	if !e.stopped && e.now < untilS {
		e.now = untilS
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.events.Len() }

// Exhausted reports whether the engine has spent its MaxEvents budget —
// the signal that a Run stopped on the simulated-event timeout rather
// than draining its queue or reaching the horizon.
func (e *Engine) Exhausted() bool { return e.MaxEvents > 0 && e.Processed >= e.MaxEvents }
