package sim

import (
	"fmt"
	"math"
	"sort"
)

// Sketch is a bounded-memory streaming quantile estimator: a log-bucketed
// histogram in the DDSketch family. Values land in geometric buckets
// (growth factor γ = (1+α)/(1−α) for relative accuracy α), so any
// quantile is answered to within relative error α from a bucket count
// that depends only on the value range — never on the sample count.
// Histogram retains every sample exactly; Sketch is what fluid-mode runs
// with 10⁷ effective transfers use instead, at a few hundred buckets.
//
// AddN records a whole weighted batch in O(1), which is how the fluid
// subsystem de-aggregates a class's analytic latency distribution without
// materializing per-transfer samples.
//
// Zero-count contract (same as Histogram): with no recorded weight,
// Count, Sum, Mean, Min, Max and Quantile all return 0 — never NaN — so
// empty traffic classes serialize as zeros in CSVs.
//
// Determinism: bucket counts live in a map, but every query iterates
// buckets in sorted index order, so results are independent of map
// iteration order. Not safe for concurrent use.
type Sketch struct {
	gamma    float64
	logGamma float64
	counts   map[int]uint64
	zero     uint64 // weight of values ≤ 0 (reported as exactly 0)
	total    uint64
	sum      float64
	min, max float64
}

// NewSketch returns a sketch with the given relative accuracy α in
// (0, 1); 0.01 means quantiles within 1 % of the true value.
func NewSketch(alpha float64) (*Sketch, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("sim: sketch accuracy %.3g outside (0,1)", alpha)
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{gamma: gamma, logGamma: math.Log(gamma), counts: make(map[int]uint64)}, nil
}

// DefaultSketch returns a 1 %-accuracy sketch.
func DefaultSketch() *Sketch {
	s, err := NewSketch(0.01)
	if err != nil {
		panic(err) // unreachable: 0.01 is in range
	}
	return s
}

// Add records one sample.
func (s *Sketch) Add(v float64) { s.AddN(v, 1) }

// AddN records n samples of value v in O(1). NaN values are ignored;
// values ≤ 0 are counted but reported as exactly 0 (latencies and byte
// counts are non-negative).
func (s *Sketch) AddN(v float64, n uint64) {
	if n == 0 || math.IsNaN(v) {
		return
	}
	if s.total == 0 || v < s.min {
		s.min = v
	}
	if s.total == 0 || v > s.max {
		s.max = v
	}
	s.total += n
	s.sum += v * float64(n)
	if v <= 0 {
		s.zero += n
		return
	}
	//lint:allow hotalloc bucket set is bounded at O(log value-range); inserts vanish once the buckets exist
	s.counts[s.bucket(v)] += n
}

// bucket maps a positive value to its geometric bucket index.
func (s *Sketch) bucket(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logGamma))
}

// value returns the representative value of a bucket: the geometric
// midpoint 2γⁱ/(γ+1), within relative error α of everything in the bucket.
func (s *Sketch) value(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Count returns the total recorded weight.
func (s *Sketch) Count() uint64 { return s.total }

// Buckets returns the number of occupied buckets — the memory footprint.
func (s *Sketch) Buckets() int { return len(s.counts) }

// Sum returns the exact sum of recorded values, 0 with no samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Mean returns the exact arithmetic mean, 0 with no samples.
func (s *Sketch) Mean() float64 {
	if s.total == 0 {
		return 0
	}
	return s.sum / float64(s.total)
}

// Min returns the smallest recorded value (exact), 0 with no samples.
func (s *Sketch) Min() float64 {
	if s.total == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest recorded value (exact), 0 with no samples.
func (s *Sketch) Max() float64 {
	if s.total == 0 {
		return 0
	}
	return s.max
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest rank over bucket
// representatives, matching Histogram.Quantile's rank convention; 0 with
// no samples.
func (s *Sketch) Quantile(q float64) float64 {
	if s.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.total)))
	if rank == 0 {
		rank = 1
	}
	if rank <= s.zero {
		return 0
	}
	idxs := make([]int, 0, len(s.counts))
	for i := range s.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	cum := s.zero
	for _, i := range idxs {
		cum += s.counts[i]
		if cum >= rank {
			return s.value(i)
		}
	}
	return s.max // float slack: the last occupied bucket answers
}

// Merge folds o into s. The two sketches must share the same accuracy.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.total == 0 {
		return nil
	}
	if s.gamma != o.gamma { //lint:allow floateq sketches are mergeable only at the identical accuracy they were built with
		return fmt.Errorf("sim: merging sketches with different accuracy (γ %.6g vs %.6g)", s.gamma, o.gamma)
	}
	if s.total == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.total == 0 || o.max > s.max {
		s.max = o.max
	}
	s.total += o.total
	s.sum += o.sum
	s.zero += o.zero
	for i, n := range o.counts {
		s.counts[i] += n
	}
	return nil
}

// String implements fmt.Stringer.
func (s *Sketch) String() string {
	return fmt.Sprintf("sketch{n=%d mean=%.4g p50=%.4g p95=%.4g max=%.4g buckets=%d}",
		s.Count(), s.Mean(), s.Quantile(0.5), s.Quantile(0.95), s.Max(), s.Buckets())
}
