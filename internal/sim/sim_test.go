package sim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
)

func TestEngineOrdersEvents(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func(*Engine) { order = append(order, 3) })
	e.Schedule(1, func(*Engine) { order = append(order, 1) })
	e.Schedule(2, func(*Engine) { order = append(order, 2) })
	e.Run(10)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if e.Now() != 10 {
		t.Errorf("clock = %v, want advanced to horizon", e.Now())
	}
	if e.Processed != 3 {
		t.Errorf("processed = %d", e.Processed)
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func(*Engine) { order = append(order, i) })
	}
	e.Run(10)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestEngineCascading(t *testing.T) {
	// Events scheduling further events.
	e := NewEngine()
	count := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		count++
		if count < 5 {
			en.After(1, tick)
		}
	}
	e.After(1, tick)
	e.Run(100)
	if count != 5 {
		t.Errorf("cascade count = %d", count)
	}
	if e.Now() != 100 {
		t.Errorf("now = %v", e.Now())
	}
}

func TestEngineHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	ran := false
	e.Schedule(50, func(*Engine) { ran = true })
	e.Run(10)
	if ran {
		t.Error("event past horizon ran")
	}
	if e.Now() != 10 || e.Pending() != 1 {
		t.Errorf("now=%v pending=%d", e.Now(), e.Pending())
	}
	// Resume picks it up.
	e.Run(100)
	if !ran {
		t.Error("event not delivered on resume")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func(en *Engine) { count++; en.Stop() })
	e.Schedule(2, func(*Engine) { count++ })
	e.Run(10)
	if count != 1 {
		t.Errorf("Stop did not halt: %d", count)
	}
}

func TestEngineEventBudget(t *testing.T) {
	e := NewEngine()
	e.MaxEvents = 3
	count := 0
	var tick func(*Engine)
	tick = func(en *Engine) {
		count++
		en.After(1, tick)
	}
	e.After(1, tick)
	e.Run(100)
	if count != 3 {
		t.Errorf("budgeted run delivered %d events, want 3", count)
	}
	if !e.Exhausted() {
		t.Error("Exhausted() = false after budget spent")
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want left at last delivered event", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want the undelivered event still queued", e.Pending())
	}
	// Raising the budget resumes exactly where the run stopped.
	e.MaxEvents = 5
	e.Run(100)
	if count != 5 || !e.Exhausted() {
		t.Errorf("resumed run delivered %d events (exhausted=%v), want 5/true", count, e.Exhausted())
	}
}

func TestEngineZeroBudgetUnlimited(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 50; i++ {
		e.Schedule(float64(i), func(*Engine) {})
	}
	e.Run(100)
	if e.Processed != 50 {
		t.Errorf("processed = %d, want all 50 with zero budget", e.Processed)
	}
	if e.Exhausted() {
		t.Error("Exhausted() = true with zero budget")
	}
}

func TestScheduleValidation(t *testing.T) {
	e := NewEngine()
	if err := e.Schedule(1, nil); err == nil {
		t.Error("nil fn should fail")
	}
	e.Schedule(5, func(*Engine) {})
	e.Run(10)
	if err := e.Schedule(3, func(*Engine) {}); err == nil {
		t.Error("scheduling in the past should fail")
	}
	if err := e.After(-1, func(*Engine) {}); err == nil {
		t.Error("negative delay should fail")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should zero out")
	}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Add(v)
	}
	if h.Count() != 5 || h.Mean() != 3 || h.Min() != 1 || h.Max() != 5 {
		t.Errorf("stats wrong: %v", &h)
	}
	if h.Quantile(0.5) != 3 {
		t.Errorf("median = %v", h.Quantile(0.5))
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 5 {
		t.Errorf("extreme quantiles: %v %v", h.Quantile(0), h.Quantile(1))
	}
	// Stddev of 1..5 is sqrt(2).
	if math.Abs(h.Stddev()-math.Sqrt2) > 1e-12 {
		t.Errorf("stddev = %v", h.Stddev())
	}
	// Adding after querying re-sorts correctly.
	h.Add(0)
	if h.Min() != 0 {
		t.Errorf("min after late add = %v", h.Min())
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(1, 10, 0.5)
	s.Append(2, 20, 1.0)
	if len(s.Points) != 2 || s.Points[1].Y != 20 || s.Points[0].YErr != 0.5 {
		t.Errorf("series = %+v", s)
	}
}

func TestUniformUsersValidAndSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	us := UniformUsers(2000, rng)
	if len(us) != 2000 {
		t.Fatal("count wrong")
	}
	north := 0
	for _, u := range us {
		if !u.Valid() {
			t.Fatalf("invalid user %v", u)
		}
		if u.Lat > 0 {
			north++
		}
	}
	if north < 900 || north > 1100 {
		t.Errorf("northern users %d of 2000; not uniform", north)
	}
}

func TestCityUsersNearCities(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	us := CityUsers(500, 50, rng)
	cities := WorldCities()
	for _, u := range us {
		if !u.Valid() {
			t.Fatalf("invalid user %v", u)
		}
		nearest := math.Inf(1)
		for _, c := range cities {
			if d := geoDist(u, c.Pos); d < nearest {
				nearest = d
			}
		}
		if nearest > 51 {
			t.Fatalf("user %v is %v km from any city", u, nearest)
		}
	}
	// Population weighting: Tokyo (37.4M) should receive far more users
	// than Longyearbyen (0.01M).
	tokyo, lyb := 0, 0
	for _, u := range us {
		if geoDist(u, cities[0].Pos) < 51 {
			tokyo++
		}
		if geoDist(u, cities[len(cities)-1].Pos) < 51 {
			lyb++
		}
	}
	if tokyo <= lyb {
		t.Errorf("tokyo %d vs longyearbyen %d users; weighting broken", tokyo, lyb)
	}
}

func TestHotspotUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	center := WorldCities()[14].Pos // nairobi
	us := HotspotUsers(center, 100, 200, rng)
	for _, u := range us {
		if d := geoDist(u, center); d > 101 {
			t.Fatalf("hotspot user %v km away", d)
		}
	}
	// Zero spread puts everyone at the centre.
	exact := HotspotUsers(center, 0, 3, rng)
	for _, u := range exact {
		if u != center {
			t.Fatal("zero spread should not scatter")
		}
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	times, err := PoissonArrivals(10, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Rate 10/s over 1000 s → ~10000 events ±5%.
	if len(times) < 9000 || len(times) > 11000 {
		t.Errorf("got %d events, want ~10000", len(times))
	}
	prev := -1.0
	for _, tt := range times {
		if tt <= prev || tt < 0 || tt >= 1000 {
			t.Fatal("arrivals not increasing within range")
		}
		prev = tt
	}
	if _, err := PoissonArrivals(0, 10, rng); err == nil {
		t.Error("zero rate should fail")
	}
	if _, err := PoissonArrivals(1, -1, rng); err == nil {
		t.Error("negative duration should fail")
	}
}

func TestFlowSizeBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var minSeen, maxSeen int64 = 1 << 62, 0
	for i := 0; i < 10000; i++ {
		v := FlowSizeBytes(1000, 1e9, 1.2, rng)
		if v < 1000 || v > 1e9 {
			t.Fatalf("flow size %d out of bounds", v)
		}
		if v < minSeen {
			minSeen = v
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	if maxSeen < 100*minSeen {
		t.Errorf("distribution not heavy-tailed: min %d max %d", minSeen, maxSeen)
	}
	// Degenerate parameters fall back to the minimum.
	if FlowSizeBytes(0, 10, 1, rng) != 0 {
		t.Error("degenerate min should return min")
	}
	if FlowSizeBytes(10, 5, 1, rng) != 10 {
		t.Error("max<min should return min")
	}
}

func TestFlowSizeBytesEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	// min == max collapses the distribution to a point.
	for i := 0; i < 100; i++ {
		if v := FlowSizeBytes(4096, 4096, 1.2, rng); v != 4096 {
			t.Fatalf("min==max drew %d, want 4096", v)
		}
	}
	// Alpha near zero makes the tail so heavy nearly every draw clamps to
	// the maximum, but never beyond it.
	atMax := 0
	for i := 0; i < 1000; i++ {
		v := FlowSizeBytes(1000, 1e6, 1e-9, rng)
		if v < 1000 || v > 1e6 {
			t.Fatalf("alpha→0 drew %d, out of [1000, 1e6]", v)
		}
		if v == 1e6 {
			atMax++
		}
	}
	if atMax < 990 {
		t.Errorf("alpha→0 clamped to max only %d/1000 times", atMax)
	}
	// Non-positive alpha is degenerate: the minimum, not a panic.
	if v := FlowSizeBytes(1000, 1e6, 0, rng); v != 1000 {
		t.Errorf("alpha=0 drew %d, want min", v)
	}
	if v := FlowSizeBytes(1000, 1e6, -1, rng); v != 1000 {
		t.Errorf("alpha<0 drew %d, want min", v)
	}
}

func TestPoissonArrivalsEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Zero duration is a valid empty window.
	times, err := PoissonArrivals(5, 0, rng)
	if err != nil {
		t.Fatalf("zero duration: %v", err)
	}
	if len(times) != 0 {
		t.Errorf("zero duration produced %d arrivals", len(times))
	}
	if _, err := PoissonArrivals(-2, 10, rng); err == nil {
		t.Error("negative rate should fail")
	}
	// A tiny rate over a short window usually yields no arrivals — and
	// must never error.
	for i := 0; i < 20; i++ {
		if _, err := PoissonArrivals(1e-9, 1, rng); err != nil {
			t.Fatalf("tiny rate errored: %v", err)
		}
	}
}

func geoDist(a, b geo.LatLon) float64 { return geo.SurfaceDistanceKm(a, b) }
