package sim

import (
	"math"
	"testing"
)

func TestFlowAvailabilityLifecycle(t *testing.T) {
	var f FlowAvailability
	if f.IsDown() {
		t.Fatal("zero value must start up")
	}
	f.Down(10)
	if !f.IsDown() || f.Interruptions != 1 {
		t.Fatalf("after Down: down=%v interruptions=%d", f.IsDown(), f.Interruptions)
	}
	// Overlapping faults extend the same outage.
	f.Down(12)
	if f.Interruptions != 1 {
		t.Errorf("overlapping Down counted a new interruption: %d", f.Interruptions)
	}
	f.Up(13, true)
	if f.IsDown() || f.DowntimeS != 3 || f.Reroutes != 1 {
		t.Errorf("after Up: down=%v downtime=%v reroutes=%d", f.IsDown(), f.DowntimeS, f.Reroutes)
	}
	if f.RecoveryS.Count() != 1 || f.RecoveryS.Mean() != 3 {
		t.Errorf("recovery samples = %v", f.RecoveryS)
	}
	// Up when already up is a no-op.
	f.Up(20, false)
	if f.DowntimeS != 3 || f.RecoveryS.Count() != 1 {
		t.Error("Up while up changed the ledger")
	}
	// Second outage, recovered by recompute (not a reroute).
	f.Down(50)
	f.Up(52, false)
	if f.Interruptions != 2 || f.Reroutes != 1 || f.DowntimeS != 5 {
		t.Errorf("second outage: interruptions=%d reroutes=%d downtime=%v",
			f.Interruptions, f.Reroutes, f.DowntimeS)
	}
	if got := f.Availability(100); math.Abs(got-0.95) > 1e-12 {
		t.Errorf("availability = %v, want 0.95", got)
	}
}

func TestFlowAvailabilityFinishChargesOpenOutage(t *testing.T) {
	var f FlowAvailability
	f.Down(90)
	f.Finish(100)
	if f.DowntimeS != 10 {
		t.Errorf("downtime = %v, want 10", f.DowntimeS)
	}
	if f.RecoveryS.Count() != 0 {
		t.Error("an unrecovered outage must not produce a recovery sample")
	}
	if !f.IsDown() {
		t.Error("Finish must not mark the flow recovered")
	}
	if got := f.Availability(100); got != 0.9 {
		t.Errorf("availability = %v, want 0.9", got)
	}
	// Finish on an up flow is a no-op.
	var g FlowAvailability
	g.Finish(100)
	if g.DowntimeS != 0 || g.Availability(100) != 1 {
		t.Error("Finish on an up flow changed the ledger")
	}
}

func TestFlowAvailabilityBounds(t *testing.T) {
	var f FlowAvailability
	if f.Availability(0) != 0 {
		t.Error("non-positive window must report 0")
	}
	f.DowntimeS = 500
	if f.Availability(100) != 0 {
		t.Error("availability must clamp at 0")
	}
}
