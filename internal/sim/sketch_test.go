package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSketchZeroCountContract(t *testing.T) {
	s := DefaultSketch()
	if s.Count() != 0 {
		t.Fatalf("empty sketch count = %d", s.Count())
	}
	for name, got := range map[string]float64{
		"mean": s.Mean(), "min": s.Min(), "max": s.Max(),
		"p0": s.Quantile(0), "p50": s.Quantile(0.5), "p100": s.Quantile(1),
		"sum": s.Sum(),
	} {
		if got != 0 {
			t.Errorf("empty sketch %s = %v, want exactly 0", name, got)
		}
		if math.IsNaN(got) {
			t.Errorf("empty sketch %s is NaN", name)
		}
	}
}

func TestHistogramZeroCountContract(t *testing.T) {
	var h Histogram
	if h.Count() != 0 {
		t.Fatalf("empty histogram count = %d", h.Count())
	}
	for name, got := range map[string]float64{
		"mean": h.Mean(), "min": h.Min(), "max": h.Max(),
		"p0": h.Quantile(0), "p50": h.Quantile(0.5), "p100": h.Quantile(1),
		"stddev": h.Stddev(),
	} {
		if got != 0 {
			t.Errorf("empty histogram %s = %v, want exactly 0", name, got)
		}
		if math.IsNaN(got) {
			t.Errorf("empty histogram %s is NaN", name)
		}
	}
}

func TestSketchRelativeAccuracy(t *testing.T) {
	const alpha = 0.01
	s, err := NewSketch(alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	var exact []float64
	for i := 0; i < 20000; i++ {
		// Latency-like values across five orders of magnitude.
		v := math.Exp(rng.NormFloat64()*2 - 3)
		exact = append(exact, v)
		s.Add(v)
	}
	sort.Float64s(exact)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99} {
		idx := int(math.Ceil(q*float64(len(exact)))) - 1
		want := exact[idx]
		got := s.Quantile(q)
		if relErr := math.Abs(got-want) / want; relErr > 2*alpha {
			t.Errorf("q=%.2f: sketch %.6g vs exact %.6g (rel err %.4f > %.4f)",
				q, got, want, relErr, 2*alpha)
		}
	}
	if s.Buckets() > 2500 {
		t.Errorf("sketch used %d buckets for a 5-decade range; memory bound broken", s.Buckets())
	}
	if got, want := s.Count(), uint64(len(exact)); got != want {
		t.Errorf("count %d, want %d", got, want)
	}
}

func TestSketchWeightedAddMatchesRepeatedAdd(t *testing.T) {
	a := DefaultSketch()
	b := DefaultSketch()
	vals := []float64{0.004, 0.035, 0.035, 1.2, 88}
	weights := []uint64{1000, 1, 999, 40000, 3}
	for i, v := range vals {
		a.AddN(v, weights[i])
		for n := uint64(0); n < weights[i]; n++ {
			b.Add(v)
		}
	}
	if a.Count() != b.Count() {
		t.Fatalf("weighted add diverged: count %d/%d", a.Count(), b.Count())
	}
	// Sums differ only by float accumulation order.
	if math.Abs(a.Sum()-b.Sum()) > 1e-9*math.Abs(b.Sum()) {
		t.Fatalf("weighted add sum diverged: %v vs %v", a.Sum(), b.Sum())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%.1f: AddN %.6g vs repeated Add %.6g", q, a.Quantile(q), b.Quantile(q))
		}
	}
}

func TestSketchZeroAndNegativeValues(t *testing.T) {
	s := DefaultSketch()
	s.AddN(0, 5)
	s.AddN(-3, 2) // clamped into the zero bucket
	s.AddN(10, 3)
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("p50 with majority-zero mass = %v, want 0", got)
	}
	if got := s.Quantile(0.95); math.Abs(got-10)/10 > 0.02 {
		t.Errorf("p95 = %v, want ≈10", got)
	}
	if s.Count() != 10 {
		t.Errorf("count = %d, want 10", s.Count())
	}
	s.Add(math.NaN())
	if s.Count() != 10 {
		t.Errorf("NaN was recorded: count = %d", s.Count())
	}
}

func TestSketchMerge(t *testing.T) {
	a, b := DefaultSketch(), DefaultSketch()
	one := DefaultSketch()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		v := rng.Float64() * 100
		one.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != one.Count() {
		t.Fatalf("merge lost mass: count %d/%d", a.Count(), one.Count())
	}
	if math.Abs(a.Sum()-one.Sum()) > 1e-9*math.Abs(one.Sum()) {
		t.Fatalf("merge sum diverged: %v vs %v", a.Sum(), one.Sum())
	}
	for _, q := range []float64{0.05, 0.5, 0.95} {
		if a.Quantile(q) != one.Quantile(q) {
			t.Errorf("q=%.2f: merged %.6g vs single %.6g", q, a.Quantile(q), one.Quantile(q))
		}
	}
	mismatched, err := NewSketch(0.05)
	if err != nil {
		t.Fatal(err)
	}
	mismatched.Add(1)
	if err := a.Merge(mismatched); err == nil {
		t.Error("merging mismatched accuracies must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Errorf("merging nil: %v", err)
	}
}

func TestNewSketchRejectsBadAccuracy(t *testing.T) {
	for _, alpha := range []float64{0, 1, -0.5, 2} {
		if _, err := NewSketch(alpha); err == nil {
			t.Errorf("NewSketch(%v) accepted", alpha)
		}
	}
}
