package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// The calendar queue's contract is dequeue-order equality with the retired
// binary heap: not "equivalent" order, the *same* order, because committed
// experiment CSVs were produced under the heap and must regenerate
// byte-identically. These tests replay schedules through both structures
// and require identical pop sequences.

// refQueue drives the reference eventHeap through container/heap.
type refQueue struct{ h eventHeap }

func (r *refQueue) push(ev event) { heap.Push(&r.h, ev) }
func (r *refQueue) pop() (event, bool) {
	if r.h.Len() == 0 {
		return event{}, false
	}
	return heap.Pop(&r.h).(event), true
}
func (r *refQueue) len() int { return r.h.Len() }

// comparePop pops one event from both queues and fails on any divergence.
func comparePop(t *testing.T, cq *calQueue, ref *refQueue) (event, bool) {
	t.Helper()
	want, wok := ref.pop()
	got, gok := cq.pop()
	if wok != gok {
		t.Fatalf("pop presence diverged: heap %v, calendar %v", wok, gok)
	}
	if !wok {
		return event{}, false
	}
	if got.atS != want.atS || got.seq != want.seq {
		t.Fatalf("pop order diverged: heap (%.9f, %d), calendar (%.9f, %d)",
			want.atS, want.seq, got.atS, got.seq)
	}
	return got, true
}

func TestCalendarQueueMatchesHeapBulk(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		cq := newCalQueue()
		ref := &refQueue{}
		n := 1 + rng.Intn(400)
		var seq uint64
		for i := 0; i < n; i++ {
			at := rng.Float64() * 1000
			if rng.Intn(4) == 0 {
				at = float64(rng.Intn(10)) // force equal-time collisions
			}
			ev := event{atS: at, seq: seq}
			seq++
			cq.push(ev)
			ref.push(ev)
		}
		for ref.len() > 0 {
			comparePop(t, &cq, ref)
		}
		if cq.Len() != 0 {
			t.Fatalf("calendar queue retains %d events after drain", cq.Len())
		}
	}
}

func TestCalendarQueueMatchesHeapInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		cq := newCalQueue()
		ref := &refQueue{}
		var seq uint64
		now := 0.0
		for op := 0; op < 2000; op++ {
			if ref.len() == 0 || rng.Intn(3) != 0 {
				// Mid-run insertion at or after the engine clock, the
				// pattern After produces (retries, handover ticks).
				at := now + rng.Float64()*50
				if rng.Intn(5) == 0 {
					at = now // equal-time burst at the current instant
				}
				ev := event{atS: at, seq: seq}
				seq++
				cq.push(ev)
				ref.push(ev)
				continue
			}
			if ev, ok := comparePop(t, &cq, ref); ok {
				now = ev.atS
			}
		}
		for ref.len() > 0 {
			comparePop(t, &cq, ref)
		}
	}
}

func TestCalendarQueueEqualTimeBurst(t *testing.T) {
	cq := newCalQueue()
	ref := &refQueue{}
	// Thousands of events at one instant: the degenerate case where every
	// bucket-width heuristic collapses; order must still be FIFO by seq.
	for seq := uint64(0); seq < 5000; seq++ {
		ev := event{atS: 42, seq: seq}
		cq.push(ev)
		ref.push(ev)
	}
	for seq := uint64(0); seq < 5000; seq++ {
		got, ok := comparePop(t, &cq, ref)
		if !ok || got.seq != seq {
			t.Fatalf("burst pop %d: got seq %d ok=%v", seq, got.seq, ok)
		}
	}
}

func TestCalendarQueueSparseFarFuture(t *testing.T) {
	cq := newCalQueue()
	ref := &refQueue{}
	// Events many calendar years apart exercise the sparse direct-search
	// fallback rather than an unbounded slice walk.
	times := []float64{0.001, 5000, 1e6, 3e7, 3e7, 1e9}
	for i, at := range times {
		ev := event{atS: at, seq: uint64(i)}
		cq.push(ev)
		ref.push(ev)
	}
	for ref.len() > 0 {
		comparePop(t, &cq, ref)
	}
}

// TestEngineMatchesReferenceEngine runs a full self-scheduling program —
// events that reschedule themselves like handover ticks and retries — on
// the production engine and on a heap-driven replica, and requires the
// two delivery logs to be identical.
func TestEngineMatchesReferenceEngine(t *testing.T) {
	type logEntry struct {
		at float64
		id int
	}
	program := func(trial int64) (prodLog, refLog []logEntry) {
		// Production engine.
		{
			rng := rand.New(rand.NewSource(trial))
			e := NewEngine()
			var pl []logEntry
			var tick func(id int) func(*Engine)
			tick = func(id int) func(*Engine) {
				return func(e *Engine) {
					pl = append(pl, logEntry{e.Now(), id})
					if rng.Intn(3) > 0 {
						if err := e.After(rng.Float64()*30, tick(id*7+1)); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			for i := 0; i < 200; i++ {
				if err := e.Schedule(rng.Float64()*100, tick(i)); err != nil {
					t.Fatal(err)
				}
			}
			e.Run(400)
			prodLog = pl
		}
		// Heap-driven replica with an identical RNG stream.
		{
			rng := rand.New(rand.NewSource(trial))
			ref := &refQueue{}
			var seq uint64
			now := 0.0
			var rl []logEntry
			var tick func(id int) func()
			schedule := func(at float64, fn func()) {
				ref.push(event{atS: at, seq: seq, fn: func(*Engine) { fn() }})
				seq++
			}
			tick = func(id int) func() {
				return func() {
					rl = append(rl, logEntry{now, id})
					if rng.Intn(3) > 0 {
						schedule(now+rng.Float64()*30, tick(id*7+1))
					}
				}
			}
			for i := 0; i < 200; i++ {
				schedule(rng.Float64()*100, tick(i))
			}
			for ref.len() > 0 {
				ev, _ := ref.pop()
				if ev.atS > 400 {
					break
				}
				now = ev.atS
				ev.fn(nil)
			}
			refLog = rl
		}
		return prodLog, refLog
	}

	for trial := int64(0); trial < 10; trial++ {
		prod, refl := program(trial)
		if len(prod) != len(refl) {
			t.Fatalf("trial %d: delivered %d events, reference delivered %d", trial, len(prod), len(refl))
		}
		for i := range prod {
			if prod[i] != refl[i] {
				t.Fatalf("trial %d: delivery %d diverged: engine %+v, reference %+v",
					trial, i, prod[i], refl[i])
			}
		}
	}
}

// FuzzCalendarQueueOrder interprets fuzzer bytes as an op program over
// both queues: 3-byte (op, a, b) triples either push an event at a time
// derived from (a, b) — including duplicate times and times earlier than
// the cursor — or pop one event from each queue and compare. The seed
// corpus in testdata/fuzz covers bursts, far-future sparsity and
// cursor pull-backs.
func FuzzCalendarQueueOrder(f *testing.F) {
	f.Add([]byte{0, 10, 5, 0, 10, 5, 3, 0, 0, 0, 1, 1, 3, 0, 0})
	f.Add([]byte{0, 255, 255, 0, 0, 1, 3, 0, 0, 0, 0, 0, 3, 0, 0, 3, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		cq := newCalQueue()
		ref := &refQueue{}
		var seq uint64
		for i := 0; i+2 < len(data); i += 3 {
			op, a, b := data[i], data[i+1], data[i+2]
			if op%4 == 3 {
				want, wok := ref.pop()
				got, gok := cq.pop()
				if wok != gok {
					t.Fatalf("op %d: pop presence diverged (heap %v calendar %v)", i, wok, gok)
				}
				if wok && (got.atS != want.atS || got.seq != want.seq) {
					t.Fatalf("op %d: pop diverged: heap (%v,%d) calendar (%v,%d)",
						i, want.atS, want.seq, got.atS, got.seq)
				}
				continue
			}
			// op%4 selects a time regime: dense, clustered, or far-future.
			at := float64(a)*0.5 + float64(b)*0.002
			switch op % 4 {
			case 1:
				at = float64(a % 8) // heavy equal-time collisions
			case 2:
				at = float64(a) * 1e5 // sparse, many calendar years out
			}
			ev := event{atS: at, seq: seq}
			seq++
			cq.push(ev)
			ref.push(ev)
		}
		for ref.len() > 0 {
			want, _ := ref.pop()
			got, ok := cq.pop()
			if !ok || got.atS != want.atS || got.seq != want.seq {
				t.Fatalf("drain diverged: heap (%v,%d) calendar (%v,%d) ok=%v",
					want.atS, want.seq, got.atS, got.seq, ok)
			}
		}
		if cq.Len() != 0 {
			t.Fatalf("calendar queue retains %d events after drain", cq.Len())
		}
	})
}
