package sim

import "math"

// calQueue is a calendar queue (R. Brown, CACM 1988): the event set is
// hashed by time into an array of buckets, each bucket covering one
// width-sized slice of simulated time. Enqueue appends to the target
// bucket in O(1); dequeue scans forward from the current slice and takes
// the earliest event of the first non-empty slice. With the bucket count
// resized to track the event population and the width to track the mean
// inter-event gap, both operations are O(1) amortized — the property that
// lets million-event runs replace the heap's O(log n) without changing a
// single delivery.
//
// Determinism contract: dequeue returns events in strictly increasing
// (atS, seq) order — exactly the order the binary heap produced (seq is
// unique, so the order is total). Same-slice candidates are compared by
// (atS, seq) directly, and every structural decision (resize trigger, new
// width, scan position) is a pure function of the event set, never of
// wall-clock or map iteration. The engine property tests in
// calqueue_test.go pin dequeue-order equality against the retired heap
// implementation (heapqueue.go) under random schedules.
type calQueue struct {
	// buckets is owner-scoped storage rewritten in place by push/pop;
	// nothing aliasing a bucket may leave the queue (scratchsafe).
	buckets [][]event //lint:scratch
	// width is the time span one bucket slice covers. Slice k covers
	// [k*width, (k+1)*width) and hashes to bucket k mod len(buckets);
	// membership tests recompute k = floor(atS/width) rather than
	// accumulating slice bounds, so float drift cannot misfile an event.
	width float64
	// curSlice is the scan cursor: no queued event lives in an earlier
	// slice (enqueue pulls the cursor back when violated).
	curSlice int64
	count    int

	// One-event peek cache so Run's peek-then-pop costs one scan, not two.
	cached   bool
	cacheB   int // bucket index of the cached minimum
	cacheI   int // position within that bucket
	cacheMin event
}

const (
	calMinBuckets = 8
	// calMinWidth floors the bucket width so pathological clustering
	// (thousands of events at one instant) cannot drive slice indices
	// beyond int64 range for any reachable simulation time.
	calMinWidth = 1e-9
)

// newCalQueue returns an empty queue sized for a handful of events.
func newCalQueue() calQueue {
	//lint:allow hotalloc one-time lazy construction reached from push's nil-buckets branch
	return calQueue{buckets: make([][]event, calMinBuckets), width: 1}
}

// Len returns the number of queued events.
func (q *calQueue) Len() int { return q.count }

// slice returns the slice index of a time under the current width.
func (q *calQueue) slice(atS float64) int64 {
	return int64(math.Floor(atS / q.width))
}

// push files an event; the engine guarantees atS is never in the past.
func (q *calQueue) push(ev event) {
	if q.buckets == nil {
		*q = newCalQueue()
	}
	s := q.slice(ev.atS)
	if q.count == 0 || s < q.curSlice {
		// The new event precedes the scan cursor: pull the cursor back so
		// the next scan starts at (or before) the earliest slice.
		q.curSlice = s
	}
	b := int(s % int64(len(q.buckets)))
	if b < 0 {
		b += len(q.buckets)
	}
	q.buckets[b] = append(q.buckets[b], ev)
	q.count++
	q.cached = false
	if q.count > 2*len(q.buckets) {
		q.resize(2 * len(q.buckets))
	}
}

// peek returns the earliest event without removing it.
func (q *calQueue) peek() (event, bool) {
	if q.count == 0 {
		return event{}, false
	}
	if !q.cached {
		q.findMin()
	}
	return q.cacheMin, true
}

// pop removes and returns the earliest event.
func (q *calQueue) pop() (event, bool) {
	if q.count == 0 {
		return event{}, false
	}
	if !q.cached {
		q.findMin()
	}
	ev := q.cacheMin
	b := q.buckets[q.cacheB]
	q.buckets[q.cacheB] = append(b[:q.cacheI], b[q.cacheI+1:]...)
	q.count--
	q.cached = false
	if q.count < len(q.buckets)/4 && len(q.buckets) > calMinBuckets {
		q.resize(len(q.buckets) / 2)
	}
	return ev, true
}

// findMin locates the earliest (atS, seq) event and caches its position.
// It first scans one calendar year of slices forward from the cursor; if
// the population is sparser than that (all events far in the future), it
// falls back to a direct sweep of every bucket.
func (q *calQueue) findMin() {
	nb := int64(len(q.buckets))
	for step := int64(0); step < nb; step++ {
		k := q.curSlice + step
		b := int(k % nb)
		if b < 0 {
			b += int(nb)
		}
		if q.scanBucket(b, k) {
			q.curSlice = k
			return
		}
	}
	// Sparse fallback: take the global minimum across all buckets.
	found := false
	for b, evs := range q.buckets {
		for i, ev := range evs {
			if !found || less(ev, q.cacheMin) {
				found = true
				q.cacheB, q.cacheI, q.cacheMin = b, i, ev
			}
		}
	}
	q.cached = found
	if found {
		q.curSlice = q.slice(q.cacheMin.atS)
	}
}

// scanBucket caches the minimum event of bucket b that belongs to slice k,
// reporting whether one exists.
func (q *calQueue) scanBucket(b int, k int64) bool {
	found := false
	for i, ev := range q.buckets[b] {
		if q.slice(ev.atS) != k {
			continue // an event from another calendar year sharing the bucket
		}
		if !found || less(ev, q.cacheMin) {
			found = true
			q.cacheB, q.cacheI, q.cacheMin = b, i, ev
		}
	}
	q.cached = found
	return found
}

// less is the engine's total event order: time, then scheduling sequence.
func less(a, b event) bool {
	if a.atS != b.atS { //lint:allow floateq exact order tie broken by seq keeps event order deterministic
		return a.atS < b.atS
	}
	return a.seq < b.seq
}

// resize rebuilds the calendar with nb buckets and a width tracking the
// current event spread, so the steady state keeps O(1) events per bucket
// and one dequeue scan step per event. The new width is (span/count)*3 —
// Brown's heuristic of a few events per slice — floored for clustered
// populations. Deterministic: depends only on the queued events.
func (q *calQueue) resize(nb int) {
	if nb < calMinBuckets {
		nb = calMinBuckets
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, evs := range q.buckets {
		for _, ev := range evs {
			minT = math.Min(minT, ev.atS)
			maxT = math.Max(maxT, ev.atS)
		}
	}
	width := 1.0
	if q.count > 0 && maxT > minT {
		width = (maxT - minT) / float64(q.count) * 3
	}
	if width < calMinWidth {
		width = calMinWidth
	}
	old := q.buckets
	//lint:allow hotalloc doubling/halving resize amortizes to O(1) per operation
	q.buckets = make([][]event, nb)
	q.width = width
	q.cached = false
	if q.count > 0 && !math.IsInf(minT, 1) {
		q.curSlice = q.slice(minT)
	} else {
		q.curSlice = 0
	}
	for _, evs := range old {
		for _, ev := range evs {
			b := int(q.slice(ev.atS) % int64(nb))
			if b < 0 {
				b += nb
			}
			q.buckets[b] = append(q.buckets[b], ev)
		}
	}
}
