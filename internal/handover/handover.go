// Package handover implements OpenSpace's satellite handover scheme (§2.2
// of the paper). LEO satellites cross a user's sky in minutes (Starlink
// hands over every ~15 s), so session continuity is dominated by how
// handovers work:
//
//   - Predictive (OpenSpace): the serving satellite "uses advance knowledge
//     of orbital trajectories to pick a successor" and tells the user ahead
//     of time via a HandoverNotice; the user establishes the new session
//     immediately, with no re-authentication — the roaming certificate from
//     association still vouches for it.
//   - Re-association (baseline): the user only discovers loss of signal
//     after the fact, re-scans for beacons, and re-runs the RADIUS exchange
//     with its home ISP over ISLs before traffic flows again.
//
// The Timeline functions simulate both schemes over a horizon and report
// every handover with its service interruption, which experiment E5
// aggregates.
package handover

import (
	"errors"
	"fmt"
	"sort"

	"github.com/openspace-project/openspace/internal/frame"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// Sat is one satellite visible to the predictor.
type Sat struct {
	ID       string
	Provider string
	Elements orbit.Elements
}

// Predictor computes visibility-driven handover decisions for one ground
// user from public orbital knowledge.
type Predictor struct {
	sats    []Sat
	user    geo.LatLon
	minElev float64
	// scanStepS is the coarse step used when searching visibility
	// transitions; passes last minutes, so tens of seconds is safe.
	scanStepS float64
}

// NewPredictor creates a predictor. minElevationDeg is the user terminal's
// elevation mask.
func NewPredictor(sats []Sat, user geo.LatLon, minElevationDeg float64) (*Predictor, error) {
	if len(sats) == 0 {
		return nil, errors.New("handover: no satellites")
	}
	if !user.Valid() {
		return nil, fmt.Errorf("handover: invalid user position %v", user)
	}
	return &Predictor{sats: sats, user: user, minElev: minElevationDeg, scanStepS: 10}, nil
}

// visible reports whether satellite i is above the mask at t.
func (p *Predictor) visible(i int, t float64) bool {
	return p.sats[i].Elements.Visible(p.user, t, p.minElev)
}

// Best returns the closest visible satellite at t, or ok=false when the sky
// is empty (the coverage gaps of a sparse constellation).
func (p *Predictor) Best(t float64) (Sat, bool) {
	userPos := p.user.Vec3(0)
	bestIdx, bestRange := -1, 0.0
	for i := range p.sats {
		if !p.visible(i, t) {
			continue
		}
		d := p.sats[i].Elements.PositionECEF(t).DistanceKm(userPos)
		if bestIdx == -1 || d < bestRange ||
			//lint:allow floateq exact range tie broken by ID keeps selection deterministic
			(d == bestRange && p.sats[i].ID < p.sats[bestIdx].ID) {
			bestIdx, bestRange = i, d
		}
	}
	if bestIdx == -1 {
		return Sat{}, false
	}
	return p.sats[bestIdx], true
}

// VisibleUntil returns the time at which the satellite drops below the mask,
// searching from t up to t+horizonS; refined by bisection to 10 ms. If the
// satellite is visible through the whole horizon, horizon end is returned.
// If it is not visible at t, t is returned.
func (p *Predictor) VisibleUntil(satID string, t, horizonS float64) float64 {
	i := p.index(satID)
	if i < 0 || !p.visible(i, t) {
		return t
	}
	end := t + horizonS
	lo := t
	for cur := t + p.scanStepS; cur <= end; cur += p.scanStepS {
		if !p.visible(i, cur) {
			// Bisect in (lo, cur).
			hi := cur
			for hi-lo > 0.01 {
				mid := (lo + hi) / 2
				if p.visible(i, mid) {
					lo = mid
				} else {
					hi = mid
				}
			}
			return (lo + hi) / 2
		}
		lo = cur
	}
	return end
}

// PickSuccessor selects the satellite to hand the user over to when serving
// sets: among satellites visible at the set time (excluding the serving
// one), the one that remains visible longest afterwards — minimising the
// subsequent handover rate. Returns ok=false if the sky is empty then.
func (p *Predictor) PickSuccessor(servingID string, setTimeS, horizonS float64) (Sat, bool) {
	type cand struct {
		sat   Sat
		until float64
	}
	var cands []cand
	for i := range p.sats {
		if p.sats[i].ID == servingID || !p.visible(i, setTimeS) {
			continue
		}
		until := p.VisibleUntil(p.sats[i].ID, setTimeS, horizonS)
		cands = append(cands, cand{p.sats[i], until})
	}
	if len(cands) == 0 {
		return Sat{}, false
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].until != cands[b].until { //lint:allow floateq exact sort tie-break keeps candidate order deterministic
			return cands[a].until > cands[b].until
		}
		return cands[a].sat.ID < cands[b].sat.ID
	})
	return cands[0].sat, true
}

// Notice builds the wire-format HandoverNotice the serving satellite sends.
func Notice(serving string, successor Sat, effectiveAtS float64, token uint64) *frame.HandoverNotice {
	e := successor.Elements
	return &frame.HandoverNotice{
		ServingID:   serving,
		SuccessorID: successor.ID,
		SuccessorOrbit: frame.OrbitalState{
			SemiMajorAxisKm: e.SemiMajorAxisKm,
			Eccentricity:    e.Eccentricity,
			InclinationDeg:  e.InclinationDeg,
			RAANDeg:         e.RAANDeg,
			ArgPerigeeDeg:   e.ArgPerigeeDeg,
			MeanAnomalyDeg:  e.MeanAnomalyDeg,
		},
		EffectiveAtS: effectiveAtS,
		SessionToken: token,
	}
}

func (p *Predictor) index(id string) int {
	for i := range p.sats {
		if p.sats[i].ID == id {
			return i
		}
	}
	return -1
}
