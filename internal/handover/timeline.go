package handover

import (
	"fmt"
)

// Event is one handover in a timeline.
type Event struct {
	AtS           float64
	From, To      string
	CrossProvider bool
	InterruptionS float64
}

// Timeline is the result of simulating one user's session over a horizon.
type Timeline struct {
	Events             []Event
	TotalInterruptionS float64
	OutageS            float64 // time with no satellite visible at all
	HandoverCount      int
	CrossProviderCount int
}

// PredictiveCosts parameterises the fast path: the only interruption is
// establishing the new session with the pre-announced successor.
type PredictiveCosts struct {
	SessionSetupS float64 // one round trip to the successor plus processing
}

// DefaultPredictiveCosts uses a 50 ms session setup — two ~8 ms LEO hops
// plus processing, consistent with the paper's latency scale.
func DefaultPredictiveCosts() PredictiveCosts {
	return PredictiveCosts{SessionSetupS: 0.05}
}

// ReauthCosts parameterises the baseline where every satellite change
// repeats discovery and authentication.
type ReauthCosts struct {
	DetectS  float64 // time to notice loss of signal (beacon timeout)
	ScanS    float64 // beacon collection window
	AuthRTTS float64 // RADIUS exchange with the home ISP over ISLs
}

// DefaultReauthCosts models a 1 s beacon timeout, a 2 s scan window and a
// 600 ms three-message authentication over multi-hop ISLs.
func DefaultReauthCosts() ReauthCosts {
	return ReauthCosts{DetectS: 1, ScanS: 2, AuthRTTS: 0.6}
}

// Interruption returns the total service gap per re-association.
func (c ReauthCosts) Interruption() float64 { return c.DetectS + c.ScanS + c.AuthRTTS }

// SimulatePredictive runs the OpenSpace scheme over [startS, startS+horizonS]:
// the serving satellite is chosen at start, each set time is known in
// advance, and the pre-picked successor takes over with only session setup
// as interruption.
func (p *Predictor) SimulatePredictive(startS, horizonS float64, costs PredictiveCosts) (*Timeline, error) {
	return p.simulate(startS, horizonS, func(ev *Event) {
		ev.InterruptionS = costs.SessionSetupS
	})
}

// SimulateReauth runs the baseline: each satellite change pays full
// detection, scan and re-authentication.
func (p *Predictor) SimulateReauth(startS, horizonS float64, costs ReauthCosts) (*Timeline, error) {
	return p.simulate(startS, horizonS, func(ev *Event) {
		ev.InterruptionS = costs.Interruption()
	})
}

// simulate walks serving intervals; charge sets each event's interruption.
func (p *Predictor) simulate(startS, horizonS float64, charge func(*Event)) (*Timeline, error) {
	if horizonS <= 0 {
		return nil, fmt.Errorf("handover: horizon %.1f must be positive", horizonS)
	}
	end := startS + horizonS
	tl := &Timeline{}
	t := startS

	serving, ok := p.Best(t)
	for !ok {
		// No satellite visible: outage until one rises.
		next := p.nextVisibleTime(t, end)
		if next >= end {
			tl.OutageS += end - t
			return tl, nil
		}
		tl.OutageS += next - t
		t = next
		serving, ok = p.Best(t)
	}

	for t < end {
		setTime := p.VisibleUntil(serving.ID, t, end-t)
		if setTime >= end {
			break
		}
		succ, found := p.PickSuccessor(serving.ID, setTime, end-setTime)
		if !found {
			// Coverage gap: outage until any satellite rises again.
			next := p.nextVisibleTime(setTime, end)
			tl.OutageS += next - setTime
			if next >= end {
				break
			}
			t = next
			var okNow bool
			serving, okNow = p.Best(t)
			if !okNow {
				break
			}
			continue
		}
		ev := Event{
			AtS:           setTime,
			From:          serving.ID,
			To:            succ.ID,
			CrossProvider: serving.Provider != succ.Provider,
		}
		charge(&ev)
		tl.Events = append(tl.Events, ev)
		tl.TotalInterruptionS += ev.InterruptionS
		tl.HandoverCount++
		if ev.CrossProvider {
			tl.CrossProviderCount++
		}
		serving = succ
		t = setTime + ev.InterruptionS
	}
	return tl, nil
}

// nextVisibleTime scans forward for the first time any satellite is visible,
// returning end if none rises before then.
func (p *Predictor) nextVisibleTime(t, end float64) float64 {
	for cur := t; cur < end; cur += p.scanStepS {
		for i := range p.sats {
			if p.visible(i, cur) {
				// Refine backwards to the rise instant.
				lo, hi := cur-p.scanStepS, cur
				if lo < t {
					lo = t
				}
				for hi-lo > 0.01 {
					mid := (lo + hi) / 2
					if p.anyVisible(mid) {
						hi = mid
					} else {
						lo = mid
					}
				}
				return (lo + hi) / 2
			}
		}
	}
	return end
}

func (p *Predictor) anyVisible(t float64) bool {
	for i := range p.sats {
		if p.visible(i, t) {
			return true
		}
	}
	return false
}
