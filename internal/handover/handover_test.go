package handover

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// iridiumSats returns the Iridium constellation as predictor inputs split
// round-robin across providers.
func iridiumSats(t *testing.T, providers int) []Sat {
	t.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]Sat, c.Len())
	for i, s := range c.Satellites {
		sats[i] = Sat{
			ID:       s.ID,
			Provider: string(rune('A' + i%providers)),
			Elements: s.Elements,
		}
	}
	return sats
}

var testUser = geo.LatLon{Lat: 40.44, Lon: -79.99} // Pittsburgh

func TestNewPredictorValidation(t *testing.T) {
	if _, err := NewPredictor(nil, testUser, 10); err == nil {
		t.Error("no satellites should fail")
	}
	if _, err := NewPredictor(iridiumSats(t, 1), geo.LatLon{Lat: 99}, 10); err == nil {
		t.Error("invalid user should fail")
	}
}

func TestBestIsVisibleAndClosest(t *testing.T) {
	p, err := NewPredictor(iridiumSats(t, 1), testUser, 10)
	if err != nil {
		t.Fatal(err)
	}
	best, ok := p.Best(0)
	if !ok {
		t.Fatal("full Iridium must cover Pittsburgh")
	}
	if !best.Elements.Visible(testUser, 0, 10) {
		t.Error("best satellite not visible")
	}
	// No other visible satellite is closer.
	userPos := testUser.Vec3(0)
	bestRange := best.Elements.PositionECEF(0).DistanceKm(userPos)
	for _, s := range iridiumSats(t, 1) {
		if !s.Elements.Visible(testUser, 0, 10) {
			continue
		}
		if d := s.Elements.PositionECEF(0).DistanceKm(userPos); d < bestRange-1e-9 {
			t.Errorf("%s at %v km closer than best %v km", s.ID, d, bestRange)
		}
	}
}

func TestVisibleUntil(t *testing.T) {
	p, err := NewPredictor(iridiumSats(t, 1), testUser, 10)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := p.Best(0)
	set := p.VisibleUntil(best.ID, 0, 3600)
	if set <= 0 || set >= 3600 {
		t.Fatalf("set time %v outside (0, 3600)", set)
	}
	// Visibility holds just before and fails just after.
	if !best.Elements.Visible(testUser, set-0.5, 10) {
		t.Error("not visible just before set")
	}
	if best.Elements.Visible(testUser, set+0.5, 10) {
		t.Error("still visible just after set")
	}
	// Not-visible satellite: returns t itself.
	for _, s := range iridiumSats(t, 1) {
		if !s.Elements.Visible(testUser, 0, 10) {
			if got := p.VisibleUntil(s.ID, 0, 3600); got != 0 {
				t.Errorf("invisible satellite VisibleUntil = %v, want 0", got)
			}
			break
		}
	}
	// Unknown satellite.
	if got := p.VisibleUntil("ghost", 5, 3600); got != 5 {
		t.Errorf("unknown satellite VisibleUntil = %v, want 5", got)
	}
}

func TestPickSuccessor(t *testing.T) {
	p, err := NewPredictor(iridiumSats(t, 1), testUser, 10)
	if err != nil {
		t.Fatal(err)
	}
	best, _ := p.Best(0)
	set := p.VisibleUntil(best.ID, 0, 3600)
	succ, ok := p.PickSuccessor(best.ID, set, 3600)
	if !ok {
		t.Fatal("full Iridium must offer a successor")
	}
	if succ.ID == best.ID {
		t.Error("successor must differ from serving")
	}
	if !succ.Elements.Visible(testUser, set, 10) {
		t.Error("successor not visible at set time")
	}
}

func TestNoticeFields(t *testing.T) {
	sats := iridiumSats(t, 1)
	n := Notice("serving-1", sats[3], 120.5, 0xFEED)
	if n.ServingID != "serving-1" || n.SuccessorID != sats[3].ID {
		t.Errorf("notice IDs wrong: %+v", n)
	}
	if n.EffectiveAtS != 120.5 || n.SessionToken != 0xFEED {
		t.Errorf("notice metadata wrong: %+v", n)
	}
	if n.SuccessorOrbit.SemiMajorAxisKm != sats[3].Elements.SemiMajorAxisKm {
		t.Error("successor orbit not carried")
	}
}

func TestPredictiveBeatsReauth(t *testing.T) {
	// The paper's claim: predictive handover "eliminates the need to run
	// authentication and association protocols again, ensuring a smooth
	// handoff". Over an hour, total interruption must be far lower.
	p, err := NewPredictor(iridiumSats(t, 3), testUser, 10)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := p.SimulatePredictive(0, 3600, DefaultPredictiveCosts())
	if err != nil {
		t.Fatal(err)
	}
	reauth, err := p.SimulateReauth(0, 3600, DefaultReauthCosts())
	if err != nil {
		t.Fatal(err)
	}
	if pred.HandoverCount == 0 || reauth.HandoverCount == 0 {
		t.Fatalf("no handovers in an hour of LEO: pred=%d reauth=%d",
			pred.HandoverCount, reauth.HandoverCount)
	}
	if pred.TotalInterruptionS >= reauth.TotalInterruptionS/10 {
		t.Errorf("predictive %v s should be <10%% of reauth %v s",
			pred.TotalInterruptionS, reauth.TotalInterruptionS)
	}
	// Per-event interruptions match the cost models.
	for _, ev := range pred.Events {
		if ev.InterruptionS != DefaultPredictiveCosts().SessionSetupS {
			t.Fatalf("predictive event interruption %v", ev.InterruptionS)
		}
	}
	for _, ev := range reauth.Events {
		if ev.InterruptionS != DefaultReauthCosts().Interruption() {
			t.Fatalf("reauth event interruption %v", ev.InterruptionS)
		}
	}
	// With 3 providers interleaved in-plane, some handovers must cross
	// provider boundaries — the roaming the paper says is "rampant".
	if pred.CrossProviderCount == 0 {
		t.Error("no cross-provider handovers with 3 interleaved providers")
	}
	// Events are ordered and within the horizon.
	prev := 0.0
	for _, ev := range pred.Events {
		if ev.AtS < prev || ev.AtS > 3600 {
			t.Fatalf("event out of order or range: %+v", ev)
		}
		prev = ev.AtS
	}
}

func TestSparseConstellationHasOutage(t *testing.T) {
	// Four satellites cannot cover Pittsburgh continuously: the timeline
	// must record outage, and outage must dwarf handover interruptions.
	sats := iridiumSats(t, 1)[:4]
	p, err := NewPredictor(sats, testUser, 10)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := p.SimulatePredictive(0, 7200, DefaultPredictiveCosts())
	if err != nil {
		t.Fatal(err)
	}
	if tl.OutageS <= 0 {
		t.Error("sparse constellation should have outages")
	}
	if tl.OutageS < 1000 {
		t.Errorf("outage %v s suspiciously small for 4 satellites", tl.OutageS)
	}
}

func TestSimulateValidation(t *testing.T) {
	p, err := NewPredictor(iridiumSats(t, 1), testUser, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.SimulatePredictive(0, 0, DefaultPredictiveCosts()); err == nil {
		t.Error("zero horizon should fail")
	}
	if _, err := p.SimulateReauth(0, -1, DefaultReauthCosts()); err == nil {
		t.Error("negative horizon should fail")
	}
}

func TestTimelineStartsInOutage(t *testing.T) {
	// A user who begins in a coverage gap accrues outage until the first
	// satellite rises, then gets normal service — exercising the recovery
	// path of the simulation loop.
	sats := iridiumSats(t, 1)[:6]
	// Find a user location with no visibility at t=0 but some within 2 h.
	user := geo.LatLon{Lat: -45, Lon: -100}
	p, err := NewPredictor(sats, user, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Best(0); ok {
		t.Skip("user starts covered in this geometry")
	}
	tl, err := p.SimulatePredictive(0, 7200, DefaultPredictiveCosts())
	if err != nil {
		t.Fatal(err)
	}
	if tl.OutageS <= 0 {
		t.Error("starting in a gap must record outage")
	}
	// Outage plus service cannot exceed the horizon (sanity).
	if tl.OutageS > 7200 {
		t.Errorf("outage %v exceeds horizon", tl.OutageS)
	}
}

func TestTimelineWholeHorizonOutage(t *testing.T) {
	// One equatorial satellite never serves a polar user: the whole
	// horizon is outage and no handovers occur.
	sats := []Sat{{ID: "eq", Provider: "p", Elements: orbit.Circular(780, 0, 0, 0)}}
	p, err := NewPredictor(sats, geo.LatLon{Lat: 89, Lon: 0}, 10)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := p.SimulateReauth(0, 3600, DefaultReauthCosts())
	if err != nil {
		t.Fatal(err)
	}
	if tl.HandoverCount != 0 {
		t.Errorf("handovers in permanent outage: %d", tl.HandoverCount)
	}
	if tl.OutageS < 3599 {
		t.Errorf("outage %v, want the whole hour", tl.OutageS)
	}
}

func TestTimelineIntermittentSingleSatellite(t *testing.T) {
	// One polar satellite over an equatorial user: periodic passes with
	// long gaps. The timeline must alternate outage → service → outage,
	// exercising the recovery branches, with zero handovers (there is no
	// successor to hand over to).
	sats := []Sat{{ID: "solo", Provider: "p", Elements: orbit.Circular(780, 90, 0, 180)}}
	user := geo.LatLon{Lat: 0, Lon: 0}
	p, err := NewPredictor(sats, user, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Starting at mean anomaly 180° the satellite is on the far side:
	// the user begins in outage.
	if _, ok := p.Best(0); ok {
		t.Fatal("user should start uncovered")
	}
	const horizon = 4 * 3600.0
	tl, err := p.SimulatePredictive(0, horizon, DefaultPredictiveCosts())
	if err != nil {
		t.Fatal(err)
	}
	if tl.HandoverCount != 0 {
		t.Errorf("single satellite cannot hand over, got %d", tl.HandoverCount)
	}
	if tl.OutageS <= 0 || tl.OutageS >= horizon {
		t.Errorf("outage %v should be a strict fraction of %v (intermittent service)",
			tl.OutageS, horizon)
	}
	// Service time = passes actually delivered; a 780 km polar satellite
	// over 4 h gives the equatorial user a few ~10-minute passes.
	service := horizon - tl.OutageS
	if service < 300 || service > 3600 {
		t.Errorf("service time %v s implausible for periodic passes", service)
	}
}
