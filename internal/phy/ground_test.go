package phy

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
)

func TestAtmosphereLoss(t *testing.T) {
	a := ClearSky(BandKu)
	// Loss grows as elevation drops.
	prev := 0.0
	for _, el := range []float64{90, 60, 30, 10, 5} {
		l := a.LossDB(el)
		if l <= prev {
			t.Fatalf("loss did not grow at elevation %v", el)
		}
		prev = l
	}
	// Below 5° the model clamps.
	if a.LossDB(1) != a.LossDB(5) {
		t.Error("loss should clamp below 5° elevation")
	}
	// Zenith loss equals configured total.
	if got := a.LossDB(90); !almostEqual(got, a.ZenithLossDB+a.RainMarginDB, 1e-9) {
		t.Errorf("zenith loss = %v", got)
	}
}

func TestClearSkyOrdering(t *testing.T) {
	// Attenuation grows with frequency band.
	uhf := ClearSky(BandUHF).LossDB(90)
	s := ClearSky(BandS).LossDB(90)
	ku := ClearSky(BandKu).LossDB(90)
	ka := ClearSky(BandKa).LossDB(90)
	if !(uhf < s && s < ku && ku < ka) {
		t.Errorf("attenuation ordering broken: %v %v %v %v", uhf, s, ku, ka)
	}
	if ClearSky(BandOptical).LossDB(90) != 0 {
		t.Error("optical ground model is out of scope and should be zero")
	}
}

func TestGroundLinkValidate(t *testing.T) {
	g := DefaultGroundLink()
	if err := g.Validate(); err != nil {
		t.Errorf("default ground link invalid: %v", err)
	}
	g.Ground.Band = BandS
	if g.Validate() == nil {
		t.Error("mismatched bands should be invalid")
	}
	g = DefaultGroundLink()
	g.Space.TxPowerW = 0
	if g.Validate() == nil {
		t.Error("invalid space terminal should fail validation")
	}
	g = DefaultGroundLink()
	g.Ground.NoiseTempK = 0
	if g.Validate() == nil {
		t.Error("invalid ground terminal should fail validation")
	}
}

func TestGroundLinkBudget(t *testing.T) {
	g := DefaultGroundLink()
	// Iridium-style pass: zenith at 780 km.
	zenith := g.Budget(geo.SlantRangeKm(780, 90), 90)
	if !zenith.Closed {
		t.Fatalf("ground link should close at zenith: %v", zenith)
	}
	// Low pass: longer slant range and more atmosphere → lower SNR.
	low := g.Budget(geo.SlantRangeKm(780, 10), 10)
	if low.SNRdB >= zenith.SNRdB {
		t.Errorf("low-elevation SNR %v should be below zenith %v", low.SNRdB, zenith.SNRdB)
	}
	// The link still closes at a 10° mask — the default service threshold.
	if !low.Closed {
		t.Errorf("ground link should close at 10° elevation: %v", low)
	}
}

func TestGroundLinkBandwidthGoverned(t *testing.T) {
	g := DefaultGroundLink()
	g.Ground.BandwidthHz = 1e6 // narrowband ground station
	b := g.Budget(1000, 45)
	// Capacity must be limited by the 1 MHz ground bandwidth, not the
	// satellite's 250 MHz.
	if b.CapacityBps > 50e6 {
		t.Errorf("capacity %v not governed by narrow ground bandwidth", b.CapacityBps)
	}
}
