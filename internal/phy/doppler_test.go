package phy

import (
	"math"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

func TestDopplerShiftBasics(t *testing.T) {
	// 7.5 km/s closing at 2.25 GHz → +56.3 kHz.
	got := DopplerShiftHz(2.25e9, 7.5)
	want := 2.25e9 * 7.5 / SpeedOfLightKmS
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("shift = %v, want %v", got, want)
	}
	// Receding → negative; stationary → zero.
	if DopplerShiftHz(1e9, -3) >= 0 {
		t.Error("receding transmitter should lower frequency")
	}
	if DopplerShiftHz(1e9, 0) != 0 {
		t.Error("no relative motion → no shift")
	}
}

func TestRadialVelocityThroughPass(t *testing.T) {
	// During an overhead pass the satellite first approaches (positive
	// closing speed), passes closest approach (≈0), then recedes
	// (negative). Use an equatorial orbit and observer.
	e := orbit.Circular(780, 0, 0, 350) // rises toward the observer at lon 0
	obs := geo.LatLon{Lat: 0, Lon: 0}
	// Find the time of closest approach over a quarter orbit.
	bestT, bestR := 0.0, math.Inf(1)
	for tt := 0.0; tt < e.PeriodS()/2; tt += 5 {
		if r := e.RangeKm(obs, tt); r < bestR {
			bestR, bestT = r, tt
		}
	}
	if bestR > 1500 {
		t.Fatalf("pass never gets close: %v km", bestR)
	}
	before := RadialVelocityKmS(e, obs, bestT-120)
	at := RadialVelocityKmS(e, obs, bestT)
	after := RadialVelocityKmS(e, obs, bestT+120)
	if before <= 0 {
		t.Errorf("approaching phase closing speed = %v, want > 0", before)
	}
	if math.Abs(at) > 0.8 {
		t.Errorf("closest-approach radial velocity = %v, want ≈ 0", at)
	}
	if after >= 0 {
		t.Errorf("receding phase closing speed = %v, want < 0", after)
	}
	// LEO radial velocities stay below orbital speed (~7.5 km/s).
	for _, v := range []float64{before, at, after} {
		if math.Abs(v) > 8 {
			t.Errorf("radial velocity %v km/s exceeds orbital speed", v)
		}
	}
}

func TestDopplerProfile(t *testing.T) {
	e := orbit.Circular(780, 0, 0, 350)
	obs := geo.LatLon{Lat: 0, Lon: 0}
	prof := DopplerProfile(e, obs, 2.25e9, 0, 600, 10)
	if len(prof) != 61 {
		t.Fatalf("profile length %d", len(prof))
	}
	// The profile must swing from positive (approach) through zero to
	// negative (recede) across a pass.
	maxS, minS := prof[0], prof[0]
	for _, v := range prof {
		maxS = math.Max(maxS, v)
		minS = math.Min(minS, v)
	}
	if maxS <= 0 || minS >= 0 {
		t.Errorf("profile does not cross zero: [%v, %v]", minS, maxS)
	}
	// S-band LEO Doppler is tens of kHz.
	if maxS < 5e3 || maxS > 100e3 {
		t.Errorf("peak Doppler %v Hz outside LEO S-band range", maxS)
	}
	// Degenerate inputs.
	if DopplerProfile(e, obs, 1e9, 0, -1, 10) != nil {
		t.Error("negative window should be nil")
	}
	if DopplerProfile(e, obs, 1e9, 0, 10, 0) != nil {
		t.Error("zero step should be nil")
	}
}
