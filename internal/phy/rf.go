package phy

import (
	"fmt"
	"math"
	"time"
)

// RFTerminal describes a radio terminal used for ISLs or ground links.
// The paper mandates RF as the minimum hardware requirement for joining
// OpenSpace (§2.1): every satellite must carry at least one of these.
type RFTerminal struct {
	Name           string
	Band           Band
	TxPowerW       float64 // RF output power
	TxGainDBi      float64 // transmit antenna gain
	RxGainDBi      float64 // receive antenna gain
	NoiseTempK     float64 // receive system noise temperature
	BandwidthHz    float64 // channel bandwidth
	RequiredSNRdB  float64 // minimum SNR to close the link
	ImplMarginDB   float64 // implementation loss subtracted from Shannon
	PointingLossDB float64 // mispointing allowance
	MassKg         float64
	PowerDrawW     float64 // DC draw while transmitting
	CostUSD        float64
	OmniBroadcast  bool // true if the antenna can broadcast beacons
}

// Validate reports whether the terminal parameters are physically sensible.
func (t RFTerminal) Validate() error {
	if t.TxPowerW <= 0 {
		return fmt.Errorf("phy: rf %q: tx power %.2f W must be positive", t.Name, t.TxPowerW)
	}
	if t.BandwidthHz <= 0 {
		return fmt.Errorf("phy: rf %q: bandwidth %.0f Hz must be positive", t.Name, t.BandwidthHz)
	}
	if t.NoiseTempK <= 0 {
		return fmt.Errorf("phy: rf %q: noise temperature %.0f K must be positive", t.Name, t.NoiseTempK)
	}
	return nil
}

// Budget evaluates the RF link budget at distanceKm, with extraLossDB of
// excess loss (atmosphere for ground links; zero for ISLs in vacuum).
func (t RFTerminal) Budget(distanceKm, extraLossDB float64) Budget {
	freq := t.Band.CenterFrequencyHz()
	eirp := LinearToDB(t.TxPowerW) + t.TxGainDBi
	pl := FreeSpacePathLossDB(distanceKm, freq) + extraLossDB + t.PointingLossDB
	rx := eirp - pl + t.RxGainDBi
	noise := LinearToDB(NoisePowerW(t.NoiseTempK, t.BandwidthHz))
	snr := rx - noise
	cap := ShannonCapacityBps(t.BandwidthHz, DBToLinear(snr-t.ImplMarginDB))
	closed := snr >= t.RequiredSNRdB
	if !closed {
		cap = 0
	}
	return Budget{
		DistanceKm:  distanceKm,
		Band:        t.Band,
		EIRPdBW:     eirp,
		PathLossDB:  pl,
		RxPowerDBW:  rx,
		NoiseDBW:    noise,
		SNRdB:       snr,
		CapacityBps: cap,
		Delay:       PropagationDelay(distanceKm),
		Closed:      closed,
	}
}

// MaxRangeKm returns the longest distance at which the link still closes
// (SNR ≥ required), found by bisection up to limitKm. Returns 0 if the link
// does not close even at point blank range.
func (t RFTerminal) MaxRangeKm(extraLossDB, limitKm float64) float64 {
	if !t.Budget(1, extraLossDB).Closed {
		return 0
	}
	if t.Budget(limitKm, extraLossDB).Closed {
		return limitKm
	}
	lo, hi := 1.0, limitKm
	for hi-lo > 0.1 {
		mid := (lo + hi) / 2
		if t.Budget(mid, extraLossDB).Closed {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// EnergyPerBitJ returns the DC energy cost per delivered bit at distanceKm —
// the figure of merit behind the paper's observation that laser links have
// "higher throughput than RF, with lower energy cost".
func (t RFTerminal) EnergyPerBitJ(distanceKm float64) float64 {
	b := t.Budget(distanceKm, 0)
	if b.CapacityBps == 0 {
		return math.Inf(1)
	}
	return t.PowerDrawW / b.CapacityBps
}

// StandardUHF returns the baseline UHF ISL terminal that constitutes the
// paper's minimal hardware requirement: cheap, light, omnidirectional
// (suitable for beacon broadcast and pairing), but narrowband.
func StandardUHF() RFTerminal {
	return RFTerminal{
		Name:           "openspace-uhf-1",
		Band:           BandUHF,
		TxPowerW:       4,
		TxGainDBi:      2, // near-omni
		RxGainDBi:      2,
		NoiseTempK:     600,
		BandwidthHz:    100e3,
		RequiredSNRdB:  6,
		ImplMarginDB:   3,
		PointingLossDB: 0.5,
		MassKg:         0.8,
		PowerDrawW:     12,
		CostUSD:        15_000,
		OmniBroadcast:  true,
	}
}

// StandardSBand returns the S-band ISL terminal: the higher-rate RF option
// the paper notes has been flown on many smallsat missions. Directional,
// so it cannot broadcast beacons.
func StandardSBand() RFTerminal {
	return RFTerminal{
		Name:           "openspace-s-1",
		Band:           BandS,
		TxPowerW:       10,
		TxGainDBi:      18,
		RxGainDBi:      18,
		NoiseTempK:     450,
		BandwidthHz:    5e6,
		RequiredSNRdB:  6,
		ImplMarginDB:   3,
		PointingLossDB: 1,
		MassKg:         2.5,
		PowerDrawW:     30,
		CostUSD:        60_000,
	}
}

// GroundKu returns the Ku-band satellite–ground terminal modelled on the
// bands existing satellite broadband providers use (§2.1, Starlink downlink
// reference). Ground stations have large apertures, hence the high RX gain.
func GroundKu() RFTerminal {
	return RFTerminal{
		Name:           "openspace-gnd-ku",
		Band:           BandKu,
		TxPowerW:       20,
		TxGainDBi:      33,
		RxGainDBi:      38,
		NoiseTempK:     300,
		BandwidthHz:    250e6,
		RequiredSNRdB:  4,
		ImplMarginDB:   3,
		PointingLossDB: 1,
		MassKg:         5,
		PowerDrawW:     80,
		CostUSD:        120_000,
	}
}

// SlewModel describes how fast a spacecraft can re-orient to point a
// directional terminal — the paper notes satellites "can re-orient (i.e.,
// spin) to maintain a reliable link" and that rotations carry a power cost.
type SlewModel struct {
	RateDegPerS float64       // slew rate
	SettleTime  time.Duration // post-slew stabilisation
	PowerW      float64       // draw while slewing
}

// DefaultSlew returns a smallsat reaction-wheel slew model.
func DefaultSlew() SlewModel {
	return SlewModel{RateDegPerS: 1.5, SettleTime: 5 * time.Second, PowerW: 8}
}

// SlewTime returns how long re-orienting by angleDeg takes.
func (s SlewModel) SlewTime(angleDeg float64) time.Duration {
	if angleDeg <= 0 || s.RateDegPerS <= 0 {
		return s.SettleTime
	}
	return time.Duration(angleDeg/s.RateDegPerS*float64(time.Second)) + s.SettleTime
}

// SlewEnergyJ returns the energy spent re-orienting by angleDeg.
func (s SlewModel) SlewEnergyJ(angleDeg float64) float64 {
	return s.PowerW * s.SlewTime(angleDeg).Seconds()
}
