package phy

import (
	"fmt"
	"math"
)

// Atmosphere models the excess loss a satellite–ground radio link suffers on
// top of free-space loss. ISLs in vacuum have none; ground links see gas
// absorption and rain scaling with the air mass along the slant path — the
// reason the paper notes that ground up/downlink bands "may differ due to
// factors such as atmospheric attenuation" (§2.1).
type Atmosphere struct {
	ZenithLossDB float64 // clear-sky loss straight up
	RainMarginDB float64 // additional budgeted rain fade at zenith
}

// ClearSky returns a benign atmosphere for the given band; attenuation grows
// with frequency, which is what pushes ground links toward Ku rather than Ka
// in rainy regions.
func ClearSky(b Band) Atmosphere {
	switch b {
	case BandUHF:
		return Atmosphere{ZenithLossDB: 0.1}
	case BandS:
		return Atmosphere{ZenithLossDB: 0.2}
	case BandKu:
		return Atmosphere{ZenithLossDB: 0.5, RainMarginDB: 3}
	case BandKa:
		return Atmosphere{ZenithLossDB: 1.0, RainMarginDB: 8}
	default:
		return Atmosphere{}
	}
}

// LossDB returns the slant-path loss at elevationDeg. Gaseous absorption
// scales with the cosecant air-mass model, clamped at low elevations where
// the flat-atmosphere approximation diverges (a 5° floor corresponds to ~11
// air masses); the rain margin is a fixed budgeted fade, as link budgets
// conventionally allocate it.
func (a Atmosphere) LossDB(elevationDeg float64) float64 {
	if elevationDeg < 5 {
		elevationDeg = 5
	}
	airMass := 1 / math.Sin(elevationDeg*math.Pi/180)
	return a.ZenithLossDB*airMass + a.RainMarginDB
}

// GroundLink couples a space-side and a ground-side RF terminal through an
// atmosphere. The space terminal transmits on the downlink and receives on
// the uplink; the budget below evaluates the downlink direction, normally
// the binding constraint for user traffic.
type GroundLink struct {
	Space      RFTerminal
	Ground     RFTerminal
	Atmosphere Atmosphere
}

// Validate checks both terminals and that they share a band.
func (g GroundLink) Validate() error {
	if err := g.Space.Validate(); err != nil {
		return err
	}
	if err := g.Ground.Validate(); err != nil {
		return err
	}
	if g.Space.Band != g.Ground.Band {
		return fmt.Errorf("phy: ground link bands differ: %v vs %v", g.Space.Band, g.Ground.Band)
	}
	return nil
}

// Budget evaluates the downlink at the given slant range and elevation.
// The composite link uses the space terminal's transmitter and the ground
// terminal's receiver.
func (g GroundLink) Budget(slantRangeKm, elevationDeg float64) Budget {
	composite := g.Space
	composite.RxGainDBi = g.Ground.RxGainDBi
	composite.NoiseTempK = g.Ground.NoiseTempK
	// The tighter of the two channel bandwidths governs.
	if g.Ground.BandwidthHz < composite.BandwidthHz {
		composite.BandwidthHz = g.Ground.BandwidthHz
	}
	return composite.Budget(slantRangeKm, g.Atmosphere.LossDB(elevationDeg))
}

// DefaultGroundLink returns the standard OpenSpace Ku-band gateway link:
// a satellite Ku transmitter against a gateway dish through clear sky.
func DefaultGroundLink() GroundLink {
	space := GroundKu()
	space.Name = "openspace-sat-ku"
	space.TxGainDBi = 30 // phased array on the satellite
	space.RxGainDBi = 30
	return GroundLink{
		Space:      space,
		Ground:     GroundKu(),
		Atmosphere: ClearSky(BandKu),
	}
}
