// Package phy models the physical layer of OpenSpace links: RF and optical
// (laser) inter-satellite links, and satellite–ground radio links.
//
// The paper (§2.1) mandates that every OpenSpace satellite supports RF ISLs
// in the proven S/UHF bands as the lowest common denominator, with optical
// terminals as an optional upgrade whose throughput is much higher but whose
// cost (~$500k), mass (≥15 kg) and pointing requirements gate small
// spacecraft out. This package encodes those trade-offs quantitatively:
// standard link-budget arithmetic (EIRP, free-space path loss, noise floor)
// feeding a Shannon-capacity estimate, plus the pointing/acquisition/tracking
// (PAT) timing and slew model that governs how quickly a laser link can be
// (re-)established.
//
// Conventions: distances in kilometres, frequencies in hertz, powers in
// watts, gains and losses in decibels, capacities in bits per second.
package phy

import (
	"fmt"
	"math"
	"time"
)

// SpeedOfLightKmS is the speed of light in km/s, used for propagation delay.
const SpeedOfLightKmS = 299792.458

// BoltzmannJK is the Boltzmann constant in joules per kelvin.
const BoltzmannJK = 1.380649e-23

// Band identifies a spectrum band used by OpenSpace links.
type Band int

// Bands used by OpenSpace. UHF and S-band are the paper's mandated ISL
// spectra ("tried and tested in various missions"); Ku-band is the ground
// segment band licensed for satellite broadband in the US; Ka is included
// for high-capacity gateway links; Optical is the laser upgrade path.
const (
	BandUHF Band = iota
	BandS
	BandKu
	BandKa
	BandOptical
)

// String implements fmt.Stringer.
func (b Band) String() string {
	switch b {
	case BandUHF:
		return "UHF"
	case BandS:
		return "S-band"
	case BandKu:
		return "Ku-band"
	case BandKa:
		return "Ka-band"
	case BandOptical:
		return "optical"
	default:
		return fmt.Sprintf("Band(%d)", int(b))
	}
}

// CenterFrequencyHz returns the representative carrier frequency of the band.
func (b Band) CenterFrequencyHz() float64 {
	switch b {
	case BandUHF:
		return 435e6 // amateur/smallsat UHF allocation
	case BandS:
		return 2.25e9
	case BandKu:
		return 12e9
	case BandKa:
		return 27.5e9
	case BandOptical:
		return SpeedOfLightKmS * 1e3 / 1550e-9 // 1550 nm telecom wavelength
	default:
		return 0
	}
}

// TypicalBandwidthHz returns a representative channel bandwidth for the band.
func (b Band) TypicalBandwidthHz() float64 {
	switch b {
	case BandUHF:
		return 100e3
	case BandS:
		return 5e6
	case BandKu:
		return 250e6
	case BandKa:
		return 500e6
	case BandOptical:
		return 10e9
	default:
		return 0
	}
}

// FreeSpacePathLossDB returns the free-space path loss in dB for a link of
// the given distance and frequency: 20·log10(4πd/λ).
func FreeSpacePathLossDB(distanceKm, freqHz float64) float64 {
	if distanceKm <= 0 || freqHz <= 0 {
		return 0
	}
	dM := distanceKm * 1e3
	lambda := SpeedOfLightKmS * 1e3 / freqHz
	return 20 * math.Log10(4*math.Pi*dM/lambda)
}

// NoisePowerW returns thermal noise power kTB in watts.
func NoisePowerW(noiseTempK, bandwidthHz float64) float64 {
	return BoltzmannJK * noiseTempK * bandwidthHz
}

// DBToLinear converts decibels to a linear power ratio.
func DBToLinear(db float64) float64 { return math.Pow(10, db/10) }

// LinearToDB converts a linear power ratio to decibels.
func LinearToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

// ShannonCapacityBps returns the Shannon channel capacity B·log2(1+SNR) in
// bits/s for a linear SNR. Real modems achieve a fraction of this; Budget
// applies an implementation margin before reporting a data rate.
func ShannonCapacityBps(bandwidthHz, snrLinear float64) float64 {
	if snrLinear <= 0 || bandwidthHz <= 0 {
		return 0
	}
	return bandwidthHz * math.Log2(1+snrLinear)
}

// PropagationDelay returns the one-way propagation delay over distanceKm.
// This is the quantity the paper's Figure 2(b) estimates from path length.
func PropagationDelay(distanceKm float64) time.Duration {
	if distanceKm <= 0 {
		return 0
	}
	return time.Duration(distanceKm / SpeedOfLightKmS * float64(time.Second))
}

// Budget is the outcome of evaluating a link at a particular distance.
type Budget struct {
	DistanceKm  float64
	Band        Band
	EIRPdBW     float64       // transmit power + tx antenna gain
	PathLossDB  float64       // free-space + excess losses
	RxPowerDBW  float64       // received signal power
	NoiseDBW    float64       // thermal noise floor
	SNRdB       float64       // RxPower - Noise
	CapacityBps float64       // achievable data rate after margin
	Delay       time.Duration // one-way propagation delay
	Closed      bool          // true when SNR clears the required threshold
}

// String implements fmt.Stringer.
func (b Budget) String() string {
	state := "open"
	if b.Closed {
		state = "closed"
	}
	return fmt.Sprintf("budget{%s %.0f km: SNR %.1f dB, %.1f Mbps, %s}",
		b.Band, b.DistanceKm, b.SNRdB, b.CapacityBps/1e6, state)
}
