package phy

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestBandStrings(t *testing.T) {
	for b, want := range map[Band]string{
		BandUHF: "UHF", BandS: "S-band", BandKu: "Ku-band",
		BandKa: "Ka-band", BandOptical: "optical", Band(99): "Band(99)",
	} {
		if got := b.String(); got != want {
			t.Errorf("Band(%d).String() = %q, want %q", int(b), got, want)
		}
	}
}

func TestBandFrequenciesOrdered(t *testing.T) {
	// Frequencies must increase UHF < S < Ku < Ka < optical.
	bands := []Band{BandUHF, BandS, BandKu, BandKa, BandOptical}
	prev := 0.0
	for _, b := range bands {
		f := b.CenterFrequencyHz()
		if f <= prev {
			t.Fatalf("%v frequency %v not increasing", b, f)
		}
		prev = f
		if b.TypicalBandwidthHz() <= 0 {
			t.Errorf("%v has no bandwidth", b)
		}
	}
	if Band(99).CenterFrequencyHz() != 0 || Band(99).TypicalBandwidthHz() != 0 {
		t.Error("unknown band should report zero frequency and bandwidth")
	}
}

func TestFreeSpacePathLoss(t *testing.T) {
	// Textbook value: 1000 km at 2.25 GHz → ~159.5 dB.
	got := FreeSpacePathLossDB(1000, 2.25e9)
	if !almostEqual(got, 159.5, 0.2) {
		t.Errorf("FSPL(1000 km, S-band) = %v, want ~159.5", got)
	}
	// Doubling distance adds 6.02 dB.
	d1 := FreeSpacePathLossDB(500, 2.25e9)
	d2 := FreeSpacePathLossDB(1000, 2.25e9)
	if !almostEqual(d2-d1, 6.0206, 1e-3) {
		t.Errorf("doubling distance added %v dB, want 6.02", d2-d1)
	}
	// Degenerate inputs.
	if FreeSpacePathLossDB(0, 1e9) != 0 || FreeSpacePathLossDB(100, 0) != 0 {
		t.Error("degenerate FSPL should be 0")
	}
}

func TestDBConversions(t *testing.T) {
	f := func(db float64) bool {
		db = math.Mod(db, 200)
		return almostEqual(LinearToDB(DBToLinear(db)), db, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	if !math.IsInf(LinearToDB(0), -1) {
		t.Error("LinearToDB(0) should be -Inf")
	}
}

func TestShannonCapacity(t *testing.T) {
	// SNR = 1 → C = B.
	if got := ShannonCapacityBps(1e6, 1); !almostEqual(got, 1e6, 1) {
		t.Errorf("C(B=1M, SNR=1) = %v, want 1e6", got)
	}
	// SNR = 3 → C = 2B.
	if got := ShannonCapacityBps(1e6, 3); !almostEqual(got, 2e6, 1) {
		t.Errorf("C(B=1M, SNR=3) = %v, want 2e6", got)
	}
	if ShannonCapacityBps(0, 10) != 0 || ShannonCapacityBps(1e6, 0) != 0 {
		t.Error("degenerate capacity should be 0")
	}
}

func TestPropagationDelay(t *testing.T) {
	// 299792.458 km → exactly 1 s.
	if got := PropagationDelay(SpeedOfLightKmS); got != time.Second {
		t.Errorf("delay = %v, want 1s", got)
	}
	// 1000 km ≈ 3.336 ms.
	got := PropagationDelay(1000)
	if got < 3300*time.Microsecond || got > 3400*time.Microsecond {
		t.Errorf("delay(1000 km) = %v, want ~3.34 ms", got)
	}
	if PropagationDelay(0) != 0 || PropagationDelay(-5) != 0 {
		t.Error("non-positive distance should give zero delay")
	}
}

func TestRFTerminalValidate(t *testing.T) {
	good := []RFTerminal{StandardUHF(), StandardSBand(), GroundKu()}
	for _, tt := range good {
		if err := tt.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tt.Name, err)
		}
	}
	bad := StandardUHF()
	bad.TxPowerW = 0
	if bad.Validate() == nil {
		t.Error("zero power should be invalid")
	}
	bad = StandardUHF()
	bad.BandwidthHz = -1
	if bad.Validate() == nil {
		t.Error("negative bandwidth should be invalid")
	}
	bad = StandardUHF()
	bad.NoiseTempK = 0
	if bad.Validate() == nil {
		t.Error("zero noise temperature should be invalid")
	}
}

func TestRFBudgetMonotonic(t *testing.T) {
	// SNR and capacity fall with distance.
	term := StandardSBand()
	prevSNR := math.Inf(1)
	for _, d := range []float64{100, 500, 1000, 2000, 4000} {
		b := term.Budget(d, 0)
		if b.SNRdB >= prevSNR {
			t.Fatalf("SNR did not fall at %v km", d)
		}
		prevSNR = b.SNRdB
		if b.Delay != PropagationDelay(d) {
			t.Errorf("budget delay mismatch at %v km", d)
		}
	}
}

func TestRFLinkCloses(t *testing.T) {
	// The standard terminals must close at representative ISL ranges:
	// adjacent Iridium satellites in-plane are ~4000 km apart at most;
	// the UHF baseline is narrowband and should still close at 2000 km.
	if b := StandardUHF().Budget(2000, 0); !b.Closed {
		t.Errorf("UHF should close at 2000 km: %v", b)
	}
	if b := StandardSBand().Budget(4000, 0); !b.Closed {
		t.Errorf("S-band should close at 4000 km: %v", b)
	}
	// And must fail at absurd range.
	if b := StandardUHF().Budget(500000, 0); b.Closed {
		t.Errorf("UHF should not close at 500000 km: %v", b)
	}
	// Closed=false zeroes capacity.
	if b := StandardUHF().Budget(500000, 0); b.CapacityBps != 0 {
		t.Error("open link should have zero capacity")
	}
}

func TestMaxRange(t *testing.T) {
	term := StandardUHF()
	maxR := term.MaxRangeKm(0, 1e6)
	if maxR <= 2000 || maxR >= 1e6 {
		t.Fatalf("UHF max range = %v, want within (2000, 1e6)", maxR)
	}
	// Budget closes just inside and fails just outside.
	if !term.Budget(maxR-1, 0).Closed {
		t.Error("link should close just inside max range")
	}
	if term.Budget(maxR+10, 0).Closed {
		t.Error("link should fail just past max range")
	}
	// A terminal that cannot close at all.
	weak := StandardUHF()
	weak.TxPowerW = 1e-15
	if weak.MaxRangeKm(0, 1e6) != 0 {
		t.Error("hopeless link should report zero range")
	}
	// A link that closes at the limit returns the limit.
	if got := StandardSBand().MaxRangeKm(0, 100); got != 100 {
		t.Errorf("range-limited link = %v, want 100", got)
	}
}

func TestSlewModel(t *testing.T) {
	s := DefaultSlew()
	// Slewing 90° at 1.5°/s takes 60 s + settle.
	want := 60*time.Second + s.SettleTime
	if got := s.SlewTime(90); got != want {
		t.Errorf("SlewTime(90) = %v, want %v", got, want)
	}
	if got := s.SlewTime(0); got != s.SettleTime {
		t.Errorf("SlewTime(0) = %v, want settle only", got)
	}
	if s.SlewEnergyJ(90) != s.PowerW*want.Seconds() {
		t.Error("slew energy mismatch")
	}
}
