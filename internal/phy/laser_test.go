package phy

import (
	"math"
	"testing"
)

func TestConLCT80MatchesPaperSpecs(t *testing.T) {
	// The paper's published reference numbers (§2.1).
	l := ConLCT80()
	if l.CostUSD != 500_000 {
		t.Errorf("cost = %v, want 500000", l.CostUSD)
	}
	if l.MassKg != 15 {
		t.Errorf("mass = %v, want 15", l.MassKg)
	}
	if l.VolumeM3 != 0.0234 {
		t.Errorf("volume = %v, want 0.0234", l.VolumeM3)
	}
	if err := l.Validate(); err != nil {
		t.Errorf("reference terminal invalid: %v", err)
	}
}

func TestLaserValidate(t *testing.T) {
	cases := []func(*LaserTerminal){
		func(l *LaserTerminal) { l.TxPowerW = 0 },
		func(l *LaserTerminal) { l.ApertureM = 0 },
		func(l *LaserTerminal) { l.WavelengthM = -1 },
		func(l *LaserTerminal) { l.DataRateBps = 0 },
	}
	for i, mutate := range cases {
		l := ConLCT80()
		mutate(&l)
		if l.Validate() == nil {
			t.Errorf("case %d should be invalid", i)
		}
	}
}

func TestLaserBudgetClosesAtISLRange(t *testing.T) {
	l := ConLCT80()
	// LEO crosslink ranges: up to ~5000 km.
	for _, d := range []float64{500, 1000, 3000, 5000} {
		b := l.Budget(d)
		if !b.Closed {
			t.Errorf("laser should close at %v km: %v", d, b)
		}
		if b.CapacityBps != l.DataRateBps {
			t.Errorf("closed laser capacity = %v, want rated %v", b.CapacityBps, l.DataRateBps)
		}
	}
}

func TestLaserMaxRange(t *testing.T) {
	l := ConLCT80()
	maxR := l.MaxRangeKm(1e7)
	if maxR < 5000 {
		t.Fatalf("laser max range = %v, want ≥ 5000 km", maxR)
	}
	if !l.Budget(maxR - 1).Closed {
		t.Error("should close just inside max range")
	}
	if l.Budget(maxR + 100).Closed {
		t.Error("should fail just outside max range")
	}
	weak := ConLCT80()
	weak.TxPowerW = 1e-30
	if weak.MaxRangeKm(1e7) != 0 {
		t.Error("hopeless laser should report zero range")
	}
}

func TestLaserBeatsRFOnThroughputAndEnergy(t *testing.T) {
	// The paper's claim: "Laser technology offers a higher throughput than
	// RF, with lower energy cost."
	l := ConLCT80()
	rf := StandardSBand()
	const d = 2000.0
	lb, rb := l.Budget(d), rf.Budget(d, 0)
	if !lb.Closed || !rb.Closed {
		t.Fatalf("both links must close at %v km", d)
	}
	if lb.CapacityBps <= 10*rb.CapacityBps {
		t.Errorf("laser capacity %v should exceed RF %v by >10x", lb.CapacityBps, rb.CapacityBps)
	}
	if l.EnergyPerBitJ(d) >= rf.EnergyPerBitJ(d) {
		t.Errorf("laser energy/bit %v should be below RF %v",
			l.EnergyPerBitJ(d), rf.EnergyPerBitJ(d))
	}
}

func TestLaserButCostlierAndHeavierThanRF(t *testing.T) {
	// The flip side (§2.1): laser terminals are infeasible for small
	// spacecraft on cost and mass.
	l := ConLCT80()
	rf := StandardUHF()
	if l.CostUSD <= rf.CostUSD || l.MassKg <= rf.MassKg {
		t.Error("laser must cost and weigh more than the RF baseline")
	}
}

func TestLaserEnergyPerBitInfWhenOpen(t *testing.T) {
	l := ConLCT80()
	if !math.IsInf(l.EnergyPerBitJ(1e9), 1) {
		t.Error("energy per bit over an open link should be +Inf")
	}
	rf := StandardUHF()
	if !math.IsInf(rf.EnergyPerBitJ(1e9), 1) {
		t.Error("RF energy per bit over an open link should be +Inf")
	}
}

func TestAcquireTime(t *testing.T) {
	l := ConLCT80()
	if got := l.AcquireTime(); got != l.AcquisitionTime+l.TrackingLockTime {
		t.Errorf("AcquireTime = %v", got)
	}
}
