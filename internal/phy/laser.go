package phy

import (
	"fmt"
	"math"
	"time"
)

// LaserTerminal describes an optical inter-satellite link terminal. The
// paper's reference numbers (§2.1, citing the Tesat ConLCT80) are a cost of
// about $500,000, at least 15 kg of mass and 0.0234 m³ of volume — "infeasible
// specifications for smaller spacecraft", which is why OpenSpace treats laser
// links as an optional capability layered over the mandatory RF baseline.
type LaserTerminal struct {
	Name             string
	TxPowerW         float64 // optical output power
	ApertureM        float64 // telescope aperture diameter
	WavelengthM      float64
	RxSensitivityDBW float64 // receiver sensitivity at the required BER
	DataRateBps      float64 // rated throughput when the link closes
	PointingLossDB   float64
	// Pointing, acquisition and tracking (§2.1: PAT methods from prior work
	// are adapted for optical ISLs).
	BeamDivergenceRad float64       // full beam divergence
	AcquisitionTime   time.Duration // open-loop scan to find the peer
	TrackingLockTime  time.Duration // closed-loop fine lock
	MassKg            float64
	VolumeM3          float64
	PowerDrawW        float64
	CostUSD           float64
}

// Validate reports whether the terminal parameters are physically sensible.
func (t LaserTerminal) Validate() error {
	if t.TxPowerW <= 0 {
		return fmt.Errorf("phy: laser %q: tx power must be positive", t.Name)
	}
	if t.ApertureM <= 0 || t.WavelengthM <= 0 {
		return fmt.Errorf("phy: laser %q: aperture and wavelength must be positive", t.Name)
	}
	if t.DataRateBps <= 0 {
		return fmt.Errorf("phy: laser %q: data rate must be positive", t.Name)
	}
	return nil
}

// antennaGainDB returns the diffraction-limited telescope gain (πD/λ)².
func (t LaserTerminal) antennaGainDB() float64 {
	g := math.Pi * t.ApertureM / t.WavelengthM
	return LinearToDB(g * g)
}

// Budget evaluates the optical link at distanceKm. Optical ISLs operate in
// vacuum, so there is no excess-loss term; the gate is received power versus
// receiver sensitivity rather than thermal SNR.
func (t LaserTerminal) Budget(distanceKm float64) Budget {
	freq := SpeedOfLightKmS * 1e3 / t.WavelengthM
	gain := t.antennaGainDB()
	eirp := LinearToDB(t.TxPowerW) + gain
	pl := FreeSpacePathLossDB(distanceKm, freq) + t.PointingLossDB
	rx := eirp - pl + gain // same telescope both ends
	margin := rx - t.RxSensitivityDBW
	closed := margin >= 0
	capBps := t.DataRateBps
	if !closed {
		capBps = 0
	}
	return Budget{
		DistanceKm:  distanceKm,
		Band:        BandOptical,
		EIRPdBW:     eirp,
		PathLossDB:  pl,
		RxPowerDBW:  rx,
		NoiseDBW:    t.RxSensitivityDBW,
		SNRdB:       margin,
		CapacityBps: capBps,
		Delay:       PropagationDelay(distanceKm),
		Closed:      closed,
	}
}

// MaxRangeKm returns the longest distance at which the optical link closes,
// searched by bisection up to limitKm.
func (t LaserTerminal) MaxRangeKm(limitKm float64) float64 {
	if !t.Budget(1).Closed {
		return 0
	}
	if t.Budget(limitKm).Closed {
		return limitKm
	}
	lo, hi := 1.0, limitKm
	for hi-lo > 0.1 {
		mid := (lo + hi) / 2
		if t.Budget(mid).Closed {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// EnergyPerBitJ returns the DC energy per delivered bit. Compare with
// RFTerminal.EnergyPerBitJ: lasers deliver orders of magnitude more bits per
// joule, the quantitative form of the paper's "higher throughput than RF,
// with lower energy cost".
func (t LaserTerminal) EnergyPerBitJ(distanceKm float64) float64 {
	b := t.Budget(distanceKm)
	if b.CapacityBps == 0 {
		return math.Inf(1)
	}
	return t.PowerDrawW / b.CapacityBps
}

// AcquireTime returns the total time to establish the optical link once both
// spacecraft are oriented: open-loop acquisition scan plus fine-tracking
// lock. The narrow transmission beam the paper highlights is what makes this
// phase necessary at all — an RF link (broad beam, broadcast-capable) has no
// equivalent.
func (t LaserTerminal) AcquireTime() time.Duration {
	return t.AcquisitionTime + t.TrackingLockTime
}

// ConLCT80 returns a laser terminal with the paper's published reference
// specifications: $500k, 15 kg, 0.0234 m³, multi-Gbps class.
func ConLCT80() LaserTerminal {
	return LaserTerminal{
		Name:              "conlct80",
		TxPowerW:          2,
		ApertureM:         0.08,
		WavelengthM:       1550e-9,
		RxSensitivityDBW:  -72, // ≈ -42 dBm, coherent receiver at multi-Gbps
		DataRateBps:       1.8e9,
		PointingLossDB:    3,
		BeamDivergenceRad: 25e-6,
		AcquisitionTime:   20 * time.Second,
		TrackingLockTime:  5 * time.Second,
		MassKg:            15,
		VolumeM3:          0.0234,
		PowerDrawW:        80,
		CostUSD:           500_000,
	}
}
