package phy

import (
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// DopplerShiftHz returns the carrier frequency shift seen by a receiver
// when the transmitter closes at radialVelocityKmS (positive = approaching,
// which raises the received frequency). LEO passes sweep roughly ±7 km/s
// of radial velocity, i.e. tens of kHz at S-band — the reason the paper
// requires OpenSpace transceivers to "function over a wide range of
// frequencies" (§2.1).
func DopplerShiftHz(freqHz, radialVelocityKmS float64) float64 {
	return freqHz * radialVelocityKmS / SpeedOfLightKmS
}

// RadialVelocityKmS returns the range rate between a ground observer and a
// satellite at time t: negative when the range is opening (satellite
// receding). Computed by central differencing of the slant range, exact
// enough for Doppler planning.
func RadialVelocityKmS(e orbit.Elements, obs geo.LatLon, t float64) float64 {
	const dt = 0.5
	r0 := e.PositionECEF(t - dt).DistanceKm(obs.Vec3(0))
	r1 := e.PositionECEF(t + dt).DistanceKm(obs.Vec3(0))
	// Closing speed is the negative range rate.
	return -(r1 - r0) / (2 * dt)
}

// DopplerProfile samples the Doppler shift over a pass: shifts[i]
// corresponds to startS + i·stepS. Receivers size their acquisition
// bandwidth from the profile's extremes.
func DopplerProfile(e orbit.Elements, obs geo.LatLon, freqHz, startS, endS, stepS float64) []float64 {
	if stepS <= 0 || endS < startS {
		return nil
	}
	n := int((endS-startS)/stepS) + 1
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		t := startS + float64(i)*stepS
		out[i] = DopplerShiftHz(freqHz, RadialVelocityKmS(e, obs, t))
	}
	return out
}
