package traffic

import (
	"fmt"
	"math"

	"github.com/openspace-project/openspace/internal/routing"
)

// AllocConfig parameterises the max-min fair allocator.
type AllocConfig struct {
	// KPaths is how many loopless shortest paths (routing.KShortestPaths)
	// are considered per demand; the widest of them — largest bottleneck
	// capacity under this network's capacity map — carries the demand.
	// ≤ 0 means 1 (pure shortest path).
	KPaths int
	// Cost scores candidate paths. Nil means GatewayTransitCost: latency
	// with user access links excluded.
	Cost routing.CostFunc
}

// DemandAllocation is one demand's outcome.
type DemandAllocation struct {
	Demand
	// Path is the node sequence carrying the demand; nil when the network
	// offers no route.
	Path []string
	// RateBps is the allocated rate, ≤ OfferedBps.
	RateBps float64
	// Bottleneck names the saturated link that froze this demand's rate.
	// It is the zero LinkID when the demand is fully satisfied or has no
	// path.
	Bottleneck LinkID
}

// Satisfied reports whether the demand got its full offered rate.
func (d *DemandAllocation) Satisfied() bool {
	return d.Path != nil && d.RateBps >= d.OfferedBps
}

// Allocation is a complete max-min fair assignment. It implements
// routing.LoadMap, so a finished allocation can feed load-aware QoS routing
// directly.
type Allocation struct {
	Demands  []DemandAllocation
	net      *Network
	linkLoad map[LinkID]float64
}

var _ routing.LoadMap = (*Allocation)(nil)

// Utilization implements routing.LoadMap: the carried fraction of the
// directed link's capacity, in [0, 1].
func (a *Allocation) Utilization(from, to string) float64 {
	c := a.net.CapacityBps(from, to)
	if c <= 0 {
		return 0
	}
	u := a.linkLoad[LinkID{from, to}] / c
	if u > 1 {
		return 1
	}
	return u
}

// OfferedBps sums the offered load over all demands.
func (a *Allocation) OfferedBps() float64 {
	var total float64
	for i := range a.Demands {
		total += a.Demands[i].OfferedBps
	}
	return total
}

// CarriedBps sums the allocated rates: the traffic the constellation
// actually carries.
func (a *Allocation) CarriedBps() float64 {
	var total float64
	for i := range a.Demands {
		total += a.Demands[i].RateBps
	}
	return total
}

// SatisfiedFraction is carried/offered load, 1 with no demands.
func (a *Allocation) SatisfiedFraction() float64 {
	off := a.OfferedBps()
	if off <= 0 {
		return 1
	}
	return a.CarriedBps() / off
}

// JainIndex is Jain's fairness index over the per-demand satisfaction
// ratios rate/offered: 1 when every demand gets the same share of its ask,
// approaching 1/n when one demand starves the rest. 1 with no demands.
func (a *Allocation) JainIndex() float64 {
	var sum, sumSq float64
	n := 0
	for i := range a.Demands {
		d := &a.Demands[i]
		if d.OfferedBps <= 0 {
			continue
		}
		x := d.RateBps / d.OfferedBps
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// MaxUtilization returns the most loaded link and its utilisation — the
// system bottleneck. The zero LinkID is returned when nothing is loaded.
func (a *Allocation) MaxUtilization() (LinkID, float64) {
	var best LinkID
	var bestU float64
	for _, id := range a.net.Links() {
		if u := a.Utilization(id.From, id.To); u > bestU {
			best, bestU = id, u
		}
	}
	return best, bestU
}

// fillState is the progressive-filling working set with links interned
// into dense indices, so the fill loop runs over slices instead of
// recomputing per-link membership maps every round. Everything here is
// preallocated before run starts: the kernel itself must not allocate
// (see TestAllocGateMaxMinFill).
type fillState struct {
	eps       float64
	linkIdx   map[LinkID]int32 //lint:scratch
	linkIDs   []LinkID         //lint:scratch
	linkCap   []float64        //lint:scratch
	linkLoad  []float64        //lint:scratch
	linkUsers []int32          //lint:scratch — active demands per link, decremented on freeze
	demLinks  [][]int32        //lint:scratch — interned link indices per demand, path order
	active    []bool           //lint:scratch
	nActive   int
}

// intern maps one of a demand's path links to its dense index, creating
// the link's capacity/load/user slots on first sight. Loopless paths
// never repeat a link, but dedup keeps the per-demand user count exact
// regardless.
func (st *fillState) intern(dem int, l LinkID, n *Network) {
	li, ok := st.linkIdx[l]
	if !ok {
		li = int32(len(st.linkIDs))
		st.linkIdx[l] = li
		st.linkIDs = append(st.linkIDs, l)
		st.linkCap = append(st.linkCap, n.caps[l])
		st.linkLoad = append(st.linkLoad, 0)
		st.linkUsers = append(st.linkUsers, 0)
	}
	for _, existing := range st.demLinks[dem] {
		if existing == li {
			return
		}
	}
	st.demLinks[dem] = append(st.demLinks[dem], li)
}

// freeze takes demand i out of the fill and releases its link shares.
func (st *fillState) freeze(i int) {
	st.active[i] = false
	st.nActive--
	for _, li := range st.demLinks[i] {
		st.linkUsers[li]--
	}
}

// run is the progressive-filling kernel: every unfrozen demand's rate
// rises at the same pace; a demand freezes when it reaches its offered
// load or when a link on its path saturates. Rounds, demands, and links
// are traversed in fixed order, and each round adds one identical delta
// per active user to each link's load, so the result is bit-identical to
// the pre-interning map-based implementation.
//
//lint:hotpath
func (st *fillState) run(dems []DemandAllocation) {
	for st.nActive > 0 {
		// The uniform rate increment until the first event: a link
		// saturating or a demand reaching its offered load.
		delta := math.Inf(1)
		for i := range dems {
			if !st.active[i] {
				continue
			}
			if room := dems[i].OfferedBps - dems[i].RateBps; room < delta {
				delta = room
			}
			for _, li := range st.demLinks[i] {
				if nu := st.linkUsers[li]; nu > 0 {
					if room := (st.linkCap[li] - st.linkLoad[li]) / float64(nu); room < delta {
						delta = room
					}
				}
			}
		}
		if delta < 0 {
			delta = 0
		}
		for i := range dems {
			if !st.active[i] {
				continue
			}
			dems[i].RateBps += delta
			for _, li := range st.demLinks[i] {
				st.linkLoad[li] += delta
			}
		}
		// Freeze demands at their offered load or behind a saturated link.
		froze := false
		for i := range dems {
			if !st.active[i] {
				continue
			}
			d := &dems[i]
			if d.RateBps >= d.OfferedBps-st.eps {
				d.RateBps = d.OfferedBps
				st.freeze(i)
				froze = true
				continue
			}
			for _, li := range st.demLinks[i] {
				if st.linkLoad[li] >= st.linkCap[li]-st.eps {
					d.Bottleneck = st.linkIDs[li]
					st.freeze(i)
					froze = true
					break
				}
			}
		}
		if !froze {
			// Float-tolerance stall: nothing crossed a threshold despite a
			// minimal delta. Freeze everything at current rates to
			// guarantee termination; the allocation stays feasible.
			for i := range dems {
				if st.active[i] {
					st.freeze(i)
				}
			}
		}
	}
}

// prepareFill routes every demand onto the widest of its k shortest
// paths and builds the interned fill state — the allocating, cold half of
// MaxMinFair.
func prepareFill(n *Network, demands []Demand, cfg AllocConfig) (*Allocation, *fillState, error) {
	k := cfg.KPaths
	if k <= 0 {
		k = 1
	}
	cost := cfg.Cost
	if cost == nil {
		cost = GatewayTransitCost()
	}
	alloc := &Allocation{
		Demands:  make([]DemandAllocation, len(demands)),
		net:      n,
		linkLoad: make(map[LinkID]float64),
	}
	st := &fillState{
		eps:      n.eps(),
		linkIdx:  make(map[LinkID]int32),
		demLinks: make([][]int32, len(demands)),
		active:   make([]bool, len(demands)),
	}
	for i, d := range demands {
		alloc.Demands[i] = DemandAllocation{Demand: d}
		if d.OfferedBps < 0 {
			return nil, nil, fmt.Errorf("traffic: demand %s→%s has negative offered load", d.Src, d.Dst)
		}
		if n.Snap.Node(d.Src) == nil || n.Snap.Node(d.Dst) == nil {
			return nil, nil, fmt.Errorf("traffic: demand %s→%s references unknown node", d.Src, d.Dst)
		}
		paths, err := routing.KShortestPaths(n.Snap, d.Src, d.Dst, cost, k)
		if err != nil || len(paths) == 0 {
			continue // unroutable demand: rate stays 0
		}
		best, bestCap := -1, -1.0
		for pi, p := range paths {
			if c := pathBottleneckBps(n, p.Nodes); c > bestCap {
				best, bestCap = pi, c
			}
		}
		if bestCap <= 0 {
			continue // routable only over zero-capacity links
		}
		nodes := paths[best].Nodes
		alloc.Demands[i].Path = nodes
		for h := 0; h+1 < len(nodes); h++ {
			st.intern(i, LinkID{nodes[h], nodes[h+1]}, n)
		}
	}
	for i := range alloc.Demands {
		if alloc.Demands[i].Path != nil && alloc.Demands[i].OfferedBps > 0 {
			st.active[i] = true
			st.nActive++
			for _, li := range st.demLinks[i] {
				st.linkUsers[li]++
			}
		}
	}
	return alloc, st, nil
}

// MaxMinFair computes a max-min fair rate allocation for the demands by
// progressive filling: every unfrozen demand's rate rises at the same pace;
// a demand freezes when it reaches its offered load or when a link on its
// path saturates. The result has the max-min property — no demand's rate
// can be raised without lowering the rate of a demand that has no more —
// restricted to the single path each demand is assigned (the widest of its
// k shortest).
//
// The computation is deterministic: demands are processed in input order,
// links in sorted order, and path selection breaks ties toward the lower
// Yen rank.
func MaxMinFair(n *Network, demands []Demand, cfg AllocConfig) (*Allocation, error) {
	alloc, st, err := prepareFill(n, demands, cfg)
	if err != nil {
		return nil, err
	}
	st.run(alloc.Demands)
	for j, l := range st.linkIDs {
		if st.linkLoad[j] > 0 {
			alloc.linkLoad[l] = st.linkLoad[j]
		}
	}
	return alloc, nil
}

// pathBottleneckBps returns the smallest capacity along the node sequence
// under the network's capacity map (which may differ from the snapshot's
// edge capacities after Recapacitate).
func pathBottleneckBps(n *Network, nodes []string) float64 {
	bottleneck := math.Inf(1)
	for i := 0; i+1 < len(nodes); i++ {
		c := n.CapacityBps(nodes[i], nodes[i+1])
		if c < bottleneck {
			bottleneck = c
		}
	}
	if math.IsInf(bottleneck, 1) {
		return 0
	}
	return bottleneck
}
