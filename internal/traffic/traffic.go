// Package traffic is the capacity-planning layer of the repository: it puts
// offered load onto the link graph and answers whether a constellation can
// actually *carry* user traffic, the question the paper's §5(1) defers to
// "extensive simulation tools". The evaluation in §4 stops at propagation
// latency and coverage (Fig. 2b/2c); this package is the throughput
// analogue.
//
// The pipeline has three stages, each usable on its own:
//
//   - Demand matrices (demand.go): per-user offered load at world-city
//     populations is aggregated into gateway-pair demands, with gateway
//     eligibility decided by satellite visibility (internal/ground pass
//     schedules).
//   - Capacitated graphs (Network): a topo.Snapshot annotated with
//     per-directed-link capacities, either the snapshot's own or
//     re-derived from the phy link budgets (Shannon capacity for RF,
//     rated data rate for optical ISLs) at each link's actual length.
//   - Flow allocation: a deterministic Dinic max-flow with minimum cut
//     (maxflow.go) bounds what any routing could carry between two
//     gateways; progressive-filling max-min fairness over Yen k-shortest
//     paths (maxmin.go) reports what a fair multi-commodity allocation
//     does carry, per demand and per link.
//
// Everything is deterministic: node and link orders come from sorted
// snapshot iteration, and no function draws randomness, so experiment CSVs
// built on this package are byte-identical at any worker count.
package traffic

import (
	"sort"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/phy"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/topo"
)

// Demand is offered load between two snapshot nodes (normally gateways).
type Demand struct {
	Src, Dst   string
	OfferedBps float64
}

// LinkID identifies a directed link of a snapshot.
type LinkID struct{ From, To string }

// Network couples a topology snapshot with per-directed-link capacities.
// The snapshot supplies connectivity and path computation; the capacity map
// is the commodity being allocated. Capacities start as the snapshot's
// Edge.CapacityBps and can be re-derived from physical link budgets with
// Recapacitate.
type Network struct {
	Snap *topo.Snapshot
	caps map[LinkID]float64
}

// NewNetwork wraps a snapshot, taking capacities from its edges.
func NewNetwork(s *topo.Snapshot) *Network {
	n := &Network{Snap: s, caps: make(map[LinkID]float64, s.EdgeCount())}
	for _, id := range s.Nodes() {
		for _, e := range s.Neighbors(id) {
			n.caps[LinkID{e.From, e.To}] = e.CapacityBps
		}
	}
	return n
}

// CapacityBps returns the capacity of the directed link from→to, 0 if the
// link does not exist.
func (n *Network) CapacityBps(from, to string) float64 {
	return n.caps[LinkID{from, to}]
}

// Links returns every directed link in deterministic (from, to) order.
func (n *Network) Links() []LinkID {
	ids := make([]LinkID, 0, len(n.caps))
	for id := range n.caps {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if ids[a].From != ids[b].From {
			return ids[a].From < ids[b].From
		}
		return ids[a].To < ids[b].To
	})
	return ids
}

// maxCapacityBps returns the largest link capacity, used to scale the float
// tolerances of the solvers.
func (n *Network) maxCapacityBps() float64 {
	var max float64
	for _, c := range n.caps {
		if c > max {
			max = c
		}
	}
	return max
}

// eps returns the saturation tolerance for this network's capacity scale.
func (n *Network) eps() float64 {
	e := n.maxCapacityBps() * 1e-9
	if e < 1e-12 {
		e = 1e-12
	}
	return e
}

// CapacityModel re-derives link capacities from the phy layer at each
// link's actual length, replacing the snapshot builder's fixed
// per-link-class constants. RF capacities come from the Shannon limit of
// the terminal's budget at the link distance (phy.ShannonCapacityBps under
// the hood); optical ISLs carry the terminal's rated data rate whenever the
// budget closes.
type CapacityModel struct {
	RF     phy.RFTerminal // RF inter-satellite links
	Laser  phy.LaserTerminal
	Ground phy.GroundLink // gateway up/down, elevation-dependent atmosphere
}

// DefaultCapacityModel returns the standard OpenSpace terminals: S-band RF
// ISLs, ConLCT80-class optical ISLs and the Ku gateway link.
func DefaultCapacityModel() CapacityModel {
	return CapacityModel{
		RF:     phy.StandardSBand(),
		Laser:  phy.ConLCT80(),
		Ground: phy.DefaultGroundLink(),
	}
}

// EdgeCapacityBps evaluates the model for one edge of the snapshot. Access
// (user-terminal) links keep the snapshot's capacity: user hardware is out
// of scope for the gateway-to-gateway capacity question.
func (m CapacityModel) EdgeCapacityBps(e topo.Edge, s *topo.Snapshot) float64 {
	switch e.Kind {
	case topo.LinkISLLaser:
		return m.Laser.Budget(e.DistanceKm).CapacityBps
	case topo.LinkISLRF:
		return m.RF.Budget(e.DistanceKm, 0).CapacityBps
	case topo.LinkGround:
		return m.Ground.Budget(e.DistanceKm, groundElevationDeg(e, s)).CapacityBps
	default:
		return e.CapacityBps
	}
}

// groundElevationDeg returns the elevation of the satellite end of a ground
// link as seen from the ground end, for the atmosphere's air-mass model.
func groundElevationDeg(e topo.Edge, s *topo.Snapshot) float64 {
	from, to := s.Node(e.From), s.Node(e.To)
	if from == nil || to == nil {
		return 90
	}
	gnd, sat := from, to
	if gnd.Kind == topo.KindSatellite {
		gnd, sat = to, from
	}
	return geo.ElevationDeg(gnd.Pos.LatLon(), sat.Pos)
}

// Recapacitate replaces every link capacity with the model's evaluation.
func (n *Network) Recapacitate(m CapacityModel) {
	for _, id := range n.Links() {
		if e, ok := n.Snap.Edge(id.From, id.To); ok {
			n.caps[id] = m.EdgeCapacityBps(e, n.Snap)
		}
	}
}

// GatewayTransitCost scores paths for gateway-to-gateway flows: pure
// propagation latency, with user access links unusable — user terminals do
// not relay transit traffic.
func GatewayTransitCost() routing.CostFunc {
	return func(e topo.Edge, _ *topo.Snapshot) (float64, bool) {
		if e.Kind == topo.LinkAccess {
			return 0, false
		}
		return e.DelayS, true
	}
}
