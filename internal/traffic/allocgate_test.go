package traffic

import (
	"os"
	"testing"
)

// allocGate skips unless the zero-allocation gates are explicitly enabled
// (OPENSPACE_ALLOC_GATE=1, as CI's alloc-gate step does).
func allocGate(t *testing.T) {
	t.Helper()
	if os.Getenv("OPENSPACE_ALLOC_GATE") == "" {
		t.Skip("set OPENSPACE_ALLOC_GATE=1 to run the zero-allocation gates")
	}
}

// TestAllocGateDinic pins the //lint:hotpath contract on dinicGraph.solve:
// once the residual graph is built, re-solving it (reset + phase loop)
// must touch only the receiver's preallocated scratch.
func TestAllocGateDinic(t *testing.T) {
	allocGate(t)
	n := sharedBottleneck(t)
	g := newDinicGraph(n)
	s, d := g.index["a"], g.index["c"]
	want := g.solve(s, d)
	run := func() {
		g.reset()
		if got := g.solve(s, d); got != want {
			t.Fatalf("re-solve value %v, want %v", got, want)
		}
	}
	run() // warm
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("dinic solve allocates %.2f per run, want 0", avg)
	}
}

// TestAllocGateMaxMinFill pins the //lint:hotpath contract on
// fillState.run: the progressive-filling kernel re-run from a snapshot of
// the prepared state must allocate nothing.
func TestAllocGateMaxMinFill(t *testing.T) {
	allocGate(t)
	n := sharedBottleneck(t)
	dems := []Demand{
		{Src: "a", Dst: "c", OfferedBps: 2},
		{Src: "b", Dst: "d", OfferedBps: 20},
	}
	alloc, st, err := prepareFill(n, dems, AllocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Snapshot the prepared state so the kernel restarts from scratch each
	// run without re-routing.
	demB := append([]DemandAllocation(nil), alloc.Demands...)
	loadB := append([]float64(nil), st.linkLoad...)
	usersB := append([]int32(nil), st.linkUsers...)
	activeB := append([]bool(nil), st.active...)
	nActiveB := st.nActive
	run := func() {
		copy(alloc.Demands, demB)
		copy(st.linkLoad, loadB)
		copy(st.linkUsers, usersB)
		copy(st.active, activeB)
		st.nActive = nActiveB
		st.run(alloc.Demands)
	}
	run() // warm
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("progressive-filling kernel allocates %.2f per run, want 0", avg)
	}
	if alloc.Demands[0].RateBps != 2 {
		t.Fatalf("small demand rate = %v after gated runs, want its full 2", alloc.Demands[0].RateBps)
	}
}
