package traffic

import (
	"fmt"
	"math"
	"sort"
)

// CutLink is one saturated link of a minimum cut.
type CutLink struct {
	LinkID
	CapacityBps float64
}

// MaxFlowResult is the outcome of one max-flow computation.
type MaxFlowResult struct {
	// ValueBps is the maximum src→dst flow.
	ValueBps float64
	// Flow carries the per-link flow of one maximum flow (only links with
	// positive flow appear).
	Flow map[LinkID]float64
	// MinCut is the bottleneck: a minimal set of saturated links whose
	// removal disconnects dst from src, sorted by (From, To). Its total
	// capacity equals ValueBps (max-flow/min-cut duality).
	MinCut []CutLink
}

// CutCapacityBps sums the cut links' capacities.
func (r *MaxFlowResult) CutCapacityBps() float64 {
	var total float64
	for _, c := range r.MinCut {
		total += c.CapacityBps
	}
	return total
}

// arc is one residual-graph arc. Forward arcs carry orig = initial
// capacity; residual counterparts have orig = 0.
type arc struct {
	to, rev   int32
	cap, orig float64
}

// dinicGraph is the indexed residual graph. Node indices follow the sorted
// snapshot node order, and arcs are inserted in sorted adjacency order, so
// the augmenting sequence — and with it every reported flow and cut — is
// deterministic.
type dinicGraph struct {
	nodes []string
	index map[string]int
	adj   [][]arc
	eps   float64
	// Scratch reused across phases and solves: the steady-state kernel
	// (solve/levels/augment) must not allocate (see TestAllocGateDinic)
	// and nothing aliasing these may leave the receiver (scratchsafe).
	level []int32 //lint:scratch
	queue []int32 //lint:scratch
	iter  []int32 //lint:scratch
}

func newDinicGraph(n *Network) *dinicGraph {
	ids := n.Snap.Nodes()
	g := &dinicGraph{
		nodes: ids,
		index: make(map[string]int, len(ids)),
		adj:   make([][]arc, len(ids)),
		eps:   n.eps(),
		level: make([]int32, len(ids)),
		queue: make([]int32, 0, len(ids)),
		iter:  make([]int32, len(ids)),
	}
	for i, id := range ids {
		g.index[id] = i
	}
	for _, id := range ids {
		u := g.index[id]
		for _, e := range n.Snap.Neighbors(id) {
			c := n.CapacityBps(e.From, e.To)
			if c <= 0 {
				continue
			}
			v := g.index[e.To]
			g.adj[u] = append(g.adj[u], arc{to: int32(v), rev: int32(len(g.adj[v])), cap: c, orig: c})
			g.adj[v] = append(g.adj[v], arc{to: int32(u), rev: int32(len(g.adj[u]) - 1), cap: 0, orig: 0})
		}
	}
	return g
}

// levels rebuilds the BFS level graph from src over arcs with residual
// capacity into the scratch level slice; it reports whether dst is still
// reachable. Every node enqueues at most once, so the preallocated queue
// never grows.
func (g *dinicGraph) levels(src, dst int) bool {
	for i := range g.level {
		g.level[i] = -1
	}
	g.level[src] = 0
	q := g.queue[:0]
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, a := range g.adj[u] {
			if a.cap > g.eps && g.level[a.to] < 0 {
				g.level[a.to] = g.level[u] + 1
				q = append(q, a.to)
			}
		}
	}
	return g.level[dst] >= 0
}

// augment pushes a blocking-flow DFS step of at most limit through the
// level graph, advancing the scratch iterators.
func (g *dinicGraph) augment(u, dst int, limit float64) float64 {
	if u == dst {
		return limit
	}
	for ; g.iter[u] < int32(len(g.adj[u])); g.iter[u]++ {
		a := &g.adj[u][g.iter[u]]
		if a.cap <= g.eps || g.level[a.to] != g.level[u]+1 {
			continue
		}
		pushed := g.augment(int(a.to), dst, math.Min(limit, a.cap))
		if pushed > 0 {
			a.cap -= pushed
			g.adj[a.to][a.rev].cap += pushed
			return pushed
		}
	}
	return 0
}

// solve runs Dinic's phase loop to completion and returns the max-flow
// value, mutating arc capacities into the residual of one maximum flow.
// This is the steady-state kernel: everything it touches is preallocated
// scratch on the receiver.
//
//lint:hotpath
func (g *dinicGraph) solve(s, t int) float64 {
	var value float64
	for g.levels(s, t) {
		for i := range g.iter {
			g.iter[i] = 0
		}
		for {
			pushed := g.augment(s, t, math.Inf(1))
			if pushed <= 0 {
				break
			}
			value += pushed
		}
	}
	return value
}

// reset restores every arc to its initial capacity so the same graph can
// be solved again without rebuilding (the alloc gate re-solves in a loop
// to prove the kernel allocates nothing).
func (g *dinicGraph) reset() {
	for u := range g.adj {
		for i := range g.adj[u] {
			g.adj[u][i].cap = g.adj[u][i].orig
		}
	}
}

// MaxFlow computes the maximum src→dst flow of the network with Dinic's
// algorithm, returning the flow value, a per-link flow assignment and the
// minimum cut. Capacities are bps but the solver is unit-agnostic.
func MaxFlow(n *Network, src, dst string) (*MaxFlowResult, error) {
	if n.Snap.Node(src) == nil {
		return nil, fmt.Errorf("traffic: unknown source %q", src)
	}
	if n.Snap.Node(dst) == nil {
		return nil, fmt.Errorf("traffic: unknown destination %q", dst)
	}
	if src == dst {
		return nil, fmt.Errorf("traffic: source and destination are both %q", src)
	}
	g := newDinicGraph(n)
	s, t := g.index[src], g.index[dst]
	value := g.solve(s, t)

	res := &MaxFlowResult{ValueBps: value, Flow: make(map[LinkID]float64)}
	for u := range g.adj {
		for _, a := range g.adj[u] {
			if flow := a.orig - a.cap; a.orig > 0 && flow > g.eps {
				res.Flow[LinkID{g.nodes[u], g.nodes[a.to]}] = flow
			}
		}
	}
	// Minimum cut: the saturated forward arcs crossing from the residual
	// graph's src-reachable side to the rest.
	reach := make([]bool, len(g.nodes))
	reach[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range g.adj[u] {
			if a.cap > g.eps && !reach[a.to] {
				reach[a.to] = true
				queue = append(queue, int(a.to))
			}
		}
	}
	for u := range g.adj {
		if !reach[u] {
			continue
		}
		for _, a := range g.adj[u] {
			if a.orig > 0 && !reach[a.to] {
				res.MinCut = append(res.MinCut, CutLink{
					LinkID:      LinkID{g.nodes[u], g.nodes[a.to]},
					CapacityBps: a.orig,
				})
			}
		}
	}
	sort.Slice(res.MinCut, func(a, b int) bool {
		if res.MinCut[a].From != res.MinCut[b].From {
			return res.MinCut[a].From < res.MinCut[b].From
		}
		return res.MinCut[a].To < res.MinCut[b].To
	})
	return res, nil
}
