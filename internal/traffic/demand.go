package traffic

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/ground"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
)

// Gateway is a candidate traffic ingress/egress point — a ground station
// that sells gateway service (§2.1's ground-station-as-a-service model).
type Gateway struct {
	ID  string
	Pos geo.LatLon
}

// DemandConfig parameterises demand-matrix generation.
type DemandConfig struct {
	// PerUserBps is each user's offered load.
	PerUserBps float64
	// TimeS and WindowS bound the visibility check: a gateway is "lit" —
	// eligible to carry traffic — when at least one satellite passes over
	// it within [TimeS, TimeS+WindowS] (ground.PassSchedule).
	TimeS, WindowS float64
	// MinElevationDeg is the gateway elevation mask for the pass check.
	MinElevationDeg float64
}

// DefaultDemandConfig returns a 25 Mbps broadband user against a 60 s
// visibility window at a 10° mask.
func DefaultDemandConfig() DemandConfig {
	return DemandConfig{PerUserBps: 25e6, WindowS: 60, MinElevationDeg: 10}
}

// DemandMatrix aggregates user offered load into gateway-pair demands.
type DemandMatrix struct {
	// Demands holds one entry per (ingress, egress) gateway pair with
	// nonzero load, sorted by (Src, Dst).
	Demands []Demand
	// LitGateways are the gateways with satellite visibility, sorted.
	LitGateways []string
	// UnservedUsers counts users with no lit gateway anywhere (the
	// constellation cannot pick their traffic up at all).
	UnservedUsers int
	// LocalUsers counts users whose ingress and egress gateway coincide —
	// their traffic never enters the space segment.
	LocalUsers int
}

// OfferedBps sums the matrix's offered load.
func (m *DemandMatrix) OfferedBps() float64 {
	var total float64
	for _, d := range m.Demands {
		total += d.OfferedBps
	}
	return total
}

// BuildDemandMatrix aggregates per-user offered load into gateway-pair
// demands:
//
//   - Gateways are lit when ground.PassSchedule finds at least one
//     satellite pass over them inside the config's window — the visibility
//     gate that makes small constellations drop whole regions.
//   - Each user's traffic enters at the nearest lit gateway.
//   - Each user's traffic exits at the lit gateway nearest to a
//     destination city drawn population-weighted from sim.WorldCities —
//     the gravity-model assumption that traffic sinks where people are.
//
// The rng drives only destination sampling; for a fixed rng state the
// matrix is deterministic, which is what the capacity experiment's
// worker-count determinism rests on.
func BuildDemandMatrix(gws []Gateway, sats []orbit.Satellite, users []geo.LatLon, cfg DemandConfig, rng *rand.Rand) (*DemandMatrix, error) {
	if len(gws) == 0 {
		return nil, fmt.Errorf("traffic: no gateways")
	}
	if cfg.PerUserBps <= 0 {
		return nil, fmt.Errorf("traffic: per-user load %.0f bps must be positive", cfg.PerUserBps)
	}
	if cfg.WindowS <= 0 {
		return nil, fmt.Errorf("traffic: visibility window %.0f s must be positive", cfg.WindowS)
	}
	m := &DemandMatrix{}
	var lit []Gateway
	for _, g := range gws {
		passes, err := ground.PassSchedule(g.Pos, sats, cfg.TimeS, cfg.TimeS+cfg.WindowS, cfg.MinElevationDeg)
		if err != nil {
			return nil, fmt.Errorf("traffic: gateway %s: %w", g.ID, err)
		}
		if len(passes) > 0 {
			lit = append(lit, g)
			m.LitGateways = append(m.LitGateways, g.ID)
		}
	}
	sort.Strings(m.LitGateways)
	if len(lit) == 0 {
		m.UnservedUsers = len(users)
		return m, nil
	}

	// Destination cities are sampled population-weighted, mirroring
	// sim.CityUsers's sampling of user positions.
	cities := sim.WorldCities()
	cum := make([]float64, len(cities))
	var totalPop float64
	for i, c := range cities {
		totalPop += c.PopM
		cum[i] = totalPop
	}
	// Precompute each city's nearest lit gateway once.
	cityEgress := make([]string, len(cities))
	for i, c := range cities {
		cityEgress[i] = nearestGateway(lit, c.Pos)
	}

	load := make(map[LinkID]float64)
	for _, u := range users {
		ingress := nearestGateway(lit, u)
		r := rng.Float64() * totalPop
		idx := sort.SearchFloat64s(cum, r)
		if idx >= len(cities) {
			idx = len(cities) - 1
		}
		egress := cityEgress[idx]
		if egress == ingress {
			m.LocalUsers++
			continue
		}
		load[LinkID{ingress, egress}] += cfg.PerUserBps
	}
	pairs := make([]LinkID, 0, len(load))
	for p := range load {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].From != pairs[b].From {
			return pairs[a].From < pairs[b].From
		}
		return pairs[a].To < pairs[b].To
	})
	for _, p := range pairs {
		m.Demands = append(m.Demands, Demand{Src: p.From, Dst: p.To, OfferedBps: load[p]})
	}
	return m, nil
}

// NearestGatewayID returns the ID of the gateway closest to p on the
// surface, with nearestGateway's deterministic tie-break. The fluid
// aggregation layer uses it to map traffic-source cities onto lit
// gateways each epoch.
func NearestGatewayID(gws []Gateway, p geo.LatLon) string { return nearestGateway(gws, p) }

// nearestGateway returns the ID of the gateway closest to p on the surface,
// breaking distance ties by ID for determinism.
func nearestGateway(gws []Gateway, p geo.LatLon) string {
	best, bestD := "", 0.0
	for _, g := range gws {
		d := geo.SurfaceDistanceKm(g.Pos, p)
		if best == "" || d < bestD || (d == bestD && g.ID < best) { //lint:allow floateq exact distance tie broken by ID keeps gateway choice deterministic
			best, bestD = g.ID, d
		}
	}
	return best
}
