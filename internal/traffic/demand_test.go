package traffic

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/sim"
)

// demandFixture returns two satellites and gateways sited exactly under
// them (guaranteed visible at t=0), plus a third gateway at the antipode of
// the first (guaranteed dark with these two satellites).
func demandFixture() ([]orbit.Satellite, []Gateway) {
	sats := []orbit.Satellite{
		{ID: "sat-0", Elements: orbit.Circular(780, 60, 0, 0)},
		{ID: "sat-1", Elements: orbit.Circular(780, 60, 120, 180)},
	}
	posA := sats[0].Elements.SubSatellitePoint(0)
	posB := sats[1].Elements.SubSatellitePoint(0)
	dark := geo.LatLon{Lat: -posA.Lat, Lon: posA.Lon + 180}.Normalize()
	return sats, []Gateway{
		{ID: "gw-a", Pos: posA},
		{ID: "gw-b", Pos: posB},
		{ID: "gw-dark", Pos: dark},
	}
}

func TestBuildDemandMatrix(t *testing.T) {
	sats, gws := demandFixture()
	users := sim.HotspotUsers(gws[0].Pos, 50, 40, rand.New(rand.NewSource(1)))
	cfg := DefaultDemandConfig()
	m, err := BuildDemandMatrix(gws, sats, users, cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"gw-a", "gw-b"}; !reflect.DeepEqual(m.LitGateways, want) {
		t.Fatalf("lit gateways = %v, want %v", m.LitGateways, want)
	}
	if m.UnservedUsers != 0 {
		t.Errorf("unserved users = %d, want 0 (gw-a is lit and nearby)", m.UnservedUsers)
	}
	// All users sit on gw-a, so every demand sources there; destinations
	// follow the population-weighted city draw.
	for _, d := range m.Demands {
		if d.Src != "gw-a" {
			t.Errorf("demand %v sources at %s, want gw-a", d, d.Src)
		}
		if d.Dst != "gw-b" {
			t.Errorf("demand %v exits at %s, want gw-b", d, d.Dst)
		}
		if d.OfferedBps <= 0 {
			t.Errorf("demand %v has no load", d)
		}
	}
	// Conservation: every user is either local or contributes PerUserBps.
	want := float64(len(users)-m.LocalUsers) * cfg.PerUserBps
	if got := m.OfferedBps(); got != want {
		t.Errorf("offered %v, want %v (%d local users)", got, want, m.LocalUsers)
	}
	if len(m.Demands) == 0 && m.LocalUsers != len(users) {
		t.Error("no demands despite non-local users")
	}
}

func TestBuildDemandMatrixDeterministic(t *testing.T) {
	sats, gws := demandFixture()
	users := sim.CityUsers(60, 30, rand.New(rand.NewSource(3)))
	run := func() *DemandMatrix {
		m, err := BuildDemandMatrix(gws, sats, users, DefaultDemandConfig(), rand.New(rand.NewSource(4)))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("demand matrix not deterministic:\n%+v\nvs\n%+v", a, b)
	}
}

func TestBuildDemandMatrixNoVisibility(t *testing.T) {
	sats, gws := demandFixture()
	darkOnly := []Gateway{gws[2]}
	users := sim.HotspotUsers(gws[0].Pos, 50, 10, rand.New(rand.NewSource(5)))
	m, err := BuildDemandMatrix(darkOnly, sats, users, DefaultDemandConfig(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Demands) != 0 || len(m.LitGateways) != 0 {
		t.Fatalf("dark constellation produced demands: %+v", m)
	}
	if m.UnservedUsers != len(users) {
		t.Errorf("unserved = %d, want all %d users", m.UnservedUsers, len(users))
	}
}

func TestBuildDemandMatrixErrors(t *testing.T) {
	sats, gws := demandFixture()
	rng := rand.New(rand.NewSource(7))
	if _, err := BuildDemandMatrix(nil, sats, nil, DefaultDemandConfig(), rng); err == nil {
		t.Error("no gateways should fail")
	}
	bad := DefaultDemandConfig()
	bad.PerUserBps = 0
	if _, err := BuildDemandMatrix(gws, sats, nil, bad, rng); err == nil {
		t.Error("zero per-user load should fail")
	}
	bad = DefaultDemandConfig()
	bad.WindowS = 0
	if _, err := BuildDemandMatrix(gws, sats, nil, bad, rng); err == nil {
		t.Error("zero visibility window should fail")
	}
}
