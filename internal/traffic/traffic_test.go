package traffic

import (
	"math"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/topo"
)

func TestNetworkCapacities(t *testing.T) {
	n := NewNetwork(grid(t,
		[3]interface{}{"a", "b", 10}, [3]interface{}{"b", "c", 20},
	))
	if got := n.CapacityBps("a", "b"); got != 10 {
		t.Errorf("a→b capacity = %v, want 10", got)
	}
	if got := n.CapacityBps("b", "a"); got != 0 {
		t.Errorf("missing reverse link capacity = %v, want 0", got)
	}
	links := n.Links()
	if len(links) != 2 || links[0] != (LinkID{"a", "b"}) || links[1] != (LinkID{"b", "c"}) {
		t.Errorf("links = %v, want sorted [a→b b→c]", links)
	}
}

func TestRecapacitatePhy(t *testing.T) {
	// A gateway under a satellite at 780 km, an RF ISL at 2,000 km and a
	// laser ISL at 3,000 km, all tagged with placeholder capacities the
	// model must replace.
	gwPos := geo.LatLon{Lat: 10, Lon: 20}
	satPos := gwPos.Vec3(780)
	sat2 := geo.LatLon{Lat: 10, Lon: 38}.Vec3(780)
	sat3 := geo.LatLon{Lat: 10, Lon: 47}.Vec3(780)
	s, err := topo.NewSnapshot(0, []topo.Node{
		{ID: "gw", Kind: topo.KindGroundStation, Pos: gwPos.Vec3(0)},
		{ID: "s1", Kind: topo.KindSatellite, Pos: satPos},
		{ID: "s2", Kind: topo.KindSatellite, Pos: sat2},
		{ID: "s3", Kind: topo.KindSatellite, Pos: sat3},
	}, []topo.Edge{
		{From: "gw", To: "s1", Kind: topo.LinkGround, DistanceKm: 780, DelayS: 0.003, CapacityBps: 1},
		{From: "s1", To: "s2", Kind: topo.LinkISLRF, DistanceKm: satPos.DistanceKm(sat2), DelayS: 0.007, CapacityBps: 1},
		{From: "s2", To: "s3", Kind: topo.LinkISLLaser, DistanceKm: sat2.DistanceKm(sat3), DelayS: 0.003, CapacityBps: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(s)
	m := DefaultCapacityModel()
	n.Recapacitate(m)

	if got, want := n.CapacityBps("s2", "s3"), m.Laser.DataRateBps; got != want {
		t.Errorf("laser ISL capacity = %v, want rated %v", got, want)
	}
	wantRF := m.RF.Budget(satPos.DistanceKm(sat2), 0).CapacityBps
	if got := n.CapacityBps("s1", "s2"); math.Abs(got-wantRF) > 1 {
		t.Errorf("RF ISL capacity = %v, want Shannon %v", got, wantRF)
	}
	if wantRF <= 0 {
		t.Fatal("RF budget failed to close at ISL range")
	}
	// The overhead gateway link sees ~90° elevation: near-minimal
	// atmosphere, so the capacity should beat the same link at the 10°
	// mask's slant range.
	overhead := n.CapacityBps("gw", "s1")
	lowElev := m.Ground.Budget(geo.SlantRangeKm(780, 10), 10).CapacityBps
	if overhead <= lowElev {
		t.Errorf("overhead gateway capacity %v not above low-elevation %v", overhead, lowElev)
	}
	// Shannon at the actual distance, not the builder's constant.
	if overhead == 1 {
		t.Error("recapacitate left the placeholder capacity in place")
	}
}

func TestGatewayTransitCost(t *testing.T) {
	cost := GatewayTransitCost()
	if _, ok := cost(topo.Edge{Kind: topo.LinkAccess, DelayS: 0.001}, nil); ok {
		t.Error("access links must be unusable for transit")
	}
	c, ok := cost(topo.Edge{Kind: topo.LinkISLLaser, DelayS: 0.004}, nil)
	if !ok || c != 0.004 {
		t.Errorf("laser ISL cost = %v/%v, want 0.004/usable", c, ok)
	}
}
