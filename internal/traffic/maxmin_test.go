package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/openspace-project/openspace/internal/topo"
)

// sharedBottleneck is two commodities squeezing through one 10-unit link.
func sharedBottleneck(t *testing.T) *Network {
	t.Helper()
	return NewNetwork(grid(t,
		[3]interface{}{"a", "m", 100}, [3]interface{}{"b", "m", 100},
		[3]interface{}{"m", "n", 10},
		[3]interface{}{"n", "c", 100}, [3]interface{}{"n", "d", 100},
	))
}

func TestMaxMinFairEqualSplit(t *testing.T) {
	n := sharedBottleneck(t)
	alloc, err := MaxMinFair(n, []Demand{
		{Src: "a", Dst: "c", OfferedBps: 8},
		{Src: "b", Dst: "d", OfferedBps: 8},
	}, AllocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range alloc.Demands {
		if math.Abs(d.RateBps-5) > 1e-6 {
			t.Errorf("demand %d rate = %v, want 5 (equal split of the 10-unit bottleneck)", i, d.RateBps)
		}
		if d.Bottleneck != (LinkID{"m", "n"}) {
			t.Errorf("demand %d bottleneck = %v, want m→n", i, d.Bottleneck)
		}
	}
	if u := alloc.Utilization("m", "n"); math.Abs(u-1) > 1e-6 {
		t.Errorf("bottleneck utilisation = %v, want 1", u)
	}
	if j := alloc.JainIndex(); math.Abs(j-1) > 1e-9 {
		t.Errorf("Jain index = %v, want 1 for symmetric split", j)
	}
}

func TestMaxMinFairUnevenOffers(t *testing.T) {
	// The small ask is satisfied at 2; the big one takes the remaining 8 —
	// the defining water-filling outcome.
	n := sharedBottleneck(t)
	alloc, err := MaxMinFair(n, []Demand{
		{Src: "a", Dst: "c", OfferedBps: 2},
		{Src: "b", Dst: "d", OfferedBps: 20},
	}, AllocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d := alloc.Demands[0]; !d.Satisfied() || math.Abs(d.RateBps-2) > 1e-6 {
		t.Errorf("small demand got %v, want its full 2", d.RateBps)
	}
	if d := alloc.Demands[1]; math.Abs(d.RateBps-8) > 1e-6 {
		t.Errorf("big demand got %v, want the residual 8", d.RateBps)
	}
	if got := alloc.CarriedBps(); math.Abs(got-10) > 1e-6 {
		t.Errorf("carried = %v, want 10", got)
	}
	if frac := alloc.SatisfiedFraction(); math.Abs(frac-10.0/22) > 1e-6 {
		t.Errorf("satisfied fraction = %v, want 10/22", frac)
	}
}

func TestMaxMinFairWidestOfK(t *testing.T) {
	// The shortest path is a 1-unit trickle; a slightly longer detour has
	// 100 units. KPaths=1 is stuck with the trickle, KPaths=2 finds the
	// detour.
	s, err := topo.NewSnapshot(0, []topo.Node{
		{ID: "s", Kind: topo.KindGroundStation},
		{ID: "m", Kind: topo.KindSatellite},
		{ID: "t", Kind: topo.KindGroundStation},
	}, []topo.Edge{
		{From: "s", To: "t", Kind: topo.LinkISLRF, DelayS: 0.001, CapacityBps: 1},
		{From: "s", To: "m", Kind: topo.LinkGround, DelayS: 0.002, CapacityBps: 100},
		{From: "m", To: "t", Kind: topo.LinkGround, DelayS: 0.002, CapacityBps: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	n := NewNetwork(s)
	demands := []Demand{{Src: "s", Dst: "t", OfferedBps: 50}}
	narrow, err := MaxMinFair(n, demands, AllocConfig{KPaths: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := narrow.Demands[0].RateBps; math.Abs(got-1) > 1e-6 {
		t.Errorf("k=1 rate = %v, want 1 (stuck on the direct trickle)", got)
	}
	wide, err := MaxMinFair(n, demands, AllocConfig{KPaths: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := wide.Demands[0].RateBps; math.Abs(got-50) > 1e-6 {
		t.Errorf("k=2 rate = %v, want the full 50 over the wide detour", got)
	}
}

func TestMaxMinFairUnroutableDemand(t *testing.T) {
	n := NewNetwork(grid(t, [3]interface{}{"a", "b", 10}))
	alloc, err := MaxMinFair(n, []Demand{
		{Src: "b", Dst: "a", OfferedBps: 5}, // no reverse edge
		{Src: "a", Dst: "b", OfferedBps: 5},
	}, AllocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d := alloc.Demands[0]; d.Path != nil || d.RateBps != 0 {
		t.Errorf("unroutable demand allocated %v over %v", d.RateBps, d.Path)
	}
	if d := alloc.Demands[1]; math.Abs(d.RateBps-5) > 1e-6 {
		t.Errorf("routable demand got %v, want 5", d.RateBps)
	}
}

func TestMaxMinFairAccessLinksExcluded(t *testing.T) {
	// The only route via the user terminal is not transit-eligible under
	// the default cost.
	s, err := topo.NewSnapshot(0, []topo.Node{
		{ID: "g1", Kind: topo.KindGroundStation},
		{ID: "u", Kind: topo.KindUser},
		{ID: "g2", Kind: topo.KindGroundStation},
	}, []topo.Edge{
		{From: "g1", To: "u", Kind: topo.LinkAccess, DelayS: 0.001, CapacityBps: 100},
		{From: "u", To: "g2", Kind: topo.LinkAccess, DelayS: 0.001, CapacityBps: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := MaxMinFair(NewNetwork(s), []Demand{{Src: "g1", Dst: "g2", OfferedBps: 5}}, AllocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d := alloc.Demands[0]; d.Path != nil {
		t.Errorf("transit allocated through a user terminal: %v", d.Path)
	}
}

func TestMaxMinFairErrors(t *testing.T) {
	n := NewNetwork(grid(t, [3]interface{}{"a", "b", 10}))
	if _, err := MaxMinFair(n, []Demand{{Src: "a", Dst: "z", OfferedBps: 1}}, AllocConfig{}); err == nil {
		t.Error("unknown node should fail")
	}
	if _, err := MaxMinFair(n, []Demand{{Src: "a", Dst: "b", OfferedBps: -1}}, AllocConfig{}); err == nil {
		t.Error("negative offered load should fail")
	}
}

// checkMaxMinProperty asserts the defining property of max-min fairness on
// fixed paths: every demand is either fully satisfied, unroutable, or
// frozen behind a saturated link on which no co-located demand holds a
// higher rate (so raising it would necessarily lower an equal-or-smaller
// rate).
func checkMaxMinProperty(t *testing.T, alloc *Allocation, n *Network) bool {
	t.Helper()
	const tol = 1e-6
	for i := range alloc.Demands {
		d := &alloc.Demands[i]
		if d.Path == nil || d.Satisfied() {
			continue
		}
		l := d.Bottleneck
		if l == (LinkID{}) {
			t.Logf("demand %d (%s→%s) unsatisfied at %v with no bottleneck", i, d.Src, d.Dst, d.RateBps)
			return false
		}
		if u := alloc.Utilization(l.From, l.To); u < 1-tol {
			t.Logf("demand %d bottleneck %v not saturated (util %v)", i, l, u)
			return false
		}
		for j := range alloc.Demands {
			o := &alloc.Demands[j]
			if j == i || o.Path == nil {
				continue
			}
			crosses := false
			for h := 0; h+1 < len(o.Path); h++ {
				if (LinkID{o.Path[h], o.Path[h+1]}) == l {
					crosses = true
					break
				}
			}
			if crosses && o.RateBps > d.RateBps+tol*(1+d.RateBps) {
				t.Logf("demand %d rate %v exceeds demand %d rate %v on shared bottleneck %v",
					j, o.RateBps, i, d.RateBps, l)
				return false
			}
		}
	}
	return true
}

// TestMaxMinFairProperty drives the allocator over random networks and
// demand sets with testing/quick, checking feasibility (no link above
// capacity, no rate above its offer) and the max-min property.
func TestMaxMinFairProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		ids := n.Snap.Nodes()
		var demands []Demand
		for d := 0; d < 2+rng.Intn(5); d++ {
			src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
			if src == dst {
				continue
			}
			demands = append(demands, Demand{Src: src, Dst: dst, OfferedBps: float64(1 + rng.Intn(50))})
		}
		alloc, err := MaxMinFair(n, demands, AllocConfig{KPaths: 1 + rng.Intn(3)})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		const tol = 1e-6
		for i := range alloc.Demands {
			d := &alloc.Demands[i]
			if d.RateBps < -tol || d.RateBps > d.OfferedBps+tol {
				t.Logf("seed %d: demand %d rate %v outside [0, %v]", seed, i, d.RateBps, d.OfferedBps)
				return false
			}
		}
		for _, l := range n.Links() {
			load := alloc.linkLoad[l]
			if load > n.CapacityBps(l.From, l.To)*(1+1e-9)+tol {
				t.Logf("seed %d: link %v load %v above capacity %v", seed, l, load, n.CapacityBps(l.From, l.To))
				return false
			}
		}
		return checkMaxMinProperty(t, alloc, n)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllocationEmptyDemands(t *testing.T) {
	n := NewNetwork(grid(t, [3]interface{}{"a", "b", 10}))
	alloc, err := MaxMinFair(n, nil, AllocConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if alloc.SatisfiedFraction() != 1 || alloc.JainIndex() != 1 {
		t.Error("empty allocation should be trivially satisfied and fair")
	}
	if _, u := alloc.MaxUtilization(); u != 0 {
		t.Errorf("empty allocation utilisation = %v, want 0", u)
	}
}
