package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/openspace-project/openspace/internal/topo"
)

// grid builds a synthetic snapshot from (from, to, capacity) triples; delays
// default to 1 ms per hop so latency costs are well-defined.
func grid(t *testing.T, links ...[3]interface{}) *topo.Snapshot {
	t.Helper()
	seen := map[string]bool{}
	var nodes []topo.Node
	var edges []topo.Edge
	for _, l := range links {
		from, to := l[0].(string), l[1].(string)
		var capBps float64
		switch c := l[2].(type) {
		case int:
			capBps = float64(c)
		case float64:
			capBps = c
		}
		for _, id := range []string{from, to} {
			if !seen[id] {
				seen[id] = true
				nodes = append(nodes, topo.Node{ID: id, Kind: topo.KindGroundStation})
			}
		}
		edges = append(edges, topo.Edge{From: from, To: to, Kind: topo.LinkISLRF, DelayS: 0.001, CapacityBps: capBps})
	}
	s, err := topo.NewSnapshot(0, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMaxFlowDiamond(t *testing.T) {
	// s→a 10, s→b 5, a→t 5, b→t 10: max flow 10 (5 along each side).
	n := NewNetwork(grid(t,
		[3]interface{}{"s", "a", 10}, [3]interface{}{"s", "b", 5},
		[3]interface{}{"a", "t", 5}, [3]interface{}{"b", "t", 10},
	))
	r, err := MaxFlow(n, "s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ValueBps-10) > 1e-9 {
		t.Fatalf("diamond max flow = %v, want 10", r.ValueBps)
	}
	if math.Abs(r.CutCapacityBps()-r.ValueBps) > 1e-9 {
		t.Fatalf("cut capacity %v != flow value %v", r.CutCapacityBps(), r.ValueBps)
	}
}

func TestMaxFlowCrossEdge(t *testing.T) {
	// Adding a→b lets the surplus of the top path drain through the fat
	// bottom sink: max flow rises from 10 to 15.
	n := NewNetwork(grid(t,
		[3]interface{}{"s", "a", 10}, [3]interface{}{"s", "b", 5},
		[3]interface{}{"a", "t", 5}, [3]interface{}{"b", "t", 10},
		[3]interface{}{"a", "b", 10},
	))
	r, err := MaxFlow(n, "s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ValueBps-15) > 1e-9 {
		t.Fatalf("max flow = %v, want 15", r.ValueBps)
	}
}

func TestMaxFlowClassicCLRS(t *testing.T) {
	// The CLRS flow network (26.1): known max flow 23.
	n := NewNetwork(grid(t,
		[3]interface{}{"s", "v1", 16}, [3]interface{}{"s", "v2", 13},
		[3]interface{}{"v1", "v3", 12}, [3]interface{}{"v2", "v1", 4},
		[3]interface{}{"v2", "v4", 14}, [3]interface{}{"v3", "v2", 9},
		[3]interface{}{"v3", "t", 20}, [3]interface{}{"v4", "v3", 7},
		[3]interface{}{"v4", "t", 4},
	))
	r, err := MaxFlow(n, "s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.ValueBps-23) > 1e-9 {
		t.Fatalf("CLRS max flow = %v, want 23", r.ValueBps)
	}
	if len(r.MinCut) == 0 {
		t.Fatal("no min cut reported")
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	n := NewNetwork(grid(t,
		[3]interface{}{"s", "a", 10}, [3]interface{}{"b", "t", 10},
	))
	r, err := MaxFlow(n, "s", "t")
	if err != nil {
		t.Fatal(err)
	}
	if r.ValueBps != 0 {
		t.Fatalf("disconnected flow = %v, want 0", r.ValueBps)
	}
	if len(r.MinCut) != 0 {
		t.Fatalf("disconnected graph has cut %v, want empty", r.MinCut)
	}
}

func TestMaxFlowErrors(t *testing.T) {
	n := NewNetwork(grid(t, [3]interface{}{"s", "t", 1}))
	if _, err := MaxFlow(n, "nope", "t"); err == nil {
		t.Error("unknown source should fail")
	}
	if _, err := MaxFlow(n, "s", "nope"); err == nil {
		t.Error("unknown destination should fail")
	}
	if _, err := MaxFlow(n, "s", "s"); err == nil {
		t.Error("src == dst should fail")
	}
}

// randomNetwork builds a connected-ish random capacitated graph for the
// property tests.
func randomNetwork(rng *rand.Rand) *Network {
	nNodes := 4 + rng.Intn(8)
	nodes := make([]topo.Node, nNodes)
	ids := make([]string, nNodes)
	for i := range nodes {
		ids[i] = string(rune('a' + i))
		nodes[i] = topo.Node{ID: ids[i], Kind: topo.KindGroundStation}
	}
	seen := map[[2]string]bool{}
	var edges []topo.Edge
	nEdges := nNodes + rng.Intn(3*nNodes)
	for len(edges) < nEdges {
		i, j := rng.Intn(nNodes), rng.Intn(nNodes)
		if i == j || seen[[2]string{ids[i], ids[j]}] {
			// Dense small graphs may run out of fresh pairs; bail out.
			if len(seen) >= nNodes*(nNodes-1) {
				break
			}
			continue
		}
		seen[[2]string{ids[i], ids[j]}] = true
		edges = append(edges, topo.Edge{
			From: ids[i], To: ids[j], Kind: topo.LinkISLRF,
			DelayS: 0.001 * (1 + rng.Float64()), CapacityBps: float64(1 + rng.Intn(100)),
		})
	}
	s, err := topo.NewSnapshot(0, nodes, edges)
	if err != nil {
		panic(err)
	}
	return NewNetwork(s)
}

// TestMaxFlowInvariantsProperty drives Dinic with testing/quick over random
// graphs and checks the three defining invariants: capacity respected on
// every link, flow conserved at every interior node, and the flow value
// equal to the min cut's capacity (strong duality — a full correctness
// certificate).
func TestMaxFlowInvariantsProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomNetwork(rng)
		r, err := MaxFlow(n, "a", "b")
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		const eps = 1e-6
		net := map[string]float64{}
		for id, flow := range r.Flow {
			if flow < -eps || flow > n.CapacityBps(id.From, id.To)+eps {
				t.Logf("seed %d: link %v flow %v exceeds capacity %v", seed, id, flow, n.CapacityBps(id.From, id.To))
				return false
			}
			net[id.From] -= flow
			net[id.To] += flow
		}
		for _, id := range n.Snap.Nodes() {
			if id == "a" || id == "b" {
				continue
			}
			if math.Abs(net[id]) > eps {
				t.Logf("seed %d: conservation violated at %s: %v", seed, id, net[id])
				return false
			}
		}
		if math.Abs(net["b"]-r.ValueBps) > eps {
			t.Logf("seed %d: sink inflow %v != value %v", seed, net["b"], r.ValueBps)
			return false
		}
		if math.Abs(r.CutCapacityBps()-r.ValueBps) > eps {
			t.Logf("seed %d: cut %v != value %v", seed, r.CutCapacityBps(), r.ValueBps)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMaxFlowDeterministic(t *testing.T) {
	rngA := rand.New(rand.NewSource(7))
	na := randomNetwork(rngA)
	ra, err := MaxFlow(na, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	rngB := rand.New(rand.NewSource(7))
	nb := randomNetwork(rngB)
	rb, err := MaxFlow(nb, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if ra.ValueBps != rb.ValueBps || len(ra.MinCut) != len(rb.MinCut) {
		t.Fatalf("max flow not deterministic: %v/%v vs %v/%v", ra.ValueBps, ra.MinCut, rb.ValueBps, rb.MinCut)
	}
	for i := range ra.MinCut {
		if ra.MinCut[i] != rb.MinCut[i] {
			t.Fatalf("cut differs at %d: %v vs %v", i, ra.MinCut[i], rb.MinCut[i])
		}
	}
}
