// Package geo provides the Earth model used throughout OpenSpace: geodetic
// coordinates, Earth-centred Cartesian vectors, great-circle geometry and
// spherical caps (satellite coverage footprints).
//
// OpenSpace uses a spherical Earth of radius EarthRadiusKm. The paper's
// evaluation (HotNets '24, §4) estimates latency from path length and
// coverage from footprint geometry; for both, the sub-0.5 % error of a
// spherical model relative to WGS-84 is far below the modelling noise of the
// constellation itself, and a sphere keeps every routine closed-form.
//
// All angles at API boundaries are degrees (matching how constellations are
// specified in the literature); internal computation is in radians.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius in kilometres (IUGG mean radius R1).
const EarthRadiusKm = 6371.0

// EarthSurfaceAreaKm2 is the surface area of the spherical Earth model.
const EarthSurfaceAreaKm2 = 4 * math.Pi * EarthRadiusKm * EarthRadiusKm

// EarthMuKm3S2 is the standard gravitational parameter of Earth in km^3/s^2,
// used by the orbit package for two-body propagation.
const EarthMuKm3S2 = 398600.4418

// EarthRotationRadS is Earth's sidereal rotation rate in radians per second.
const EarthRotationRadS = 7.2921159e-5

// LatLon is a geodetic position on the spherical Earth, in degrees.
// Latitude is positive north, longitude positive east.
type LatLon struct {
	Lat float64 // degrees, [-90, 90]
	Lon float64 // degrees, [-180, 180]
}

// String implements fmt.Stringer.
func (p LatLon) String() string {
	ns, ew := "N", "E"
	lat, lon := p.Lat, p.Lon
	if lat < 0 {
		ns, lat = "S", -lat
	}
	if lon < 0 {
		ew, lon = "W", -lon
	}
	return fmt.Sprintf("%.4f°%s %.4f°%s", lat, ns, lon, ew)
}

// Valid reports whether p is a well-formed geodetic coordinate.
func (p LatLon) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// Normalize returns p with the longitude wrapped into [-180, 180] and the
// latitude clamped into [-90, 90].
func (p LatLon) Normalize() LatLon {
	lon := math.Mod(p.Lon, 360)
	if lon > 180 {
		lon -= 360
	} else if lon < -180 {
		lon += 360
	}
	lat := math.Max(-90, math.Min(90, p.Lat))
	return LatLon{Lat: lat, Lon: lon}
}

// Radians returns latitude and longitude in radians.
func (p LatLon) Radians() (lat, lon float64) {
	return p.Lat * math.Pi / 180, p.Lon * math.Pi / 180
}

// Degrees converts an angle in radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts an angle in degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// CentralAngle returns the central angle in radians between two points on the
// sphere, computed with the haversine formula (numerically stable for small
// separations, unlike the spherical law of cosines).
func CentralAngle(a, b LatLon) float64 {
	la, lo := a.Radians()
	lb, lp := b.Radians()
	sinLat := math.Sin((lb - la) / 2)
	sinLon := math.Sin((lp - lo) / 2)
	h := sinLat*sinLat + math.Cos(la)*math.Cos(lb)*sinLon*sinLon
	return 2 * math.Asin(math.Min(1, math.Sqrt(h)))
}

// SurfaceDistanceKm returns the great-circle distance between two surface
// points in kilometres.
func SurfaceDistanceKm(a, b LatLon) float64 {
	return EarthRadiusKm * CentralAngle(a, b)
}

// InitialBearing returns the initial great-circle bearing from a to b in
// degrees clockwise from north, in [0, 360).
func InitialBearing(a, b LatLon) float64 {
	la, lo := a.Radians()
	lb, lp := b.Radians()
	dLon := lp - lo
	y := math.Sin(dLon) * math.Cos(lb)
	x := math.Cos(la)*math.Sin(lb) - math.Sin(la)*math.Cos(lb)*math.Cos(dLon)
	br := Degrees(math.Atan2(y, x))
	return math.Mod(br+360, 360)
}

// Destination returns the point reached by travelling distKm kilometres from
// p along the given initial bearing (degrees clockwise from north).
func Destination(p LatLon, bearingDeg, distKm float64) LatLon {
	lat, lon := p.Radians()
	brg := Radians(bearingDeg)
	d := distKm / EarthRadiusKm
	sinLat := math.Sin(lat)*math.Cos(d) + math.Cos(lat)*math.Sin(d)*math.Cos(brg)
	lat2 := math.Asin(sinLat)
	y := math.Sin(brg) * math.Sin(d) * math.Cos(lat)
	x := math.Cos(d) - math.Sin(lat)*sinLat
	lon2 := lon + math.Atan2(y, x)
	return LatLon{Lat: Degrees(lat2), Lon: Degrees(lon2)}.Normalize()
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b LatLon) LatLon {
	va := a.Vec3(0)
	vb := b.Vec3(0)
	m := va.Add(vb)
	if m.Norm() == 0 {
		// Antipodal points: any midpoint on the bisecting circle is valid;
		// choose the one in the plane through the poles and a.
		return LatLon{Lat: 90 - math.Abs(a.Lat), Lon: a.Lon}.Normalize()
	}
	return m.LatLon()
}

// Vec3 returns the Earth-centred, Earth-fixed Cartesian position of the point
// at altitudeKm above the surface, in kilometres. The frame has +X through
// (0°N, 0°E), +Y through (0°N, 90°E) and +Z through the north pole.
func (p LatLon) Vec3(altitudeKm float64) Vec3 {
	lat, lon := p.Radians()
	r := EarthRadiusKm + altitudeKm
	cl := math.Cos(lat)
	return Vec3{
		X: r * cl * math.Cos(lon),
		Y: r * cl * math.Sin(lon),
		Z: r * math.Sin(lat),
	}
}
