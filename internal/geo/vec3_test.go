package geo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVec3Arithmetic(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Cross(b); got != (Vec3{27, 6, -13}) {
		t.Errorf("Cross = %v", got)
	}
}

func TestVec3CrossOrthogonal(t *testing.T) {
	f := func(a, b Vec3) bool {
		c := a.Cross(b)
		// c ⟂ a and c ⟂ b, within scale-aware tolerance.
		tol := 1e-6 * (1 + a.Norm()*b.Norm())
		return math.Abs(c.Dot(a)) < tol && math.Abs(c.Dot(b)) < tol
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Generate bounds property-test vectors to orbital magnitudes so products
// cannot overflow float64.
func (Vec3) Generate(r *rand.Rand, _ int) reflect.Value {
	s := func() float64 { return (r.Float64() - 0.5) * 2 * 1e5 }
	return reflect.ValueOf(Vec3{X: s(), Y: s(), Z: s()})
}

func TestUnit(t *testing.T) {
	v := Vec3{3, 4, 0}
	u := v.Unit()
	if !almostEqual(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	zero := Vec3{}
	if zero.Unit() != zero {
		t.Error("Unit of zero vector should be zero")
	}
}

func TestLatLonVec3RoundTrip(t *testing.T) {
	f := func(p LatLon) bool {
		got := p.Vec3(0).LatLon()
		// Longitude is meaningless at the poles.
		if math.Abs(p.Lat) > 89.999 {
			return almostEqual(got.Lat, p.Lat, 1e-6)
		}
		return almostEqual(got.Lat, p.Lat, 1e-9) && almostEqual(got.Lon, p.Lon, 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestVec3Altitude(t *testing.T) {
	p := LatLon{45, 45}
	for _, alt := range []float64{0, 300, 780, 35786} {
		v := p.Vec3(alt)
		if !almostEqual(v.AltitudeKm(), alt, 1e-9*(1+alt)) {
			t.Errorf("altitude %v round-trips to %v", alt, v.AltitudeKm())
		}
	}
}

func TestLineOfSight(t *testing.T) {
	// Two satellites over the same hemisphere see each other.
	a := LatLon{0, 0}.Vec3(780)
	b := LatLon{0, 30}.Vec3(780)
	if !LineOfSight(a, b) {
		t.Error("nearby satellites should have line of sight")
	}
	// Antipodal LEO satellites are blocked by the Earth.
	c := LatLon{0, 180}.Vec3(780)
	if LineOfSight(a, c) {
		t.Error("antipodal LEO satellites must be blocked by the Earth")
	}
	// Two GEO satellites 120° apart see each other over the limb.
	g1 := LatLon{0, 0}.Vec3(35786)
	g2 := LatLon{0, 120}.Vec3(35786)
	if !LineOfSight(g1, g2) {
		t.Error("GEO satellites 120° apart should have line of sight")
	}
	// Ground point to overhead satellite.
	if !LineOfSight(LatLon{10, 10}.Vec3(0), LatLon{10, 10}.Vec3(780)) {
		t.Error("ground to zenith satellite should have line of sight")
	}
}

func TestLineOfSightSymmetric(t *testing.T) {
	f := func(a, b LatLon, ha, hb float64) bool {
		ha = math.Mod(math.Abs(ha), 2000)
		hb = math.Mod(math.Abs(hb), 2000)
		va := a.Normalize().Vec3(ha)
		vb := b.Normalize().Vec3(hb)
		return LineOfSight(va, vb) == LineOfSight(vb, va)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestElevationDeg(t *testing.T) {
	obs := LatLon{0, 0}
	// Directly overhead → 90°.
	if got := ElevationDeg(obs, obs.Vec3(780)); !almostEqual(got, 90, 1e-9) {
		t.Errorf("zenith elevation = %v, want 90", got)
	}
	// A satellite at the same altitude but far around the curve is below the
	// horizon (negative elevation).
	far := LatLon{0, 90}.Vec3(780)
	if got := ElevationDeg(obs, far); got >= 0 {
		t.Errorf("far satellite elevation = %v, want negative", got)
	}
	// Elevation decreases monotonically as the satellite moves away.
	prev := 90.0
	for lon := 2.0; lon < 30; lon += 2 {
		e := ElevationDeg(obs, LatLon{0, lon}.Vec3(780))
		if e >= prev {
			t.Fatalf("elevation not monotonic: %v then %v at lon %v", prev, e, lon)
		}
		prev = e
	}
}

func TestAngleBetween(t *testing.T) {
	x := Vec3{1, 0, 0}
	y := Vec3{0, 1, 0}
	if got := x.AngleBetween(y); !almostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("angle x,y = %v, want π/2", got)
	}
	if got := x.AngleBetween(x.Scale(5)); !almostEqual(got, 0, 1e-6) {
		t.Errorf("angle x,5x = %v, want 0", got)
	}
	if got := x.AngleBetween(x.Scale(-2)); !almostEqual(got, math.Pi, 1e-6) {
		t.Errorf("angle x,-2x = %v, want π", got)
	}
	if got := x.AngleBetween(Vec3{}); got != 0 {
		t.Errorf("angle with zero vector = %v, want 0", got)
	}
}
