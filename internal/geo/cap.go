package geo

import (
	"fmt"
	"math"
)

// Cap is a spherical cap on the Earth's surface: the set of surface points
// within AngularRadius (radians of central angle) of Center. Satellite
// coverage footprints are caps.
type Cap struct {
	Center        LatLon
	AngularRadius float64 // radians, in [0, π]
}

// String implements fmt.Stringer.
func (c Cap) String() string {
	return fmt.Sprintf("cap{%v r=%.2f°}", c.Center, Degrees(c.AngularRadius))
}

// FootprintAngularRadius returns the angular radius (radians of Earth central
// angle) of the coverage footprint of a satellite at altitudeKm, as seen by
// ground terminals that require at least minElevationDeg of elevation.
//
// Geometry: for a ground point at central angle λ from the sub-satellite
// point, the elevation ε satisfies cos(λ+ε) = (Re/(Re+h))·cos ε, giving
// λ = acos((Re/(Re+h))·cos ε) − ε.
func FootprintAngularRadius(altitudeKm, minElevationDeg float64) float64 {
	if altitudeKm <= 0 {
		return 0
	}
	eps := Radians(minElevationDeg)
	ratio := EarthRadiusKm / (EarthRadiusKm + altitudeKm)
	return math.Acos(ratio*math.Cos(eps)) - eps
}

// SlantRangeKm returns the distance from a ground terminal to a satellite at
// altitudeKm seen at elevationDeg. It is the law-of-cosines solution of the
// Earth-centre triangle and is used for ground-link budgets and latency.
func SlantRangeKm(altitudeKm, elevationDeg float64) float64 {
	re := EarthRadiusKm
	rs := re + altitudeKm
	eps := Radians(elevationDeg)
	// d = -Re·sin ε + sqrt(Rs² - Re²·cos²ε)
	c := re * math.Cos(eps)
	return -re*math.Sin(eps) + math.Sqrt(rs*rs-c*c)
}

// AreaKm2 returns the surface area of the cap in km².
func (c Cap) AreaKm2() float64 {
	return 2 * math.Pi * EarthRadiusKm * EarthRadiusKm * (1 - math.Cos(c.AngularRadius))
}

// Contains reports whether the surface point p lies inside the cap.
func (c Cap) Contains(p LatLon) bool {
	return CentralAngle(c.Center, p) <= c.AngularRadius
}

// Overlaps reports whether two caps share any surface area.
func (c Cap) Overlaps(o Cap) bool {
	return CentralAngle(c.Center, o.Center) < c.AngularRadius+o.AngularRadius
}

// FibonacciGrid returns n points approximately uniformly distributed over the
// sphere (a Fibonacci lattice). The grid is deterministic, so coverage
// estimates computed with it are reproducible. Used by ExactCoverageFraction
// and the experiment harness.
func FibonacciGrid(n int) []LatLon {
	if n <= 0 {
		return nil
	}
	pts := make([]LatLon, n)
	// Golden angle in radians.
	ga := math.Pi * (3 - math.Sqrt(5))
	for i := 0; i < n; i++ {
		// z uniformly spaced in (-1, 1), longitude by golden-angle spiral.
		z := 1 - (2*float64(i)+1)/float64(n)
		lat := Degrees(math.Asin(z))
		lon := Degrees(math.Mod(ga*float64(i), 2*math.Pi))
		pts[i] = LatLon{Lat: lat, Lon: lon}.Normalize()
	}
	return pts
}

// ExactCoverageFraction estimates the fraction of the Earth's surface covered
// by the union of the caps, by sampling gridSize points of a deterministic
// Fibonacci lattice. Error is O(1/gridSize); 10 000 points give ~1 % error,
// enough to place the knee of the paper's Figure 2(c).
func ExactCoverageFraction(caps []Cap, gridSize int) float64 {
	if len(caps) == 0 || gridSize <= 0 {
		return 0
	}
	grid := FibonacciGrid(gridSize)
	covered := 0
	for _, p := range grid {
		for _, c := range caps {
			if c.Contains(p) {
				covered++
				break
			}
		}
	}
	return float64(covered) / float64(len(grid))
}

// WorstCaseCoverageFraction computes coverage under the paper's conservative
// rule (§4): "if there is any overlap between a pair of satellite ranges,
// their effective coverage will be reduced to that of a single satellite —
// that is, we take the worst case where two satellites have completely
// overlapping ground coverage". Overlapping satellites are paired up (a
// greedy maximal matching on the overlap graph, deterministic in input
// order); each matched pair contributes the area of its larger cap, each
// unmatched satellite contributes its own. The result is capped at 1.
func WorstCaseCoverageFraction(caps []Cap) float64 {
	if len(caps) == 0 {
		return 0
	}
	matched := make([]bool, len(caps))
	var total float64
	for i := range caps {
		if matched[i] {
			continue
		}
		paired := false
		for j := i + 1; j < len(caps); j++ {
			if matched[j] || !caps[i].Overlaps(caps[j]) {
				continue
			}
			// Collapse the pair to its larger footprint.
			matched[i], matched[j] = true, true
			total += math.Max(caps[i].AreaKm2(), caps[j].AreaKm2())
			paired = true
			break
		}
		if !paired {
			matched[i] = true
			total += caps[i].AreaKm2()
		}
	}
	return math.Min(1, total/EarthSurfaceAreaKm2)
}
