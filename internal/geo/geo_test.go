package geo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

const floatTol = 1e-9

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestLatLonString(t *testing.T) {
	tests := []struct {
		in   LatLon
		want string
	}{
		{LatLon{40.4406, -79.9959}, "40.4406°N 79.9959°W"},
		{LatLon{-33.8688, 151.2093}, "33.8688°S 151.2093°E"},
		{LatLon{0, 0}, "0.0000°N 0.0000°E"},
	}
	for _, tc := range tests {
		if got := tc.in.String(); got != tc.want {
			t.Errorf("String(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLatLonValid(t *testing.T) {
	valid := []LatLon{{0, 0}, {90, 180}, {-90, -180}, {45.5, -120.25}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []LatLon{{91, 0}, {-91, 0}, {0, 181}, {0, -181}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestNormalize(t *testing.T) {
	tests := []struct {
		in, want LatLon
	}{
		{LatLon{0, 190}, LatLon{0, -170}},
		{LatLon{0, -190}, LatLon{0, 170}},
		{LatLon{0, 360}, LatLon{0, 0}},
		{LatLon{0, 540}, LatLon{0, 180}},
		{LatLon{95, 0}, LatLon{90, 0}},
		{LatLon{-95, 0}, LatLon{-90, 0}},
	}
	for _, tc := range tests {
		got := tc.in.Normalize()
		if !almostEqual(got.Lat, tc.want.Lat, floatTol) || !almostEqual(got.Lon, tc.want.Lon, floatTol) {
			t.Errorf("Normalize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestNormalizeAlwaysValid(t *testing.T) {
	f := func(lat, lon float64) bool {
		if math.IsNaN(lat) || math.IsNaN(lon) || math.IsInf(lat, 0) || math.IsInf(lon, 0) {
			return true // out of scope
		}
		// Keep magnitudes sane so Mod stays exact enough.
		lat = math.Mod(lat, 1e6)
		lon = math.Mod(lon, 1e6)
		return LatLon{lat, lon}.Normalize().Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCentralAngleKnownPairs(t *testing.T) {
	// Pole to pole is π; equator quarter turn is π/2.
	if got := CentralAngle(LatLon{90, 0}, LatLon{-90, 0}); !almostEqual(got, math.Pi, 1e-12) {
		t.Errorf("pole-to-pole central angle = %v, want π", got)
	}
	if got := CentralAngle(LatLon{0, 0}, LatLon{0, 90}); !almostEqual(got, math.Pi/2, 1e-12) {
		t.Errorf("quarter-equator central angle = %v, want π/2", got)
	}
	if got := CentralAngle(LatLon{12, 34}, LatLon{12, 34}); got != 0 {
		t.Errorf("self central angle = %v, want 0", got)
	}
}

func TestSurfaceDistanceKnown(t *testing.T) {
	// Pittsburgh to London, known to be ~5935 km on the sphere.
	pit := LatLon{40.4406, -79.9959}
	lon := LatLon{51.5074, -0.1278}
	d := SurfaceDistanceKm(pit, lon)
	if d < 5850 || d > 6050 {
		t.Errorf("Pittsburgh-London distance = %.1f km, want ~5935 km", d)
	}
}

func TestCentralAngleSymmetric(t *testing.T) {
	f := func(a, b LatLon) bool {
		a, b = a.Normalize(), b.Normalize()
		return almostEqual(CentralAngle(a, b), CentralAngle(b, a), 1e-12)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestCentralAngleTriangleInequality(t *testing.T) {
	f := func(a, b, c LatLon) bool {
		a, b, c = a.Normalize(), b.Normalize(), c.Normalize()
		return CentralAngle(a, c) <= CentralAngle(a, b)+CentralAngle(b, c)+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	origin := LatLon{0, 0}
	tests := []struct {
		to   LatLon
		want float64
	}{
		{LatLon{10, 0}, 0},    // due north
		{LatLon{0, 10}, 90},   // due east
		{LatLon{-10, 0}, 180}, // due south
		{LatLon{0, -10}, 270}, // due west
	}
	for _, tc := range tests {
		if got := InitialBearing(origin, tc.to); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("InitialBearing(origin, %v) = %v, want %v", tc.to, got, tc.want)
		}
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	// Travelling distance d along the bearing to b from a must land within
	// numerical tolerance of b when d = distance(a,b).
	f := func(a, b LatLon) bool {
		a, b = a.Normalize(), b.Normalize()
		// Skip near-polar and near-antipodal degeneracies.
		if math.Abs(a.Lat) > 85 || math.Abs(b.Lat) > 85 {
			return true
		}
		d := SurfaceDistanceKm(a, b)
		if d < 1 || d > 19000 {
			return true
		}
		got := Destination(a, InitialBearing(a, b), d)
		return CentralAngle(got, b) < 1e-6
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDestinationDistance(t *testing.T) {
	// The point returned by Destination must be the requested distance away.
	p := LatLon{40, -80}
	for _, d := range []float64{1, 100, 1000, 5000, 10000} {
		for _, brg := range []float64{0, 45, 90, 135, 271.5} {
			got := Destination(p, brg, d)
			if gd := SurfaceDistanceKm(p, got); !almostEqual(gd, d, d*1e-9+1e-6) {
				t.Errorf("Destination(%v,%v,%v) at distance %v, want %v", p, brg, d, gd, d)
			}
		}
	}
}

func TestMidpoint(t *testing.T) {
	a, b := LatLon{0, 0}, LatLon{0, 90}
	m := Midpoint(a, b)
	if !almostEqual(m.Lat, 0, 1e-9) || !almostEqual(m.Lon, 45, 1e-9) {
		t.Errorf("Midpoint = %v, want 0,45", m)
	}
	// Midpoint is equidistant.
	f := func(a, b LatLon) bool {
		a, b = a.Normalize(), b.Normalize()
		if CentralAngle(a, b) > math.Pi-0.1 { // skip antipodal degeneracy
			return true
		}
		m := Midpoint(a, b)
		return almostEqual(CentralAngle(a, m), CentralAngle(m, b), 1e-9)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// quickCfg returns the quick.Config shared by the property tests.
func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300}
}

// Generate implements testing/quick.Generator so property tests draw valid
// geodetic coordinates rather than arbitrary float64 pairs.
func (LatLon) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(LatLon{
		Lat: r.Float64()*180 - 90,
		Lon: r.Float64()*360 - 180,
	})
}
