package geo

import (
	"fmt"
	"math"
)

// Vec3 is a Cartesian vector in kilometres, in the Earth-centred frame
// described by LatLon.Vec3.
type Vec3 struct {
	X, Y, Z float64
}

// String implements fmt.Stringer.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f) km", v.X, v.Y, v.Z)
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v multiplied by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		X: v.Y*w.Z - v.Z*w.Y,
		Y: v.Z*w.X - v.X*w.Z,
		Z: v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalised to unit length. The zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// DistanceKm returns the straight-line (chord) distance between v and w in
// kilometres. This is the slant range used for link budgets and for the
// propagation-latency estimates in the paper's Figure 2(b).
func (v Vec3) DistanceKm(w Vec3) float64 { return v.Sub(w).Norm() }

// AngleBetween returns the angle between v and w in radians, in [0, π].
func (v Vec3) AngleBetween(w Vec3) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	// Clamp to guard against floating-point drift outside [-1, 1].
	c := v.Dot(w) / (nv * nw)
	return math.Acos(math.Max(-1, math.Min(1, c)))
}

// LatLon projects v back onto the surface as a geodetic coordinate,
// discarding altitude.
func (v Vec3) LatLon() LatLon {
	r := v.Norm()
	if r == 0 {
		return LatLon{}
	}
	lat := math.Asin(v.Z / r)
	lon := math.Atan2(v.Y, v.X)
	return LatLon{Lat: Degrees(lat), Lon: Degrees(lon)}
}

// AltitudeKm returns the height of v above the spherical Earth surface.
func (v Vec3) AltitudeKm() float64 { return v.Norm() - EarthRadiusKm }

// LineOfSight reports whether the straight segment between a and b clears the
// Earth (with no atmospheric margin). Both endpoints must be at or above the
// surface. It is the geometric feasibility test for inter-satellite links.
func LineOfSight(a, b Vec3) bool {
	// The segment a→b is blocked iff the closest point of the segment to the
	// Earth's centre lies below the surface.
	ab := b.Sub(a)
	den := ab.Dot(ab)
	if den == 0 {
		return a.Norm() >= EarthRadiusKm
	}
	// Parameter of the closest approach of the infinite line to the origin,
	// clamped to the segment.
	t := -a.Dot(ab) / den
	t = math.Max(0, math.Min(1, t))
	closest := a.Add(ab.Scale(t))
	return closest.Norm() >= EarthRadiusKm
}

// ElevationDeg returns the elevation angle in degrees at which a ground
// observer at obs sees the target position. Positive elevations are above
// the local horizon; a satellite is visible when the elevation exceeds the
// terminal's minimum elevation mask.
func ElevationDeg(obs LatLon, target Vec3) float64 {
	o := obs.Vec3(0)
	rel := target.Sub(o)
	if rel.Norm() == 0 {
		return 90
	}
	// Elevation is 90° minus the angle between the local zenith (o) and the
	// direction to the target.
	return 90 - Degrees(o.AngleBetween(rel))
}
