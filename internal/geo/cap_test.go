package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFootprintAngularRadius(t *testing.T) {
	// Zero altitude → zero footprint.
	if got := FootprintAngularRadius(0, 0); got != 0 {
		t.Errorf("zero-altitude footprint = %v", got)
	}
	// Iridium-like: 780 km, 0° mask → acos(Re/(Re+h)) ≈ 0.4658 rad (26.7°).
	got := FootprintAngularRadius(780, 0)
	want := math.Acos(EarthRadiusKm / (EarthRadiusKm + 780))
	if !almostEqual(got, want, 1e-12) {
		t.Errorf("780 km footprint = %v, want %v", got, want)
	}
	// Raising the elevation mask strictly shrinks the footprint.
	prev := got
	for _, el := range []float64{5, 10, 25, 40, 60} {
		r := FootprintAngularRadius(780, el)
		if r >= prev {
			t.Fatalf("footprint did not shrink with elevation mask %v: %v >= %v", el, r, prev)
		}
		prev = r
	}
	// Higher altitude strictly grows the footprint at fixed mask.
	prev = 0
	for _, h := range []float64{300, 550, 780, 1200, 35786} {
		r := FootprintAngularRadius(h, 10)
		if r <= prev {
			t.Fatalf("footprint did not grow with altitude %v", h)
		}
		prev = r
	}
}

func TestSlantRange(t *testing.T) {
	// At 90° elevation the slant range equals the altitude.
	if got := SlantRangeKm(780, 90); !almostEqual(got, 780, 1e-6) {
		t.Errorf("zenith slant range = %v, want 780", got)
	}
	// Slant range grows as elevation drops.
	prev := 0.0
	for _, el := range []float64{90, 60, 30, 10, 5, 0} {
		d := SlantRangeKm(780, el)
		if d < prev {
			t.Fatalf("slant range decreased at elevation %v", el)
		}
		prev = d
	}
	// Horizon slant range for h=780: sqrt((Re+h)² − Re²) ≈ 3294 km.
	want := math.Sqrt(math.Pow(EarthRadiusKm+780, 2) - EarthRadiusKm*EarthRadiusKm)
	if got := SlantRangeKm(780, 0); !almostEqual(got, want, 1e-6) {
		t.Errorf("horizon slant range = %v, want %v", got, want)
	}
}

func TestCapArea(t *testing.T) {
	// Hemisphere.
	h := Cap{Center: LatLon{90, 0}, AngularRadius: math.Pi / 2}
	if got := h.AreaKm2(); !almostEqual(got, EarthSurfaceAreaKm2/2, 1) {
		t.Errorf("hemisphere area = %v, want %v", got, EarthSurfaceAreaKm2/2)
	}
	// Full sphere.
	f := Cap{AngularRadius: math.Pi}
	if got := f.AreaKm2(); !almostEqual(got, EarthSurfaceAreaKm2, 1) {
		t.Errorf("full-sphere area = %v", got)
	}
	// Zero cap.
	if got := (Cap{}).AreaKm2(); got != 0 {
		t.Errorf("zero cap area = %v", got)
	}
}

func TestCapContains(t *testing.T) {
	c := Cap{Center: LatLon{0, 0}, AngularRadius: Radians(10)}
	if !c.Contains(LatLon{0, 0}) || !c.Contains(LatLon{9.99, 0}) {
		t.Error("cap should contain its centre and interior points")
	}
	if c.Contains(LatLon{10.01, 0}) || c.Contains(LatLon{0, 60}) {
		t.Error("cap should not contain exterior points")
	}
}

func TestCapOverlaps(t *testing.T) {
	a := Cap{Center: LatLon{0, 0}, AngularRadius: Radians(10)}
	b := Cap{Center: LatLon{0, 15}, AngularRadius: Radians(10)}
	c := Cap{Center: LatLon{0, 25}, AngularRadius: Radians(4)}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c do not overlap")
	}
	if !b.Overlaps(c) {
		t.Error("b and c overlap")
	}
}

func TestFibonacciGrid(t *testing.T) {
	if got := FibonacciGrid(0); got != nil {
		t.Error("empty grid for n<=0")
	}
	n := 5000
	grid := FibonacciGrid(n)
	if len(grid) != n {
		t.Fatalf("grid size = %d", len(grid))
	}
	for i, p := range grid {
		if !p.Valid() {
			t.Fatalf("grid point %d invalid: %v", i, p)
		}
	}
	// Uniformity check: each hemisphere holds ~half the points.
	north := 0
	for _, p := range grid {
		if p.Lat > 0 {
			north++
		}
	}
	if north < n*45/100 || north > n*55/100 {
		t.Errorf("northern hemisphere has %d of %d points; grid not uniform", north, n)
	}
	// Determinism.
	again := FibonacciGrid(n)
	for i := range grid {
		if grid[i] != again[i] {
			t.Fatal("FibonacciGrid is not deterministic")
		}
	}
}

func TestExactCoverageFraction(t *testing.T) {
	if got := ExactCoverageFraction(nil, 1000); got != 0 {
		t.Errorf("no caps → coverage %v", got)
	}
	// A full-sphere cap covers everything.
	full := []Cap{{AngularRadius: math.Pi}}
	if got := ExactCoverageFraction(full, 1000); got != 1 {
		t.Errorf("full sphere coverage = %v", got)
	}
	// A hemisphere covers half, within sampling error.
	hemi := []Cap{{Center: LatLon{90, 0}, AngularRadius: math.Pi / 2}}
	if got := ExactCoverageFraction(hemi, 20000); math.Abs(got-0.5) > 0.02 {
		t.Errorf("hemisphere coverage = %v, want ~0.5", got)
	}
	// Two disjoint caps add up.
	two := []Cap{
		{Center: LatLon{90, 0}, AngularRadius: Radians(20)},
		{Center: LatLon{-90, 0}, AngularRadius: Radians(20)},
	}
	single := ExactCoverageFraction(two[:1], 20000)
	both := ExactCoverageFraction(two, 20000)
	if math.Abs(both-2*single) > 0.01 {
		t.Errorf("disjoint caps: single=%v both=%v, want both≈2·single", single, both)
	}
}

func TestWorstCaseCoverageFraction(t *testing.T) {
	if got := WorstCaseCoverageFraction(nil); got != 0 {
		t.Errorf("no caps → %v", got)
	}
	r := FootprintAngularRadius(780, 0)
	capAt := func(p LatLon) Cap { return Cap{Center: p, AngularRadius: r} }
	one := WorstCaseCoverageFraction([]Cap{capAt(LatLon{0, 0})})
	wantOne := capAt(LatLon{0, 0}).AreaKm2() / EarthSurfaceAreaKm2
	if !almostEqual(one, wantOne, 1e-12) {
		t.Errorf("single cap coverage = %v, want %v", one, wantOne)
	}
	// Two fully overlapping satellites count once (the paper's rule).
	twoSame := WorstCaseCoverageFraction([]Cap{capAt(LatLon{0, 0}), capAt(LatLon{0, 1})})
	if !almostEqual(twoSame, one, 1e-12) {
		t.Errorf("overlapping pair coverage = %v, want %v", twoSame, one)
	}
	// Two antipodal satellites count twice.
	twoFar := WorstCaseCoverageFraction([]Cap{capAt(LatLon{0, 0}), capAt(LatLon{0, 180})})
	if !almostEqual(twoFar, 2*one, 1e-12) {
		t.Errorf("disjoint pair coverage = %v, want %v", twoFar, 2*one)
	}
	// A chain a–b–c where only neighbours overlap: (a,b) collapse to one
	// cap, c stands alone → two caps' worth of coverage.
	chain := []Cap{capAt(LatLon{0, 0}), capAt(LatLon{0, 40}), capAt(LatLon{0, 80})}
	if got := WorstCaseCoverageFraction(chain); !almostEqual(got, 2*one, 1e-12) {
		t.Errorf("chain coverage = %v, want %v (pair + single)", got, 2*one)
	}
	// Four co-located satellites collapse into two pairs.
	four := []Cap{capAt(LatLon{0, 0}), capAt(LatLon{0, 1}), capAt(LatLon{0, 2}), capAt(LatLon{0, 3})}
	if got := WorstCaseCoverageFraction(four); !almostEqual(got, 2*one, 1e-12) {
		t.Errorf("four co-located coverage = %v, want %v", got, 2*one)
	}
}

func TestWorstCaseBounds(t *testing.T) {
	// The paper's rule always lies between one cap's area (everything
	// pairs down) and the plain sum of areas (nothing overlaps), capped at 1.
	f := func(seeds []LatLon) bool {
		if len(seeds) == 0 || len(seeds) > 20 {
			return true
		}
		r := FootprintAngularRadius(780, 10)
		caps := make([]Cap, len(seeds))
		var sum, largest float64
		for i, s := range seeds {
			caps[i] = Cap{Center: s.Normalize(), AngularRadius: r}
			a := caps[i].AreaKm2()
			sum += a
			if a > largest {
				largest = a
			}
		}
		wc := WorstCaseCoverageFraction(caps)
		lo := math.Min(1, largest/EarthSurfaceAreaKm2)
		hi := math.Min(1, sum/EarthSurfaceAreaKm2)
		// A pair never reports more than the plain sum, and at least half.
		return wc >= lo-1e-12 && wc <= hi+1e-12 && wc >= hi/2-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
