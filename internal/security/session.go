// Package security implements the baseline security layer the paper's §5(6)
// calls for: "a common baseline encryption scheme and security protocol
// implemented by all satellites to ensure secure end-to-end handling of user
// data", plus "a security protocol to quickly identify and cut off bad
// actors in the network".
//
// Three pieces:
//
//   - Session: authenticated end-to-end encryption (AES-256-GCM with keys
//     derived from the user's shared secret) between a user terminal and its
//     home ISP's gateway, so relaying satellites — including other
//     providers' — carry only ciphertext. Interception or tampering by a
//     non-OpenSpace agent shows up as AEAD failure.
//   - Report: Ed25519-signed misbehaviour reports providers file against
//     each other (e.g. ledger fraud caught by economics.CrossVerify, or
//     traffic dropped by a relay).
//   - Registry: a quorum rule over verified reports — a provider accused by
//     enough distinct peers is quarantined, and the routing integration
//     excludes its infrastructure from new paths.
package security

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
)

// Session errors.
var (
	ErrReplay    = errors.New("security: replayed or reordered envelope")
	ErrTampered  = errors.New("security: authentication failed (tampered or wrong key)")
	ErrKeyLength = errors.New("security: master secret required")
)

// Envelope is one sealed message.
type Envelope struct {
	Seq        uint64 // strictly increasing per direction
	Ciphertext []byte // AES-GCM output (includes the tag)
}

// Session provides ordered, authenticated encryption in one direction.
// Create one per direction (user→home and home→user) from the same master
// secret with distinct labels. Not safe for concurrent use.
type Session struct {
	aead    cipher.AEAD
	sendSeq uint64
	recvSeq uint64 // highest sequence accepted so far
}

// DeriveKey expands a master secret and label into a 32-byte session key
// (HKDF-style single-block expand with HMAC-SHA256; one block suffices for
// a 32-byte output).
func DeriveKey(master []byte, label string) []byte {
	mac := hmac.New(sha256.New, master)
	mac.Write([]byte(label)) //lint:allow errdrop hash.Hash.Write is documented to never return an error
	mac.Write([]byte{1})     //lint:allow errdrop hash.Hash.Write is documented to never return an error
	return mac.Sum(nil)
}

// NewSession creates a session keyed by the master secret and direction
// label. Both ends derive the same key from the shared secret established
// at subscription time — no key exchange needs to traverse the network.
func NewSession(master []byte, label string) (*Session, error) {
	if len(master) == 0 {
		return nil, ErrKeyLength
	}
	block, err := aes.NewCipher(DeriveKey(master, label))
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("security: %w", err)
	}
	return &Session{aead: aead}, nil
}

// nonce builds the 96-bit GCM nonce from the sequence number. Sequence
// numbers never repeat within a session, so nonces are unique.
func (s *Session) nonce(seq uint64) []byte {
	n := make([]byte, 12)
	binary.LittleEndian.PutUint64(n[4:], seq)
	return n
}

// Seal encrypts plaintext with associated data aad (bound but not
// encrypted; e.g. the data frame's routing headers, which satellites must
// read to forward).
func (s *Session) Seal(plaintext, aad []byte) Envelope {
	s.sendSeq++
	ct := s.aead.Seal(nil, s.nonce(s.sendSeq), plaintext, aad)
	return Envelope{Seq: s.sendSeq, Ciphertext: ct}
}

// Open authenticates and decrypts an envelope. Envelopes must arrive with
// strictly increasing sequence numbers; replays and reordering below the
// high-water mark are rejected before any crypto runs.
func (s *Session) Open(env Envelope, aad []byte) ([]byte, error) {
	if env.Seq <= s.recvSeq {
		return nil, fmt.Errorf("%w: seq %d ≤ %d", ErrReplay, env.Seq, s.recvSeq)
	}
	pt, err := s.aead.Open(nil, s.nonce(env.Seq), env.Ciphertext, aad)
	if err != nil {
		return nil, ErrTampered
	}
	s.recvSeq = env.Seq
	return pt, nil
}
