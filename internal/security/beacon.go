package security

import (
	"crypto/ed25519"
	"errors"
	"fmt"

	"github.com/openspace-project/openspace/internal/frame"
)

// Beacon authentication errors.
var (
	ErrBeaconUnsigned = errors.New("security: beacon carries no auth tag")
	ErrBeaconSig      = errors.New("security: beacon signature invalid")
)

// beaconSignedBytes returns the canonical bytes a beacon signature covers:
// the beacon's payload encoding with an empty tag.
func beaconSignedBytes(b *frame.Beacon) ([]byte, error) {
	bare := *b
	bare.AuthTag = nil
	wire, err := frame.Encode(&bare)
	if err != nil {
		return nil, err
	}
	return wire, nil
}

// SignBeacon attaches the owning provider's signature so receivers can
// reject spoofed presence broadcasts — §5(6)'s non-OpenSpace agents cannot
// lure users or satellites onto phantom spacecraft.
func SignBeacon(b *frame.Beacon, sign func([]byte) []byte) error {
	msg, err := beaconSignedBytes(b)
	if err != nil {
		return err
	}
	b.AuthTag = sign(msg)
	return nil
}

// VerifyBeacon checks the beacon's tag against the claimed provider's key
// from the trust store.
func VerifyBeacon(b *frame.Beacon, key ed25519.PublicKey) error {
	if len(b.AuthTag) == 0 {
		return ErrBeaconUnsigned
	}
	msg, err := beaconSignedBytes(b)
	if err != nil {
		return err
	}
	if !ed25519.Verify(key, msg, b.AuthTag) {
		return fmt.Errorf("%w: claimed provider %q", ErrBeaconSig, b.ProviderID)
	}
	return nil
}
