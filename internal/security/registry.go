package security

import (
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/topo"
)

// Misbehaviour kinds providers can report.
type ReportKind uint8

// Report kinds.
const (
	// KindLedgerFraud: the accused's traffic claims failed cross-
	// verification (economics.CrossVerify discrepancies).
	KindLedgerFraud ReportKind = iota + 1
	// KindTrafficDrop: traffic handed to the accused for relay never
	// arrived.
	KindTrafficDrop
	// KindInterception: AEAD failures concentrated on paths through the
	// accused — evidence of tampering or a non-OpenSpace intercept.
	KindInterception
)

// String implements fmt.Stringer.
func (k ReportKind) String() string {
	switch k {
	case KindLedgerFraud:
		return "ledger-fraud"
	case KindTrafficDrop:
		return "traffic-drop"
	case KindInterception:
		return "interception"
	default:
		return fmt.Sprintf("ReportKind(%d)", uint8(k))
	}
}

// Report is one provider's signed accusation against another.
type Report struct {
	Reporter string
	Accused  string
	Kind     ReportKind
	Evidence string  // human-auditable description
	AtS      float64 // report time
	Sig      []byte  // Ed25519 over signedBytes
}

func (r *Report) signedBytes() []byte {
	b := make([]byte, 0, 64)
	appendField := func(s string) {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
		b = append(b, s...)
	}
	appendField(r.Reporter)
	appendField(r.Accused)
	b = append(b, byte(r.Kind))
	appendField(r.Evidence)
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(r.AtS))
	return b
}

// Sign attaches the reporter's signature.
func (r *Report) Sign(priv ed25519.PrivateKey) {
	r.Sig = ed25519.Sign(priv, r.signedBytes())
}

// Registry errors.
var (
	ErrUnknownReporter = errors.New("security: reporter not a trusted member")
	ErrBadReportSig    = errors.New("security: report signature invalid")
	ErrSelfReport      = errors.New("security: providers cannot accuse themselves")
)

// Registry collects verified reports and quarantines providers accused by a
// quorum of distinct peers — §5(6)'s "quickly identify and cut off bad
// actors". Safe for concurrent use.
type Registry struct {
	quorum int

	mu      sync.RWMutex
	keys    map[string]ed25519.PublicKey
	accused map[string]map[string]Report // accused → reporter → report
}

// NewRegistry creates a registry requiring quorum distinct accusers before
// quarantine.
func NewRegistry(quorum int) (*Registry, error) {
	if quorum <= 0 {
		return nil, errors.New("security: quorum must be positive")
	}
	return &Registry{
		quorum:  quorum,
		keys:    make(map[string]ed25519.PublicKey),
		accused: make(map[string]map[string]Report),
	}, nil
}

// AddMember registers a provider's report-verification key (the same
// Ed25519 key providers use for certificates).
func (g *Registry) AddMember(provider string, key ed25519.PublicKey) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.keys[provider] = key
}

// Submit verifies and records a report. Duplicate reports by the same
// reporter against the same accused overwrite (one vote per member).
func (g *Registry) Submit(r Report) error {
	if r.Reporter == r.Accused {
		return ErrSelfReport
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	key, ok := g.keys[r.Reporter]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownReporter, r.Reporter)
	}
	if !ed25519.Verify(key, r.signedBytes(), r.Sig) {
		return ErrBadReportSig
	}
	m := g.accused[r.Accused]
	if m == nil {
		m = make(map[string]Report)
		g.accused[r.Accused] = m
	}
	m[r.Reporter] = r
	return nil
}

// Accusers returns how many distinct members currently accuse the provider.
func (g *Registry) Accusers(provider string) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.accused[provider])
}

// Quarantined reports whether the provider has met the quorum.
func (g *Registry) Quarantined(provider string) bool {
	return g.Accusers(provider) >= g.quorum
}

// QuarantinedProviders returns all quarantined providers, sorted.
func (g *Registry) QuarantinedProviders() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []string
	for p, m := range g.accused {
		if len(m) >= g.quorum {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// Withdraw removes a reporter's accusation (e.g. after remediation and
// re-verified ledgers).
func (g *Registry) Withdraw(reporter, accused string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m := g.accused[accused]; m != nil {
		delete(m, reporter)
	}
}

// ExcludeQuarantined wraps a routing cost function so that edges touching a
// quarantined provider's infrastructure become unusable — the "cut off"
// half of §5(6). Paths already in flight are unaffected; new computations
// route around the bad actor.
func ExcludeQuarantined(base routing.CostFunc, g *Registry) routing.CostFunc {
	return func(e topo.Edge, s *topo.Snapshot) (float64, bool) {
		if to := s.Node(e.To); to != nil && g.Quarantined(to.Provider) {
			return 0, false
		}
		if from := s.Node(e.From); from != nil && g.Quarantined(from.Provider) {
			return 0, false
		}
		return base(e, s)
	}
}
