package security

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/openspace-project/openspace/internal/frame"
	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/routing"
	"github.com/openspace-project/openspace/internal/topo"
)

func TestSessionRoundTrip(t *testing.T) {
	master := []byte("user-shared-secret")
	tx, err := NewSession(master, "user->home")
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewSession(master, "user->home")
	if err != nil {
		t.Fatal(err)
	}
	aad := []byte("routing-header")
	for i := 0; i < 10; i++ {
		msg := []byte{byte(i), 'd', 'a', 't', 'a'}
		env := tx.Seal(msg, aad)
		got, err := rx.Open(env, aad)
		if err != nil {
			t.Fatalf("open %d: %v", i, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("message %d mismatch", i)
		}
	}
}

func TestSessionValidation(t *testing.T) {
	if _, err := NewSession(nil, "x"); !errors.Is(err, ErrKeyLength) {
		t.Errorf("empty master: %v", err)
	}
}

func TestSessionReplayRejected(t *testing.T) {
	master := []byte("k")
	tx, _ := NewSession(master, "d")
	rx, _ := NewSession(master, "d")
	e1 := tx.Seal([]byte("one"), nil)
	e2 := tx.Seal([]byte("two"), nil)
	if _, err := rx.Open(e1, nil); err != nil {
		t.Fatal(err)
	}
	// Replay of e1.
	if _, err := rx.Open(e1, nil); !errors.Is(err, ErrReplay) {
		t.Errorf("replay: %v", err)
	}
	if _, err := rx.Open(e2, nil); err != nil {
		t.Fatal(err)
	}
	// Reordering below high-water mark.
	if _, err := rx.Open(e1, nil); !errors.Is(err, ErrReplay) {
		t.Errorf("reorder: %v", err)
	}
}

func TestSessionTamperDetected(t *testing.T) {
	master := []byte("k")
	tx, _ := NewSession(master, "d")
	env := tx.Seal([]byte("secret payload"), []byte("aad"))

	// Flip any ciphertext bit → rejected.
	for i := 0; i < len(env.Ciphertext); i++ {
		rx, _ := NewSession(master, "d")
		mut := env
		mut.Ciphertext = bytes.Clone(env.Ciphertext)
		mut.Ciphertext[i] ^= 0x01
		if _, err := rx.Open(mut, []byte("aad")); !errors.Is(err, ErrTampered) {
			t.Fatalf("bit flip at %d accepted: %v", i, err)
		}
	}
	// Wrong AAD → rejected (the relay cannot swap routing headers).
	rx, _ := NewSession(master, "d")
	if _, err := rx.Open(env, []byte("other-header")); !errors.Is(err, ErrTampered) {
		t.Errorf("aad swap: %v", err)
	}
	// Wrong direction label → different key → rejected.
	rx2, _ := NewSession(master, "home->user")
	if _, err := rx2.Open(env, []byte("aad")); !errors.Is(err, ErrTampered) {
		t.Errorf("cross-direction: %v", err)
	}
}

func TestSealedTrafficUnreadableByRelay(t *testing.T) {
	// A relaying satellite sees only ciphertext: no plaintext bytes of a
	// low-entropy message survive in the envelope.
	tx, _ := NewSession([]byte("k"), "d")
	msg := bytes.Repeat([]byte("A"), 64)
	env := tx.Seal(msg, nil)
	if bytes.Contains(env.Ciphertext, []byte("AAAA")) {
		t.Error("plaintext pattern visible in ciphertext")
	}
}

func TestDeriveKeyProperties(t *testing.T) {
	f := func(master []byte, l1, l2 string) bool {
		if len(master) == 0 || l1 == l2 {
			return true
		}
		k1 := DeriveKey(master, l1)
		k2 := DeriveKey(master, l2)
		return len(k1) == 32 && !bytes.Equal(k1, k2) &&
			bytes.Equal(k1, DeriveKey(master, l1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func memberKey(t *testing.T, seed int64) (ed25519.PublicKey, ed25519.PrivateKey) {
	t.Helper()
	pub, priv, err := ed25519.GenerateKey(rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return pub, priv
}

func TestRegistryQuorum(t *testing.T) {
	reg, err := NewRegistry(2)
	if err != nil {
		t.Fatal(err)
	}
	pubA, privA := memberKey(t, 1)
	pubB, privB := memberKey(t, 2)
	reg.AddMember("a", pubA)
	reg.AddMember("b", pubB)

	r1 := Report{Reporter: "a", Accused: "evil", Kind: KindLedgerFraud, Evidence: "crossverify mismatch", AtS: 10}
	r1.Sign(privA)
	if err := reg.Submit(r1); err != nil {
		t.Fatal(err)
	}
	if reg.Quarantined("evil") {
		t.Error("one accuser should not quarantine at quorum 2")
	}
	// The same reporter filing again does not add a vote.
	r1b := Report{Reporter: "a", Accused: "evil", Kind: KindTrafficDrop, Evidence: "again", AtS: 11}
	r1b.Sign(privA)
	if err := reg.Submit(r1b); err != nil {
		t.Fatal(err)
	}
	if reg.Accusers("evil") != 1 {
		t.Errorf("accusers = %d, want 1", reg.Accusers("evil"))
	}
	// Second distinct accuser trips the quorum.
	r2 := Report{Reporter: "b", Accused: "evil", Kind: KindInterception, Evidence: "aead failures", AtS: 12}
	r2.Sign(privB)
	if err := reg.Submit(r2); err != nil {
		t.Fatal(err)
	}
	if !reg.Quarantined("evil") {
		t.Error("quorum met but not quarantined")
	}
	if got := reg.QuarantinedProviders(); len(got) != 1 || got[0] != "evil" {
		t.Errorf("quarantined list = %v", got)
	}
	// Withdrawal drops below quorum.
	reg.Withdraw("a", "evil")
	if reg.Quarantined("evil") {
		t.Error("withdrawal should lift quarantine")
	}
}

func TestRegistryRejections(t *testing.T) {
	reg, _ := NewRegistry(1)
	pubA, privA := memberKey(t, 1)
	_, privEvil := memberKey(t, 3)
	reg.AddMember("a", pubA)

	// Unknown reporter.
	r := Report{Reporter: "stranger", Accused: "x", Kind: KindLedgerFraud}
	r.Sign(privEvil)
	if err := reg.Submit(r); !errors.Is(err, ErrUnknownReporter) {
		t.Errorf("unknown reporter: %v", err)
	}
	// Bad signature (signed by the wrong key).
	r = Report{Reporter: "a", Accused: "x", Kind: KindLedgerFraud}
	r.Sign(privEvil)
	if err := reg.Submit(r); !errors.Is(err, ErrBadReportSig) {
		t.Errorf("forged report: %v", err)
	}
	// Tampered after signing.
	r = Report{Reporter: "a", Accused: "x", Kind: KindLedgerFraud, Evidence: "real"}
	r.Sign(privA)
	r.Evidence = "altered"
	if err := reg.Submit(r); !errors.Is(err, ErrBadReportSig) {
		t.Errorf("tampered report: %v", err)
	}
	// Self accusation.
	r = Report{Reporter: "a", Accused: "a", Kind: KindLedgerFraud}
	r.Sign(privA)
	if err := reg.Submit(r); !errors.Is(err, ErrSelfReport) {
		t.Errorf("self report: %v", err)
	}
	// Zero quorum invalid.
	if _, err := NewRegistry(0); err == nil {
		t.Error("zero quorum should fail")
	}
}

func TestReportKindStrings(t *testing.T) {
	for k, want := range map[ReportKind]string{
		KindLedgerFraud: "ledger-fraud", KindTrafficDrop: "traffic-drop",
		KindInterception: "interception",
	} {
		if k.String() != want {
			t.Errorf("%d → %q", k, k.String())
		}
	}
	if ReportKind(99).String() == "" {
		t.Error("unknown kind string")
	}
}

func TestExcludeQuarantinedReroutes(t *testing.T) {
	// Build a 2-provider Iridium snapshot; quarantine one provider and
	// verify new paths avoid its satellites entirely.
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	sats := make([]topo.SatSpec, c.Len())
	for i, s := range c.Satellites {
		p := "good"
		if i%2 == 1 {
			p = "evil"
		}
		sats[i] = topo.SatSpec{ID: s.ID, Provider: p, Elements: s.Elements}
	}
	users := []topo.UserSpec{{ID: "u", Provider: "good", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	grounds := []topo.GroundSpec{{ID: "g", Provider: "good", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}}
	// LOS-only ISLs: quarantining half the fleet must still leave the
	// cross-plane zigzag routes that avoid it, so the filter (not radio
	// range) is what this test exercises.
	tcfg := topo.DefaultConfig()
	tcfg.ISLRangeKm = 1e6
	tcfg.MinElevationDeg = 0
	snap := topo.Build(0, tcfg, sats, grounds, users)

	reg, _ := NewRegistry(1)
	pubA, privA := memberKey(t, 1)
	reg.AddMember("good", pubA)
	r := Report{Reporter: "good", Accused: "evil", Kind: KindTrafficDrop, Evidence: "drops"}
	r.Sign(privA)
	if err := reg.Submit(r); err != nil {
		t.Fatal(err)
	}

	cost := ExcludeQuarantined(routing.LatencyCost(0), reg)
	p, err := routing.ShortestPath(snap, "u", "g", cost)
	if err != nil {
		// Possible if good-only satellites cannot connect the endpoints —
		// but half an Iridium constellation should.
		t.Fatalf("no quarantine-free path: %v", err)
	}
	for _, node := range p.Nodes {
		if snap.Node(node).Provider == "evil" {
			t.Fatalf("path traverses quarantined provider: %v", p.Nodes)
		}
	}
	// Without the filter, the optimum uses both providers (sanity check
	// that the filter actually changed anything).
	base, err := routing.ShortestPath(snap, "u", "g", routing.LatencyCost(0))
	if err != nil {
		t.Fatal(err)
	}
	usesEvil := false
	for _, node := range base.Nodes {
		if snap.Node(node).Provider == "evil" {
			usesEvil = true
			break
		}
	}
	if !usesEvil {
		t.Skip("baseline path happens to avoid evil; geometry too benign to compare")
	}
	if p.Cost < base.Cost {
		t.Error("restricted path cannot beat the unrestricted optimum")
	}
}

func TestBeaconSignAndVerify(t *testing.T) {
	pub, priv := memberKey(t, 4)
	sign := func(msg []byte) []byte { return ed25519.Sign(priv, msg) }
	b := &frame.Beacon{
		SatelliteID: "sat-1", ProviderID: "acme", Caps: frame.CapRF,
		Orbit: frame.OrbitalState{SemiMajorAxisKm: 7151}, SentAtS: 10,
	}
	// Unsigned beacons are rejected by enforcing receivers.
	if err := VerifyBeacon(b, pub); !errors.Is(err, ErrBeaconUnsigned) {
		t.Errorf("unsigned: %v", err)
	}
	if err := SignBeacon(b, sign); err != nil {
		t.Fatal(err)
	}
	if err := VerifyBeacon(b, pub); err != nil {
		t.Fatalf("valid beacon rejected: %v", err)
	}
	// A spoofer altering any field invalidates the tag.
	spoofed := *b
	spoofed.SatelliteID = "phantom"
	if err := VerifyBeacon(&spoofed, pub); !errors.Is(err, ErrBeaconSig) {
		t.Errorf("spoofed ID: %v", err)
	}
	spoofed = *b
	spoofed.Orbit.MeanAnomalyDeg = 180
	if err := VerifyBeacon(&spoofed, pub); !errors.Is(err, ErrBeaconSig) {
		t.Errorf("spoofed orbit: %v", err)
	}
	// A non-member key cannot produce acceptable tags.
	_, evil := memberKey(t, 5)
	forged := *b
	SignBeacon(&forged, func(msg []byte) []byte { return ed25519.Sign(evil, msg) })
	if err := VerifyBeacon(&forged, pub); !errors.Is(err, ErrBeaconSig) {
		t.Errorf("forged tag: %v", err)
	}
	// The signed beacon survives the wire.
	wire, err := frame.Encode(b)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := frame.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyBeacon(decoded.(*frame.Beacon), pub); err != nil {
		t.Errorf("transported beacon rejected: %v", err)
	}
}
