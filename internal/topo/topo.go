// Package topo builds the time-varying network topology of an OpenSpace
// deployment: graph snapshots whose nodes are satellites, ground stations
// and users, and whose edges are the feasible links at an instant.
//
// The paper's central routing observation (§2.2) is that because orbits are
// public and predictable, "all firms that contribute satellites to OpenSpace
// have a full public view of the topology of the entire network, including
// how it is likely to evolve over time". A TimeExpanded series of snapshots
// is the concrete form of that view: every provider can compute the same
// one from public orbital elements, which is what makes proactive routing
// and the cost model's cross-verifiable accounting possible.
package topo

import (
	"fmt"
	"sort"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
	"github.com/openspace-project/openspace/internal/phy"
)

// NodeKind distinguishes the three entity classes of a LEO network (§2):
// ground users, satellites, and ground stations.
type NodeKind int

// Node kinds.
const (
	KindSatellite NodeKind = iota
	KindGroundStation
	KindUser
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case KindSatellite:
		return "satellite"
	case KindGroundStation:
		return "ground-station"
	case KindUser:
		return "user"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is one vertex of a snapshot.
type Node struct {
	ID       string
	Kind     NodeKind
	Provider string   // owning firm; heterogeneity-aware routing uses this
	Pos      geo.Vec3 // ECEF at the snapshot time
	HasLaser bool     // optical ISL capability (satellites only)
}

// LinkKind distinguishes edge classes.
type LinkKind int

// Link kinds.
const (
	LinkISLRF LinkKind = iota
	LinkISLLaser
	LinkGround // satellite ↔ ground station
	LinkAccess // satellite ↔ user
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	switch k {
	case LinkISLRF:
		return "isl-rf"
	case LinkISLLaser:
		return "isl-laser"
	case LinkGround:
		return "ground"
	case LinkAccess:
		return "access"
	default:
		return fmt.Sprintf("LinkKind(%d)", int(k))
	}
}

// Edge is one feasible link at the snapshot time. Edges are stored
// directed (both directions present) so per-direction costs are possible.
type Edge struct {
	From, To    string
	Kind        LinkKind
	DistanceKm  float64
	DelayS      float64 // one-way propagation delay
	CapacityBps float64
	CrossOwner  bool // endpoints belong to different providers
}

// Snapshot is the network graph at one instant.
type Snapshot struct {
	TimeS float64
	nodes map[string]*Node
	adj   map[string][]Edge
	edges int // directed edge count
}

// Node returns the node with the given ID, or nil.
func (s *Snapshot) Node(id string) *Node { return s.nodes[id] }

// Nodes returns all node IDs in deterministic (sorted) order.
func (s *Snapshot) Nodes() []string {
	ids := make([]string, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Neighbors returns the outgoing edges of id.
func (s *Snapshot) Neighbors(id string) []Edge { return s.adj[id] }

// NodeCount returns the number of nodes.
func (s *Snapshot) NodeCount() int { return len(s.nodes) }

// EdgeCount returns the number of directed edges.
func (s *Snapshot) EdgeCount() int { return s.edges }

// Edge returns the edge from → to if present.
func (s *Snapshot) Edge(from, to string) (Edge, bool) {
	for _, e := range s.adj[from] {
		if e.To == to {
			return e, true
		}
	}
	return Edge{}, false
}

// NewSnapshot assembles a snapshot directly from nodes and directed edges,
// bypassing the orbital feasibility rules of Build. It is the synthetic-graph
// entry point: capacity-planning tests and benchmarks use it to construct
// graphs with exactly known capacities. Each edge is taken as given (one
// direction only; callers wanting symmetry add both directions), endpoints
// must name declared nodes, and duplicate directed edges are rejected so a
// (from, to) pair identifies at most one link.
func NewSnapshot(t float64, nodes []Node, edges []Edge) (*Snapshot, error) {
	s := &Snapshot{
		TimeS: t,
		nodes: make(map[string]*Node, len(nodes)),
		adj:   make(map[string][]Edge),
	}
	for i := range nodes {
		n := nodes[i]
		if n.ID == "" {
			return nil, fmt.Errorf("topo: node %d has empty ID", i)
		}
		if _, dup := s.nodes[n.ID]; dup {
			return nil, fmt.Errorf("topo: duplicate node %q", n.ID)
		}
		s.nodes[n.ID] = &n
	}
	seen := make(map[[2]string]bool, len(edges))
	for _, e := range edges {
		if s.nodes[e.From] == nil || s.nodes[e.To] == nil {
			return nil, fmt.Errorf("topo: edge %s→%s references unknown node", e.From, e.To)
		}
		if e.From == e.To {
			return nil, fmt.Errorf("topo: self-loop on %q", e.From)
		}
		key := [2]string{e.From, e.To}
		if seen[key] {
			return nil, fmt.Errorf("topo: duplicate edge %s→%s", e.From, e.To)
		}
		seen[key] = true
		s.adj[e.From] = append(s.adj[e.From], e)
		s.edges++
	}
	for id := range s.adj {
		es := s.adj[id]
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
	}
	return s, nil
}

// SatSpec describes one satellite feeding a snapshot build.
type SatSpec struct {
	ID       string
	Provider string
	Elements orbit.Elements
	HasLaser bool
	MaxISLs  int // power-budget cap on simultaneous ISLs; 0 = unlimited
}

// GroundSpec describes a ground station.
type GroundSpec struct {
	ID       string
	Provider string
	Pos      geo.LatLon
}

// UserSpec describes a ground user terminal.
type UserSpec struct {
	ID       string
	Provider string // home ISP
	Pos      geo.LatLon
}

// Config sets the link-feasibility rules for snapshot building. The zero
// value is not useful; start from DefaultConfig.
type Config struct {
	// ISLRangeKm caps RF ISL length (power-limited). Laser ISLs use
	// LaserRangeKm. Line of sight over the Earth limb is always required.
	ISLRangeKm   float64
	LaserRangeKm float64
	// MinElevationDeg is the ground terminal elevation mask for both
	// ground-station and user links.
	MinElevationDeg float64
	// Capacities assigned to built links.
	RFISLBps    float64
	LaserISLBps float64
	GroundBps   float64
	AccessBps   float64
	// Workers bounds the parallel snapshot builders BuildTimeExpanded
	// fans out; ≤0 means one per CPU, 1 forces serial builds. Snapshots
	// are pure functions of their timestamp and are collected in time
	// order, so the series is identical at any worker count.
	Workers int
	// StaticISLs switches inter-satellite wiring from the geometric
	// every-visible-pair rule to an explicit plan — e.g. the +Grid wiring
	// of orbit.WalkerConfig.GridISLs — which is how mega-constellations
	// actually fly and what keeps the link count linear in the fleet.
	// Planned pairs are still feasibility-checked per snapshot (range and
	// line of sight), so seam or polar links that stretch beyond reach
	// drop out of that snapshot; pairs naming unknown satellites are
	// ignored, and MaxISLs degree caps still apply.
	StaticISLs []orbit.ISLPair
}

// DefaultConfig returns feasibility rules derived from the phy package's
// standard terminals: S-band RF ISLs, ConLCT80-class laser ISLs, Ku ground
// links, and a 10° elevation mask.
func DefaultConfig() Config {
	rf := phy.StandardSBand()
	laser := phy.ConLCT80()
	ground := phy.DefaultGroundLink()
	return Config{
		ISLRangeKm:      rf.MaxRangeKm(0, 20000),
		LaserRangeKm:    laser.MaxRangeKm(40000),
		MinElevationDeg: 10,
		RFISLBps:        rf.Budget(2000, 0).CapacityBps,
		LaserISLBps:     laser.DataRateBps,
		GroundBps:       ground.Budget(geo.SlantRangeKm(780, 30), 30).CapacityBps,
		AccessBps:       50e6,
	}
}

// Build constructs the snapshot at time t.
//
// ISLs: with no explicit plan, every satellite pair with line of sight
// and within range gets a link — laser when both ends carry terminals and
// are within laser range, otherwise RF (the paper's "RF at a minimum,
// optionally laser" rule). When a satellite has a MaxISLs power budget,
// its nearest neighbours are kept — locally optimal for link quality, and
// deterministic. With cfg.StaticISLs set, only the planned pairs are
// considered (mega-constellation +Grid wiring). Ground and access links
// attach by elevation mask.
//
// Candidate pairs come from a spatial index over the ECEF positions
// rather than an all-pairs scan, and every candidate is re-checked
// against the exact feasibility predicates, so the snapshot is identical
// to a brute-force build — the property test in spatial_test.go pins
// this.
func Build(t float64, cfg Config, sats []SatSpec, grounds []GroundSpec, users []UserSpec) *Snapshot {
	return newBuilder(cfg, sats, grounds, users).SnapshotAt(t)
}

func (s *Snapshot) addBidirectional(a, b string, kind LinkKind, distKm, capBps float64, cross bool) {
	delay := distKm / phy.SpeedOfLightKmS
	s.adj[a] = append(s.adj[a], Edge{From: a, To: b, Kind: kind, DistanceKm: distKm, DelayS: delay, CapacityBps: capBps, CrossOwner: cross})
	s.adj[b] = append(s.adj[b], Edge{From: b, To: a, Kind: kind, DistanceKm: distKm, DelayS: delay, CapacityBps: capBps, CrossOwner: cross})
	s.edges += 2
}
