package topo

// Mask hides failed network elements from a snapshot view. Implementations
// report which nodes and links are currently down; EdgeDown must treat the
// link as undirected (a failed laser terminal or flapped ISL kills both
// directions). The fault-injection layer (internal/faults) provides the
// canonical implementation.
type Mask interface {
	// NodeDown reports whether the node is failed.
	NodeDown(id string) bool
	// EdgeDown reports whether the undirected link between from and to is
	// failed.
	EdgeDown(from, to string) bool
	// Empty reports whether nothing is down, enabling the no-op fast path.
	Empty() bool
}

// Overlay returns the degraded view of s under m: masked nodes disappear
// along with their incident edges, and masked links disappear in both
// directions. Geometry is never rebuilt — node pointers and edge values are
// shared with the original snapshot, and adjacency slices are shared
// whenever the mask does not touch them, so an overlay costs one filtered
// pass over the adjacency lists rather than an O(N²) feasibility build.
//
// A nil or empty mask returns s itself: fault injection disabled is a
// provable no-op, which is what lets every fault-free experiment regenerate
// byte-identical output.
func (s *Snapshot) Overlay(m Mask) *Snapshot {
	if m == nil || m.Empty() {
		return s
	}
	out := &Snapshot{
		TimeS: s.TimeS,
		nodes: make(map[string]*Node, len(s.nodes)),
		adj:   make(map[string][]Edge),
	}
	for id, n := range s.nodes {
		if m.NodeDown(id) {
			continue
		}
		out.nodes[id] = n
	}
	for id := range out.nodes {
		es := s.adj[id]
		drop := 0
		for _, e := range es {
			if m.NodeDown(e.To) || m.EdgeDown(e.From, e.To) {
				drop++
			}
		}
		if drop == 0 {
			if len(es) > 0 {
				out.adj[id] = es // untouched list: share, don't copy
			}
			out.edges += len(es)
			continue
		}
		if drop == len(es) {
			continue
		}
		kept := make([]Edge, 0, len(es)-drop)
		for _, e := range es {
			if m.NodeDown(e.To) || m.EdgeDown(e.From, e.To) {
				continue
			}
			kept = append(kept, e)
		}
		out.adj[id] = kept
		out.edges += len(kept)
	}
	return out
}

// Overlay returns the series with every snapshot degraded under the mask's
// state at call time. Snapshots the mask does not touch are shared with the
// original series; an empty mask returns the series itself.
func (te *TimeExpanded) Overlay(m Mask) *TimeExpanded {
	if m == nil || m.Empty() {
		return te
	}
	snaps := make([]*Snapshot, len(te.Snaps))
	for i, s := range te.Snaps {
		snaps[i] = s.Overlay(m)
	}
	return &TimeExpanded{StartS: te.StartS, IntervalS: te.IntervalS, Snaps: snaps}
}
