package topo

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/exec"
)

// TimeExpanded is a series of snapshots at a fixed cadence — the network's
// public, precomputable evolution (§2.2). Proactive routing computes paths
// on each snapshot ahead of time; the handover layer reads consecutive
// snapshots to pick successors.
type TimeExpanded struct {
	StartS    float64
	IntervalS float64
	Snaps     []*Snapshot
}

// BuildTimeExpanded constructs snapshots at startS, startS+intervalS, …
// covering [startS, startS+horizonS]. Each snapshot is an independent pure
// function of its timestamp, so they are built in parallel on cfg.Workers
// workers (one per CPU when ≤0) and collected in time order; the resulting
// series is identical at any worker count.
func BuildTimeExpanded(startS, horizonS, intervalS float64, cfg Config, sats []SatSpec, grounds []GroundSpec, users []UserSpec) (*TimeExpanded, error) {
	if intervalS <= 0 {
		return nil, fmt.Errorf("topo: interval %.1f must be positive", intervalS)
	}
	if horizonS < 0 {
		return nil, fmt.Errorf("topo: horizon %.1f must be non-negative", horizonS)
	}
	steps := int(horizonS/intervalS) + 1
	snaps, err := exec.Map(cfg.Workers, steps, func(i int) (*Snapshot, error) {
		return Build(startS+float64(i)*intervalS, cfg, sats, grounds, users), nil
	})
	if err != nil {
		return nil, err
	}
	return &TimeExpanded{StartS: startS, IntervalS: intervalS, Snaps: snaps}, nil
}

// At returns the snapshot in force at time t: the latest snapshot whose
// time is ≤ t, clamped to the series bounds.
func (te *TimeExpanded) At(t float64) *Snapshot {
	if len(te.Snaps) == 0 {
		return nil
	}
	idx := int((t - te.StartS) / te.IntervalS)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(te.Snaps) {
		idx = len(te.Snaps) - 1
	}
	return te.Snaps[idx]
}

// EndS returns the time of the last snapshot.
func (te *TimeExpanded) EndS() float64 {
	if len(te.Snaps) == 0 {
		return te.StartS
	}
	return te.Snaps[len(te.Snaps)-1].TimeS
}
