package topo

import (
	"fmt"

	"github.com/openspace-project/openspace/internal/exec"
)

// TimeExpanded is a series of snapshots at a fixed cadence — the network's
// public, precomputable evolution (§2.2). Proactive routing computes paths
// on each snapshot ahead of time; the handover layer reads consecutive
// snapshots to pick successors.
type TimeExpanded struct {
	StartS    float64
	IntervalS float64
	Snaps     []*Snapshot
}

// timeExpandedBlock is how many consecutive snapshots share one
// incremental builder. Within a block the builder's candidate lists carry
// over between steps (delta updates); blocks are fixed-size and
// independent, so the series is identical at any worker count and every
// snapshot is byte-identical to a from-scratch Build at its timestamp.
const timeExpandedBlock = 16

// BuildTimeExpanded constructs snapshots at startS, startS+intervalS, …
// covering [startS, startS+horizonS]. Steps are grouped into contiguous
// blocks that run in parallel on cfg.Workers workers (one per CPU when
// ≤0); within a block each snapshot is a delta update of its predecessor
// rather than a full rebuild. Results are collected in time order and are
// identical at any worker count.
func BuildTimeExpanded(startS, horizonS, intervalS float64, cfg Config, sats []SatSpec, grounds []GroundSpec, users []UserSpec) (*TimeExpanded, error) {
	if intervalS <= 0 {
		return nil, fmt.Errorf("topo: interval %.1f must be positive", intervalS)
	}
	if horizonS < 0 {
		return nil, fmt.Errorf("topo: horizon %.1f must be non-negative", horizonS)
	}
	steps := int(horizonS/intervalS) + 1
	blocks := (steps + timeExpandedBlock - 1) / timeExpandedBlock
	blockSnaps, err := exec.Map(cfg.Workers, blocks, func(bi int) ([]*Snapshot, error) {
		lo := bi * timeExpandedBlock
		hi := lo + timeExpandedBlock
		if hi > steps {
			hi = steps
		}
		b := newBuilder(cfg, sats, grounds, users)
		out := make([]*Snapshot, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, b.SnapshotAt(startS+float64(i)*intervalS))
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	snaps := make([]*Snapshot, 0, steps)
	for _, bs := range blockSnaps {
		snaps = append(snaps, bs...)
	}
	return &TimeExpanded{StartS: startS, IntervalS: intervalS, Snaps: snaps}, nil
}

// At returns the snapshot in force at time t: the latest snapshot whose
// time is ≤ t, clamped to the series bounds.
func (te *TimeExpanded) At(t float64) *Snapshot {
	if len(te.Snaps) == 0 {
		return nil
	}
	idx := int((t - te.StartS) / te.IntervalS)
	if idx < 0 {
		idx = 0
	}
	if idx >= len(te.Snaps) {
		idx = len(te.Snaps) - 1
	}
	return te.Snaps[idx]
}

// EndS returns the time of the last snapshot.
func (te *TimeExpanded) EndS() float64 {
	if len(te.Snaps) == 0 {
		return te.StartS
	}
	return te.Snaps[len(te.Snaps)-1].TimeS
}
