package topo

import (
	"math"
	"sort"

	"github.com/openspace-project/openspace/internal/geo"
)

// satIndex is a uniform cell grid over satellite ECEF positions — the
// spatial index that replaces the O(N²) all-pairs scans of snapshot
// construction. Cells are cubes of cellKm kilometres keyed by their
// integer coordinates; a range query enumerates only the cells a ball
// overlaps, so candidate generation is linear in the fleet size times the
// (bounded) neighbourhood occupancy instead of quadratic in the fleet.
//
// The index is purely a pruning structure: it may return candidates
// beyond the query radius (cell corners), and callers re-apply the exact
// feasibility predicates. It never misses a point within the radius, so a
// build that filters index candidates is byte-identical to one that
// filters all pairs.
type satIndex struct {
	cellKm float64
	cells  map[[3]int32][]int // satellite indices, ascending per cell
	pos    []geo.Vec3
}

// newSatIndex buckets the positions into cells of the given size. Cell
// size trades lookup fan-out against candidate tightness; pairsWithin and
// within are exact-superset queries at any positive size.
func newSatIndex(pos []geo.Vec3, cellKm float64) *satIndex {
	if cellKm <= 0 {
		cellKm = 1
	}
	ix := &satIndex{
		cellKm: cellKm,
		cells:  make(map[[3]int32][]int, len(pos)),
		pos:    pos,
	}
	for i, p := range pos {
		k := ix.key(p)
		ix.cells[k] = append(ix.cells[k], i)
	}
	return ix
}

func (ix *satIndex) key(p geo.Vec3) [3]int32 {
	return [3]int32{
		int32(math.Floor(p.X / ix.cellKm)),
		int32(math.Floor(p.Y / ix.cellKm)),
		int32(math.Floor(p.Z / ix.cellKm)),
	}
}

// reach returns how many cells out a ball of radius rKm can spill.
func (ix *satIndex) reach(rKm float64) int32 {
	return int32(math.Ceil(rKm / ix.cellKm))
}

// pairsWithin appends to dst every unordered index pair (i < j) whose
// separation can be ≤ rKm: all pairs co-resident within reach cells.
// Each pair is visited exactly once (from its lower index), in ascending
// (i, then cell-lexicographic, then j) order — deterministic by
// construction, no sorting needed.
func (ix *satIndex) pairsWithin(rKm float64, dst [][2]int) [][2]int {
	r := ix.reach(rKm)
	for i := range ix.pos {
		base := ix.key(ix.pos[i])
		for dx := -r; dx <= r; dx++ {
			for dy := -r; dy <= r; dy++ {
				for dz := -r; dz <= r; dz++ {
					k := [3]int32{base[0] + dx, base[1] + dy, base[2] + dz}
					for _, j := range ix.cells[k] {
						if j > i {
							dst = append(dst, [2]int{i, j})
						}
					}
				}
			}
		}
	}
	return dst
}

// within appends to dst every satellite index whose distance to p can be
// ≤ rKm, then sorts the result ascending so callers see a canonical
// order regardless of cell layout.
func (ix *satIndex) within(p geo.Vec3, rKm float64, dst []int) []int {
	r := ix.reach(rKm)
	base := ix.key(p)
	start := len(dst)
	for dx := -r; dx <= r; dx++ {
		for dy := -r; dy <= r; dy++ {
			for dz := -r; dz <= r; dz++ {
				k := [3]int32{base[0] + dx, base[1] + dy, base[2] + dz}
				dst = append(dst, ix.cells[k]...)
			}
		}
	}
	sort.Ints(dst[start:])
	return dst
}

// attachRadiusKm bounds how far a ground terminal can see a satellite:
// the slant range to the highest satellite at the elevation mask, plus a
// kilometre of float margin so the index never prunes a point the exact
// elevation test would accept. Masks below the nadir clamp to the
// through-Earth maximum.
func attachRadiusKm(maxAltKm, minElevationDeg float64) float64 {
	if maxAltKm <= 0 {
		maxAltKm = 1
	}
	if minElevationDeg < -90 {
		minElevationDeg = -90
	}
	return geo.SlantRangeKm(maxAltKm, minElevationDeg) + 1
}
