package topo

import (
	"fmt"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// TestTimeExpandedIncrementalEqualsFull pins the incremental contract:
// a BuildTimeExpanded series (delta updates within blocks) must equal a
// from-scratch Build at every timestamp, for geometric and explicit
// +Grid wiring alike, and be invariant to the worker count. The 20 s
// cadence makes consecutive snapshots fall inside the watch-list
// validity window, so the delta path is genuinely exercised.
func TestTimeExpandedIncrementalEqualsFull(t *testing.T) {
	grounds := []GroundSpec{
		{ID: "g0", Provider: "A", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}},
		{ID: "g1", Provider: "B", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}},
	}
	users := []UserSpec{
		{ID: "u0", Provider: "A", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}},
	}

	w, err := orbit.SquareWalkerDelta(60, 780, 53)
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	gridPairs, err := w.GridISLs(w.DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	gridSpecs := make([]SatSpec, c.Len())
	for i, s := range c.Satellites {
		gridSpecs[i] = SatSpec{ID: s.ID, Provider: "A", Elements: s.Elements, HasLaser: true}
	}

	cases := []struct {
		name  string
		cfg   Config
		specs []SatSpec
	}{
		{"geometric-iridium", DefaultConfig(), iridiumSpecs(t, 2, true)},
		{"geometric-random", DefaultConfig(), randomSpecs(70, 5)},
		{"grid-walker", func() Config {
			cfg := DefaultConfig()
			cfg.StaticISLs = gridPairs
			return cfg
		}(), gridSpecs},
	}
	const startS, horizonS, intervalS = 0.0, 1200.0, 20.0
	for _, tc := range cases {
		tc.cfg.Workers = 1
		te, err := BuildTimeExpanded(startS, horizonS, intervalS, tc.cfg, tc.specs, grounds, users)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		wantSteps := int(horizonS/intervalS) + 1
		if len(te.Snaps) != wantSteps {
			t.Fatalf("%s: %d snapshots, want %d", tc.name, len(te.Snaps), wantSteps)
		}
		for i, snap := range te.Snaps {
			ts := startS + float64(i)*intervalS
			if snap.TimeS != ts {
				t.Fatalf("%s: snapshot %d at %v, want %v", tc.name, i, snap.TimeS, ts)
			}
			full := Build(ts, tc.cfg, tc.specs, grounds, users)
			assertSnapshotsEqual(t, fmt.Sprintf("%s step %d", tc.name, i), snap, full)
		}

		// Worker-count invariance: blocks are fixed-size and independent.
		tc.cfg.Workers = 4
		te4, err := BuildTimeExpanded(startS, horizonS, intervalS, tc.cfg, tc.specs, grounds, users)
		if err != nil {
			t.Fatalf("%s workers=4: %v", tc.name, err)
		}
		for i := range te.Snaps {
			assertSnapshotsEqual(t, fmt.Sprintf("%s workers step %d", tc.name, i), te4.Snaps[i], te.Snaps[i])
		}
	}
}

// TestStaticISLWiring checks the +Grid plan end to end on a snapshot:
// degree ≤ 4, all edges planned, unknown IDs ignored, caps honoured.
func TestStaticISLWiring(t *testing.T) {
	w, err := orbit.SquareWalkerDelta(36, 550, 53)
	if err != nil {
		t.Fatal(err)
	}
	c, err := w.Build()
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := w.GridISLs(w.DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	planned := make(map[string]bool, len(pairs))
	for _, p := range pairs {
		planned[p.A+"|"+p.B] = true
		planned[p.B+"|"+p.A] = true
	}
	specs := make([]SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = SatSpec{ID: s.ID, Provider: "p", Elements: s.Elements, HasLaser: true}
	}
	cfg := DefaultConfig()
	cfg.StaticISLs = append([]orbit.ISLPair{
		{A: "no-such-sat", B: specs[0].ID}, // ignored, not an error
		{A: specs[0].ID, B: specs[0].ID},   // self-loop, ignored
	}, pairs...)
	snap := Build(0, cfg, specs, nil, nil)
	for _, id := range snap.Nodes() {
		es := snap.Neighbors(id)
		if len(es) > 4 {
			t.Fatalf("sat %s has %d ISLs, +Grid caps at 4", id, len(es))
		}
		for _, e := range es {
			if !planned[e.From+"|"+e.To] {
				t.Fatalf("edge %s→%s not in the wiring plan", e.From, e.To)
			}
		}
	}
	if snap.EdgeCount() == 0 {
		t.Fatal("no ISLs built from the +Grid plan")
	}
}
