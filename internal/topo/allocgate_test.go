package topo

import (
	"os"
	"testing"
)

// allocGate skips unless the zero-allocation gates are explicitly enabled
// (OPENSPACE_ALLOC_GATE=1, as CI's alloc-gate step does).
func allocGate(t *testing.T) {
	t.Helper()
	if os.Getenv("OPENSPACE_ALLOC_GATE") == "" {
		t.Skip("set OPENSPACE_ALLOC_GATE=1 to run the zero-allocation gates")
	}
}

// TestAllocGateFeasibleISLs pins the //lint:hotpath contract on
// builder.feasibleISLs: with positions and watch lists in place, the
// range/line-of-sight filter and its deterministic sort must reuse the
// builder's scratch and allocate nothing.
func TestAllocGateFeasibleISLs(t *testing.T) {
	allocGate(t)
	b := newBuilder(DefaultConfig(), randomSpecs(128, 3), nil, nil)
	b.SnapshotAt(0) // fills positions, builds watch lists, sizes the scratch
	cands := b.watchISL
	if b.staticMode {
		cands = b.staticPairs
	}
	b.feasibleISLs(cands)
	nWarm := len(b.feasible)
	if nWarm == 0 {
		t.Fatal("fixture produced no feasible ISL pairs; gate would be vacuous")
	}
	run := func() {
		b.feasibleISLs(cands)
		if got := len(b.feasible); got != nWarm {
			t.Fatalf("feasible set size changed across runs: %d → %d", nWarm, got)
		}
	}
	if avg := testing.AllocsPerRun(100, run); avg != 0 {
		t.Fatalf("feasibleISLs allocates %.2f per snapshot, want 0", avg)
	}
}
