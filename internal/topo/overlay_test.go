package topo

import "testing"

// fakeMask is a test mask over explicit sets.
type fakeMask struct {
	nodes map[string]bool
	edges map[[2]string]bool
}

func (m fakeMask) NodeDown(id string) bool { return m.nodes[id] }
func (m fakeMask) EdgeDown(a, b string) bool {
	if a > b {
		a, b = b, a
	}
	return m.edges[[2]string{a, b}]
}
func (m fakeMask) Empty() bool { return len(m.nodes) == 0 && len(m.edges) == 0 }

// lineSnapshot builds a→b→c→d with symmetric edges.
func lineSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	nodes := []Node{
		{ID: "a", Kind: KindUser}, {ID: "b", Kind: KindSatellite},
		{ID: "c", Kind: KindSatellite}, {ID: "d", Kind: KindGroundStation},
	}
	var edges []Edge
	for _, p := range [][2]string{{"a", "b"}, {"b", "c"}, {"c", "d"}} {
		edges = append(edges,
			Edge{From: p[0], To: p[1], Kind: LinkISLRF, CapacityBps: 1e6},
			Edge{From: p[1], To: p[0], Kind: LinkISLRF, CapacityBps: 1e6})
	}
	s, err := NewSnapshot(5, nodes, edges)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOverlayEmptyMaskIsIdentity(t *testing.T) {
	s := lineSnapshot(t)
	if got := s.Overlay(nil); got != s {
		t.Error("nil mask should return the snapshot itself")
	}
	if got := s.Overlay(fakeMask{}); got != s {
		t.Error("empty mask should return the snapshot itself")
	}
	te := &TimeExpanded{StartS: 0, IntervalS: 1, Snaps: []*Snapshot{s}}
	if got := te.Overlay(fakeMask{}); got != te {
		t.Error("empty mask should return the series itself")
	}
}

func TestOverlayNodeRemoval(t *testing.T) {
	s := lineSnapshot(t)
	d := s.Overlay(fakeMask{nodes: map[string]bool{"c": true}})
	if d == s {
		t.Fatal("non-empty mask must produce a new view")
	}
	if d.Node("c") != nil {
		t.Error("masked node still visible")
	}
	if d.NodeCount() != 3 {
		t.Errorf("NodeCount = %d, want 3", d.NodeCount())
	}
	// c's incident edges are gone in both directions: a↔b survives only.
	if d.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d, want 2", d.EdgeCount())
	}
	if _, ok := d.Edge("b", "c"); ok {
		t.Error("edge into masked node survived")
	}
	if _, ok := d.Edge("a", "b"); !ok {
		t.Error("untouched edge lost")
	}
	// The original is untouched.
	if s.NodeCount() != 4 || s.EdgeCount() != 6 {
		t.Error("overlay mutated the original snapshot")
	}
	// Node values are shared, not copied.
	if d.Node("a") != s.Node("a") {
		t.Error("overlay copied node values instead of sharing them")
	}
	if d.TimeS != s.TimeS {
		t.Error("overlay changed the snapshot time")
	}
}

func TestOverlayEdgeRemovalIsUndirected(t *testing.T) {
	s := lineSnapshot(t)
	d := s.Overlay(fakeMask{edges: map[[2]string]bool{{"b", "c"}: true}})
	if _, ok := d.Edge("b", "c"); ok {
		t.Error("masked edge survived forward")
	}
	if _, ok := d.Edge("c", "b"); ok {
		t.Error("masked edge survived reverse")
	}
	if d.EdgeCount() != 4 {
		t.Errorf("EdgeCount = %d, want 4", d.EdgeCount())
	}
	if d.NodeCount() != 4 {
		t.Errorf("NodeCount = %d, want all 4 nodes", d.NodeCount())
	}
	// Untouched adjacency lists are shared with the original.
	if len(d.Neighbors("a")) != 1 {
		t.Errorf("a's neighbours = %d, want 1", len(d.Neighbors("a")))
	}
}

func TestOverlayStacks(t *testing.T) {
	s := lineSnapshot(t)
	d1 := s.Overlay(fakeMask{edges: map[[2]string]bool{{"a", "b"}: true}})
	d2 := d1.Overlay(fakeMask{nodes: map[string]bool{"d": true}})
	if d2.EdgeCount() != 2 || d2.NodeCount() != 3 {
		t.Errorf("stacked overlay: %d nodes / %d edges, want 3 / 2",
			d2.NodeCount(), d2.EdgeCount())
	}
}
