package topo

import (
	"math"
	"slices"
	"sort"
	"strings"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// builder constructs snapshots of one fixed deployment (satellites,
// ground segment, feasibility config) at many timestamps. It is the
// engine behind both Build (one fresh builder per call) and the
// incremental BuildTimeExpanded path (one builder per contiguous block of
// steps), and the two are byte-identical by construction: every snapshot
// is assembled by exact feasibility filtering over candidate sets that
// provably contain the feasible sets.
//
// Between nearby timestamps the builder reuses its candidate ("watch")
// lists, molecular-dynamics style: a spatial-index query at time t₀ with
// radius R + skin stays a superset of the radius-R feasible set until
// relative motion could have closed the skin gap, i.e. for
// |t−t₀| ≤ skin / closing-speed. Orbital geometry gives hard closing
// speed bounds (vis-viva at perigee plus the Earth-rotation term), so
// reuse is sound, not heuristic — and when a requested time falls outside
// the validity window the lists are simply rebuilt.
type builder struct {
	cfg     Config
	sats    []SatSpec
	grounds []GroundSpec
	users   []UserSpec

	entities []groundEntity // grounds then users, flattened

	maxISLKm     float64  // global candidate radius for geometric ISL wiring
	attachKm     float64  // ground↔satellite candidate radius
	staticPairs  [][2]int // resolved Config.StaticISLs; nil = geometric rule
	staticMode   bool
	pairSpeed    float64 // bound on any sat-sat closing speed (km/s)
	groundSpeed  float64 // bound on any sat-ground closing speed (km/s)
	skinISLKm    float64
	skinGroundKm float64

	// Per-timestamp scratch, reused across SnapshotAt calls. Nothing here
	// escapes into returned snapshots — a contract the scratchsafe
	// analyzer now checks rather than this comment merely asserting.
	pos      []geo.Vec3     //lint:scratch
	feasible []feasiblePair //lint:scratch
	degree   []int          //lint:scratch

	// Watch lists and their validity window.
	watchISL    [][2]int
	watchGround [][]int
	watchT      float64
	watchValidS float64
	haveWatch   bool
}

type groundEntity struct {
	id       string
	provider string
	kind     LinkKind
	capBps   float64
	ll       geo.LatLon
	pos      geo.Vec3
}

type feasiblePair struct {
	i, j int
	d    float64
}

// newBuilder precomputes everything timestamp-independent: ground
// geometry, candidate radii from the orbit envelopes, closing-speed
// bounds, and the resolved explicit wiring plan if one is configured.
func newBuilder(cfg Config, sats []SatSpec, grounds []GroundSpec, users []UserSpec) *builder {
	b := &builder{
		cfg: cfg, sats: sats, grounds: grounds, users: users,
		pos:    make([]geo.Vec3, len(sats)),
		degree: make([]int, len(sats)),
	}
	for _, g := range grounds {
		b.entities = append(b.entities, groundEntity{
			id: g.ID, provider: g.Provider, kind: LinkGround,
			capBps: cfg.GroundBps, ll: g.Pos, pos: g.Pos.Vec3(0),
		})
	}
	for _, u := range users {
		b.entities = append(b.entities, groundEntity{
			id: u.ID, provider: u.Provider, kind: LinkAccess,
			capBps: cfg.AccessBps, ll: u.Pos, pos: u.Pos.Vec3(0),
		})
	}

	// Orbit envelopes: apogee bounds the altitude a ground terminal can
	// see; vis-viva at perigee plus the frame-rotation term bounds any
	// satellite's ECEF speed for the watch-list validity windows.
	maxApogeeAlt, maxSpeed := 1.0, 0.0
	for i := range sats {
		e := sats[i].Elements
		a := e.SemiMajorAxisKm
		if a <= 0 {
			continue
		}
		rp := a * (1 - e.Eccentricity)
		ra := a * (1 + e.Eccentricity)
		if alt := ra - geo.EarthRadiusKm; alt > maxApogeeAlt {
			maxApogeeAlt = alt
		}
		v := math.Sqrt(geo.EarthMuKm3S2*(2/rp-1/a)) + geo.EarthRotationRadS*ra
		if v > maxSpeed {
			maxSpeed = v
		}
	}
	b.pairSpeed = 2 * maxSpeed
	b.groundSpeed = maxSpeed
	b.attachKm = attachRadiusKm(maxApogeeAlt, cfg.MinElevationDeg)

	lasers := 0
	for i := range sats {
		if sats[i].HasLaser {
			lasers++
		}
	}
	b.maxISLKm = cfg.ISLRangeKm
	if lasers >= 2 && cfg.LaserRangeKm > b.maxISLKm {
		b.maxISLKm = cfg.LaserRangeKm
	}

	if len(cfg.StaticISLs) > 0 {
		b.staticMode = true
		b.staticPairs = resolveStaticISLs(cfg.StaticISLs, sats)
	}

	// A 15 % skin keeps watch lists tight while giving a useful validity
	// window at fine snapshot cadences; any positive value is correct.
	b.skinISLKm = math.Max(1, 0.15*b.maxISLKm)
	b.skinGroundKm = math.Max(1, 0.15*b.attachKm)
	return b
}

// resolveStaticISLs maps an explicit wiring plan onto satellite indices,
// dropping pairs that name unknown satellites or self-loops and
// de-duplicating, so the plan behaves like a candidate set.
func resolveStaticISLs(plan []orbit.ISLPair, sats []SatSpec) [][2]int {
	idx := make(map[string]int, len(sats))
	for i := range sats {
		idx[sats[i].ID] = i
	}
	pairs := make([][2]int, 0, len(plan))
	for _, pr := range plan {
		i, okA := idx[pr.A]
		j, okB := idx[pr.B]
		if !okA || !okB || i == j {
			continue
		}
		if i > j {
			i, j = j, i
		}
		pairs = append(pairs, [2]int{i, j})
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a][0] != pairs[b][0] {
			return pairs[a][0] < pairs[b][0]
		}
		return pairs[a][1] < pairs[b][1]
	})
	// Deduplicate in place.
	out := pairs[:0]
	for k, p := range pairs {
		if k == 0 || p != pairs[k-1] {
			out = append(out, p)
		}
	}
	return out
}

// refreshWatch rebuilds the candidate lists from a fresh spatial index at
// time t and recomputes how long they stay supersets of the feasible
// sets.
func (b *builder) refreshWatch(t float64) {
	cell := b.maxISLKm + b.skinISLKm
	if b.staticMode || cell <= 0 {
		cell = b.attachKm + b.skinGroundKm
	}
	ix := newSatIndex(b.pos, cell)

	if !b.staticMode {
		b.watchISL = ix.pairsWithin(b.maxISLKm+b.skinISLKm, b.watchISL[:0])
	}

	if cap(b.watchGround) < len(b.entities) {
		b.watchGround = make([][]int, len(b.entities))
	}
	b.watchGround = b.watchGround[:len(b.entities)]
	for k := range b.entities {
		b.watchGround[k] = ix.within(b.entities[k].pos, b.attachKm+b.skinGroundKm, b.watchGround[k][:0])
	}

	b.watchT = t
	b.watchValidS = math.Inf(1)
	if !b.staticMode && b.pairSpeed > 0 {
		b.watchValidS = b.skinISLKm / b.pairSpeed
	}
	if b.groundSpeed > 0 && len(b.entities) > 0 {
		if v := b.skinGroundKm / b.groundSpeed; v < b.watchValidS {
			b.watchValidS = v
		}
	}
	b.haveWatch = true
}

// SnapshotAt assembles the snapshot at time t. Candidate lists are
// reused when t falls inside their validity window and rebuilt otherwise;
// either way the output equals a from-scratch build at t.
func (b *builder) SnapshotAt(t float64) *Snapshot {
	for i := range b.sats {
		b.pos[i] = b.sats[i].Elements.PositionECEF(t)
	}
	if !b.haveWatch || math.Abs(t-b.watchT) > b.watchValidS {
		b.refreshWatch(t)
	}

	s := &Snapshot{
		TimeS: t,
		nodes: make(map[string]*Node, len(b.sats)+len(b.entities)),
		adj:   make(map[string][]Edge),
	}
	for i := range b.sats {
		sp := &b.sats[i]
		s.nodes[sp.ID] = &Node{
			ID: sp.ID, Kind: KindSatellite, Provider: sp.Provider,
			Pos: b.pos[i], HasLaser: sp.HasLaser,
		}
	}
	for k := range b.entities {
		e := &b.entities[k]
		kind := KindGroundStation
		if e.kind == LinkAccess {
			kind = KindUser
		}
		s.nodes[e.id] = &Node{ID: e.id, Kind: kind, Provider: e.provider, Pos: e.pos}
	}

	// Inter-satellite links: exact feasibility over the candidate pairs,
	// shortest first, accepted greedily under per-satellite degree caps —
	// identical to filtering all N² pairs, at a fraction of the scan.
	cands := b.watchISL
	if b.staticMode {
		cands = b.staticPairs
	}
	b.feasibleISLs(cands)
	for i := range b.degree {
		b.degree[i] = 0
	}
	for _, p := range b.feasible {
		if b.degree[p.i] >= b.islLimit(p.i) || b.degree[p.j] >= b.islLimit(p.j) {
			continue
		}
		b.degree[p.i]++
		b.degree[p.j]++
		kind, capBps := LinkISLRF, b.cfg.RFISLBps
		if b.sats[p.i].HasLaser && b.sats[p.j].HasLaser && p.d <= b.cfg.LaserRangeKm {
			kind, capBps = LinkISLLaser, b.cfg.LaserISLBps
		}
		s.addBidirectional(b.sats[p.i].ID, b.sats[p.j].ID, kind, p.d, capBps,
			b.sats[p.i].Provider != b.sats[p.j].Provider)
	}

	// Ground-station and user access links by elevation mask, over the
	// per-entity candidate satellites.
	for k := range b.entities {
		e := &b.entities[k]
		for _, i := range b.watchGround[k] {
			if geo.ElevationDeg(e.ll, b.pos[i]) < b.cfg.MinElevationDeg {
				continue
			}
			d := e.pos.DistanceKm(b.pos[i])
			s.addBidirectional(e.id, b.sats[i].ID, e.kind, d, e.capBps,
				e.provider != b.sats[i].Provider)
		}
	}

	// Deterministic adjacency order. Edge targets are unique within one
	// adjacency list, so the comparator is a total order and the sorted
	// sequence is algorithm-independent.
	for id := range s.adj {
		slices.SortFunc(s.adj[id], func(x, y Edge) int { return strings.Compare(x.To, y.To) })
	}
	return s
}

// feasibleISLs refreshes the sorted feasible-pair scratch from the
// candidate set: exact range and line-of-sight filtering, then the
// deterministic (distance, i, j) order the greedy degree-capped
// acceptance consumes. This runs once per snapshot over every candidate
// pair — the incremental builder's inner kernel — and reuses the
// receiver's scratch so the steady state allocates nothing (see
// TestAllocGateFeasibleISLs). The result lives in b.feasible; returning
// the slice would hand callers an alias the next snapshot overwrites
// (the scratchsafe analyzer rejects that shape), so callers read the
// field through the receiver they already hold.
//
//lint:hotpath
func (b *builder) feasibleISLs(cands [][2]int) {
	b.feasible = b.feasible[:0]
	for _, p := range cands {
		i, j := p[0], p[1]
		d := b.pos[i].DistanceKm(b.pos[j])
		maxRange := b.cfg.ISLRangeKm
		if b.sats[i].HasLaser && b.sats[j].HasLaser && b.cfg.LaserRangeKm > maxRange {
			maxRange = b.cfg.LaserRangeKm
		}
		if d > maxRange || !geo.LineOfSight(b.pos[i], b.pos[j]) {
			continue
		}
		b.feasible = append(b.feasible, feasiblePair{i: i, j: j, d: d})
	}
	slices.SortFunc(b.feasible, cmpFeasible)
}

// cmpFeasible orders candidate ISLs by distance, ties broken by the
// unique (i, j) index pair — a total order, so any sorting algorithm
// yields the same sequence the retired sort.Slice produced.
func cmpFeasible(x, y feasiblePair) int {
	if x.d != y.d { //lint:allow floateq exact sort tie-break keeps ISL pairing deterministic
		if x.d < y.d {
			return -1
		}
		return 1
	}
	if x.i != y.i {
		return x.i - y.i
	}
	return x.j - y.j
}

// islLimit is satellite i's ISL degree cap, unbounded when MaxISLs ≤ 0.
func (b *builder) islLimit(i int) int {
	if b.sats[i].MaxISLs <= 0 {
		return int(^uint(0) >> 1)
	}
	return b.sats[i].MaxISLs
}
