package topo

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// bruteFeasibleISLs is the reference O(N²) feasibility scan the spatial
// index replaced: every pair within its class range with line of sight.
func bruteFeasibleISLs(cfg Config, sats []SatSpec, pos []geo.Vec3) [][2]int {
	var out [][2]int
	for i := 0; i < len(sats); i++ {
		for j := i + 1; j < len(sats); j++ {
			d := pos[i].DistanceKm(pos[j])
			maxRange := cfg.ISLRangeKm
			if sats[i].HasLaser && sats[j].HasLaser && cfg.LaserRangeKm > maxRange {
				maxRange = cfg.LaserRangeKm
			}
			if d > maxRange || !geo.LineOfSight(pos[i], pos[j]) {
				continue
			}
			out = append(out, [2]int{i, j})
		}
	}
	return out
}

// bruteVisibleSats is the reference O(grounds×sats) attach scan.
func bruteVisibleSats(cfg Config, ll geo.LatLon, pos []geo.Vec3) []int {
	var out []int
	for i := range pos {
		if geo.ElevationDeg(ll, pos[i]) >= cfg.MinElevationDeg {
			out = append(out, i)
		}
	}
	return out
}

// filterFeasible reduces a candidate pair list to the exactly feasible
// pairs, mirroring the builder's per-pair predicate.
func filterFeasible(cfg Config, sats []SatSpec, pos []geo.Vec3, cands [][2]int) [][2]int {
	var out [][2]int
	for _, p := range cands {
		i, j := p[0], p[1]
		d := pos[i].DistanceKm(pos[j])
		maxRange := cfg.ISLRangeKm
		if sats[i].HasLaser && sats[j].HasLaser && cfg.LaserRangeKm > maxRange {
			maxRange = cfg.LaserRangeKm
		}
		if d > maxRange || !geo.LineOfSight(pos[i], pos[j]) {
			continue
		}
		out = append(out, [2]int{i, j})
	}
	return out
}

// randomSpecs builds n satellites on random circular orbits with mixed
// altitudes, laser fits, and degree caps — the adversarial input class
// for the index (no grid regularity to hide behind).
func randomSpecs(n int, seed int64) []SatSpec {
	rng := rand.New(rand.NewSource(seed))
	specs := make([]SatSpec, n)
	for i := range specs {
		alt := 500 + rng.Float64()*800
		incl := rng.Float64() * 180
		specs[i] = SatSpec{
			ID:       fmt.Sprintf("r%d-%d", seed, i),
			Provider: providerName(i % 3),
			Elements: orbit.Circular(alt, incl, rng.Float64()*360, rng.Float64()*360),
			HasLaser: rng.Intn(2) == 0,
			MaxISLs:  rng.Intn(5), // 0 = uncapped
		}
	}
	return specs
}

// TestIndexCandidatesMatchBruteForce is the property test of the spatial
// index: across constellation sizes, seeds, and timestamps, filtering the
// index-pruned candidates must yield exactly the brute-force feasible
// set, for both the ISL pair scan and the ground attach scan.
func TestIndexCandidatesMatchBruteForce(t *testing.T) {
	grounds := []geo.LatLon{
		{Lat: 51.51, Lon: -0.13},
		{Lat: -33.87, Lon: 151.21},
		{Lat: 78.22, Lon: 15.63}, // high latitude stresses polar crowding
		{Lat: 0.35, Lon: -78.52},
	}
	for _, n := range []int{3, 25, 80, 220} {
		for _, seed := range []int64{1, 7, 42} {
			for _, tS := range []float64{0, 137.5, 4000} {
				specs := randomSpecs(n, seed)
				cfg := DefaultConfig()
				if seed%2 == 1 {
					cfg.MinElevationDeg = 25
				}
				b := newBuilder(cfg, specs, nil, nil)
				for i := range specs {
					b.pos[i] = specs[i].Elements.PositionECEF(tS)
				}
				b.refreshWatch(tS)

				want := bruteFeasibleISLs(cfg, specs, b.pos)
				got := filterFeasible(cfg, specs, b.pos, b.watchISL)
				if !pairSetsEqual(got, want) {
					t.Fatalf("n=%d seed=%d t=%v: index feasible set %d pairs, brute force %d",
						n, seed, tS, len(got), len(want))
				}

				ix := newSatIndex(b.pos, b.maxISLKm+b.skinISLKm)
				for _, g := range grounds {
					cand := ix.within(g.Vec3(0), b.attachKm+b.skinGroundKm, nil)
					var vis []int
					for _, i := range cand {
						if geo.ElevationDeg(g, b.pos[i]) >= cfg.MinElevationDeg {
							vis = append(vis, i)
						}
					}
					if wantVis := bruteVisibleSats(cfg, g, b.pos); !intSetsEqual(vis, wantVis) {
						t.Fatalf("n=%d seed=%d t=%v ground %v: index sees %d sats, brute force %d",
							n, seed, tS, g, len(vis), len(wantVis))
					}
				}
			}
		}
	}
}

// TestBuildMatchesBruteForceSnapshot rebuilds full snapshots with a
// reference implementation of the original all-pairs algorithm and
// requires exact equality — the end-to-end form of the index property.
func TestBuildMatchesBruteForceSnapshot(t *testing.T) {
	for _, n := range []int{10, 60, 150} {
		specs := randomSpecs(n, int64(n))
		grounds := []GroundSpec{
			{ID: "g0", Provider: "A", Pos: geo.LatLon{Lat: 51.51, Lon: -0.13}},
			{ID: "g1", Provider: "B", Pos: geo.LatLon{Lat: -33.87, Lon: 151.21}},
		}
		users := []UserSpec{
			{ID: "u0", Provider: "A", Pos: geo.LatLon{Lat: 40.71, Lon: -74.01}},
		}
		cfg := DefaultConfig()
		got := Build(300, cfg, specs, grounds, users)
		want := bruteForceBuild(300, cfg, specs, grounds, users)
		assertSnapshotsEqual(t, fmt.Sprintf("n=%d", n), got, want)
	}
}

// bruteForceBuild reimplements snapshot assembly with the original
// quadratic scans, as the oracle for TestBuildMatchesBruteForceSnapshot.
func bruteForceBuild(t float64, cfg Config, sats []SatSpec, grounds []GroundSpec, users []UserSpec) *Snapshot {
	s := &Snapshot{TimeS: t, nodes: make(map[string]*Node), adj: make(map[string][]Edge)}
	pos := make([]geo.Vec3, len(sats))
	for i, sp := range sats {
		pos[i] = sp.Elements.PositionECEF(t)
		s.nodes[sp.ID] = &Node{ID: sp.ID, Kind: KindSatellite, Provider: sp.Provider, Pos: pos[i], HasLaser: sp.HasLaser}
	}
	for _, g := range grounds {
		s.nodes[g.ID] = &Node{ID: g.ID, Kind: KindGroundStation, Provider: g.Provider, Pos: g.Pos.Vec3(0)}
	}
	for _, u := range users {
		s.nodes[u.ID] = &Node{ID: u.ID, Kind: KindUser, Provider: u.Provider, Pos: u.Pos.Vec3(0)}
	}
	type pair struct {
		i, j int
		d    float64
	}
	var pairs []pair
	for _, p := range bruteFeasibleISLs(cfg, sats, pos) {
		pairs = append(pairs, pair{p[0], p[1], pos[p[0]].DistanceKm(pos[p[1]])})
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].d != pairs[b].d {
			return pairs[a].d < pairs[b].d
		}
		if pairs[a].i != pairs[b].i {
			return pairs[a].i < pairs[b].i
		}
		return pairs[a].j < pairs[b].j
	})
	degree := map[int]int{}
	limit := func(i int) int {
		if sats[i].MaxISLs <= 0 {
			return int(^uint(0) >> 1)
		}
		return sats[i].MaxISLs
	}
	for _, p := range pairs {
		if degree[p.i] >= limit(p.i) || degree[p.j] >= limit(p.j) {
			continue
		}
		degree[p.i]++
		degree[p.j]++
		kind, capBps := LinkISLRF, cfg.RFISLBps
		if sats[p.i].HasLaser && sats[p.j].HasLaser && p.d <= cfg.LaserRangeKm {
			kind, capBps = LinkISLLaser, cfg.LaserISLBps
		}
		s.addBidirectional(sats[p.i].ID, sats[p.j].ID, kind, p.d, capBps,
			sats[p.i].Provider != sats[p.j].Provider)
	}
	attach := func(id, provider string, ll geo.LatLon, kind LinkKind, capBps float64) {
		gp := ll.Vec3(0)
		for i, sat := range sats {
			if geo.ElevationDeg(ll, pos[i]) < cfg.MinElevationDeg {
				continue
			}
			s.addBidirectional(id, sat.ID, kind, gp.DistanceKm(pos[i]), capBps, provider != sat.Provider)
		}
	}
	for _, g := range grounds {
		attach(g.ID, g.Provider, g.Pos, LinkGround, cfg.GroundBps)
	}
	for _, u := range users {
		attach(u.ID, u.Provider, u.Pos, LinkAccess, cfg.AccessBps)
	}
	for id := range s.adj {
		es := s.adj[id]
		sort.Slice(es, func(a, b int) bool { return es[a].To < es[b].To })
	}
	return s
}

// assertSnapshotsEqual requires two snapshots to agree exactly: same
// nodes (all fields), same adjacency lists (all edge fields, same order).
func assertSnapshotsEqual(t *testing.T, label string, got, want *Snapshot) {
	t.Helper()
	if got.TimeS != want.TimeS {
		t.Fatalf("%s: time %v != %v", label, got.TimeS, want.TimeS)
	}
	gids, wids := got.Nodes(), want.Nodes()
	if len(gids) != len(wids) {
		t.Fatalf("%s: %d nodes != %d", label, len(gids), len(wids))
	}
	for k, id := range gids {
		if id != wids[k] {
			t.Fatalf("%s: node %d: %q != %q", label, k, id, wids[k])
		}
		if gn, wn := *got.Node(id), *want.Node(id); gn != wn {
			t.Fatalf("%s: node %q: %+v != %+v", label, id, gn, wn)
		}
		ge, we := got.Neighbors(id), want.Neighbors(id)
		if len(ge) != len(we) {
			t.Fatalf("%s: node %q: %d edges != %d", label, id, len(ge), len(we))
		}
		for x := range ge {
			if ge[x] != we[x] {
				t.Fatalf("%s: node %q edge %d: %+v != %+v", label, id, x, ge[x], we[x])
			}
		}
	}
	if got.EdgeCount() != want.EdgeCount() {
		t.Fatalf("%s: %d edges != %d", label, got.EdgeCount(), want.EdgeCount())
	}
}

func pairSetsEqual(a, b [][2]int) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(p [2]int) [2]int {
		if p[0] > p[1] {
			return [2]int{p[1], p[0]}
		}
		return p
	}
	sa, sb := make([][2]int, len(a)), make([][2]int, len(b))
	for i := range a {
		sa[i], sb[i] = key(a[i]), key(b[i])
	}
	less := func(s [][2]int) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i][0] != s[j][0] {
				return s[i][0] < s[j][0]
			}
			return s[i][1] < s[j][1]
		}
	}
	sort.Slice(sa, less(sa))
	sort.Slice(sb, less(sb))
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func intSetsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sa, sb := append([]int(nil), a...), append([]int(nil), b...)
	sort.Ints(sa)
	sort.Ints(sb)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
