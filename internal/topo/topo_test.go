package topo

import (
	"testing"

	"github.com/openspace-project/openspace/internal/geo"
	"github.com/openspace-project/openspace/internal/orbit"
)

// iridiumSpecs converts the Iridium constellation into SatSpecs owned by
// nProviders round-robin.
func iridiumSpecs(t *testing.T, nProviders int, laser bool) []SatSpec {
	t.Helper()
	c, err := orbit.Iridium().Build()
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]SatSpec, c.Len())
	for i, s := range c.Satellites {
		specs[i] = SatSpec{
			ID:       s.ID,
			Provider: providerName(i % nProviders),
			Elements: s.Elements,
			HasLaser: laser,
		}
	}
	return specs
}

func providerName(i int) string { return string(rune('A' + i)) }

func TestKindStrings(t *testing.T) {
	if KindSatellite.String() != "satellite" || KindGroundStation.String() != "ground-station" ||
		KindUser.String() != "user" || NodeKind(9).String() == "" {
		t.Error("NodeKind strings wrong")
	}
	if LinkISLRF.String() != "isl-rf" || LinkISLLaser.String() != "isl-laser" ||
		LinkGround.String() != "ground" || LinkAccess.String() != "access" || LinkKind(9).String() == "" {
		t.Error("LinkKind strings wrong")
	}
}

func TestBuildBasicStructure(t *testing.T) {
	sats := iridiumSpecs(t, 1, false)
	grounds := []GroundSpec{{ID: "gs-0", Provider: "A", Pos: geo.LatLon{Lat: 47.6, Lon: -122.3}}}
	users := []UserSpec{{ID: "u-0", Provider: "A", Pos: geo.LatLon{Lat: -1.29, Lon: 36.82}}}
	s := Build(0, DefaultConfig(), sats, grounds, users)

	if s.NodeCount() != len(sats)+2 {
		t.Fatalf("node count %d", s.NodeCount())
	}
	if s.Node("gs-0") == nil || s.Node("u-0") == nil || s.Node(sats[0].ID) == nil {
		t.Fatal("missing nodes")
	}
	if s.Node("nope") != nil {
		t.Fatal("phantom node")
	}
	if s.EdgeCount() == 0 {
		t.Fatal("no edges built")
	}
	// Every edge must be symmetric.
	for _, id := range s.Nodes() {
		for _, e := range s.Neighbors(id) {
			back, ok := s.Edge(e.To, e.From)
			if !ok {
				t.Fatalf("edge %s→%s has no reverse", e.From, e.To)
			}
			if back.DistanceKm != e.DistanceKm || back.Kind != e.Kind {
				t.Fatalf("asymmetric edge attributes %s↔%s", e.From, e.To)
			}
		}
	}
	// The user and ground station must each see at least one satellite
	// (Iridium provides global coverage).
	if len(s.Neighbors("u-0")) == 0 {
		t.Error("user sees no satellites")
	}
	if len(s.Neighbors("gs-0")) == 0 {
		t.Error("ground station sees no satellites")
	}
	// Users and ground stations never connect to each other directly.
	for _, e := range s.Neighbors("u-0") {
		if s.Node(e.To).Kind != KindSatellite {
			t.Errorf("user linked to non-satellite %s", e.To)
		}
		if e.Kind != LinkAccess {
			t.Errorf("user link kind %v", e.Kind)
		}
	}
	for _, e := range s.Neighbors("gs-0") {
		if e.Kind != LinkGround {
			t.Errorf("ground link kind %v", e.Kind)
		}
	}
}

func TestISLRangeAndLineOfSight(t *testing.T) {
	s := Build(0, DefaultConfig(), iridiumSpecs(t, 1, false), nil, nil)
	cfg := DefaultConfig()
	for _, id := range s.Nodes() {
		for _, e := range s.Neighbors(id) {
			if e.Kind != LinkISLRF {
				continue
			}
			if e.DistanceKm > cfg.ISLRangeKm {
				t.Fatalf("ISL %s→%s length %v exceeds range %v", e.From, e.To, e.DistanceKm, cfg.ISLRangeKm)
			}
			a, b := s.Node(e.From), s.Node(e.To)
			if !geo.LineOfSight(a.Pos, b.Pos) {
				t.Fatalf("ISL %s→%s lacks line of sight", e.From, e.To)
			}
			if e.DelayS <= 0 || e.CapacityBps <= 0 {
				t.Fatalf("ISL %s→%s missing delay/capacity", e.From, e.To)
			}
		}
	}
}

func TestLaserPreferredWhenBothCapable(t *testing.T) {
	sats := iridiumSpecs(t, 1, true)
	s := Build(0, DefaultConfig(), sats, nil, nil)
	laser, rf := 0, 0
	for _, id := range s.Nodes() {
		for _, e := range s.Neighbors(id) {
			switch e.Kind {
			case LinkISLLaser:
				laser++
			case LinkISLRF:
				rf++
			}
		}
	}
	if laser == 0 {
		t.Fatal("no laser ISLs despite universal capability")
	}
	if rf != 0 {
		t.Errorf("found %d RF ISLs among laser-capable in-range satellites", rf)
	}
	// Mixed fleet: only laser-laser pairs upgrade.
	mixed := iridiumSpecs(t, 1, false)
	for i := range mixed {
		mixed[i].HasLaser = i%2 == 0
	}
	s = Build(0, DefaultConfig(), mixed, nil, nil)
	for _, id := range s.Nodes() {
		for _, e := range s.Neighbors(id) {
			if e.Kind == LinkISLLaser {
				if !s.Node(e.From).HasLaser || !s.Node(e.To).HasLaser {
					t.Fatal("laser ISL with a non-laser endpoint")
				}
			}
		}
	}
}

func TestMaxISLsRespected(t *testing.T) {
	sats := iridiumSpecs(t, 1, false)
	for i := range sats {
		sats[i].MaxISLs = 3
	}
	s := Build(0, DefaultConfig(), sats, nil, nil)
	for _, id := range s.Nodes() {
		isls := 0
		for _, e := range s.Neighbors(id) {
			if e.Kind == LinkISLRF || e.Kind == LinkISLLaser {
				isls++
			}
		}
		if isls > 3 {
			t.Fatalf("satellite %s has %d ISLs, cap is 3", id, isls)
		}
	}
}

func TestCrossOwnerFlag(t *testing.T) {
	sats := iridiumSpecs(t, 3, false)
	grounds := []GroundSpec{{ID: "gs-0", Provider: "Z", Pos: geo.LatLon{Lat: 0, Lon: 0}}}
	s := Build(0, DefaultConfig(), sats, grounds, nil)
	sawCross, sawSame := false, false
	for _, id := range s.Nodes() {
		for _, e := range s.Neighbors(id) {
			a, b := s.Node(e.From), s.Node(e.To)
			if e.CrossOwner != (a.Provider != b.Provider) {
				t.Fatalf("edge %s→%s cross-owner flag wrong", e.From, e.To)
			}
			if e.CrossOwner {
				sawCross = true
			} else {
				sawSame = true
			}
		}
	}
	if !sawCross || !sawSame {
		t.Error("expected a mix of same- and cross-owner edges")
	}
}

func TestBuildDeterministic(t *testing.T) {
	sats := iridiumSpecs(t, 2, true)
	grounds := []GroundSpec{{ID: "gs", Provider: "A", Pos: geo.LatLon{Lat: 10, Lon: 10}}}
	a := Build(100, DefaultConfig(), sats, grounds, nil)
	b := Build(100, DefaultConfig(), sats, grounds, nil)
	if a.EdgeCount() != b.EdgeCount() || a.NodeCount() != b.NodeCount() {
		t.Fatal("builds differ in size")
	}
	for _, id := range a.Nodes() {
		ea, eb := a.Neighbors(id), b.Neighbors(id)
		if len(ea) != len(eb) {
			t.Fatalf("node %s adjacency differs", id)
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("node %s edge %d differs: %+v vs %+v", id, i, ea[i], eb[i])
			}
		}
	}
}

func TestTimeExpanded(t *testing.T) {
	sats := iridiumSpecs(t, 1, false)[:12]
	te, err := BuildTimeExpanded(0, 600, 60, DefaultConfig(), sats, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(te.Snaps) != 11 {
		t.Fatalf("snapshot count %d, want 11", len(te.Snaps))
	}
	if te.EndS() != 600 {
		t.Errorf("EndS = %v", te.EndS())
	}
	// At() selects the right snapshot and clamps.
	if te.At(-5) != te.Snaps[0] {
		t.Error("At before start should clamp to first")
	}
	if te.At(0) != te.Snaps[0] || te.At(59.9) != te.Snaps[0] {
		t.Error("At within first interval wrong")
	}
	if te.At(60) != te.Snaps[1] || te.At(125) != te.Snaps[2] {
		t.Error("At mid-series wrong")
	}
	if te.At(1e9) != te.Snaps[10] {
		t.Error("At past end should clamp to last")
	}
	// Topology actually changes over time (satellites move).
	if te.Snaps[0].EdgeCount() == 0 {
		t.Fatal("empty snapshot")
	}
	// Errors.
	if _, err := BuildTimeExpanded(0, 100, 0, DefaultConfig(), sats, nil, nil); err == nil {
		t.Error("zero interval should error")
	}
	if _, err := BuildTimeExpanded(0, -1, 10, DefaultConfig(), sats, nil, nil); err == nil {
		t.Error("negative horizon should error")
	}
	var empty TimeExpanded
	if empty.At(0) != nil {
		t.Error("empty series At should be nil")
	}
	if empty.EndS() != 0 {
		t.Error("empty series EndS should be StartS")
	}
}

func TestSnapshotTopologyEvolves(t *testing.T) {
	// Over ten minutes, some ISLs must appear or disappear — the "rapidly
	// changing network topology" the paper's routing must handle.
	sats := iridiumSpecs(t, 1, false)
	s0 := Build(0, DefaultConfig(), sats, nil, nil)
	s600 := Build(600, DefaultConfig(), sats, nil, nil)
	diff := 0
	for _, id := range s0.Nodes() {
		for _, e := range s0.Neighbors(id) {
			if _, ok := s600.Edge(e.From, e.To); !ok {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Error("topology identical after 600 s; expected churn")
	}
}
